(* Tests for the framework extensions: frequency-weighted risk, degraded
   mode, multi-object portfolios and sensitivity sweeps. *)

open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_presets
open Helpers

(* --- Risk --- *)

let weighted =
  [
    { Risk.scenario = Baseline.scenario_object; frequency_per_year = 4. };
    { Risk.scenario = Baseline.scenario_array; frequency_per_year = 0.2 };
    { Risk.scenario = Baseline.scenario_site; frequency_per_year = 0.01 };
  ]

let test_risk_assessment () =
  let r = Risk.assess Baseline.design weighted in
  Alcotest.(check int) "three exposures" 3 (List.length r.Risk.exposures);
  (* Expected penalty = sum of frequency x per-incident penalty. *)
  let manual =
    List.fold_left
      (fun acc (e : Risk.exposure) ->
        acc
        +. (e.Risk.weighted.Risk.frequency_per_year
           *. Money.to_usd e.Risk.per_incident_penalty))
      0. r.Risk.exposures
  in
  close ~tol:1e-9 "expectation arithmetic" manual
    (Money.to_usd r.Risk.expected_annual_penalty);
  close ~tol:1e-9 "total = outlays + expectation"
    (Money.to_usd r.Risk.annual_outlays
    +. Money.to_usd r.Risk.expected_annual_penalty)
    (Money.to_usd r.Risk.expected_annual_cost);
  (* Object errors at 4/yr ($0.6M each) dominate the 0.01/yr site risk
     ($72M each): 2.4M vs 0.73M. *)
  let penalty scope_level =
    let e = List.nth r.Risk.exposures scope_level in
    Money.to_usd e.Risk.expected_annual_penalty
  in
  Alcotest.(check bool) "frequent small beats rare large" true
    (penalty 0 > penalty 2)

let test_risk_ranking () =
  let ranked =
    Risk.compare_designs (List.map snd Whatif.all) weighted
  in
  let costs =
    List.map (fun (_, r) -> Money.to_usd r.Risk.expected_annual_cost) ranked
  in
  Alcotest.(check bool) "sorted ascending" true
    (costs = List.sort Float.compare costs);
  (* Under frequency weighting, designs with good object-rollback
     behaviour (cheap, frequent case) should rank well; the mirror-only
     design pays the entire-object penalty on every user error and must
     rank last. *)
  let last, _ = List.nth ranked (List.length ranked - 1) in
  Alcotest.(check bool) "mirror-only worst under user-error weighting" true
    (String.length last.Design.name >= 6 && String.sub last.Design.name 0 6 = "asyncB")

let test_risk_validation () =
  check_raises_invalid "empty" (fun () -> Risk.assess Baseline.design []);
  check_raises_invalid "negative frequency" (fun () ->
      Risk.assess Baseline.design
        [ { Risk.scenario = Baseline.scenario_array; frequency_per_year = -1. } ])

let test_risk_monte_carlo () =
  let dist =
    Risk.monte_carlo ~samples:4000 Baseline.design weighted ~horizon_years:10.
  in
  let expectation =
    10. *. Money.to_usd (Risk.assess Baseline.design weighted).Risk.expected_annual_cost
  in
  (* The sampler's mean must agree with the analytic expectation within
     sampling noise, and the quantiles must be ordered. *)
  close ~tol:0.05 "mean matches expectation" expectation
    (Money.to_usd dist.Risk.mean);
  Alcotest.(check bool) "quantiles ordered" true
    (Money.compare dist.Risk.p50 dist.Risk.p95 <= 0
    && Money.compare dist.Risk.p95 dist.Risk.p99 <= 0
    && Money.compare dist.Risk.p99 dist.Risk.max <= 0);
  (* Deterministic for a fixed seed. *)
  let again =
    Risk.monte_carlo ~samples:4000 Baseline.design weighted ~horizon_years:10.
  in
  close ~tol:1e-12 "deterministic" (Money.to_usd dist.Risk.mean)
    (Money.to_usd again.Risk.mean);
  check_raises_invalid "bad horizon" (fun () ->
      Risk.monte_carlo Baseline.design weighted ~horizon_years:0.);
  check_raises_invalid "bad samples" (fun () ->
      Risk.monte_carlo ~samples:0 Baseline.design weighted ~horizon_years:1.)

let test_risk_monte_carlo_lambda_regimes () =
  (* Exercise the Poisson sampler in every rate regime: no incidents,
     rare events, the multiplicative/normal switchover at lambda = 30,
     and lambda = 1e3 where exp(-lambda) underflows to zero (the
     multiplicative method alone would loop on garbage there). *)
  List.iter
    (fun freq ->
      let weighted =
        [
          { Risk.scenario = Baseline.scenario_object; frequency_per_year = freq };
        ]
      in
      let dist =
        Risk.monte_carlo ~samples:500 Baseline.design weighted
          ~horizon_years:10.
      in
      let finite m = Float.is_finite (Money.to_usd m) in
      Alcotest.(check bool) (Fmt.str "finite at frequency %g" freq) true
        (finite dist.Risk.mean
        && Float.is_finite dist.Risk.stddev
        && finite dist.Risk.p50 && finite dist.Risk.max);
      Alcotest.(check bool) (Fmt.str "ordered at frequency %g" freq) true
        (Money.compare dist.Risk.p50 dist.Risk.p95 <= 0
        && Money.compare dist.Risk.p95 dist.Risk.p99 <= 0
        && Money.compare dist.Risk.p99 dist.Risk.max <= 0))
    [ 0.; 0.01; 3.; 100. ]

let test_risk_monte_carlo_large_lambda_regression () =
  (* Regression for the lambda ~ 1e3 underflow: the sampled mean must
     still track the analytic expectation. At lambda = 1000 the relative
     sampling noise of the mean over 2000 draws is ~0.1%, so a 2%
     tolerance is forgiving but would still catch a broken sampler. *)
  let weighted =
    [ { Risk.scenario = Baseline.scenario_object; frequency_per_year = 100. } ]
  in
  let dist =
    Risk.monte_carlo ~samples:2000 Baseline.design weighted ~horizon_years:10.
  in
  let expectation =
    10.
    *. Money.to_usd
         (Risk.assess Baseline.design weighted).Risk.expected_annual_cost
  in
  close ~tol:0.02 "mean matches analytic expectation at lambda=1e3"
    expectation
    (Money.to_usd dist.Risk.mean)

let test_risk_monte_carlo_jobs_invariant () =
  (* Each sample owns a generator seeded off the master stream, so the
     distribution is bit-identical however the sampling is spread across
     the engine's domains. *)
  let dists =
    List.map
      (fun jobs ->
        Storage_engine.with_engine ~jobs (fun engine ->
            Risk.monte_carlo ~engine ~samples:1000 Baseline.design weighted
              ~horizon_years:10.))
      [ 1; 2; 4 ]
  in
  match dists with
  | serial :: rest ->
    let reference = Marshal.to_string serial [ Marshal.No_sharing ] in
    List.iteri
      (fun i d ->
        Alcotest.(check bool)
          (Fmt.str "jobs=%d identical to serial" (List.nth [ 2; 4 ] i))
          true
          (String.equal reference (Marshal.to_string d [ Marshal.No_sharing ])))
      rest
  | [] -> assert false

(* --- Degraded --- *)

let test_degraded_backup_outage () =
  (* With the backup level down for a week before an array failure, the
     freshest surviving RPs are the (week-staler) tape copies. *)
  let r =
    Degraded.evaluate Baseline.design ~disabled_level:2
      ~outage:(Duration.weeks 1.) Baseline.scenario_array
  in
  (match r.Degraded.data_loss.Data_loss.loss with
  | Data_loss.Updates d ->
    (* Healthy worst case is 217 hr; the outage adds its full week because
       the backup level itself is the recovery source and it is frozen. *)
    close "385 hr" (217. +. 168.) (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "expected recoverable loss");
  close_duration "added loss" (Duration.hours 168.) r.Degraded.added_loss

let test_degraded_source_unaffected () =
  (* Disabling the vault does not change array-failure loss: the backup
     level still serves. *)
  let r =
    Degraded.evaluate Baseline.design ~disabled_level:3
      ~outage:(Duration.weeks 2.) Baseline.scenario_array
  in
  close_duration "no added loss" Duration.zero r.Degraded.added_loss;
  Alcotest.(check (option int)) "backup still serves" (Some 2)
    r.Degraded.data_loss.Data_loss.source_level

let test_degraded_site_with_vault_outage () =
  (* A site disaster during a vault outage: the vault's RPs aged by the
     outage. *)
  let r =
    Degraded.evaluate Baseline.design ~disabled_level:3
      ~outage:(Duration.weeks 4.) Baseline.scenario_site
  in
  match r.Degraded.data_loss.Data_loss.loss with
  | Data_loss.Updates d -> close "1429 + 672 hr" (1429. +. 672.) (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "expected recoverable loss"

let test_degraded_frozen_mirror_staler () =
  (* Object rollback while the split mirror has been frozen for two days:
     the mirrors still serve, but the 24-hour target now predates their
     frozen window, losing 36 hours of updates instead of 12. *)
  let r =
    Degraded.evaluate Baseline.design ~disabled_level:1
      ~outage:(Duration.hours 48.) Baseline.scenario_object
  in
  Alcotest.(check (option int)) "mirror still serves" (Some 1)
    r.Degraded.data_loss.Data_loss.source_level;
  match r.Degraded.data_loss.Data_loss.loss with
  | Data_loss.Updates d -> close "36 hr" 36. (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "expected recoverable loss"

let test_degraded_validation () =
  check_raises_invalid "level 0" (fun () ->
      Degraded.evaluate Baseline.design ~disabled_level:0
        ~outage:(Duration.hours 1.) Baseline.scenario_array);
  check_raises_invalid "out of range" (fun () ->
      Degraded.evaluate Baseline.design ~disabled_level:9
        ~outage:(Duration.hours 1.) Baseline.scenario_array)

let prop_degraded_never_better =
  QCheck.Test.make ~name:"outages never reduce worst-case loss" ~count:30
    QCheck.(pair (int_range 1 3) (float_range 0. 500.))
    (fun (level, outage_h) ->
      let r =
        Degraded.evaluate Baseline.design ~disabled_level:level
          ~outage:(Duration.hours outage_h) Baseline.scenario_array
      in
      Data_loss.compare_loss r.Degraded.baseline_loss.Data_loss.loss
        r.Degraded.data_loss.Data_loss.loss
      <= 0)

(* --- Portfolio --- *)

(* A second, smaller workload sharing the baseline hardware. *)
let mail_workload =
  Workload.make ~name:"mail" ~data_capacity:(Size.gib 200.)
    ~avg_access_rate:(Rate.kib_per_sec 600.)
    ~avg_update_rate:(Rate.kib_per_sec 400.) ~burst_multiplier:6.
    ~batch_curve:
      (Batch_curve.of_samples
         [
           (Duration.minutes 1., Rate.kib_per_sec 380.);
           (Duration.hours 12., Rate.kib_per_sec 150.);
           (Duration.weeks 1., Rate.kib_per_sec 120.);
         ])

let mail_design =
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Split_mirror
              (Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:2 ());
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Backup
              (Schedule.simple ~acc:(Duration.weeks 1.)
                 ~prop:(Duration.hours 24.) ~hold:(Duration.hours 1.)
                 ~retention_count:4 ());
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
      ]
  in
  Design.make ~name:"mail" ~workload:mail_workload ~hierarchy
    ~business:Baseline.business ()

let portfolio = Portfolio.make_exn [ Baseline.design; mail_design ]

let test_portfolio_validation () =
  (match Portfolio.make [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty portfolio accepted");
  (match Portfolio.make [ Baseline.design; Baseline.design ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate names accepted");
  (* Same device name, different configuration. *)
  let conflicting_array =
    Device.make ~name:"disk-array" ~location:Baseline.primary_site
      ~max_capacity_slots:8 ~slot_capacity:(Size.gib 73.) ()
  in
  let tiny =
    Design.make ~name:"tiny" ~workload:mail_workload
      ~hierarchy:
        (Hierarchy.make_exn
           [
             {
               Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid0 };
               device = conflicting_array;
               link = None;
             };
           ])
      ~business:Baseline.business ()
  in
  match Portfolio.make [ Baseline.design; tiny ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting device specs accepted"

let test_portfolio_utilization_adds_up () =
  let combined = Portfolio.utilization portfolio in
  let array_util =
    List.find (fun ((d : Device.t), _) -> d.Device.name = "disk-array") combined
    |> snd
  in
  let solo =
    Device.utilization Baseline.disk_array
      (Design.demands_on Baseline.design Baseline.disk_array)
  in
  Alcotest.(check bool) "combined exceeds solo" true
    (array_util.Device.capacity_fraction > solo.Device.capacity_fraction);
  (* cello (87.3%) + mail (3 raid-1 copies of 300 GiB + snapshots) must
     stay under 100%: 87.3 + 9.6 = 96.9. *)
  Alcotest.(check bool) "still fits" true
    (array_util.Device.capacity_fraction < 1.);
  Alcotest.(check int) "nothing overcommitted" 0
    (List.length (Portfolio.overcommitted portfolio))

let starts_with_mail t = String.length t >= 5 && String.sub t 0 5 = "mail:"

let test_portfolio_member_sees_neighbours () =
  let loaded = Option.get (Portfolio.member portfolio "baseline") in
  let u = Utilization.compute loaded in
  let array =
    List.find
      (fun (d : Utilization.device_report) ->
        d.Utilization.device.Device.name = "disk-array")
      u.Utilization.devices
  in
  let techs =
    List.map (fun s -> s.Utilization.technique) array.Utilization.shares
  in
  Alcotest.(check bool) "mail traffic visible" true
    (List.exists starts_with_mail techs)

let test_portfolio_shared_fixed_costs () =
  let per_member, total = Portfolio.outlays portfolio in
  let solo_baseline = (Cost.outlays Baseline.design).Cost.total in
  let solo_mail = (Cost.outlays mail_design).Cost.total in
  (* The portfolio total must be below the sum of standalone outlays: the
     array and library fixed costs are paid once, not twice. *)
  Alcotest.(check bool) "sharing saves fixed costs" true
    (Money.to_usd total
    < Money.to_usd solo_baseline +. Money.to_usd solo_mail -. 1.);
  Alcotest.(check int) "two members" 2 (List.length per_member);
  (* First member pays full freight. *)
  close ~tol:1e-9 "owner pays full" (Money.to_usd solo_baseline)
    (Money.to_usd (List.assoc "baseline" per_member))

let test_portfolio_recovery_sees_contention () =
  (* The mail design's array-failure recovery streams from the shared tape
     library while cello's backups continue: available bandwidth is lower
     than standalone, so recovery is slower. *)
  let loaded_mail = Option.get (Portfolio.member portfolio "mail") in
  let standalone = Evaluate.run mail_design Baseline.scenario_array in
  let shared = Evaluate.run loaded_mail Baseline.scenario_array in
  Alcotest.(check bool) "contention slows recovery" true
    (Duration.compare shared.Evaluate.recovery_time
       standalone.Evaluate.recovery_time
    > 0)

(* --- Summary_report --- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  nl = 0 || scan 0

let test_summary_report () =
  let doc =
    Summary_report.markdown
      ~risk:
        [
          { Risk.scenario = Baseline.scenario_object; frequency_per_year = 12. };
          { Risk.scenario = Baseline.scenario_array; frequency_per_year = 0.2 };
        ]
      Baseline.design
      [
        ("user error", Baseline.scenario_object);
        ("array failure", Baseline.scenario_array);
      ]
  in
  List.iter
    (fun needle ->
      if not (contains doc needle) then
        Alcotest.failf "report missing %S" needle)
    [
      "# Dependability report: baseline";
      "## Workload";
      "## Protection hierarchy";
      "## Normal-mode utilization";
      "## Failure scenarios";
      "## Annual outlays";
      "## Risk";
      "split mirror";
      "87.3%";
      "Monte-Carlo";
    ];
  check_raises_invalid "no scenarios" (fun () ->
      Summary_report.markdown Baseline.design [])

let test_summary_report_flags_invalid () =
  (* An overcommitted design must be flagged, not silently reported. *)
  let big = Workload.grow Cello.workload ~factor:2. in
  let d =
    Design.make ~name:"too-big" ~workload:big
      ~hierarchy:Baseline.design.Design.hierarchy ~business:Baseline.business
      ()
  in
  let doc =
    Summary_report.markdown d [ ("array", Baseline.scenario_array) ]
  in
  Alcotest.(check bool) "flagged" true (contains doc "INVALID DESIGN")

(* --- Explain --- *)

let test_explain_site () =
  let text = Explain.narrative Baseline.design Baseline.scenario_site in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "narrative missing %S" needle)
    [
      "site primary";
      "Surviving levels: 3 (vaulting)";
      "worst-case loss 8.5 wk";
      "media in transit 24.0 hr";
      "bottleneck: media transit";
      "bottleneck: data transfer";
      "Total recovery time: 25.7 hr";
    ]

let test_explain_primary_intact () =
  let text =
    Explain.narrative Baseline.design
      (Scenario.now (Location.Device "tape-library"))
  in
  Alcotest.(check bool) "no recovery needed" true
    (contains text "no recovery is needed")

let test_explain_total_loss () =
  let d = Whatif.async_mirror ~links:1 in
  let text = Explain.narrative d Baseline.scenario_object in
  Alcotest.(check bool) "object lost" true (contains text "the object")

(* --- Sensitivity --- *)

let vault_design acc_weeks =
  let vault_schedule =
    Schedule.simple
      ~acc:(Duration.weeks acc_weeks)
      ~prop:(Duration.hours 24.) ~hold:(Duration.hours 12.)
      ~retention_count:(max 1 (int_of_float (ceil (156. /. acc_weeks))))
      ()
  in
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique = Technique.Split_mirror Baseline.split_mirror_schedule;
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique = Technique.Backup Baseline.backup_schedule;
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
        {
          technique = Technique.Vaulting vault_schedule;
          device = Baseline.vault;
          link = Some Baseline.air_shipment;
        };
      ]
  in
  Design.make
    ~name:(Printf.sprintf "vault %.0fwk" acc_weeks)
    ~workload:Cello.workload ~hierarchy ~business:Baseline.business ()

let test_sensitivity_vault_sweep () =
  let points =
    Storage_optimize.Sensitivity.sweep vault_design ~values:[ 1.; 2.; 4. ]
      Baseline.scenario_site
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let losses =
    List.map
      (fun (p : Storage_optimize.Sensitivity.point) ->
        match p.Storage_optimize.Sensitivity.loss with
        | Data_loss.Updates d -> Duration.to_hours d
        | Data_loss.Entire_object -> infinity)
      points
  in
  (* Site-disaster loss grows with the vault accumulation window
     (Table 7's weekly-vault improvement, generalized). *)
  Alcotest.(check bool) "monotone in accW" true
    (losses = List.sort Float.compare losses);
  close "weekly matches Table 7" 253. (List.nth losses 0)

let test_sensitivity_crossover () =
  (* Mirror-link sweep: with few links the tape design has lower outlays;
     find where mirroring's outlays overtake it. *)
  let mirror links = Whatif.async_mirror ~links:(int_of_float links) in
  let tape _ = Baseline.design in
  let crossing =
    Storage_optimize.Sensitivity.crossover mirror ~values:[ 1.; 2.; 4.; 10. ]
      Baseline.scenario_array
      ~metric:(fun p -> Money.to_usd p.Storage_optimize.Sensitivity.outlays)
      ~against:tape
  in
  match crossing with
  | Some v -> Alcotest.(check bool) "crossover beyond one link" true (v >= 2.)
  | None -> Alcotest.fail "expected an outlay crossover"

let test_sensitivity_validation () =
  check_raises_invalid "no values" (fun () ->
      Storage_optimize.Sensitivity.sweep vault_design ~values:[]
        Baseline.scenario_site)

let suite =
  [
    ( "model.risk",
      [
        Alcotest.test_case "expectation arithmetic" `Quick test_risk_assessment;
        Alcotest.test_case "design ranking" `Quick test_risk_ranking;
        Alcotest.test_case "validation" `Quick test_risk_validation;
        Alcotest.test_case "monte carlo distribution" `Quick
          test_risk_monte_carlo;
        Alcotest.test_case "monte carlo lambda regimes" `Quick
          test_risk_monte_carlo_lambda_regimes;
        Alcotest.test_case "monte carlo large-lambda regression" `Quick
          test_risk_monte_carlo_large_lambda_regression;
        Alcotest.test_case "monte carlo jobs-invariant" `Quick
          test_risk_monte_carlo_jobs_invariant;
      ] );
    ( "model.degraded",
      [
        Alcotest.test_case "backup outage adds loss" `Quick
          test_degraded_backup_outage;
        Alcotest.test_case "unaffected source" `Quick test_degraded_source_unaffected;
        Alcotest.test_case "site during vault outage" `Quick
          test_degraded_site_with_vault_outage;
        Alcotest.test_case "frozen mirror serves staler" `Quick
          test_degraded_frozen_mirror_staler;
        Alcotest.test_case "validation" `Quick test_degraded_validation;
        qcheck prop_degraded_never_better;
      ] );
    ( "model.portfolio",
      [
        Alcotest.test_case "validation" `Quick test_portfolio_validation;
        Alcotest.test_case "combined utilization" `Quick
          test_portfolio_utilization_adds_up;
        Alcotest.test_case "members see neighbours" `Quick
          test_portfolio_member_sees_neighbours;
        Alcotest.test_case "shared fixed costs" `Quick
          test_portfolio_shared_fixed_costs;
        Alcotest.test_case "recovery contention" `Quick
          test_portfolio_recovery_sees_contention;
      ] );
    ( "model.explain",
      [
        Alcotest.test_case "site narrative" `Quick test_explain_site;
        Alcotest.test_case "primary intact" `Quick test_explain_primary_intact;
        Alcotest.test_case "total loss" `Quick test_explain_total_loss;
      ] );
    ( "model.summary_report",
      [
        Alcotest.test_case "full report" `Quick test_summary_report;
        Alcotest.test_case "flags invalid designs" `Quick
          test_summary_report_flags_invalid;
      ] );
    ( "optimize.sensitivity",
      [
        Alcotest.test_case "vault window sweep" `Quick test_sensitivity_vault_sweep;
        Alcotest.test_case "link-count crossover" `Quick test_sensitivity_crossover;
        Alcotest.test_case "validation" `Quick test_sensitivity_validation;
      ] );
  ]
