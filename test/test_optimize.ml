(* Tests for the design-space optimizer: objective summaries, Pareto
   frontiers and the search loop. *)

open Storage_units
open Storage_model
open Storage_optimize
open Storage_presets
open Helpers

let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

let kit business =
  {
    Candidate.workload = Cello.workload;
    business;
    primary = Baseline.disk_array;
    tape_library = Baseline.tape_library;
    vault = Baseline.vault;
    remote_array = Baseline.remote_array;
    san = Baseline.san;
    shipment = Baseline.air_shipment;
    wan = (fun links -> Baseline.oc3 ~links);
  }

let business ?rto ?rpo () =
  Business.make
    ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ?recovery_time_objective:rto ?recovery_point_objective:rpo ()

(* --- Objective --- *)

let test_summary_baseline () =
  let s = Objective.summarize Baseline.design scenarios in
  Alcotest.(check int) "two reports" 2 (List.length s.Objective.reports);
  close ~tol:0.01 "worst RT is site" 25.73
    (Duration.to_hours s.Objective.worst_recovery_time);
  (match s.Objective.worst_loss with
  | Data_loss.Updates d -> close "worst loss 1429" 1429. (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "finite loss expected");
  Alcotest.(check bool) "feasible without objectives" true s.Objective.feasible;
  close ~tol:1e-6 "worst total = outlays + worst penalties"
    (Money.to_usd s.Objective.outlays +. Money.to_usd s.Objective.worst_penalties)
    (Money.to_usd s.Objective.worst_total_cost)

let test_summary_infeasible_rto () =
  let d =
    Design.make ~name:"strict" ~workload:Cello.workload
      ~hierarchy:Baseline.design.Design.hierarchy
      ~business:(business ~rto:(Duration.hours 1.) ()) ()
  in
  let s = Objective.summarize d scenarios in
  Alcotest.(check bool) "RTO 1 hr infeasible" false s.Objective.feasible

let test_summary_empty_scenarios () =
  check_raises_invalid "no scenarios" (fun () ->
      Objective.summarize Baseline.design [])

(* --- Pareto --- *)

let test_pareto_baseline_vs_whatifs () =
  let summaries =
    List.map (fun (_, d) -> Objective.summarize d scenarios) Whatif.all
  in
  let frontier = Pareto.frontier summaries in
  let names =
    List.map (fun s -> s.Objective.design.Design.name) frontier
  in
  (* The baseline is dominated: "weekly vault, daily F, snapshot" is
     cheaper with strictly better DL and comparable RT. *)
  Alcotest.(check bool) "baseline dominated" false (List.mem "baseline" names);
  Alcotest.(check bool) "frontier non-empty" true (frontier <> [])

let test_pareto_non_domination_property () =
  let summaries =
    List.map (fun (_, d) -> Objective.summarize d scenarios) Whatif.all
  in
  let frontier = Pareto.frontier summaries in
  List.iter
    (fun s ->
      List.iter
        (fun other ->
          if Pareto.dominates other s then
            Alcotest.failf "%s dominated on the frontier"
              s.Objective.design.Design.name)
        summaries)
    frontier

let test_dominates_asymmetric () =
  let summaries =
    List.map (fun (_, d) -> Objective.summarize d scenarios) Whatif.all
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Pareto.dominates a b && Pareto.dominates b a then
            Alcotest.fail "mutual domination")
        summaries)
    summaries

(* --- Candidate --- *)

let small_space =
  {
    Candidate.pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 12. ];
    pit_retentions = [ 4 ];
    backup_accumulations = [ Duration.hours 24.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1. ];
    vault_retention_horizon = Duration.years 3.;
    mirror_links = [ 1; 10 ];
  }

let test_enumerate_counts () =
  let designs = Candidate.enumerate (kit (business ())) small_space in
  (* 2 PiT kinds x 1 acc x 1 ret x 2 backup x 1 vault + 2 mirrors = 6. *)
  Alcotest.(check int) "grid size" 6 (Seq.length designs)

let test_enumerate_lazy_and_persistent () =
  (* Forcing one element must not force the rest, and a re-traversal must
     rebuild the same designs (structurally, hence same fingerprints). *)
  let designs = Candidate.enumerate (kit (business ())) small_space in
  (match Seq.uncons designs with
  | None -> Alcotest.fail "expected a non-empty grid"
  | Some (first, _) ->
    Alcotest.(check bool) "head is valid" true
      (Design.validate first = Ok ()));
  let once = List.of_seq designs in
  let again = List.of_seq designs in
  Alcotest.(check (list string))
    "re-traversal rebuilds the same grid"
    (List.map Design.fingerprint once)
    (List.map Design.fingerprint again)

let test_enumerate_all_valid () =
  let designs =
    List.of_seq (Candidate.enumerate (kit (business ())) Candidate.default_space)
  in
  Alcotest.(check bool) "non-empty" true (designs <> []);
  List.iter
    (fun d ->
      match Design.validate d with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "invalid candidate %s: %s" d.Design.name
          (String.concat "; " es))
    designs

let test_enumerate_names_unique () =
  let designs =
    List.of_seq (Candidate.enumerate (kit (business ())) Candidate.default_space)
  in
  let names = List.map (fun d -> d.Design.name) designs in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* --- Search --- *)

let test_search_best_is_cheapest_feasible () =
  let candidates = Candidate.enumerate (kit (business ())) small_space in
  let result = Search.run candidates scenarios in
  match result.Search.best with
  | None -> Alcotest.fail "expected a feasible design"
  | Some best ->
    List.iter
      (fun s ->
        if
          s.Objective.feasible
          && Money.compare s.Objective.worst_total_cost
               best.Objective.worst_total_cost
             < 0
        then Alcotest.fail "best is not cheapest")
      result.Search.evaluated

let test_search_respects_rpo () =
  let b = business ~rpo:(Duration.minutes 5.) () in
  let candidates = Candidate.enumerate (kit b) small_space in
  let result = Search.run candidates scenarios in
  (* Only the mirror designs achieve minute-scale RPO. *)
  List.iter
    (fun s ->
      let name = s.Objective.design.Design.name in
      Alcotest.(check bool)
        (name ^ " is a mirror")
        true
        (String.length name >= 6 && String.sub name 0 6 = "asyncB"))
    result.Search.feasible;
  Alcotest.(check bool) "some feasible" true (result.Search.feasible <> [])

let test_search_empty_inputs () =
  check_raises_invalid "no candidates" (fun () -> Search.run Seq.empty scenarios);
  check_raises_invalid "no scenarios" (fun () ->
      Search.run (List.to_seq [ Baseline.design ]) []);
  check_raises_invalid "top_k < 1" (fun () ->
      Search.run ~top_k:0 (List.to_seq [ Baseline.design ]) scenarios)

let test_search_top_k_truncates () =
  let candidates () = Candidate.enumerate (kit (business ())) small_space in
  let full = Search.run (candidates ()) scenarios in
  let truncated = Search.run ~top_k:2 (candidates ()) scenarios in
  Alcotest.(check int) "evaluated not retained" 0
    (List.length truncated.Search.evaluated);
  Alcotest.(check int) "considered matches full run" full.Search.considered
    truncated.Search.considered;
  Alcotest.(check int) "feasible_count matches full run"
    full.Search.feasible_count truncated.Search.feasible_count;
  (* The truncated feasible list is exactly the head of the full sorted
     one, and the frontier/best are unaffected by truncation. *)
  let names r =
    List.map (fun s -> s.Objective.design.Design.name) r.Search.feasible
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  Alcotest.(check (list string))
    "top-k = head of full feasible" (take 2 (names full)) (names truncated);
  Alcotest.(check (list string))
    "same frontier"
    (List.map (fun s -> s.Objective.design.Design.name) full.Search.frontier)
    (List.map
       (fun s -> s.Objective.design.Design.name)
       truncated.Search.frontier);
  Alcotest.(check (option string))
    "same best"
    (Option.map (fun s -> s.Objective.design.Design.name) full.Search.best)
    (Option.map (fun s -> s.Objective.design.Design.name) truncated.Search.best)

let test_search_feasible_sorted () =
  let candidates = Candidate.enumerate (kit (business ())) small_space in
  let result = Search.run candidates scenarios in
  let costs =
    List.map
      (fun s -> Money.to_usd s.Objective.worst_total_cost)
      result.Search.feasible
  in
  Alcotest.(check bool) "ascending" true
    (costs = List.sort Float.compare costs)

(* Synthetic summaries over a tiny value lattice: small ranges force
   duplicates and per-axis ties, including [Entire_object] ties, which is
   exactly where an incremental frontier could diverge from the quadratic
   specification if eviction were too eager. *)
let synthetic_summary (cost, rt, loss_code) =
  let worst_loss =
    if loss_code >= 4 then Data_loss.Entire_object
    else Data_loss.Updates (Duration.hours (float_of_int loss_code))
  in
  {
    Objective.design = Baseline.design;
    reports = [];
    outlays = Money.usd (float_of_int cost);
    worst_recovery_time = Duration.hours (float_of_int rt);
    worst_loss;
    worst_penalties = Money.usd 0.;
    worst_total_cost = Money.usd (float_of_int cost);
    feasible = true;
  }

let prop_incremental_frontier_matches_reference =
  QCheck.Test.make ~name:"incremental frontier = quadratic reference"
    ~count:300
    QCheck.(
      list_of_size
        Gen.(int_range 0 30)
        (triple (int_range 0 4) (int_range 0 4) (int_range 0 5)))
    (fun triples ->
      let summaries = List.map synthetic_summary triples in
      let incremental = Pareto.frontier summaries in
      let reference = Pareto.frontier_reference summaries in
      let online =
        Pareto.contents (List.fold_left Pareto.insert Pareto.empty summaries)
      in
      List.length incremental = List.length reference
      && List.for_all2 ( == ) incremental reference
      && List.length online = List.length reference
      && List.for_all2 ( == ) online reference)

(* Two structurally distinct designs with byte-equal scores: the frontier
   must order them the same way whichever arrived first (the tie-break
   regression the incremental frontier used to leak input order on). *)
let test_pareto_tie_break_order_independent () =
  let score s (d : Design.t) = { s with Objective.design = d } in
  let a = score (synthetic_summary (3, 2, 1)) Baseline.design in
  let b =
    score (synthetic_summary (3, 2, 1)) (List.assoc "weekly vault" Whatif.all)
  in
  let names l =
    List.map (fun s -> s.Objective.design.Design.name) (Pareto.frontier l)
  in
  Alcotest.(check (list string))
    "both orders agree" (names [ a; b ]) (names [ b; a ]);
  Alcotest.(check int) "both survive" 2 (List.length (names [ a; b ]));
  (* And with an interleaved non-tied survivor the classes stay pinned. *)
  let c = score (synthetic_summary (2, 3, 2)) Baseline.design in
  Alcotest.(check (list string))
    "tied class pinned around other survivors" (names [ a; c; b ])
    (names [ b; c; a ])

let prop_frontier_subset =
  QCheck.Test.make ~name:"frontier is a subset of the input" ~count:10
    QCheck.(int_range 1 4)
    (fun n ->
      let designs =
        List.filteri (fun i _ -> i < n) (List.map snd Whatif.all)
      in
      let summaries = List.map (fun d -> Objective.summarize d scenarios) designs in
      let frontier = Pareto.frontier summaries in
      List.for_all (fun s -> List.memq s summaries) frontier
      && List.length frontier <= List.length summaries
      && frontier <> [])

(* --- Solver --- *)

let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

(* A space whose pit-accumulation axis is long enough (>= 8, the
   bisection threshold) that branch-and-bound locates the lint
   feasibility frontier by geometric bisection rather than element-wise
   probing. *)
let bisection_space =
  {
    Candidate.pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations =
      List.map Duration.hours [ 1.; 2.; 3.; 4.; 6.; 8.; 12.; 24. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations = [ Duration.hours 24.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1. ];
    vault_retention_horizon = Duration.years 3.;
    mirror_links = [ 1; 10 ];
  }

let best_cost (r : Solver.result) =
  Option.map
    (fun (s : Objective.summary) ->
      Money.to_usd s.Objective.worst_total_cost)
    r.Solver.best

let test_points_decode_as_enumerate () =
  let k = kit (business ()) in
  List.iter
    (fun space ->
      let enumerated = List.of_seq (Candidate.enumerate k space) in
      let decoded =
        List.of_seq
          (Seq.filter_map
             (Candidate.design_of_point (Candidate.axes k space))
             (Candidate.points space))
      in
      Alcotest.(check int)
        "same candidate count" (List.length enumerated) (List.length decoded);
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            "same order" a.Design.name b.Design.name;
          Alcotest.(check bool)
            ("decoded " ^ b.Design.name ^ " byte-identical")
            true
            (String.equal
               (bytes_of (Design.strip a))
               (bytes_of (Design.strip b))))
        enumerated decoded)
    [ small_space; bisection_space ]

(* Annealing determinism: the report is a pure function of (seed, budget)
   — byte-identical across --jobs and --chunk. *)
let test_anneal_jobs_invariance () =
  let k = kit (business ()) in
  let run jobs chunk =
    let engine = Storage_engine.create ~jobs ~chunk () in
    Fun.protect
      ~finally:(fun () -> Storage_engine.shutdown engine)
      (fun () ->
        let r =
          Solver.run ~engine ~budget:300 ~seed:0xD5EEDL ~method_:Solver.Anneal
            k small_space scenarios
        in
        bytes_of
          ( Option.map (fun s -> Design.strip s.Objective.design) r.Solver.best,
            best_cost r,
            r.Solver.stats ))
  in
  let serial = run 1 1 in
  Alcotest.(check bool) "jobs 4 = serial" true (String.equal serial (run 4 16));
  Alcotest.(check bool) "jobs 2, chunk 3 = serial" true
    (String.equal serial (run 2 3))

let test_anneal_monotone_budget () =
  let k = kit (business ()) in
  let cost budget =
    let r =
      Solver.run ~budget ~seed:0xD5EEDL ~method_:Solver.Anneal k small_space
        scenarios
    in
    Option.value ~default:Float.infinity (best_cost r)
  in
  let costs = List.map cost [ 4; 24; 60; 150 ] in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "larger budget never worse" true (non_increasing costs)

let test_anneal_full_budget_exhaustive () =
  let k = kit (business ()) in
  List.iter
    (fun space ->
      let budget = 4 * Candidate.point_count space in
      let grid = Solver.run ~method_:Solver.Grid k space scenarios in
      let anneal =
        Solver.run ~budget ~seed:0xACE5L ~method_:Solver.Anneal k space
          scenarios
      in
      Alcotest.(check (option (float 0.)))
        "anneal at exhaustive budget = grid optimum" (best_cost grid)
        (best_cost anneal))
    [ small_space; bisection_space ]

(* B&B soundness: replay every pruned region exhaustively — a pruned
   point must be undecodable, infeasible, or no cheaper than the returned
   optimum — and the optimum itself must equal exhaustive search's. The
   bisection space drives the frontier-bisection path; the accounting
   must also close (every grid cell either visited or pruned). *)
let test_bnb_soundness () =
  let k = kit (business ()) in
  List.iter
    (fun space ->
      let axes = Candidate.axes k space in
      let grid = Solver.run ~method_:Solver.Grid k space scenarios in
      let bnb =
        Solver.run ~record_pruned:true ~method_:Solver.Bnb k space scenarios
      in
      Alcotest.(check (option (float 0.)))
        "bnb = grid optimum" (best_cost grid) (best_cost bnb);
      let pruned = List.concat bnb.Solver.pruned in
      Alcotest.(check int)
        "pruned counters match recorded regions"
        (bnb.Solver.stats.Solver.pruned_cost
        + bnb.Solver.stats.Solver.pruned_infeasible)
        (List.length pruned);
      Alcotest.(check int)
        "every cell visited or pruned"
        (Candidate.point_count space)
        (bnb.Solver.stats.Solver.considered + List.length pruned);
      let best = Option.value ~default:Float.infinity (best_cost bnb) in
      List.iter
        (fun p ->
          match Candidate.design_of_point axes p with
          | None -> ()
          | Some d ->
            let s = Objective.summarize d scenarios in
            if
              s.Objective.feasible
              && Money.to_usd s.Objective.worst_total_cost < best
            then
              Alcotest.failf "pruned %s beats the returned optimum"
                d.Design.name)
        pruned)
    [ small_space; bisection_space ]

let test_solver_invalid_args () =
  let k = kit (business ()) in
  check_raises_invalid "budget < 1" (fun () ->
      Solver.run ~budget:0 ~method_:Solver.Anneal k small_space scenarios);
  check_raises_invalid "no scenarios" (fun () ->
      Solver.run ~method_:Solver.Grid k small_space [])

let test_solve_portfolio_rolls_up () =
  let b = business () in
  let members =
    [
      { Solver.label = "cello"; workload = Cello.workload; business = b };
      {
        Solver.label = "cello-2x";
        workload = Storage_workload.Workload.grow Cello.workload ~factor:2.;
        business = b;
      };
    ]
  in
  let run jobs =
    let engine = Storage_engine.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Storage_engine.shutdown engine)
      (fun () ->
        Solver.solve_portfolio ~engine ~method_:Solver.Grid
          ~kit:(kit b) ~space:small_space ~members scenarios)
  in
  let pr = run 1 in
  Alcotest.(check int) "one result per member" 2
    (List.length pr.Solver.assignments);
  Alcotest.(check int) "every member assigned" 2 (List.length pr.Solver.chosen);
  Alcotest.(check bool) "site total = outlays + penalties" true
    (Money.compare pr.Solver.site.Solver.total
       (Money.add pr.Solver.site.Solver.outlays
          pr.Solver.site.Solver.penalties)
    = 0);
  (* Consolidation prices members under each other's load: each chosen
     design carries background demands from its neighbor. *)
  List.iter
    (fun (d : Design.t) ->
      Alcotest.(check bool)
        (d.Design.name ^ " sees neighbor load")
        true
        (d.Design.background <> []))
    pr.Solver.chosen;
  (* And the whole consolidation is jobs-invariant. *)
  let again = run 3 in
  Alcotest.(check bool) "portfolio jobs-invariant" true
    (String.equal
       (bytes_of
          (List.map (fun d -> Design.strip d) pr.Solver.chosen, pr.Solver.site))
       (bytes_of
          (List.map (fun d -> Design.strip d) again.Solver.chosen,
           again.Solver.site)))

let suite =
  [
    ( "optimize.objective",
      [
        Alcotest.test_case "baseline summary" `Quick test_summary_baseline;
        Alcotest.test_case "infeasible RTO" `Quick test_summary_infeasible_rto;
        Alcotest.test_case "empty scenarios" `Quick test_summary_empty_scenarios;
      ] );
    ( "optimize.pareto",
      [
        Alcotest.test_case "baseline dominated" `Quick test_pareto_baseline_vs_whatifs;
        Alcotest.test_case "frontier non-domination" `Quick
          test_pareto_non_domination_property;
        Alcotest.test_case "domination asymmetric" `Quick test_dominates_asymmetric;
        Alcotest.test_case "tie-break order independent" `Quick
          test_pareto_tie_break_order_independent;
        qcheck prop_frontier_subset;
        qcheck prop_incremental_frontier_matches_reference;
      ] );
    ( "optimize.candidate",
      [
        Alcotest.test_case "grid size" `Quick test_enumerate_counts;
        Alcotest.test_case "lazy and persistent" `Quick
          test_enumerate_lazy_and_persistent;
        Alcotest.test_case "all candidates valid" `Quick test_enumerate_all_valid;
        Alcotest.test_case "unique names" `Quick test_enumerate_names_unique;
      ] );
    ( "optimize.search",
      [
        Alcotest.test_case "best is cheapest feasible" `Quick
          test_search_best_is_cheapest_feasible;
        Alcotest.test_case "RPO constraint" `Quick test_search_respects_rpo;
        Alcotest.test_case "empty inputs" `Quick test_search_empty_inputs;
        Alcotest.test_case "top-k truncation" `Quick test_search_top_k_truncates;
        Alcotest.test_case "feasible sorted by cost" `Quick
          test_search_feasible_sorted;
      ] );
    ( "optimize.solver",
      [
        Alcotest.test_case "points decode as enumerate" `Quick
          test_points_decode_as_enumerate;
        Alcotest.test_case "anneal jobs-invariant" `Quick
          test_anneal_jobs_invariance;
        Alcotest.test_case "anneal monotone budget" `Quick
          test_anneal_monotone_budget;
        Alcotest.test_case "anneal full budget = exhaustive" `Quick
          test_anneal_full_budget_exhaustive;
        Alcotest.test_case "bnb soundness (pruned replay)" `Quick
          test_bnb_soundness;
        Alcotest.test_case "invalid arguments" `Quick test_solver_invalid_args;
        Alcotest.test_case "portfolio roll-up" `Quick
          test_solve_portfolio_rolls_up;
      ] );
  ]
