(* Tests for the discrete-event simulator: the event queue and flow
   network primitives, and cross-validation of measured recovery against
   the analytical model's bounds. *)

open Storage_units
open Storage_model
open Storage_presets
open Storage_sim
open Helpers

(* --- Event_queue --- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push q ~time:t v)
    [ (5., "e"); (1., "a"); (3., "c"); (2., "b"); (4., "d") ];
  let popped = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !popped)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. "first";
  Event_queue.push q ~time:1. "second";
  Event_queue.push q ~time:1. "third";
  let v1 = snd (Option.get (Event_queue.pop q)) in
  let v2 = snd (Option.get (Event_queue.pop q)) in
  Alcotest.(check string) "fifo" "first" v1;
  Alcotest.(check string) "fifo 2" "second" v2

let test_queue_drain_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 1.; 2.; 3.; 4. ];
  let drained = Event_queue.drain_until q 2.5 in
  Alcotest.(check int) "drained two" 2 (List.length drained);
  Alcotest.(check int) "two remain" 2 (Event_queue.length q)

let test_queue_validation () =
  let q = Event_queue.create () in
  check_raises_invalid "nan time" (fun () -> Event_queue.push q ~time:Float.nan ());
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "no peek" true (Event_queue.peek_time q = None)

let test_queue_drain_until_boundaries () =
  let q = Event_queue.create () in
  Alcotest.(check int) "empty queue drains nothing" 0
    (List.length (Event_queue.drain_until q 10.));
  List.iteri (fun i t -> Event_queue.push q ~time:t i)
    [ 2.; 5.; 5.; 9. ];
  Alcotest.(check int) "bound below all: nothing" 0
    (List.length (Event_queue.drain_until q 1.9));
  Alcotest.(check int) "queue untouched" 4 (Event_queue.length q);
  (* The bound is inclusive, and ties at the bound drain in FIFO order. *)
  Alcotest.(check (list int)) "bound on a tie drains through it" [ 0; 1; 2 ]
    (List.map snd (Event_queue.drain_until q 5.));
  Alcotest.(check (list int)) "bound above all drains the rest" [ 3 ]
    (List.map snd (Event_queue.drain_until q 1e9));
  Alcotest.(check bool) "now empty" true (Event_queue.is_empty q)

let prop_queue_pops_sorted =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort Float.compare times)

let prop_queue_fifo_stable_on_ties =
  (* Times drawn from ten discrete slots force plenty of duplicates; the
     payload records insertion order. Popping must be globally
     time-ordered, and within a timestamp, first-scheduled-first. *)
  QCheck.Test.make ~name:"heap is time-ordered, FIFO-stable on duplicates"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 150) (int_range 0 9))
    (fun slots ->
      let q = Event_queue.create () in
      List.iteri
        (fun i s -> Event_queue.push q ~time:(float_of_int s) i)
        slots;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (t, i) -> drain ((t, i) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      List.length popped = List.length slots && ordered popped)

let prop_queue_drain_until_partitions =
  (* drain_until splits the queue exactly at the (inclusive) bound: the
     drained prefix is every event <= bound in order, and a full drain of
     the rest yields every event > bound in order. *)
  QCheck.Test.make ~name:"drain_until partitions at the inclusive bound"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 100) (int_range 0 19))
        (int_range 0 19))
    (fun (slots, bound) ->
      let q = Event_queue.create () in
      List.iteri (fun i s -> Event_queue.push q ~time:(float_of_int s) i) slots;
      let bound_t = float_of_int bound in
      let drained = Event_queue.drain_until q bound_t in
      let rec rest acc =
        match Event_queue.pop q with
        | Some (t, i) -> rest ((t, i) :: acc)
        | None -> List.rev acc
      in
      let rest = rest [] in
      let indexed = List.mapi (fun i s -> (float_of_int s, i)) slots in
      let sort_stable =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
      in
      drained = sort_stable (List.filter (fun (t, _) -> t <= bound_t) indexed)
      && rest = sort_stable (List.filter (fun (t, _) -> t > bound_t) indexed))

(* --- Flow_net --- *)

let test_flow_single () =
  let net = Flow_net.create () in
  let a = Flow_net.add_node net ~name:"a" ~capacity:100. in
  let b = Flow_net.add_node net ~name:"b" ~capacity:40. in
  let f = Flow_net.add_flow net ~through:[ (a, 1); (b, 1) ] ~bytes:400. () in
  close "bottleneck rate" 40. (Flow_net.rate net f);
  (match Flow_net.next_completion net with
  | Some (dt, _) -> close "completion" 10. dt
  | None -> Alcotest.fail "expected completion");
  let completed = Flow_net.advance net 10. in
  Alcotest.(check int) "completed" 1 (List.length completed)

let test_flow_fair_share () =
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:100. in
  let f1 = Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:1000. () in
  let f2 = Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:1000. () in
  close "half each f1" 50. (Flow_net.rate net f1);
  close "half each f2" 50. (Flow_net.rate net f2);
  Flow_net.cancel net f2;
  close "full after cancel" 100. (Flow_net.rate net f1)

let test_flow_rate_cap () =
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:100. in
  let capped = Flow_net.add_flow net ~rate_cap:10. ~through:[ (n, 1) ] ~bytes:100. () in
  let free = Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:100. () in
  close "capped" 10. (Flow_net.rate net capped);
  (* Max-min: the uncapped flow gets the leftover. *)
  close "leftover" 90. (Flow_net.rate net free)

let test_flow_multiplicity () =
  (* An intra-device copy consumes read and write shares of the same
     enclosure: rate is half the capacity. *)
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:100. in
  let f = Flow_net.add_flow net ~through:[ (n, 2) ] ~bytes:100. () in
  close "half capacity" 50. (Flow_net.rate net f)

let test_flow_reservation () =
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:100. in
  Flow_net.set_reservation net n 30.;
  let f = Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:100. () in
  close "after reservation" 70. (Flow_net.rate net f)

let test_flow_partial_advance () =
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:10. in
  let f = Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:100. () in
  let completed = Flow_net.advance net 4. in
  Alcotest.(check int) "not yet" 0 (List.length completed);
  close "remaining" 60. (Flow_net.remaining net f);
  let completed = Flow_net.advance net 6. in
  Alcotest.(check int) "now" 1 (List.length completed)

let test_flow_validation () =
  let net = Flow_net.create () in
  let n = Flow_net.add_node net ~name:"n" ~capacity:10. in
  check_raises_invalid "zero bytes" (fun () ->
      Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:0. ());
  check_raises_invalid "no nodes" (fun () ->
      Flow_net.add_flow net ~through:[] ~bytes:10. ());
  check_raises_invalid "duplicate node" (fun () ->
      Flow_net.add_node net ~name:"n" ~capacity:5.);
  check_raises_invalid "non-positive capacity" (fun () ->
      Flow_net.add_node net ~name:"m" ~capacity:0.)

let prop_flow_rates_respect_capacity =
  QCheck.Test.make ~name:"allocated rates never exceed capacity" ~count:100
    QCheck.(pair (float_range 10. 1000.) (int_range 1 10))
    (fun (capacity, nflows) ->
      let net = Flow_net.create () in
      let n = Flow_net.add_node net ~name:"n" ~capacity in
      let flows =
        List.init nflows (fun _ ->
            Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:1000. ())
      in
      let total = List.fold_left (fun acc f -> acc +. Flow_net.rate net f) 0. flows in
      total <= capacity *. (1. +. 1e-9))

let prop_flow_fairness =
  QCheck.Test.make ~name:"equal flows get equal rates" ~count:50
    QCheck.(pair (float_range 10. 1000.) (int_range 2 8))
    (fun (capacity, nflows) ->
      let net = Flow_net.create () in
      let n = Flow_net.add_node net ~name:"n" ~capacity in
      let flows =
        List.init nflows (fun _ ->
            Flow_net.add_flow net ~through:[ (n, 1) ] ~bytes:1000. ())
      in
      let rates = List.map (Flow_net.rate net) flows in
      let r0 = List.hd rates in
      List.for_all (fun r -> Float.abs (r -. r0) < 1e-6) rates)

let prop_flow_conservation_multi_node =
  (* Random topologies: three nodes with reservations, flows through random
     node subsets with multiplicities and optional caps. At no node may the
     allocated rates (weighted by multiplicity) exceed capacity minus
     reservation, and no flow may exceed its cap. *)
  QCheck.Test.make
    ~name:"node rates bounded by capacity minus reservation" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.return 3)
           (pair (float_range 20. 500.) (float_range 0. 0.8)))
        (list_of_size (Gen.int_range 1 10)
           (quad (int_range 1 7) (int_range 1 2) (float_range 1. 5000.)
              (option (float_range 1. 50.)))))
    (fun (node_specs, flow_specs) ->
      let net = Flow_net.create () in
      let nodes =
        List.mapi
          (fun i (capacity, resv_frac) ->
            let n =
              Flow_net.add_node net ~name:("n" ^ string_of_int i) ~capacity
            in
            let resv = resv_frac *. capacity in
            Flow_net.set_reservation net n resv;
            (n, capacity, resv))
          node_specs
      in
      let node_arr = Array.of_list nodes in
      let flows =
        List.map
          (fun (mask, mult, bytes, rate_cap) ->
            let through =
              List.filter_map
                (fun i ->
                  if mask land (1 lsl i) <> 0 then
                    let n, _, _ = node_arr.(i) in
                    Some (n, mult)
                  else None)
                [ 0; 1; 2 ]
            in
            (Flow_net.add_flow net ?rate_cap ~through ~bytes (), through,
             rate_cap))
          flow_specs
      in
      let tol = 1e-6 in
      let caps_respected =
        List.for_all
          (fun (f, _, cap) ->
            match cap with
            | Some c -> Flow_net.rate net f <= c +. tol
            | None -> true)
          flows
      in
      let conserved =
        List.for_all
          (fun (node, capacity, resv) ->
            let used =
              List.fold_left
                (fun acc (f, through, _) ->
                  List.fold_left
                    (fun acc (n, m) ->
                      if n == node then
                        acc +. (Flow_net.rate net f *. float_of_int m)
                      else acc)
                    acc through)
                0. flows
            in
            used <= capacity -. resv +. (tol *. capacity))
          nodes
      in
      caps_respected && conserved)

let prop_flow_completion_delivers_bytes =
  (* Drive the network to quiescence with the simulator's own loop
     (next_completion + advance). Every flow must complete exactly once
     with zero remaining, and the node's cumulative byte counter must equal
     the sum of requested bytes weighted by multiplicity (each completion
     may round away up to one sub-byte remainder). *)
  QCheck.Test.make ~name:"completed flows deliver exactly their bytes"
    ~count:200
    QCheck.(
      pair (float_range 50. 500.)
        (list_of_size (Gen.int_range 1 8)
           (pair (float_range 10. 2000.) (int_range 1 2))))
    (fun (capacity, specs) ->
      let net = Flow_net.create () in
      let n = Flow_net.add_node net ~name:"n" ~capacity in
      let flows =
        List.map
          (fun (bytes, mult) ->
            (Flow_net.add_flow net ~through:[ (n, mult) ] ~bytes (), bytes,
             mult))
          specs
      in
      let completed = ref 0 in
      let fuel = ref 200 in
      let rec run () =
        match Flow_net.next_completion net with
        | None -> ()
        | Some (dt, _) when !fuel > 0 ->
          decr fuel;
          completed := !completed + List.length (Flow_net.advance net dt);
          run ()
        | Some _ -> ()
      in
      run ();
      let requested =
        List.fold_left
          (fun acc (_, bytes, mult) -> acc +. (bytes *. float_of_int mult))
          0. flows
      in
      !fuel > 0
      && Flow_net.active_count net = 0
      && !completed = List.length flows
      && List.for_all (fun (f, _, _) -> Flow_net.remaining net f = 0.) flows
      && Float.abs (Flow_net.node_bytes net n -. requested)
         <= 2. *. float_of_int (List.length flows))

(* --- Sim vs model --- *)

let config = { Sim.warmup = Duration.weeks 12.; log = false; outage = None; record_events = false }

let model_worst_loss scenario =
  match (Evaluate.run Baseline.design scenario).Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates d -> Duration.to_seconds d
  | Data_loss.Entire_object -> infinity

let measured_loss (m : Sim.measured) =
  match m.Sim.data_loss with
  | Data_loss.Updates d -> Duration.to_seconds d
  | Data_loss.Entire_object -> infinity

let test_sim_object_recovery () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_object in
  Alcotest.(check (option int)) "from split mirror" (Some 1) m.Sim.source_level;
  Alcotest.(check bool) "loss within worst case" true
    (measured_loss m <= model_worst_loss Baseline.scenario_object +. 1.);
  match m.Sim.recovery_time with
  | Some rt -> Alcotest.(check bool) "sub-second" true (Duration.to_seconds rt < 1.)
  | None -> Alcotest.fail "no recovery time"

let test_sim_array_recovery () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_array in
  Alcotest.(check (option int)) "from backup" (Some 2) m.Sim.source_level;
  Alcotest.(check bool) "loss bounded" true
    (measured_loss m <= model_worst_loss Baseline.scenario_array +. 1.);
  match m.Sim.recovery_time with
  | Some rt ->
    let hours = Duration.to_hours rt in
    (* Transfer-dominated: between 1 and 3 hours. *)
    Alcotest.(check bool) "plausible RT" true (hours > 1. && hours < 3.)
  | None -> Alcotest.fail "no recovery time"

let test_sim_site_recovery () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_site in
  Alcotest.(check (option int)) "from vault" (Some 3) m.Sim.source_level;
  Alcotest.(check bool) "loss bounded" true
    (measured_loss m <= model_worst_loss Baseline.scenario_site +. 1.);
  match m.Sim.recovery_time with
  | Some rt ->
    let hours = Duration.to_hours rt in
    (* Dominated by the 24 hr shipment. *)
    Alcotest.(check bool) "plausible RT" true (hours > 24. && hours < 30.)
  | None -> Alcotest.fail "no recovery time"

let test_sim_rp_counts () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_object in
  (* After 12 weeks: 4 split mirrors, 4 backups retained, and at least one
     vault RP. *)
  Alcotest.(check int) "split mirrors" 4 m.Sim.rp_count.(1);
  Alcotest.(check int) "backups" 4 m.Sim.rp_count.(2);
  Alcotest.(check bool) "vault has RPs" true (m.Sim.rp_count.(3) >= 1)

let test_sim_rp_ages_within_model_lags () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_object in
  let h = Baseline.design.Design.hierarchy in
  for j = 1 to 3 do
    match m.Sim.rp_newest_age.(j) with
    | Some age ->
      let worst = Storage_hierarchy.Hierarchy.worst_lag h j in
      if Duration.compare age worst > 0 then
        Alcotest.failf "level %d newest age %s exceeds model worst lag %s" j
          (Duration.to_string age) (Duration.to_string worst)
    | None -> Alcotest.failf "level %d has no RPs" j
  done

let test_sim_phase_sweep_bounded () =
  let scenario = Baseline.scenario_array in
  let worst = model_worst_loss scenario in
  let offsets = List.init 7 (fun i -> Duration.hours (float_of_int i *. 23.)) in
  let runs = Sim.sweep_failure_phase ~config Baseline.design scenario ~offsets in
  List.iter
    (fun m ->
      if measured_loss m > worst +. 1. then
        Alcotest.failf "measured loss %.0f exceeds worst case %.0f"
          (measured_loss m) worst)
    runs

let test_sim_asyncb () =
  let d = Whatif.async_mirror ~links:1 in
  let cfg = { Sim.warmup = Duration.days 2.; log = false; outage = None; record_events = false } in
  let m = Sim.run ~config:cfg d Baseline.scenario_array in
  Alcotest.(check (option int)) "from mirror" (Some 1) m.Sim.source_level;
  Alcotest.(check bool) "tiny loss" true (measured_loss m <= 120. +. 1.);
  match m.Sim.recovery_time with
  | Some rt ->
    (* Strict execution: at least the model's (overlapped) estimate. *)
    Alcotest.(check bool) "about 21 hours" true
      (Duration.to_hours rt > 20. && Duration.to_hours rt < 22.)
  | None -> Alcotest.fail "no recovery"

let test_sim_asyncb_site_strict_provisioning () =
  let d = Whatif.async_mirror ~links:10 in
  let cfg = { Sim.warmup = Duration.days 2.; log = false; outage = None; record_events = false } in
  let m = Sim.run ~config:cfg d Baseline.scenario_site in
  match m.Sim.recovery_time with
  | Some rt ->
    (* Strict semantics: 9 hr provisioning then ~2.1 hr transfer; the
       analytical model (overlapped) reports 9 hr. *)
    Alcotest.(check bool) "provisioning then transfer" true
      (Duration.to_hours rt >= 9.
      && Duration.to_hours rt < 12.)
  | None -> Alcotest.fail "no recovery"

let test_sim_erasure_design () =
  (* The erasure extension runs through the same event machinery: hourly
     coded batches over the WAN, day-deep retention, reconstruction within
     the model's 2-hour worst case. *)
  let d = Whatif.erasure_coded ~fragments:8 ~required:5 ~links:1 in
  let cfg =
    { Sim.warmup = Duration.days 3.; log = false; outage = None;
      record_events = false }
  in
  let m = Sim.run ~config:cfg d Baseline.scenario_array in
  Alcotest.(check (option int)) "from the fragment store" (Some 1)
    m.Sim.source_level;
  Alcotest.(check bool) "day of versions retained" true (m.Sim.rp_count.(1) >= 20);
  Alcotest.(check bool) "loss within 2 hours" true
    (measured_loss m <= (2. *. 3600.) +. 1.);
  (match m.Sim.recovery_time with
  | Some rt ->
    (* 1360 GiB over one OC-3: about 21 hours. *)
    Alcotest.(check bool) "transfer-bound recovery" true
      (Duration.to_hours rt > 20. && Duration.to_hours rt < 22.)
  | None -> Alcotest.fail "no recovery")

let test_sim_primary_intact () =
  let m =
    Sim.run ~config Baseline.design (Scenario.now (Storage_device.Location.Device "tape-library"))
  in
  Alcotest.(check (option int)) "no recovery needed" (Some 0) m.Sim.source_level;
  close "no loss" 0. (measured_loss m)
  [@@warning "-33"]

let test_sim_rollback_total_loss () =
  let scenario =
    Scenario.make ~scope:Storage_device.Location.Data_object
      ~target_age:(Duration.weeks 20.) ~object_size:(Size.mib 1.) ()
  in
  (* After only 12 weeks of operation nothing is 20 weeks old. *)
  let m = Sim.run ~config Baseline.design scenario in
  Alcotest.(check bool) "total loss" true (m.Sim.data_loss = Data_loss.Entire_object)

let test_sim_measured_utilization () =
  let m = Sim.run ~config Baseline.design Baseline.scenario_object in
  let util name =
    match List.assoc_opt name m.Sim.bandwidth_utilization with
    | Some u -> u
    | None -> Alcotest.failf "no utilization for %s" name
  in
  (* The model provisions bandwidth for the propagation windows (8.1 MiB/s
     for the 48 hr backup window); the simulator measures the time-average
     (1360 GiB per week = 2.25 MiB/s), so measured <= modeled, and the
     measured value must cover at least the static reservations. *)
  let array = util "disk-array" and tape = util "tape-library" in
  Alcotest.(check bool) "array within model" true (array <= 0.0238 +. 1e-5);
  Alcotest.(check bool) "array at least reservations" true (array >= 0.008);
  Alcotest.(check bool) "tape within model" true (tape <= 0.0336 +. 1e-5);
  Alcotest.(check bool) "tape carries backups" true (tape > 0.005)

let test_sim_outage_validates_degraded_model () =
  (* Run with the backup level down for the last week of warmup: measured
     loss must not exceed the Degraded model's worst case, and must exceed
     the healthy sim's loss. *)
  let outage = Duration.weeks 1. in
  let cfg = { config with outage = Some (2, outage) } in
  let degraded_worst =
    match
      (Degraded.evaluate Baseline.design ~disabled_level:2 ~outage
         Baseline.scenario_array).Degraded.data_loss.Data_loss.loss
    with
    | Data_loss.Updates d -> Duration.to_seconds d
    | Data_loss.Entire_object -> infinity
  in
  let m = Sim.run ~config:cfg Baseline.design Baseline.scenario_array in
  let healthy = Sim.run ~config Baseline.design Baseline.scenario_array in
  Alcotest.(check bool) "within degraded worst case" true
    (measured_loss m <= degraded_worst +. 1.);
  Alcotest.(check bool) "worse than healthy" true
    (measured_loss m > measured_loss healthy)

let test_sim_timeline () =
  let cfg = { config with record_events = true } in
  let m = Sim.run ~config:cfg Baseline.design Baseline.scenario_array in
  let messages = List.map snd m.Sim.timeline in
  let has needle =
    List.exists
      (fun msg ->
        let nl = String.length needle and ml = String.length msg in
        let rec scan i =
          i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
        in
        nl = 0 || scan 0)
      messages
  in
  Alcotest.(check bool) "non-empty" true (m.Sim.timeline <> []);
  Alcotest.(check bool) "records captures" true (has "stores RP");
  Alcotest.(check bool) "records the failure" true (has "FAILURE");
  Alcotest.(check bool) "records recovery" true (has "recovery complete");
  (* Times are chronological. *)
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      Duration.compare a b <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted m.Sim.timeline);
  (* Recording off => empty. *)
  let quiet = Sim.run ~config Baseline.design Baseline.scenario_array in
  Alcotest.(check (list (pair unit unit))) "empty when off" []
    (List.map (fun _ -> ((), ())) quiet.Sim.timeline)

let test_sim_outage_validation () =
  check_raises_invalid "outage level 0" (fun () ->
      Sim.run
        ~config:{ config with outage = Some (0, Duration.hours 1.) }
        Baseline.design Baseline.scenario_array)

let prop_sim_loss_bounded_random_phase =
  QCheck.Test.make ~name:"sim loss never exceeds the analytical worst case"
    ~count:15
    (QCheck.float_range 0. 672.)
    (fun offset_h ->
      let cfg =
        {
          Sim.warmup = Duration.add (Duration.weeks 12.) (Duration.hours offset_h);
          log = false;
          outage = None;
          record_events = false;
        }
      in
      let m = Sim.run ~config:cfg Baseline.design Baseline.scenario_array in
      measured_loss m <= model_worst_loss Baseline.scenario_array +. 1.)

let suite =
  [
    ( "sim.event_queue",
      [
        Alcotest.test_case "ordering" `Quick test_queue_ordering;
        Alcotest.test_case "fifo on ties" `Quick test_queue_fifo_ties;
        Alcotest.test_case "drain until" `Quick test_queue_drain_until;
        Alcotest.test_case "drain-until boundaries" `Quick
          test_queue_drain_until_boundaries;
        Alcotest.test_case "validation" `Quick test_queue_validation;
        qcheck prop_queue_pops_sorted;
        qcheck prop_queue_fifo_stable_on_ties;
        qcheck prop_queue_drain_until_partitions;
      ] );
    ( "sim.flow_net",
      [
        Alcotest.test_case "single bottleneck" `Quick test_flow_single;
        Alcotest.test_case "fair share" `Quick test_flow_fair_share;
        Alcotest.test_case "rate caps" `Quick test_flow_rate_cap;
        Alcotest.test_case "intra-device multiplicity" `Quick test_flow_multiplicity;
        Alcotest.test_case "reservations" `Quick test_flow_reservation;
        Alcotest.test_case "partial advance" `Quick test_flow_partial_advance;
        Alcotest.test_case "validation" `Quick test_flow_validation;
        qcheck prop_flow_rates_respect_capacity;
        qcheck prop_flow_fairness;
        qcheck prop_flow_conservation_multi_node;
        qcheck prop_flow_completion_delivers_bytes;
      ] );
    ( "sim.execution",
      [
        Alcotest.test_case "object recovery" `Quick test_sim_object_recovery;
        Alcotest.test_case "array recovery" `Quick test_sim_array_recovery;
        Alcotest.test_case "site recovery" `Quick test_sim_site_recovery;
        Alcotest.test_case "retained RP counts" `Quick test_sim_rp_counts;
        Alcotest.test_case "RP ages within model lags" `Quick
          test_sim_rp_ages_within_model_lags;
        Alcotest.test_case "phase sweep bounded" `Slow test_sim_phase_sweep_bounded;
        Alcotest.test_case "async batch mirror" `Quick test_sim_asyncb;
        Alcotest.test_case "strict provisioning semantics" `Quick
          test_sim_asyncb_site_strict_provisioning;
        Alcotest.test_case "erasure-coded design" `Quick test_sim_erasure_design;
        Alcotest.test_case "primary intact" `Quick test_sim_primary_intact;
        Alcotest.test_case "rollback beyond history" `Quick
          test_sim_rollback_total_loss;
        Alcotest.test_case "measured utilization" `Quick
          test_sim_measured_utilization;
        Alcotest.test_case "outage validates Degraded model" `Quick
          test_sim_outage_validates_degraded_model;
        Alcotest.test_case "event timeline" `Quick test_sim_timeline;
        Alcotest.test_case "outage validation" `Quick test_sim_outage_validation;
        qcheck prop_sim_loss_bounded_random_phase;
      ] );
  ]
