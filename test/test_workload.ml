(* Tests for the workload library: PRNG, batch curves, workload specs,
   synthetic traces and the Table 2 characterization pipeline. *)

open Storage_units
open Storage_workload
open Helpers

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false
    (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))

let test_prng_float_range () =
  let g = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_prng_int_bounds () =
  let g = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let i = Prng.int g 17 in
    if i < 0 || i >= 17 then Alcotest.failf "int out of range: %d" i
  done;
  check_raises_invalid "zero bound" (fun () -> Prng.int g 0)

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:99L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:4.
  done;
  close ~tol:0.05 "exponential mean" 4. (!sum /. float_of_int n)

let test_prng_zipf_bounds_and_skew () =
  let g = Prng.create ~seed:3L in
  let n = 100 in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    let i = Prng.zipf g ~n ~s:1.0 in
    if i < 0 || i >= n then Alcotest.failf "zipf out of range: %d" i;
    counts.(i) <- counts.(i) + 1
  done;
  (* Heavy skew: the most popular item must beat the median item several
     times over. *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 5 * counts.(n / 2))

let test_prng_zipf_uniform () =
  let g = Prng.create ~seed:3L in
  let n = 10 in
  let counts = Array.make n 0 in
  for _ = 1 to 10_000 do
    let i = Prng.zipf g ~n ~s:0. in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      if c < 700 || c > 1300 then Alcotest.failf "not near-uniform: %d" c)
    counts

let test_prng_split_independent () =
  let g = Prng.create ~seed:5L in
  let child = Prng.split g in
  Alcotest.(check bool) "diverges" false
    (Int64.equal (Prng.next_int64 g) (Prng.next_int64 child))

(* --- Batch_curve --- *)

let cello_curve =
  Batch_curve.of_samples
    [
      (Duration.minutes 1., Rate.kib_per_sec 727.);
      (Duration.hours 12., Rate.kib_per_sec 350.);
      (Duration.hours 24., Rate.kib_per_sec 317.);
      (Duration.hours 48., Rate.kib_per_sec 317.);
      (Duration.weeks 1., Rate.kib_per_sec 317.);
    ]

let test_curve_exact_samples () =
  close_rate "1 min" (Rate.kib_per_sec 727.)
    (Batch_curve.rate cello_curve (Duration.minutes 1.));
  close_rate "12 hr" (Rate.kib_per_sec 350.)
    (Batch_curve.rate cello_curve (Duration.hours 12.));
  close_rate "1 wk" (Rate.kib_per_sec 317.)
    (Batch_curve.rate cello_curve (Duration.weeks 1.))

let test_curve_clamping () =
  close_rate "below range" (Rate.kib_per_sec 727.)
    (Batch_curve.rate cello_curve (Duration.seconds 1.));
  close_rate "above range" (Rate.kib_per_sec 317.)
    (Batch_curve.rate cello_curve (Duration.weeks 10.))

let test_curve_interpolation_monotone () =
  (* Between 1 min and 12 hr the rate must lie between the endpoints. *)
  let r = Rate.to_kib_per_sec (Batch_curve.rate cello_curve (Duration.hours 1.)) in
  Alcotest.(check bool) "within endpoints" true (r <= 727. && r >= 350.)

let test_curve_unique_bytes_cap () =
  let cap = Size.mib 10. in
  let ub = Batch_curve.unique_bytes ~capacity:cap cello_curve (Duration.weeks 1.) in
  close_size "capped at capacity" cap ub;
  close_size "zero window" Size.zero
    (Batch_curve.unique_bytes cello_curve Duration.zero)

let test_curve_validation () =
  check_raises_invalid "empty" (fun () -> Batch_curve.of_samples []);
  check_raises_invalid "zero window" (fun () ->
      Batch_curve.of_samples [ (Duration.zero, Rate.kib_per_sec 1.) ]);
  check_raises_invalid "duplicate window" (fun () ->
      Batch_curve.of_samples
        [
          (Duration.hours 1., Rate.kib_per_sec 2.);
          (Duration.hours 1., Rate.kib_per_sec 3.);
        ]);
  check_raises_invalid "volume shrinks" (fun () ->
      Batch_curve.of_samples
        [
          (Duration.hours 1., Rate.kib_per_sec 100.);
          (Duration.hours 10., Rate.kib_per_sec 1.);
        ])

let test_curve_constant () =
  let c = Batch_curve.constant (Rate.kib_per_sec 50.) in
  close_rate "any window" (Rate.kib_per_sec 50.)
    (Batch_curve.rate c (Duration.days 3.))

let test_curve_power_law_fit () =
  (* Exact power law rate = 1e6 * win^(-0.3): the fit must recover it. *)
  let samples =
    List.map
      (fun secs ->
        (Duration.seconds secs, Rate.bytes_per_sec (1e6 *. (secs ** -0.3))))
      [ 60.; 600.; 3600.; 86400. ]
  in
  let curve = Batch_curve.of_samples samples in
  let a, b = Batch_curve.fit_power_law curve in
  close ~tol:1e-6 "exponent" 0.3 b;
  close ~tol:1e-6 "coefficient" 1e6 a;
  (* Extrapolation beyond the samples follows the law instead of
     clamping. *)
  let week = Duration.weeks 1. in
  close ~tol:1e-6 "extrapolated"
    (1e6 *. (Duration.to_seconds week ** -0.3))
    (Rate.to_bytes_per_sec (Batch_curve.extrapolate curve week));
  (* Inside the range it agrees with plain interpolation. *)
  close ~tol:1e-9 "interior matches rate"
    (Rate.to_bytes_per_sec (Batch_curve.rate curve (Duration.minutes 5.)))
    (Rate.to_bytes_per_sec (Batch_curve.extrapolate curve (Duration.minutes 5.)));
  check_raises_invalid "single sample" (fun () ->
      Batch_curve.fit_power_law (Batch_curve.constant (Rate.kib_per_sec 1.)))

let test_curve_cello_fit_is_shallow () =
  (* The cello curve's overwrite locality: a mild negative exponent. *)
  let _, b = Batch_curve.fit_power_law cello_curve in
  Alcotest.(check bool) "b in (0, 0.2)" true (b > 0. && b < 0.2);
  (* Extrapolating to a month never exceeds the one-minute rate and never
     increases with the window. *)
  let month = Rate.to_bytes_per_sec (Batch_curve.extrapolate cello_curve (Duration.weeks 4.)) in
  let week = Rate.to_bytes_per_sec (Batch_curve.extrapolate cello_curve (Duration.weeks 1.)) in
  Alcotest.(check bool) "monotone" true (month <= week +. 1e-9)

(* --- Workload --- *)

let workload =
  Workload.make ~name:"test" ~data_capacity:(Size.gib 100.)
    ~avg_access_rate:(Rate.kib_per_sec 1000.)
    ~avg_update_rate:(Rate.kib_per_sec 800.) ~burst_multiplier:10.
    ~batch_curve:cello_curve

let test_workload_validation () =
  check_raises_invalid "zero capacity" (fun () ->
      Workload.make ~name:"w" ~data_capacity:Size.zero
        ~avg_access_rate:(Rate.kib_per_sec 10.)
        ~avg_update_rate:(Rate.kib_per_sec 5.) ~burst_multiplier:1.
        ~batch_curve:cello_curve);
  check_raises_invalid "updates exceed accesses" (fun () ->
      Workload.make ~name:"w" ~data_capacity:(Size.gib 1.)
        ~avg_access_rate:(Rate.kib_per_sec 10.)
        ~avg_update_rate:(Rate.kib_per_sec 50.) ~burst_multiplier:1.
        ~batch_curve:cello_curve);
  check_raises_invalid "burst below 1" (fun () ->
      Workload.make ~name:"w" ~data_capacity:(Size.gib 1.)
        ~avg_access_rate:(Rate.kib_per_sec 10.)
        ~avg_update_rate:(Rate.kib_per_sec 5.) ~burst_multiplier:0.5
        ~batch_curve:cello_curve)

let test_workload_grow () =
  let doubled = Workload.grow workload ~factor:2. in
  close_size "capacity doubles" (Size.gib 200.) doubled.Workload.data_capacity;
  close_rate "rates double" (Rate.kib_per_sec 2000.)
    doubled.Workload.avg_access_rate;
  close "burstiness unchanged" workload.Workload.burst_multiplier
    doubled.Workload.burst_multiplier;
  close_rate "curve scales" (Rate.kib_per_sec 700.)
    (Workload.batch_update_rate doubled (Duration.hours 12.));
  check_raises_invalid "non-positive factor" (fun () ->
      Workload.grow workload ~factor:0.)

let test_workload_derived () =
  close_rate "peak" (Rate.kib_per_sec 8000.) (Workload.peak_update_rate workload);
  close_rate "batch rate" (Rate.kib_per_sec 350.)
    (Workload.batch_update_rate workload (Duration.hours 12.));
  (* 317 KiB/s * 1 wk = 182 GiB, capped at 100 GiB. *)
  close_size "unique bytes capped" (Size.gib 100.)
    (Workload.unique_bytes workload (Duration.weeks 1.))

(* --- Trace --- *)

let small_profile =
  {
    Trace.block_size = Size.kib 64.;
    block_count = 1024;
    mean_update_rate = Rate.kib_per_sec 640.;
    zipf_exponent = 0.9;
    burst_multiplier = 5.;
    burst_fraction = 0.1;
    mean_phase_length = Duration.minutes 1.;
  }

let test_trace_deterministic () =
  let a = Trace.generate ~seed:1L small_profile (Duration.hours 1.)
  and b = Trace.generate ~seed:1L small_profile (Duration.hours 1.) in
  Alcotest.(check int) "same events" (Trace.event_count a) (Trace.event_count b);
  Alcotest.(check bool) "same blocks" true (a.Trace.blocks = b.Trace.blocks)

let test_trace_seed_changes () =
  let a = Trace.generate ~seed:1L small_profile (Duration.hours 1.)
  and b = Trace.generate ~seed:2L small_profile (Duration.hours 1.) in
  Alcotest.(check bool) "different" false (a.Trace.times = b.Trace.times)

let test_trace_times_sorted_and_bounded () =
  let t = Trace.generate ~seed:3L small_profile (Duration.hours 2.) in
  let times = t.Trace.times in
  let n = Array.length times in
  Alcotest.(check bool) "non-empty" true (n > 0);
  for i = 1 to n - 1 do
    if times.(i) < times.(i - 1) then Alcotest.fail "times not sorted"
  done;
  Alcotest.(check bool) "within span" true (times.(n - 1) <= 7200.);
  Array.iter
    (fun b ->
      if b < 0 || b >= small_profile.Trace.block_count then
        Alcotest.fail "block out of range")
    t.Trace.blocks

let test_trace_rate_accuracy () =
  let t = Trace.generate ~seed:4L small_profile (Duration.hours 6.) in
  let measured =
    Rate.to_kib_per_sec (Trace_stats.average_update_rate t)
  in
  (* Modulated Poisson: expect within 20% of the configured mean. *)
  close ~tol:0.2 "mean rate" 640. measured

let test_trace_of_events () =
  let t =
    Trace.of_events ~block_size:(Size.kib 4.) ~block_count:10
      [ (3., 1); (1., 2); (2., 1) ]
  in
  Alcotest.(check int) "count" 3 (Trace.event_count t);
  Alcotest.(check bool) "sorted" true (t.Trace.times = [| 1.; 2.; 3. |]);
  check_raises_invalid "block range" (fun () ->
      Trace.of_events ~block_size:(Size.kib 4.) ~block_count:2 [ (1., 5) ]);
  check_raises_invalid "negative time" (fun () ->
      Trace.of_events ~block_size:(Size.kib 4.) ~block_count:2 [ (-1., 0) ])

let test_trace_validation () =
  check_raises_invalid "bad burst fraction" (fun () ->
      Trace.generate
        { small_profile with Trace.burst_fraction = 0. }
        (Duration.hours 1.));
  check_raises_invalid "bad multiplier" (fun () ->
      Trace.generate
        { small_profile with Trace.burst_multiplier = 0.5 }
        (Duration.hours 1.))

(* --- Trace_io --- *)

let test_trace_io_roundtrip () =
  let t = Trace.generate ~seed:21L small_profile (Duration.minutes 30.) in
  let path = Filename.temp_file "ssdep-trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Trace_io.save_csv t ~path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" e);
      match Trace_io.load_csv ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok loaded ->
        Alcotest.(check int) "event count" (Trace.event_count t)
          (Trace.event_count loaded);
        Alcotest.(check int) "block count" t.Trace.block_count
          loaded.Trace.block_count;
        Alcotest.(check bool) "blocks identical" true
          (t.Trace.blocks = loaded.Trace.blocks);
        (* Times roundtrip through %.6f: equal to a microsecond. *)
        Array.iteri
          (fun i time ->
            if Float.abs (time -. loaded.Trace.times.(i)) > 1e-5 then
              Alcotest.failf "time %d drifted" i)
          t.Trace.times)

let test_trace_io_errors () =
  let write content =
    let path = Filename.temp_file "ssdep-bad" ".csv" in
    Out_channel.with_open_text path (fun oc -> output_string oc content);
    path
  in
  let check_error name content =
    let path = write content in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        match Trace_io.load_csv ~path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: expected an error" name)
  in
  check_error "no header" "time_s,block\n1.0,2\n";
  check_error "bad header" "# ssdep-trace nonsense\n";
  check_error "block out of range"
    "# ssdep-trace block_size_bytes=4096 block_count=4\ntime_s,block\n1.0,9\n";
  check_error "garbage line"
    "# ssdep-trace block_size_bytes=4096 block_count=4\ntime_s,block\nhello\n";
  match Trace_io.load_csv ~path:"/nonexistent/trace.csv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file should error"

let test_trace_import_text () =
  let path = Filename.temp_file "ssdep-import" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            "# external block trace\n\
             0.5 W 0 8192\n\
             1.0 R 4096 4096\n\
             2.0 write 12288 4096\n\
             3.5 W 4096 100\n");
      match
        Trace_io.import_text ~block_size:(Size.kib 4.)
          ~data_capacity:(Size.kib 64.) ~path
      with
      | Error e -> Alcotest.failf "import: %s" e
      | Ok t ->
        (* 8 KiB write covers blocks 0-1, the 4 KiB write block 3, the
           100-byte write block 1; the read is skipped. *)
        Alcotest.(check int) "events" 4 (Trace.event_count t);
        Alcotest.(check bool) "blocks" true
          (t.Trace.blocks = [| 0; 1; 3; 1 |]);
        Alcotest.(check int) "block count" 16 t.Trace.block_count)

let test_trace_import_errors () =
  let write content =
    let path = Filename.temp_file "ssdep-import-bad" ".txt" in
    Out_channel.with_open_text path (fun oc -> output_string oc content);
    path
  in
  let check_error name content =
    let path = write content in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        match
          Trace_io.import_text ~block_size:(Size.kib 4.)
            ~data_capacity:(Size.kib 64.) ~path
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: expected an error" name)
  in
  check_error "wrong arity" "0.5 W 0\n";
  check_error "bad op" "0.5 T 0 4096\n";
  check_error "negative time" "-1 W 0 4096\n";
  check_error "zero length" "0.5 W 0 0\n"

(* --- Trace_stats --- *)

let test_unique_bytes_monotone_in_window () =
  let t = Trace.generate ~seed:5L small_profile (Duration.hours 4.) in
  let ub w =
    Size.to_bytes (Trace_stats.unique_bytes_in_window t w ~stat:`Mean)
  in
  let m1 = ub (Duration.minutes 1.)
  and m10 = ub (Duration.minutes 10.)
  and h1 = ub (Duration.hours 1.) in
  Alcotest.(check bool) "1min <= 10min" true (m1 <= m10 +. 1.);
  Alcotest.(check bool) "10min <= 1h" true (m10 <= h1 +. 1.)

let test_batch_rate_decreases_with_window () =
  let t = Trace.generate ~seed:6L small_profile (Duration.hours 4.) in
  let r w = Rate.to_bytes_per_sec (Trace_stats.batch_update_rate t w) in
  Alcotest.(check bool) "decreasing" true
    (r (Duration.minutes 1.) >= r (Duration.hours 1.))

let test_burst_multiplier_sane () =
  let smooth =
    Trace.generate ~seed:7L
      {
        small_profile with
        Trace.burst_multiplier = 1.;
        burst_fraction = 0.999;
      }
      (Duration.hours 2.)
  in
  let bursty = Trace.generate ~seed:7L small_profile (Duration.hours 2.) in
  let bm t = Trace_stats.burst_multiplier t in
  Alcotest.(check bool) "smooth low" true (bm smooth < 2.);
  Alcotest.(check bool) "bursty higher" true (bm bursty > bm smooth)

let test_stats_roundtrip_20_seeds () =
  (* Round trip: a synthetic trace generated from a known profile must
     give its parameters back through Trace_stats, for every seed. The
     tolerances are empirically calibrated over these exact 20 seeds with
     margin (observed: rate within +-8.3% of the configured 640 KiB/s;
     burst 3.60-4.92x at the default 1-minute bucket, which smooths over
     the ~1-minute exponential phases and so systematically reads LOW,
     and 4.97-5.86x at a 15 s bucket, which resolves single busy phases
     but reads HIGH on within-phase Poisson noise). *)
  for seed = 1 to 20 do
    let t =
      Trace.generate ~seed:(Int64.of_int seed) small_profile
        (Duration.hours 6.)
    in
    let rate = Rate.to_kib_per_sec (Trace_stats.average_update_rate t) in
    close ~tol:0.12
      (Printf.sprintf "mean rate recovered (seed %d)" seed)
      640. rate;
    let coarse = Trace_stats.burst_multiplier t in
    if coarse < 0.65 *. 5. || coarse > 1.02 *. 5. then
      Alcotest.failf "seed %d: 1-min burst %.2fx outside [3.25, 5.10]" seed
        coarse;
    let fine =
      Trace_stats.burst_multiplier ~bucket:(Duration.seconds 15.) t
    in
    if fine < 0.9 *. 5. || fine > 1.3 *. 5. then
      Alcotest.failf "seed %d: 15-s burst %.2fx outside [4.50, 6.50]" seed fine;
    if not (fine >= coarse -. 1e-9) then
      Alcotest.failf "seed %d: finer bucket read below coarser one" seed
  done

let test_to_workload () =
  let t = Trace.generate ~seed:8L small_profile (Duration.hours 6.) in
  let w =
    Trace_stats.to_workload ~name:"synthetic"
      ~windows:[ Duration.minutes 1.; Duration.minutes 30. ]
      t
  in
  Alcotest.(check bool) "access >= update" true
    (Rate.compare w.Workload.avg_access_rate w.Workload.avg_update_rate >= 0);
  close_size "capacity" (Size.mib 64.) w.Workload.data_capacity;
  Alcotest.(check bool) "burst >= 1" true (w.Workload.burst_multiplier >= 1.)

let test_batch_curve_from_trace_monotone () =
  let t = Trace.generate ~seed:9L small_profile (Duration.hours 4.) in
  let curve =
    Trace_stats.batch_curve t
      ~windows:[ Duration.minutes 1.; Duration.minutes 15.; Duration.hours 1. ]
  in
  (* The constructed curve must satisfy Batch_curve's own invariant, and
     rates must not increase with the window. *)
  let samples = Batch_curve.samples curve in
  let rates = List.map (fun (_, r) -> Rate.to_bytes_per_sec r) samples in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "rates decreasing" true (decreasing rates)

(* --- property tests --- *)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in range" ~count:500
    QCheck.(pair (int_range 1 1000) (float_range 0. 2.))
    (fun (n, s) ->
      let g = Prng.create ~seed:123L in
      let x = Prng.zipf g ~n ~s in
      x >= 0 && x < n)

let prop_curve_rate_between_endpoints =
  QCheck.Test.make ~name:"interpolated rate within endpoint range" ~count:200
    (QCheck.float_range 60. 604800.)
    (fun secs ->
      let r =
        Rate.to_kib_per_sec (Batch_curve.rate cello_curve (Duration.seconds secs))
      in
      r <= 727. +. 1e-6 && r >= 317. -. 1e-6)

let prop_unique_bytes_le_volume =
  QCheck.Test.make ~name:"unique bytes <= raw volume" ~count:100
    (QCheck.float_range 60. 86400.)
    (fun secs ->
      let win = Duration.seconds secs in
      let unique = Workload.unique_bytes workload win in
      let raw = Rate.over workload.Workload.avg_update_rate win in
      Size.to_bytes unique <= Size.to_bytes raw +. 1.)

let suite =
  [
    ( "workload.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "float in [0,1)" `Quick test_prng_float_range;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
        Alcotest.test_case "zipf skew" `Slow test_prng_zipf_bounds_and_skew;
        Alcotest.test_case "zipf uniform at s=0" `Slow test_prng_zipf_uniform;
        Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        qcheck prop_zipf_in_range;
      ] );
    ( "workload.batch_curve",
      [
        Alcotest.test_case "exact samples" `Quick test_curve_exact_samples;
        Alcotest.test_case "clamping" `Quick test_curve_clamping;
        Alcotest.test_case "interpolation bounded" `Quick
          test_curve_interpolation_monotone;
        Alcotest.test_case "unique bytes capacity cap" `Quick
          test_curve_unique_bytes_cap;
        Alcotest.test_case "validation" `Quick test_curve_validation;
        Alcotest.test_case "constant curve" `Quick test_curve_constant;
        Alcotest.test_case "power-law fit" `Quick test_curve_power_law_fit;
        Alcotest.test_case "cello fit" `Quick test_curve_cello_fit_is_shallow;
        qcheck prop_curve_rate_between_endpoints;
      ] );
    ( "workload.spec",
      [
        Alcotest.test_case "validation" `Quick test_workload_validation;
        Alcotest.test_case "derived quantities" `Quick test_workload_derived;
        Alcotest.test_case "growth scaling" `Quick test_workload_grow;
        qcheck prop_unique_bytes_le_volume;
      ] );
    ( "workload.trace",
      [
        Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
        Alcotest.test_case "seed changes stream" `Quick test_trace_seed_changes;
        Alcotest.test_case "sorted and bounded" `Quick
          test_trace_times_sorted_and_bounded;
        Alcotest.test_case "rate accuracy" `Slow test_trace_rate_accuracy;
        Alcotest.test_case "of_events" `Quick test_trace_of_events;
        Alcotest.test_case "profile validation" `Quick test_trace_validation;
        Alcotest.test_case "csv roundtrip" `Quick test_trace_io_roundtrip;
        Alcotest.test_case "csv error handling" `Quick test_trace_io_errors;
        Alcotest.test_case "external text import" `Quick test_trace_import_text;
        Alcotest.test_case "import error handling" `Quick
          test_trace_import_errors;
      ] );
    ( "workload.trace_stats",
      [
        Alcotest.test_case "unique bytes monotone" `Quick
          test_unique_bytes_monotone_in_window;
        Alcotest.test_case "batch rate decreasing" `Quick
          test_batch_rate_decreases_with_window;
        Alcotest.test_case "burst multiplier" `Slow test_burst_multiplier_sane;
        Alcotest.test_case "profile round-trip over 20 seeds" `Slow
          test_stats_roundtrip_20_seeds;
        Alcotest.test_case "to_workload" `Quick test_to_workload;
        Alcotest.test_case "curve from trace monotone" `Quick
          test_batch_curve_from_trace_monotone;
      ] );
  ]
