(* Regex blind spots for the no-exit invariant, which matched
   per line: a longident split across lines, and an argument that is
   neither a digit nor an opening parenthesis. *)

let quit () =
  Stdlib.
  exit
    0

let quit_with code = exit code
