(* Ordinary library code: pure, local state only, specific handlers. *)

let rec fold f acc = function [] -> acc | x :: xs -> fold f (f acc x) xs

let total xs = fold ( + ) 0 xs

let mean xs =
  match xs with
  | [] -> None
  | xs -> Some (float_of_int (total xs) /. float_of_int (List.length xs))

let parse_int s = match int_of_string_opt s with Some n -> n | None -> 0
