(* Top-level mutable state beyond tables: created at module init, so it
   is shared by every domain that touches the library. *)

let counter = ref 0
let scratch = Buffer.create 64

let next () =
  incr counter;
  Buffer.clear scratch;
  !counter

(* Function-local state is per call. Must NOT fire. *)
let fresh () = ref 0
