(* Plain firing: both the retired regex and SA001 see this one. *)

let roll () = Random.int 6
