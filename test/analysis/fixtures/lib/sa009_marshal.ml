(* Marshal and Obj are confined to the audited allowlist (the oracle's
   golden files and the benchmark harness). *)

let to_wire v = Marshal.to_string v []
let cast x = Obj.magic x
