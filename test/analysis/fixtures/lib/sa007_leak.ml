(* An acquisition with a hand-rolled release: the close on the happy
   path does not run when [Unix.read] raises, so the descriptor leaks. *)

let read_some path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 4096 in
  let n = Unix.read fd buf 0 4096 in
  Unix.close fd;
  Bytes.sub_string buf 0 n

(* The fixed shape. Must NOT fire. *)
let read_some_fixed path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let buf = Bytes.create 4096 in
      let n = Unix.read fd buf 0 4096 in
      Bytes.sub_string buf 0 n)
