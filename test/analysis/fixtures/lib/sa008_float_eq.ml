(* Exact float comparison: representation error makes [=] against a
   non-zero literal a latent always-false (or flaky) test. *)

let is_pi x = x = 3.14159
let same x y = compare (x : float) y = 0

(* Comparing against zero is exact and idiomatic. Must NOT fire. *)
let is_zero x = x = 0.
