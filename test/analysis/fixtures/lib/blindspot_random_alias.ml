(* Regex blind spot: the retired checker matched the literal substring
   ["Random" ^ "."], which never appears below — the module alias hides
   it. The AST rule sees the module path itself. *)

module R = Random

let draw () = R.int 6
