(* A stale file-wide suppression: nothing below touches Marshal or Obj,
   so the allow itself is reported. *)

[@@@sslint.allow "SA009"]

let id x = x
