(* Plain firing: both the retired regex and SA003 see this one. *)

let die () = Stdlib.exit 1
