(* Regex blind spot: [open] plus a bare call — no dotted path anywhere
   for a substring match to find. *)

open Random

let draw () = int 6
