(* Plain firing: library code terminating the process. *)

let die () = Stdlib.exit 1
