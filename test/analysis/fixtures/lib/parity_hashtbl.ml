(* Plain firing: both the retired regex and SA002 see this one. *)

let tbl = Hashtbl.create 16
let remember k v = Hashtbl.replace tbl k v
