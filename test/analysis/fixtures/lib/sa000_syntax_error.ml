(* Not OCaml from here on: the analyzer must degrade to one SA000
   finding, not crash or silently skip the file. *)

let broken = (
