(* Regex blind spot: the retired checker anchored on a [let] line that
   also contains the creation call; a type annotation pushes the call to
   its own (indented) line. Still a top-level shared table. *)

let table :
    (string, int) Hashtbl.t =
  Hashtbl.create 16

let remember k v = Hashtbl.replace table k v
