val tune : ?jobs:int -> unit -> unit
(** Regex blind spot: the retired val-block scan exempted any block
    whose text mentions the marker — including this doc comment, which
    merely talks about [@@deprecated] without carrying the attribute.
    The AST rule reads the real attribute list and still fires. *)
