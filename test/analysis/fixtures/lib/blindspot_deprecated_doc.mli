val tune : ?jobs:int -> unit -> unit
(** Blind spot of the retired val-block scan: it exempted any block
    whose text mentioned the marker — including this doc comment, which
    merely talks about [@@deprecated] without carrying the attribute.
    The AST rule reads real attributes, and since the legacy shims were
    removed it grants no deprecation exemption at all. *)
