(* Plain firing: both the retired regex and SA004 see this one (the
   unprotected acquisition additionally draws SA007). *)

let make () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
