(* Inside lib/serve the socket primitives are legitimate (SA004 scopes
   them here), and the acquisition sits under Fun.protect (no SA007). *)

let with_socket f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)
