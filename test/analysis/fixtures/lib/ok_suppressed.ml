(* A used suppression: the exit would be SA003, the allow covers it, and
   because it suppressed something there is no SA011 either. The file
   analyzes clean. *)

let[@sslint.allow "SA003"] quit code = exit code
