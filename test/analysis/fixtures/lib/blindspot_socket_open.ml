(* Regex blind spot: the socket-confinement regex matched dotted
   [Unix.]-prefixed calls only; a local open leaves the primitive bare. *)

let make_socket () =
  let open Unix in
  socket PF_INET SOCK_STREAM 0
