(* A catch-all that turns every exception into a value: it would eat
   Out_of_memory, Stack_overflow and Ctrl-C. No regex can see this —
   the handler's pattern and body are structure, not substrings. *)

let protect f = try Some (f ()) with _ -> None

(* The fixed shape: fatal exceptions re-raise first. Must NOT fire. *)
let protect_fixed f =
  try Some (f ()) with
  | (Out_of_memory | Stack_overflow | Sys.Break) as fatal -> raise fatal
  | _ -> None

(* A catch-all that itself re-raises is a backtrace-preserving wrapper,
   not a swallow. Must NOT fire. *)
let observe f =
  try f ()
  with exn ->
    print_endline "failed";
    raise exn
