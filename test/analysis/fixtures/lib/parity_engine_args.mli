val evaluate : ?jobs:int -> ?cache:bool -> string -> int
(** Plain firing: both the retired val-block scan and SA005 see this
    interface (twice — once per engine-context argument). *)
