Project source analysis: AST-grade rules with stable SA codes, a human
table and machine JSON, and ssdep-lint-compatible exit codes.

The analyzer is distinct from `ssdep lint`: that one checks storage
*designs* against the paper's conventions; sslint checks this project's
own *OCaml sources* against its source invariants.

The rule registry, one line per rule; SA001-SA005 are the AST ports of
the retired regex checker's invariants:

  $ sslint --rules
  SA000  error   source file does not parse
  SA001  error   ambient randomness: Random referenced outside the seeded PRNG modules (alias- and open-robust)  [ported from check_sources]
  SA002  error   top-level mutable Hashtbl outside the audited shared-state modules  [ported from check_sources]
  SA003  error   library code terminates the process (exit, however spelled or split)  [ported from check_sources]
  SA004  error   socket primitive outside lib/serve  [ported from check_sources]
  SA005  error   ?jobs/?cache/?lint in a public interface outside lib/engine (route the engine context through ?engine)  [ported from check_sources]
  SA006  error   catch-all exception handler swallows Out_of_memory / Stack_overflow / Sys.Break
  SA007  warning resource acquisition (Unix.openfile/socket, Mutex.lock) in a binding without Fun.protect/Mutex.protect
  SA008  warning float equality: =/<>/==/compare against a non-zero float literal or float-annotated operand
  SA009  error   Marshal/Obj outside the audited allowlist
  SA010  error   top-level mutable state (ref, Array.make, Buffer/Queue/Stack.create) outside the audited shared-state modules
  SA011  warning unused [@sslint.allow] suppression (nothing at this scope fires the code)

Every rule has a firing fixture. The full table over the fixture tree
(the `ok_*` files prove the negative space: clean code, a used
suppression and an in-scope socket produce no findings):

  $ sslint fixtures
  fixtures/lib/blindspot_deprecated_doc.mli:1:11: SA005  error    val tune exposes ?jobs outside lib/engine (route the engine context through ?engine)
  fixtures/lib/blindspot_exit_multiline.ml:6:2: SA003  error    process exit from library code (Stdlib.exit)
  fixtures/lib/blindspot_exit_multiline.ml:10:21: SA003  error    process exit from library code (exit)
  fixtures/lib/blindspot_hashtbl_layout.ml:7:2: SA002  error    top-level Hashtbl.create: shared mutable table outside the audited modules
  fixtures/lib/blindspot_random_alias.ml:5:11: SA001  error    Random: ambient randomness; route through the seeded PRNG (lib/prng)
  fixtures/lib/blindspot_random_open.ml:4:5: SA001  error    Random: ambient randomness; route through the seeded PRNG (lib/prng)
  fixtures/lib/blindspot_socket_open.ml:6:2: SA004  error    socket primitive socket (via open Unix) outside lib/serve
  fixtures/lib/sa000_syntax_error.ml:5:0: SA000  error    syntax error
  fixtures/lib/sa003_exit.ml:3:13: SA003  error    process exit from library code (Stdlib.exit)
  fixtures/lib/sa006_swallow.ml:5:37: SA006  error    catch-all handler swallows Out_of_memory/Stack_overflow/Sys.Break; re-raise fatal exceptions first
  fixtures/lib/sa007_leak.ml:5:11: SA007  warning  Unix.openfile acquired without Fun.protect/Mutex.protect in the same binding
  fixtures/lib/sa008_float_eq.ml:4:14: SA008  warning  exact float comparison; use an epsilon or Float.equal
  fixtures/lib/sa008_float_eq.ml:5:15: SA008  warning  exact float comparison; use an epsilon or Float.equal
  fixtures/lib/sa009_marshal.ml:4:16: SA009  error    Marshal referenced outside the audited allowlist
  fixtures/lib/sa009_marshal.ml:5:13: SA009  error    Obj referenced outside the audited allowlist
  fixtures/lib/sa010_toplevel_state.ml:4:14: SA010  error    top-level mutable state (ref) outside the audited modules
  fixtures/lib/sa010_toplevel_state.ml:5:14: SA010  error    top-level mutable state (Buffer.create) outside the audited modules
  fixtures/lib/sa011_unused_allow.ml:4:0: SA011  warning  unused [@sslint.allow "SA009"]: nothing here fires the code
  14 error(s), 4 warning(s) across 17 file(s)
  [2]

A clean file exits 0:

  $ sslint fixtures/lib/ok_clean.ml
  clean: 1 file(s) analyzed

A used suppression silences both the finding and SA011:

  $ sslint fixtures/lib/ok_suppressed.ml
  clean: 1 file(s) analyzed

Warnings exit 0 by default, 1 under --deny-warnings (same contract as
ssdep lint):

  $ sslint fixtures/lib/sa007_leak.ml
  fixtures/lib/sa007_leak.ml:5:11: SA007  warning  Unix.openfile acquired without Fun.protect/Mutex.protect in the same binding
  0 error(s), 1 warning(s) across 1 file(s)

  $ sslint --deny-warnings fixtures/lib/sa007_leak.ml
  fixtures/lib/sa007_leak.ml:5:11: SA007  warning  Unix.openfile acquired without Fun.protect/Mutex.protect in the same binding
  0 error(s), 1 warning(s) across 1 file(s)
  [1]

Errors exit 2:

  $ sslint fixtures/lib/sa003_exit.ml
  fixtures/lib/sa003_exit.ml:3:13: SA003  error    process exit from library code (Stdlib.exit)
  1 error(s), 0 warning(s) across 1 file(s)
  [2]

The machine-readable report pins the JSON shape:

  $ sslint --json fixtures/lib/sa003_exit.ml
  {
    "tool": "sslint",
    "files": 1,
    "findings": [
      {
        "code": "SA003",
        "severity": "error",
        "file": "fixtures/lib/sa003_exit.ml",
        "line": 3,
        "col": 13,
        "message": "process exit from library code (Stdlib.exit)"
      }
    ],
    "counts": {
      "errors": 1,
      "warnings": 0
    }
  }
  [2]

An unreadable path is a usage error:

  $ sslint no/such/path
  sslint: no such path no/such/path
  [2]
