(* The testkit's own contract: seeded generation is deterministic, valid
   cases really validate, shrinking terminates, corpus files round-trip,
   the oracle registry is coherent, and a whole fuzz session is a pure
   function of (oracles, corpus, seed, budget). *)

open Storage_model
open Storage_spec
module Engine = Storage_engine
module Testkit = Storage_testkit
module Seeded = Testkit.Seeded
module Gen = Testkit.Gen
module Shrink = Testkit.Shrink
module Oracle = Testkit.Oracle
module Corpus = Testkit.Corpus
module Fuzz = Testkit.Fuzz

let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

let check_same_bytes msg a b =
  Alcotest.(check bool) msg true (String.equal (bytes_of a) (bytes_of b))

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Seeded pools *)

let test_draw_deterministic () =
  let pool = Seeded.pool () in
  let a = Seeded.draw ~seed:[| 17; 2004 |] ~n:50 pool in
  let b = Seeded.draw ~seed:[| 17; 2004 |] ~n:50 pool in
  let names ds = List.map (fun d -> d.Design.name) ds in
  Alcotest.(check (list string)) "same seed, same draw" (names a) (names b);
  let c = Seeded.draw ~seed:[| 18; 2004 |] ~n:50 pool in
  Alcotest.(check bool) "different seed, different draw" false
    (names a = names c)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_case_deterministic () =
  (* Same per-case seed, twice, compared before any evaluation touches
     the fingerprint memo: byte-identical designs and scenarios. *)
  List.iter
    (fun seed ->
      let a = Gen.case ~seed ~index:0 in
      let b = Gen.case ~seed ~index:0 in
      check_same_bytes
        (Printf.sprintf "design bytes for seed 0x%Lx" seed)
        a.Gen.design b.Gen.design;
      check_same_bytes
        (Printf.sprintf "scenarios for seed 0x%Lx" seed)
        a.Gen.scenarios b.Gen.scenarios;
      Alcotest.(check bool) "same kind" true (a.Gen.kind = b.Gen.kind))
    [ 1L; 42L; 0xDEADBEEFL; -7L ]

let test_valid_cases_validate () =
  let master = Storage_workload.Prng.create ~seed:2004L in
  for index = 0 to 29 do
    let seed = Storage_workload.Prng.next_int64 master in
    let case = Gen.case ~seed ~index in
    Alcotest.(check bool) "scenarios non-empty" true
      (case.Gen.scenarios <> []);
    match case.Gen.kind with
    | Gen.Valid ->
      Alcotest.(check bool)
        (Printf.sprintf "valid case %d validates" index)
        true
        (Result.is_ok (Design.validate case.Gen.design))
    | Gen.Mutant f ->
      Alcotest.(check bool) "mutant factor in range" true
        (f >= 0.25 *. 0.85 && f <= 64. *. 1.15)
  done

let test_frontier_factor () =
  let d = List.hd (Seeded.pool ()) in
  match Gen.frontier_factor d with
  | Some f ->
    Alcotest.(check bool) "factor in [0.25, 64]" true (f >= 0.25 && f <= 64.);
    Alcotest.(check bool) "frontier factor breaks validation" true
      (Result.is_error (Design.validate (Seeded.scaled ~factor:f d)))
  | None ->
    Alcotest.(check bool) "still valid at 64x" true
      (Result.is_ok (Design.validate (Seeded.scaled ~factor:64. d)))

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let test_shrink_terminates () =
  let d = List.hd (Seeded.pool ()) in
  (* keep = always: shrinks all the way to a fixpoint (or the cap). *)
  let shrunk, steps = Shrink.minimize ~keep:(fun _ -> true) d in
  Alcotest.(check bool) "bounded" true (steps <= 64);
  Alcotest.(check bool) "fixpoint or cap" true
    (steps = 64 || Shrink.candidates shrunk = []);
  (* keep = never: the original survives untouched. *)
  let same, zero = Shrink.minimize ~keep:(fun _ -> false) d in
  Alcotest.(check int) "no step taken" 0 zero;
  Alcotest.(check bool) "unchanged" true (same == d);
  (* Determinism: same keep, same path. *)
  let shrunk', steps' = Shrink.minimize ~keep:(fun _ -> true) d in
  Alcotest.(check int) "same step count" steps steps';
  check_same_bytes "same shrunk design" shrunk shrunk'

(* ------------------------------------------------------------------ *)
(* Spec writer and corpus round-trips *)

let sample_entry () =
  let case = Gen.case ~seed:0x5EEDL ~index:3 in
  {
    Corpus.oracle = "self-test-fail";
    seed = 0x5EEDL;
    case_index = 3;
    message = "synthetic failure\nwith a newline to sanitize";
    shrink_steps = 2;
    design = case.Gen.design;
    scenarios = case.Gen.scenarios;
  }

let test_spec_writer_fixpoint () =
  let case = Gen.case ~seed:0xF00DL ~index:0 in
  let s1 = ok (Spec.design_to_string ~scenarios:case.Gen.scenarios case.Gen.design) in
  let d = ok (Spec.design_of_string ~validate:false s1) in
  let scs = ok (Spec.scenarios_of_string s1) in
  let s2 = ok (Spec.design_to_string ~scenarios:scs d) in
  Alcotest.(check string) "write . parse . write = write" s1 s2;
  Alcotest.(check (list string)) "scenario names survive"
    (List.map fst case.Gen.scenarios)
    (List.map fst scs)

let test_corpus_roundtrip () =
  let e = sample_entry () in
  let s1 = ok (Corpus.to_string e) in
  let e' = ok (Corpus.of_string s1) in
  Alcotest.(check string) "oracle" e.Corpus.oracle e'.Corpus.oracle;
  Alcotest.(check int64) "seed" e.Corpus.seed e'.Corpus.seed;
  Alcotest.(check int) "case index" e.Corpus.case_index e'.Corpus.case_index;
  Alcotest.(check int) "shrink steps" e.Corpus.shrink_steps
    e'.Corpus.shrink_steps;
  Alcotest.(check string) "message survives, one line"
    "synthetic failure with a newline to sanitize" e'.Corpus.message;
  Alcotest.(check (list string)) "scenario names"
    (List.map fst e.Corpus.scenarios)
    (List.map fst e'.Corpus.scenarios);
  let s2 = ok (Corpus.to_string e') in
  Alcotest.(check string) "serialization fixpoint" s1 s2;
  Alcotest.(check string) "filename" "self-test-fail-case3-0x5eed.ssdep"
    (Corpus.filename e)

(* ------------------------------------------------------------------ *)
(* Oracle registry *)

let test_registry () =
  let names = List.map (fun o -> o.Oracle.name) Oracle.all in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "self-test-fail not in defaults" false
    (List.exists (fun o -> o.Oracle.name = "self-test-fail") Oracle.defaults);
  Alcotest.(check int) "all = defaults + self-test"
    (List.length Oracle.defaults + 1)
    (List.length Oracle.all);
  Alcotest.(check bool) "find self-test-fail" true
    (Oracle.find "self-test-fail" <> None);
  Alcotest.(check bool) "find bogus" true (Oracle.find "bogus" = None)

let with_ctx f =
  let engine = Engine.create () in
  let aux = Engine.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () ->
      Engine.shutdown engine;
      Engine.shutdown aux)
    (fun () -> f { Oracle.engine; aux })

let test_defaults_hold_on_pool () =
  (* Every production oracle passes (or skips) on a known-good pool
     design — the fuzzer's clean-run baseline in miniature. *)
  with_ctx @@ fun ctx ->
  let d = List.hd (Seeded.pool ()) in
  let scs =
    Gen.scenarios (Storage_workload.Prng.create ~seed:11L) d
  in
  List.iter
    (fun o ->
      match o.Oracle.check ctx d scs with
      | Oracle.Pass | Oracle.Skip _ -> ()
      | Oracle.Fail msg -> Alcotest.failf "%s failed: %s" o.Oracle.name msg)
    Oracle.defaults

(* ------------------------------------------------------------------ *)
(* Fuzz sessions *)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let self_test = [ Option.get (Oracle.find "self-test-fail") ]

let finding_strings (o : Fuzz.outcome) =
  List.map (fun f -> ok (Corpus.to_string f.Fuzz.entry)) o.Fuzz.findings

let test_fuzz_deterministic () =
  (* Two sessions, same seed and budget, separate corpus directories:
     identical findings and identical corpus files. The self-test oracle
     fails every case, exercising shrink + persist on each. *)
  Engine.with_engine @@ fun engine ->
  let run dir =
    ok (Fuzz.run ~oracles:self_test ~corpus_dir:dir ~engine ~seed:42L
          ~budget:3 ())
  in
  let dir_a = fresh_dir "ssdep-testkit-a" and dir_b = fresh_dir "ssdep-testkit-b" in
  let a = run dir_a and b = run dir_b in
  Alcotest.(check int) "3 cases" 3 a.Fuzz.cases;
  Alcotest.(check int) "3 findings" 3 (List.length a.Fuzz.findings);
  Alcotest.(check (list string)) "identical findings" (finding_strings a)
    (finding_strings b);
  let listing dir = Array.to_list (Sys.readdir dir) |> List.sort compare in
  Alcotest.(check (list string)) "identical corpus filenames"
    (listing dir_a) (listing dir_b);
  List.iter
    (fun f ->
      let read d = In_channel.with_open_text (Filename.concat d f) In_channel.input_all in
      Alcotest.(check string) ("identical corpus file " ^ f) (read dir_a)
        (read dir_b))
    (listing dir_a)

let test_corpus_replay_and_skip () =
  Engine.with_engine @@ fun engine ->
  let dir = fresh_dir "ssdep-testkit-replay" in
  let seeded =
    ok (Fuzz.run ~oracles:self_test ~corpus_dir:dir ~engine ~seed:7L
          ~budget:1 ())
  in
  Alcotest.(check int) "one finding seeded" 1 (List.length seeded.Fuzz.findings);
  (* Replay with the recorded oracle active: the entry still fails. *)
  let again =
    ok (Fuzz.run ~oracles:Oracle.all ~corpus_dir:dir ~engine ~seed:7L
          ~budget:0 ())
  in
  Alcotest.(check int) "replayed" 1 again.Fuzz.replayed;
  Alcotest.(check int) "not fixed" 0 again.Fuzz.fixed;
  (match again.Fuzz.findings with
  | [ f ] ->
    Alcotest.(check bool) "marked as replay" true f.Fuzz.replayed;
    Alcotest.(check string) "oracle preserved" "self-test-fail"
      f.Fuzz.entry.Corpus.oracle
  | fs -> Alcotest.failf "expected 1 replay finding, got %d" (List.length fs));
  (* Replay with only the production registry: the self-test entry is
     not active, so a default run stays clean — the property that lets a
     demonstration counterexample live in the checked-in corpus. *)
  let default_run =
    ok (Fuzz.run ~corpus_dir:dir ~engine ~seed:7L ~budget:0 ())
  in
  Alcotest.(check int) "inactive oracle not replayed" 0
    default_run.Fuzz.replayed;
  Alcotest.(check int) "no findings" 0 (List.length default_run.Fuzz.findings);
  (* Single-file replay reproduces the failure through Oracle.all... *)
  let path =
    match (List.hd seeded.Fuzz.findings).Fuzz.file with
    | Some p -> p
    | None -> Alcotest.fail "finding not persisted"
  in
  (match ok (Fuzz.replay ~engine path) with
  | Some f ->
    Alcotest.(check bool) "replay marks replayed" true f.Fuzz.replayed
  | None -> Alcotest.fail "replay should still fail");
  (* ...and errors out when the recorded oracle is not in the set. *)
  match Fuzz.replay ~oracles:Oracle.defaults ~engine path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-oracle error"

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "testkit.gen",
      [
        t "draw is seed-deterministic" test_draw_deterministic;
        t "cases are seed-deterministic" test_case_deterministic;
        t "valid cases validate, mutants bounded" test_valid_cases_validate;
        t "frontier factor brackets validity" test_frontier_factor;
      ] );
    ( "testkit.shrink",
      [ t "minimize terminates deterministically" test_shrink_terminates ] );
    ( "testkit.corpus",
      [
        t "spec writer fixpoint" test_spec_writer_fixpoint;
        t "entry round-trip" test_corpus_roundtrip;
      ] );
    ( "testkit.oracle",
      [
        t "registry coherent" test_registry;
        t "defaults pass on pool design" test_defaults_hold_on_pool;
      ] );
    ( "testkit.fuzz",
      [
        t "sessions are reproducible" test_fuzz_deterministic;
        t "corpus replay, fix-skip and single-file replay"
          test_corpus_replay_and_skip;
      ] );
  ]
