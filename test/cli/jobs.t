The design-space search gives identical output whatever the number of
evaluation domains — parallelism never changes a result, only the time:

  $ ssdep optimize --jobs 1 > serial.out
  $ ssdep optimize --jobs 4 > parallel.out
  $ diff serial.out parallel.out

The SSDEP_JOBS environment variable supplies the default:

  $ SSDEP_JOBS=4 ssdep optimize > env.out
  $ diff serial.out env.out

A malformed SSDEP_JOBS is a configuration error: exit code 2 and a
message naming the variable, on every subcommand that builds an engine —
not a usage error, since no flag was misspelled:

  $ SSDEP_JOBS=banana ssdep optimize
  ssdep: SSDEP_JOBS: invalid jobs count "banana", expected a positive integer
  [2]

  $ SSDEP_JOBS=0 ssdep simulate -s array
  ssdep: SSDEP_JOBS: invalid jobs count "0", expected a positive integer
  [2]

An explicit --jobs wins over the environment, even a malformed one:

  $ SSDEP_JOBS=banana ssdep optimize --jobs 1 > env_override.out
  $ diff serial.out env_override.out

Invalid job counts are rejected up front with a clear message:

  $ ssdep optimize --jobs 0
  ssdep: option '--jobs': invalid jobs count "0", expected a positive integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

  $ ssdep optimize --jobs=-3
  ssdep: option '--jobs': invalid jobs count "-3", expected a positive integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

  $ ssdep optimize --jobs banana
  ssdep: option '--jobs': invalid jobs count "banana", expected a positive
         integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

The failure-phase sweep of the simulator accepts the same flag:

  $ ssdep simulate -s array --sweep 4 --jobs 2 > sweep2.out
  $ ssdep simulate -s array --sweep 4 --jobs 1 > sweep1.out
  $ diff sweep1.out sweep2.out
