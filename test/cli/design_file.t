A self-contained design file parses, validates and evaluates:

  $ cat > tiny.ssdep <<'DESIGN'
  > [workload]
  > name = tiny
  > data_capacity = 100 GiB
  > avg_access_rate = 1 MiB/s
  > avg_update_rate = 500 KiB/s
  > burst_multiplier = 4
  > batch = 1min: 400 KiB/s, 12hr: 200 KiB/s
  > 
  > [device box]
  > location = r/s/b
  > capacity_slots = 16 x 100 GiB
  > bandwidth_slots = 8 x 50 MiB/s
  > enclosure_bandwidth = 300 MiB/s
  > spare = dedicated 1min
  > 
  > [level 0]
  > technique = primary
  > device = box
  > raid = raid1
  > 
  > [level 1]
  > technique = split_mirror
  > device = box
  > acc = 12hr
  > retention = 2
  > 
  > [business]
  > outage_penalty = $1k/hr
  > loss_penalty = $1k/hr
  > 
  > [scenario oops]
  > scope = object
  > target_age = 14hr
  > object_size = 1 MiB
  > DESIGN

  $ ssdep check tiny.ssdep | tail -2
  scenario: oops
  design OK

  $ ssdep evaluate --file tiny.ssdep | grep loss
  loss entire object
  penalties: outage $0 + loss $26.28M = $26.28M

Malformed files are rejected with the offending location:

  $ echo 'orphan = 1' > broken.ssdep
  $ ssdep check broken.ssdep
  ssdep: line 1: key "orphan" outside any section
  [124]

A missing or unreadable file is a configuration error, not a parse
error: exit code 2, a message naming the file, and no raw Sys_error
backtrace — on every subcommand that loads a design:

  $ ssdep evaluate --file nonexistent.ssdep
  ssdep: nonexistent.ssdep: No such file or directory
  [2]

  $ ssdep check nonexistent.ssdep
  ssdep: nonexistent.ssdep: No such file or directory
  [2]

  $ ssdep report --file no/such/dir/x.ssdep
  ssdep: no/such/dir/x.ssdep: No such file or directory
  [2]
