Engine statistics are off by default, and turning them on never changes a
result: the instrumented run's output is identical apart from the trailing
confirmation line.

  $ ssdep optimize > plain.out
  $ ssdep optimize --stats-json stats.json | sed '$d' > recorded.out
  $ diff plain.out recorded.out

The JSON dump names the evaluation stages, the memo cache and the domain
pool (values vary run to run, so check key presence only):

  $ grep -c '"evaluate.run"' stats.json
  1
  $ grep -c '"evaluate.stage.utilization"' stats.json
  1
  $ grep -c '"memo.hits"' stats.json
  1
  $ grep -c '"memo.misses"' stats.json
  1
  $ grep -c '"pool.domain.0.tasks"' stats.json
  1
  $ grep -c '"search.evaluations"' stats.json
  1

With two evaluation domains the pool reports a second per-domain task
counter:

  $ ssdep optimize --jobs 2 --stats-json stats2.json > /dev/null
  $ grep -c '"pool.domain.1.tasks"' stats2.json
  1

--stats prints the same snapshot as a table, on every engine subcommand:

  $ ssdep optimize --stats | grep -c 'engine statistics'
  1
  $ ssdep evaluate --stats | grep -c 'engine statistics'
  1
  $ ssdep simulate -s array --stats | grep -c 'sim.events'
  1
