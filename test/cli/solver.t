Metaheuristic solvers over the candidate grid. Annealing is a pure
function of (seed, budget): the report below is byte-stable, and the
same run under --jobs 4 is byte-identical to serial:

  $ ssdep optimize --solver anneal --budget 400 --seed 11 | sed 's/ *$//'
  solver anneal: 76 grid points, budget 400, 400 evaluated, 131 moves accepted
  best: asyncB mirror x2                 out $1.57M    worst RT 10.5 hr   worst DL 2.0 min    total $2.09M

  $ ssdep optimize --solver anneal --budget 400 --seed 11 > serial.out
  $ ssdep optimize --solver anneal --budget 400 --seed 11 --jobs 4 > parallel.out
  $ ssdep optimize --solver anneal --budget 400 --seed 11 --jobs 2 --chunk 3 > chunked.out
  $ cmp serial.out parallel.out && cmp serial.out chunked.out

Branch-and-bound prunes with the lint feasibility frontier and a
monotone cost bound, and still lands on the exhaustive optimum (compare
the totals with topk.t's grid search):

  $ ssdep optimize --solver bnb --grid-scale 2 | sed 's/ *$//'
  solver bnb: 2887 grid points, 1924 evaluated, 363 pruned (3 by cost, 360 infeasible), 546 bound probes
  best: asyncB mirror x2                 out $1.57M    worst RT 10.5 hr   worst DL 2.0 min    total $2.09M

--json emits the machine-readable report (seed echoed in hex, the best
design inlined):

  $ ssdep optimize --solver anneal --budget 100 --seed 3 --json
  {
    "solver": "anneal",
    "grid_points": 76,
    "budget": 100,
    "seed": "0x3",
    "evaluations": 100,
    "considered": 100,
    "moves_accepted": 49,
    "pruned_cost": 0,
    "pruned_infeasible": 0,
    "bound_probes": 0,
    "feasible": true,
    "best": {
      "design": "asyncB mirror x2",
      "outlays_usd": 1566627.09517,
      "worst_recovery_hours": 10.4680206497,
      "worst_loss": "2.0 min",
      "total_usd": 2091694.79432,
      "feasible": true
    }
  }

A portfolio solves every member jointly: members price each other's load
on the shared hardware, and the assignment rolls up into one site-level
summary whose outlays count shared fixed costs once:

  $ ssdep optimize --portfolio ../../examples/designs/baseline.ssdep --portfolio ../../examples/designs/mail.ssdep | sed 's/ *$//'
  portfolio of 2 objects (solver grid):
    cello            asyncB mirror x2                 out $1.57M    worst RT 10.5 hr   worst DL 2.0 min    total $2.09M
    mail             asyncB mirror x1                 out $1.00M    worst RT 9.0 hr    worst DL 2.0 min    total $1.09M
  site: outlays $2.02M, penalties $0.62M, total $2.64M, worst RT 10.5 hr, worst DL 2.0 min, feasible

An unreachable objective is reported honestly, not papered over —
orders-db asks for a 4-hour RTO this hardware kit cannot meet, and the
site summary goes infeasible:

  $ ssdep optimize --portfolio ../../examples/designs/orders-db.ssdep --portfolio ../../examples/designs/mail.ssdep | sed 's/ *$//' | tail -2
    mail             asyncB mirror x1                 out $1.00M    worst RT 9.0 hr    worst DL 2.0 min    total $1.09M
  site: outlays $1.00M, penalties $90.3k, total $1.09M, worst RT 9.0 hr, worst DL 2.0 min, infeasible

Bad --budget and --seed values are command-line errors:

  $ ssdep optimize --solver anneal --budget 0
  ssdep: option '--budget': invalid count "0", expected a positive integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

  $ ssdep optimize --solver anneal --budget=-5
  ssdep: option '--budget': invalid count "-5", expected a positive integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

  $ ssdep optimize --solver anneal --seed zz
  ssdep: option '--seed': invalid seed "zz", expected an integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

  $ ssdep optimize --solver simplex
  ssdep: option '--solver': unknown solver "simplex", expected grid, anneal or
         bnb
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

--top-k and --max-candidates belong to the exhaustive grid listing, and
portfolio members bring their own objectives:

  $ ssdep optimize --solver anneal --top-k 3
  ssdep: --top-k and --max-candidates apply to the default grid search only (no --solver, --portfolio or --json)
  [124]

  $ ssdep optimize --portfolio ../../examples/designs/baseline.ssdep --rto 4
  ssdep: --rto/--rpo conflict with --portfolio: each member's objectives come from its design file
  [124]
