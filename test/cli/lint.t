Static design analysis: stable rule codes, severities, exit codes.

The shipped examples lint clean. The baseline's vaulting level carries the
paper's own deliberate convention-3 deviation, reported as an advisory:

  $ ssdep lint ../../examples/designs/orders-db.ssdep
  clean: 0 error(s), 0 warning(s), 0 info(s)

  $ ssdep lint ../../examples/designs/baseline.ssdep
  SSDEP-I001  info     level 3 (vaulting)       hold window exceeds level 2's retention window: extra retention capacity is required at level 2 (§3.2.1 convention 3)
  0 error(s), 0 warning(s), 1 info(s)

Without a file argument the name selects a preset (default: baseline), linted
under the three baseline failure scenarios. Advisories never fail the run,
even under --deny-warnings:

  $ ssdep lint --deny-warnings
  SSDEP-I001  info     level 3 (vaulting)       hold window exceeds level 2's retention window: extra retention capacity is required at level 2 (§3.2.1 convention 3)
  0 error(s), 0 warning(s), 1 info(s)

A design crowding its array draws a warning: exit 0 normally, exit 1 in CI
mode. Warnings do not block evaluation.

  $ cat > crowded.ssdep <<'DESIGN'
  > [workload]
  > name = crowded
  > data_capacity = 750 GiB
  > avg_access_rate = 1 MiB/s
  > avg_update_rate = 500 KiB/s
  > burst_multiplier = 4
  > batch = 1min: 400 KiB/s, 12hr: 200 KiB/s
  > 
  > [device box]
  > location = r/s/b
  > capacity_slots = 16 x 100 GiB
  > bandwidth_slots = 8 x 50 MiB/s
  > enclosure_bandwidth = 300 MiB/s
  > spare = dedicated 1min
  > 
  > [level 0]
  > technique = primary
  > device = box
  > raid = raid1
  > 
  > [business]
  > outage_penalty = $1k/hr
  > loss_penalty = $1k/hr
  > DESIGN

  $ ssdep lint crowded.ssdep
  SSDEP-W001  warning  device box               capacity 93.8% full: little headroom for growth or extra retention
  0 error(s), 1 warning(s), 0 info(s)

  $ ssdep lint crowded.ssdep --deny-warnings
  SSDEP-W001  warning  device box               capacity 93.8% full: little headroom for growth or extra retention
  0 error(s), 1 warning(s), 0 info(s)
  [1]

A statically invalid design is reported with its rule codes and exits 2
(where `ssdep check` would refuse to load it at all):

  $ sed 's/750 GiB/1000 GiB/; s/crowded/badcap/' crowded.ssdep > badcap.ssdep
  $ ssdep lint badcap.ssdep
  SSDEP-E010  error    device box               capacity overcommitted: 125.0% of 1.56 TiB (20 slots needed, 16 available)
  1 error(s), 0 warning(s), 0 info(s)
  [2]

The JSON rendering is stable and machine-readable:

  $ ssdep lint badcap.ssdep --json
  {
    "design": "badcap",
    "diagnostics": [
      {
        "code": "SSDEP-E010",
        "severity": "error",
        "location": {
          "kind": "device",
          "name": "box"
        },
        "message": "capacity overcommitted: 125.0% of 1.56 TiB (20 slots needed, 16 available)"
      }
    ],
    "errors": 1,
    "warnings": 0,
    "infos": 0
  }
  [2]

Textual evaluation output surfaces the design's non-error findings:

  $ ssdep evaluate | grep '^lint'
  lint: SSDEP-I001  info     level 3 (vaulting)       hold window exceeds level 2's retention window: extra retention capacity is required at level 2 (§3.2.1 convention 3)

A name that is neither a file nor a preset is a usage error:

  $ ssdep lint nonesuch
  ssdep: unknown design "nonesuch"; available: baseline, weekly vault, weekly vault, F+I, weekly vault, daily F, weekly vault, daily F, snapshot, asyncB mirror, 1 link, asyncB mirror, 10 links (and no such file)
  [2]

Two linters, two subjects — `ssdep lint` checks storage designs, the
separate `sslint` tool checks the project's own OCaml sources. The help
text pins the distinction:

  $ ssdep lint --help=plain | grep -c "sslint"
  1
