Generative conformance fuzzing: exit codes are part of the contract
(0 clean, 1 counterexample found, 2 usage error), and everything is a
pure function of the seed, so the outputs below are byte-stable.

The oracle registry:

  $ ssdep fuzz --list-oracles
  lint-coincidence         Lint.accepts iff Design.validate; per scenario, lint errors empty iff Evaluate.run reports no errors
  cache-invariance         Eval_cache.run is byte-identical to Evaluate.run, and a cache hit returns the physically stored report
  stream-vs-materialized   Search.run (streaming, engine) is byte-identical to the materialized reference loop on the case's singleton grid
  parallel-invariance      Objective.summarize and Search.run are byte-identical between a serial and a multi-domain engine
  chunk-invariance         Search.run over a replicated grid is byte-identical to serial for forced chunk sizes 1, 7, the pool window and one past the grid
  monotone-shorter-window  halving a level's accumulation window never worsens now-target data loss (shorter backup windows mean fresher retrieval points)
  monotone-bandwidth       doubling every device's bandwidth never worsens recovery time
  monotone-cost            outlays are monotone in workload capacity (2x growth)
  analytic-vs-sim          simulated data loss within the analytic worst case (+1 s) and simulated recovery time within the documented tolerance band of the analytic estimate, for now-targets on valid designs
  fleet-degenerate         a fleet trial whose sampled trace has exactly one failure event reproduces the phase-aligned single-scenario simulator verbatim (outage, loss accounting, rebuild list)
  fleet-jobs-invariance    Fleet.run's JSON report is byte-identical between the session engine and the multi-domain engine (trial order, not dispatch schedule, determines the aggregate)
  solver-exhaustive-equivalence on a small grid under the case's workload and business requirements, annealing at exhaustive budget and branch-and-bound both reach the exhaustive grid optimum exactly — or all three methods agree the grid holds no feasible design
  self-test-fail           fails on every case by construction — exercises the counterexample pipeline (shrinking, corpus, replay); excluded from the defaults

A clean run exits 0 and leaves the corpus directory empty:

  $ ssdep fuzz --seed 7 --budget 2 --corpus fresh-corpus --oracle lint-coincidence --oracle cache-invariance
  fuzz: seed 0x7, budget 2, 2 oracles
  findings: 0

The self-test oracle fails by construction, so it deterministically
produces a shrunk counterexample, persists it, and exits 1:

  $ ssdep fuzz --seed 42 --budget 1 --oracle self-test-fail --corpus corpus1
  fuzz: seed 0x2a, budget 1, 1 oracle
  findings: 1
  FAIL self-test-fail: self-test oracle fails by construction
    case 0, seed 0xbdd732262feb6e95, shrunk 15 steps
    design: snap/12h x4, backup/2d, vault/4wk
    corpus: corpus1/self-test-fail-case0-0xbdd732262feb6e95.ssdep
  [1]

The corpus file is an ordinary design file with provenance headers:

  $ head -6 corpus1/self-test-fail-case0-0xbdd732262feb6e95.ssdep
  # ssdep fuzz counterexample
  # oracle = self-test-fail
  # seed = 0xbdd732262feb6e95
  # case = 0
  # shrink_steps = 15
  # message = self-test oracle fails by construction

Replaying the single file reproduces the same oracle failure:

  $ ssdep fuzz --replay corpus1/self-test-fail-case0-0xbdd732262feb6e95.ssdep
  FAIL self-test-fail: self-test oracle fails by construction
    case 0, seed 0xbdd732262feb6e95 (corpus replay)
    design: snap/12h x4, backup/2d, vault/4wk
    corpus: corpus1/self-test-fail-case0-0xbdd732262feb6e95.ssdep
  [1]

A later session replays its corpus before generating anything (budget 0
means replay only):

  $ ssdep fuzz --seed 42 --budget 0 --oracle self-test-fail --corpus corpus1
  fuzz: seed 0x2a, budget 0, 1 oracle
  corpus: replayed 1, fixed 0
  findings: 1
  FAIL self-test-fail: self-test oracle fails by construction
    case 0, seed 0xbdd732262feb6e95 (corpus replay)
    design: snap/12h x4, backup/2d, vault/4wk
    corpus: corpus1/self-test-fail-case0-0xbdd732262feb6e95.ssdep
  [1]

But with the production registry the self-test entry is inactive and
skipped, so a default run over the same corpus stays clean — which is
what lets a demonstration counterexample live in the checked-in corpus
without breaking CI:

  $ ssdep fuzz --seed 7 --budget 0 --corpus corpus1
  fuzz: seed 0x7, budget 0, 12 oracles
  findings: 0

Usage errors exit 2:

  $ ssdep fuzz --oracle bogus
  ssdep fuzz: unknown oracle "bogus" (try --list-oracles)
  [2]

  $ ssdep fuzz --budget=-3
  ssdep fuzz: budget must be non-negative
  [2]

  $ ssdep fuzz --replay missing.ssdep
  ssdep fuzz: missing.ssdep: No such file or directory
  [2]
