Bounded top-k search. --top-k K streams the grid through the engine and
retains only the K cheapest feasible designs (plus the frontier); the
header still reports the untruncated totals, and the ranking is exactly
the head of the full cost-sorted feasible list:

  $ ssdep optimize --top-k 3 | head -1
  76 candidates, 76 feasible, 9 on the Pareto frontier
  $ ssdep optimize --top-k 3 | sed 's/ *$//' | tail -4
  top 3 feasible (of 76):
     1. asyncB mirror x2                 out $1.57M    worst RT 10.5 hr   worst DL 2.0 min    total $2.09M
     2. asyncB mirror x1                 out $1.13M    worst RT 20.9 hr   worst DL 2.0 min    total $2.18M
     3. asyncB mirror x4                 out $2.44M    worst RT 9.0 hr    worst DL 2.0 min    total $2.89M

Truncation never changes what was searched: the engine still evaluates
every candidate against both scenarios, and none of the (all-valid)
generated candidates is pruned by the lint pre-filter:

  $ ssdep optimize --top-k 3 --stats | grep -E 'lint.pruned|search.evaluations' | tr -s ' '
  lint.pruned counter 0
  search.evaluations counter 152

A widened grid behaves the same way, just bigger:

  $ ssdep optimize --top-k 2 --grid-scale 2 --max-candidates 2000 | sed 's/ *$//' | tail -3
  top 2 feasible (of 1927):
     1. asyncB mirror x2                 out $1.57M    worst RT 10.5 hr   worst DL 2.0 min    total $2.09M
     2. asyncB mirror x1                 out $1.13M    worst RT 20.9 hr   worst DL 2.0 min    total $2.18M

--solver grid is the same exhaustive search expressed as a solver
method: its output is byte-identical to the default path, and its JSON
report lands on the same optimum the top-1 listing shows:

  $ ssdep optimize --top-k 1 > default.out
  $ ssdep optimize --solver grid --top-k 1 > grid.out
  $ cmp default.out grid.out

  $ ssdep optimize --solver grid --json | grep -E '"(solver|evaluations|total_usd)"'
    "solver": "grid",
    "evaluations": 76,
      "total_usd": 2091694.79432,

--top-k must be positive:

  $ ssdep optimize --top-k 0
  ssdep: option '--top-k': invalid count "0", expected a positive integer
  Usage: ssdep optimize [OPTION]…
  Try 'ssdep optimize --help' or 'ssdep --help' for more information.
  [124]

The candidate budget refuses over-large grids before any evaluation, so a
fat-fingered --grid-scale fails in milliseconds rather than running for
hours:

  $ ssdep optimize --grid-scale 2 --max-candidates 100
  ssdep: grid has 1927 candidate designs, over the --max-candidates budget of 100; raise the budget or lower --grid-scale
  [124]
