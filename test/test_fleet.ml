(* The scenario algebra (timed failure-event sets) and the fleet-scale
   Monte Carlo built on it: construction laws, multi-failure execution
   through [Sim.run_events] (independent vs absorbed recoveries), and
   byte-determinism of the fleet report. The testkit oracles
   ([fleet-degenerate], [fleet-jobs-invariance]) cover the reduction to
   the single-scenario model and engine invariance; these are the unit
   laws underneath. *)

open Storage_units
open Storage_model
open Storage_presets
open Helpers
module Sim = Storage_sim.Sim
module Fleet = Storage_fleet.Fleet
module Json = Storage_report.Json

let scope_of s = (List.hd (Scenario.events s)).Scenario.scope
let array_scope = scope_of Baseline.scenario_array
let site_scope = scope_of Baseline.scenario_site
let ev ?target_age scope at = Scenario.event ~scope ~at ?target_age ()

(* --- the scenario algebra --- *)

let test_event_validation () =
  check_raises_invalid "negative offset" (fun () ->
      ignore (Scenario.event ~scope:array_scope ~at:(Duration.hours (-1.)) ()));
  check_raises_invalid "object size on a non-corrupting scope" (fun () ->
      ignore
        (Scenario.event ~scope:array_scope ~object_size:(Size.gib 1.) ()))

let test_of_events_sorts () =
  check_raises_invalid "empty event set" (fun () ->
      ignore (Scenario.of_events []));
  let s =
    Scenario.of_events
      [
        ev array_scope (Duration.days 3.);
        ev array_scope (Duration.days 1.);
        ev array_scope (Duration.days 2.);
      ]
  in
  Alcotest.(check (list int))
    "events sorted by offset" [ 1; 2; 3 ]
    (List.map
       (fun (e : Scenario.event) ->
         int_of_float (Duration.to_seconds e.Scenario.at /. 86_400.))
       (Scenario.events s))

let test_singleton_compat () =
  let classic = Scenario.now array_scope in
  let algebraic = Scenario.of_events [ ev array_scope Duration.zero ] in
  Alcotest.(check bool) "make/now is single" true (Scenario.is_single classic);
  Alcotest.(check bool) "singleton-at-zero is single" true
    (Scenario.is_single algebraic);
  Alcotest.(check string) "same fingerprint either way"
    (Scenario.fingerprint classic)
    (Scenario.fingerprint algebraic);
  let shifted = Scenario.of_events [ ev array_scope (Duration.hours 1.) ] in
  Alcotest.(check bool) "an offset event is not the classic case" false
    (Scenario.is_single shifted);
  Alcotest.(check bool) "the offset changes the fingerprint" false
    (Scenario.fingerprint classic = Scenario.fingerprint shifted)

let test_combine_and_delay () =
  let a = Scenario.now array_scope in
  let b =
    Scenario.of_events
      [ ev ~target_age:(Duration.hours 24.) site_scope (Duration.days 2.) ]
  in
  let c = Scenario.combine a b in
  Alcotest.(check int) "union keeps every event" 2
    (List.length (Scenario.events c));
  close_duration "projection takes the oldest target" (Duration.hours 24.)
    c.Scenario.target_age;
  let d = Scenario.delay (Duration.days 1.) c in
  Alcotest.(check (list int))
    "delay shifts every offset" [ 1; 3 ]
    (List.map
       (fun (e : Scenario.event) ->
         int_of_float (Duration.to_seconds e.Scenario.at /. 86_400.))
       (Scenario.events d));
  Alcotest.(check bool) "delay changes the fingerprint" false
    (Scenario.fingerprint c = Scenario.fingerprint d);
  check_raises_invalid "negative delay" (fun () ->
      ignore (Scenario.delay (Duration.hours (-1.)) c))

(* --- Sim.run_events --- *)

let test_run_events_single_event () =
  let r = Sim.run_events Baseline.design Baseline.scenario_array in
  Alcotest.(check int) "one injected record" 1 (List.length r.Sim.injected);
  let i = List.hd r.Sim.injected in
  close_duration "injected at the end of the warmup"
    Sim.default_config.Sim.warmup i.Sim.injected_at;
  Alcotest.(check bool) "a recovery source was found" true
    (match i.Sim.source_level with Some l -> l > 0 | None -> false);
  Alcotest.(check bool) "the recovery completed" true
    (match i.Sim.recovery_end with
    | Some t -> Duration.compare t i.Sim.injected_at > 0
    | None -> false)

let test_run_events_separated_events_independent () =
  (* Six weeks apart: the first recovery (hours) is long since done, so
     both events must recover from the same source in the same time. *)
  let gap = Duration.weeks 6. in
  let r =
    Sim.run_events Baseline.design
      (Scenario.of_events [ ev array_scope Duration.zero; ev array_scope gap ])
  in
  match r.Sim.injected with
  | [ first; second ] ->
    close_duration "second injected one gap later"
      (Duration.add first.Sim.injected_at gap)
      second.Sim.injected_at;
    let dur (i : Sim.injected) =
      match i.Sim.recovery_end with
      | Some t -> Duration.to_seconds t -. Duration.to_seconds i.Sim.injected_at
      | None -> Alcotest.fail "recovery did not complete"
    in
    close "identical recovery durations" (dur first) (dur second);
    Alcotest.(check int) "no replans" 0 (first.Sim.replans + second.Sim.replans)
  | l -> Alcotest.failf "expected 2 injected records, got %d" (List.length l)

let test_run_events_overlap_absorbs () =
  (* A site disaster one hour into the array rebuild destroys the array
     being rebuilt: the array event's outage is absorbed — both
     unavailability windows end when the site recovery does, from a
     deeper source. *)
  let r =
    Sim.run_events Baseline.design
      (Scenario.of_events
         [ ev array_scope Duration.zero; ev site_scope (Duration.hours 1.) ])
  in
  match r.Sim.injected with
  | [ arr; site ] ->
    let end_of (i : Sim.injected) =
      match i.Sim.recovery_end with
      | Some t -> t
      | None -> Alcotest.fail "recovery did not complete"
    in
    close_duration "the array outage ends with the site recovery"
      (end_of site) (end_of arr);
    Alcotest.(check bool) "the site recovery uses a deeper source" true
      (match (arr.Sim.source_level, site.Sim.source_level) with
      | Some a, Some s -> s > a
      | _ -> false)
  | l -> Alcotest.failf "expected 2 injected records, got %d" (List.length l)

(* --- the fleet Monte Carlo --- *)

let test_fleet_validation () =
  check_raises_invalid "zero trials" (fun () ->
      ignore (Fleet.config ~trials:0 ()));
  check_raises_invalid "non-positive horizon" (fun () ->
      ignore (Fleet.config ~horizon_years:0. ()));
  check_raises_invalid "negative rate" (fun () ->
      ignore (Fleet.rates ~default_afr:(-0.1) ()));
  check_raises_invalid "erasure sweep: required > fragments" (fun () ->
      ignore
        (Fleet.erasure_sweep
           ~make:(fun ~fragments:_ ~required:_ -> Baseline.design)
           [ (9, 6) ]))

let test_sample_events_deterministic_and_sorted () =
  let horizon = Duration.scale (5. *. 365.25) (Duration.days 1.) in
  (* Scan a few seeds so the assertions run on a non-empty trace. *)
  let seed =
    List.find
      (fun seed -> Fleet.sample_events ~horizon ~seed Baseline.design <> [])
      (List.init 64 (fun i -> Int64.of_int (0xF1EE7 + i)))
  in
  let a = Fleet.sample_events ~horizon ~seed Baseline.design in
  let b = Fleet.sample_events ~horizon ~seed Baseline.design in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let offsets = List.map (fun (e : Scenario.event) -> e.Scenario.at) a in
  Alcotest.(check bool) "offsets sorted within the horizon" true
    (List.for_all2
       (fun x y -> Duration.compare x y <= 0)
       offsets
       (List.tl offsets @ [ horizon ]))

let test_zero_failure_trial_is_fully_available () =
  let horizon = Duration.scale 365.25 (Duration.days 1.) in
  let quiet =
    List.find_map
      (fun i ->
        let seed = Int64.of_int (1000 + i) in
        match Fleet.sample_events ~horizon ~seed Baseline.design with
        | [] -> Some seed
        | _ -> None)
      (List.init 64 Fun.id)
  in
  match quiet with
  | None -> Alcotest.fail "no quiet seed in 64 candidates (1-year horizon)"
  | Some seed ->
    let t = Fleet.run_trial ~horizon ~seed ~index:0 Baseline.design in
    Alcotest.(check int) "no failures" 0 t.Fleet.failures;
    Alcotest.(check bool) "no outage" true (Duration.is_zero t.Fleet.outage);
    Alcotest.(check int) "no losses" 0 t.Fleet.losses;
    Alcotest.(check bool) "no bytes lost" true (Size.is_zero t.Fleet.bytes_lost);
    Alcotest.(check int) "no rebuilds" 0 (List.length t.Fleet.rebuilds)

let test_fleet_report_deterministic_and_sane () =
  let config = Fleet.config ~trials:40 ~horizon_years:2. () in
  let a = Fleet.run ~config Baseline.design in
  let b = Fleet.run ~config Baseline.design in
  Alcotest.(check string) "byte-identical JSON across runs"
    (Json.to_string (Fleet.to_json a))
    (Json.to_string (Fleet.to_json b));
  Alcotest.(check int) "trial count echoed" 40 a.Fleet.trials;
  Alcotest.(check bool) "availability in [0, 1]" true
    (a.Fleet.availability >= 0. && a.Fleet.availability <= 1.);
  Alcotest.(check bool) "durability in [0, 1]" true
    (a.Fleet.durability >= 0. && a.Fleet.durability <= 1.);
  Alcotest.(check bool) "failed trials bounded by failures and trials" true
    (a.Fleet.failed_trials <= a.Fleet.failures
    && a.Fleet.failed_trials <= a.Fleet.trials
    && a.Fleet.multi_event_trials <= a.Fleet.failed_trials)

let suite =
  [
    ( "scenario.algebra",
      [
        Alcotest.test_case "event validation" `Quick test_event_validation;
        Alcotest.test_case "of_events sorts; empty rejected" `Quick
          test_of_events_sorts;
        Alcotest.test_case "singleton-at-zero is the classic scenario" `Quick
          test_singleton_compat;
        Alcotest.test_case "combine and delay" `Quick test_combine_and_delay;
      ] );
    ( "sim.run_events",
      [
        Alcotest.test_case "single event recovers" `Quick
          test_run_events_single_event;
        Alcotest.test_case "separated events recover independently" `Quick
          test_run_events_separated_events_independent;
        Alcotest.test_case "overlapping site failure absorbs the array outage"
          `Quick test_run_events_overlap_absorbs;
      ] );
    ( "fleet",
      [
        Alcotest.test_case "config and sweep validation" `Quick
          test_fleet_validation;
        Alcotest.test_case "trace sampling deterministic and sorted" `Quick
          test_sample_events_deterministic_and_sorted;
        Alcotest.test_case "a quiet trial is fully available" `Quick
          test_zero_failure_trial_is_fully_available;
        Alcotest.test_case "report deterministic and internally consistent"
          `Quick test_fleet_report_deterministic_and_sane;
      ] );
  ]
