(* The evaluation service: endpoint correctness (responses byte-identical
   to the CLI's --json output), protocol robustness under malformed and
   seeded-fuzz request payloads, deterministic back-pressure at the
   admission queue, and graceful SIGTERM drain of the real binary. *)

open Storage_model
open Storage_presets
module Server = Storage_serve.Server
module Spec = Storage_spec.Spec
module Prng = Storage_workload.Prng

let t name f = Alcotest.test_case name `Quick f

(* --- a tiny raw-socket client (one request per connection) --- *)

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd bytes !off (n - !off)
  done

let recv_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  Buffer.contents buf

(* Send a raw payload, optionally half-closing the write side (so the
   server sees EOF instead of waiting out its read timeout), and return
   the full raw response. *)
let raw_roundtrip ?(eof = true) ~port payload =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      send_all fd payload;
      (* The server may have answered-and-closed already (a 429 from the
         acceptor); the half-close is then moot. *)
      (if eof then
         try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      recv_all fd)

let status_of raw =
  if String.length raw >= 12 && String.sub raw 0 9 = "HTTP/1.1 " then
    int_of_string_opt (String.sub raw 9 3)
  else None

let body_of raw =
  let n = String.length raw in
  let rec find i =
    if i + 4 > n then ""
    else if String.sub raw i 4 = "\r\n\r\n" then
      String.sub raw (i + 4) (n - i - 4)
    else find (i + 1)
  in
  find 0

let request ~port ~meth ~path body =
  let raw =
    raw_roundtrip ~eof:false ~port
      (Printf.sprintf "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: \
                       %d\r\n\r\n%s"
         meth path (String.length body) body)
  in
  (status_of raw, body_of raw)

(* --- server fixture --- *)

let small_config =
  {
    Server.port = 0;
    workers = 2;
    queue_capacity = 8;
    shards = 4;
    max_body = 64 * 1024;
    timeout = 5.;
  }

(* [Server.start] flips the process-wide obs registry on; later suites
   assume the default-off state, so every fixture switches it back. *)
let with_server ?(config = small_config) f =
  let engine = Storage_engine.create () in
  let server = Server.start ~config engine in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Storage_engine.shutdown engine;
      Storage_obs.disable ())
    (fun () -> f (Server.port server))

(* The baseline case study with its two hardware-failure scenarios, in
   the design language — the body every correctness test posts. *)
let design_text =
  lazy
    (match
       Spec.design_to_string
         ~scenarios:
           [
             ("array failure", Baseline.scenario_array);
             ("site disaster", Baseline.scenario_site);
           ]
         Baseline.design
     with
    | Ok text -> text
    | Error e -> Alcotest.failf "cannot render baseline design: %s" e)

(* What `ssdep evaluate --file <design_text> --json` prints: parse the
   same text back (the server sees only the text, not our Design.t) and
   evaluate. *)
let expected_evaluate_output () =
  let text = Lazy.force design_text in
  let design =
    match Spec.design_of_string text with
    | Ok d -> d
    | Error e -> Alcotest.failf "baseline text does not parse: %s" e
  in
  let scenarios =
    match Spec.scenarios_of_string text with
    | Ok s -> s
    | Error e -> Alcotest.failf "baseline scenarios do not parse: %s" e
  in
  let named =
    List.map (fun (name, scenario) -> (name, Evaluate.run design scenario))
      scenarios
  in
  Storage_report.Json.to_string_pretty (Json_output.reports named) ^ "\n"

(* --- endpoint correctness --- *)

let test_healthz () =
  with_server @@ fun port ->
  let status, body = request ~port ~meth:"GET" ~path:"/healthz" "" in
  Alcotest.(check (option int)) "status" (Some 200) status;
  Alcotest.(check string) "body" "ok\n" body

let test_evaluate_byte_identical () =
  with_server @@ fun port ->
  let expected = expected_evaluate_output () in
  let post () =
    request ~port ~meth:"POST" ~path:"/evaluate" (Lazy.force design_text)
  in
  let status, body = post () in
  Alcotest.(check (option int)) "cold status" (Some 200) status;
  Alcotest.(check bool) "cold response byte-identical to the CLI" true
    (String.equal expected body);
  (* Second hit answers from the warm cache — and must not change a
     byte. *)
  let status, body = post () in
  Alcotest.(check (option int)) "warm status" (Some 200) status;
  Alcotest.(check bool) "warm response byte-identical to the CLI" true
    (String.equal expected body)

let test_lint_and_stats () =
  with_server @@ fun port ->
  let status, body =
    request ~port ~meth:"POST" ~path:"/lint" (Lazy.force design_text)
  in
  Alcotest.(check (option int)) "lint status" (Some 200) status;
  Alcotest.(check bool) "lint response is a JSON object" true
    (String.length body > 0 && body.[0] = '{');
  let status, body = request ~port ~meth:"GET" ~path:"/stats" "" in
  Alcotest.(check (option int)) "stats status" (Some 200) status;
  Alcotest.(check bool) "stats counts the requests served" true
    (Helpers.contains body "\"serve.requests\"")

let test_concurrent_clients_identical () =
  with_server @@ fun port ->
  let expected = expected_evaluate_output () in
  let clients = 4 and per_client = 8 in
  let domains =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            List.init per_client (fun _ ->
                request ~port ~meth:"POST" ~path:"/evaluate"
                  (Lazy.force design_text))))
  in
  let responses = List.concat_map Domain.join domains in
  Alcotest.(check int) "every request answered" (clients * per_client)
    (List.length responses);
  List.iter
    (fun (status, body) ->
      Alcotest.(check (option int)) "status" (Some 200) status;
      Alcotest.(check bool) "cache-warm response byte-identical" true
        (String.equal expected body))
    responses

(* --- protocol robustness --- *)

(* Every payload here is wrong in a different way; each must come back
   as a well-formed HTTP error — never a hang, never a dead server. *)
let malformed_cases =
  [
    ("empty request", "", 400);
    ("garbage request line", "GARBAGE\r\n\r\n", 400);
    ("missing content-length", "POST /evaluate HTTP/1.1\r\n\r\n", 411);
    ( "malformed content-length",
      "POST /evaluate HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
      400 );
    ( "oversized body",
      "POST /evaluate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
      413 );
    ( "chunked transfer coding",
      "POST /evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
      501 );
    ( "truncated body",
      "POST /evaluate HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly this",
      400 );
    ( "invalid design body",
      "POST /evaluate HTTP/1.1\r\nContent-Length: 12\r\n\r\nnot a design",
      400 );
    ("unknown endpoint", "GET /nope HTTP/1.1\r\n\r\n", 404);
    ( "wrong method",
      "DELETE /evaluate HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
      405 );
    ( "bad optimize parameter",
      "GET /optimize?grid_scale=banana HTTP/1.1\r\n\r\n",
      400 );
  ]

(* The worker-loop exception barrier: handler exceptions become a 500,
   but the fatal runtime conditions re-raise — a wedged runtime must not
   keep serving, and Ctrl-C must keep working (the bug this regresses:
   the old catch-all turned Out_of_memory into an HTTP response). *)
let test_guard_route_fatal_exceptions () =
  let resp = Server.guard_route (fun () -> Storage_serve.Http.ok_text "fine") in
  Alcotest.(check int) "pass-through status" 200 resp.Storage_serve.Http.status;
  let resp = Server.guard_route (fun () -> failwith "handler bug") in
  Alcotest.(check int) "handler exception becomes 500" 500
    resp.Storage_serve.Http.status;
  List.iter
    (fun (name, exn) ->
      Alcotest.check_raises name exn (fun () ->
          ignore (Server.guard_route (fun () -> raise exn))))
    [
      ("Out_of_memory re-raises", Out_of_memory);
      ("Stack_overflow re-raises", Stack_overflow);
      ("Sys.Break re-raises", Sys.Break);
    ]

let test_malformed_requests_isolated () =
  with_server @@ fun port ->
  List.iter
    (fun (name, payload, expected_status) ->
      let raw = raw_roundtrip ~port payload in
      Alcotest.(check (option int)) name (Some expected_status)
        (status_of raw))
    malformed_cases;
  (* Header block past the reader's bound. *)
  let huge_header =
    "GET /healthz HTTP/1.1\r\n"
    ^ String.concat "" (List.init 4000 (fun i -> Printf.sprintf "X-%d: y\r\n" i))
    ^ "\r\n"
  in
  Alcotest.(check (option int)) "oversized header block" (Some 431)
    (status_of (raw_roundtrip ~port huge_header));
  (* The daemon outlived all of it. *)
  let status, body = request ~port ~meth:"GET" ~path:"/healthz" "" in
  Alcotest.(check (option int)) "alive after abuse" (Some 200) status;
  Alcotest.(check string) "healthz body" "ok\n" body

(* Seeded fuzz: random byte soup, both as raw payloads (exercising the
   HTTP reader) and as well-framed /evaluate bodies (exercising the
   design parser behind a valid request). Every response must be a
   well-formed HTTP error status; the server answers the probe after
   every case. *)
let test_fuzzed_requests () =
  with_server @@ fun port ->
  let rng = Prng.create ~seed:0x5e7feedL in
  let random_string max_len =
    let len = 1 + Prng.int rng max_len in
    String.init len (fun _ -> Char.chr (Prng.int rng 256))
  in
  for case = 1 to 25 do
    let payload = random_string 512 in
    let raw = raw_roundtrip ~port payload in
    (match status_of raw with
    | Some s when s >= 400 && s < 600 -> ()
    | Some s -> Alcotest.failf "fuzz case %d: unexpected status %d" case s
    | None ->
      Alcotest.failf "fuzz case %d: response is not well-formed HTTP" case);
    let status, _ =
      request ~port ~meth:"POST" ~path:"/evaluate" (random_string 2048)
    in
    match status with
    | Some 400 -> ()
    | Some s -> Alcotest.failf "fuzz body %d: expected 400, got %d" case s
    | None -> Alcotest.failf "fuzz body %d: response not well-formed" case
  done;
  let status, _ = request ~port ~meth:"GET" ~path:"/healthz" "" in
  Alcotest.(check (option int)) "alive after fuzz" (Some 200) status

(* --- back-pressure --- *)

let test_back_pressure_rejects_with_429 () =
  (* One worker, a one-slot queue, a short read timeout: a silent
     connection pins the worker, a second fills the queue, and every
     connection after that must be answered 429 immediately by the
     acceptor — bounded admission, not unbounded queueing. *)
  let config =
    {
      Server.port = 0;
      workers = 1;
      queue_capacity = 1;
      shards = 1;
      max_body = 64 * 1024;
      timeout = 2.;
    }
  in
  with_server ~config @@ fun port ->
  (* Sequence the set-up so it cannot race: park [pinned] first and wait
     until the worker has surely dequeued it, THEN fill the one queue
     slot with [queued]. Only after both settles is every further
     connection guaranteed to overflow. *)
  let pinned = connect port in
  Unix.sleepf 0.3;
  let queued = connect port in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ pinned; queued ])
    (fun () ->
      Unix.sleepf 0.3;
      let overflow_1 = raw_roundtrip ~port "GET /healthz HTTP/1.1\r\n\r\n" in
      let overflow_2 = raw_roundtrip ~port "GET /healthz HTTP/1.1\r\n\r\n" in
      Alcotest.(check (option int)) "first overflow rejected busy" (Some 429)
        (status_of overflow_1);
      Alcotest.(check (option int)) "second overflow rejected busy" (Some 429)
        (status_of overflow_2));
  (* Closing the client fds EOFs the worker out of its pin; the server
     must accept again shortly after. *)
  let rec probe tries =
    let status, _ = request ~port ~meth:"GET" ~path:"/healthz" "" in
    if status = Some 200 then status
    else if tries <= 0 then status
    else (
      Unix.sleepf 0.2;
      probe (tries - 1))
  in
  Alcotest.(check (option int)) "accepts again after drain" (Some 200)
    (probe 15)

(* --- the real binary: drain on SIGTERM, CLI output identity --- *)

let find_ssdep () =
  let candidates =
    (match Sys.getenv_opt "SSDEP_BIN" with Some p -> [ p ] | None -> [])
    (* Under `dune runtest` the cwd is _build/default/test and the
       installed binary sits in _build/install/default/bin; under
       `dune exec` the cwd is the workspace root. *)
    @ [ "../../install/default/bin/ssdep"; "_build/install/default/bin/ssdep" ]
  in
  List.find_opt Sys.file_exists candidates

let test_real_binary_drains_on_sigterm () =
  match find_ssdep () with
  | None -> Alcotest.fail "ssdep binary not found (SSDEP_BIN unset?)"
  | Some bin ->
    let out_read, out_write = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process bin
        [| bin; "serve"; "--port"; "0"; "--workers"; "2" |]
        Unix.stdin out_write Unix.stderr
    in
    Unix.close out_write;
    let ic = Unix.in_channel_of_descr out_read in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        try close_in ic with Sys_error _ -> ())
      (fun () ->
        let first_line = input_line ic in
        let port =
          match String.rindex_opt first_line ':' with
          | Some i ->
            int_of_string
              (String.sub first_line (i + 1)
                 (String.length first_line - i - 1))
          | None -> Alcotest.failf "unexpected banner %S" first_line
        in
        (* The daemon's answer matches the CLI's byte for byte. *)
        let status, body =
          request ~port ~meth:"POST" ~path:"/evaluate"
            (Lazy.force design_text)
        in
        Alcotest.(check (option int)) "daemon evaluates" (Some 200) status;
        let tmp = Filename.temp_file "ssdep_serve_test" ".ssdep" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            Out_channel.with_open_text tmp (fun oc ->
                output_string oc (Lazy.force design_text));
            let cli =
              Unix.open_process_in
                (Printf.sprintf "%s evaluate --file %s --json"
                   (Filename.quote bin) (Filename.quote tmp))
            in
            let cli_out = In_channel.input_all cli in
            (match Unix.close_process_in cli with
            | Unix.WEXITED 0 -> ()
            | _ -> Alcotest.fail "ssdep evaluate failed");
            Alcotest.(check bool)
              "daemon response byte-identical to `ssdep evaluate --json`"
              true
              (String.equal cli_out body));
        (* SIGTERM: graceful drain, clean exit, the drain banner. *)
        Unix.kill pid Sys.sigterm;
        let rest = In_channel.input_all ic in
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
          Alcotest.failf "daemon did not exit cleanly: %s"
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
            | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n));
        Alcotest.(check bool) "drain banner printed" true
          (Helpers.contains rest "drained"))

let suite =
  [
    ( "serve.endpoints",
      [
        t "healthz answers" test_healthz;
        t "/evaluate byte-identical to the CLI, warm and cold"
          test_evaluate_byte_identical;
        t "/lint and /stats answer" test_lint_and_stats;
        t "4 concurrent clients, identical cache-warm responses"
          test_concurrent_clients_identical;
      ] );
    ( "serve.robustness",
      [
        t "guard_route: 500 for handler bugs, fatal exceptions re-raise"
          test_guard_route_fatal_exceptions;
        t "malformed requests isolated (one per failure mode)"
          test_malformed_requests_isolated;
        t "seeded fuzz: raw payloads and framed bodies"
          test_fuzzed_requests;
        t "bounded admission queue answers 429"
          test_back_pressure_rejects_with_429;
      ] );
    ( "serve.binary",
      [
        t "real daemon: CLI identity and SIGTERM drain"
          test_real_binary_drains_on_sigterm;
      ] );
  ]
