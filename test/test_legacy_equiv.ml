(* Each [@@deprecated] legacy_* shim must stay byte-identical to its
   [?engine] replacement: same seeds in, same bytes out, whether the
   replacement runs engine-less, serially, or on a multi-domain engine.
   This is the contract that lets callers migrate one line at a time. *)

open Storage_units
open Storage_model
open Storage_optimize
open Storage_presets
module Engine = Storage_engine
module Seeded = Storage_testkit.Seeded

let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

let check_same_bytes msg a b =
  Alcotest.(check bool) msg true (String.equal (bytes_of a) (bytes_of b))

let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

(* Fixed seeded draws: 40 designs with repetition from the shared pool.
   Both sides of every comparison see the same physical designs, so
   memoized fingerprints cannot differ between the marshaled results. *)
let designs = Seeded.draw ~seed:[| 0xEC; 2004 |] ~n:40 (Seeded.pool ())
let base = List.hd designs

(* ------------------------------------------------------------------ *)
(* Search *)

let test_search () =
  let legacy = (Search.legacy_run designs scenarios [@alert "-deprecated"]) in
  let plain = Search.run (List.to_seq designs) scenarios in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Search.run ~engine (List.to_seq designs) scenarios)
  in
  check_same_bytes "legacy_run = run (engine-less)" legacy plain;
  check_same_bytes "legacy_run = run (3 domains)" legacy engined

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

let build v = Seeded.scaled ~factor:v base
let against_build v = Seeded.scaled ~factor:v (List.nth designs 3)
let values = [ 0.5; 0.75; 1.0; 1.25 ]

let test_sensitivity_sweep () =
  let legacy =
    (Sensitivity.legacy_sweep build ~values Baseline.scenario_array
     [@alert "-deprecated"])
  in
  let plain = Sensitivity.sweep build ~values Baseline.scenario_array in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Sensitivity.sweep ~engine build ~values Baseline.scenario_array)
  in
  check_same_bytes "legacy_sweep = sweep (engine-less)" legacy plain;
  check_same_bytes "legacy_sweep = sweep (3 domains)" legacy engined

let test_sensitivity_crossover () =
  let metric p = Money.to_usd p.Sensitivity.total_cost in
  let legacy =
    (Sensitivity.legacy_crossover build ~values Baseline.scenario_array ~metric
       ~against:against_build
     [@alert "-deprecated"])
  in
  let plain =
    Sensitivity.crossover build ~values Baseline.scenario_array ~metric
      ~against:against_build
  in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Sensitivity.crossover ~engine build ~values Baseline.scenario_array
          ~metric ~against:against_build)
  in
  check_same_bytes "legacy_crossover = crossover (engine-less)" legacy plain;
  check_same_bytes "legacy_crossover = crossover (3 domains)" legacy engined

(* ------------------------------------------------------------------ *)
(* Portfolio *)

let distinct_pair () =
  (* Two pool members with different names share the kit hardware, which
     is exactly the configuration [Portfolio.make] accepts. *)
  let d1 = base in
  let d2 =
    List.find (fun d -> d.Design.name <> d1.Design.name) designs
  in
  Portfolio.make_exn [ d1; d2 ]

let test_portfolio () =
  let p = distinct_pair () in
  let legacy =
    (Portfolio.legacy_evaluate p Baseline.scenario_site
     [@alert "-deprecated"])
  in
  let plain = Portfolio.evaluate p Baseline.scenario_site in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Portfolio.evaluate ~engine p Baseline.scenario_site)
  in
  check_same_bytes "legacy_evaluate = evaluate (engine-less)" legacy plain;
  check_same_bytes "legacy_evaluate = evaluate (3 domains)" legacy engined

(* ------------------------------------------------------------------ *)
(* Risk *)

let weighted =
  [
    { Risk.scenario = Baseline.scenario_array; frequency_per_year = 0.5 };
    { Risk.scenario = Baseline.scenario_site; frequency_per_year = 0.02 };
  ]

let test_risk () =
  let seed = 0xBEEFL and samples = 500 in
  let legacy =
    (Risk.legacy_monte_carlo ~seed ~samples base weighted ~horizon_years:5.
     [@alert "-deprecated"])
  in
  let legacy_jobs =
    (Risk.legacy_monte_carlo ~seed ~samples ~jobs:3 base weighted
       ~horizon_years:5.
     [@alert "-deprecated"])
  in
  let plain =
    Risk.monte_carlo ~seed ~samples base weighted ~horizon_years:5.
  in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Risk.monte_carlo ~engine ~seed ~samples base weighted
          ~horizon_years:5.)
  in
  check_same_bytes "legacy jobs=1 = legacy jobs=3" legacy legacy_jobs;
  check_same_bytes "legacy_monte_carlo = monte_carlo (engine-less)" legacy
    plain;
  check_same_bytes "legacy_monte_carlo = monte_carlo (3 domains)" legacy
    engined

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_sweep () =
  let config =
    {
      Storage_sim.Sim.warmup = Duration.weeks 10.;
      log = false;
      outage = None;
      record_events = false;
    }
  in
  let offsets = [ Duration.seconds 0.; Duration.minutes 7.; Duration.hours 1. ] in
  let legacy =
    (Storage_sim.Sim.legacy_sweep_failure_phase ~config base
       Baseline.scenario_array ~offsets
     [@alert "-deprecated"])
  in
  let plain =
    Storage_sim.Sim.sweep_failure_phase ~config base Baseline.scenario_array
      ~offsets
  in
  let engined =
    Engine.with_engine ~jobs:3 (fun engine ->
        Storage_sim.Sim.sweep_failure_phase ~engine ~config base
          Baseline.scenario_array ~offsets)
  in
  check_same_bytes "legacy_sweep_failure_phase = sweep (engine-less)" legacy
    plain;
  check_same_bytes "legacy_sweep_failure_phase = sweep (3 domains)" legacy
    engined

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "legacy_equiv",
      [
        t "Search.legacy_run == Search.run" test_search;
        t "Sensitivity.legacy_sweep == sweep" test_sensitivity_sweep;
        t "Sensitivity.legacy_crossover == crossover"
          test_sensitivity_crossover;
        t "Portfolio.legacy_evaluate == evaluate" test_portfolio;
        t "Risk.legacy_monte_carlo == monte_carlo" test_risk;
        t "Sim.legacy_sweep_failure_phase == sweep_failure_phase"
          test_sim_sweep;
      ] );
  ]
