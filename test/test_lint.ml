(* The static analyzer: one fixture per rule code, registry coverage, the
   lint <-> evaluation coincidence contract, and the search pre-filter. *)

open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_optimize
open Storage_presets
open Helpers
module Lint = Storage_lint
module Diag = Storage_lint.Diagnostic

(* --- fixture builders: a small, obviously valid design, then one knob
   turned per rule --- *)

let site = Location.make ~building:"b1" ~site:"s1" ~region:"r1"
let away = Location.make ~building:"b2" ~site:"s2" ~region:"r2"
let hot = Spare.Dedicated { provisioning_time = Duration.hours 0.1 }

let arr ?(name = "arr") ?(loc = site) ?(spare = hot) ?(cost = Cost_model.free)
    () =
  Device.make ~name ~location:loc ~max_capacity_slots:16
    ~slot_capacity:(Size.gib 100.) ~max_bandwidth_slots:8
    ~slot_bandwidth:(Rate.mib_per_sec 50.)
    ~enclosure_bandwidth:(Rate.mib_per_sec 300.) ~cost ~spare
    ~remote_spare:
      (Spare.Shared { provisioning_time = Duration.hours 9.; discount = 0.2 })
    ()

let tape ?(bandwidth = true) () =
  if bandwidth then
    Device.make ~name:"tape" ~location:site ~max_capacity_slots:100
      ~slot_capacity:(Size.gib 400.) ~max_bandwidth_slots:4
      ~slot_bandwidth:(Rate.mib_per_sec 60.)
      ~enclosure_bandwidth:(Rate.mib_per_sec 240.) ~spare:hot ()
  else
    Device.make ~name:"tape" ~location:site ~max_capacity_slots:100
      ~slot_capacity:(Size.gib 400.) ~spare:hot ()

let san =
  Interconnect.make ~name:"san"
    ~transport:
      (Interconnect.Network { link_bandwidth = Rate.mib_per_sec 256.; links = 8 })
    ()

let net name kib =
  Interconnect.make ~name
    ~transport:
      (Interconnect.Network
         { link_bandwidth = Rate.kib_per_sec kib; links = 1 })
    ()

let wl ?(cap = Size.gib 100.) ?(access = Rate.mib_per_sec 2.)
    ?(update = Rate.kib_per_sec 500.) ?(burst = 4.)
    ?(batch = Rate.kib_per_sec 400.) () =
  Workload.make ~name:"w" ~data_capacity:cap ~avg_access_rate:access
    ~avg_update_rate:update ~burst_multiplier:burst
    ~batch_curve:(Batch_curve.constant batch)

let prim ?(raid = Raid.Raid0) dev =
  { Hierarchy.technique = Technique.Primary_copy { raid }; device = dev;
    link = None }

let split ?(acc = 12.) ?(ret = 4) dev =
  { Hierarchy.technique =
      Technique.Split_mirror
        (Schedule.simple ~acc:(Duration.hours acc) ~retention_count:ret ());
    device = dev; link = None }

let backup ?(acc = 24.) ?(ret = 4) dev link =
  { Hierarchy.technique =
      Technique.Backup
        (Schedule.simple ~acc:(Duration.hours acc) ~prop:(Duration.hours 6.)
           ~hold:(Duration.hours 1.) ~retention_count:ret ());
    device = dev; link = Some link }

let mirror ?(mode = Technique.Synchronous) ?(ret = 4) dev link =
  { Hierarchy.technique =
      Technique.Remote_mirror
        { mode;
          schedule =
            Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:ret () };
    device = dev; link }

let business =
  Business.make
    ~outage_penalty_rate:(Money_rate.usd_per_hour 1000.)
    ~loss_penalty_rate:(Money_rate.usd_per_hour 1000.)
    ()

let design ?(name = "fixture") ?workload levels =
  let workload = match workload with Some w -> w | None -> wl () in
  Design.make ~name ~workload ~hierarchy:(Hierarchy.make_exn levels) ~business
    ()

let codes ds = List.sort_uniq String.compare (List.map (fun d -> d.Diag.code) ds)
let scenario name sc = (name, sc)
let array_failure = scenario "array-failure" (Scenario.now (Location.Device "arr"))

(* --- one fixture per registered rule code --- *)

let fixtures : (string * (unit -> Diag.t list)) list =
  [
    ("SSDEP-E001", fun () -> Lint.check_levels [ split (arr ()) ]);
    ( "SSDEP-E002",
      fun () -> Lint.check_levels [ prim (arr ()); prim (arr ()) ] );
    ( "SSDEP-E003",
      fun () ->
        Lint.check_levels
          [ prim (arr ()); split ~ret:4 (arr ()); backup ~ret:2 (tape ()) san ]
    );
    ( "SSDEP-E004",
      fun () ->
        Lint.check_levels
          [ prim (arr ()); split ~acc:12. (arr ());
            backup ~acc:6. (tape ()) san ] );
    ( "SSDEP-E005",
      fun () -> Lint.check_levels [ prim (arr ()); split (arr ~name:"other" ()) ]
    );
    ( "SSDEP-E010",
      fun () ->
        Lint.check_design
          (design ~workload:(wl ~cap:(Size.gib 2000.) ()) [ prim (arr ()) ]) );
    ( "SSDEP-E011",
      fun () ->
        Lint.check_design
          (design
             ~workload:(wl ~access:(Rate.mib_per_sec 400.) ())
             [ prim (arr ()) ]) );
    ( "SSDEP-E012",
      fun () ->
        Lint.check_design
          (design [ prim (arr ()); mirror (arr ~name:"rem" ~loc:away ()) None ])
    );
    ( "SSDEP-E013",
      fun () ->
        Lint.check_design
          (design
             [ prim (arr ());
               mirror (arr ~name:"rem" ~loc:away ()) (Some (net "thin" 100.)) ])
    );
    ( "SSDEP-E014",
      fun () ->
        Lint.check_design
          (design ~workload:(wl ~burst:infinity ()) [ prim (arr ()) ]) );
    ( "SSDEP-E015",
      fun () ->
        Lint.check_design
          (design
             [ prim (arr ~cost:(Cost_model.make ~per_gib:Float.nan ()) ()) ])
    );
    ( "SSDEP-E016",
      fun () ->
        Lint.check_scenario
          (design [ prim (arr ~spare:Spare.No_spare ()); backup (tape ()) san ])
          array_failure );
    ( "SSDEP-E017",
      fun () ->
        Lint.check_scenario
          (design [ prim (arr ()); backup (tape ~bandwidth:false ()) san ])
          array_failure );
    ( "SSDEP-E018",
      fun () ->
        let wan = net "wan" 800. in
        Lint.check_design
          (design
             [ prim (arr ());
               mirror ~mode:Technique.Asynchronous
                 (arr ~name:"rem1" ~loc:away ())
                 (Some wan);
               mirror ~mode:Technique.Asynchronous
                 (arr ~name:"rem2" ~loc:away ())
                 (Some wan) ]) );
    ( "SSDEP-W001",
      fun () ->
        Lint.check_design
          (design ~workload:(wl ~cap:(Size.gib 1500.) ()) [ prim (arr ()) ]) );
    ( "SSDEP-W002",
      fun () ->
        Lint.check_design
          (design
             ~workload:(wl ~access:(Rate.mib_per_sec 280.) ())
             [ prim (arr ()) ]) );
    ( "SSDEP-W003",
      fun () ->
        Lint.check_design
          (design
             [ prim (arr ());
               mirror ~mode:Technique.Asynchronous
                 (arr ~name:"rem" ~loc:away ())
                 (Some (net "wan" 1024.)) ]) );
    ( "SSDEP-W004",
      fun () ->
        Lint.check_design
          (design ~workload:(wl ~batch:(Rate.mib_per_sec 1.) ())
             [ prim (arr ()) ]) );
    ( "SSDEP-W005",
      fun () ->
        Lint.check_design
          (design
             ~workload:(wl ~update:Rate.zero ~batch:Rate.zero ())
             [ prim (arr ()); split (arr ()) ]) );
    ( "SSDEP-W006",
      fun () ->
        Lint.check_scenario
          (design [ prim (arr ()); split (arr ()) ])
          array_failure );
    ( "SSDEP-W007",
      fun () ->
        Lint.check_scenario
          (design [ prim (arr ()); split (arr ()) ])
          (scenario "old-rollback"
             (Scenario.make ~scope:Location.Data_object
                ~target_age:(Duration.weeks 52.) ~object_size:(Size.mib 1.) ()))
    );
    ("SSDEP-I001", fun () -> Lint.check_design Baseline.design);
    ( "SSDEP-I002",
      fun () ->
        Lint.check_design (design [ prim (arr ()); split ~ret:1 (arr ()) ]) );
  ]

let test_registry_covered () =
  let registered = List.map (fun (c, _, _) -> c) Lint.rules in
  Alcotest.(check bool)
    "at least 12 distinct codes" true
    (List.length (List.sort_uniq String.compare registered) >= 12);
  Alcotest.(check int)
    "codes are unique"
    (List.length registered)
    (List.length (List.sort_uniq String.compare registered));
  List.iter
    (fun (code, _, _) ->
      Alcotest.(check bool)
        (code ^ " has a fixture") true
        (List.mem_assoc code fixtures))
    Lint.rules

let test_fixtures_fire () =
  List.iter
    (fun (code, produce) ->
      let found = produce () in
      Alcotest.(check bool)
        (code ^ " fires on its fixture") true
        (List.mem code (codes found));
      (* Severity of every finding matches its registered severity, and no
         unregistered code ever escapes. *)
      List.iter
        (fun (d : Diag.t) ->
          match
            List.find_opt (fun (c, _, _) -> String.equal c d.Diag.code)
              Lint.rules
          with
          | None -> Alcotest.failf "unregistered code %s" d.Diag.code
          | Some (_, sev, _) ->
            Alcotest.(check string)
              (d.Diag.code ^ " severity")
              (Diag.severity_name sev)
              (Diag.severity_name d.Diag.severity))
        found)
    fixtures

let test_clean_design () =
  let d = design [ prim (arr ()); split (arr ()); backup (tape ()) san ] in
  Alcotest.(check (list string))
    "no findings" []
    (codes (Lint.check ~scenarios:[ array_failure ] d));
  Alcotest.(check bool) "accepted" true (Lint.accepts d)

let test_check_levels_matches_constructor () =
  let raw_of (code, _) =
    match code with
    | "SSDEP-E001" -> Some [ split (arr ()) ]
    | "SSDEP-E002" -> Some [ prim (arr ()); prim (arr ()) ]
    | "SSDEP-E003" ->
      Some [ prim (arr ()); split ~ret:4 (arr ()); backup ~ret:2 (tape ()) san ]
    | "SSDEP-E005" -> Some [ prim (arr ()); split (arr ~name:"other" ()) ]
    | _ -> None
  in
  let invalid = List.filter_map raw_of fixtures in
  let valid =
    [
      [ prim (arr ()) ];
      [ prim (arr ()); split (arr ()) ];
      [ prim (arr ()); split (arr ()); backup (tape ()) san ];
      Hierarchy.levels Baseline.design.Design.hierarchy;
    ]
  in
  List.iter
    (fun levels ->
      Alcotest.(check bool) "constructor rejects" true
        (Result.is_error (Hierarchy.make levels));
      Alcotest.(check bool) "lint rejects" false
        (Lint.check_levels levels = []))
    invalid;
  List.iter
    (fun levels ->
      Alcotest.(check bool) "constructor accepts" true
        (Result.is_ok (Hierarchy.make levels));
      Alcotest.(check (list string))
        "lint accepts" [] (codes (Lint.check_levels levels)))
    valid

let baseline_scenarios =
  [
    scenario "user-error" Baseline.scenario_object;
    scenario "array-failure" Baseline.scenario_array;
    scenario "site-disaster" Baseline.scenario_site;
  ]

let test_presets_lint_clean () =
  List.iter
    (fun (name, d) ->
      let found = Lint.check ~scenarios:baseline_scenarios d in
      Alcotest.(check (list string))
        (name ^ " has no lint errors") []
        (codes (Lint.errors found));
      Alcotest.(check bool) (name ^ " accepted") true (Lint.accepts d))
    Whatif.all

(* --- coincidence with the evaluator, over seeded random designs --- *)

let pool = Storage_testkit.Seeded.lint_pool ()

let eval_scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

(* Scaling the workload sweeps the pool designs across the valid/invalid
   boundary: small factors stay clean, large ones overcommit devices and
   saturate links. Whatever the factor, the lint verdict must coincide
   with the evaluator's. *)
let arb_scaled =
  QCheck.pair QCheck.(int_range 0 1000) QCheck.(float_range 0.25 64.)
  |> QCheck.map (fun (i, factor) ->
         let d = List.nth pool (i mod List.length pool) in
         Storage_testkit.Seeded.scaled ~factor d)
  |> QCheck.set_print (fun d -> d.Design.name)

let prop_accepts_iff_validates =
  QCheck.Test.make ~name:"lint accepts iff Design.validate accepts" ~count:200
    arb_scaled (fun d ->
      Lint.accepts d = Result.is_ok (Design.validate d))

let prop_errors_iff_evaluation_errors =
  QCheck.Test.make
    ~name:"lint errors empty iff evaluation reports no errors" ~count:200
    arb_scaled (fun d ->
      List.for_all
        (fun sc ->
          let lint_clean =
            Lint.errors (Lint.check ~scenarios:[ scenario "s" sc ] d) = []
          in
          let eval_clean = (Evaluate.run d sc).Evaluate.errors = [] in
          lint_clean = eval_clean)
        eval_scenarios)

(* [Lint.accepts] is a decomposed fast path (validate + the E014/E015
   finiteness checks, no diagnostic construction); it must stay
   extensionally equal to "no errors in [check_design]" — on clean
   designs and on designs corrupted along every error axis the
   decomposition special-cases. *)
let test_accepts_equals_check_design () =
  let agrees name d =
    Alcotest.(check bool)
      (name ^ ": accepts = no check_design errors")
      (Lint.errors (Lint.check_design d) = [])
      (Lint.accepts d)
  in
  List.iter (fun (d : Design.t) -> agrees d.Design.name d) pool;
  List.iter
    (fun (name, d) -> agrees name d)
    [
      ( "E010 capacity overcommit",
        design ~workload:(wl ~cap:(Size.gib 2000.) ()) [ prim (arr ()) ] );
      ( "E011 bandwidth overcommit",
        design
          ~workload:(wl ~access:(Rate.mib_per_sec 400.) ())
          [ prim (arr ()) ] );
      ( "E012 missing link",
        design [ prim (arr ()); mirror (arr ~name:"rem" ~loc:away ()) None ] );
      ( "E013 thin link",
        design
          [ prim (arr ());
            mirror (arr ~name:"rem" ~loc:away ()) (Some (net "thin" 100.)) ] );
      ( "E014 non-finite burst",
        design ~workload:(wl ~burst:infinity ()) [ prim (arr ()) ] );
      ( "E014 NaN burst",
        design ~workload:(wl ~burst:Float.nan ()) [ prim (arr ()) ] );
      ( "E015 NaN device cost",
        design
          [ prim (arr ~cost:(Cost_model.make ~per_gib:Float.nan ()) ()) ] );
      ( "E015 NaN link cost",
        design
          [ prim (arr ());
            backup (tape ())
              (Interconnect.make ~name:"san-nan"
                 ~transport:
                   (Interconnect.Network
                      { link_bandwidth = Rate.mib_per_sec 256.; links = 8 })
                 ~cost:(Cost_model.make ~per_shipment:Float.nan ())
                 ()) ] );
    ]

(* --- the search pre-filter --- *)

let overcommitted_candidate =
  design ~name:"overcommitted"
    ~workload:(wl ~cap:(Size.gib 5000.) ())
    [ prim (arr ()) ]

let summary_key (s : Objective.summary) =
  ( s.Objective.design.Design.name,
    Money.to_usd s.Objective.worst_total_cost,
    s.Objective.feasible )

let test_search_prunes () =
  let good = [ List.nth pool 0; List.nth pool 1 ] in
  let seeded = [ List.nth pool 0; overcommitted_candidate; List.nth pool 1 ] in
  let scenarios = [ Baseline.scenario_array ] in
  Storage_obs.enable ();
  Storage_obs.reset ();
  let pruned = Search.run (List.to_seq seeded) scenarios in
  Storage_obs.disable ();
  Alcotest.(check int) "lint.pruned counted" 1
    (Storage_obs.Counter.value (Storage_obs.Counter.make "lint.pruned"));
  let no_lint candidates =
    Storage_engine.with_engine ~lint:false (fun engine ->
        Search.run ~engine (List.to_seq candidates) scenarios)
  in
  let hand_filtered = no_lint good in
  Alcotest.(check (list (triple string (float 1e-9) bool)))
    "results identical to a hand-filtered run"
    (List.map summary_key hand_filtered.Search.evaluated)
    (List.map summary_key pruned.Search.evaluated);
  (* Without the filter the invalid candidate is scored (and comes back
     infeasible) instead of being dropped. *)
  let unfiltered = no_lint seeded in
  Alcotest.(check int) "unfiltered evaluates all" 3
    (List.length unfiltered.Search.evaluated);
  let bad =
    List.find
      (fun s -> s.Objective.design.Design.name = "overcommitted")
      unfiltered.Search.evaluated
  in
  Alcotest.(check bool) "invalid candidate is infeasible" false
    bad.Objective.feasible

let test_portfolio_prunes () =
  (* Two members that fit alone but overcommit the shared array together:
     the default evaluation skips them (they are diagnosable via
     [overcommitted]), [~lint:false] scores them into failed reports. *)
  let member name =
    design ~name ~workload:(wl ~cap:(Size.gib 900.) ()) [ prim (arr ()) ]
  in
  let p = Portfolio.make_exn [ member "m1"; member "m2" ] in
  Alcotest.(check int) "both members overcommit the shared device" 1
    (List.length (Portfolio.overcommitted p));
  Storage_obs.enable ();
  Storage_obs.reset ();
  let skipped = Portfolio.evaluate p Baseline.scenario_object in
  Storage_obs.disable ();
  Alcotest.(check int) "overcommitted members skipped" 0 (List.length skipped);
  Alcotest.(check int) "skips counted" 2
    (Storage_obs.Counter.value (Storage_obs.Counter.make "lint.pruned"));
  let forced =
    Storage_engine.with_engine ~lint:false (fun engine ->
        Portfolio.evaluate ~engine p Baseline.scenario_object)
  in
  Alcotest.(check int) "lint:false evaluates everyone" 2 (List.length forced);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "forced reports carry errors" false
        (r.Evaluate.errors = []))
    forced

let test_exit_codes () =
  let errd = [ Diag.make ~code:"SSDEP-E010" Diag.Error Diag.Design_wide "x" ] in
  let warn = [ Diag.make ~code:"SSDEP-W001" Diag.Warning Diag.Design_wide "x" ] in
  let info = [ Diag.make ~code:"SSDEP-I001" Diag.Info Diag.Design_wide "x" ] in
  Alcotest.(check int) "errors exit 2" 2 (Lint.exit_code (errd @ warn));
  Alcotest.(check int) "warnings pass by default" 0 (Lint.exit_code warn);
  Alcotest.(check int) "warnings denied exit 1" 1
    (Lint.exit_code ~deny_warnings:true warn);
  Alcotest.(check int) "infos never fail" 0
    (Lint.exit_code ~deny_warnings:true info);
  Alcotest.(check int) "clean exit 0" 0 (Lint.exit_code [])

let test_stable_order () =
  let d =
    design
      ~workload:(wl ~cap:(Size.gib 2000.) ~burst:infinity ())
      [ prim (arr ()) ]
  in
  let found = Lint.check ~scenarios:[ array_failure ] d in
  Alcotest.(check (list string))
    "reported in Diagnostic.compare order"
    (List.map (fun (x : Diag.t) -> x.Diag.code)
       (List.sort Diag.compare found))
    (List.map (fun (x : Diag.t) -> x.Diag.code) found);
  Alcotest.(check bool) "check deduplicates" true
    (List.length (List.sort_uniq Diag.compare found) = List.length found)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "registry covers every code" `Quick
          test_registry_covered;
        Alcotest.test_case "every rule fires on its fixture" `Quick
          test_fixtures_fire;
        Alcotest.test_case "clean design has no findings" `Quick
          test_clean_design;
        Alcotest.test_case "check_levels matches Hierarchy.make" `Quick
          test_check_levels_matches_constructor;
        Alcotest.test_case "presets lint clean" `Quick test_presets_lint_clean;
        Alcotest.test_case "search pre-filter" `Quick test_search_prunes;
        Alcotest.test_case "portfolio pre-filter" `Quick test_portfolio_prunes;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "stable diagnostic order" `Quick test_stable_order;
        Alcotest.test_case "accepts = no check_design errors" `Quick
          test_accepts_equals_check_design;
        qcheck prop_accepts_iff_validates;
        qcheck prop_errors_iff_evaluation_errors;
      ] );
  ]
