(* Observability layer: the metrics registry is inert while disabled,
   records faithfully while enabled, never perturbs an evaluation result
   either way, and the bounded memo evicts oldest-first without ever
   changing a value. *)

open Storage_model
open Storage_presets
open Storage_parallel
open Helpers

let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

(* Every test that enables recording must switch it back off, even on
   failure: the flag is process-wide and later suites assume the
   default. *)
let with_obs f =
  Storage_obs.enable ();
  Fun.protect ~finally:(fun () -> Storage_obs.disable ()) f

(* --- registry primitives --- *)

let test_disabled_is_inert () =
  Alcotest.(check bool) "recording is off by default" false
    (Storage_obs.enabled ());
  let c = Storage_obs.Counter.make "test.inert.counter" in
  let t = Storage_obs.Timer.make "test.inert.timer" in
  let h = Storage_obs.Histogram.make "test.inert.histogram" in
  Storage_obs.Counter.incr c;
  Storage_obs.Counter.add c 5;
  Alcotest.(check int) "timer still runs its function" 42
    (Storage_obs.Timer.time t (fun () -> 6 * 7));
  Storage_obs.Histogram.observe h 0.25;
  Alcotest.(check int) "counter untouched" 0 (Storage_obs.Counter.value c);
  Alcotest.(check int) "timer untouched" 0 (Storage_obs.Timer.count t);
  Alcotest.(check int) "histogram untouched" 0 (Storage_obs.Histogram.count h)

let test_enabled_records () =
  with_obs @@ fun () ->
  let c = Storage_obs.Counter.make "test.live.counter" in
  Storage_obs.Counter.incr c;
  Storage_obs.Counter.add c 4;
  Alcotest.(check int) "counter counts" 5 (Storage_obs.Counter.value c);
  (* Same-name handles share one metric. *)
  let c' = Storage_obs.Counter.make "test.live.counter" in
  Storage_obs.Counter.incr c';
  Alcotest.(check int) "same-name handles share state" 6
    (Storage_obs.Counter.value c);
  let t = Storage_obs.Timer.make "test.live.timer" in
  ignore (Storage_obs.Timer.time t (fun () -> ()));
  ignore (Storage_obs.Timer.time t (fun () -> ()));
  Alcotest.(check int) "timer counts calls" 2 (Storage_obs.Timer.count t);
  Alcotest.(check bool) "accumulated time non-negative" true
    (Storage_obs.Timer.total_seconds t >= 0.);
  (match Storage_obs.Timer.time t (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "timed exception must propagate");
  Alcotest.(check int) "raising call still counted" 3
    (Storage_obs.Timer.count t);
  let h = Storage_obs.Histogram.make "test.live.histogram" in
  List.iter (Storage_obs.Histogram.observe h) [ 1e-7; 0.5; 3.; 1e12 ];
  Alcotest.(check int) "histogram counts" 4 (Storage_obs.Histogram.count h);
  close "histogram sums" (1e-7 +. 0.5 +. 3. +. 1e12)
    (Storage_obs.Histogram.sum h);
  Storage_obs.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Storage_obs.Counter.value c);
  Alcotest.(check int) "reset zeroes timers" 0 (Storage_obs.Timer.count t);
  Alcotest.(check int) "reset zeroes histograms" 0
    (Storage_obs.Histogram.count h)

(* Timers read wall-clock time, which can step backwards (NTP). A span
   measured across a backwards step must clamp to zero, never record a
   negative or absurd duration. Pinned with an injected clock. *)
let test_timer_clamps_backwards_clock () =
  with_obs @@ fun () ->
  let t = Storage_obs.Timer.make "test.clock.timer" in
  (* Clock steps backwards by an hour between the two reads. *)
  let ticks = ref [ 1000.; -2600. ] in
  let clock () =
    match !ticks with
    | [] -> 0.
    | x :: rest ->
      ticks := rest;
      x
  in
  let v = Storage_obs.with_clock clock (fun () ->
      Storage_obs.Timer.time t (fun () -> 7)) in
  Alcotest.(check int) "timed function ran" 7 v;
  Alcotest.(check int) "call counted" 1 (Storage_obs.Timer.count t);
  close "backwards span clamps to zero" 0. (Storage_obs.Timer.total_seconds t);
  (* And a forward clock still records the real span. *)
  let ticks2 = ref [ 10.; 12.5 ] in
  let clock2 () =
    match !ticks2 with
    | [] -> 12.5
    | x :: rest ->
      ticks2 := rest;
      x
  in
  ignore (Storage_obs.with_clock clock2 (fun () ->
      Storage_obs.Timer.time t (fun () -> ())));
  close "forward span recorded" 2.5 (Storage_obs.Timer.total_seconds t);
  (* with_clock restores the previous clock on exit. *)
  Alcotest.(check bool) "real clock restored" true (Storage_obs.now () > 0.)

let test_snapshot_shape () =
  with_obs @@ fun () ->
  let c = Storage_obs.Counter.make "test.snap.counter" in
  Storage_obs.Counter.add c 3;
  Storage_obs.gauge "test.snap.gauge" (fun () -> 1.5);
  let module J = Storage_report.Json in
  match Storage_obs.snapshot () with
  | J.Obj fields ->
    let keys = List.map fst fields in
    Alcotest.(check bool) "keys sorted" true
      (keys = List.sort String.compare keys);
    (match List.assoc_opt "test.snap.counter" fields with
    | Some (J.Int 3) -> ()
    | _ -> Alcotest.fail "counter must snapshot as Int 3");
    (match List.assoc_opt "test.snap.gauge" fields with
    | Some (J.Float v) -> close "gauge polled at snapshot" 1.5 v
    | _ -> Alcotest.fail "gauge must snapshot as Float")
  | _ -> Alcotest.fail "snapshot must be a JSON object"

(* --- recording never perturbs the model --- *)

let scenarios =
  [ Baseline.scenario_object; Baseline.scenario_array; Baseline.scenario_site ]

let evaluate_everything () =
  List.map (fun d -> Evaluate.run_all d scenarios) Test_random_designs.pool

let test_obs_never_perturbs_evaluate () =
  Storage_obs.disable ();
  let baseline = bytes_of (evaluate_everything ()) in
  let recorded, after_snapshot =
    with_obs @@ fun () ->
    let r1 = bytes_of (evaluate_everything ()) in
    ignore (Storage_obs.snapshot ());
    Storage_obs.reset ();
    let r2 = bytes_of (evaluate_everything ()) in
    (r1, r2)
  in
  Alcotest.(check bool) "recording does not perturb reports" true
    (String.equal baseline recorded);
  Alcotest.(check bool) "snapshot and reset do not perturb reports" true
    (String.equal baseline after_snapshot);
  Alcotest.(check bool) "disabled again, reports unchanged" true
    (String.equal baseline (bytes_of (evaluate_everything ())))

(* --- bounded memo --- *)

let test_memo_fifo_eviction () =
  let m = Memo.create ~max_entries:3 () in
  for i = 0 to 5 do
    let v = Memo.find_or_add m (string_of_int i) (fun () -> i * i) in
    Alcotest.(check int) "computed value" (i * i) v;
    Alcotest.(check bool) "bound respected" true (Memo.length m <= 3)
  done;
  Alcotest.(check int) "evicted the oldest three" 3 (Memo.evicted m);
  Alcotest.(check (option int)) "oldest entry gone" None (Memo.find m "0");
  Alcotest.(check (option int)) "newest entry present" (Some 25)
    (Memo.find m "5");
  (* An evicted key recomputes — a miss, never a wrong value. *)
  let misses = Memo.misses m in
  Alcotest.(check int) "recomputes identically" 0
    (Memo.find_or_add m "0" (fun () -> 0));
  Alcotest.(check int) "recompute is a miss" (misses + 1) (Memo.misses m)

let test_memo_unbounded_default () =
  let m = Memo.create () in
  for i = 0 to 99 do
    ignore (Memo.find_or_add m (string_of_int i) (fun () -> i))
  done;
  Alcotest.(check int) "nothing evicted" 0 (Memo.evicted m);
  Alcotest.(check int) "everything kept" 100 (Memo.length m);
  check_raises_invalid "max_entries < 1" (fun () ->
      Memo.create ~max_entries:0 ())

let test_eval_cache_eviction_preserves_values () =
  let designs = List.filteri (fun i _ -> i < 4) Test_random_designs.pool in
  let run cache =
    List.concat_map (fun d -> Eval_cache.run_all cache d scenarios) designs
  in
  let unbounded = Eval_cache.create () in
  let bounded = Eval_cache.create ~max_entries:2 () in
  Alcotest.(check bool) "eviction never changes a report" true
    (String.equal (bytes_of (run unbounded)) (bytes_of (run bounded)));
  Alcotest.(check bool) "bound respected" true (Eval_cache.length bounded <= 2);
  Alcotest.(check bool) "tight bound forced evictions" true
    (Eval_cache.evicted bounded > 0)

let suite =
  [
    ( "obs.registry",
      [
        Alcotest.test_case "disabled recording is inert" `Quick
          test_disabled_is_inert;
        Alcotest.test_case "enabled recording counts" `Quick
          test_enabled_records;
        Alcotest.test_case "timer clamps a backwards clock" `Quick
          test_timer_clamps_backwards_clock;
        Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
        Alcotest.test_case "never perturbs evaluation" `Quick
          test_obs_never_perturbs_evaluate;
      ] );
    ( "obs.memo_bound",
      [
        Alcotest.test_case "FIFO eviction" `Quick test_memo_fifo_eviction;
        Alcotest.test_case "unbounded by default" `Quick
          test_memo_unbounded_default;
        Alcotest.test_case "eval cache eviction preserves values" `Quick
          test_eval_cache_eviction_preserves_values;
      ] );
  ]
