(* Shared test helpers: approximate comparisons for dimensioned values and
   qcheck-to-alcotest registration. *)

open Storage_units

let close ?(tol = 1e-9) msg expected actual =
  let ok =
    if expected = 0. then Float.abs actual <= tol
    else Float.abs (actual -. expected) /. Float.abs expected <= tol
  in
  if not ok then
    Alcotest.failf "%s: expected %.6g, got %.6g" msg expected actual

let close_duration ?tol msg expected actual =
  close ?tol msg (Duration.to_seconds expected) (Duration.to_seconds actual)

let close_size ?tol msg expected actual =
  close ?tol msg (Size.to_bytes expected) (Size.to_bytes actual)

let close_rate ?tol msg expected actual =
  close ?tol msg (Rate.to_bytes_per_sec expected) (Rate.to_bytes_per_sec actual)

let close_money ?tol msg expected actual =
  close ?tol msg (Money.to_usd expected) (Money.to_usd actual)

(* Substring check, for asserting on fragments of error messages. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let qcheck = QCheck_alcotest.to_alcotest

(* Positive, not-too-extreme floats for dimensioned quantities: keeps
   products and quotients finite and comparisons meaningful. *)
let arb_pos ?(lo = 1e-3) ?(hi = 1e9) () = QCheck.float_range lo hi
