(* The Engine execution context: lifecycle, typed slots, the streaming
   map, and the property suite proving the streaming search pipeline is
   byte-identical to the materialized legacy loop. *)

open Storage_model
open Storage_optimize
open Storage_presets
module Engine = Storage_engine

let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

let check_same_bytes msg a b =
  Alcotest.(check bool) msg true (String.equal (bytes_of a) (bytes_of b))

(* ------------------------------------------------------------------ *)
(* Lifecycle and configuration *)

let test_create_defaults () =
  let e = Engine.create () in
  Alcotest.(check int) "jobs" 1 (Engine.jobs e);
  Alcotest.(check bool) "lint" true (Engine.lint e);
  Alcotest.(check bool) "stats" false (Engine.stats e);
  Alcotest.(check (option int)) "cache_bound" None (Engine.cache_bound e);
  Engine.shutdown e

let test_create_invalid () =
  Helpers.check_raises_invalid "jobs=0" (fun () -> Engine.create ~jobs:0 ());
  Helpers.check_raises_invalid "cache_bound=0" (fun () ->
      Engine.create ~cache_bound:0 ())

let ok_engine = function
  | Ok e -> e
  | Error m -> Alcotest.failf "of_cli: %s" m

let test_of_cli_bounded () =
  let e = ok_engine (Engine.of_cli ~jobs:(Some 2) ~stats:false ()) in
  Alcotest.(check int) "jobs" 2 (Engine.jobs e);
  Alcotest.(check bool) "cache is bounded" true
    (Engine.cache_bound e <> None);
  Engine.shutdown e

(* SSDEP_JOBS resolution: the env supplies the default, an explicit
   --jobs wins, and a malformed value is a configuration error naming
   the variable — never a silent serial fallback. *)
let test_of_cli_env () =
  let env v _ = v in
  let e = ok_engine (Engine.of_cli ~env:(env (Some "3")) ~jobs:None ~stats:false ()) in
  Alcotest.(check int) "env default" 3 (Engine.jobs e);
  Engine.shutdown e;
  let e = ok_engine (Engine.of_cli ~env:(env None) ~jobs:None ~stats:false ()) in
  Alcotest.(check int) "absent env means serial" 1 (Engine.jobs e);
  Engine.shutdown e;
  let e =
    ok_engine
      (Engine.of_cli ~env:(env (Some "banana")) ~jobs:(Some 2) ~stats:false ())
  in
  Alcotest.(check int) "explicit flag wins over env" 2 (Engine.jobs e);
  Engine.shutdown e;
  List.iter
    (fun bad ->
      match Engine.of_cli ~env:(env (Some bad)) ~jobs:None ~stats:false () with
      | Ok _ -> Alcotest.failf "SSDEP_JOBS=%s accepted" bad
      | Error m ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the variable (%s)" bad)
          true
          (Helpers.contains m Engine.jobs_env_var))
    [ "banana"; "0"; "-3"; "" ]

let test_shutdown_idempotent_and_revivable () =
  let e = Engine.create ~jobs:3 () in
  let xs = List.init 20 Fun.id in
  Alcotest.(check (list int)) "first batch" (List.map succ xs)
    (Engine.map e succ xs);
  Engine.shutdown e;
  Engine.shutdown e;
  (* A map after shutdown lazily re-creates the pool. *)
  Alcotest.(check (list int)) "after shutdown" (List.map succ xs)
    (Engine.map e succ xs);
  Engine.shutdown e

let test_with_engine_shuts_down_on_exception () =
  match
    Engine.with_engine ~jobs:2 (fun e ->
        ignore (Engine.map e succ [ 1; 2; 3 ]);
        failwith "boom")
  with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "propagated" "boom" msg

(* ------------------------------------------------------------------ *)
(* Typed slots *)

let int_slot : int ref Engine.key = Engine.new_key ()
let string_slot : string Engine.key = Engine.new_key ()

let test_slots_per_engine_per_key () =
  let a = Engine.create () and b = Engine.create () in
  let ra = Engine.slot a int_slot ~default:(fun () -> ref 1) in
  ra := 42;
  (* Same key, same engine: same slot value. *)
  Alcotest.(check int) "sticky" 42 !(Engine.slot a int_slot ~default:(fun () -> ref 0));
  (* Same key, other engine: fresh slot. *)
  Alcotest.(check int) "per-engine" 1
    !(Engine.slot b int_slot ~default:(fun () -> ref 1));
  (* Distinct keys on one engine do not collide. *)
  Alcotest.(check string) "per-key" "hello"
    (Engine.slot a string_slot ~default:(fun () -> "hello"));
  Engine.set_slot a string_slot "replaced";
  Alcotest.(check string) "set_slot" "replaced"
    (Engine.slot a string_slot ~default:(fun () -> "no"))

let test_eval_cache_slot_shared () =
  Engine.with_engine (fun e ->
      let c1 = Eval_cache.of_engine e in
      let c2 = Eval_cache.of_engine e in
      Alcotest.(check bool) "one cache per engine" true (c1 == c2);
      let bounded = Eval_cache.create ~max_entries:2 () in
      Eval_cache.attach e bounded;
      Alcotest.(check bool) "attach replaces" true
        (Eval_cache.of_engine e == bounded))

(* ------------------------------------------------------------------ *)
(* map_seq: the bounded streaming parallel map *)

let test_map_seq_matches_seq_map () =
  let xs = List.init 157 (fun i -> i - 5) in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      List.iter
        (fun window ->
          Engine.with_engine ~jobs (fun e ->
              Alcotest.(check (list int))
                (Printf.sprintf "jobs=%d window=%d" jobs window)
                expected
                (List.of_seq
                   (Engine.map_seq ~window e (fun x -> x * x) (List.to_seq xs)))))
        [ 1; 2; 7; 64; 1000 ])
    [ 1; 2; 4 ]

let test_map_seq_is_lazy () =
  (* Nothing runs until the result sequence is forced, and forcing only a
     prefix only evaluates whole windows, not the entire input. *)
  Engine.with_engine ~jobs:2 (fun e ->
      let calls = Atomic.make 0 in
      let xs = Seq.ints 0 |> Seq.take 10_000 in
      let out =
        Engine.map_seq ~window:8 e
          (fun x ->
            Atomic.incr calls;
            x + 1)
          xs
      in
      Alcotest.(check int) "nothing forced yet" 0 (Atomic.get calls);
      (match Seq.uncons out with
      | Some (y, _) -> Alcotest.(check int) "head" 1 y
      | None -> Alcotest.fail "expected an element");
      Alcotest.(check bool)
        (Printf.sprintf "only one window forced (%d calls)" (Atomic.get calls))
        true
        (Atomic.get calls <= 8))

let test_map_seq_exception_propagates () =
  Engine.with_engine ~jobs:4 (fun e ->
      let xs = List.to_seq (List.init 100 Fun.id) in
      let out =
        Engine.map_seq ~window:10 e
          (fun x -> if x = 37 then failwith "thirty-seven" else x)
          xs
      in
      match List.of_seq out with
      | (_ : int list) -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
        Alcotest.(check string) "failing element's exception" "thirty-seven" msg)

(* ------------------------------------------------------------------ *)
(* Streaming search == materialized legacy search *)

(* ~200 seeded random designs drawn with repetition (duplicates exercise
   the cache dedup) from an enumerated pool; same draws as ever — the
   testkit's [draw] reproduces the historical loop bit for bit. *)
let seeded_candidates =
  Storage_testkit.Seeded.draw ~seed:[| 0x57E4; 2004 |] ~n:200
    Test_random_designs.pool

let legacy_oracle () = Search.run_materialized seeded_candidates scenarios

let check_result_identical msg (a : Search.result) (b : Search.result) =
  check_same_bytes (msg ^ ": evaluated") a.Search.evaluated b.Search.evaluated;
  check_same_bytes (msg ^ ": feasible") a.Search.feasible b.Search.feasible;
  check_same_bytes (msg ^ ": frontier") a.Search.frontier b.Search.frontier;
  check_same_bytes (msg ^ ": best") a.Search.best b.Search.best;
  Alcotest.(check int) (msg ^ ": considered") a.Search.considered
    b.Search.considered;
  Alcotest.(check int) (msg ^ ": feasible_count") a.Search.feasible_count
    b.Search.feasible_count

let test_streaming_equals_materialized () =
  (* The full matrix the refactor must not disturb: serial and 4-domain
     streaming runs, each with a fresh and with a shared session cache,
     all byte-identical to the materialized pre-engine loop. *)
  let oracle = legacy_oracle () in
  List.iter
    (fun jobs ->
      let fresh =
        Engine.with_engine ~jobs (fun engine ->
            Search.run ~engine (List.to_seq seeded_candidates) scenarios)
      in
      check_result_identical
        (Printf.sprintf "fresh cache, jobs=%d" jobs)
        oracle fresh;
      let shared =
        Engine.with_engine ~jobs (fun engine ->
            ignore
              (Search.run ~engine (List.to_seq seeded_candidates) scenarios);
            (* Second pass over a warm cache. *)
            Search.run ~engine (List.to_seq seeded_candidates) scenarios)
      in
      check_result_identical
        (Printf.sprintf "warm shared cache, jobs=%d" jobs)
        oracle shared)
    [ 1; 4 ]

let test_streaming_bounded_cache_identical () =
  (* Even a pathologically small cache bound (constant eviction) cannot
     change a single byte — only the hit rate. *)
  let oracle = legacy_oracle () in
  let e = Engine.create ~jobs:2 ~cache_bound:3 () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown e)
    (fun () ->
      let r = Search.run ~engine:e (List.to_seq seeded_candidates) scenarios in
      check_result_identical "cache_bound=3" oracle r;
      Alcotest.(check bool) "evictions happened" true
        (Eval_cache.evicted (Eval_cache.of_engine e) > 0))

let test_streaming_never_materializes () =
  (* With [~top_k] the pipeline visits every candidate exactly once and
     retains none of the non-frontier summaries. *)
  let forced = Atomic.make 0 in
  let counted =
    Seq.map
      (fun d ->
        Atomic.incr forced;
        d)
      (List.to_seq seeded_candidates)
  in
  let r =
    Engine.with_engine ~jobs:4 (fun engine ->
        Search.run ~engine ~top_k:5 counted scenarios)
  in
  Alcotest.(check int) "each candidate forced once" 200 (Atomic.get forced);
  Alcotest.(check int) "evaluated dropped" 0 (List.length r.Search.evaluated);
  Alcotest.(check bool) "top-k respected" true
    (List.length r.Search.feasible <= 5);
  let oracle = legacy_oracle () in
  check_same_bytes "frontier unaffected by truncation" oracle.Search.frontier
    r.Search.frontier;
  check_same_bytes "best unaffected by truncation" oracle.Search.best
    r.Search.best

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "engine.lifecycle",
      [
        t "create defaults" test_create_defaults;
        t "invalid arguments rejected" test_create_invalid;
        t "of_cli bounds the cache" test_of_cli_bounded;
        t "of_cli resolves SSDEP_JOBS" test_of_cli_env;
        t "shutdown idempotent, pool revivable"
          test_shutdown_idempotent_and_revivable;
        t "with_engine shuts down on exception"
          test_with_engine_shuts_down_on_exception;
      ] );
    ( "engine.slots",
      [
        t "slots are per-engine, per-key" test_slots_per_engine_per_key;
        t "eval cache lives in a slot" test_eval_cache_slot_shared;
      ] );
    ( "engine.map_seq",
      [
        t "matches Seq.map across jobs and windows" test_map_seq_matches_seq_map;
        t "lazy: forces at most one window ahead" test_map_seq_is_lazy;
        t "first exception propagates" test_map_seq_exception_propagates;
      ] );
    ( "engine.streaming_search",
      [
        t "streaming == materialized (200 seeded designs, serial+4 domains, \
           fresh+warm cache)"
          test_streaming_equals_materialized;
        t "bounded cache evicts but never changes bytes"
          test_streaming_bounded_cache_identical;
        t "top-k truncation retains O(k), single pass"
          test_streaming_never_materializes;
      ] );
  ]
