(* The project source analyzer (lib/analysis, sslint): rule coverage
   over the fixture tree, the retired regex checker's blind spots held
   as firing fixtures, and a full self-scan — the analyzer's rules hold
   over this repository's own lib/, bin/, bench/ and tools/. *)

module A = Storage_analysis

let t name f = Alcotest.test_case name `Quick f
let fixtures = "analysis/fixtures"
let fixture name = Filename.concat (Filename.concat fixtures "lib") name
let codes_of findings = List.map (fun f -> f.A.Finding.code) findings

let sorted_uniq_codes findings =
  List.sort_uniq String.compare (codes_of findings)

(* --- registry / fixture coverage ---------------------------------- *)

let test_every_rule_has_a_firing_fixture () =
  let report = A.Analyze.paths [ fixtures ] in
  let fired = sorted_uniq_codes report.A.Analyze.findings in
  List.iter
    (fun (r : A.Rule.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fires somewhere under fixtures/" r.A.Rule.code)
        true
        (List.mem r.A.Rule.code fired))
    A.Rule.all

let test_registry_codes_unique_and_known () =
  let codes = List.map (fun (r : A.Rule.t) -> r.A.Rule.code) A.Rule.all in
  Alcotest.(check int)
    "codes are unique"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  let report = A.Analyze.paths [ fixtures ] in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "finding code %s is registered" code)
        true (A.Rule.mem code))
    (sorted_uniq_codes report.A.Analyze.findings)

(* --- the retired regex checker's blind spots ---------------------- *)

(* Each fixture is a layout the retired line regexes could not see
   (aliases, opens, multi-line splits, doc-comment mentions); the AST
   rules fire on all of them. The regex reference implementation is
   gone, but the fixtures stay as the hardest firing cases. *)
let blindspots =
  [
    ("blindspot_random_alias.ml", "SA001");
    ("blindspot_random_open.ml", "SA001");
    ("blindspot_exit_multiline.ml", "SA003");
    ("blindspot_hashtbl_layout.ml", "SA002");
    ("blindspot_socket_open.ml", "SA004");
    ("blindspot_deprecated_doc.mli", "SA005");
  ]

let test_blindspots_ast_fires () =
  List.iter
    (fun (name, code) ->
      let ast_codes = codes_of (A.Analyze.file (fixture name)) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: the AST rule fires %s" name code)
        true (List.mem code ast_codes))
    blindspots

(* --- suppressions ------------------------------------------------- *)

let test_used_suppression_is_silent () =
  Alcotest.(check (list string))
    "a used [@sslint.allow] yields no findings and no SA011" []
    (codes_of (A.Analyze.file (fixture "ok_suppressed.ml")))

let test_unused_suppression_reports_sa011 () =
  Alcotest.(check (list string))
    "a stale allow is exactly one SA011" [ "SA011" ]
    (codes_of (A.Analyze.file (fixture "sa011_unused_allow.ml")))

(* --- scoping ------------------------------------------------------ *)

let test_serve_scope_allows_sockets () =
  Alcotest.(check (list string))
    "sockets under a serve directory are in scope" []
    (codes_of
       (A.Analyze.file
          (Filename.concat fixtures (Filename.concat "lib/serve" "ok_socket.ml"))))

let test_classify () =
  let dir path = (A.Source.classify path).A.Source.dir in
  Alcotest.(check bool) "lib/serve" true (dir "lib/serve/http.ml" = Lib "serve");
  Alcotest.(check bool) "lib root" true (dir "lib/top.ml" = Lib "");
  Alcotest.(check bool) "bin" true (dir "bin/ssdep.ml" = Bin);
  Alcotest.(check bool) "bench" true (dir "bench/main.ml" = Bench);
  Alcotest.(check bool) "tools" true (dir "tools/sslint.ml" = Tools);
  Alcotest.(check bool) "fixtures reclassify as lib" true
    (dir "analysis/fixtures/lib/x.ml" = Lib "");
  Alcotest.(check bool) "unrecognized paths default to strict lib" true
    (dir "scratch/thing.ml" = Lib "")

(* --- exit codes (the ssdep lint contract) ------------------------- *)

let test_exit_codes () =
  let err = A.Finding.make ~code:"SA003" A.Finding.Error ~file:"f" ~line:1 ~col:0 "e"
  and warn =
    A.Finding.make ~code:"SA007" A.Finding.Warning ~file:"f" ~line:1 ~col:0 "w"
  in
  Alcotest.(check int) "clean" 0 (A.Finding.exit_code []);
  Alcotest.(check int) "warnings pass by default" 0 (A.Finding.exit_code [ warn ]);
  Alcotest.(check int) "warnings fail under deny" 1
    (A.Finding.exit_code ~deny_warnings:true [ warn ]);
  Alcotest.(check int) "errors dominate" 2
    (A.Finding.exit_code ~deny_warnings:true [ warn; err ])

(* --- the tree itself ---------------------------------------------- *)

let tree_roots = [ "../lib"; "../bin"; "../bench"; "../tools" ]

let test_self_scan_clean () =
  let report = A.Analyze.paths tree_roots in
  Alcotest.(check bool) "scanned a real tree" true (report.A.Analyze.files > 100);
  Alcotest.(check (list string))
    "lib/ bin/ bench/ tools/ carry no findings (errors or warnings)" []
    (List.map
       (fun f -> Printf.sprintf "%s:%d %s" f.A.Finding.file f.A.Finding.line f.A.Finding.code)
       report.A.Analyze.findings)

let suite =
  [
    ( "analysis.rules",
      [
        t "every SA rule has a firing fixture" test_every_rule_has_a_firing_fixture;
        t "registry codes unique; all emitted codes registered"
          test_registry_codes_unique_and_known;
        t "retired-regex blind spots: the AST rules fire"
          test_blindspots_ast_fires;
      ] );
    ( "analysis.suppress",
      [
        t "used suppression is silent" test_used_suppression_is_silent;
        t "unused suppression reports SA011" test_unused_suppression_reports_sa011;
      ] );
    ( "analysis.scope",
      [
        t "serve scope allows sockets" test_serve_scope_allows_sockets;
        t "path classification" test_classify;
        t "exit codes match ssdep lint" test_exit_codes;
      ] );
    ( "analysis.tree",
      [ t "self-scan: the project sources are clean" test_self_scan_clean ] );
  ]
