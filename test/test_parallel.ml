(* The multicore evaluation engine: Pool.map determinism and stress tests,
   Memo/Eval_cache semantics, and property proofs that every parallel entry
   point (search, sensitivity, portfolio, failure-phase sweep) is
   byte-identical to its serial run. *)

open Storage_units
open Storage_model
open Storage_optimize
open Storage_presets
open Storage_parallel
module Engine = Storage_engine

let pool_designs = Test_random_designs.pool
let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

(* Structural equality down to the last byte. [No_sharing] makes the bytes
   independent of how values were built; both sides are marshaled only
   after both runs complete, so the designs' fingerprint memos (filled by
   whichever run came first, shared physically by both results) agree. *)
let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

let check_same_bytes msg a b =
  Alcotest.(check bool) msg true (String.equal (bytes_of a) (bytes_of b))

(* ------------------------------------------------------------------ *)
(* Pool.map *)

let square x = x * x

let test_map_matches_list_map () =
  List.iter
    (fun n ->
      let xs = List.init n (fun i -> i - 3) in
      let expected = List.map square xs in
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "map n=%d jobs=%d" n jobs)
            expected
            (Pool.map ~jobs square xs))
        [ 1; 2; 4; 7 ])
    [ 0; 1; 2; 3; 5; 17; 100 ]

let test_map_jobs_exceed_length () =
  (* More domains than work: every result still lands in its input slot. *)
  let xs = [ 10; 20; 30 ] in
  Alcotest.(check (list int))
    "jobs=8 over 3 elements" (List.map square xs)
    (Pool.map ~jobs:8 square xs)

let test_map_forced_chunks () =
  let xs = List.init 23 Fun.id in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        (Printf.sprintf "chunk=%d" chunk)
        (List.map square xs)
        (Pool.map ~chunk ~jobs:3 square xs))
    [ 1; 2; 23; 100 ]

let test_map_applies_each_input_once () =
  let calls = Atomic.make 0 in
  let xs = List.init 57 Fun.id in
  let ys =
    Pool.map ~jobs:4
      (fun x ->
        Atomic.incr calls;
        x + 1)
      xs
  in
  Alcotest.(check int) "one application per input" 57 (Atomic.get calls);
  Alcotest.(check (list int)) "results" (List.map succ xs) ys

let test_invalid_arguments () =
  Helpers.check_raises_invalid "jobs=0" (fun () ->
      Pool.map ~jobs:0 square [ 1 ]);
  Helpers.check_raises_invalid "jobs=-2" (fun () -> Pool.create ~jobs:(-2));
  Helpers.check_raises_invalid "chunk=0" (fun () ->
      Pool.with_pool ~jobs:2 (fun p -> Pool.map_on ~chunk:0 p square [ 1; 2 ]))

let test_exception_propagation () =
  (* Every element raises. Serially, and with everything in one chunk, the
     smallest-evaluated-index rule is deterministic: index 0. With many
     chunks racing, the winning index can vary, but it is always one of the
     inputs'. *)
  let all_raise i : int = failwith (string_of_int i) in
  let xs = List.init 40 Fun.id in
  (match Pool.map ~jobs:1 all_raise xs with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "serial" "0" msg);
  (match Pool.map ~jobs:4 ~chunk:40 all_raise xs with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "single chunk" "0" msg);
  (match Pool.map ~jobs:4 all_raise xs with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> (
    match int_of_string_opt msg with
    | Some i when i >= 0 && i < 40 -> ()
    | _ -> Alcotest.failf "unexpected failure index %S" msg));
  (* A single raising element: its exception is the one the caller sees. *)
  let one_raises x = if x = 11 then failwith "eleven" else x in
  (match Pool.map ~jobs:4 one_raises (List.init 30 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "sole failure" "eleven" msg)

let test_pool_survives_batch_failure () =
  (* Cancellation is per-batch: after a failed map_on, the same pool still
     runs clean batches. *)
  Pool.with_pool ~jobs:3 (fun p ->
      (match Pool.map_on p (fun _ -> failwith "boom") [ 1; 2; 3; 4 ] with
      | (_ : int list) -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
      let xs = List.init 20 Fun.id in
      Alcotest.(check (list int))
        "pool usable after failure" (List.map square xs)
        (Pool.map_on p square xs))

let test_pool_reuse_many_batches () =
  Pool.with_pool ~jobs:4 (fun p ->
      for round = 1 to 25 do
        let xs = List.init (round * 3) (fun i -> i * round) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map square xs) (Pool.map_on p square xs)
      done)

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 in
  Alcotest.(check int) "size" 3 (Pool.size p);
  Pool.shutdown p;
  Pool.shutdown p

(* Tasks enqueued while stats are disabled carry [enqueued_at = 0.]. If
   recording turns on before they drain, the queue-wait histogram must
   skip them — naively measuring against timestamp 0 would record an
   epoch-sized wait and wreck every percentile. *)
let test_queue_wait_skips_pre_enable_tasks () =
  let h = Storage_obs.Histogram.make "pool.queue_wait_seconds" in
  Storage_obs.disable ();
  let before = Storage_obs.Histogram.count h in
  Fun.protect ~finally:(fun () -> Storage_obs.disable ()) @@ fun () ->
  Pool.with_pool ~jobs:2 (fun p ->
      (* All chunks are enqueued (with enqueued_at = 0.) before any
         worker runs the function that flips recording on. *)
      let out =
        Pool.map_on ~chunk:1 p
          (fun x ->
            Storage_obs.enable ();
            x * x)
          (List.init 16 Fun.id)
      in
      Alcotest.(check (list int))
        "results unaffected"
        (List.map square (List.init 16 Fun.id))
        out);
  Alcotest.(check int) "no bogus epoch-sized waits recorded" before
    (Storage_obs.Histogram.count h);
  (* With recording on for the whole batch, waits do get observed —
     the guard skips only the sentinel timestamp. *)
  Storage_obs.enable ();
  Pool.with_pool ~jobs:2 (fun p ->
      ignore (Pool.map_on ~chunk:1 p square (List.init 8 Fun.id)));
  Storage_obs.disable ();
  Alcotest.(check bool) "live batches still observed" true
    (Storage_obs.Histogram.count h > before)

(* ------------------------------------------------------------------ *)
(* Pool.map_seq chunked scheduling *)

let seq_of_list xs = List.to_seq xs

let test_map_seq_empty () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int))
        "empty input, empty output" []
        (List.of_seq (Pool.map_seq p square Seq.empty)))

let test_map_seq_chunk_exceeds_input () =
  (* A chunk far larger than the input degenerates to one task; results
     and order are unchanged. *)
  let xs = List.init 10 Fun.id in
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int))
        "chunk=1000 over 10 elements" (List.map square xs)
        (List.of_seq (Pool.map_seq ~chunk:1000 p square (seq_of_list xs))))

let test_map_seq_chunk_one_equivalence () =
  (* chunk=1 is one task per element — the pre-batching schedule. It must
     compute exactly what every other granularity computes. *)
  let xs = List.init 137 (fun i -> i - 5) in
  let expected = List.map square xs in
  Pool.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun (label, result) ->
          Alcotest.(check (list int)) label expected (List.of_seq result))
        [
          ("chunk=1", Pool.map_seq ~chunk:1 p square (seq_of_list xs));
          ("chunk=7", Pool.map_seq ~chunk:7 p square (seq_of_list xs));
          ( "chunk=window",
            Pool.map_seq ~window:32 ~chunk:32 p square (seq_of_list xs) );
          ( "chunk>n",
            Pool.map_seq ~chunk:(List.length xs + 1) p square (seq_of_list xs)
          );
          ("auto", Pool.map_seq p square (seq_of_list xs));
        ])

let test_map_seq_exception_mid_chunk_first_wins () =
  (* The raising element sits mid-chunk with clean elements on both
     sides, across several chunk granularities: the sole exception is
     the one the caller sees, and it surfaces when the window is forced. *)
  let n = 40 in
  let boom x = if x = 17 then failwith "seventeen" else x in
  Pool.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun chunk ->
          match
            List.of_seq (Pool.map_seq ~chunk p boom (seq_of_list (List.init n Fun.id)))
          with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure msg ->
            Alcotest.(check string)
              (Printf.sprintf "chunk=%d" chunk)
              "seventeen" msg)
        [ 1; 7; 40; 1000 ];
      (* Everything raises: first input index wins within the window. *)
      match
        List.of_seq
          (Pool.map_seq ~window:8 ~chunk:8 p
             (fun i : int -> failwith (string_of_int i))
             (seq_of_list (List.init n Fun.id)))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> Alcotest.(check string) "first wins" "0" msg)

let test_map_seq_windows_are_lazy () =
  (* Forcing the head evaluates exactly one window, chunked or not. *)
  let calls = Atomic.make 0 in
  Pool.with_pool ~jobs:2 (fun p ->
      let out =
        Pool.map_seq ~window:8 ~chunk:3 p
          (fun x ->
            Atomic.incr calls;
            x * 2)
          (seq_of_list (List.init 100 Fun.id))
      in
      (match out () with
      | Seq.Cons (y, _) -> Alcotest.(check int) "head" 0 y
      | Seq.Nil -> Alcotest.fail "expected a head");
      Alcotest.(check int) "one window evaluated" 8 (Atomic.get calls))

(* ------------------------------------------------------------------ *)
(* Memo *)

let test_memo_computes_once () =
  let m = Memo.create () in
  let computed = ref 0 in
  let compute () = incr computed; !computed * 10 in
  Alcotest.(check int) "first" 10 (Memo.find_or_add m "k" compute);
  Alcotest.(check int) "second (cached)" 10 (Memo.find_or_add m "k" compute);
  Alcotest.(check int) "computed once" 1 !computed;
  Alcotest.(check int) "hits" 1 (Memo.hits m);
  Alcotest.(check int) "misses" 1 (Memo.misses m);
  Alcotest.(check (option int)) "find" (Some 10) (Memo.find m "k");
  Alcotest.(check (option int)) "find absent" None (Memo.find m "absent");
  Alcotest.(check int) "length" 1 (Memo.length m)

let test_memo_failed_compute_caches_nothing () =
  let m = Memo.create () in
  (match Memo.find_or_add m "k" (fun () -> failwith "no") with
  | (_ : int) -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check (option int)) "nothing cached" None (Memo.find m "k");
  Alcotest.(check int) "retry computes" 7 (Memo.find_or_add m "k" (fun () -> 7))

let test_memo_clear () =
  let m = Memo.create () in
  ignore (Memo.find_or_add m "a" (fun () -> 1));
  ignore (Memo.find_or_add m "a" (fun () -> 1));
  Memo.clear m;
  Alcotest.(check int) "length" 0 (Memo.length m);
  Alcotest.(check int) "hits" 0 (Memo.hits m);
  Alcotest.(check int) "misses" 0 (Memo.misses m)

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint_structural () =
  (* Independently enumerated but structurally equal designs share a
     fingerprint; distinct candidates (almost surely) do not. *)
  let again = Test_random_designs.pool_again () in
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        ("same structure, same fingerprint: " ^ a.Design.name)
        (Design.fingerprint a) (Design.fingerprint b))
    pool_designs again;
  let fps = List.map Design.fingerprint pool_designs in
  let distinct = List.sort_uniq String.compare fps in
  Alcotest.(check int)
    "distinct designs, distinct fingerprints" (List.length fps)
    (List.length distinct)

let prop_equal_designs_hash_equal =
  (* Two independent constructions of the same design — the seeded pool
     entry and a stripped (memo-less) rescale of it — always share a
     fingerprint, whatever the index and growth factor. *)
  let pool = Storage_testkit.Seeded.lint_pool () in
  QCheck.Test.make ~name:"equal designs hash equal" ~count:200
    (QCheck.pair QCheck.(int_range 0 1000) QCheck.(float_range 0.25 64.))
    (fun (i, factor) ->
      let d = List.nth pool (i mod List.length pool) in
      let a = Storage_testkit.Seeded.scaled ~factor d in
      let b = Storage_testkit.Seeded.scaled ~factor (Design.strip d) in
      String.equal (Design.fingerprint a) (Design.fingerprint b))

let test_fingerprint_collision_smoke () =
  (* No collisions across every distinct design the seeded generators
     produce: the enumerated pool, the lint pool and a fan of scaled
     variants. A 128-bit structural hash colliding here would be a walk
     bug (a skipped leaf), not bad luck. *)
  let scaled_fan =
    List.concat_map
      (fun d ->
        List.map
          (fun factor -> Storage_testkit.Seeded.scaled ~factor d)
          [ 0.5; 2.; 3. ])
      pool_designs
  in
  let designs =
    pool_designs @ Storage_testkit.Seeded.lint_pool () @ scaled_fan
  in
  (* Structurally equal duplicates across sources are expected; count
     unique structures via their marshaled bytes. *)
  let structures =
    List.sort_uniq String.compare
      (List.map (fun d -> bytes_of (Design.strip d)) designs)
  in
  let fps =
    List.sort_uniq String.compare (List.map Design.fingerprint designs)
  in
  Alcotest.(check int)
    "distinct structures = distinct fingerprints" (List.length structures)
    (List.length fps)

let test_fingerprint_pinned () =
  (* The cache key is a persistent artifact (corpus files, future
     on-disk caches): its value for a fixed design must not drift across
     PRs. If this fails, the hash walk changed — bump cache versions and
     re-pin deliberately. *)
  Alcotest.(check string)
    "Struct_hash primitive walk"
    "eea3eae7674b0503b3c3266b2efa3f90"
    Storage_units.Struct_hash.(
      to_hex (string (float (int init 2004) 1.5) "ssdep"));
  Alcotest.(check string)
    "baseline design fingerprint" "bb74638cff39f5d89aa15379e0c9b8e3"
    (Design.fingerprint Baseline.design)

let test_scenario_fingerprint_distinct () =
  Alcotest.(check bool)
    "array vs site scenarios differ" false
    (String.equal
       (Scenario.fingerprint Baseline.scenario_array)
       (Scenario.fingerprint Baseline.scenario_site))

(* ------------------------------------------------------------------ *)
(* Parallel == serial, and the cache never changes a metric *)

(* ~200 seeded random designs drawn (with repetition, exercising the
   cache's dedup) from the enumerated pool; same draws as ever — the
   testkit's [draw] reproduces the historical loop bit for bit. *)
let seeded_candidates =
  Storage_testkit.Seeded.draw ~seed:[| 0x5DE9; 2004 |] ~n:200 pool_designs

let test_search_parallel_equals_serial () =
  let run jobs =
    Engine.with_engine ~jobs (fun engine ->
        Search.run ~engine (List.to_seq seeded_candidates) scenarios)
  in
  let serial = run 1 in
  let par = run 4 in
  check_same_bytes "evaluated" serial.Search.evaluated par.Search.evaluated;
  check_same_bytes "feasible" serial.Search.feasible par.Search.feasible;
  check_same_bytes "frontier" serial.Search.frontier par.Search.frontier;
  check_same_bytes "best" serial.Search.best par.Search.best

let test_search_chunk_invariance () =
  (* The ISSUE-6 contract behind the chunk-invariance oracle: forced
     scheduling granularities {1, 7, the window, > n} over the 200
     seeded designs are all byte-identical to the serial run. *)
  let serial =
    Engine.with_engine ~jobs:1 (fun engine ->
        Search.run ~engine (List.to_seq seeded_candidates) scenarios)
  in
  let n = List.length seeded_candidates in
  List.iter
    (fun chunk ->
      let chunked =
        let engine = Engine.create ~jobs:4 ~chunk () in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown engine)
          (fun () ->
            Search.run ~engine (List.to_seq seeded_candidates) scenarios)
      in
      let label = Printf.sprintf "chunk=%d" chunk in
      check_same_bytes (label ^ " evaluated") serial.Search.evaluated
        chunked.Search.evaluated;
      check_same_bytes (label ^ " frontier") serial.Search.frontier
        chunked.Search.frontier;
      check_same_bytes (label ^ " best") serial.Search.best chunked.Search.best)
    [ 1; 7; 512 * 4; n + 1 ]

let test_search_shared_cache_equals_fresh () =
  (* The engine's session cache carried across searches changes nothing
     but time. *)
  Engine.with_engine ~jobs:2 (fun engine ->
      let cache = Eval_cache.of_engine engine in
      let first = Search.run ~engine (List.to_seq seeded_candidates) scenarios in
      let second =
        Search.run ~engine (List.to_seq seeded_candidates) scenarios
      in
      let fresh =
        Engine.with_engine ~jobs:1 (fun e ->
            Search.run ~engine:e (List.to_seq seeded_candidates) scenarios)
      in
      check_same_bytes "warm cache, same result" first.Search.evaluated
        second.Search.evaluated;
      check_same_bytes "cached vs uncached" fresh.Search.evaluated
        first.Search.evaluated;
      Alcotest.(check bool) "second pass all hits" true
        (Eval_cache.misses cache > 0
        && Eval_cache.hits cache > Eval_cache.misses cache))

let test_cache_reports_identical () =
  let cache = Eval_cache.create () in
  List.iter
    (fun d ->
      List.iter
        (fun sc ->
          let direct = Evaluate.run d sc in
          let cached = Eval_cache.run cache d sc in
          check_same_bytes ("report: " ^ d.Design.name) direct cached;
          (* The hit path returns the very same report. *)
          Alcotest.(check bool) "hit is physically shared" true
            (cached == Eval_cache.run cache d sc))
        scenarios)
    pool_designs

let test_sensitivity_parallel_equals_serial () =
  let n = List.length pool_designs in
  let build v = List.nth pool_designs (int_of_float v mod n) in
  let values = List.init 24 float_of_int in
  let serial =
    Engine.with_engine ~jobs:1 (fun engine ->
        Sensitivity.sweep ~engine build ~values Baseline.scenario_array)
  in
  let par =
    Engine.with_engine ~jobs:4 (fun engine ->
        Sensitivity.sweep ~engine build ~values Baseline.scenario_array)
  in
  check_same_bytes "sweep points" serial par

let test_portfolio_parallel_equals_serial () =
  (* Two members on the same hardware, evaluated per-member in parallel. *)
  let rename name (d : Design.t) =
    Design.make ~name ~workload:d.Design.workload ~hierarchy:d.Design.hierarchy
      ~business:d.Design.business ~background:d.Design.background ()
  in
  let a = rename "tenant-a" (List.nth pool_designs 0) in
  let b = rename "tenant-b" (List.nth pool_designs 1) in
  let p = Portfolio.make_exn [ a; b ] in
  let serial =
    Engine.with_engine ~jobs:1 (fun engine ->
        Portfolio.evaluate ~engine p Baseline.scenario_array)
  in
  let par =
    Engine.with_engine ~jobs:4 (fun engine ->
        Portfolio.evaluate ~engine p Baseline.scenario_array)
  in
  check_same_bytes "portfolio reports" serial par

let test_sim_sweep_parallel_equals_serial () =
  let d = List.nth pool_designs 2 in
  let config =
    { Storage_sim.Sim.warmup = Duration.weeks 10.; log = false; outage = None;
      record_events = false }
  in
  let offsets =
    [ Duration.zero; Duration.hours 1.; Duration.hours 6.; Duration.hours 13.;
      Duration.hours 26. ]
  in
  let serial =
    Engine.with_engine ~jobs:1 (fun engine ->
        Storage_sim.Sim.sweep_failure_phase ~engine ~config d
          Baseline.scenario_array ~offsets)
  in
  let par =
    Engine.with_engine ~jobs:4 (fun engine ->
        Storage_sim.Sim.sweep_failure_phase ~engine ~config d
          Baseline.scenario_array ~offsets)
  in
  check_same_bytes "failure-phase sweep" serial par

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "parallel_pool",
      [
        t "map matches List.map across jobs and sizes" test_map_matches_list_map;
        t "more domains than inputs" test_map_jobs_exceed_length;
        t "forced chunk sizes" test_map_forced_chunks;
        t "each input applied exactly once" test_map_applies_each_input_once;
        t "invalid jobs/chunk rejected" test_invalid_arguments;
        t "first exception propagates" test_exception_propagation;
        t "pool survives a failed batch" test_pool_survives_batch_failure;
        t "pool reused across many batches" test_pool_reuse_many_batches;
        t "shutdown is idempotent" test_shutdown_idempotent;
        t "queue-wait skips tasks enqueued before stats were on"
          test_queue_wait_skips_pre_enable_tasks;
      ] );
    ( "parallel_map_seq",
      [
        t "empty sequence" test_map_seq_empty;
        t "chunk larger than input" test_map_seq_chunk_exceeds_input;
        t "chunk=1 and every granularity agree" test_map_seq_chunk_one_equivalence;
        t "exception mid-chunk: first wins" test_map_seq_exception_mid_chunk_first_wins;
        t "windows are lazy under chunking" test_map_seq_windows_are_lazy;
      ] );
    ( "parallel_memo",
      [
        t "computes once, then hits" test_memo_computes_once;
        t "failed compute caches nothing" test_memo_failed_compute_caches_nothing;
        t "clear resets table and counters" test_memo_clear;
      ] );
    ( "parallel_engine",
      [
        t "fingerprints are structural" test_fingerprint_structural;
        Helpers.qcheck prop_equal_designs_hash_equal;
        t "fingerprint collision smoke over the seeded pools"
          test_fingerprint_collision_smoke;
        t "fingerprint pinned values" test_fingerprint_pinned;
        t "scenario fingerprints distinguish scenarios"
          test_scenario_fingerprint_distinct;
        t "search: 4 domains byte-identical to serial (200 seeded designs)"
          test_search_parallel_equals_serial;
        t "search: chunk sizes {1,7,window,>n} byte-identical to serial"
          test_search_chunk_invariance;
        t "search: shared session cache changes nothing"
          test_search_shared_cache_equals_fresh;
        t "eval cache returns the very report evaluation would"
          test_cache_reports_identical;
        t "sensitivity sweep: parallel == serial"
          test_sensitivity_parallel_equals_serial;
        t "portfolio evaluate: parallel == serial"
          test_portfolio_parallel_equals_serial;
        t "failure-phase sweep: parallel == serial"
          test_sim_sweep_parallel_equals_serial;
      ] );
  ]
