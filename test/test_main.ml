(* Aggregated test runner for the whole framework. *)

let () =
  Alcotest.run "storage-dependability"
    (Test_units.suite @ Test_workload.suite @ Test_device.suite
   @ Test_protection.suite @ Test_hierarchy.suite @ Test_model.suite
   @ Test_sim.suite @ Test_fleet.suite @ Test_optimize.suite
   @ Test_extensions.suite
   @ Test_presets.suite @ Test_spec.suite @ Test_coverage.suite
   @ Test_lint.suite
   @ Test_random_designs.suite
   @ Test_parallel.suite @ Test_engine.suite @ Test_report.suite
   @ Test_obs.suite @ Test_testkit.suite
   @ Test_serve.suite @ Test_analysis.suite)
