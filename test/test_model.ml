(* Tests for the compositional model: design assembly, utilization
   (Table 5), data loss (Tables 6-7), recovery time (Table 6, Figure 4),
   costs (Figure 5, Table 7) and the top-level evaluation. *)

open Storage_units
open Storage_device
open Storage_model
open Storage_presets
open Helpers

let design = Baseline.design

(* --- Design --- *)

let test_devices_deduplicated () =
  let names = List.map (fun d -> d.Device.name) (Design.devices design) in
  Alcotest.(check (list string)) "unique devices"
    [ "disk-array"; "tape-library"; "vault" ]
    names

let test_demands_on_array () =
  let shares =
    Storage_device.Demand.by_technique
      (Design.demands_on design Baseline.disk_array)
  in
  let techs = List.map fst shares in
  Alcotest.(check (list string)) "techniques on array"
    [ "foreground"; "split mirror"; "backup" ]
    techs;
  (* The backup demand on the array is its read side only. *)
  let backup = List.assoc "backup" shares in
  Alcotest.(check bool) "backup reads" false
    (Rate.is_zero backup.Storage_device.Demand.read_bw);
  Alcotest.(check bool) "backup no array capacity" true
    (Size.is_zero backup.Storage_device.Demand.capacity)

let test_design_owner () =
  Alcotest.(check string) "array owner" "foreground"
    (Design.primary_technique_of_device design Baseline.disk_array);
  Alcotest.(check string) "tape owner" "backup"
    (Design.primary_technique_of_device design Baseline.tape_library);
  Alcotest.(check string) "vault owner" "vaulting"
    (Design.primary_technique_of_device design Baseline.vault)

let test_design_validates () =
  Alcotest.(check bool) "baseline valid" true (Design.validate design = Ok ())

let test_design_rejects_weak_link () =
  (* A synchronous mirror over a link below the peak update rate
     (7.8 MiB/s) must be rejected. *)
  let weak =
    Interconnect.make ~name:"thin"
      ~transport:
        (Interconnect.Network
           { link_bandwidth = Rate.mib_per_sec 2.; links = 1 })
      ()
  in
  let hierarchy =
    Storage_hierarchy.Hierarchy.make_exn
      [
        {
          Storage_hierarchy.Hierarchy.technique =
            Storage_protection.Technique.Primary_copy
              { raid = Storage_protection.Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Storage_protection.Technique.Remote_mirror
              {
                mode = Storage_protection.Technique.Synchronous;
                schedule =
                  Storage_protection.Schedule.simple ~acc:(Duration.minutes 1.)
                    ~retention_count:1 ();
              };
          device = Baseline.remote_array;
          link = Some weak;
        };
      ]
  in
  let d =
    Design.make ~name:"weak" ~workload:Cello.workload ~hierarchy
      ~business:Baseline.business ()
  in
  match Design.validate d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undersized sync link accepted"

(* --- Utilization (Table 5 goldens) --- *)

let test_utilization_table5 () =
  let r = Utilization.compute design in
  let dev name =
    List.find
      (fun (d : Utilization.device_report) ->
        String.equal d.Utilization.device.Device.name name)
      r.Utilization.devices
  in
  let share devr tech =
    List.find
      (fun (s : Utilization.technique_share) ->
        String.equal s.Utilization.technique tech)
      devr.Utilization.shares
  in
  let array = dev "disk-array" in
  close ~tol:5e-3 "foreground bw 0.2%" 0.00196
    (share array "foreground").Utilization.bandwidth_fraction;
  close ~tol:5e-3 "split mirror bw 0.6%" 0.00605
    (share array "split mirror").Utilization.bandwidth_fraction;
  close ~tol:5e-3 "backup bw 1.6%" 0.01574
    (share array "backup").Utilization.bandwidth_fraction;
  close ~tol:1e-3 "foreground cap 14.6%" 0.14555
    (share array "foreground").Utilization.capacity_fraction;
  close ~tol:1e-3 "split mirror cap 72.8%" 0.72774
    (share array "split mirror").Utilization.capacity_fraction;
  close ~tol:1e-3 "array overall cap 87.3%" 0.87329
    array.Utilization.total.Device.capacity_fraction;
  close ~tol:1e-3 "array overall bw 2.4%" 0.02375
    array.Utilization.total.Device.bandwidth_fraction;
  let tape = dev "tape-library" in
  close ~tol:1e-3 "tape bw 3.4%" 0.03358
    tape.Utilization.total.Device.bandwidth_fraction;
  close ~tol:1e-3 "tape cap 3.4%" 0.034
    tape.Utilization.total.Device.capacity_fraction;
  let vault = dev "vault" in
  close ~tol:1e-3 "vault cap 2.65%" 0.02652
    vault.Utilization.total.Device.capacity_fraction;
  close ~tol:1e-3 "system bw" 0.03358 r.Utilization.system_bandwidth_fraction;
  close ~tol:1e-3 "system cap" 0.87329 r.Utilization.system_capacity_fraction;
  Alcotest.(check bool) "not overcommitted" false r.Utilization.overcommitted

let test_utilization_absolute_values () =
  let r = Utilization.compute design in
  let array = List.hd r.Utilization.devices in
  (* Table 5: 12.4 MB/s and 8.0 TB on the array (logical TB = raw/2). *)
  close ~tol:0.02 "12.2 MiB/s" 12.16
    (Rate.to_mib_per_sec array.Utilization.total.Device.bandwidth_used);
  close ~tol:0.01 "raw capacity 15.9 TiB" 15.94
    (Size.to_tib array.Utilization.total.Device.capacity_used)

(* --- Data loss (Tables 6-7 goldens) --- *)

let loss_hours (dl : Data_loss.t) =
  match dl.Data_loss.loss with
  | Data_loss.Updates d -> Duration.to_hours d
  | Data_loss.Entire_object -> Float.infinity

let test_data_loss_object () =
  let dl = Data_loss.compute design Baseline.scenario_object in
  Alcotest.(check (option int)) "source is split mirror" (Some 1)
    dl.Data_loss.source_level;
  close "12 hr" 12. (loss_hours dl)

let test_data_loss_array () =
  let dl = Data_loss.compute design Baseline.scenario_array in
  Alcotest.(check (option int)) "source is backup" (Some 2) dl.Data_loss.source_level;
  close "217 hr" 217. (loss_hours dl)

let test_data_loss_site () =
  let dl = Data_loss.compute design Baseline.scenario_site in
  Alcotest.(check (option int)) "source is vault" (Some 3) dl.Data_loss.source_level;
  close "1429 hr" 1429. (loss_hours dl)

let test_data_loss_whatifs () =
  let check name design scenario expected =
    let dl = Data_loss.compute design scenario in
    close name expected (loss_hours dl)
  in
  check "weekly vault site 253" Whatif.weekly_vault Baseline.scenario_site 253.;
  check "F+I array 73" Whatif.weekly_vault_full_incremental
    Baseline.scenario_array 73.;
  check "daily F array 37" Whatif.weekly_vault_daily_full
    Baseline.scenario_array 37.;
  check "daily F site 217" Whatif.weekly_vault_daily_full
    Baseline.scenario_site 217.;
  check "asyncB 2 min"
    (Whatif.async_mirror ~links:1)
    Baseline.scenario_array (2. /. 60.)

let test_data_loss_primary_intact () =
  let dl = Data_loss.compute design (Scenario.now (Location.Device "tape-library")) in
  close "no loss" 0. (loss_hours dl)

let test_data_loss_target_too_old () =
  (* A ten-year-old target exceeds even the vault's three-year horizon. *)
  let scenario =
    Scenario.make ~scope:Location.Data_object ~target_age:(Duration.years 10.)
      ~object_size:(Size.mib 1.) ()
  in
  let dl = Data_loss.compute design scenario in
  Alcotest.(check bool) "total loss" true
    (dl.Data_loss.loss = Data_loss.Entire_object)

let test_data_loss_old_target_from_vault () =
  (* A one-year-old target is only at the vault. *)
  let scenario =
    Scenario.make ~scope:Location.Data_object ~target_age:(Duration.years 1.)
      ~object_size:(Size.mib 1.) ()
  in
  let dl = Data_loss.compute design scenario in
  Alcotest.(check (option int)) "vault serves" (Some 3) dl.Data_loss.source_level;
  (* Within the guaranteed range the loss is one vault RP interval. *)
  close "4 wk" (4. *. 168.) (loss_hours dl)

let test_compare_loss () =
  let u d = Data_loss.Updates (Duration.hours d) in
  Alcotest.(check bool) "less" true (Data_loss.compare_loss (u 1.) (u 2.) < 0);
  Alcotest.(check bool) "entire worst" true
    (Data_loss.compare_loss (u 1e6) Data_loss.Entire_object < 0);
  Alcotest.(check int) "equal" 0
    (Data_loss.compare_loss Data_loss.Entire_object Data_loss.Entire_object)

(* --- Recovery time (Table 6 goldens) --- *)

let rt_hours design scenario =
  let dl = Data_loss.compute design scenario in
  match dl.Data_loss.source_level with
  | Some level when level > 0 -> (
    match Recovery_time.compute design scenario ~source_level:level with
    | Ok t -> Duration.to_hours t.Recovery_time.total
    | Error e -> Alcotest.failf "recovery failed: %s" e)
  | _ -> Alcotest.fail "no recovery source"

let test_recovery_object () =
  let rt = rt_hours design Baseline.scenario_object in
  (* Table 6: 0.004 s (1 MiB intra-array copy at half the available
     bandwidth). *)
  close ~tol:0.01 "0.004 s" (0.004 /. 3600.) rt

let test_recovery_array () =
  (* Transfer-dominated: 1360 GiB at the tape library's available 232
     MiB/s, plus load and provisioning; paper reports 2.4 hr (its transfer
     model is coarser), ours is 1.68 hr. *)
  close ~tol:0.02 "1.68 hr" 1.678 (rt_hours design Baseline.scenario_array)

let test_recovery_site () =
  (* 24 hr shipment + load + transfer; paper: 26.4 hr. *)
  close ~tol:0.02 "25.7 hr" 25.71 (rt_hours design Baseline.scenario_site)

let test_recovery_asyncb () =
  (* 1 link: transfer-bound ~21 hr for both scopes (provisioning overlaps
     the transfer); 10 links: array 2.1 hr, site pinned at the 9 hr
     shared-facility provisioning. Paper: 21.7 / 21.7 / 2.8 / 9.8. *)
  let one = Whatif.async_mirror ~links:1 in
  let ten = Whatif.async_mirror ~links:10 in
  close ~tol:0.02 "1 link array" 20.93 (rt_hours one Baseline.scenario_array);
  close ~tol:0.02 "1 link site" 20.93 (rt_hours one Baseline.scenario_site);
  close ~tol:0.03 "10 links array" 2.1 (rt_hours ten Baseline.scenario_array);
  close ~tol:0.02 "10 links site" 9.0 (rt_hours ten Baseline.scenario_site)

let test_recovery_path_skips_colocated () =
  let h = design.Design.hierarchy in
  Alcotest.(check (list int)) "vault path skips split mirror" [ 3; 2; 0 ]
    (Recovery_time.recovery_path h ~source:3);
  Alcotest.(check (list int)) "backup path" [ 2; 0 ]
    (Recovery_time.recovery_path h ~source:2);
  Alcotest.(check (list int)) "mirror path" [ 1; 0 ]
    (Recovery_time.recovery_path h ~source:1)

let test_recovery_timeline_structure () =
  match Recovery_time.compute design Baseline.scenario_site ~source_level:3 with
  | Error e -> Alcotest.failf "site recovery: %s" e
  | Ok t ->
    Alcotest.(check int) "two hops" 2 (List.length t.Recovery_time.hops);
    let ship = List.hd t.Recovery_time.hops in
    close_duration "shipment transit" (Duration.hours 24.)
      ship.Recovery_time.transit;
    Alcotest.(check bool) "media hop has no rate" true
      (ship.Recovery_time.transfer_rate = None);
    let xfer = List.nth t.Recovery_time.hops 1 in
    close_duration "site provisioning" (Duration.hours 9.)
      xfer.Recovery_time.par_fix;
    close_size "full dataset" (Size.gib 1360.) t.Recovery_time.recovery_size

let test_recovery_errors () =
  check_raises_invalid "source 0" (fun () ->
      Recovery_time.compute design Baseline.scenario_array ~source_level:0);
  check_raises_invalid "source out of range" (fun () ->
      Recovery_time.compute design Baseline.scenario_array ~source_level:9)

let test_recovery_no_spare_fails () =
  (* Destroying a device with no spare on the receiving path errors. *)
  let no_spare_array =
    Device.make ~name:"frail-array" ~location:Baseline.primary_site
      ~max_capacity_slots:256 ~slot_capacity:(Size.gib 73.)
      ~max_bandwidth_slots:256 ~slot_bandwidth:(Rate.mib_per_sec 25.)
      ~enclosure_bandwidth:(Rate.mib_per_sec 512.) ()
  in
  let hierarchy =
    Storage_hierarchy.Hierarchy.make_exn
      [
        {
          Storage_hierarchy.Hierarchy.technique =
            Storage_protection.Technique.Primary_copy
              { raid = Storage_protection.Raid.Raid1 };
          device = no_spare_array;
          link = None;
        };
        {
          technique = Storage_protection.Technique.Backup Baseline.backup_schedule;
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
      ]
  in
  let d =
    Design.make ~name:"frail" ~workload:Cello.workload ~hierarchy
      ~business:Baseline.business ()
  in
  match
    Recovery_time.compute d (Scenario.now (Location.Device "frail-array"))
      ~source_level:1
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recovery without a spare should fail"

(* --- Costs --- *)

let test_penalties_golden () =
  (* Table 7 baseline array: (2.4 + 217) hr at $50k/hr would be $10.97M;
     with our 1.73 hr recovery it is $10.93M. Check the composition. *)
  let p =
    Cost.penalties Baseline.business ~recovery_time:(Duration.hours 2.4)
      ~loss:(Data_loss.Updates (Duration.hours 217.))
  in
  close_money "outage" (Money.usd 120_000.) p.Cost.outage;
  close_money "loss" (Money.usd 10_850_000.) p.Cost.loss;
  close_money "total" (Money.usd 10_970_000.) p.Cost.total

let test_penalties_total_loss () =
  let p =
    Cost.penalties Baseline.business ~recovery_time:Duration.zero
      ~loss:Data_loss.Entire_object
  in
  (* Entire object charged as three years of lost updates. *)
  close_money "entire object" (Money.usd (50_000. *. 3. *. 365. *. 24.)) p.Cost.loss

let test_outlays_structure () =
  let o = Cost.outlays design in
  let techs = List.map fst o.Cost.by_technique in
  Alcotest.(check (list string)) "techniques in order"
    [ "foreground"; "split mirror"; "backup"; "vaulting" ]
    techs;
  (* Fig. 5: outlays split roughly evenly between foreground, split
     mirroring and backup, with vaulting negligible. Ours: 0.37/0.51/
     0.23/0.05M. *)
  let get name = Money.to_millions (List.assoc name o.Cost.by_technique) in
  Alcotest.(check bool) "vaulting negligible" true (get "vaulting" < 0.1);
  Alcotest.(check bool) "foreground substantial" true (get "foreground" > 0.25);
  close ~tol:0.05 "total ~1.16M" 1.16 (Money.to_millions o.Cost.total);
  (* Items must sum to the total. *)
  close_money "items sum"
    (Money.sum (List.map (fun i -> i.Cost.amount) o.Cost.items))
    o.Cost.total

let test_outlays_snapshot_cheaper () =
  (* Table 7: replacing split mirrors with snapshots saves ~$0.25M. *)
  let sm = Cost.outlays Whatif.weekly_vault_daily_full in
  let snap = Cost.outlays Whatif.weekly_vault_daily_full_snapshot in
  Alcotest.(check bool) "snapshot cheaper" true
    (Money.compare snap.Cost.total sm.Cost.total < 0);
  let saving = Money.to_millions sm.Cost.total -. Money.to_millions snap.Cost.total in
  Alcotest.(check bool) "saves about a quarter million" true
    (saving > 0.2 && saving < 0.8)

let test_outlays_links_scale () =
  let one = Cost.outlays (Whatif.async_mirror ~links:1) in
  let ten = Cost.outlays (Whatif.async_mirror ~links:10) in
  let delta = Money.to_millions ten.Cost.total -. Money.to_millions one.Cost.total in
  (* Nine extra OC-3s at ~435k each. *)
  close ~tol:0.03 "nine links" (9. *. 0.4347) delta

(* --- Evaluate --- *)

let test_evaluate_baseline_totals () =
  let r = Evaluate.run design Baseline.scenario_array in
  Alcotest.(check (list string)) "no errors" [] r.Evaluate.errors;
  close ~tol:0.01 "total ~12.1M" 12.1 (Money.to_millions r.Evaluate.total_cost);
  let site = Evaluate.run design Baseline.scenario_site in
  close ~tol:0.01 "site total ~73.9M" 73.9
    (Money.to_millions site.Evaluate.total_cost)

let test_evaluate_conclusion_holds () =
  (* The paper's headline: the single-link mirror design has the lowest
     total cost despite its long recovery. *)
  let totals =
    List.map
      (fun (name, d) ->
        let worst =
          List.fold_left
            (fun acc sc ->
              Float.max acc
                (Money.to_millions (Evaluate.run d sc).Evaluate.total_cost))
            0.
            [ Baseline.scenario_array; Baseline.scenario_site ]
        in
        (name, worst))
      Whatif.all
  in
  let best = List.fold_left (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv)) ("", infinity) totals in
  Alcotest.(check string) "cheapest design" "asyncB mirror, 1 link" (fst best)

let test_evaluate_rto_rpo () =
  let business =
    Business.make
      ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
      ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
      ~recovery_time_objective:(Duration.hours 1.)
      ~recovery_point_objective:(Duration.hours 300.)
      ()
  in
  let d =
    Design.make ~name:"rto-test" ~workload:Cello.workload
      ~hierarchy:design.Design.hierarchy ~business ()
  in
  let r = Evaluate.run d Baseline.scenario_array in
  Alcotest.(check (option bool)) "misses 1 hr RTO" (Some true)
    (Option.map not r.Evaluate.meets_rto);
  Alcotest.(check (option bool)) "meets 300 hr RPO" (Some true) r.Evaluate.meets_rpo

let test_compound_scope () =
  (* The array and tape library failing together: only the vault survives;
     loss matches the site column (1429 hr) but recovery stays onsite
     (local hot spares, not the 9 hr shared facility). *)
  let scope =
    Location.Multiple
      [ Location.Device "disk-array"; Location.Device "tape-library" ]
  in
  let r = Evaluate.run design (Scenario.now scope) in
  Alcotest.(check (option int)) "vault serves" (Some 3)
    r.Evaluate.data_loss.Data_loss.source_level;
  (match r.Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates d -> close "1429 hr" 1429. (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "recoverable");
  (* Site disaster uses the 9 hr shared facility; a double device failure
     replaces both devices from local hot spares, so recovery is faster
     and dominated by the 24 hr shipment like the site case. *)
  let site = Evaluate.run design Baseline.scenario_site in
  Alcotest.(check bool) "compound <= site RT" true
    (Duration.compare r.Evaluate.recovery_time site.Evaluate.recovery_time <= 0);
  close ~tol:0.01 "~25.7 hr" 25.71 (Duration.to_hours r.Evaluate.recovery_time)

let test_compound_scope_with_corruption () =
  (* A user error while the tape library is down: the split mirror still
     serves the rollback. *)
  let scope =
    Location.Multiple [ Location.Data_object; Location.Device "tape-library" ]
  in
  let scenario =
    Scenario.make ~scope ~target_age:(Duration.hours 24.)
      ~object_size:(Size.mib 1.) ()
  in
  let r = Evaluate.run design scenario in
  Alcotest.(check (option int)) "split mirror serves" (Some 1)
    r.Evaluate.data_loss.Data_loss.source_level;
  (match r.Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates d -> close "12 hr" 12. (Duration.to_hours d)
  | Data_loss.Entire_object -> Alcotest.fail "recoverable");
  (* Data_object alone must still reject hardware-only object sizes. *)
  check_raises_invalid "object size on pure hardware scope" (fun () ->
      Scenario.make ~scope:(Location.Device "disk-array")
        ~object_size:(Size.mib 1.) ())

let test_evaluate_erasure_design () =
  let d = Whatif.erasure_coded ~fragments:8 ~required:5 ~links:1 in
  Alcotest.(check bool) "validates" true (Design.validate d = Ok ());
  (* Hourly coded batches: loss bounded by 2 hr in every scenario, and a
     day-old rollback target is within the 24-hour retention. *)
  let array = Evaluate.run d Baseline.scenario_array in
  (match array.Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates loss -> close "2 hr loss" 2. (Duration.to_hours loss)
  | Data_loss.Entire_object -> Alcotest.fail "recoverable");
  let rollback =
    Evaluate.run d
      (Scenario.make ~scope:Location.Data_object
         ~target_age:(Duration.hours 20.) ~object_size:(Size.mib 1.) ())
  in
  Alcotest.(check (option int)) "rollback served" (Some 1)
    rollback.Evaluate.data_loss.Data_loss.source_level

let test_evaluate_primary_intact () =
  let r = Evaluate.run design (Scenario.now (Location.Device "tape-library")) in
  close_duration "no recovery time" Duration.zero r.Evaluate.recovery_time;
  close_money "no penalties" Money.zero r.Evaluate.penalties.Cost.total

(* --- property tests --- *)

let prop_loss_monotone_in_target_age =
  (* For rollback targets within the split-mirror range, older targets
     never reduce the loss class. *)
  QCheck.Test.make ~name:"recovering is possible for recent targets" ~count:50
    (QCheck.float_range 13. 35.)
    (fun age_h ->
      let scenario =
        Scenario.make ~scope:Location.Data_object
          ~target_age:(Duration.hours age_h) ~object_size:(Size.mib 1.) ()
      in
      let dl = Data_loss.compute design scenario in
      dl.Data_loss.source_level = Some 1
      && loss_hours dl <= 12. +. 1e-9)

let prop_recovery_time_positive =
  QCheck.Test.make ~name:"recovery time positive for array failures" ~count:20
    (QCheck.int_range 1 10)
    (fun links ->
      let d = Whatif.async_mirror ~links in
      rt_hours d Baseline.scenario_array > 0.)

(* --- Scenario fingerprints --- *)

(* Pinned digests: the scenario half of every Eval_cache / serve-shard
   key. These hex strings were captured from the released single-failure
   representation; any change to them silently invalidates every warm
   cache shard, so a representation change (e.g. the event-set algebra)
   must keep single-event scenarios hashing byte-identically. *)
let pinned_fingerprints =
  [
    ("object", Baseline.scenario_object, "45b03c95bdbdaf789de07b47d51c6718");
    ("array", Baseline.scenario_array, "00fefacaff85d820b08a731309286905");
    ("site", Baseline.scenario_site, "4bd117ab596a2a2c7968f8624bc6e22c");
    ( "building",
      Scenario.now (Location.Building "bldg-1"),
      "127901d554c407661933d7c7b345130a" );
    ( "region",
      Scenario.now (Location.Region "west"),
      "ffe00fb661d85ab1bd3bc6d8a5581198" );
    ( "multiple",
      Scenario.now
        (Location.Multiple [ Location.Device "disk-array"; Location.Site "primary" ]),
      "afd94ce9089084a454ce7268ef1ff0c8" );
    ( "aged device",
      Scenario.make ~scope:(Location.Device "disk-array")
        ~target_age:(Duration.hours 12.) (),
      "20b928f6ad2e90440649503554a7275f" );
    ( "object now",
      Scenario.make ~scope:Location.Data_object ~object_size:(Size.gib 2.) (),
      "7f3983622acb242aa6f950a579112141" );
  ]

let test_scenario_fingerprints_pinned () =
  List.iter
    (fun (name, scenario, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "%s fingerprint stable" name)
        expected
        (Scenario.fingerprint scenario))
    pinned_fingerprints

let suite =
  [
    ( "model.design",
      [
        Alcotest.test_case "device deduplication" `Quick test_devices_deduplicated;
        Alcotest.test_case "array demand mapping" `Quick test_demands_on_array;
        Alcotest.test_case "device ownership" `Quick test_design_owner;
        Alcotest.test_case "baseline validates" `Quick test_design_validates;
        Alcotest.test_case "undersized sync link rejected" `Quick
          test_design_rejects_weak_link;
      ] );
    ( "model.utilization",
      [
        Alcotest.test_case "Table 5 fractions" `Quick test_utilization_table5;
        Alcotest.test_case "Table 5 absolute values" `Quick
          test_utilization_absolute_values;
      ] );
    ( "model.data_loss",
      [
        Alcotest.test_case "object: 12 hr from split mirror" `Quick
          test_data_loss_object;
        Alcotest.test_case "array: 217 hr from backup" `Quick test_data_loss_array;
        Alcotest.test_case "site: 1429 hr from vault" `Quick test_data_loss_site;
        Alcotest.test_case "Table 7 what-if losses" `Quick test_data_loss_whatifs;
        Alcotest.test_case "primary intact" `Quick test_data_loss_primary_intact;
        Alcotest.test_case "target beyond retention" `Quick
          test_data_loss_target_too_old;
        Alcotest.test_case "old target from vault" `Quick
          test_data_loss_old_target_from_vault;
        Alcotest.test_case "loss ordering" `Quick test_compare_loss;
        qcheck prop_loss_monotone_in_target_age;
      ] );
    ( "model.recovery_time",
      [
        Alcotest.test_case "object: 0.004 s" `Quick test_recovery_object;
        Alcotest.test_case "array: 1.7 hr" `Quick test_recovery_array;
        Alcotest.test_case "site: 25.7 hr" `Quick test_recovery_site;
        Alcotest.test_case "asyncB mirrors (Table 7)" `Quick test_recovery_asyncb;
        Alcotest.test_case "path skips colocated levels" `Quick
          test_recovery_path_skips_colocated;
        Alcotest.test_case "site timeline structure" `Quick
          test_recovery_timeline_structure;
        Alcotest.test_case "input validation" `Quick test_recovery_errors;
        Alcotest.test_case "missing spare fails" `Quick test_recovery_no_spare_fails;
        qcheck prop_recovery_time_positive;
      ] );
    ( "model.cost",
      [
        Alcotest.test_case "penalty arithmetic" `Quick test_penalties_golden;
        Alcotest.test_case "total-loss penalty" `Quick test_penalties_total_loss;
        Alcotest.test_case "outlay structure" `Quick test_outlays_structure;
        Alcotest.test_case "snapshots cheaper than mirrors" `Quick
          test_outlays_snapshot_cheaper;
        Alcotest.test_case "link costs scale" `Quick test_outlays_links_scale;
      ] );
    ( "model.scenario",
      [
        Alcotest.test_case "fingerprints pinned (cache-key stability)" `Quick
          test_scenario_fingerprints_pinned;
      ] );
    ( "model.evaluate",
      [
        Alcotest.test_case "baseline totals" `Quick test_evaluate_baseline_totals;
        Alcotest.test_case "paper's conclusion holds" `Quick
          test_evaluate_conclusion_holds;
        Alcotest.test_case "RTO/RPO checks" `Quick test_evaluate_rto_rpo;
        Alcotest.test_case "compound scope (array + tapes)" `Quick
          test_compound_scope;
        Alcotest.test_case "compound scope with corruption" `Quick
          test_compound_scope_with_corruption;
        Alcotest.test_case "erasure-coded design" `Quick
          test_evaluate_erasure_design;
        Alcotest.test_case "primary intact" `Quick test_evaluate_primary_intact;
      ] );
  ]
