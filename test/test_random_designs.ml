(* Randomized cross-validation: for designs drawn from the candidate grid,
   the analytical model's invariants and the simulator's measurements must
   agree, whatever the policy parameters. *)

open Storage_units
open Storage_model
open Storage_presets
open Helpers
module Seeded = Storage_testkit.Seeded

(* A moderate pool of valid designs to draw from — the shared testkit
   pool (same kit, same grid as the historical in-file definition). *)
let pool = Seeded.pool ()

(* A structurally identical but physically fresh enumeration — used by the
   fingerprint tests to show keys depend only on structure. *)
let pool_again = Seeded.pool_again

let arb_design =
  QCheck.map (fun i -> List.nth pool (i mod List.length pool))
    QCheck.(int_range 0 1000)
  |> fun a ->
  QCheck.set_print (fun d -> d.Design.name) a

let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

let loss_seconds = function
  | Data_loss.Updates d -> Duration.to_seconds d
  | Data_loss.Entire_object -> infinity

let prop_total_is_outlays_plus_penalties =
  QCheck.Test.make ~name:"total cost = outlays + penalties" ~count:40
    arb_design (fun d ->
      List.for_all
        (fun sc ->
          let r = Evaluate.run d sc in
          Float.abs
            (Money.to_usd r.Evaluate.total_cost
            -. (Money.to_usd r.Evaluate.outlays.Cost.total
               +. Money.to_usd r.Evaluate.penalties.Cost.total))
          < 1e-6)
        scenarios)

let prop_site_never_easier_than_array =
  (* A site disaster destroys strictly more than an array failure, so its
     worst-case loss and recovery time dominate. *)
  QCheck.Test.make ~name:"site loss/RT >= array loss/RT" ~count:40 arb_design
    (fun d ->
      let array = Evaluate.run d Baseline.scenario_array in
      let site = Evaluate.run d Baseline.scenario_site in
      loss_seconds site.Evaluate.data_loss.Data_loss.loss
      >= loss_seconds array.Evaluate.data_loss.Data_loss.loss -. 1e-6
      && Duration.to_seconds site.Evaluate.recovery_time
         >= Duration.to_seconds array.Evaluate.recovery_time -. 1e-6)

let prop_no_errors_on_valid_designs =
  QCheck.Test.make ~name:"valid designs evaluate without errors" ~count:40
    arb_design (fun d ->
      List.for_all (fun sc -> (Evaluate.run d sc).Evaluate.errors = []) scenarios)

let prop_loss_matches_hierarchy_lag =
  (* For "now" targets, the reported loss equals the worst lag of the
     chosen recovery source level. *)
  QCheck.Test.make ~name:"loss equals source level's worst lag" ~count:40
    arb_design (fun d ->
      List.for_all
        (fun sc ->
          let r = Evaluate.run d sc in
          match
            ( r.Evaluate.data_loss.Data_loss.source_level,
              r.Evaluate.data_loss.Data_loss.loss )
          with
          | Some level, Data_loss.Updates loss when level > 0 ->
            Float.abs
              (Duration.to_seconds loss
              -. Duration.to_seconds
                   (Storage_hierarchy.Hierarchy.worst_lag
                      d.Design.hierarchy level))
            < 1e-6
          | _ -> true)
        scenarios)

let prop_sim_within_model_bounds =
  (* The expensive one: simulate each sampled design and check the
     measured loss against the analytical worst case. *)
  QCheck.Test.make ~name:"sim loss within model worst case (random designs)"
    ~count:10 arb_design (fun d ->
      let config =
        { Storage_sim.Sim.warmup = Duration.weeks 10.; log = false; outage = None; record_events = false }
      in
      List.for_all
        (fun sc ->
          let model = Evaluate.run d sc in
          let m = Storage_sim.Sim.run ~config d sc in
          loss_seconds m.Storage_sim.Sim.data_loss
          <= loss_seconds model.Evaluate.data_loss.Data_loss.loss +. 1.)
        scenarios)

let suite =
  [
    ( "random_designs",
      [
        qcheck prop_total_is_outlays_plus_penalties;
        qcheck prop_site_never_easier_than_array;
        qcheck prop_no_errors_on_valid_designs;
        qcheck prop_loss_matches_hierarchy_lag;
        qcheck prop_sim_within_model_bounds;
      ] );
  ]
