(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation from the framework's own outputs, then times the evaluation
   hot paths with Bechamel (one Test.make per experiment).

   Usage:
     dune exec bench/main.exe                 # all artifacts + micro-benches
     dune exec bench/main.exe table5          # one artifact
     dune exec bench/main.exe validate        # simulator-vs-model check
     dune exec bench/main.exe pareto          # design-space search ablation
     dune exec bench/main.exe micro           # micro-benchmarks only
     dune exec bench/main.exe parallel        # multicore engine benchmark
     dune exec bench/main.exe stream          # streaming-pipeline memory bench
     dune exec bench/main.exe serve           # evaluation-service load gen
     dune exec bench/main.exe solver          # solver-vs-grid parity bench

   The parallel mode times the design-space search over a few hundred
   generated candidates — serial versus 2/4/8-domain Pool evaluation, and
   an iterative three-pass what-if session serial-uncached versus the full
   engine (domains + shared Eval_cache) — and writes the measurements to
   BENCH_parallel.json. Wall-clock (Unix.gettimeofday), best of three.

   The stream mode checks the streaming search's memory contract — a
   10^5-candidate grid must peak (live words after forced major
   collections) within 2x of a 10^3-candidate run, with frontier and
   best byte-identical to the materialized legacy loop — and writes
   BENCH_stream.json. *)

open Bechamel
open Toolkit
open Storage_units
open Storage_model
open Storage_presets

(* --- artifact regeneration --- *)

let artifacts : (string * (unit -> string)) list =
  [
    ("table2", Paper_tables.table2);
    ("table3", Paper_tables.table3);
    ("table4", Paper_tables.table4);
    ("figure1", Paper_tables.figure1);
    ("figure2", Paper_tables.figure2);
    ("table5", Paper_tables.table5);
    ("table6", Paper_tables.table6);
    ("figure3", Paper_tables.figure3);
    ("figure4", Paper_tables.figure4);
    ("figure5", Paper_tables.figure5);
    ("table7", Paper_tables.table7);
  ]

let print_artifact name =
  match List.assoc_opt name artifacts with
  | Some render ->
    print_endline (render ());
    print_newline ()
  | None -> Printf.eprintf "unknown artifact %s\n" name

(* --- simulator-vs-model validation --- *)

let validate () =
  print_endline "Simulator-vs-model validation (baseline, 14 failure phases):";
  let config = { Storage_sim.Sim.warmup = Duration.weeks 12.; log = false; outage = None; record_events = false } in
  let ok = ref true in
  List.iter
    (fun scenario ->
      let model = Evaluate.run Baseline.design scenario in
      let worst =
        match model.Evaluate.data_loss.Data_loss.loss with
        | Data_loss.Updates d -> Duration.to_seconds d
        | Data_loss.Entire_object -> infinity
      in
      let offsets =
        List.init 14 (fun i -> Duration.hours (float_of_int i *. 12.))
      in
      let runs =
        Storage_sim.Sim.sweep_failure_phase ~config Baseline.design scenario
          ~offsets
      in
      let max_dl =
        List.fold_left
          (fun acc (m : Storage_sim.Sim.measured) ->
            match m.Storage_sim.Sim.data_loss with
            | Data_loss.Updates d -> Float.max acc (Duration.to_seconds d)
            | Data_loss.Entire_object -> acc)
          0. runs
      in
      let pass = max_dl <= worst +. 1. in
      if not pass then ok := false;
      Printf.printf "  %-18s max sim DL %8.1f hr <= model %8.1f hr  %s\n"
        (Fmt.str "%a" Storage_device.Location.pp_scope
           scenario.Scenario.scope)
        (max_dl /. 3600.) (worst /. 3600.)
        (if pass then "ok" else "VIOLATION"))
    Baseline.scenarios;
  print_endline (if !ok then "validation passed" else "validation FAILED");
  if not !ok then exit 1

(* --- design-space search ablation --- *)

let pareto () =
  let kit =
    {
      Storage_optimize.Candidate.workload = Cello.workload;
      business = Baseline.business;
      primary = Baseline.disk_array;
      tape_library = Baseline.tape_library;
      vault = Baseline.vault;
      remote_array = Baseline.remote_array;
      san = Baseline.san;
      shipment = Baseline.air_shipment;
      wan = (fun links -> Baseline.oc3 ~links);
    }
  in
  let candidates =
    Storage_optimize.Candidate.enumerate kit
      Storage_optimize.Candidate.default_space
  in
  let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ] in
  let result = Storage_optimize.Search.run candidates scenarios in
  Fmt.pr "%a@." Storage_optimize.Search.pp result

(* --- ablations: the design choices DESIGN.md calls out --- *)

(* 1. The devBW erratum: the paper prints max(enclBW, slots*slotBW); its
   case study requires min. Show what each formula predicts. *)
let ablate_devbw () =
  print_endline "Ablation 1: devBW = min vs max of enclosure/slot bandwidth";
  let report device used_mib =
    let open Storage_device in
    let slots =
      float_of_int device.Device.max_bandwidth_slots
      *. Rate.to_mib_per_sec device.Device.slot_bandwidth
    in
    let encl = Rate.to_mib_per_sec device.Device.enclosure_bandwidth in
    Printf.printf
      "  %-13s demand %6.1f MiB/s  min-rule %6.1f MiB/s -> %5.2f%%   \
       max-rule %6.1f MiB/s -> %5.2f%%\n"
      device.Device.name used_mib (Float.min encl slots)
      (100. *. used_mib /. Float.min encl slots)
      (Float.max encl slots)
      (100. *. used_mib /. Float.max encl slots)
  in
  let u = Utilization.compute Baseline.design in
  List.iter
    (fun (d : Utilization.device_report) ->
      let open Storage_device in
      if not (Device.is_capacity_only d.Utilization.device) then
        report d.Utilization.device
          (Rate.to_mib_per_sec d.Utilization.total.Device.bandwidth_used))
    u.Utilization.devices;
  print_endline
    "  (Table 5 prints 2.4% and 3.4%: only the min rule reproduces them.)\n"

(* 2. Recovery semantics: provisioning overlapped with the transfer (the
   reading Table 7 requires) vs strictly serialized (what the simulator
   executes). *)
let ablate_recovery_semantics () =
  print_endline
    "Ablation 2: recovery-time semantics (parallel vs strict provisioning)";
  let strict_total (t : Recovery_time.timeline) =
    List.fold_left
      (fun rt (h : Recovery_time.hop) ->
        let arrival = Duration.add rt h.Recovery_time.transit in
        Duration.sum
          [
            Duration.max arrival h.Recovery_time.par_fix;
            h.Recovery_time.ser_fix;
            h.Recovery_time.transfer;
          ])
      Duration.zero t.Recovery_time.hops
  in
  List.iter
    (fun (name, design, scenario) ->
      let r = Evaluate.run design scenario in
      match r.Evaluate.recovery with
      | Some t ->
        Printf.printf "  %-28s parallel %7.2f hr   strict %7.2f hr\n" name
          (Duration.to_hours t.Recovery_time.total)
          (Duration.to_hours (strict_total t))
      | None -> ())
    [
      ("baseline, array", Baseline.design, Baseline.scenario_array);
      ("baseline, site", Baseline.design, Baseline.scenario_site);
      ("asyncB x1, site", Whatif.async_mirror ~links:1, Baseline.scenario_site);
      ("asyncB x10, site", Whatif.async_mirror ~links:10, Baseline.scenario_site);
    ];
  print_endline
    "  (Table 7's 21.7 hr single-link site cell matches the parallel form;\n\
    \   the simulator executes the strict form.)\n"

(* 3. Vault accumulation window sweep (generalizes the weekly-vault
   what-if). *)
let vault_design acc_weeks =
  let open Storage_protection in
  let open Storage_hierarchy in
  let vault_schedule =
    Schedule.simple
      ~acc:(Duration.weeks acc_weeks)
      ~prop:(Duration.hours 24.) ~hold:(Duration.hours 12.)
      ~retention_count:(max 1 (int_of_float (ceil (156. /. acc_weeks))))
      ()
  in
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique = Technique.Split_mirror Baseline.split_mirror_schedule;
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique = Technique.Backup Baseline.backup_schedule;
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
        {
          technique = Technique.Vaulting vault_schedule;
          device = Baseline.vault;
          link = Some Baseline.air_shipment;
        };
      ]
  in
  Design.make
    ~name:(Printf.sprintf "vault/%.0fwk" acc_weeks)
    ~workload:Cello.workload ~hierarchy ~business:Baseline.business ()

let ablate_vault_window () =
  print_endline
    "Ablation 3: vault accumulation window vs site-disaster loss and cost";
  Storage_optimize.Sensitivity.sweep vault_design ~values:[ 1.; 2.; 4.; 8. ]
    Baseline.scenario_site
  |> List.iter (fun p ->
         Fmt.pr "  %a@." Storage_optimize.Sensitivity.pp_point p);
  print_newline ()

(* 4. Mirror link-count sweep: where does adding links stop paying? *)
let ablate_links () =
  print_endline "Ablation 4: OC-3 link count vs recovery time and total cost";
  List.iter
    (fun links ->
      let d = Whatif.async_mirror ~links in
      let array = Evaluate.run d Baseline.scenario_array in
      let site = Evaluate.run d Baseline.scenario_site in
      Printf.printf
        "  %2d links: array RT %6.2f hr, site RT %6.2f hr, outlays %s, worst \
         total %s\n"
        links
        (Duration.to_hours array.Evaluate.recovery_time)
        (Duration.to_hours site.Evaluate.recovery_time)
        (Money.to_string array.Evaluate.outlays.Cost.total)
        (Money.to_string
           (Money.max array.Evaluate.total_cost site.Evaluate.total_cost)))
    [ 1; 2; 3; 4; 6; 8; 10 ];
  print_newline ()

(* 5. RAID organization of the primary array. *)
let ablate_raid () =
  print_endline "Ablation 5: primary-array RAID organization";
  let open Storage_protection in
  let open Storage_hierarchy in
  List.iter
    (fun raid ->
      let hierarchy =
        Hierarchy.make_exn
          [
            {
              Hierarchy.technique = Technique.Primary_copy { raid };
              device = Baseline.disk_array;
              link = None;
            };
            {
              technique = Technique.Split_mirror Baseline.split_mirror_schedule;
              device = Baseline.disk_array;
              link = None;
            };
            {
              technique = Technique.Backup Baseline.backup_schedule;
              device = Baseline.tape_library;
              link = Some Baseline.san;
            };
          ]
      in
      let d =
        Design.make
          ~name:(Raid.to_string raid)
          ~workload:Cello.workload ~hierarchy ~business:Baseline.business ()
      in
      let u = Utilization.compute d in
      let o = Cost.outlays d in
      Printf.printf
        "  %-10s array capacity %5.1f%%  outlays %s  disk-failure tolerant: %b\n"
        (Raid.to_string raid)
        (100. *. u.Utilization.system_capacity_fraction)
        (Money.to_string o.Cost.total)
        (Raid.tolerates_disk_failure raid))
    [ Raid.Raid0; Raid.Raid1; Raid.Raid5 { stripe_width = 6 }; Raid.Raid10 ];
  print_newline ()

(* 6. Workload growth: when does the baseline hardware stop fitting? *)
let ablate_growth () =
  print_endline "Ablation 6: workload growth vs baseline hardware";
  List.iter
    (fun factor ->
      let workload = Storage_workload.Workload.grow Cello.workload ~factor in
      let d =
        Design.make
          ~name:(Printf.sprintf "cello x%.2f" factor)
          ~workload ~hierarchy:Baseline.design.Design.hierarchy
          ~business:Baseline.business ()
      in
      let u = Utilization.compute d in
      Printf.printf "  x%.2f: array cap %5.1f%%, tape cap %5.1f%%  %s\n" factor
        (100.
        *. (List.hd u.Utilization.devices).Utilization.total
             .Storage_device.Device.capacity_fraction)
        (100.
        *. (List.nth u.Utilization.devices 1).Utilization.total
             .Storage_device.Device.capacity_fraction)
        (match Design.validate d with
        | Ok () -> "fits"
        | Error (e :: _) -> "OVERCOMMITTED: " ^ e
        | Error [] -> "fits"))
    [ 0.5; 1.0; 1.1; 1.15; 1.25; 1.5; 2.0 ];
  print_newline ()

(* 7. Tail risk: expectation vs Monte-Carlo distribution. *)
let ablate_tail_risk () =
  print_endline
    "Ablation 7: expected vs sampled 10-year cost (tail risk per design)";
  let weighted =
    [
      { Risk.scenario = Baseline.scenario_object; frequency_per_year = 12. };
      { Risk.scenario = Baseline.scenario_array; frequency_per_year = 0.2 };
      { Risk.scenario = Baseline.scenario_site; frequency_per_year = 0.01 };
    ]
  in
  List.iter
    (fun (name, d) ->
      let expectation = Risk.assess d weighted in
      let dist =
        Risk.monte_carlo ~samples:4000 d weighted ~horizon_years:10.
      in
      Printf.printf "  %-32s E %-9s mc-mean %-9s p95 %-9s p99 %s\n" name
        (Money.to_string
           (Money.scale 10. expectation.Risk.expected_annual_cost))
        (Money.to_string dist.Risk.mean)
        (Money.to_string dist.Risk.p95)
        (Money.to_string dist.Risk.p99))
    [
      ("baseline", Baseline.design);
      ("weekly vault, daily F, snapshot", Whatif.weekly_vault_daily_full_snapshot);
      ("asyncB mirror, 2 links", Whatif.async_mirror ~links:2);
    ];
  print_newline ()

let ablate () =
  ablate_devbw ();
  ablate_recovery_semantics ();
  ablate_vault_window ();
  ablate_links ();
  ablate_raid ();
  ablate_growth ();
  ablate_tail_risk ()

(* --- multicore evaluation-engine benchmark --- *)

let parallel_kit =
  {
    Storage_optimize.Candidate.workload = Cello.workload;
    business = Baseline.business;
    primary = Baseline.disk_array;
    tape_library = Baseline.tape_library;
    vault = Baseline.vault;
    remote_array = Baseline.remote_array;
    san = Baseline.san;
    shipment = Baseline.air_shipment;
    wan = (fun links -> Baseline.oc3 ~links);
  }

(* A widened grid: a few hundred candidates, the scale §4.2's automated
   what-if exploration is about. *)
let parallel_space =
  {
    Storage_optimize.Candidate.default_space with
    Storage_optimize.Candidate.pit_accumulations =
      [ Duration.hours 2.; Duration.hours 6.; Duration.hours 12.;
        Duration.hours 24. ];
    pit_retentions = [ 2; 3; 4 ];
    backup_accumulations =
      [ Duration.hours 12.; Duration.hours 24.; Duration.hours 48.;
        Duration.weeks 1. ];
    vault_accumulations =
      [ Duration.weeks 1.; Duration.weeks 2.; Duration.weeks 4. ];
    mirror_links = [ 1; 2; 3; 4; 6; 8; 10 ];
  }

let time_best_of ?(repeats = 3) f =
  let rec go best n =
    if n = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Unix.gettimeofday () -. t0 in
      go (Float.min best dt) (n - 1)
    end
  in
  go infinity repeats

let parallel_bench () =
  let module J = Storage_report.Json in
  let module Search = Storage_optimize.Search in
  let module Engine = Storage_optimize.Engine in
  (* Record engine statistics throughout, so the benchmark artifact keeps
     the cache hit rates, per-stage evaluate timings and per-domain task
     counts behind each wall-clock number. *)
  Storage_obs.enable ();
  let candidates =
    List.of_seq
      (Storage_optimize.Candidate.enumerate parallel_kit parallel_space)
  in
  let scenarios = Baseline.scenarios in
  let n = List.length candidates in
  let cores = Storage_parallel.Pool.default_jobs () in
  Printf.printf
    "Multicore engine benchmark: %d candidates x %d scenarios (%d core(s) \
     available)\n"
    n (List.length scenarios) cores;
  (* 1. One sweep of the whole space, serial vs 2/4/8 domains. Each run
     gets a fresh engine so nothing is cached across measurements. *)
  let search ~jobs cs =
    Engine.with_engine ~jobs (fun engine ->
        Search.run ~engine (List.to_seq cs) scenarios)
  in
  let serial_s = time_best_of (fun () -> search ~jobs:1 candidates) in
  Printf.printf "  search, serial:          %8.1f ms\n" (serial_s *. 1e3);
  let by_jobs =
    List.map
      (fun jobs ->
        let t = time_best_of (fun () -> search ~jobs candidates) in
        (* Honesty marker: a speedup measured with more domains than the
           machine recommends says nothing about scaling — the domains
           time-share the cores. *)
        let undersubscribed = jobs > cores in
        Printf.printf "  search, %d domains:       %8.1f ms  (%.2fx)%s\n" jobs
          (t *. 1e3) (serial_s /. t)
          (if undersubscribed then "  [more domains than cores]" else "");
        (jobs, t, undersubscribed))
      [ 2; 4; 8 ]
  in
  (* 2. An iterative what-if session (§4.2): four overlapping passes — the
     broad sweep, a re-run after adding longer-haul mirror candidates, a
     re-ranking of the snapshot family, and a full re-rank once the analyst
     has narrowed the objective. Serial-uncached pays full evaluation price
     every pass; one engine held across the session (domains sized to the
     hardware, its slot cache shared) re-evaluates only what is new. *)
  let extra =
    List.of_seq
      (Storage_optimize.Candidate.enumerate parallel_kit
         { parallel_space with
           Storage_optimize.Candidate.pit_techniques = [];
           mirror_links = [ 12; 16; 20; 24 ] })
  in
  let is_snap (d : Design.t) =
    String.length d.Design.name >= 4 && String.sub d.Design.name 0 4 = "snap"
  in
  let passes =
    [ candidates; candidates @ extra; List.filter is_snap candidates;
      candidates ]
  in
  let engine_jobs = min 4 (Storage_parallel.Pool.default_jobs ()) in
  let session ~jobs ~share_cache () =
    Engine.with_engine ~jobs (fun engine ->
        List.iter
          (fun cs ->
            (* A fresh cache per pass simulates the pre-engine behaviour;
               sharing leaves the engine's slot cache in place. *)
            if not share_cache then Eval_cache.attach engine (Eval_cache.create ());
            ignore
              (Sys.opaque_identity
                 (Search.run ~engine (List.to_seq cs) scenarios)))
          passes)
  in
  let session_serial = time_best_of (session ~jobs:1 ~share_cache:false) in
  let session_engine =
    time_best_of (session ~jobs:engine_jobs ~share_cache:true)
  in
  (* Re-run once more to report the cache's hit/miss profile. *)
  let cache = Eval_cache.create () in
  Engine.with_engine (fun engine ->
      Eval_cache.attach engine cache;
      List.iter
        (fun cs -> ignore (Search.run ~engine (List.to_seq cs) scenarios))
        passes);
  Printf.printf "  what-if session (4 passes), serial uncached: %8.1f ms\n"
    (session_serial *. 1e3);
  Printf.printf
    "  what-if session (4 passes), engine (%d domain(s) + cache): %8.1f ms  \
     (%.2fx, %d hits / %d misses)\n"
    engine_jobs (session_engine *. 1e3)
    (session_serial /. session_engine)
    (Eval_cache.hits cache) (Eval_cache.misses cache);
  let json =
    J.Obj
      [
        ("mode", J.String "parallel");
        ("cores", J.Int cores);
        ("recommended_domain_count", J.Int cores);
        ("candidates", J.Int n);
        ("scenarios", J.Int (List.length scenarios));
        ( "single_sweep",
          J.Obj
            [
              ("serial_seconds", J.Float serial_s);
              ( "by_jobs",
                J.List
                  (List.map
                     (fun (jobs, t, undersubscribed) ->
                       J.Obj
                         [
                           ("jobs", J.Int jobs);
                           ("seconds", J.Float t);
                           ("speedup", J.Float (serial_s /. t));
                           ("undersubscribed", J.Bool undersubscribed);
                         ])
                     by_jobs) );
            ] );
        ( "whatif_session",
          J.Obj
            [
              ("passes", J.Int (List.length passes));
              ("engine_jobs", J.Int engine_jobs);
              ("serial_uncached_seconds", J.Float session_serial);
              ("engine_cached_seconds", J.Float session_engine);
              ("speedup", J.Float (session_serial /. session_engine));
              ("cache_hits", J.Int (Eval_cache.hits cache));
              ("cache_misses", J.Int (Eval_cache.misses cache));
            ] );
        ("stats", Storage_obs.snapshot ());
      ]
  in
  Out_channel.with_open_text "BENCH_parallel.json" (fun oc ->
      output_string oc (J.to_string_pretty json);
      output_char oc '\n');
  print_endline "  wrote BENCH_parallel.json"

(* --- streaming-pipeline benchmark --- *)

(* The memory story behind the streaming search: a grid of ~10^5
   candidates evaluated through [Search.run ~top_k] must peak within 2x
   of a ~10^3-candidate run (working set = one pool window + the slim
   frontier + k survivors + the bounded cache, not the grid), while the
   materialized path retains every summary.

   Peak is measured as the maximum of [Gc.stat().live_words] right
   after a forced major collection, sampled every 1024 candidates as
   the grid streams by (plus once after each run with the result still
   live, which is what exposes the materialized path's O(grid)
   retention). [Gc.top_heap_words] would be the obvious candidate but
   is useless here: it is monotonic over the process lifetime and, on
   OCaml 5.1, tracks the allocator's sawtooth high-water mark — the
   runtime has no heap compaction, so the number reflects allocation
   churn and fragmentation, not the working set. *)
let stream_bench () =
  let module J = Storage_report.Json in
  let module Search = Storage_optimize.Search in
  let module Engine = Storage_optimize.Engine in
  let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ] in
  let grid scale =
    Storage_optimize.Candidate.enumerate parallel_kit
      (Storage_optimize.Candidate.scaled_space ~scale)
  in
  (* Smallest scale clearing 10^5 candidates after validity filtering. *)
  let large_scale =
    let rec find s = if Seq.length (grid s) >= 100_000 then s else find (s + 1) in
    find 7
  in
  let small = grid 2 in
  let large = grid large_scale in
  let n_small = Seq.length small and n_large = Seq.length large in
  Printf.printf
    "Streaming pipeline benchmark: %d vs %d candidates x %d scenarios\n"
    n_small n_large (List.length scenarios);
  let peak = ref 0 in
  let sample () =
    Gc.full_major ();
    let live = (Gc.stat ()).Gc.live_words in
    if live > !peak then peak := live
  in
  let monitored cs =
    Seq.mapi (fun i d -> if i mod 1024 = 0 then sample (); d) cs
  in
  let measure name f =
    peak := 0;
    sample ();
    let t0 = Unix.gettimeofday () in
    let result = f () in
    let dt = Unix.gettimeofday () -. t0 in
    (* [result] is still live across this sample, so a materialized run
       pays for everything it retained. *)
    sample ();
    Printf.printf "  %-42s %8.1f ms   peak live %7d kwords\n" name (dt *. 1e3)
      (!peak / 1000);
    (result, dt, !peak)
  in
  let stream ~jobs cs =
    let engine = Engine.create ~jobs ~cache_bound:512 () in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown engine)
      (fun () -> Search.run ~engine ~top_k:10 (monitored cs) scenarios)
  in
  (* Headline throughput: serial, cache off (a one-shot sweep over an
     all-distinct grid cannot hit the cache, so fingerprinting and memo
     bookkeeping are pure overhead there), and unmonitored — the
     [Gc.full_major] sampling above costs more than the evaluations. *)
  let t_throughput =
    time_best_of ~repeats:2 (fun () ->
        let engine = Engine.create ~cache:false () in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown engine)
          (fun () -> Search.run ~engine ~top_k:10 large scenarios))
  in
  let throughput = float_of_int n_large /. t_throughput in
  Printf.printf
    "  throughput, %d candidates, serial, cache off: %8.1f ms  (%.0f \
     candidates/s)\n"
    n_large (t_throughput *. 1e3) throughput;
  let r_small, t_small, peak_small =
    measure (Printf.sprintf "streaming, %d candidates, serial" n_small)
      (fun () -> stream ~jobs:1 small)
  in
  let r_large, t_large, peak_large =
    measure (Printf.sprintf "streaming, %d candidates, serial" n_large)
      (fun () -> stream ~jobs:1 large)
  in
  let r_large4, t_large4, peak_large4 =
    measure (Printf.sprintf "streaming, %d candidates, 4 domains" n_large)
      (fun () -> stream ~jobs:4 large)
  in
  (* The materialized oracle on the small grid: byte-identical frontier
     and best, O(grid) retention. (Running it over the large grid would
     materialize every summary — the cost the streaming path removes.) *)
  let r_mat, t_mat, peak_mat =
    measure (Printf.sprintf "materialized, %d candidates, serial" n_small)
      (fun () -> Search.run_materialized (List.of_seq small) scenarios)
  in
  let bytes x = Marshal.to_string x [ Marshal.No_sharing ] in
  let identical =
    bytes r_small.Search.frontier = bytes r_mat.Search.frontier
    && bytes r_small.Search.best = bytes r_mat.Search.best
  in
  let within_2x = peak_large <= 2 * peak_small in
  Printf.printf "  frontier/best identical to materialized: %b\n" identical;
  Printf.printf "  large-grid peak within 2x of small-grid peak: %b (%.2fx)\n"
    within_2x
    (float_of_int peak_large /. float_of_int peak_small);
  (* Wall-clock only; on a single-core host the multi-domain run is
     expected to be slower, not faster. *)
  let cores = Storage_parallel.Pool.default_jobs () in
  Printf.printf "  4-domain large-grid wall-clock ratio: %.2fx%s\n"
    (t_large /. t_large4)
    (if 4 > cores then "  [more domains than cores]" else "");
  ignore r_large;
  ignore r_large4;
  let run name candidates jobs seconds peak =
    J.Obj
      [
        ("run", J.String name);
        ("candidates", J.Int candidates);
        ("jobs", J.Int jobs);
        ("seconds", J.Float seconds);
        ("peak_live_words", J.Int peak);
        ("undersubscribed", J.Bool (jobs > cores));
      ]
  in
  let json =
    J.Obj
      [
        ("mode", J.String "stream");
        ("scenarios", J.Int (List.length scenarios));
        ("large_scale", J.Int large_scale);
        ("recommended_domain_count", J.Int cores);
        ( "serial_throughput",
          J.Obj
            [
              ("candidates", J.Int n_large);
              ("seconds", J.Float t_throughput);
              ("candidates_per_sec", J.Float throughput);
              ("cache", J.Bool false);
            ] );
        ( "runs",
          J.List
            [
              run "streaming_small_serial" n_small 1 t_small peak_small;
              run "streaming_large_serial" n_large 1 t_large peak_large;
              run "streaming_large_4domains" n_large 4 t_large4 peak_large4;
              run "materialized_small_serial" n_small 1 t_mat peak_mat;
            ] );
        ("frontier_best_identical_to_materialized", J.Bool identical);
        ("large_peak_within_2x_of_small", J.Bool within_2x);
      ]
  in
  Out_channel.with_open_text "BENCH_stream.json" (fun oc ->
      output_string oc (J.to_string_pretty json);
      output_char oc '\n');
  print_endline "  wrote BENCH_stream.json";
  if not (identical && within_2x) then exit 1

(* --- fleet Monte Carlo benchmark --- *)

(* [bench/main.exe fleet]: the fleet-scale availability record — 1000
   five-year trials per preset design, serial and at 4 domains, with the
   full report and the measured trials/s — written to BENCH_fleet.json.
   The serial and 4-domain reports must render to identical JSON (the
   jobs-invariance contract); the record carries the comparison. The
   fleet-trials-per-sec gate of [--check] reruns the baseline preset
   against the committed floor. *)

let fleet_designs =
  [
    ("baseline", Baseline.design);
    ("async_mirror_x10", Whatif.async_mirror ~links:10);
    ("erasure_6_of_9", Whatif.erasure_coded ~fragments:9 ~required:6 ~links:10);
  ]

let fleet_bench () =
  let module J = Storage_report.Json in
  let module Fleet = Storage_fleet.Fleet in
  let config = Fleet.config ~trials:1000 ~horizon_years:5. () in
  let cores = Storage_parallel.Pool.default_jobs () in
  Printf.printf
    "Fleet Monte Carlo benchmark: %d trials x %.0f-year horizon per design \
     (%d core(s))\n"
    config.Fleet.trials
    (Duration.to_years config.Fleet.horizon)
    cores;
  let ok = ref true in
  let runs =
    List.map
      (fun (name, d) ->
        let run ~jobs () =
          Storage_engine.with_engine ~jobs (fun engine ->
              Fleet.run ~engine ~config d)
        in
        let t0 = Unix.gettimeofday () in
        let serial = run ~jobs:1 () in
        let t_serial = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let par = run ~jobs:4 () in
        let t_par = Unix.gettimeofday () -. t1 in
        let identical =
          String.equal
            (J.to_string (Fleet.to_json serial))
            (J.to_string (Fleet.to_json par))
        in
        if not identical then ok := false;
        let tps = float_of_int config.Fleet.trials /. t_serial in
        Printf.printf
          "  %-18s serial %8.1f ms (%7.1f trials/s)   4 domains %8.1f ms \
           (%.2fx)%s%s\n"
          name (t_serial *. 1e3) tps (t_par *. 1e3) (t_serial /. t_par)
          (if 4 > cores then "  [more domains than cores]" else "")
          (if identical then "" else "  JOBS-VARIANT!");
        J.Obj
          [
            ("design", J.String name);
            ("serial_seconds", J.Float t_serial);
            ("trials_per_sec", J.Float tps);
            ("four_domain_seconds", J.Float t_par);
            ("speedup", J.Float (t_serial /. t_par));
            ("jobs_invariant", J.Bool identical);
            ("report", Fleet.to_json serial);
          ])
      fleet_designs
  in
  let json =
    J.Obj
      [
        ("mode", J.String "fleet");
        ("trials", J.Int config.Fleet.trials);
        ("horizon_years", J.Float (Duration.to_years config.Fleet.horizon));
        ("seed", J.String (Int64.to_string config.Fleet.seed));
        ("cores", J.Int cores);
        ("runs", J.List runs);
      ]
  in
  Out_channel.with_open_text "BENCH_fleet.json" (fun oc ->
      output_string oc (J.to_string_pretty json);
      output_char oc '\n');
  print_endline "  wrote BENCH_fleet.json";
  if not !ok then exit 1

(* --- metaheuristic solver benchmark --- *)

(* [bench/main.exe solver [smoke]]: run all three solver methods over the
   tier grid and report how much of the exhaustive sweep each one needed
   to land on the same optimum. The headline number — the annealing
   budget is capped at [solver_budget_fraction] of the candidates the
   grid evaluated, and the run must still reach the grid optimum — is
   the measurement behind the solver-vs-grid gate of [--check]. Writes
   BENCH_solver.json; exits 1 if anneal or b&b misses the optimum. *)
let solver_bench ~smoke () =
  let module J = Storage_report.Json in
  let module Engine = Storage_optimize.Engine in
  let module Solver = Storage_optimize.Solver in
  let module Objective = Storage_optimize.Objective in
  let b = if smoke then Baselines.smoke else Baselines.full in
  let space =
    Storage_optimize.Candidate.scaled_space ~scale:b.Baselines.grid_scale
  in
  let points = Storage_optimize.Candidate.point_count space in
  let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ] in
  let jobs = Int.min 4 (Storage_parallel.Pool.default_jobs ()) in
  Printf.printf
    "Solver benchmark, %s tier: %d grid points x %d scenarios, seed 0x%Lx, \
     %d job(s)\n"
    b.Baselines.name points (List.length scenarios) b.Baselines.solver_seed
    jobs;
  let engine = Engine.create ~jobs ~cache:false () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let timed method_ ?budget () =
        let t0 = Unix.gettimeofday () in
        let r =
          Solver.run ~engine ?budget ~seed:b.Baselines.solver_seed ~method_
            parallel_kit space scenarios
        in
        (r, Unix.gettimeofday () -. t0)
      in
      let grid, t_grid = timed Solver.Grid () in
      let grid_evals = grid.Solver.stats.Solver.evaluations in
      let budget =
        Int.max 1
          (int_of_float
             (b.Baselines.solver_budget_fraction *. float_of_int grid_evals))
      in
      let anneal, t_anneal = timed Solver.Anneal ~budget () in
      let bnb, t_bnb = timed Solver.Bnb () in
      let total (r : Solver.result) =
        Option.map
          (fun (s : Objective.summary) -> s.Objective.worst_total_cost)
          r.Solver.best
      in
      let matches r =
        Option.compare Money.compare (total r) (total grid) = 0
      in
      let ok = ref true in
      let row name (r : Solver.result) seconds =
        let evals = r.Solver.stats.Solver.evaluations in
        let fraction = float_of_int evals /. float_of_int grid_evals in
        let matched = matches r in
        if not matched then ok := false;
        Printf.printf
          "  %-7s best %s  %7d evaluations (%5.1f%% of grid)  %7.2f s%s\n"
          name
          (match r.Solver.best with
          | None -> "-- none feasible --"
          | Some s ->
            Fmt.str "%-32s %a"
              s.Objective.design.Design.name
              Money.pp s.Objective.worst_total_cost)
          evals (100. *. fraction) seconds
          (if matched then "" else "  MISSED-OPTIMUM!");
        J.Obj
          [
            ("method", J.String (Solver.method_name r.Solver.method_));
            ("budget", J.Int r.Solver.budget);
            ("evaluations", J.Int evals);
            ("fraction_of_grid", J.Float fraction);
            ("pruned_cost", J.Int r.Solver.stats.Solver.pruned_cost);
            ( "pruned_infeasible",
              J.Int r.Solver.stats.Solver.pruned_infeasible );
            ("bound_probes", J.Int r.Solver.stats.Solver.probes);
            ("seconds", J.Float seconds);
            ("matched_grid", J.Bool matched);
            ( "best_total_usd",
              match total r with
              | None -> J.Null
              | Some m -> J.Float (Money.to_usd m) );
          ]
      in
      let row_grid = row "grid" grid t_grid in
      let row_anneal = row "anneal" anneal t_anneal in
      let row_bnb = row "bnb" bnb t_bnb in
      let rows = [ row_grid; row_anneal; row_bnb ] in
      let json =
        J.Obj
          [
            ("mode", J.String "solver");
            ("tier", J.String b.Baselines.name);
            ("grid_scale", J.Int b.Baselines.grid_scale);
            ("grid_points", J.Int points);
            ("grid_evaluations", J.Int grid_evals);
            ("seed", J.String (Printf.sprintf "0x%Lx" b.Baselines.solver_seed));
            ( "budget_fraction",
              J.Float b.Baselines.solver_budget_fraction );
            ("anneal_budget", J.Int budget);
            ("jobs", J.Int jobs);
            ("methods", J.List rows);
          ]
      in
      Out_channel.with_open_text "BENCH_solver.json" (fun oc ->
          output_string oc (J.to_string_pretty json);
          output_char oc '\n');
      print_endline "  wrote BENCH_solver.json";
      if not !ok then exit 1)

(* --- evaluation-service load generator --- *)

(* [bench/main.exe serve]: start an in-process daemon on an ephemeral
   port, hammer /evaluate from N concurrent client domains, and report
   p50/p99 latency and throughput against the cold single-shot cost of
   spawning `ssdep evaluate --json` per request (binary located via
   SSDEP_BIN). Writes BENCH_serve.json. The same measurement backs the
   serve-warm-speedup gate of [--check]. *)

(* One request per connection, mirroring the server's
   [Connection: close] discipline. Returns (status, body). *)
let http_request ~port ~meth ~path ~body =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let bytes = Bytes.of_string req in
      let n = Bytes.length bytes in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write fd bytes !off (n - !off)
      done;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let got = Unix.read fd chunk 0 4096 in
        if got > 0 then begin
          Buffer.add_subbytes buf chunk 0 got;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        (* "HTTP/1.1 NNN ..." *)
        if String.length raw >= 12 then
          Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
        else 0
      in
      let body =
        let n = String.length raw in
        let rec find i =
          if i + 4 > n then ""
          else if String.sub raw i 4 = "\r\n\r\n" then
            String.sub raw (i + 4) (n - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

(* The workhorse request body: the baseline case study with its two
   hardware-failure scenarios, rendered in the design language. *)
let serve_body =
  lazy
    (match
       Storage_spec.Spec.design_to_string
         ~scenarios:
           [
             ("array failure", Baseline.scenario_array);
             ("site disaster", Baseline.scenario_site);
           ]
         Baseline.design
     with
    | Ok text -> text
    | Error e -> failwith ("cannot render baseline design: " ^ e))

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(int_of_float (q *. float_of_int (n - 1)))

type serve_load = {
  clients : int;
  per_client : int;
  p50 : float;
  p99 : float;
  throughput : float;  (** requests per second, all clients together *)
  failures : int;  (** non-200 responses *)
}

let serve_load ~port ~clients ~per_client =
  let body = Lazy.force serve_body in
  (* Warm the cache (and the code paths) outside the measurement. *)
  ignore (http_request ~port ~meth:"POST" ~path:"/evaluate" ~body);
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            Array.init per_client (fun _ ->
                let t = Unix.gettimeofday () in
                let status, _ =
                  http_request ~port ~meth:"POST" ~path:"/evaluate" ~body
                in
                (Unix.gettimeofday () -. t, status))))
  in
  let samples = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let wall = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (List.map fst samples)
  in
  Array.sort compare latencies;
  {
    clients;
    per_client;
    p50 = percentile latencies 0.50;
    p99 = percentile latencies 0.99;
    throughput = float_of_int (clients * per_client) /. wall;
    failures =
      List.length (List.filter (fun (_, status) -> status <> 200) samples);
  }

(* Wall time of one cold `ssdep evaluate --file ... --json` — process
   start, parse, evaluate, print — which is what every scripted call
   pays without the daemon. Best of [repeats]. *)
let cold_single_shot ~ssdep_bin () =
  let path = Filename.temp_file "ssdep_bench" ".ssdep" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Lazy.force serve_body));
      let cmd =
        Printf.sprintf "%s evaluate --file %s --json > /dev/null 2>&1"
          (Filename.quote ssdep_bin) (Filename.quote path)
      in
      time_best_of ~repeats:3 (fun () ->
          if Sys.command cmd <> 0 then
            failwith ("cold single-shot failed: " ^ cmd)))

let start_serve_daemon () =
  let module Server = Storage_serve.Server in
  let engine = Storage_optimize.Engine.create ~stats:true () in
  let server =
    Server.start
      ~config:{ Server.default_config with Server.port = 0 }
      engine
  in
  (engine, server)

let serve_bench () =
  let module J = Storage_report.Json in
  let module Server = Storage_serve.Server in
  let engine, server = start_serve_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Storage_optimize.Engine.shutdown engine)
  @@ fun () ->
  let port = Server.port server in
  let clients = 4 and per_client = 100 in
  Printf.printf
    "Evaluation-service load: %d clients x %d requests to /evaluate \
     (port %d)\n"
    clients per_client port;
  let load = serve_load ~port ~clients ~per_client in
  Printf.printf
    "  warm p50 %8.2f ms   p99 %8.2f ms   %8.1f req/s   %d failure(s)\n"
    (load.p50 *. 1e3) (load.p99 *. 1e3) load.throughput load.failures;
  let cold =
    match Sys.getenv_opt "SSDEP_BIN" with
    | None ->
      print_endline
        "  cold single-shot: skipped (SSDEP_BIN not set; point it at the \
         ssdep binary)";
      None
    | Some ssdep_bin ->
      let t = cold_single_shot ~ssdep_bin () in
      Printf.printf
        "  cold single-shot `ssdep evaluate --json`: %8.2f ms  (%.1fx the \
         warm p50)\n"
        (t *. 1e3) (t /. load.p50);
      Some t
  in
  let json =
    J.Obj
      ([
         ("mode", J.String "serve");
         ("clients", J.Int load.clients);
         ("requests_per_client", J.Int load.per_client);
         ("warm_p50_seconds", J.Float load.p50);
         ("warm_p99_seconds", J.Float load.p99);
         ("throughput_rps", J.Float load.throughput);
         ("failures", J.Int load.failures);
       ]
      @ (match cold with
        | None -> [ ("cold_single_shot", J.String "skipped") ]
        | Some t ->
          [
            ("cold_single_shot_seconds", J.Float t);
            ("warm_speedup", J.Float (t /. load.p50));
          ])
      @ [ ("stats", Storage_obs.snapshot ()) ])
  in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      output_string oc (J.to_string_pretty json);
      output_char oc '\n');
  print_endline "  wrote BENCH_serve.json";
  if load.failures > 0 then exit 1

(* --- perf-regression gate --- *)

(* [bench/main.exe --check [--smoke]]: measure the evaluation hot path
   and compare against the committed floors/ceilings in
   [bench/baselines.ml]. One machine-readable "CHECK <gate> <ok|FAIL|skip>"
   line per gate on stdout, the same data in BENCH_check.json, exit code
   1 on any failure. The smoke tier runs under `dune runtest` on every
   build; the full tier is the nightly CI gate. *)
let check_bench ~smoke () =
  let module J = Storage_report.Json in
  let module Search = Storage_optimize.Search in
  let module Engine = Storage_optimize.Engine in
  let b = if smoke then Baselines.smoke else Baselines.full in
  let cores = Storage_parallel.Pool.default_jobs () in
  let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ] in
  let grid () =
    Storage_optimize.Candidate.enumerate parallel_kit
      (Storage_optimize.Candidate.scaled_space ~scale:b.Baselines.grid_scale)
  in
  let n = Seq.length (grid ()) in
  Printf.printf
    "Perf-regression check, %s tier: %d candidates x %d scenarios, %d \
     core(s)\n"
    b.Baselines.name n (List.length scenarios) cores;
  let search ~cache ~jobs cs =
    let engine = Engine.create ~jobs ~cache ~cache_bound:512 () in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown engine)
      (fun () -> Search.run ~engine ~top_k:10 cs scenarios)
  in
  let gates = ref [] in
  let gate name ~measured ~threshold ~ok ~unit_ =
    Printf.printf "CHECK %-17s %-4s measured %12.1f %s (threshold %.1f)\n"
      name
      (if ok then "ok" else "FAIL")
      measured unit_ threshold;
    gates :=
      J.Obj
        [
          ("gate", J.String name);
          ("status", J.String (if ok then "ok" else "fail"));
          ("measured", J.Float measured);
          ("threshold", J.Float threshold);
          ("unit", J.String unit_);
        ]
      :: !gates;
    ok
  in
  let skip name reason =
    Printf.printf "CHECK %-17s skip %s\n" name reason;
    gates :=
      J.Obj
        [
          ("gate", J.String name);
          ("status", J.String "skip");
          ("reason", J.String reason);
        ]
      :: !gates;
    true
  in
  (* Gate 1 — serial streaming throughput, cache off: the configuration a
     one-shot sweep over an all-distinct grid runs in, so regressions in
     enumeration, the evaluation stages or the search loop itself all
     land here. *)
  let t_serial =
    time_best_of ~repeats:(if smoke then 3 else 2) (fun () ->
        search ~cache:false ~jobs:1 (grid ()))
  in
  let cps = float_of_int n /. t_serial in
  let ok_throughput =
    gate "serial-throughput" ~measured:cps
      ~threshold:b.Baselines.min_candidates_per_sec
      ~ok:(cps >= b.Baselines.min_candidates_per_sec)
      ~unit_:"candidates/s"
  in
  (* Gate 2 — parallel speedup: wall-clock serial over [b.jobs] domains.
     Skipped, not failed, when the machine cannot supply the domains —
     a speedup measured on time-shared cores is noise either way. *)
  let ok_speedup =
    if cores < b.Baselines.jobs then
      skip "parallel-speedup"
        (Printf.sprintf "%d core(s) < %d jobs" cores b.Baselines.jobs)
    else begin
      let t_par =
        time_best_of ~repeats:(if smoke then 3 else 2) (fun () ->
            search ~cache:false ~jobs:b.Baselines.jobs (grid ()))
      in
      let speedup = t_serial /. t_par in
      gate "parallel-speedup" ~measured:speedup
        ~threshold:b.Baselines.min_parallel_speedup
        ~ok:(speedup >= b.Baselines.min_parallel_speedup)
        ~unit_:"x"
    end
  in
  (* Gate 3 — peak live words of the monitored bounded-cache serial run:
     the O(window + frontier + cache bound) memory contract. An O(grid)
     leak — materializing summaries, an unbounded memo — blows through
     the ceiling by an order of magnitude. *)
  let peak = ref 0 in
  let sample () =
    Gc.full_major ();
    let live = (Gc.stat ()).Gc.live_words in
    if live > !peak then peak := live
  in
  let monitored cs =
    Seq.mapi (fun i d -> if i mod 1024 = 0 then sample (); d) cs
  in
  sample ();
  let r = search ~cache:true ~jobs:1 (monitored (grid ())) in
  sample ();
  ignore (Sys.opaque_identity r);
  let ok_peak =
    gate "peak-live-words"
      ~measured:(float_of_int !peak)
      ~threshold:(float_of_int b.Baselines.max_peak_live_words)
      ~ok:(!peak <= b.Baselines.max_peak_live_words)
      ~unit_:"words"
  in
  (* Gate 4 — fleet Monte Carlo throughput: serial trials/s of the
     baseline preset. Regressions in the trace sampler, the degenerate
     single-event reduction or the event-driven simulator's hot loop
     (e.g. a reintroduced sub-ulp advance stall) land here. *)
  let ok_fleet =
    let fleet_config =
      Storage_fleet.Fleet.config ~trials:b.Baselines.fleet_trials
        ~horizon_years:5. ()
    in
    let t_fleet =
      time_best_of ~repeats:(if smoke then 2 else 3) (fun () ->
          Storage_engine.with_engine ~jobs:1 (fun engine ->
              Storage_fleet.Fleet.run ~engine ~config:fleet_config
                Baseline.design))
    in
    let tps = float_of_int b.Baselines.fleet_trials /. t_fleet in
    gate "fleet-trials-per-sec" ~measured:tps
      ~threshold:b.Baselines.min_fleet_trials_per_sec
      ~ok:(tps >= b.Baselines.min_fleet_trials_per_sec)
      ~unit_:"trials/s"
  in
  (* Gate 5 — solver-vs-grid parity: annealing, budgeted at
     [solver_budget_fraction] of the candidates the exhaustive grid
     evaluated, must land on the grid optimum exactly. The measured
     value is the share of the grid the solver actually evaluated; the
     gate fails either by missing the optimum or by burning more than
     the committed fraction. Deterministic (pinned seed), so a failure
     here is a solver regression, not noise. *)
  let ok_solver =
    let module Solver = Storage_optimize.Solver in
    let module Objective = Storage_optimize.Objective in
    let space =
      Storage_optimize.Candidate.scaled_space ~scale:b.Baselines.grid_scale
    in
    let engine = Engine.create ~jobs:1 ~cache:false () in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown engine)
      (fun () ->
        let solve method_ ?budget () =
          Solver.run ~engine ?budget ~seed:b.Baselines.solver_seed ~method_
            parallel_kit space scenarios
        in
        let grid = solve Solver.Grid () in
        let grid_evals = grid.Solver.stats.Solver.evaluations in
        let budget =
          Int.max 1
            (int_of_float
               (b.Baselines.solver_budget_fraction
               *. float_of_int grid_evals))
        in
        let anneal = solve Solver.Anneal ~budget () in
        let total (r : Solver.result) =
          Option.map
            (fun (s : Objective.summary) -> s.Objective.worst_total_cost)
            r.Solver.best
        in
        let parity = Option.compare Money.compare (total anneal) (total grid) = 0 in
        let fraction =
          100.
          *. float_of_int anneal.Solver.stats.Solver.evaluations
          /. float_of_int grid_evals
        in
        let threshold = 100. *. b.Baselines.solver_budget_fraction in
        gate "solver-vs-grid" ~measured:fraction ~threshold
          ~ok:(parity && fraction <= threshold)
          ~unit_:"% of grid")
  in
  (* Gate 6 — the daemon's reason to exist: warm-cache /evaluate p50
     must beat the cold single-shot CLI wall time by the committed
     factor. Runs last: [Server.start] flips the obs registry on, which
     must not perturb the gates above. Skipped when SSDEP_BIN does not
     point at the CLI binary (nothing cold to time). *)
  let ok_serve =
    match Sys.getenv_opt "SSDEP_BIN" with
    | None -> skip "serve-warm-speedup" "SSDEP_BIN not set"
    | Some ssdep_bin ->
      let engine, server = start_serve_daemon () in
      let load =
        Fun.protect
          ~finally:(fun () ->
            Storage_serve.Server.stop server;
            Engine.shutdown engine)
          (fun () ->
            serve_load
              ~port:(Storage_serve.Server.port server)
              ~clients:4
              ~per_client:(if smoke then 25 else 100))
      in
      let cold = cold_single_shot ~ssdep_bin () in
      let speedup = cold /. load.p50 in
      if load.failures > 0 then
        gate "serve-warm-speedup"
          ~measured:(float_of_int load.failures)
          ~threshold:0. ~ok:false ~unit_:"failed requests"
      else
        gate "serve-warm-speedup" ~measured:speedup
          ~threshold:b.Baselines.min_serve_warm_speedup
          ~ok:(speedup >= b.Baselines.min_serve_warm_speedup)
          ~unit_:"x"
  in
  let pass =
    ok_throughput && ok_speedup && ok_peak && ok_fleet && ok_solver && ok_serve
  in
  let json =
    J.Obj
      [
        ("mode", J.String "check");
        ("tier", J.String b.Baselines.name);
        ("grid_scale", J.Int b.Baselines.grid_scale);
        ("candidates", J.Int n);
        ("scenarios", J.Int (List.length scenarios));
        ("recommended_domain_count", J.Int cores);
        ("gates", J.List (List.rev !gates));
        ("pass", J.Bool pass);
      ]
  in
  Out_channel.with_open_text "BENCH_check.json" (fun oc ->
      output_string oc (J.to_string_pretty json);
      output_char oc '\n');
  Printf.printf "  wrote BENCH_check.json\nCHECK result: %s\n"
    (if pass then "pass" else "FAIL");
  if not pass then exit 1

(* --- micro-benchmarks --- *)

let small_trace =
  lazy
    (Storage_workload.Trace.generate ~seed:11L
       {
         Cello.trace_profile with
         Storage_workload.Trace.block_count = 4096;
         mean_update_rate = Rate.mib_per_sec 2.;
       }
       (Duration.hours 6.))

let micro_tests =
  [
    Test.make ~name:"table2: trace characterization (6h trace)"
      (Staged.stage (fun () ->
           let trace = Lazy.force small_trace in
           Storage_workload.Trace_stats.batch_curve trace
             ~windows:[ Duration.minutes 1.; Duration.hours 1. ]));
    Test.make ~name:"table5: utilization (baseline)"
      (Staged.stage (fun () -> Utilization.compute Baseline.design));
    Test.make ~name:"table6: evaluate 3 scenarios (baseline)"
      (Staged.stage (fun () ->
           Evaluate.run_all Baseline.design Baseline.scenarios));
    Test.make ~name:"table7: evaluate 7 designs x 2 scenarios"
      (Staged.stage (fun () ->
           List.iter
             (fun (_, d) ->
               ignore
                 (Evaluate.run_all d
                    [ Baseline.scenario_array; Baseline.scenario_site ]))
             Whatif.all));
    Test.make ~name:"figure3: RP ranges (baseline)"
      (Staged.stage (fun () ->
           let h = Baseline.design.Design.hierarchy in
           List.init
             (Storage_hierarchy.Hierarchy.length h)
             (Storage_hierarchy.Hierarchy.guaranteed_range h)));
    Test.make ~name:"figure4: recovery timeline (site)"
      (Staged.stage (fun () ->
           Recovery_time.compute Baseline.design Baseline.scenario_site
             ~source_level:3));
    Test.make ~name:"figure5: cost outlays (baseline)"
      (Staged.stage (fun () -> Cost.outlays Baseline.design));
    Test.make ~name:"sim: 4-week warmup + array failure"
      (Staged.stage (fun () ->
           Storage_sim.Sim.run
             ~config:{ Storage_sim.Sim.warmup = Duration.weeks 4.; log = false; outage = None; record_events = false }
             Baseline.design Baseline.scenario_array));
  ]

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock):";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let test = Test.make_grouped ~name:"experiments" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> nan
      in
      rows := (name, estimate, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  List.iter
    (fun (name, ns, r2) ->
      let human =
        if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-50s %s/run  (r² %.3f)\n" name human r2)
    rows

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    List.iter (fun (name, _) -> print_artifact name) artifacts;
    validate ();
    print_newline ();
    ablate ();
    run_micro ()
  | _ :: [ "micro" ] -> run_micro ()
  | _ :: [ "validate" ] -> validate ()
  | _ :: [ "pareto" ] -> pareto ()
  | _ :: [ "parallel" ] -> parallel_bench ()
  | _ :: [ "stream" ] -> stream_bench ()
  | _ :: [ "fleet" ] -> fleet_bench ()
  | _ :: [ "serve" ] -> serve_bench ()
  | _ :: [ "solver" ] -> solver_bench ~smoke:false ()
  | _ :: [ "solver"; "smoke" ] -> solver_bench ~smoke:true ()
  | _ :: ([ "--check" ] | [ "check" ]) -> check_bench ~smoke:false ()
  | _ :: ([ "--check"; "--smoke" ] | [ "check"; "smoke" ]) ->
    check_bench ~smoke:true ()
  | _ :: [ "ablate" ] -> ablate ()
  | _ :: names -> List.iter print_artifact names
