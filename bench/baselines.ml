(* Committed perf-regression baselines for [bench/main.exe --check].

   These are FLOORS and CEILINGS, not expected values: they are set with
   generous headroom below/above the numbers measured on the development
   machine (recorded in BENCH_stream.json / BENCH_parallel.json) so that
   ordinary machine-to-machine variance passes, while a structural
   regression — per-task dispatch overhead back on the hot path, a
   Marshal round-trip per cache key, O(grid) retention in the streaming
   search — fails loudly. The 2025 parallel regression this harness
   exists to catch was a 6x slowdown; anything of that class lands well
   past these margins.

   Re-baselining: run `dune exec bench/main.exe -- --check` (and
   `-- --check --smoke`) on a quiet machine, compare the measured values
   it prints against these thresholds, and update the constants here —
   keeping 2-4x headroom — in the same commit as the change that moved
   the numbers. See TESTING.md ("Perf-regression harness"). *)

type tier = {
  name : string;
  grid_scale : int;  (** [Candidate.scaled_space] scale for the gate grid *)
  jobs : int;  (** domain count for the parallel-speedup gate *)
  min_candidates_per_sec : float;
      (** serial streaming-search throughput floor, cache off *)
  min_parallel_speedup : float;
      (** wall-clock serial/parallel floor at [jobs] domains; the gate
          auto-skips when [Domain.recommended_domain_count () < jobs] *)
  max_peak_live_words : int;
      (** ceiling on peak [Gc.live_words] of the monitored serial
          streaming search (bounded cache), the O(window + frontier)
          memory contract *)
  min_serve_warm_speedup : float;
      (** floor on cold single-shot `ssdep evaluate` wall time over the
          daemon's warm-cache /evaluate p50; the gate auto-skips when
          [SSDEP_BIN] is not set (no CLI binary to time) *)
  fleet_trials : int;  (** Monte Carlo trials for the fleet gate *)
  min_fleet_trials_per_sec : float;
      (** serial fleet Monte Carlo throughput floor on the baseline
          preset (5-year horizon) *)
  solver_budget_fraction : float;
      (** annealing budget for the solver-vs-grid gate, as a fraction of
          the tier grid's point count: the solver must land on the
          exhaustive grid optimum while evaluating at most this share of
          the grid *)
  solver_seed : int64;
      (** pinned annealing seed for the solver-vs-grid gate (the solver
          is a pure function of (seed, budget), so the gate is
          deterministic) *)
}

(* ~2k candidates: fast enough for every `dune runtest`, coarse floors
   because the suite runs concurrently with other tests. *)
let smoke =
  {
    name = "smoke";
    grid_scale = 2;
    jobs = 4;
    min_candidates_per_sec = 20_000.;
    min_parallel_speedup = 1.0;
    max_peak_live_words = 450_000;
    min_serve_warm_speedup = 1.5;
    fleet_trials = 200;
    min_fleet_trials_per_sec = 250.;
    solver_budget_fraction = 0.10;
    solver_seed = 0xB0B5L;
  }

(* The 131k-candidate sweep of BENCH_stream.json (scale 8): the nightly
   gate. Dev-machine measurements at commit time: ~100k candidates/s
   serial, ~310k peak live words. *)
let full =
  {
    name = "full";
    grid_scale = 8;
    jobs = 4;
    min_candidates_per_sec = 50_000.;
    min_parallel_speedup = 2.0;
    max_peak_live_words = 650_000;
    min_serve_warm_speedup = 2.0;
    fleet_trials = 1000;
    min_fleet_trials_per_sec = 500.;
    solver_budget_fraction = 0.10;
    solver_seed = 0xB0B5L;
  }
