(* ssdep: storage system dependability evaluator.

   Command-line front end for the DSN 2004 "Framework for Evaluating
   Storage System Dependability" reproduction: evaluate designs under
   failure scenarios, reproduce the paper's tables, run the discrete-event
   simulator, and search the design space. *)

open Cmdliner
open Storage_units
open Storage_device
open Storage_model
open Storage_presets

let designs = Whatif.all

let design_names = List.map fst designs

let find_design name =
  match List.assoc_opt name designs with
  | Some d -> Ok d
  | None ->
    Error
      (Printf.sprintf "unknown design %S; available: %s" name
         (String.concat ", " design_names))

let scenario_of_scope ~target_age scope_name =
  let target_age = Duration.hours target_age in
  match scope_name with
  | "object" ->
    let age =
      if Duration.is_zero target_age then Duration.hours 24. else target_age
    in
    Ok
      (Scenario.make ~scope:Location.Data_object ~target_age:age
         ~object_size:(Size.mib 1.) ())
  | "array" ->
    Ok (Scenario.make ~scope:(Location.Device "disk-array") ~target_age ())
  | "site" -> Ok (Scenario.make ~scope:(Location.Site "primary") ~target_age ())
  | other ->
    Error (Printf.sprintf "unknown scope %S (object|array|site)" other)

(* --- common options --- *)

let design_arg =
  let doc =
    Printf.sprintf "Design to evaluate. One of: %s."
      (String.concat ", " (List.map (Printf.sprintf "$(b,%s)") design_names))
  in
  Arg.(value & opt string "baseline" & info [ "d"; "design" ] ~docv:"NAME" ~doc)

let scope_arg =
  let doc = "Failure scope: $(b,object), $(b,array) or $(b,site)." in
  Arg.(value & opt string "array" & info [ "s"; "scope" ] ~docv:"SCOPE" ~doc)

let target_age_arg =
  let doc =
    "Recovery target age in hours before the failure (0 = just before; \
     object scope defaults to 24)."
  in
  Arg.(value & opt float 0. & info [ "target-age" ] ~docv:"HOURS" ~doc)

(* Configuration problems (malformed environment, unreadable input
   files) claim the documented exit code 2 directly — the same code
   `ssdep lint` uses for errors and `ssdep fuzz` for bad usage — rather
   than going through cmdliner's 124 reserved for command-line parse
   errors. *)
let config_error msg =
  Fmt.epr "ssdep: %s@." msg;
  Format.pp_print_flush Format.std_formatter ();
  Stdlib.exit 2

(* Design files are loaded through one helper so every subcommand agrees:
   a missing or unreadable path is a configuration error (exit 2, message
   names the file), a file that reads but does not parse is an ordinary
   command error (cmdliner's error path). *)
let load_design ?validate path =
  match Storage_spec.Spec.load_design_file ?validate path with
  | Ok d -> Ok d
  | Error (Storage_spec.Spec.Unreadable m) -> config_error m
  | Error (Storage_spec.Spec.Invalid m) -> Error m

let load_scenarios path =
  match Storage_spec.Spec.load_scenarios_file path with
  | Ok s -> Ok s
  | Error (Storage_spec.Spec.Unreadable m) -> config_error m
  | Error (Storage_spec.Spec.Invalid m) -> Error m

(* --jobs and SSDEP_JOBS share Engine.parse_jobs, so the flag and the
   environment variable accept exactly the same language; the variable
   itself is resolved (and rejected with exit 2) in Engine.of_cli. *)
let jobs_conv =
  let parse s =
    Result.map_error
      (fun m -> `Msg m)
      (Storage_optimize.Engine.parse_jobs s)
  in
  Arg.conv (parse, Fmt.int)

let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
      Error
        (`Msg
           (Printf.sprintf "invalid count %S, expected a positive integer" s))
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  let doc =
    "Evaluate on $(docv) domains in parallel (default 1 = serial). The \
     $(b,SSDEP_JOBS) environment variable supplies the default when the \
     flag is absent; a malformed value there is a configuration error \
     (exit 2), never a silent serial fallback. Results are identical to \
     a serial run, whatever the value."
  in
  Arg.(
    value & opt (some jobs_conv) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let chunk_arg =
  let doc =
    "Force the parallel scheduling granularity: deal contiguous batches \
     of $(docv) evaluations per pool task (default: auto-sized from the \
     streaming window and $(b,--jobs)). Results are identical whatever \
     the value; only dispatch overhead changes. Ignored when serial."
  in
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "chunk" ] ~docv:"N" ~doc)

(* --- engine statistics (observability layer) --- *)

let stats_arg =
  let doc =
    "Record engine statistics (per-stage evaluation timings, cache hit \
     rates, per-domain task counts, simulator event counts) and print \
     them as a table after the command's output. Recording never changes \
     a result."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc =
    "Write the recorded engine statistics as a JSON snapshot to $(docv) \
     (implies recording, independently of $(b,--stats))."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

(* Wrap a command body: enable recording up front when asked, and emit the
   table / JSON snapshot after a successful run. *)
let with_stats stats stats_json body =
  let wanted = stats || stats_json <> None in
  if wanted then Storage_obs.enable ();
  let result = body () in
  (match result with
  | Ok () when wanted -> (
    if stats then Fmt.pr "@.%s@." (Fmt.str "%a" Storage_obs.pp_table ());
    match stats_json with
    | None -> Ok ()
    | Some path -> (
      match
        Out_channel.with_open_text path (fun oc ->
            output_string oc
              (Storage_report.Json.to_string_pretty (Storage_obs.snapshot ()));
            output_char oc '\n')
      with
      | () ->
        Fmt.pr "stats written to %s@." path;
        Ok ()
      | exception Sys_error m -> Error m))
  | other -> other)

(* One construction point for the execution engine: --jobs (or
   SSDEP_JOBS) and --stats flow through [Engine.of_cli], and the command
   body receives a ready engine that is shut down on the way out. A
   malformed SSDEP_JOBS surfaces here as a configuration error. *)
let with_engine ?chunk ~jobs ~stats ~stats_json body =
  with_stats stats stats_json @@ fun () ->
  match
    Storage_optimize.Engine.of_cli ?chunk ~jobs
      ~stats:(stats || stats_json <> None)
      ()
  with
  | Error msg -> config_error msg
  | Ok engine ->
    Fun.protect
      ~finally:(fun () -> Storage_optimize.Engine.shutdown engine)
      (fun () -> body engine)

(* --- tables --- *)

let tables_cmd =
  let only =
    let doc =
      "Print a single artifact: table2..table7 or figure2..figure5."
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAME" ~doc)
  in
  let run only =
    match only with
    | None ->
      Paper_tables.print_all ();
      Ok ()
    | Some name -> (
      let render =
        match name with
        | "table2" -> Some Paper_tables.table2
        | "table3" -> Some Paper_tables.table3
        | "table4" -> Some Paper_tables.table4
        | "figure1" -> Some Paper_tables.figure1
        | "figure2" -> Some Paper_tables.figure2
        | "table5" -> Some Paper_tables.table5
        | "table6" -> Some Paper_tables.table6
        | "table7" -> Some Paper_tables.table7
        | "figure3" -> Some Paper_tables.figure3
        | "figure4" -> Some Paper_tables.figure4
        | "figure5" -> Some Paper_tables.figure5
        | _ -> None
      in
      match render with
      | Some f ->
        print_endline (f ());
        Ok ()
      | None -> Error (Printf.sprintf "unknown artifact %S" name))
  in
  let term = Term.(const run $ only) in
  let info =
    Cmd.info "tables" ~doc:"Reproduce the paper's tables and figures."
  in
  Cmd.v info Term.(term_result' term)

(* Non-error lint findings shown alongside textual evaluation output: the
   numbers are still valid (errors would not be), but the design deserves
   a second look. *)
let print_advisories d =
  let found = Storage_lint.check_design d in
  List.iter
    (fun diag -> Fmt.pr "lint: %a@." Storage_lint.Diagnostic.pp diag)
    (Storage_lint.warnings found @ Storage_lint.infos found)

(* --- evaluate --- *)

let file_arg =
  let doc =
    "Load the design (and its [scenario] sections) from a design-language \
     file instead of a preset; see examples/designs/."
  in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON instead of the textual report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let evaluate_cmd =
  let print_reports json d named =
    if json then
      print_endline
        (Storage_report.Json.to_string_pretty (Json_output.reports named))
    else begin
      print_advisories d;
      List.iter
        (fun (name, r) ->
          Fmt.pr "--- scenario %s ---@.%a@.@." name Evaluate.pp r)
        named
    end
  in
  let run design file scope target_age json stats stats_json =
    with_stats stats stats_json @@ fun () ->
    match file with
    | Some path -> (
      match load_design path with
      | Error e -> Error e
      | Ok d -> (
        match load_scenarios path with
        | Error e -> Error e
        | Ok [] -> (
          match scenario_of_scope ~target_age scope with
          | Error e ->
            Error
              (e ^ " (the file defines no [scenario] sections to use instead)")
          | Ok scenario ->
            print_reports json d [ (scope, Evaluate.run d scenario) ];
            Ok ())
        | Ok scenarios ->
          print_reports json d
            (List.map
               (fun (name, scenario) -> (name, Evaluate.run d scenario))
               scenarios);
          Ok ()))
    | None -> (
      match find_design design with
      | Error e -> Error e
      | Ok d -> (
        match scenario_of_scope ~target_age scope with
        | Error e -> Error e
        | Ok scenario ->
          let report = Evaluate.run d scenario in
          if json then
            print_endline
              (Storage_report.Json.to_string_pretty
                 (Json_output.report report))
          else begin
            print_advisories d;
            Fmt.pr "%a@." Evaluate.pp report
          end;
          Ok ()))
  in
  let term =
    Term.(
      const run $ design_arg $ file_arg $ scope_arg $ target_age_arg
      $ json_arg $ stats_arg $ stats_json_arg)
  in
  let info =
    Cmd.info "evaluate"
      ~doc:
        "Evaluate a design under failure scenarios (full report). Designs \
         come from the built-in presets or from a design-language file."
  in
  Cmd.v info Term.(term_result' term)

(* --- check --- *)

let check_cmd =
  let file =
    let doc = "Design-language file to parse and validate." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run path =
    match load_design path with
    | Error e -> Error e
    | Ok d ->
      Fmt.pr "%a@.@." Design.pp d;
      Fmt.pr "%a@." Utilization.pp (Utilization.compute d);
      let warnings =
        Storage_hierarchy.Hierarchy.warnings d.Design.hierarchy
      in
      List.iter (Fmt.pr "warning: %s@.") warnings;
      (match Storage_spec.Spec.scenarios_of_file path with
      | Ok scenarios ->
        List.iter (fun (name, _) -> Fmt.pr "scenario: %s@." name) scenarios
      | Error _ -> ());
      Fmt.pr "design OK@.";
      Ok ()
  in
  let info =
    Cmd.info "check"
      ~doc:"Parse a design-language file and validate the design."
  in
  Cmd.v info Term.(term_result' Term.(const run $ file))

(* --- lint --- *)

let lint_cmd =
  let target =
    let doc =
      "Design to lint: a design-language file (checked together with its \
       [scenario] sections) when $(docv) names an existing file, otherwise \
       a preset design checked under the three baseline failure scenarios."
    in
    Arg.(value & pos 0 string "baseline" & info [] ~docv:"DESIGN" ~doc)
  in
  let deny_warnings =
    let doc = "Exit nonzero on warnings too, not only on errors (for CI)." in
    Arg.(value & flag & info [ "deny-warnings" ] ~doc)
  in
  let run target json deny_warnings =
    let loaded =
      if Sys.file_exists target && not (Sys.is_directory target) then
        match load_design ~validate:false target with
        | Error e -> Error e
        | Ok d -> (
          match load_scenarios target with
          | Error e -> Error e
          | Ok scenarios -> Ok (d, scenarios))
      else
        match find_design target with
        | Error e -> config_error (e ^ " (and no such file)")
        | Ok d ->
          Ok
            ( d,
              [
                ("user error", Baseline.scenario_object);
                ("array failure", Baseline.scenario_array);
                ("site disaster", Baseline.scenario_site);
              ] )
    in
    match loaded with
    | Error e -> Error e
    | Ok (d, scenarios) ->
      let found = Storage_lint.check ~scenarios d in
      if json then
        print_endline
          (Storage_report.Json.to_string_pretty
             (Storage_lint.to_json ~design:d.Design.name found))
      else Fmt.pr "%a@." Storage_lint.pp found;
      (match Storage_lint.exit_code ~deny_warnings found with
      | 0 -> Ok ()
      | code ->
        (* Findings are a reportable outcome, not a CLI failure: claim the
           documented exit codes (1 = warnings denied, 2 = errors) directly
           rather than going through cmdliner's error path. *)
        Format.pp_print_flush Format.std_formatter ();
        Stdlib.exit code)
  in
  let term = Term.(const run $ target $ json_arg $ deny_warnings) in
  let info =
    Cmd.info "lint"
      ~doc:
        "Statically analyze a design against the SSDEP rule set: stable \
         rule codes, severities and structured locations, as a table or \
         JSON. Exits 2 when errors are found, 1 for warnings under \
         $(b,--deny-warnings), 0 when clean. This command checks storage \
         $(i,designs); the separate $(b,sslint) tool checks this \
         project's own OCaml sources (SA rules)."
  in
  Cmd.v info Term.(term_result' term)

(* --- whatif --- *)

let whatif_cmd =
  let run () =
    print_endline (Paper_tables.table7 ());
    Ok ()
  in
  let info =
    Cmd.info "whatif" ~doc:"Compare all what-if designs (Table 7)."
  in
  Cmd.v info Term.(term_result' (Term.(const run $ const ())))

(* --- simulate --- *)

let simulate_cmd =
  let warmup =
    let doc = "Normal-mode warmup before the failure, in days." in
    Arg.(value & opt float 84. & info [ "warmup" ] ~docv:"DAYS" ~doc)
  in
  let sweep =
    let doc =
      "Run N additional simulations with the failure instant swept across \
       one backup cycle, reporting min/max measured loss."
    in
    Arg.(value & opt int 0 & info [ "sweep" ] ~docv:"N" ~doc)
  in
  let outage =
    let doc =
      "Suppress the technique at LEVEL for the last HOURS of the warmup \
       (format LEVEL:HOURS), injecting the failure during the outage."
    in
    Arg.(value & opt (some string) None & info [ "outage" ] ~docv:"LEVEL:HOURS" ~doc)
  in
  let parse_outage = function
    | None -> Ok None
    | Some raw -> (
      match String.split_on_char ':' raw with
      | [ level; hours ] -> (
        match (int_of_string_opt level, float_of_string_opt hours) with
        | Some level, Some hours when hours >= 0. ->
          Ok (Some (level, Duration.hours hours))
        | _ -> Error (Printf.sprintf "malformed outage %S" raw))
      | _ -> Error (Printf.sprintf "outage must be LEVEL:HOURS, got %S" raw))
  in
  let trace =
    let doc = "Print the last N simulated events (captures, propagations, \
               recovery milestones)."
    in
    Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc)
  in
  let run design scope target_age warmup sweep outage trace chunk jobs stats
      stats_json =
    with_engine ?chunk ~jobs ~stats ~stats_json @@ fun engine ->
    match find_design design with
    | Error e -> Error e
    | Ok d -> (
      match scenario_of_scope ~target_age scope with
      | Error e -> Error e
      | Ok scenario ->
      match parse_outage outage with
      | Error e -> Error e
      | Ok outage ->
        let config =
          { Storage_sim.Sim.warmup = Duration.days warmup; log = false;
            outage; record_events = trace > 0 }
        in
        let show tag (m : Storage_sim.Sim.measured) =
          Fmt.pr "%s: source=%a measured DL=%a measured RT=%a@." tag
            Fmt.(option ~none:(any "none") int)
            m.Storage_sim.Sim.source_level Data_loss.pp_loss
            m.Storage_sim.Sim.data_loss
            Fmt.(option ~none:(any "n/a") Duration.pp)
            m.Storage_sim.Sim.recovery_time
        in
        let m = Storage_sim.Sim.run ~config d scenario in
        show "simulated" m;
        (if trace > 0 then begin
           let events = m.Storage_sim.Sim.timeline in
           let skip = max 0 (List.length events - trace) in
           List.iteri
             (fun i (t, msg) ->
               if i >= skip then
                 Fmt.pr "  t=%a %s@." Duration.pp t msg)
             events
         end);
        let model = Evaluate.run d scenario in
        Fmt.pr "model:     worst-case DL=%a RT=%a@." Data_loss.pp_loss
          model.Evaluate.data_loss.Data_loss.loss Duration.pp
          model.Evaluate.recovery_time;
        (match outage with
        | Some (level, duration) ->
          let degraded =
            Degraded.evaluate d ~disabled_level:level ~outage:duration
              scenario
          in
          Fmt.pr "degraded:  worst-case DL=%a (level %d down %a)@."
            Data_loss.pp_loss degraded.Degraded.data_loss.Data_loss.loss level
            Duration.pp duration
        | None -> ());
        if sweep > 0 then begin
          let offsets =
            List.init sweep (fun i ->
                Duration.hours (float_of_int (i + 1) *. 168. /. float_of_int sweep))
          in
          let runs =
            Storage_sim.Sim.sweep_failure_phase ~engine ~config d scenario
              ~offsets
          in
          List.iteri
            (fun i m -> show (Printf.sprintf "sweep %2d" (i + 1)) m)
            runs
        end;
        Ok ())
  in
  let term =
    Term.(
      const run $ design_arg $ scope_arg $ target_age_arg $ warmup $ sweep
      $ outage $ trace $ chunk_arg $ jobs_arg $ stats_arg $ stats_json_arg)
  in
  let info =
    Cmd.info "simulate"
      ~doc:
        "Execute the design in the discrete-event simulator and compare the \
         measured recovery against the analytical worst case."
  in
  Cmd.v info Term.(term_result' term)

(* --- optimize --- *)

let optimize_cmd =
  let rto =
    let doc = "Recovery time objective in hours (constraint)." in
    Arg.(value & opt (some float) None & info [ "rto" ] ~docv:"HOURS" ~doc)
  in
  let rpo =
    let doc = "Recovery point objective in hours (constraint)." in
    Arg.(value & opt (some float) None & info [ "rpo" ] ~docv:"HOURS" ~doc)
  in
  let top_k =
    let doc =
      "Keep only the $(docv) cheapest feasible designs (streaming \
       truncation: search memory stays O(frontier + K) however large \
       the grid) and print them after the frontier."
    in
    Arg.(value & opt (some positive_int_conv) None
         & info [ "top-k" ] ~docv:"K" ~doc)
  in
  let grid_scale =
    let doc =
      "Densify the candidate grid (O($(docv)^3) candidates; 1 = the \
       default ~100-design grid). Large grids are meant for --top-k \
       streaming searches."
    in
    Arg.(value & opt positive_int_conv 1 & info [ "grid-scale" ] ~docv:"S" ~doc)
  in
  let max_candidates =
    let doc =
      "Refuse to search a grid with more than $(docv) candidate designs \
       (counted lazily before evaluating anything)."
    in
    Arg.(value & opt (some positive_int_conv) None
         & info [ "max-candidates" ] ~docv:"N" ~doc)
  in
  let solver_arg =
    let doc =
      "Search method: $(b,grid) evaluates the whole grid (the streaming \
       reference), $(b,anneal) runs seeded simulated annealing within \
       $(b,--budget) proposals, $(b,bnb) runs branch-and-bound pruning \
       subtrees with the lint feasibility frontier and a monotone cost \
       bound. All methods report byte-identically whatever $(b,--jobs) is."
    in
    let method_conv =
      Arg.conv
        ( (fun s ->
            Result.map_error
              (fun m -> `Msg m)
              (Storage_optimize.Solver.method_of_string s)),
          fun ppf m ->
            Fmt.string ppf (Storage_optimize.Solver.method_name m) )
    in
    Arg.(value & opt method_conv Storage_optimize.Solver.Grid
         & info [ "solver" ] ~docv:"METHOD" ~doc)
  in
  let budget_arg =
    let doc =
      "Annealing proposal budget (grid-cell visits; ignored by \
       $(b,--solver grid) and $(b,bnb)). A budget of 4x the grid makes \
       annealing provably exhaustive; a larger budget never returns a \
       worse design than a smaller one."
    in
    Arg.(value & opt (some positive_int_conv) None
         & info [ "budget" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Solver seed (decimal or 0x-hex; default: the engine's session \
       seed). A fixed seed reproduces the report byte-for-byte whatever \
       $(b,--jobs) is."
    in
    let solver_seed_conv =
      let parse s =
        match Int64.of_string_opt s with
        | Some n -> Ok n
        | None ->
          Error (`Msg (Printf.sprintf "invalid seed %S, expected an integer" s))
      in
      Arg.conv (parse, fun ppf n -> Fmt.pf ppf "0x%Lx" n)
    in
    Arg.(value & opt (some solver_seed_conv) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let portfolio_arg =
    let doc =
      "Optimize the object class described by this design file jointly \
       with the other $(docv) members (repeatable): each member gets its \
       own design, members price each other's load on the shared \
       hardware, and the assignment rolls up into one site-level summary."
    in
    Arg.(value & opt_all file [] & info [ "portfolio" ] ~docv:"FILE" ~doc)
  in
  let run rto rpo top_k grid_scale max_candidates solver budget seed portfolio
      json chunk jobs stats stats_json =
    with_engine ?chunk ~jobs ~stats ~stats_json @@ fun engine ->
    let module Solver = Storage_optimize.Solver in
    let business =
      Business.make
        ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
        ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
        ?recovery_time_objective:(Option.map Duration.hours rto)
        ?recovery_point_objective:(Option.map Duration.hours rpo)
        ()
    in
    let kit = Whatif.search_kit ~business () in
    let space = Whatif.search_space ~scale:grid_scale () in
    let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ] in
    let legacy = solver = Solver.Grid && portfolio = [] && not json in
    if (top_k <> None || max_candidates <> None) && not legacy then
      Error
        "--top-k and --max-candidates apply to the default grid search \
         only (no --solver, --portfolio or --json)"
    else if portfolio <> [] && (rto <> None || rpo <> None) then
      Error
        "--rto/--rpo conflict with --portfolio: each member's objectives \
         come from its design file"
    else if legacy then begin
      let candidates = Storage_optimize.Candidate.enumerate kit space in
      let over_budget =
        (* Enumeration is lazy and persistent, so counting here builds one
           design at a time and retains none of them. *)
        match max_candidates with
        | None -> None
        | Some bound ->
          let n = Seq.length candidates in
          if n > bound then Some (n, bound) else None
      in
      match over_budget with
      | Some (n, bound) ->
        Error
          (Printf.sprintf
             "grid has %d candidate designs, over the --max-candidates budget \
              of %d; raise the budget or lower --grid-scale"
             n bound)
      | None ->
        let result =
          Storage_optimize.Search.run ~engine ?top_k candidates scenarios
        in
        Fmt.pr "%a@." Storage_optimize.Search.pp result;
        (match top_k with
        | None -> ()
        | Some k ->
          Fmt.pr "top %d feasible (of %d):@." (min k result.feasible_count)
            result.Storage_optimize.Search.feasible_count;
          List.iteri
            (fun i s ->
              Fmt.pr "  %2d. %a@." (i + 1) Storage_optimize.Objective.pp s)
            result.Storage_optimize.Search.feasible);
        Ok ()
    end
    else if portfolio = [] then begin
      let result =
        Solver.run ~engine ?budget ?seed ~method_:solver kit space scenarios
      in
      if json then
        print_endline
          (Storage_report.Json.to_string_pretty (Solver.to_json result))
      else Fmt.pr "%a@." Solver.pp result;
      Ok ()
    end
    else begin
      let ( let* ) = Result.bind in
      let* members =
        List.fold_left
          (fun acc path ->
            let* acc = acc in
            let* d = load_design path in
            Ok (Solver.member_of_design d :: acc))
          (Ok []) portfolio
        |> Result.map List.rev
      in
      let labels = List.map (fun m -> m.Solver.label) members in
      if
        List.length labels
        <> List.length (List.sort_uniq String.compare labels)
      then Error "--portfolio members must have distinct design names"
      else begin
        let result =
          Solver.solve_portfolio ~engine ?budget ?seed ~method_:solver ~kit
            ~space ~members scenarios
        in
        if json then
          print_endline
            (Storage_report.Json.to_string_pretty
               (Solver.portfolio_to_json result))
        else Fmt.pr "%a@." Solver.pp_portfolio result;
        Ok ()
      end
    end
  in
  let term =
    Term.(
      const run $ rto $ rpo $ top_k $ grid_scale $ max_candidates $ solver_arg
      $ budget_arg $ seed_arg $ portfolio_arg $ json_arg $ chunk_arg
      $ jobs_arg $ stats_arg $ stats_json_arg)
  in
  let info =
    Cmd.info "optimize"
      ~doc:
        "Search the design space for the cheapest design meeting the given \
         RTO/RPO under array and site failures — exhaustively, by seeded \
         simulated annealing, or by branch-and-bound; single designs or \
         joint portfolios."
  in
  Cmd.v info Term.(term_result' term)

(* --- characterize --- *)

let characterize_cmd =
  let seed =
    let doc = "PRNG seed for the synthetic trace." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let days =
    let doc = "Length of the generated trace in days." in
    Arg.(value & opt float 7. & info [ "days" ] ~docv:"D" ~doc)
  in
  let save =
    let doc = "Write the generated trace to a CSV file." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let load =
    let doc =
      "Characterize an existing trace CSV instead of generating one."
    in
    Arg.(value & opt (some file) None & info [ "load" ] ~docv:"FILE" ~doc)
  in
  let import =
    let doc =
      "Characterize an external text block-trace (\"time op offset \
       length\" lines) using 64 KiB blocks over a 4 GiB object."
    in
    Arg.(value & opt (some file) None & info [ "import" ] ~docv:"FILE" ~doc)
  in
  let run seed days save load import =
    let open Storage_workload in
    let trace_result =
      match (load, import) with
      | Some _, Some _ -> Error "--load and --import are mutually exclusive"
      | Some path, None -> Trace_io.load_csv ~path
      | None, Some path ->
        Trace_io.import_text ~block_size:(Size.kib 64.)
          ~data_capacity:(Size.gib 4.) ~path
      | None, None ->
        Ok
          (Trace.generate ~seed:(Int64.of_int seed) Cello.trace_profile
             (Duration.days days))
    in
    match trace_result with
    | Error e -> Error e
    | Ok trace -> (
      let span = Trace.duration trace in
      if Duration.to_seconds span <= 0. then Error "trace is empty"
      else begin
      let windows =
        match
          List.filter
            (fun w -> Duration.compare w span < 0)
            Cello.batch_windows
        with
        | [] -> [ Duration.scale 0.5 span ] (* very short trace *)
        | ws -> ws
      in
      let workload =
        Trace_stats.to_workload ~name:"synthetic-cello" ~windows trace
      in
      Fmt.pr "events: %d, raw bytes: %a@." (Trace.event_count trace) Size.pp
        (Trace.total_bytes trace);
      Fmt.pr "%a@." Workload.pp workload;
      match save with
      | None -> Ok ()
      | Some path -> (
        match Trace_io.save_csv trace ~path with
        | Ok () ->
          Fmt.pr "trace written to %s@." path;
          Ok ()
        | Error e -> Error e)
      end)
  in
  let term = Term.(const run $ seed $ days $ save $ load $ import) in
  let info =
    Cmd.info "characterize"
      ~doc:
        "Generate a synthetic cello-like update trace and run the Table 2 \
         workload characterization pipeline on it."
  in
  Cmd.v info Term.(term_result' term)

(* --- risk --- *)

let risk_cmd =
  let object_freq =
    let doc = "Expected user-error incidents per year." in
    Arg.(value & opt float 12. & info [ "object-per-year" ] ~docv:"F" ~doc)
  in
  let array_freq =
    let doc = "Expected array failures per year." in
    Arg.(value & opt float 0.2 & info [ "array-per-year" ] ~docv:"F" ~doc)
  in
  let site_freq =
    let doc = "Expected site disasters per year." in
    Arg.(value & opt float 0.01 & info [ "site-per-year" ] ~docv:"F" ~doc)
  in
  let horizon =
    let doc =
      "Also sample a Monte-Carlo cost distribution over this many years."
    in
    Arg.(value & opt (some float) None & info [ "monte-carlo" ] ~docv:"YEARS" ~doc)
  in
  let run design object_freq array_freq site_freq horizon =
    match find_design design with
    | Error e -> Error e
    | Ok d ->
      let weighted =
        [
          { Risk.scenario = Baseline.scenario_object;
            frequency_per_year = object_freq };
          { Risk.scenario = Baseline.scenario_array;
            frequency_per_year = array_freq };
          { Risk.scenario = Baseline.scenario_site;
            frequency_per_year = site_freq };
        ]
      in
      Fmt.pr "%a@." Risk.pp (Risk.assess d weighted);
      (match horizon with
      | Some years when years > 0. ->
        Fmt.pr "%a@." Risk.pp_distribution
          (Risk.monte_carlo d weighted ~horizon_years:years)
      | Some _ -> ()
      | None -> ());
      Ok ()
  in
  let term =
    Term.(
      const run $ design_arg $ object_freq $ array_freq $ site_freq $ horizon)
  in
  let info =
    Cmd.info "risk"
      ~doc:"Frequency-weighted expected annual cost of a design."
  in
  Cmd.v info Term.(term_result' term)

(* --- fleet --- *)

let fleet_cmd =
  let module Fleet = Storage_fleet.Fleet in
  (* The what-if designs plus an m-of-n erasure preset, so the fleet
     command can exercise the technique Table 7 never evaluated. *)
  let fleet_designs =
    designs
    @ [ ("erasure", Whatif.erasure_coded ~fragments:9 ~required:6 ~links:10) ]
  in
  let design_arg =
    let doc =
      Printf.sprintf "Design to evaluate. One of: %s."
        (String.concat ", "
           (List.map (fun (n, _) -> Printf.sprintf "$(b,%s)" n) fleet_designs))
    in
    Arg.(
      value & opt string "baseline" & info [ "d"; "design" ] ~docv:"NAME" ~doc)
  in
  let trials_arg =
    let doc = "Monte-Carlo trials (independent sampled failure traces)." in
    Arg.(value & opt positive_int_conv 1000 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let horizon_arg =
    let doc = "Operating horizon simulated by each trial, in years." in
    Arg.(value & opt float 5. & info [ "horizon-years" ] ~docv:"YEARS" ~doc)
  in
  let seed_arg =
    let doc =
      "Master seed (decimal or 0x-hex). Every trial's trace derives from \
       it through one splitmix64 stream, so a fixed seed reproduces the \
       report byte-for-byte whatever $(b,--jobs) is."
    in
    let seed_conv =
      let parse s =
        match Int64.of_string_opt s with
        | Some n -> Ok n
        | None ->
          Error (`Msg (Printf.sprintf "invalid seed %S, expected an integer" s))
      in
      Arg.conv (parse, fun ppf n -> Fmt.pf ppf "0x%Lx" n)
    in
    Arg.(value & opt seed_conv 0xCA5CADEL & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let afr_arg =
    let doc = "Annualized failure rate per device (fraction per year)." in
    Arg.(value & opt float 0.02 & info [ "afr" ] ~docv:"RATE" ~doc)
  in
  let building_arg =
    let doc = "Correlated whole-building failures per building per year." in
    Arg.(
      value & opt float 0.005 & info [ "building-per-year" ] ~docv:"RATE" ~doc)
  in
  let site_arg =
    let doc = "Correlated site disasters per site per year." in
    Arg.(value & opt float 0.002 & info [ "site-per-year" ] ~docv:"RATE" ~doc)
  in
  let sweep_arg =
    let doc =
      "Instead of one design, sweep the m-of-n erasure-coding parameters: \
       a comma-separated list of $(i,m):$(i,n) pairs (fragments needed : \
       fragments stored), e.g. $(b,6:9,9:12,12:16)."
    in
    Arg.(
      value & opt (some string) None & info [ "erasure-sweep" ] ~docv:"PAIRS" ~doc)
  in
  let parse_sweep s =
    let pair p =
      match String.split_on_char ':' p with
      | [ m; n ] -> (
        match (int_of_string_opt (String.trim m), int_of_string_opt (String.trim n)) with
        | Some m, Some n when 1 <= m && m <= n -> Ok (m, n)
        | _ -> Error (Printf.sprintf "invalid pair %S, expected m:n with 1 <= m <= n" p))
      | _ -> Error (Printf.sprintf "invalid pair %S, expected m:n" p)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> ( match pair p with Ok x -> go (x :: acc) rest | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)
  in
  let run design trials horizon seed afr building site sweep json jobs chunk
      stats stats_json =
    with_engine ?chunk ~jobs ~stats ~stats_json @@ fun engine ->
    match
      try
        Ok
          (Fleet.config ~trials ~horizon_years:horizon ~seed
             ~rates:
               (Fleet.rates ~default_afr:afr ~building_burst_per_year:building
                  ~site_burst_per_year:site ())
             ())
      with Invalid_argument m -> Error m
    with
    | Error e -> Error e
    | Ok config -> (
      match sweep with
      | Some pairs -> (
        match parse_sweep pairs with
        | Error e -> Error e
        | Ok pairs ->
          let results =
            Fleet.erasure_sweep ~engine ~config
              ~make:(fun ~fragments ~required ->
                Whatif.erasure_coded ~fragments ~required ~links:10)
              pairs
          in
          if json then
            print_endline
              (Storage_report.Json.to_string_pretty
                 (Storage_report.Json.List
                    (List.map (fun (_, _, r) -> Fleet.to_json r) results)))
          else
            List.iter
              (fun (_, _, r) -> Fmt.pr "%a@.@." Fleet.pp r)
              results;
          Ok ())
      | None -> (
        match List.assoc_opt design fleet_designs with
        | None ->
          Error
            (Printf.sprintf "unknown design %S; available: %s" design
               (String.concat ", " (List.map fst fleet_designs)))
        | Some d ->
          let report = Fleet.run ~engine ~config d in
          if json then
            print_endline
              (Storage_report.Json.to_string_pretty (Fleet.to_json report))
          else Fmt.pr "%a@." Fleet.pp report;
          Ok ()))
  in
  let term =
    Term.(
      const run $ design_arg $ trials_arg $ horizon_arg $ seed_arg $ afr_arg
      $ building_arg $ site_arg $ sweep_arg $ json_arg $ jobs_arg $ chunk_arg
      $ stats_arg $ stats_json_arg)
  in
  let info =
    Cmd.info "fleet"
      ~doc:
        "Fleet-scale Monte Carlo availability: sample AFR-driven \
         multi-failure traces per trial and simulate them, reporting \
         availability/durability nines, expected data loss and \
         rebuild-time percentiles."
  in
  Cmd.v info Term.(term_result' term)

(* --- degraded --- *)

let degraded_cmd =
  let level =
    let doc = "Hierarchy level whose technique is out of service (1-based)." in
    Arg.(value & opt int 2 & info [ "level" ] ~docv:"N" ~doc)
  in
  let outage =
    let doc = "How long the technique has been down, in hours." in
    Arg.(value & opt float 168. & info [ "outage" ] ~docv:"HOURS" ~doc)
  in
  let run design scope target_age level outage =
    match find_design design with
    | Error e -> Error e
    | Ok d -> (
      match scenario_of_scope ~target_age scope with
      | Error e -> Error e
      | Ok scenario ->
        (try
           Fmt.pr "%a@." Degraded.pp
             (Degraded.evaluate d ~disabled_level:level
                ~outage:(Duration.hours outage) scenario);
           Ok ()
         with Invalid_argument m -> Error m))
  in
  let term =
    Term.(const run $ design_arg $ scope_arg $ target_age_arg $ level $ outage)
  in
  let info =
    Cmd.info "degraded"
      ~doc:
        "Evaluate a failure that strikes while a protection technique is \
         out of service."
  in
  Cmd.v info Term.(term_result' term)

(* --- report --- *)

let report_cmd =
  let out =
    let doc = "Write the markdown report to FILE instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let with_risk =
    let doc =
      "Append a risk section using the default scenario frequencies \
       (object 12/yr, array 0.2/yr, site 0.01/yr)."
    in
    Arg.(value & flag & info [ "risk" ] ~doc)
  in
  let run design file out with_risk =
    let design_and_scenarios =
      match file with
      | Some path -> (
        match load_design path with
        | Error e -> Error e
        | Ok d -> (
          match load_scenarios path with
          | Error e -> Error e
          | Ok [] ->
            Error "the design file defines no [scenario] sections to report on"
          | Ok scenarios -> Ok (d, scenarios)))
      | None -> (
        match find_design design with
        | Error e -> Error e
        | Ok d ->
          Ok
            ( d,
              [
                ("user error", Baseline.scenario_object);
                ("array failure", Baseline.scenario_array);
                ("site disaster", Baseline.scenario_site);
              ] ))
    in
    match design_and_scenarios with
    | Error e -> Error e
    | Ok (d, scenarios) -> (
      let risk =
        if with_risk then
          Some
            [
              { Risk.scenario = Baseline.scenario_object;
                frequency_per_year = 12. };
              { Risk.scenario = Baseline.scenario_array;
                frequency_per_year = 0.2 };
              { Risk.scenario = Baseline.scenario_site;
                frequency_per_year = 0.01 };
            ]
        else None
      in
      let doc = Summary_report.markdown ?risk d scenarios in
      match out with
      | None ->
        print_string doc;
        Ok ()
      | Some path -> (
        match
          Out_channel.with_open_text path (fun oc -> output_string oc doc)
        with
        | () ->
          Fmt.pr "report written to %s@." path;
          Ok ()
        | exception Sys_error m -> Error m))
  in
  let term = Term.(const run $ design_arg $ file_arg $ out $ with_risk) in
  let info =
    Cmd.info "report"
      ~doc:
        "Render a full markdown dependability report for a design (preset \
         or design-language file)."
  in
  Cmd.v info Term.(term_result' term)

(* --- explain --- *)

let explain_cmd =
  let run design file scope target_age =
    let design_result =
      match file with
      | Some path -> load_design path
      | None -> find_design design
    in
    match design_result with
    | Error e -> Error e
    | Ok d -> (
      match scenario_of_scope ~target_age scope with
      | Error e -> Error e
      | Ok scenario ->
        print_string (Explain.narrative d scenario);
        Ok ())
  in
  let term =
    Term.(const run $ design_arg $ file_arg $ scope_arg $ target_age_arg)
  in
  let info =
    Cmd.info "explain"
      ~doc:
        "Walk through an evaluation step by step: surviving levels, \
         retrieval-point ranges, source selection, and the recovery path's \
         bottlenecks."
  in
  Cmd.v info Term.(term_result' term)

(* --- portfolio --- *)

let portfolio_cmd =
  let files =
    let doc = "Design-language files to consolidate (devices shared by name)." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let run paths =
    let rec load acc = function
      | [] -> Ok (List.rev acc)
      | path :: rest -> (
        match load_design path with
        | Error e -> Error (path ^ ": " ^ e)
        | Ok d -> load ((path, d) :: acc) rest)
    in
    match load [] paths with
    | Error e -> Error e
    | Ok designs -> (
      match Portfolio.make (List.map snd designs) with
      | Error e -> Error e
      | Ok portfolio ->
        Fmt.pr "%a@.@." Portfolio.pp portfolio;
        (match Portfolio.overcommitted portfolio with
        | [] -> Fmt.pr "consolidation fits on the shared hardware@."
        | over ->
          List.iter
            (fun ((d : Storage_device.Device.t), u) ->
              Fmt.pr "OVERCOMMITTED: %s (%a)@." d.Storage_device.Device.name
                Storage_device.Device.pp_utilization u)
            over);
        (* Evaluate each member under its own file's scenarios, with the
           neighbours' load applied. *)
        List.iter
          (fun (path, (original : Design.t)) ->
            match Storage_spec.Spec.scenarios_of_file path with
            | Error _ | Ok [] -> ()
            | Ok scenarios ->
              let member =
                Option.get
                  (Portfolio.member portfolio original.Design.name)
              in
              List.iter
                (fun (name, scenario) ->
                  let r = Evaluate.run member scenario in
                  Fmt.pr "%s / %s: %a@." original.Design.name name
                    Evaluate.pp_summary r)
                scenarios)
          designs;
        Ok ())
  in
  let term = Term.(const run $ files) in
  let info =
    Cmd.info "portfolio"
      ~doc:
        "Consolidate several design files onto shared hardware and evaluate \
         each member under the combined load."
  in
  Cmd.v info Term.(term_result' term)

(* --- fuzz --- *)

let fuzz_cmd =
  let module K = Storage_testkit in
  let seed_arg =
    let doc =
      "Session seed (decimal or 0x-hex). Per-case seeds derive from it \
       through one splitmix64 stream, so the same seed and budget \
       reproduce the same cases, findings and shrunk counterexamples."
    in
    let seed_conv =
      let parse s =
        match Int64.of_string_opt s with
        | Some n -> Ok n
        | None ->
          Error (`Msg (Printf.sprintf "invalid seed %S, expected an integer" s))
      in
      Arg.conv (parse, fun ppf n -> Fmt.pf ppf "0x%Lx" n)
    in
    Arg.(value & opt seed_conv 2004L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let budget_arg =
    let doc =
      "Generate $(docv) fresh cases after corpus replay (0 replays only)."
    in
    Arg.(value & opt int 64 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc =
      "Failure-corpus directory: its $(b,.ssdep) entries are replayed \
       before any generation, and new shrunk counterexamples are written \
       back to it."
    in
    Arg.(value & opt string "test/corpus" & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc =
      "Re-judge a single corpus file against its recorded oracle and exit \
       (1 if it still fails, 0 if fixed); no generation."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let oracle_arg =
    let doc =
      "Restrict the run to oracle $(docv) (repeatable); see \
       $(b,--list-oracles)."
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let list_arg =
    let doc = "List the registered oracles and exit." in
    Arg.(value & flag & info [ "list-oracles" ] ~doc)
  in
  let print_finding (f : K.Fuzz.finding) =
    let e = f.K.Fuzz.entry in
    Fmt.pr "FAIL %s: %s@." e.K.Corpus.oracle e.K.Corpus.message;
    Fmt.pr "  case %d, seed 0x%Lx%s@." e.K.Corpus.case_index e.K.Corpus.seed
      (if f.K.Fuzz.replayed then " (corpus replay)"
       else Printf.sprintf ", shrunk %d steps" e.K.Corpus.shrink_steps);
    Fmt.pr "  design: %s@." e.K.Corpus.design.Design.name;
    match f.K.Fuzz.file with
    | Some path -> Fmt.pr "  corpus: %s@." path
    | None -> ()
  in
  let exit_with code =
    Format.pp_print_flush Format.std_formatter ();
    Stdlib.exit code
  in
  let usage msg =
    (* Configuration problems claim the documented exit code 2 directly,
       like `ssdep lint` does for its finding codes. *)
    Fmt.pr "ssdep fuzz: %s@." msg;
    exit_with 2
  in
  let run seed budget corpus replay oracle_names list_oracles chunk jobs
      stats stats_json =
    if list_oracles then begin
      List.iter
        (fun (o : K.Oracle.t) ->
          Fmt.pr "%-24s %s@." o.K.Oracle.name o.K.Oracle.doc)
        K.Oracle.all;
      Ok ()
    end
    else begin
      if budget < 0 then usage "budget must be non-negative";
      let oracles =
        match oracle_names with
        | [] -> K.Oracle.defaults
        | names ->
          List.map
            (fun n ->
              match K.Oracle.find n with
              | Some o -> o
              | None ->
                usage
                  (Printf.sprintf "unknown oracle %S (try --list-oracles)" n))
            names
      in
      with_engine ?chunk ~jobs ~stats ~stats_json @@ fun engine ->
      match replay with
      | Some path -> (
        match K.Fuzz.replay ~engine path with
        | Error msg -> usage msg
        | Ok None ->
          Fmt.pr "%s: no longer failing@." path;
          Ok ()
        | Ok (Some f) ->
          print_finding f;
          exit_with 1)
      | None -> (
        match
          K.Fuzz.run ~oracles ~corpus_dir:corpus ~engine ~seed ~budget ()
        with
        | Error msg -> usage msg
        | Ok o ->
          Fmt.pr "fuzz: seed 0x%Lx, budget %d, %d oracle%s@." seed budget
            (List.length oracles)
            (if List.length oracles = 1 then "" else "s");
          if o.K.Fuzz.replayed > 0 then
            Fmt.pr "corpus: replayed %d, fixed %d@." o.K.Fuzz.replayed
              o.K.Fuzz.fixed;
          Fmt.pr "findings: %d@." (List.length o.K.Fuzz.findings);
          List.iter print_finding o.K.Fuzz.findings;
          if o.K.Fuzz.findings <> [] then exit_with 1 else Ok ())
    end
  in
  let term =
    Term.(
      const run $ seed_arg $ budget_arg $ corpus_arg $ replay_arg $ oracle_arg
      $ list_arg $ chunk_arg $ jobs_arg $ stats_arg $ stats_json_arg)
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Generative conformance testing: seeded random designs and \
         workloads judged by differential and metamorphic oracles \
         (analytic vs simulation, streaming vs materialized, parallel \
         and cache invariance, monotonicity laws), with counterexamples \
         shrunk to minimal form and persisted to a replayable corpus. \
         Exits 1 when a counterexample is found, 2 on configuration \
         errors, 0 when clean."
  in
  Cmd.v info Term.(term_result' term)

(* --- serve --- *)

let serve_cmd =
  let module Server = Storage_serve.Server in
  let port =
    let doc = "TCP port to listen on (0 picks an ephemeral port)." in
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let workers =
    let doc = "Handler domains draining the admission queue." in
    Arg.(value & opt positive_int_conv Server.default_config.Server.workers
         & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue =
    let doc =
      "Admission-queue bound: connections beyond $(docv) waiting for a \
       worker are answered 429 immediately (back-pressure, never \
       unbounded queueing)."
    in
    Arg.(value & opt positive_int_conv
           Server.default_config.Server.queue_capacity
         & info [ "queue" ] ~docv:"N" ~doc)
  in
  let shards =
    let doc = "Evaluation-cache shards (keyed by design fingerprint)." in
    Arg.(value & opt positive_int_conv Server.default_config.Server.shards
         & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_body =
    let doc = "Request-body byte limit (413 beyond it)." in
    Arg.(value & opt positive_int_conv Server.default_config.Server.max_body
         & info [ "max-body" ] ~docv:"BYTES" ~doc)
  in
  let timeout =
    let doc = "Per-connection read/write timeout in seconds." in
    Arg.(value & opt float Server.default_config.Server.timeout
         & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let run port workers queue shards max_body timeout chunk jobs =
    if timeout <= 0. then
      config_error "serve: --timeout must be a positive number of seconds";
    (* The daemon's /stats endpoint is its observability story, so the
       engine always records ([Server.start] turns the registry on). *)
    match Storage_optimize.Engine.of_cli ?chunk ~jobs ~stats:true () with
    | Error msg -> config_error msg
    | Ok engine ->
      Fun.protect
        ~finally:(fun () -> Storage_optimize.Engine.shutdown engine)
      @@ fun () ->
      let config =
        {
          Server.port;
          workers;
          queue_capacity = queue;
          shards;
          max_body;
          timeout;
        }
      in
      let server =
        try Server.start ~config engine with
        | Invalid_argument msg -> config_error msg
        | Unix.Unix_error (err, _, _) ->
          config_error
            (Printf.sprintf "serve: cannot listen on port %d: %s" port
               (Unix.error_message err))
      in
      (* Scripts (CI smoke, the bench load generator) parse this line to
         learn the bound port; keep it first and flushed. *)
      Fmt.pr "listening on http://127.0.0.1:%d@." (Server.port server);
      Format.pp_print_flush Format.std_formatter ();
      let stop_requested = Atomic.make false in
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      while not (Atomic.get stop_requested) do
        try Unix.sleepf 0.2
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (* Graceful drain: stop accepting, answer everything already
         admitted, join the domains, then let [Fun.protect] shut the
         engine down. *)
      Server.stop server;
      Fmt.pr "drained, shutting down@.";
      Ok ()
  in
  let term =
    Term.(
      const run $ port $ workers $ queue $ shards $ max_body $ timeout
      $ chunk_arg $ jobs_arg)
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run a long-lived evaluation service on 127.0.0.1: POST \
         design-language files to /evaluate (JSON byte-identical to \
         $(b,ssdep evaluate --json)) and /lint, search via /optimize, \
         watch /stats, probe /healthz. A warm evaluation cache is \
         shared across requests; a bounded admission queue answers 429 \
         under overload; SIGINT/SIGTERM drain gracefully."
  in
  Cmd.v info Term.(term_result' term)

let main_cmd =
  let doc = "storage system dependability evaluation (DSN 2004 framework)" in
  let info = Cmd.info "ssdep" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      tables_cmd; evaluate_cmd; check_cmd; lint_cmd; whatif_cmd; simulate_cmd;
      fleet_cmd; optimize_cmd; characterize_cmd; risk_cmd; degraded_cmd;
      report_cmd; portfolio_cmd; explain_cmd; fuzz_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
