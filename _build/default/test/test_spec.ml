(* Tests for the design-description language: scalar value parsers, the
   sectioned key-value syntax, and full design assembly (checked for
   equivalence against the programmatic baseline preset). *)

open Storage_units
open Storage_model
open Storage_spec
open Helpers

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected an error" what

(* --- Values --- *)

let test_values_duration () =
  let parse s = Duration.to_seconds (ok_or_fail (Values.duration s)) in
  close "seconds" 90. (parse "90s");
  close "minutes" 120. (parse "2 min");
  close "hours" 3600. (parse "1hr");
  close "fractional" 36. (parse "0.01 hr");
  close "days" 86400. (parse "1d");
  close "weeks" 604800. (parse "1wk");
  close "years" (3. *. 365. *. 86400.) (parse "3yr");
  close "zero" 0. (parse "0");
  close "sum" ((4. *. 604800.) +. (12. *. 3600.)) (parse "4wk + 12hr");
  expect_error "no unit" (Values.duration "5");
  expect_error "bad unit" (Values.duration "5 parsecs");
  expect_error "not a number" (Values.duration "soon")

let test_values_size () =
  let parse s = Size.to_bytes (ok_or_fail (Values.size s)) in
  close "bytes" 512. (parse "512 B");
  close "kib" 1024. (parse "1KiB");
  close "gib" (1360. *. (1024. ** 3.)) (parse "1360 GiB");
  close "paper GB" (73. *. (1024. ** 3.)) (parse "73GB");
  close "tib" (1024. ** 4.) (parse "1 TiB");
  expect_error "missing unit" (Values.size "34");
  expect_error "negative" (Values.size "-1 GiB")

let test_values_rate () =
  let parse s = Rate.to_bytes_per_sec (ok_or_fail (Values.rate s)) in
  close "mib/s" (25. *. 1024. *. 1024.) (parse "25 MiB/s");
  close "kb/s" (727. *. 1024.) (parse "727KB/s");
  close "mbps" (155e6 /. 8.) (parse "155 Mbps");
  expect_error "no unit" (Values.rate "12")

let test_values_money () =
  let parse s = Money.to_usd (ok_or_fail (Values.money s)) in
  close "plain" 123297. (parse "123297");
  close "dollar sign" 98895. (parse "$98895");
  close "thousands" 50_000. (parse "50k");
  close "millions" 1_500_000. (parse "$1.5M");
  expect_error "words" (Values.money "a lot")

let test_values_counted () =
  let n, rest = ok_or_fail (Values.counted "256 x 73 GiB") in
  Alcotest.(check int) "count" 256 n;
  Alcotest.(check string) "rest" "73 GiB" rest;
  expect_error "no x" (Values.counted "256 73GiB");
  expect_error "zero count" (Values.counted "0 x 73GiB")

(* --- Ini --- *)

let test_ini_basic () =
  let sections =
    ok_or_fail
      (Ini.parse
         "# a comment\n\n[alpha]\nkey = value\nother = 1 2 3\n[beta b-arg]\nx = y\n")
  in
  Alcotest.(check int) "two sections" 2 (List.length sections);
  let alpha = ok_or_fail (Ini.find_one sections ~kind:"alpha") in
  Alcotest.(check string) "value" "value" (ok_or_fail (Ini.get alpha "key"));
  Alcotest.(check string) "spaces kept" "1 2 3" (ok_or_fail (Ini.get alpha "other"));
  let beta = ok_or_fail (Ini.find_one sections ~kind:"beta") in
  Alcotest.(check (option string)) "arg" (Some "b-arg") beta.Ini.arg

let test_ini_case_insensitive_keys () =
  let sections = ok_or_fail (Ini.parse "[s]\nKEY = V\n") in
  let s = ok_or_fail (Ini.find_one sections ~kind:"s") in
  Alcotest.(check string) "lowered" "V" (ok_or_fail (Ini.get s "key"))

let test_ini_errors () =
  expect_error "key outside section" (Ini.parse "key = value\n");
  expect_error "duplicate key" (Ini.parse "[s]\na = 1\na = 2\n");
  expect_error "duplicate section" (Ini.parse "[s]\na = 1\n[s]\nb = 2\n");
  expect_error "unterminated header" (Ini.parse "[s\na = 1\n");
  expect_error "garbage line" (Ini.parse "[s]\nnot a key value line\n")

let test_ini_trailing_comments () =
  let sections =
    ok_or_fail (Ini.parse "[s]\nacc = 12hr  # fortnightly would be nicer\nurl = http://x#frag\n")
  in
  let s = ok_or_fail (Ini.find_one sections ~kind:"s") in
  Alcotest.(check string) "comment stripped" "12hr" (ok_or_fail (Ini.get s "acc"));
  Alcotest.(check string) "hash without space kept" "http://x#frag"
    (ok_or_fail (Ini.get s "url"))

let test_ini_unknown_keys () =
  let sections = ok_or_fail (Ini.parse "[s]\ngood = 1\ntypo = 2\n") in
  let s = ok_or_fail (Ini.find_one sections ~kind:"s") in
  Alcotest.(check (list string)) "typo flagged" [ "typo" ]
    (Ini.unknown_keys s ~known:[ "good" ])

(* --- Spec assembly --- *)

let baseline_file = "../examples/designs/baseline.ssdep"

let read path = In_channel.with_open_text path In_channel.input_all

let baseline_text = lazy (read baseline_file)

let test_spec_baseline_parses () =
  let design = ok_or_fail (Spec.design_of_string (Lazy.force baseline_text)) in
  Alcotest.(check string) "name" "cello" design.Design.name;
  Alcotest.(check int) "four levels" 4
    (Storage_hierarchy.Hierarchy.length design.Design.hierarchy)

let test_spec_baseline_equivalent_to_preset () =
  (* The file-described baseline must produce the same headline numbers as
     the programmatic preset. *)
  let from_file = ok_or_fail (Spec.design_of_string (Lazy.force baseline_text)) in
  let check_scenario scenario =
    let a = Evaluate.run from_file scenario in
    let b = Evaluate.run Storage_presets.Baseline.design scenario in
    close ~tol:1e-9 "recovery time"
      (Duration.to_seconds b.Evaluate.recovery_time)
      (Duration.to_seconds a.Evaluate.recovery_time);
    (match (a.Evaluate.data_loss.Data_loss.loss, b.Evaluate.data_loss.Data_loss.loss) with
    | Data_loss.Updates x, Data_loss.Updates y ->
      close ~tol:1e-9 "data loss" (Duration.to_seconds y) (Duration.to_seconds x)
    | Data_loss.Entire_object, Data_loss.Entire_object -> ()
    | _ -> Alcotest.fail "loss class mismatch");
    close ~tol:1e-9 "total cost"
      (Money.to_usd b.Evaluate.total_cost)
      (Money.to_usd a.Evaluate.total_cost)
  in
  List.iter check_scenario Storage_presets.Baseline.scenarios

let test_spec_baseline_scenarios () =
  let scenarios =
    ok_or_fail (Spec.scenarios_of_string (Lazy.force baseline_text))
  in
  Alcotest.(check (list string)) "names"
    [ "user-error"; "array-failure"; "site-disaster" ]
    (List.map fst scenarios)

let minimal =
  {|
[workload]
data_capacity = 10 GiB
avg_access_rate = 1 MiB/s
avg_update_rate = 500 KiB/s
burst_multiplier = 2
batch = 1min: 400 KiB/s, 1hr: 300 KiB/s

[device d]
location = r/s/b
capacity_slots = 10 x 100 GiB
bandwidth_slots = 4 x 50 MiB/s

[level 0]
technique = primary
device = d
raid = raid0

[level 1]
technique = split_mirror
device = d
acc = 6hr
retention = 2

[business]
outage_penalty = $1k/hr
loss_penalty = $1k/hr
|}

let test_spec_minimal () =
  let d = ok_or_fail (Spec.design_of_string minimal) in
  Alcotest.(check bool) "validates" true (Design.validate d = Ok ())

(* Replace the first occurrence of [old_s] in the minimal design (first
   only: replacements may contain the needle). *)
let mutate ~old_s ~new_s =
  let s = minimal in
  let ol = String.length old_s in
  let sl = String.length s in
  let rec find i =
    if i + ol > sl then None
    else if String.sub s i ol = old_s then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "mutate: %S not found in the minimal design" old_s
  | Some i -> String.sub s 0 i ^ new_s ^ String.sub s (i + ol) (sl - i - ol)

let test_spec_errors () =
  expect_error "missing workload"
    (Spec.design_of_string "[business]\noutage_penalty = $1/hr\nloss_penalty = $1/hr\n");
  expect_error "unknown device in level"
    (Spec.design_of_string (mutate ~old_s:"device = d" ~new_s:"device = nope"));
  expect_error "unknown technique"
    (Spec.design_of_string
       (mutate ~old_s:"technique = split_mirror" ~new_s:"technique = warp"));
  expect_error "non-contiguous levels"
    (Spec.design_of_string (mutate ~old_s:"[level 1]" ~new_s:"[level 3]"));
  expect_error "unknown key"
    (Spec.design_of_string
       (mutate ~old_s:"burst_multiplier = 2" ~new_s:"burst_multiplier = 2\nbogus = 1"));
  expect_error "bad penalty rate"
    (Spec.design_of_string
       (mutate ~old_s:"outage_penalty = $1k/hr" ~new_s:"outage_penalty = $1k"));
  expect_error "overcommitted design rejected"
    (Spec.design_of_string
       (mutate ~old_s:"data_capacity = 10 GiB" ~new_s:"data_capacity = 600 GiB"))

let test_spec_incremental_parses () =
  let text =
    mutate ~old_s:"technique = split_mirror\ndevice = d\nacc = 6hr\nretention = 2"
      ~new_s:
        "technique = backup\ndevice = d\nacc = 48hr\nprop = 6hr\nhold = 1hr\n\
         retention = 4\nincremental = cumulative acc=24hr prop=3hr count=1"
  in
  let d = ok_or_fail (Spec.design_of_string text) in
  let level = Storage_hierarchy.Hierarchy.level d.Design.hierarchy 1 in
  match Storage_protection.Technique.schedule level.Storage_hierarchy.Hierarchy.technique with
  | Some s ->
    Alcotest.(check int) "cycle count" 1 s.Storage_protection.Schedule.cycle_count;
    close_duration "cycle period" (Duration.hours 72.)
      (Storage_protection.Schedule.cycle_period s)
  | None -> Alcotest.fail "backup has a schedule"

let with_wan_link text =
  (* A wide-area link for mirror/erasure levels to ride on. *)
  text ^ "\n[link wan]\ntype = network\nbandwidth = 1 x 155 Mbps\n"

let test_spec_erasure_coded () =
  let text =
    with_wan_link
      (mutate
         ~old_s:"technique = split_mirror\ndevice = d\nacc = 6hr\nretention = 2"
         ~new_s:
           "technique = erasure_coded\ndevice = d\nlink = wan\nacc = 1hr\n\
            prop = 1hr\nretention = 24\nfragments = 8\nrequired = 5")
  in
  let d = ok_or_fail (Spec.design_of_string text) in
  let level = Storage_hierarchy.Hierarchy.level d.Design.hierarchy 1 in
  (match level.Storage_hierarchy.Hierarchy.technique with
  | Storage_protection.Technique.Erasure_coded { fragments; required; _ } ->
    Alcotest.(check int) "fragments" 8 fragments;
    Alcotest.(check int) "required" 5 required
  | _ -> Alcotest.fail "expected erasure coding");
  expect_error "fragments < required"
    (Spec.design_of_string
       (with_wan_link
          (mutate
             ~old_s:
               "technique = split_mirror\ndevice = d\nacc = 6hr\nretention = 2"
             ~new_s:
               "technique = erasure_coded\ndevice = d\nlink = wan\nacc = 1hr\n\
                retention = 24\nfragments = 3\nrequired = 5")))

let test_spec_scope_parse () =
  let scenarios =
    ok_or_fail
      (Spec.scenarios_of_string
         "[scenario a]\nscope = object\ntarget_age = 1hr\nobject_size = 2 MiB\n\
          [scenario b]\nscope = region west\n")
  in
  (match scenarios with
  | [ (_, a); (_, b) ] ->
    Alcotest.(check bool) "object scope" true
      (a.Scenario.scope = Storage_device.Location.Data_object);
    Alcotest.(check bool) "region scope" true
      (b.Scenario.scope = Storage_device.Location.Region "west")
  | _ -> Alcotest.fail "expected two scenarios");
  let compound =
    ok_or_fail
      (Spec.scenarios_of_string
         "[scenario double]\nscope = device a + site b\n")
  in
  match compound with
  | [ (_, s) ] ->
    Alcotest.(check bool) "compound scope" true
      (s.Scenario.scope
      = Storage_device.Location.Multiple
          [ Storage_device.Location.Device "a";
            Storage_device.Location.Site "b" ])
  | _ -> Alcotest.fail "expected one scenario"

let suite =
  [
    ( "spec.values",
      [
        Alcotest.test_case "durations" `Quick test_values_duration;
        Alcotest.test_case "sizes" `Quick test_values_size;
        Alcotest.test_case "rates" `Quick test_values_rate;
        Alcotest.test_case "money" `Quick test_values_money;
        Alcotest.test_case "counted" `Quick test_values_counted;
      ] );
    ( "spec.ini",
      [
        Alcotest.test_case "basic parsing" `Quick test_ini_basic;
        Alcotest.test_case "case-insensitive keys" `Quick
          test_ini_case_insensitive_keys;
        Alcotest.test_case "syntax errors" `Quick test_ini_errors;
        Alcotest.test_case "trailing comments" `Quick test_ini_trailing_comments;
        Alcotest.test_case "unknown-key detection" `Quick test_ini_unknown_keys;
      ] );
    ( "spec.design",
      [
        Alcotest.test_case "baseline file parses" `Quick test_spec_baseline_parses;
        Alcotest.test_case "file equals preset" `Quick
          test_spec_baseline_equivalent_to_preset;
        Alcotest.test_case "scenario sections" `Quick test_spec_baseline_scenarios;
        Alcotest.test_case "minimal design" `Quick test_spec_minimal;
        Alcotest.test_case "assembly errors" `Quick test_spec_errors;
        Alcotest.test_case "incremental sub-policy" `Quick
          test_spec_incremental_parses;
        Alcotest.test_case "erasure coding" `Quick test_spec_erasure_coded;
        Alcotest.test_case "scenario scopes" `Quick test_spec_scope_parse;
      ] );
  ]
