(* Unit tests for the dimensioned-quantity library. *)

open Storage_units
open Helpers

let test_size_constructors () =
  close "kib" 1024. (Size.to_bytes (Size.kib 1.));
  close "mib" (1024. *. 1024.) (Size.to_bytes (Size.mib 1.));
  close "gib" (1024. ** 3.) (Size.to_bytes (Size.gib 1.));
  close "tib" (1024. ** 4.) (Size.to_bytes (Size.tib 1.));
  close "roundtrip gib" 1360. (Size.to_gib (Size.gib 1360.));
  close "tib of gib" 1.328125 (Size.to_tib (Size.gib 1360.))

let test_size_validation () =
  check_raises_invalid "negative" (fun () -> Size.bytes (-1.));
  check_raises_invalid "nan" (fun () -> Size.bytes Float.nan);
  check_raises_invalid "inf" (fun () -> Size.bytes Float.infinity);
  check_raises_invalid "neg scale" (fun () -> Size.scale (-2.) (Size.gib 1.))

let test_size_arithmetic () =
  let a = Size.gib 2. and b = Size.gib 3. in
  close_size "add" (Size.gib 5.) (Size.add a b);
  close_size "sub" (Size.gib 1.) (Size.sub b a);
  close_size "sub clamps" Size.zero (Size.sub a b);
  close "ratio" 1.5 (Size.ratio b a);
  close_size "scale" (Size.gib 6.) (Size.scale 3. a);
  close_size "sum" (Size.gib 7.) (Size.sum [ a; b; a ]);
  Alcotest.(check bool) "is_zero" true (Size.is_zero Size.zero);
  Alcotest.(check bool) "not zero" false (Size.is_zero a);
  (match Size.ratio a Size.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "ratio by zero should raise")

let test_size_pp () =
  Alcotest.(check string) "tib" "1.33 TiB" (Size.to_string (Size.gib 1360.));
  Alcotest.(check string) "gib" "2.00 GiB" (Size.to_string (Size.gib 2.));
  Alcotest.(check string) "bytes" "512 B" (Size.to_string (Size.bytes 512.))

let test_duration_constructors () =
  close "minutes" 60. (Duration.to_seconds (Duration.minutes 1.));
  close "hours" 3600. (Duration.to_seconds (Duration.hours 1.));
  close "days" 86400. (Duration.to_seconds (Duration.days 1.));
  close "weeks" 604800. (Duration.to_seconds (Duration.weeks 1.));
  close "years" (365. *. 86400.) (Duration.to_seconds (Duration.years 1.));
  close "to_hours" 26.4 (Duration.to_hours (Duration.hours 26.4));
  close "to_weeks" 4. (Duration.to_weeks (Duration.weeks 4.))

let test_duration_arithmetic () =
  let a = Duration.hours 2. and b = Duration.hours 5. in
  close_duration "add" (Duration.hours 7.) (Duration.add a b);
  close_duration "sub clamp" Duration.zero (Duration.sub a b);
  close "ratio" 2.5 (Duration.ratio b a);
  close_duration "scale" (Duration.hours 6.) (Duration.scale 3. a);
  close_duration "max" b (Duration.max a b);
  close_duration "min" a (Duration.min a b);
  check_raises_invalid "negative" (fun () -> Duration.seconds (-1.))

let test_duration_pp () =
  Alcotest.(check string) "hr" "2.4 hr" (Duration.to_string (Duration.hours 2.4));
  Alcotest.(check string) "wk" "8.5 wk" (Duration.to_string (Duration.weeks 8.5));
  Alcotest.(check string) "sub-second" "0.0040 s"
    (Duration.to_string (Duration.seconds 0.004));
  Alcotest.(check string) "zero" "0 s" (Duration.to_string Duration.zero)

let test_rate_constructors () =
  close "kib/s" 1024. (Rate.to_bytes_per_sec (Rate.kib_per_sec 1.));
  close "mib/s" (1024. *. 1024.) (Rate.to_bytes_per_sec (Rate.mib_per_sec 1.));
  close "mbps" (155. *. 1e6 /. 8.)
    (Rate.to_bytes_per_sec (Rate.megabits_per_sec 155.));
  check_raises_invalid "negative" (fun () -> Rate.bytes_per_sec (-1.))

let test_rate_transfer () =
  let r = Rate.mib_per_sec 100. in
  close_size "over" (Size.mib 6000.) (Rate.over r (Duration.minutes 1.));
  close_duration "time_to_transfer" (Duration.seconds 10.)
    (Rate.time_to_transfer (Size.mib 1000.) r);
  close_duration "transfer zero" Duration.zero
    (Rate.time_to_transfer Size.zero Rate.zero);
  (match Rate.time_to_transfer (Size.mib 1.) Rate.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "zero rate should raise");
  close_rate "of_size_per"
    (Rate.mib_per_sec 100.)
    (Rate.of_size_per (Size.mib 6000.) (Duration.minutes 1.))

let test_money () =
  close "usd" 50_000. (Money.to_usd (Money.usd 50_000.));
  close "millions" 0.97 (Money.to_millions (Money.of_millions 0.97));
  close_money "add" (Money.usd 30.) (Money.add (Money.usd 10.) (Money.usd 20.));
  close_money "sub clamp" Money.zero (Money.sub (Money.usd 10.) (Money.usd 20.));
  Alcotest.(check string) "pp millions" "$0.97M"
    (Money.to_string (Money.of_millions 0.97));
  Alcotest.(check string) "pp thousands" "$98.9k"
    (Money.to_string (Money.usd 98_895.));
  check_raises_invalid "negative" (fun () -> Money.usd (-1.))

let test_money_rate () =
  let rate = Money_rate.usd_per_hour 50_000. in
  close "to_usd_per_hour" 50_000. (Money_rate.to_usd_per_hour rate);
  close_money "charge 217h"
    (Money.usd 10_850_000.)
    (Money_rate.charge rate (Duration.hours 217.));
  close_money "charge zero" Money.zero (Money_rate.charge rate Duration.zero)

let test_age_range () =
  let r =
    Age_range.make ~newest_age:(Duration.hours 12.)
      ~oldest_age:(Duration.hours 36.)
  in
  Alcotest.(check bool) "contains 24" true (Age_range.contains r (Duration.hours 24.));
  Alcotest.(check bool) "contains newest" true
    (Age_range.contains r (Duration.hours 12.));
  Alcotest.(check bool) "contains oldest" true
    (Age_range.contains r (Duration.hours 36.));
  Alcotest.(check bool) "too recent" false
    (Age_range.contains r (Duration.hours 11.));
  Alcotest.(check bool) "too old" false (Age_range.contains r (Duration.hours 37.));
  close_duration "span" (Duration.hours 24.) (Age_range.span r);
  Alcotest.(check bool) "empty" true (Age_range.is_empty Age_range.empty);
  Alcotest.(check bool) "not empty" false (Age_range.is_empty r);
  check_raises_invalid "inverted" (fun () ->
      Age_range.make ~newest_age:(Duration.hours 2.)
        ~oldest_age:(Duration.hours 1.))

(* --- property tests --- *)

let prop_size_add_commutative =
  QCheck.Test.make ~name:"size add commutative" ~count:200
    (QCheck.pair (arb_pos ()) (arb_pos ()))
    (fun (a, b) ->
      let x = Size.bytes a and y = Size.bytes b in
      Size.to_bytes (Size.add x y) = Size.to_bytes (Size.add y x))

let prop_size_sub_never_negative =
  QCheck.Test.make ~name:"size sub clamps at zero" ~count:200
    (QCheck.pair (arb_pos ()) (arb_pos ()))
    (fun (a, b) ->
      Size.to_bytes (Size.sub (Size.bytes a) (Size.bytes b)) >= 0.)

let prop_transfer_roundtrip =
  QCheck.Test.make ~name:"time_to_transfer inverts over" ~count:200
    (QCheck.pair (arb_pos ~lo:1. ~hi:1e12 ()) (arb_pos ~lo:1. ~hi:1e9 ()))
    (fun (bytes, rate) ->
      let size = Size.bytes bytes and r = Rate.bytes_per_sec rate in
      let d = Rate.time_to_transfer size r in
      Float.abs (Size.to_bytes (Rate.over r d) -. bytes) /. bytes < 1e-9)

let prop_duration_ratio_scale =
  QCheck.Test.make ~name:"duration scale then ratio" ~count:200
    (QCheck.pair (arb_pos ~lo:1. ~hi:1e7 ()) (arb_pos ~lo:0.1 ~hi:100. ()))
    (fun (secs, k) ->
      let d = Duration.seconds secs in
      let scaled = Duration.scale k d in
      Float.abs (Duration.ratio scaled d -. k) /. k < 1e-9)

let prop_age_range_contains_bounds =
  QCheck.Test.make ~name:"age range contains its bounds" ~count:200
    (QCheck.pair (arb_pos ~lo:0.001 ~hi:1e7 ()) (arb_pos ~lo:0.001 ~hi:1e7 ()))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let r =
        Age_range.make ~newest_age:(Duration.seconds lo)
          ~oldest_age:(Duration.seconds hi)
      in
      Age_range.contains r (Duration.seconds lo)
      && Age_range.contains r (Duration.seconds hi))

let suite =
  [
    ( "units",
      [
        Alcotest.test_case "size constructors" `Quick test_size_constructors;
        Alcotest.test_case "size validation" `Quick test_size_validation;
        Alcotest.test_case "size arithmetic" `Quick test_size_arithmetic;
        Alcotest.test_case "size pretty-printing" `Quick test_size_pp;
        Alcotest.test_case "duration constructors" `Quick test_duration_constructors;
        Alcotest.test_case "duration arithmetic" `Quick test_duration_arithmetic;
        Alcotest.test_case "duration pretty-printing" `Quick test_duration_pp;
        Alcotest.test_case "rate constructors" `Quick test_rate_constructors;
        Alcotest.test_case "rate transfer math" `Quick test_rate_transfer;
        Alcotest.test_case "money" `Quick test_money;
        Alcotest.test_case "money rate penalties" `Quick test_money_rate;
        Alcotest.test_case "age range" `Quick test_age_range;
        qcheck prop_size_add_commutative;
        qcheck prop_size_sub_never_negative;
        qcheck prop_transfer_roundtrip;
        qcheck prop_duration_ratio_scale;
        qcheck prop_age_range_contains_bounds;
      ] );
  ]
