(* Fidelity tests for the case-study presets: the encoded parameters must
   match the paper's Tables 2-4 exactly, and the what-if list must match
   Table 7's row set. *)

open Storage_units
open Storage_device
open Storage_protection
open Storage_presets
open Helpers

(* --- Table 2: cello --- *)

let test_cello_parameters () =
  let w = Cello.workload in
  close_size "dataCap" (Size.gib 1360.) w.Storage_workload.Workload.data_capacity;
  close_rate "access" (Rate.kib_per_sec 1028.)
    w.Storage_workload.Workload.avg_access_rate;
  close_rate "updates" (Rate.kib_per_sec 799.)
    w.Storage_workload.Workload.avg_update_rate;
  close "burst" 10. w.Storage_workload.Workload.burst_multiplier;
  List.iter
    (fun (win, expected) ->
      close_rate
        (Printf.sprintf "batch @ %s" (Duration.to_string win))
        (Rate.kib_per_sec expected)
        (Storage_workload.Workload.batch_update_rate w win))
    [
      (Duration.minutes 1., 727.);
      (Duration.hours 12., 350.);
      (Duration.hours 24., 317.);
      (Duration.hours 48., 317.);
      (Duration.weeks 1., 317.);
    ]

(* --- Table 3: policies --- *)

let test_policy_parameters () =
  let check name (s : Schedule.t) ~acc ~prop ~hold ~ret ~retw =
    close_duration (name ^ " accW") acc s.Schedule.full.Schedule.accumulation;
    close_duration (name ^ " propW") prop s.Schedule.full.Schedule.propagation;
    close_duration (name ^ " holdW") hold s.Schedule.full.Schedule.hold;
    Alcotest.(check int) (name ^ " retCnt") ret s.Schedule.retention_count;
    close_duration (name ^ " retW") retw (Schedule.retention_window s)
  in
  check "split mirror" Baseline.split_mirror_schedule ~acc:(Duration.hours 12.)
    ~prop:Duration.zero ~hold:Duration.zero ~ret:4 ~retw:(Duration.days 2.);
  check "backup" Baseline.backup_schedule ~acc:(Duration.weeks 1.)
    ~prop:(Duration.hours 48.) ~hold:(Duration.hours 1.) ~ret:4
    ~retw:(Duration.weeks 4.);
  check "vaulting" Baseline.vault_schedule ~acc:(Duration.weeks 4.)
    ~prop:(Duration.hours 24.)
    ~hold:(Duration.add (Duration.weeks 4.) (Duration.hours 12.))
    ~ret:39
    ~retw:(Duration.weeks 156.)

(* --- Table 4: devices --- *)

let test_device_parameters () =
  let a = Baseline.disk_array in
  Alcotest.(check int) "array cap slots" 256 a.Device.max_capacity_slots;
  close_size "array slot cap" (Size.gib 73.) a.Device.slot_capacity;
  Alcotest.(check int) "array bw slots" 256 a.Device.max_bandwidth_slots;
  close_rate "array slot bw" (Rate.mib_per_sec 25.) a.Device.slot_bandwidth;
  close_rate "array enclosure" (Rate.mib_per_sec 512.) a.Device.enclosure_bandwidth;
  close_money "array fixed" (Money.usd 123297.) a.Device.cost.Cost_model.fixed;
  close "array per-GB" 17.2 a.Device.cost.Cost_model.per_gib;
  (match a.Device.spare with
  | Spare.Dedicated { provisioning_time } ->
    close_duration "hot spare" (Duration.hours 0.02) provisioning_time
  | _ -> Alcotest.fail "array spare is dedicated");
  (match a.Device.remote_spare with
  | Spare.Shared { provisioning_time; discount } ->
    close_duration "facility time" (Duration.hours 9.) provisioning_time;
    close "facility discount" 0.2 discount
  | _ -> Alcotest.fail "array remote spare is shared");
  let t = Baseline.tape_library in
  Alcotest.(check int) "tape cartridges" 500 t.Device.max_capacity_slots;
  close_size "cartridge" (Size.gib 400.) t.Device.slot_capacity;
  Alcotest.(check int) "tape drives" 16 t.Device.max_bandwidth_slots;
  close_rate "drive bw" (Rate.mib_per_sec 60.) t.Device.slot_bandwidth;
  close_duration "load delay" (Duration.hours 0.01) t.Device.access_delay;
  close "tape per-MB/s" 108.6 t.Device.cost.Cost_model.per_mib_per_sec;
  let v = Baseline.vault in
  Alcotest.(check int) "vault slots" 5000 v.Device.max_capacity_slots;
  Alcotest.(check bool) "vault capacity-only" true (Device.is_capacity_only v);
  Alcotest.(check bool) "vault no spare" true (v.Device.spare = Spare.No_spare);
  match Baseline.air_shipment.Interconnect.transport with
  | Interconnect.Shipment ->
    close_duration "air delay" (Duration.hours 24.)
      Baseline.air_shipment.Interconnect.delay
  | Interconnect.Network _ -> Alcotest.fail "air shipment is physical"

let test_oc3 () =
  let link = Baseline.oc3 ~links:10 in
  match Interconnect.bandwidth link with
  | Some bw -> close ~tol:1e-9 "10 x 155 Mbps" (10. *. 155e6 /. 8.) (Rate.to_bytes_per_sec bw)
  | None -> Alcotest.fail "oc3 is a network"

(* --- Table 7 rows --- *)

let test_whatif_rows () =
  Alcotest.(check (list string)) "row set"
    [
      "baseline"; "weekly vault"; "weekly vault, F+I"; "weekly vault, daily F";
      "weekly vault, daily F, snapshot"; "asyncB mirror, 1 link";
      "asyncB mirror, 10 links";
    ]
    (List.map fst Whatif.all)

let test_all_whatifs_valid () =
  List.iter
    (fun (name, d) ->
      match Storage_model.Design.validate d with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s invalid: %s" name (String.concat "; " es))
    Whatif.all

let test_scenarios () =
  Alcotest.(check int) "three scenarios" 3 (List.length Baseline.scenarios);
  close_duration "object target age" (Duration.hours 24.)
    Baseline.scenario_object.Storage_model.Scenario.target_age;
  match Baseline.scenario_object.Storage_model.Scenario.object_size with
  | Some s -> close_size "1 MiB object" (Size.mib 1.) s
  | None -> Alcotest.fail "object scenario has a size"

let suite =
  [
    ( "presets",
      [
        Alcotest.test_case "Table 2 cello parameters" `Quick test_cello_parameters;
        Alcotest.test_case "Table 3 policy parameters" `Quick
          test_policy_parameters;
        Alcotest.test_case "Table 4 device parameters" `Quick
          test_device_parameters;
        Alcotest.test_case "OC-3 links" `Quick test_oc3;
        Alcotest.test_case "Table 7 design rows" `Quick test_whatif_rows;
        Alcotest.test_case "all what-ifs valid" `Quick test_all_whatifs_valid;
        Alcotest.test_case "scenario definitions" `Quick test_scenarios;
      ] );
  ]
