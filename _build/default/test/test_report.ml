(* Tests for the table renderer and the paper-table reproductions. *)

open Storage_report
open Helpers

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_render_basic () =
  let out =
    Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "four lines" 4 (List.length lines);
  Alcotest.(check string) "header" "a    bb" (List.nth lines 0);
  Alcotest.(check string) "rule" "---  --" (List.nth lines 1);
  Alcotest.(check string) "row" "1    2" (List.nth lines 2);
  Alcotest.(check string) "wide row" "333  4" (List.nth lines 3)

let test_render_alignment () =
  let out =
    Table.render ~headers:[ "n" ] ~aligns:[ Table.Right ] [ [ "7" ]; [ "42" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "right-aligned" " 7" (List.nth lines 2)

let test_render_title_and_padding () =
  let out = Table.render ~title:"T" ~headers:[ "x"; "y" ] [ [ "only" ] ] in
  Alcotest.(check bool) "title first" true (String.length out > 0 && out.[0] = 'T');
  Alcotest.(check bool) "short row padded" true (contains out "only")

let test_render_rejects_wide_rows () =
  check_raises_invalid "row wider than header" (fun () ->
      Table.render ~headers:[ "a" ] [ [ "1"; "2" ] ])

let test_metric_formats () =
  let open Storage_units in
  Alcotest.(check string) "hours" "26.4" (Metric.hours (Duration.hours 26.4));
  Alcotest.(check string) "percent" "87.3%" (Metric.percent 0.873);
  Alcotest.(check string) "money" "$0.97M" (Metric.money_m (Money.of_millions 0.97));
  Alcotest.(check string) "tib" "51.8" (Metric.tib (Size.gib (39. *. 1360.)))

(* --- paper table reproductions contain the headline cells --- *)

let test_table5_cells () =
  let t = Storage_presets.Paper_tables.table5 () in
  List.iter
    (fun cell ->
      if not (contains t cell) then Alcotest.failf "missing %S" cell)
    [ "14.6%"; "72.8%"; "0.2%"; "0.6%"; "1.6%"; "2.4%"; "3.4%"; "87.3%"; "51.8" ]

let test_table6_cells () =
  let t = Storage_presets.Paper_tables.table6 () in
  List.iter
    (fun cell ->
      if not (contains t cell) then Alcotest.failf "missing %S" cell)
    [ "split mirror"; "backup"; "vaulting"; "12.0 hr"; "217.0 hr"; "1429.0 hr"; "0.004 s" ]

let test_table7_cells () =
  let t = Storage_presets.Paper_tables.table7 () in
  List.iter
    (fun cell ->
      if not (contains t cell) then Alcotest.failf "missing %S" cell)
    [ "weekly vault"; "asyncB mirror, 1 link"; "253.0 hr"; "73.0 hr"; "37.0 hr"; "0.03 hr" ]

let test_figures_render () =
  List.iter
    (fun f -> Alcotest.(check bool) "non-empty" true (String.length (f ()) > 100))
    [
      Storage_presets.Paper_tables.figure1;
      Storage_presets.Paper_tables.figure2;
      Storage_presets.Paper_tables.figure3;
      Storage_presets.Paper_tables.figure4;
      Storage_presets.Paper_tables.figure5;
      Storage_presets.Paper_tables.table2;
      Storage_presets.Paper_tables.table3;
      Storage_presets.Paper_tables.table4;
    ]

(* --- Json --- *)

let test_json_scalars () =
  let open Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int" "42" (to_string (Int 42));
  Alcotest.(check string) "float" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "integral float" "217.0" (to_string (Float 217.));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "string" "\"hi\"" (to_string (String "hi"))

let test_json_escaping () =
  let open Json in
  Alcotest.(check string) "quotes and backslash" "\"a\\\"b\\\\c\""
    (to_string (String "a\"b\\c"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (to_string (String "a\nb"));
  Alcotest.(check string) "control char" "\"\\u0001\""
    (to_string (String "\001"))

let test_json_structures () =
  let open Json in
  Alcotest.(check string) "empty" "[]" (to_string (List []));
  Alcotest.(check string) "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
  Alcotest.(check string) "object" "{\"a\":1}" (to_string (Obj [ ("a", Int 1) ]));
  let pretty = to_string_pretty (Obj [ ("a", List [ Int 1 ]) ]) in
  Alcotest.(check bool) "pretty is multiline" true (String.contains pretty '\n')

let test_json_report_fields () =
  let r =
    Storage_model.Evaluate.run Storage_presets.Baseline.design
      Storage_presets.Baseline.scenario_array
  in
  let s = Json.to_string (Storage_model.Json_output.report r) in
  List.iter
    (fun needle ->
      if not (contains s needle) then Alcotest.failf "json missing %S" needle)
    [
      "\"design\":\"baseline\"";
      "\"source_level\":2";
      "\"seconds\":781200.0";
      "\"meets_rto\":null";
      "\"overcommitted\":false";
    ]

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "basic rendering" `Quick test_render_basic;
        Alcotest.test_case "alignment" `Quick test_render_alignment;
        Alcotest.test_case "title and padding" `Quick test_render_title_and_padding;
        Alcotest.test_case "wide rows rejected" `Quick test_render_rejects_wide_rows;
        Alcotest.test_case "metric formats" `Quick test_metric_formats;
        Alcotest.test_case "Table 5 headline cells" `Quick test_table5_cells;
        Alcotest.test_case "Table 6 headline cells" `Quick test_table6_cells;
        Alcotest.test_case "Table 7 headline cells" `Quick test_table7_cells;
        Alcotest.test_case "all artifacts render" `Quick test_figures_render;
        Alcotest.test_case "json scalars" `Quick test_json_scalars;
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "json structures" `Quick test_json_structures;
        Alcotest.test_case "json evaluation report" `Quick
          test_json_report_fields;
      ] );
  ]
