test/test_report.ml: Alcotest Duration Float Helpers Json List Metric Money Size Storage_model Storage_presets Storage_report Storage_units String Table
