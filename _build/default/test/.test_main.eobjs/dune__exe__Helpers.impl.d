test/helpers.ml: Alcotest Duration Float Money QCheck QCheck_alcotest Rate Size Storage_units
