test/test_device.ml: Alcotest Cost_model Demand Device Duration Float Helpers Interconnect List Location Money Option QCheck Rate Size Spare Storage_device Storage_units
