test/test_units.ml: Age_range Alcotest Duration Float Helpers Money Money_rate QCheck Rate Size Storage_units
