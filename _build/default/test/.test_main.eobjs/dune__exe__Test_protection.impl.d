test/test_protection.ml: Alcotest Demand Demands Duration Helpers QCheck Raid Rate Schedule Size Storage_device Storage_presets Storage_protection Storage_units Storage_workload Technique
