The explain command names recovery bottlenecks:

  $ ssdep explain -d baseline -s site | grep bottleneck
      bottleneck: media transit.
      bottleneck: data transfer.

Risk weighting composes per-incident penalties with frequencies:

  $ ssdep risk -d baseline --object-per-year 12 | tail -1
    outlays $1.16M + expected penalties $10.11M = $11.28M per year

Degraded-mode evaluation quantifies outage exposure:

  $ ssdep degraded -d baseline -s array --level 2 --outage 168
  level 2 down for 7.0 d: loss 2.3 wk (healthy 9.0 d, +7.0 d), RT 1.7 hr
