The paper's Table 6 regenerates from the models:

  $ ssdep tables --only table6
  Table 6: worst case recovery time and data loss (baseline)
  Failure scope      Recovery source  Recovery time  Recent data loss
  -----------------  ---------------  -------------  ----------------
  data object        split mirror     0.004 s        12.0 hr
  device disk-array  backup           1.7 hr         217.0 hr
  site primary       vaulting         25.7 hr        1429.0 hr

Unknown artifacts are rejected:

  $ ssdep tables --only table99
  ssdep: unknown artifact "table99"
  [124]
