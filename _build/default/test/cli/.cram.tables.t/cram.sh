  $ ssdep tables --only table6
  $ ssdep tables --only table99
