  $ ssdep explain -d baseline -s site | grep bottleneck
  $ ssdep risk -d baseline --object-per-year 12 | tail -1
  $ ssdep degraded -d baseline -s array --level 2 --outage 168
