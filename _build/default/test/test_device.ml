(* Tests for the device library: locations and failure scopes, demands,
   cost models, spares, storage devices and interconnects. *)

open Storage_units
open Storage_device
open Helpers

let site_a = Location.make ~building:"b1" ~site:"s1" ~region:"r1"
let site_b = Location.make ~building:"b2" ~site:"s2" ~region:"r1"

(* --- Location / scope --- *)

let test_scope_destroys () =
  let check scope device loc expected =
    Alcotest.(check bool)
      (Location.scope_name scope)
      expected
      (Location.destroys scope ~device_name:device loc)
  in
  check Location.Data_object "array" site_a false;
  check (Location.Device "array") "array" site_a true;
  check (Location.Device "array") "tape" site_a false;
  check (Location.Building "b1") "array" site_a true;
  check (Location.Building "b2") "array" site_a false;
  check (Location.Site "s1") "array" site_a true;
  check (Location.Site "s1") "array" site_b false;
  check (Location.Region "r1") "array" site_a true;
  check (Location.Region "r1") "array" site_b true;
  check (Location.Region "r2") "array" site_b false;
  check
    (Location.Multiple [ Location.Device "tape"; Location.Site "s2" ])
    "array" site_a false;
  check
    (Location.Multiple [ Location.Device "array"; Location.Site "s2" ])
    "array" site_a true

let test_scope_predicates () =
  Alcotest.(check bool) "object corrupts" true
    (Location.corrupts_object Location.Data_object);
  Alcotest.(check bool) "device does not" false
    (Location.corrupts_object (Location.Device "x"));
  Alcotest.(check bool) "nested corruption" true
    (Location.corrupts_object
       (Location.Multiple [ Location.Device "x"; Location.Data_object ]));
  Alcotest.(check bool) "devices keep local spares" false
    (Location.needs_remote_spare
       (Location.Multiple [ Location.Device "a"; Location.Device "b" ]));
  Alcotest.(check bool) "site needs remote" true
    (Location.needs_remote_spare
       (Location.Multiple [ Location.Device "a"; Location.Site "s" ]))

(* --- Demand --- *)

let test_demand_arithmetic () =
  let a =
    Demand.make ~read_bw:(Rate.mib_per_sec 2.) ~write_bw:(Rate.mib_per_sec 3.)
      ~capacity:(Size.gib 10.) ()
  in
  let b = Demand.make ~read_bw:(Rate.mib_per_sec 1.) () in
  let s = Demand.add a b in
  close_rate "read" (Rate.mib_per_sec 3.) s.Demand.read_bw;
  close_rate "write" (Rate.mib_per_sec 3.) s.Demand.write_bw;
  close_size "cap" (Size.gib 10.) s.Demand.capacity;
  close_rate "total bw" (Rate.mib_per_sec 6.) (Demand.total_bw s);
  Alcotest.(check bool) "zero" true (Demand.is_zero Demand.zero);
  Alcotest.(check bool) "nonzero" false (Demand.is_zero a)

let test_demand_by_technique () =
  let labeled =
    [
      { Demand.technique = "backup"; demand = Demand.make ~capacity:(Size.gib 1.) () };
      { Demand.technique = "foreground"; demand = Demand.make ~capacity:(Size.gib 2.) () };
      { Demand.technique = "backup"; demand = Demand.make ~capacity:(Size.gib 3.) () };
    ]
  in
  match Demand.by_technique labeled with
  | [ (n1, d1); (n2, d2) ] ->
    Alcotest.(check string) "first label" "backup" n1;
    close_size "merged" (Size.gib 4.) d1.Demand.capacity;
    Alcotest.(check string) "second label" "foreground" n2;
    close_size "kept" (Size.gib 2.) d2.Demand.capacity
  | other -> Alcotest.failf "unexpected group count %d" (List.length other)

(* --- Cost_model --- *)

let test_cost_model () =
  let m =
    Cost_model.make ~fixed:(Money.usd 98_895.) ~per_gib:0.4
      ~per_mib_per_sec:108.6 ~per_shipment:50. ()
  in
  close_money "tape library outlay"
    (Money.usd (98_895. +. (0.4 *. 6800.) +. (108.6 *. 8.1) +. (50. *. 13.)))
    (Cost_model.outlay m ~capacity:(Size.gib 6800.)
       ~bandwidth:(Rate.mib_per_sec 8.1) ~shipments_per_year:13.);
  close_money "capacity only" (Money.usd 400.)
    (Cost_model.capacity_cost m (Size.gib 1000.));
  close_money "bandwidth only" (Money.usd 1086.)
    (Cost_model.bandwidth_cost m (Rate.mib_per_sec 10.));
  check_raises_invalid "negative coefficient" (fun () ->
      Cost_model.make ~per_gib:(-1.) ());
  check_raises_invalid "negative shipments" (fun () ->
      Cost_model.outlay m ~capacity:Size.zero ~bandwidth:Rate.zero
        ~shipments_per_year:(-1.))

(* --- Spare --- *)

let test_spare () =
  let dedicated = Spare.Dedicated { provisioning_time = Duration.minutes 1.2 } in
  let shared =
    Spare.Shared { provisioning_time = Duration.hours 9.; discount = 0.2 }
  in
  Alcotest.(check bool) "no spare time" true
    (Spare.provisioning_time Spare.No_spare = None);
  close_duration "dedicated time" (Duration.minutes 1.2)
    (Option.get (Spare.provisioning_time dedicated));
  close_duration "shared time" (Duration.hours 9.)
    (Option.get (Spare.provisioning_time shared));
  close_money "dedicated cost" (Money.usd 100.)
    (Spare.cost dedicated ~original:(Money.usd 100.));
  close_money "shared cost" (Money.usd 20.)
    (Spare.cost shared ~original:(Money.usd 100.));
  close_money "no spare cost" Money.zero
    (Spare.cost Spare.No_spare ~original:(Money.usd 100.))

(* --- Device --- *)

let array =
  Device.make ~name:"array" ~location:site_a ~max_capacity_slots:256
    ~slot_capacity:(Size.gib 73.) ~max_bandwidth_slots:256
    ~slot_bandwidth:(Rate.mib_per_sec 25.)
    ~enclosure_bandwidth:(Rate.mib_per_sec 512.)
    ~spare:(Spare.Dedicated { provisioning_time = Duration.hours 0.02 })
    ~remote_spare:
      (Spare.Shared { provisioning_time = Duration.hours 9.; discount = 0.2 })
    ()

let vault =
  Device.make ~name:"vault" ~location:site_b ~max_capacity_slots:5000
    ~slot_capacity:(Size.gib 400.) ()

let test_device_derived () =
  close_size "devCap" (Size.gib (256. *. 73.)) (Device.max_capacity array);
  (* The erratum rule: devBW = min(enclBW, slots * slotBW). *)
  close_rate "devBW is min" (Rate.mib_per_sec 512.) (Device.max_bandwidth array);
  Alcotest.(check bool) "array has bandwidth" false (Device.is_capacity_only array);
  close_rate "vault has none" Rate.zero (Device.max_bandwidth vault);
  Alcotest.(check bool) "vault capacity-only" true (Device.is_capacity_only vault)

let test_device_bw_slots_bound () =
  (* When slots bind tighter than the enclosure, they win. *)
  let d =
    Device.make ~name:"d" ~location:site_a ~max_capacity_slots:10
      ~slot_capacity:(Size.gib 100.) ~max_bandwidth_slots:2
      ~slot_bandwidth:(Rate.mib_per_sec 60.)
      ~enclosure_bandwidth:(Rate.mib_per_sec 240.)
      ()
  in
  close_rate "slots bind" (Rate.mib_per_sec 120.) (Device.max_bandwidth d)

let demand_of ~bw_mib ~cap_gib technique =
  {
    Demand.technique;
    demand =
      Demand.make ~read_bw:(Rate.mib_per_sec bw_mib)
        ~capacity:(Size.gib cap_gib) ();
  }

let test_device_utilization () =
  let demands =
    [ demand_of ~bw_mib:12.4 ~cap_gib:16320. "all" ]
  in
  let u = Device.utilization array demands in
  close ~tol:1e-3 "bw fraction" (12.4 /. 512.) u.Device.bandwidth_fraction;
  close ~tol:1e-3 "cap fraction" (16320. /. 18688.) u.Device.capacity_fraction;
  Alcotest.(check int) "cap slots" 224 u.Device.capacity_slots_needed;
  Alcotest.(check int) "bw slots" 1 u.Device.bandwidth_slots_needed;
  Alcotest.(check bool) "not overcommitted" false (Device.overcommitted u)

let test_device_overcommit () =
  let u = Device.utilization array [ demand_of ~bw_mib:600. ~cap_gib:1. "x" ] in
  Alcotest.(check bool) "bw overcommitted" true (Device.overcommitted u);
  let u2 = Device.utilization array [ demand_of ~bw_mib:1. ~cap_gib:20000. "x" ] in
  Alcotest.(check bool) "cap overcommitted" true (Device.overcommitted u2)

let test_device_available_bw () =
  close_rate "available"
    (Rate.mib_per_sec (512. -. 12.4))
    (Device.available_bandwidth array [ demand_of ~bw_mib:12.4 ~cap_gib:1. "x" ])

let test_device_spare_for () =
  (match Device.spare_for array ~scope:(Location.Device "array") with
  | Spare.Dedicated _ -> ()
  | _ -> Alcotest.fail "device scope should use the local spare");
  (match Device.spare_for array ~scope:(Location.Site "s1") with
  | Spare.Shared _ -> ()
  | _ -> Alcotest.fail "site scope should use the remote spare");
  match Device.spare_for vault ~scope:(Location.Site "s2") with
  | Spare.No_spare -> ()
  | _ -> Alcotest.fail "vault has no spare"

let test_device_validation () =
  check_raises_invalid "zero slot cap" (fun () ->
      Device.make ~name:"d" ~location:site_a ~max_capacity_slots:1
        ~slot_capacity:Size.zero ());
  check_raises_invalid "no capacity slots" (fun () ->
      Device.make ~name:"d" ~location:site_a ~max_capacity_slots:0
        ~slot_capacity:(Size.gib 1.) ())

(* --- Interconnect --- *)

let test_interconnect_network () =
  let oc3 =
    Interconnect.make ~name:"oc3"
      ~transport:
        (Interconnect.Network
           { link_bandwidth = Rate.megabits_per_sec 155.; links = 10 })
      ~cost:(Cost_model.make ~per_mib_per_sec:23535. ())
      ()
  in
  (match Interconnect.bandwidth oc3 with
  | Some bw ->
    close ~tol:1e-6 "aggregate"
      (10. *. 155. *. 1e6 /. 8.)
      (Rate.to_bytes_per_sec bw)
  | None -> Alcotest.fail "network has bandwidth");
  let annual = Interconnect.annual_cost oc3 ~shipments_per_year:0. in
  Alcotest.(check bool) "priced by bandwidth" true
    (Money.to_usd annual > 4e6 && Money.to_usd annual < 4.6e6)

let test_interconnect_shipment () =
  let air =
    Interconnect.make ~name:"air" ~transport:Interconnect.Shipment
      ~delay:(Duration.hours 24.)
      ~cost:(Cost_model.make ~per_shipment:50. ())
      ()
  in
  Alcotest.(check bool) "no bandwidth" true (Interconnect.bandwidth air = None);
  close_money "13 shipments" (Money.usd 650.)
    (Interconnect.annual_cost air ~shipments_per_year:13.)

let test_interconnect_validation () =
  check_raises_invalid "zero links" (fun () ->
      Interconnect.make ~name:"x"
        ~transport:
          (Interconnect.Network
             { link_bandwidth = Rate.mib_per_sec 1.; links = 0 })
        ());
  check_raises_invalid "zero bandwidth" (fun () ->
      Interconnect.make ~name:"x"
        ~transport:(Interconnect.Network { link_bandwidth = Rate.zero; links = 1 })
        ())

(* --- property tests --- *)

let prop_utilization_scales_linearly =
  QCheck.Test.make ~name:"utilization linear in demand" ~count:100
    (QCheck.float_range 0.1 100.)
    (fun bw ->
      let u1 = Device.utilization array [ demand_of ~bw_mib:bw ~cap_gib:1. "x" ] in
      let u2 =
        Device.utilization array [ demand_of ~bw_mib:(2. *. bw) ~cap_gib:1. "x" ]
      in
      Float.abs ((2. *. u1.Device.bandwidth_fraction) -. u2.Device.bandwidth_fraction)
      < 1e-9)

let prop_slots_cover_demand =
  QCheck.Test.make ~name:"provisioned slots cover the demand" ~count:100
    (QCheck.float_range 1. 18000.)
    (fun cap_gib ->
      let labeled = [ demand_of ~bw_mib:1. ~cap_gib "x" ] in
      let u = Device.utilization array labeled in
      float_of_int u.Device.capacity_slots_needed *. 73. >= cap_gib -. 1e-6)

let suite =
  [
    ( "device",
      [
        Alcotest.test_case "failure scopes" `Quick test_scope_destroys;
        Alcotest.test_case "scope predicates" `Quick test_scope_predicates;
        Alcotest.test_case "demand arithmetic" `Quick test_demand_arithmetic;
        Alcotest.test_case "demand grouping" `Quick test_demand_by_technique;
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "spares" `Quick test_spare;
        Alcotest.test_case "derived capacities" `Quick test_device_derived;
        Alcotest.test_case "bandwidth slots bound" `Quick test_device_bw_slots_bound;
        Alcotest.test_case "utilization" `Quick test_device_utilization;
        Alcotest.test_case "overcommit detection" `Quick test_device_overcommit;
        Alcotest.test_case "available bandwidth" `Quick test_device_available_bw;
        Alcotest.test_case "spare selection by scope" `Quick test_device_spare_for;
        Alcotest.test_case "validation" `Quick test_device_validation;
        Alcotest.test_case "network interconnect" `Quick test_interconnect_network;
        Alcotest.test_case "shipment interconnect" `Quick test_interconnect_shipment;
        Alcotest.test_case "interconnect validation" `Quick
          test_interconnect_validation;
        qcheck prop_utilization_scales_linearly;
        qcheck prop_slots_cover_demand;
      ] );
  ]
