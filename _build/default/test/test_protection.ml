(* Tests for the protection library: RAID, schedules, techniques and the
   per-technique workload demand derivations, checked against the paper's
   case-study arithmetic. *)

open Storage_units
open Storage_device
open Storage_protection
open Helpers

(* --- Raid --- *)

let test_raid_factors () =
  close "raid0 cap" 1. (Raid.capacity_factor Raid.Raid0);
  close "raid1 cap" 2. (Raid.capacity_factor Raid.Raid1);
  close "raid10 cap" 2. (Raid.capacity_factor Raid.Raid10);
  close "raid5 cap" (5. /. 4.) (Raid.capacity_factor (Raid.Raid5 { stripe_width = 5 }));
  close "raid5 write amp" 4. (Raid.write_amplification (Raid.Raid5 { stripe_width = 5 }));
  close "raid1 write amp" 2. (Raid.write_amplification Raid.Raid1);
  Alcotest.(check bool) "raid0 unsafe" false (Raid.tolerates_disk_failure Raid.Raid0);
  Alcotest.(check bool) "raid5 safe" true
    (Raid.tolerates_disk_failure (Raid.Raid5 { stripe_width = 5 }));
  check_raises_invalid "narrow stripe" (fun () ->
      Raid.capacity_factor (Raid.Raid5 { stripe_width = 2 }))

(* --- Schedule --- *)

let baseline_backup =
  Schedule.simple ~acc:(Duration.weeks 1.) ~prop:(Duration.hours 48.)
    ~hold:(Duration.hours 1.) ~retention_count:4 ()

let split_mirror = Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:4 ()

let f_plus_i =
  Schedule.make
    ~full:
      (Schedule.windows ~acc:(Duration.hours 48.) ~prop:(Duration.hours 48.)
         ~hold:(Duration.hours 1.) ())
    ~secondary:
      ( Schedule.Cumulative,
        Schedule.windows ~acc:(Duration.hours 24.) ~prop:(Duration.hours 12.)
          ~hold:(Duration.hours 1.) () )
    ~cycle_count:5 ~retention_count:4 ()

let test_schedule_validation () =
  check_raises_invalid "prop > acc" (fun () ->
      Schedule.windows ~acc:(Duration.hours 1.) ~prop:(Duration.hours 2.) ());
  check_raises_invalid "zero acc" (fun () -> Schedule.windows ~acc:Duration.zero ());
  check_raises_invalid "retention < 1" (fun () ->
      Schedule.simple ~acc:(Duration.hours 1.) ~retention_count:0 ());
  check_raises_invalid "cycle count without secondary" (fun () ->
      Schedule.make
        ~full:(Schedule.windows ~acc:(Duration.hours 1.) ())
        ~cycle_count:3 ~retention_count:1 ());
  check_raises_invalid "secondary cannot be Full" (fun () ->
      Schedule.make
        ~full:(Schedule.windows ~acc:(Duration.hours 10.) ())
        ~secondary:(Schedule.Full, Schedule.windows ~acc:(Duration.hours 1.) ())
        ~cycle_count:2 ~retention_count:1 ())

let test_schedule_derived () =
  close_duration "simple cycle" (Duration.weeks 1.) (Schedule.cycle_period baseline_backup);
  close_duration "retention window" (Duration.weeks 4.)
    (Schedule.retention_window baseline_backup);
  close_duration "retention span" (Duration.weeks 3.)
    (Schedule.retention_span baseline_backup);
  close_duration "F+I cycle" (Duration.weeks 1.) (Schedule.cycle_period f_plus_i);
  close_duration "F+I min interval" (Duration.hours 24.)
    (Schedule.rp_interval_min f_plus_i);
  close_duration "F+I max prop" (Duration.hours 48.)
    (Schedule.propagation_max f_plus_i)

let test_schedule_lags_golden () =
  (* The paper's data-loss arithmetic: 217 hr baseline backup, 73 hr F+I,
     12 hr split mirror. *)
  close_duration "baseline backup lag" (Duration.hours 217.)
    (Schedule.worst_lag baseline_backup ~upstream:Duration.zero);
  close_duration "F+I lag" (Duration.hours 73.)
    (Schedule.worst_lag f_plus_i ~upstream:Duration.zero);
  close_duration "split mirror lag" (Duration.hours 12.)
    (Schedule.worst_lag split_mirror ~upstream:Duration.zero);
  close_duration "best lag" (Duration.hours 49.)
    (Schedule.best_lag baseline_backup ~upstream:Duration.zero);
  close_duration "upstream adds" (Duration.hours 227.)
    (Schedule.worst_lag baseline_backup ~upstream:(Duration.hours 10.))

(* --- Technique --- *)

let test_technique_classification () =
  let sm = Technique.Split_mirror split_mirror in
  let snap = Technique.Virtual_snapshot split_mirror in
  let bk = Technique.Backup baseline_backup in
  let mirror =
    Technique.Remote_mirror
      { mode = Technique.Asynchronous_batch; schedule = split_mirror }
  in
  let primary = Technique.Primary_copy { raid = Raid.Raid1 } in
  Alcotest.(check string) "names" "split mirror" (Technique.name sm);
  Alcotest.(check string) "mirror name" "async batch mirror" (Technique.name mirror);
  Alcotest.(check bool) "sm colocated" true (Technique.colocated_with_primary sm);
  Alcotest.(check bool) "snap colocated" true (Technique.colocated_with_primary snap);
  Alcotest.(check bool) "backup not" false (Technique.colocated_with_primary bk);
  Alcotest.(check bool) "sm is PiT" true (Technique.is_point_in_time sm);
  Alcotest.(check bool) "mirror not PiT" false (Technique.is_point_in_time mirror);
  Alcotest.(check bool) "primary no schedule" true
    (Technique.schedule primary = None);
  Alcotest.(check bool) "backup has schedule" true (Technique.schedule bk <> None)

(* --- Demands (golden against Table 5) --- *)

let cello = Storage_presets.Cello.workload

let mib r = Rate.to_mib_per_sec r
let gib s = Size.to_gib s

let test_primary_demands () =
  let p =
    Demands.of_technique ~workload:cello
      (Technique.Primary_copy { raid = Raid.Raid1 })
  in
  close ~tol:1e-3 "client bw" (1028. /. 1024.) (mib (Demand.total_bw p.Demands.on_target));
  close ~tol:1e-6 "raid-1 capacity" 2720. (gib p.Demands.on_target.Demand.capacity);
  Alcotest.(check bool) "nothing upstream" true (Demand.is_zero p.Demands.on_source)

let test_split_mirror_demands () =
  let p =
    Demands.of_technique ~workload:cello ~host_raid:Raid.Raid1
      (Technique.Split_mirror split_mirror)
  in
  (* Resilvering: unique updates of 5 x 12 hr at 317 KiB/s, both read and
     written, within one 12 hr window: ~3.1 MiB/s. Table 5: 0.6% of 512. *)
  close ~tol:1e-3 "resilver bw"
    (2. *. 317. *. 5. /. 1024.)
    (mib (Demand.total_bw p.Demands.on_target));
  (* Five raid-1 mirrors: Table 5's 72.8%. *)
  close ~tol:1e-6 "mirror capacity" (5. *. 2. *. 1360.)
    (gib p.Demands.on_target.Demand.capacity)

let test_snapshot_demands () =
  let p =
    Demands.of_technique ~workload:cello ~host_raid:Raid.Raid1
      (Technique.Virtual_snapshot split_mirror)
  in
  (* Copy-on-write: one extra read and write at the raw update rate. *)
  close ~tol:1e-3 "cow bw" (2. *. 799. /. 1024.)
    (mib (Demand.total_bw p.Demands.on_target));
  (* 4 snapshots of 12 hr unique updates each (350 KiB/s), raid-1. *)
  close ~tol:1e-3 "snapshot capacity"
    (4. *. 2. *. 350. *. 12. *. 3600. /. (1024. *. 1024.))
    (gib p.Demands.on_target.Demand.capacity)

let test_backup_demands () =
  let p = Demands.of_technique ~workload:cello (Technique.Backup baseline_backup) in
  (* Full 1360 GiB over 48 hr: 8.06 MiB/s read from the array, written to
     tape (Table 5: 1.6% of 512, 3.4% of 240). *)
  let expect = 1360. *. 1024. /. (48. *. 3600.) in
  close ~tol:1e-6 "source read" expect (mib p.Demands.on_source.Demand.read_bw);
  close ~tol:1e-6 "target write" expect (mib p.Demands.on_target.Demand.write_bw);
  close ~tol:1e-6 "link" expect (mib p.Demands.on_link);
  (* retCnt fulls plus one extra: 5 x 1360 GiB = Table 5's 6.6 TB. *)
  close ~tol:1e-6 "tape capacity" 6800. (gib p.Demands.on_target.Demand.capacity)

let test_backup_fi_demands () =
  let p = Demands.of_technique ~workload:cello (Technique.Backup f_plus_i) in
  (* Bandwidth is the max of the full rate and the largest-incremental
     rate; fulls dominate here (1360 GiB / 48 hr vs ~137 GiB / 12 hr). *)
  let full_rate = 1360. *. 1024. /. (48. *. 3600.) in
  close ~tol:1e-6 "bw is max" full_rate (mib p.Demands.on_source.Demand.read_bw);
  (* Cycle capacity: one full plus 5 growing cumulative incrementals. *)
  let incr k = 317. *. float_of_int k *. 24. *. 3600. /. (1024. *. 1024.) in
  let cycle = 1360. +. incr 1 +. incr 2 +. incr 3 +. incr 4 +. incr 5 in
  close ~tol:1e-3 "capacity" ((4. *. cycle) +. 1360.)
    (gib p.Demands.on_target.Demand.capacity)

let test_vaulting_demands () =
  let vault_sched =
    Schedule.simple ~acc:(Duration.weeks 4.) ~prop:(Duration.hours 24.)
      ~hold:(Duration.add (Duration.weeks 4.) (Duration.hours 12.))
      ~retention_count:39 ()
  in
  let p =
    Demands.of_technique ~workload:cello ~upstream:baseline_backup
      (Technique.Vaulting vault_sched)
  in
  (* 39 fulls = Table 5's 51.8 TB; hold >= upstream retention, so no extra
     copy bandwidth on the tape library. *)
  close ~tol:1e-6 "vault capacity" (39. *. 1360.)
    (gib p.Demands.on_target.Demand.capacity);
  Alcotest.(check bool) "no extra copy" true (Demand.is_zero p.Demands.on_source)

let test_vaulting_extra_copy () =
  (* Shipping before the backup retention expires forces an extra media
     copy at the source (§3.2.3). *)
  let early =
    Schedule.simple ~acc:(Duration.weeks 1.) ~prop:(Duration.hours 24.)
      ~hold:(Duration.hours 12.) ~retention_count:156 ()
  in
  let p =
    Demands.of_technique ~workload:cello ~upstream:baseline_backup
      (Technique.Vaulting early)
  in
  Alcotest.(check bool) "extra copy bandwidth" false
    (Demand.is_zero p.Demands.on_source)

let test_mirror_demands () =
  let batch = Schedule.simple ~acc:(Duration.minutes 1.) ~retention_count:1 () in
  let p mode =
    Demands.of_technique ~workload:cello
      (Technique.Remote_mirror { mode; schedule = batch })
  in
  let sync = p Technique.Synchronous
  and async = p Technique.Asynchronous
  and asyncb = p Technique.Asynchronous_batch in
  close ~tol:1e-3 "sync link carries raw updates" (799. /. 1024.)
    (mib sync.Demands.on_link);
  close ~tol:1e-3 "async same average" (799. /. 1024.) (mib async.Demands.on_link);
  close ~tol:1e-3 "async batch coalesced" (727. /. 1024.)
    (mib asyncb.Demands.on_link);
  close ~tol:1e-6 "destination capacity" 1360.
    (gib asyncb.Demands.on_target.Demand.capacity);
  (* Link sizing: sync must sustain the peak, async modes the average. *)
  close ~tol:1e-3 "sync requires peak" (7990. /. 1024.)
    (mib
       (Demands.required_link_bandwidth ~workload:cello
          (Technique.Remote_mirror { mode = Technique.Synchronous; schedule = batch })));
  close ~tol:1e-3 "async requires average" (799. /. 1024.)
    (mib
       (Demands.required_link_bandwidth ~workload:cello
          (Technique.Remote_mirror { mode = Technique.Asynchronous; schedule = batch })))

let test_incremental_sizes () =
  let s3 = Demands.incremental_size cello f_plus_i ~index:3 in
  let s5 = Demands.incremental_size cello f_plus_i ~index:5 in
  Alcotest.(check bool) "cumulative grows" true (Size.compare s5 s3 > 0);
  close_size "largest" s5 (Demands.largest_incremental cello f_plus_i);
  check_raises_invalid "index 0" (fun () ->
      Demands.incremental_size cello f_plus_i ~index:0);
  check_raises_invalid "index beyond cycle" (fun () ->
      Demands.incremental_size cello f_plus_i ~index:6);
  check_raises_invalid "no secondary" (fun () ->
      Demands.incremental_size cello baseline_backup ~index:1);
  close_size "no secondary largest" Size.zero
    (Demands.largest_incremental cello baseline_backup)

let test_recovery_sizes () =
  close_size "primary" (Size.gib 1360.)
    (Demands.recovery_size ~workload:cello
       (Technique.Primary_copy { raid = Raid.Raid1 }));
  close_size "plain backup" (Size.gib 1360.)
    (Demands.recovery_size ~workload:cello (Technique.Backup baseline_backup));
  let fi = Demands.recovery_size ~workload:cello (Technique.Backup f_plus_i) in
  Alcotest.(check bool) "F+I adds the largest incremental" true
    (Size.compare fi (Size.gib 1360.) > 0)

let test_erasure_coded_demands () =
  let schedule =
    Schedule.simple ~acc:(Duration.hours 1.) ~prop:(Duration.hours 1.)
      ~retention_count:24 ()
  in
  let tech = Technique.Erasure_coded { fragments = 8; required = 5; schedule } in
  close "expansion" 1.6 (Technique.expansion_factor tech);
  let p = Demands.of_technique ~workload:cello tech in
  (* Link carries the hourly unique-update rate with the 8/5 expansion. *)
  let batch = Storage_workload.Workload.batch_update_rate cello (Duration.hours 1.) in
  close ~tol:1e-9 "link rate"
    (1.6 *. Rate.to_bytes_per_sec batch)
    (Rate.to_bytes_per_sec p.Demands.on_link);
  (* Storage: a coded full copy plus 23 retained hourly windows, all
     expanded. *)
  let per_window =
    Size.to_gib (Storage_workload.Workload.unique_bytes cello (Duration.hours 1.))
  in
  close ~tol:1e-9 "capacity"
    (1.6 *. (1360. +. (23. *. per_window)))
    (gib p.Demands.on_target.Demand.capacity);
  (* Reconstruction transfers the logical size, not the expanded size. *)
  close_size "recovery size" (Size.gib 1360.)
    (Demands.recovery_size ~workload:cello tech);
  check_raises_invalid "fragments < required" (fun () ->
      Technique.expansion_factor
        (Technique.Erasure_coded { fragments = 3; required = 5; schedule }));
  Alcotest.(check bool) "is PiT" true (Technique.is_point_in_time tech);
  Alcotest.(check string) "name" "erasure coded" (Technique.name tech)

let test_shipments_per_year () =
  close ~tol:1e-6 "monthly-ish" 13.035714285
    (Demands.shipments_per_year
       (Schedule.simple ~acc:(Duration.weeks 4.) ~retention_count:1 ()))

(* --- property tests --- *)

let arb_schedule =
  QCheck.map
    (fun (acc_h, ret) ->
      Schedule.simple ~acc:(Duration.hours acc_h) ~retention_count:ret ())
    QCheck.(pair (float_range 1. 1000.) (int_range 1 50))

let prop_worst_lag_ge_best_lag =
  QCheck.Test.make ~name:"worst lag >= best lag" ~count:200 arb_schedule
    (fun s ->
      Duration.compare
        (Schedule.worst_lag s ~upstream:Duration.zero)
        (Schedule.best_lag s ~upstream:Duration.zero)
      >= 0)

let prop_retention_window_covers_span =
  QCheck.Test.make ~name:"retention window >= retention span" ~count:200
    arb_schedule (fun s ->
      Duration.compare (Schedule.retention_window s) (Schedule.retention_span s)
      >= 0)

let prop_split_mirror_capacity_monotone =
  QCheck.Test.make ~name:"split mirror capacity grows with retention"
    ~count:50
    QCheck.(int_range 1 10)
    (fun ret ->
      let cap r =
        let s = Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:r () in
        Size.to_bytes
          (Demands.of_technique ~workload:cello (Technique.Split_mirror s))
            .Demands.on_target.Demand.capacity
      in
      cap (ret + 1) > cap ret)

let prop_demands_non_negative =
  QCheck.Test.make ~name:"backup demands are non-negative" ~count:100
    QCheck.(pair (float_range 2. 400.) (int_range 1 20))
    (fun (acc_h, ret) ->
      let s =
        Schedule.simple ~acc:(Duration.hours acc_h)
          ~prop:(Duration.hours (acc_h /. 2.))
          ~retention_count:ret ()
      in
      let p = Demands.of_technique ~workload:cello (Technique.Backup s) in
      Rate.to_bytes_per_sec (Demand.total_bw p.Demands.on_target) >= 0.
      && Size.to_bytes p.Demands.on_target.Demand.capacity >= 0.)

let suite =
  [
    ( "protection.raid",
      [ Alcotest.test_case "factors" `Quick test_raid_factors ] );
    ( "protection.schedule",
      [
        Alcotest.test_case "validation" `Quick test_schedule_validation;
        Alcotest.test_case "derived windows" `Quick test_schedule_derived;
        Alcotest.test_case "lag goldens (217/73/12 hr)" `Quick
          test_schedule_lags_golden;
        qcheck prop_worst_lag_ge_best_lag;
        qcheck prop_retention_window_covers_span;
      ] );
    ( "protection.technique",
      [ Alcotest.test_case "classification" `Quick test_technique_classification ] );
    ( "protection.demands",
      [
        Alcotest.test_case "primary copy" `Quick test_primary_demands;
        Alcotest.test_case "split mirror (Table 5)" `Quick test_split_mirror_demands;
        Alcotest.test_case "virtual snapshot" `Quick test_snapshot_demands;
        Alcotest.test_case "backup (Table 5)" `Quick test_backup_demands;
        Alcotest.test_case "backup full+incremental" `Quick test_backup_fi_demands;
        Alcotest.test_case "vaulting (Table 5)" `Quick test_vaulting_demands;
        Alcotest.test_case "vaulting extra copy" `Quick test_vaulting_extra_copy;
        Alcotest.test_case "mirroring modes" `Quick test_mirror_demands;
        Alcotest.test_case "incremental sizes" `Quick test_incremental_sizes;
        Alcotest.test_case "recovery sizes" `Quick test_recovery_sizes;
        Alcotest.test_case "erasure coding" `Quick test_erasure_coded_demands;
        Alcotest.test_case "shipments per year" `Quick test_shipments_per_year;
        qcheck prop_split_mirror_capacity_monotone;
        qcheck prop_demands_non_negative;
      ] );
  ]
