(* Coverage expansion: behaviours not exercised by the per-module suites —
   differential incrementals, multi-node flow chains, cost-allocation
   details, candidate lists, portfolio evaluation and upstream lag with
   mixed-representation cycles. *)

open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_presets
open Helpers

let cello = Cello.workload

(* --- differential incrementals --- *)

let differential_schedule =
  Schedule.make
    ~full:
      (Schedule.windows ~acc:(Duration.hours 48.) ~prop:(Duration.hours 24.)
         ~hold:(Duration.hours 1.) ())
    ~secondary:
      ( Schedule.Differential,
        Schedule.windows ~acc:(Duration.hours 24.) ~prop:(Duration.hours 6.)
          ~hold:(Duration.hours 1.) () )
    ~cycle_count:5 ~retention_count:4 ()

let test_differential_sizes () =
  (* Differentials cover one window each, so they do not grow with the
     index the way cumulatives do. *)
  let s1 = Demands.incremental_size cello differential_schedule ~index:1 in
  let s5 = Demands.incremental_size cello differential_schedule ~index:5 in
  close_size "constant size" s1 s5;
  (* A differential of one day equals the unique bytes of one day. *)
  close_size "one day of uniques"
    (Storage_workload.Workload.unique_bytes cello (Duration.hours 24.))
    s1

let test_differential_vs_cumulative_capacity () =
  let cumulative =
    Schedule.make
      ~full:
        (Schedule.windows ~acc:(Duration.hours 48.) ~prop:(Duration.hours 24.)
           ~hold:(Duration.hours 1.) ())
      ~secondary:
        ( Schedule.Cumulative,
          Schedule.windows ~acc:(Duration.hours 24.) ~prop:(Duration.hours 6.)
            ~hold:(Duration.hours 1.) () )
      ~cycle_count:5 ~retention_count:4 ()
  in
  let cap s =
    Size.to_bytes
      (Demands.of_technique ~workload:cello (Technique.Backup s))
        .Demands.on_target.Demand.capacity
  in
  Alcotest.(check bool) "differential cycles are smaller" true
    (cap differential_schedule < cap cumulative)

let test_differential_recovery_size () =
  (* Worst-case differential restore applies the full plus the last
     differential in our model (the chain detail is below the model's
     resolution; the largest single increment bounds the added size). *)
  let r =
    Demands.recovery_size ~workload:cello
      (Technique.Backup differential_schedule)
  in
  Alcotest.(check bool) "larger than a bare full" true
    (Size.compare r (Size.gib 1360.) > 0)

(* --- flow net: chains and accounting --- *)

let test_flow_chain_bottleneck () =
  let open Storage_sim in
  let net = Flow_net.create () in
  let a = Flow_net.add_node net ~name:"a" ~capacity:100. in
  let b = Flow_net.add_node net ~name:"b" ~capacity:10. in
  let c = Flow_net.add_node net ~name:"c" ~capacity:50. in
  let f =
    Flow_net.add_flow net ~through:[ (a, 1); (b, 1); (c, 1) ] ~bytes:100. ()
  in
  close "chain bottleneck" 10. (Flow_net.rate net f);
  (* A second flow avoiding the bottleneck gets the leftovers of a/c. *)
  let g = Flow_net.add_flow net ~through:[ (a, 1); (c, 1) ] ~bytes:100. () in
  close "first still bottlenecked" 10. (Flow_net.rate net f);
  close "second takes the rest of c" 40. (Flow_net.rate net g)

let test_flow_node_accounting () =
  let open Storage_sim in
  let net = Flow_net.create () in
  let a = Flow_net.add_node net ~name:"a" ~capacity:100. in
  let f = Flow_net.add_flow net ~through:[ (a, 2) ] ~bytes:100. () in
  ignore (Flow_net.advance net 1.);
  (* rate 50, multiplicity 2: the node carried 100 bytes in 1 s. *)
  close "double-counted by multiplicity" 100. (Flow_net.node_bytes net a);
  ignore f

let test_flow_cancel_releases_bandwidth () =
  let open Storage_sim in
  let net = Flow_net.create () in
  let a = Flow_net.add_node net ~name:"a" ~capacity:90. in
  let f1 = Flow_net.add_flow net ~through:[ (a, 1) ] ~bytes:1000. () in
  let f2 = Flow_net.add_flow net ~through:[ (a, 1) ] ~bytes:1000. () in
  let f3 = Flow_net.add_flow net ~through:[ (a, 1) ] ~bytes:1000. () in
  close "three-way split" 30. (Flow_net.rate net f2);
  Flow_net.cancel net f1;
  Flow_net.cancel net f1 (* idempotent *);
  close "two-way split" 45. (Flow_net.rate net f3);
  close "cancelled flow has no rate" 0. (Flow_net.rate net f1)

(* --- cost allocation details --- *)

let test_cost_secondary_pays_no_fixed () =
  let outlays = Cost.outlays Baseline.design in
  (* The split mirror shares the array with the foreground copy: its items
     must not include the array's fixed cost. *)
  List.iter
    (fun (item : Cost.item) ->
      if
        item.Cost.technique = "split mirror"
        && String.length item.Cost.component >= 16
        && String.sub item.Cost.component 0 16 = "disk-array fixed"
      then Alcotest.fail "secondary technique charged a fixed cost")
    outlays.Cost.items;
  (* The foreground copy pays it exactly once (plus spare multiples). *)
  let fg_fixed =
    List.filter
      (fun (item : Cost.item) ->
        item.Cost.technique = "foreground"
        && item.Cost.component = "disk-array fixed")
      outlays.Cost.items
  in
  Alcotest.(check int) "one fixed charge" 1 (List.length fg_fixed)

let test_cost_spare_items_scale () =
  let outlays = Cost.outlays Baseline.design in
  let find component =
    List.find_opt (fun (i : Cost.item) -> i.Cost.component = component)
      outlays.Cost.items
  in
  match
    (find "disk-array fixed", find "disk-array fixed spare",
     find "disk-array fixed remote spare")
  with
  | Some base, Some spare, Some remote ->
    close_money "dedicated spare at par" base.Cost.amount spare.Cost.amount;
    close_money "shared facility at 20%"
      (Money.scale 0.2 base.Cost.amount)
      remote.Cost.amount
  | _ -> Alcotest.fail "expected fixed, spare and remote-spare items"

(* --- data-loss candidate lists --- *)

let test_candidates_reported () =
  let dl = Data_loss.compute Baseline.design Baseline.scenario_object in
  (* All three secondary levels are candidates for an object rollback. *)
  Alcotest.(check (list int)) "candidate levels" [ 1; 2; 3 ]
    (List.map fst dl.Data_loss.candidates);
  (* And their losses are ordered best-first by level here. *)
  match List.map snd dl.Data_loss.candidates with
  | [ Data_loss.Updates a; Data_loss.Updates b; Data_loss.Updates c ] ->
    Alcotest.(check bool) "mirror best" true
      (Duration.compare a b < 0 && Duration.compare b c < 0)
  | _ -> Alcotest.fail "all three levels can serve"

(* --- portfolio evaluation --- *)

let small_tenant =
  let workload =
    Storage_workload.Workload.make ~name:"scratch"
      ~data_capacity:(Size.gib 100.)
      ~avg_access_rate:(Rate.kib_per_sec 200.)
      ~avg_update_rate:(Rate.kib_per_sec 100.) ~burst_multiplier:4.
      ~batch_curve:
        (Storage_workload.Batch_curve.constant (Rate.kib_per_sec 80.))
  in
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Backup
              (Schedule.simple ~acc:(Duration.weeks 1.)
                 ~prop:(Duration.hours 12.) ~retention_count:4 ());
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
      ]
  in
  Design.make ~name:"scratch" ~workload ~hierarchy ~business:Baseline.business
    ()

let test_portfolio_evaluate_lists_members () =
  let p = Portfolio.make_exn [ Baseline.design; small_tenant ] in
  let results = Portfolio.evaluate p Baseline.scenario_site in
  Alcotest.(check (list string)) "member order" [ "baseline"; "scratch" ]
    (List.map fst results);
  List.iter
    (fun (_, (r : Evaluate.report)) ->
      Alcotest.(check (list string)) "no errors" [] r.Evaluate.errors)
    results

(* --- upstream lag with mixed-representation cycles --- *)

let test_upstream_lag_uses_full_windows () =
  (* When the backup level mixes fulls and incrementals, only fulls are
     vaulted: the vault's upstream lag uses the full's hold + prop. *)
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique = Technique.Backup differential_schedule;
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
        {
          technique =
            Technique.Vaulting
              (Schedule.simple ~acc:(Duration.weeks 1.)
                 ~prop:(Duration.hours 24.) ~hold:(Duration.hours 12.)
                 ~retention_count:156 ());
          device = Baseline.vault;
          link = Some Baseline.air_shipment;
        };
      ]
  in
  (* full hold 1 hr + full prop 24 hr = 25 hr, not the differential's
     1 + 6. *)
  close_duration "upstream from fulls" (Duration.hours 25.)
    (Hierarchy.upstream_lag hierarchy 2)

(* --- evaluate ordering --- *)

let test_run_all_preserves_order () =
  let reports = Evaluate.run_all Baseline.design Baseline.scenarios in
  Alcotest.(check int) "three reports" 3 (List.length reports);
  List.iter2
    (fun (r : Evaluate.report) scenario ->
      Alcotest.(check string) "same scope"
        (Location.scope_name scenario.Scenario.scope)
        (Location.scope_name r.Evaluate.scenario.Scenario.scope))
    reports Baseline.scenarios

let suite =
  [
    ( "coverage",
      [
        Alcotest.test_case "differential incremental sizes" `Quick
          test_differential_sizes;
        Alcotest.test_case "differential vs cumulative capacity" `Quick
          test_differential_vs_cumulative_capacity;
        Alcotest.test_case "differential recovery size" `Quick
          test_differential_recovery_size;
        Alcotest.test_case "flow chains" `Quick test_flow_chain_bottleneck;
        Alcotest.test_case "flow node accounting" `Quick test_flow_node_accounting;
        Alcotest.test_case "flow cancellation" `Quick
          test_flow_cancel_releases_bandwidth;
        Alcotest.test_case "secondary pays no fixed cost" `Quick
          test_cost_secondary_pays_no_fixed;
        Alcotest.test_case "spare cost scaling" `Quick test_cost_spare_items_scale;
        Alcotest.test_case "loss candidates reported" `Quick
          test_candidates_reported;
        Alcotest.test_case "portfolio evaluation" `Quick
          test_portfolio_evaluate_lists_members;
        Alcotest.test_case "upstream lag uses full windows" `Quick
          test_upstream_lag_uses_full_windows;
        Alcotest.test_case "run_all ordering" `Quick test_run_all_preserves_order;
      ] );
  ]
