(* Tests for hierarchy composition: structural validation, lag and
   retrieval-point range arithmetic (Figure 3), and failure survivorship. *)

open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_presets
open Helpers

let h = Baseline.design.Storage_model.Design.hierarchy

let level technique device link = { Hierarchy.technique; device; link }

let primary_level =
  level (Technique.Primary_copy { raid = Raid.Raid1 }) Baseline.disk_array None

let sm_level =
  level
    (Technique.Split_mirror Baseline.split_mirror_schedule)
    Baseline.disk_array None

let backup_level =
  level (Technique.Backup Baseline.backup_schedule) Baseline.tape_library
    (Some Baseline.san)

(* --- validation --- *)

let test_valid_baseline () =
  match Hierarchy.make [ primary_level; sm_level; backup_level ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "should validate: %s" e

let test_empty_rejected () =
  match Hierarchy.make [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty hierarchy accepted"

let test_level0_must_be_primary () =
  match Hierarchy.make [ sm_level ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-primary level 0 accepted"

let test_single_primary_only () =
  match Hierarchy.make [ primary_level; primary_level ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate primary accepted"

let test_retention_must_not_decrease () =
  let shallow =
    level
      (Technique.Backup
         (Schedule.simple ~acc:(Duration.weeks 1.) ~retention_count:2 ()))
      Baseline.tape_library (Some Baseline.san)
  in
  match Hierarchy.make [ primary_level; sm_level; shallow ] with
  | Error e ->
    Alcotest.(check bool) "mentions retention" true
      (String.length e > 0
      && String.lowercase_ascii e |> fun s ->
         String.length s >= 9 && String.sub s 0 9 = "retention")
  | Ok _ -> Alcotest.fail "decreasing retention accepted"

let test_accumulation_must_not_shrink () =
  let fast_backup =
    level
      (Technique.Backup
         (Schedule.simple ~acc:(Duration.hours 6.) ~retention_count:10 ()))
      Baseline.tape_library (Some Baseline.san)
  in
  (* Backup accW (6 hr) below the split mirror cycle (12 hr). *)
  match Hierarchy.make [ primary_level; sm_level; fast_backup ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shrinking accumulation accepted"

let test_colocated_must_share_device () =
  let misplaced =
    level
      (Technique.Split_mirror Baseline.split_mirror_schedule)
      Baseline.tape_library None
  in
  match Hierarchy.make [ primary_level; misplaced ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "split mirror off the primary array accepted"

let test_warnings_baseline_hold () =
  (* Baseline vault hold (4 wk + 12 hr) exceeds the backup retention
     window (4 wk): tapes sit 12 extra hours; warned, not an error. *)
  Alcotest.(check int) "one warning" 1 (List.length (Hierarchy.warnings h))

(* --- lags and ranges (Figure 3 goldens) --- *)

let test_lags_baseline () =
  close_duration "level 0" Duration.zero (Hierarchy.worst_lag h 0);
  close_duration "split mirror worst" (Duration.hours 12.) (Hierarchy.worst_lag h 1);
  close_duration "backup worst" (Duration.hours 217.) (Hierarchy.worst_lag h 2);
  close_duration "vault worst" (Duration.hours 1429.) (Hierarchy.worst_lag h 3);
  close_duration "backup best" (Duration.hours 49.) (Hierarchy.best_lag h 2);
  close_duration "vault best" (Duration.hours 757.) (Hierarchy.best_lag h 3);
  close_duration "upstream of vault" (Duration.hours 49.) (Hierarchy.upstream_lag h 3)

let test_ranges_baseline () =
  (match Hierarchy.guaranteed_range h 0 with
  | Some r -> close_duration "level 0 newest" Duration.zero (Age_range.newest_age r)
  | None -> Alcotest.fail "level 0 has a range");
  (match Hierarchy.guaranteed_range h 1 with
  | Some r ->
    close_duration "sm newest" (Duration.hours 12.) (Age_range.newest_age r);
    close_duration "sm oldest" (Duration.hours 36.) (Age_range.oldest_age r)
  | None -> Alcotest.fail "split mirror has a range");
  (match Hierarchy.guaranteed_range h 2 with
  | Some r ->
    close_duration "backup newest" (Duration.hours 217.) (Age_range.newest_age r);
    (* best lag + (retCnt-1) * cyclePer = 49 + 504 hr *)
    close_duration "backup oldest" (Duration.hours 553.) (Age_range.oldest_age r)
  | None -> Alcotest.fail "backup has a range");
  match Hierarchy.guaranteed_range h 3 with
  | Some r ->
    close_duration "vault newest" (Duration.hours 1429.) (Age_range.newest_age r);
    close_duration "vault oldest"
      (Duration.add (Duration.hours 757.) (Duration.weeks (4. *. 38.)))
      (Age_range.oldest_age r)
  | None -> Alcotest.fail "vault has a range"

let test_shallow_retention_range_empty () =
  (* A mirror with retCnt = 1 guarantees no rollback range at all. *)
  let mirror =
    level
      (Technique.Remote_mirror
         {
           mode = Technique.Asynchronous_batch;
           schedule =
             Schedule.simple ~acc:(Duration.minutes 1.)
               ~prop:(Duration.minutes 1.) ~retention_count:1 ();
         })
      Baseline.remote_array
      (Some (Baseline.oc3 ~links:1))
  in
  let h2 = Hierarchy.make_exn [ primary_level; mirror ] in
  Alcotest.(check bool) "no guaranteed range" true
    (Hierarchy.guaranteed_range h2 1 = None);
  close_duration "worst lag still defined" (Duration.minutes 2.)
    (Hierarchy.worst_lag h2 1)

(* --- survivorship --- *)

let test_survivors () =
  let check scope expected =
    Alcotest.(check (list int))
      (Location.scope_name scope)
      expected
      (Hierarchy.surviving_levels h ~scope)
  in
  check Location.Data_object [ 1; 2; 3 ];
  check (Location.Device "disk-array") [ 2; 3 ];
  check (Location.Device "tape-library") [ 0; 1; 3 ];
  check (Location.Site "primary") [ 3 ];
  check (Location.Building "bldg-1") [ 3 ];
  check (Location.Region "west") [ 3 ];
  check (Location.Region "east") [ 0; 1; 2 ]

let test_accessors () =
  Alcotest.(check int) "length" 4 (Hierarchy.length h);
  Alcotest.(check string) "primary device" "disk-array"
    (Hierarchy.primary h).Hierarchy.device.Device.name;
  check_raises_invalid "out of range" (fun () -> Hierarchy.level h 7)

(* --- property tests --- *)

let prop_worst_ge_best =
  QCheck.Test.make ~name:"hierarchy worst lag >= best lag" ~count:50
    QCheck.(pair (float_range 1. 48.) (int_range 1 8))
    (fun (acc_h, ret) ->
      let sm =
        level
          (Technique.Split_mirror
             (Schedule.simple ~acc:(Duration.hours acc_h) ~retention_count:ret ()))
          Baseline.disk_array None
      in
      match Hierarchy.make [ primary_level; sm ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok h2 ->
        Duration.compare (Hierarchy.worst_lag h2 1) (Hierarchy.best_lag h2 1) >= 0)

let prop_range_newest_is_worst_lag =
  QCheck.Test.make ~name:"range newest age equals worst lag" ~count:50
    QCheck.(pair (float_range 1. 48.) (int_range 2 8))
    (fun (acc_h, ret) ->
      let sm =
        level
          (Technique.Split_mirror
             (Schedule.simple ~acc:(Duration.hours acc_h) ~retention_count:ret ()))
          Baseline.disk_array None
      in
      match Hierarchy.make [ primary_level; sm ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok h2 -> (
        match Hierarchy.guaranteed_range h2 1 with
        | Some r ->
          Duration.equal (Age_range.newest_age r) (Hierarchy.worst_lag h2 1)
        | None -> false))

let suite =
  [
    ( "hierarchy",
      [
        Alcotest.test_case "valid baseline" `Quick test_valid_baseline;
        Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        Alcotest.test_case "level 0 must be primary" `Quick
          test_level0_must_be_primary;
        Alcotest.test_case "single primary" `Quick test_single_primary_only;
        Alcotest.test_case "retention monotonicity" `Quick
          test_retention_must_not_decrease;
        Alcotest.test_case "accumulation monotonicity" `Quick
          test_accumulation_must_not_shrink;
        Alcotest.test_case "colocation rule" `Quick test_colocated_must_share_device;
        Alcotest.test_case "hold-window warning" `Quick test_warnings_baseline_hold;
        Alcotest.test_case "lags (Figure 3 goldens)" `Quick test_lags_baseline;
        Alcotest.test_case "ranges (Figure 3 goldens)" `Quick test_ranges_baseline;
        Alcotest.test_case "shallow retention empty range" `Quick
          test_shallow_retention_range_empty;
        Alcotest.test_case "survivors per scope" `Quick test_survivors;
        Alcotest.test_case "accessors" `Quick test_accessors;
        qcheck prop_worst_ge_best;
        qcheck prop_range_newest_is_worst_lag;
      ] );
  ]
