(** Data protection techniques (§2, §3.2).

    Each technique is a way of maintaining retrieval points at one level of
    the protection hierarchy, parameterized by a {!Schedule.t}. The primary
    copy is the degenerate level-0 technique. *)

type mirror_mode =
  | Synchronous
      (** every update applied to the secondary before write completion;
          the link must sustain the {e peak} update rate *)
  | Asynchronous  (** updates propagated in the background, in order *)
  | Asynchronous_batch
      (** overwrites coalesced over the accumulation window and sent as
          atomic batches (Seneca/SnapMirror style) *)

type t =
  | Primary_copy of { raid : Raid.t }
      (** level 0: the foreground copy on a disk array *)
  | Split_mirror of Schedule.t
      (** PiT copies as whole-array mirrors on the primary array; a circular
          buffer of [retCnt] accessible mirrors plus one resilvering *)
  | Virtual_snapshot of Schedule.t
      (** PiT copies by copy-on-write (update-in-place variant: old value
          copied out before each foreground write) *)
  | Remote_mirror of { mode : mirror_mode; schedule : Schedule.t }
      (** an isolated current copy on another array, reached over a link *)
  | Backup of Schedule.t
      (** periodic copy of RPs to separate hardware (tape library) *)
  | Vaulting of Schedule.t
      (** periodic shipment of full-backup media to an offsite vault *)
  | Erasure_coded of {
      fragments : int;  (** [n]: fragments stored *)
      required : int;  (** [m]: fragments sufficient to reconstruct *)
      schedule : Schedule.t;
    }
      (** wide-area erasure coding (OceanStore-style, the paper's [15]):
          each accumulation window's unique updates are encoded into [n]
          fragments, any [m] of which reconstruct the data; storage and
          propagation cost a factor [n/m] of the underlying bytes. Not in
          the paper's case study — included to exercise its claim that the
          parameterization accommodates new techniques. *)

val name : t -> string
(** Stable label used in utilization and cost breakdowns ("foreground",
    "split mirror", ...). *)

val expansion_factor : t -> float
(** Storage expansion over the logical bytes: [n/m] for erasure coding,
    1 otherwise. *)

val schedule : t -> Schedule.t option
(** [None] for the primary copy; mirrors report their batch schedule. *)

val is_point_in_time : t -> bool
(** Split mirrors and snapshots retain historical versions and can serve
    rollback targets; mirrors track the current state only. *)

val colocated_with_primary : t -> bool
(** Split mirrors and virtual snapshots live on the primary array and are
    lost with it (and a corrupting [Data_object] failure also invalidates
    snapshots' shared physical storage only when the rollback target
    predates retention — handled by the range logic, not here). *)

val pp : t Fmt.t
