open Storage_units

type representation = Full | Cumulative | Differential

type windows = {
  accumulation : Duration.t;
  propagation : Duration.t;
  hold : Duration.t;
}

let windows ~acc ?(prop = Duration.zero) ?(hold = Duration.zero) () =
  if Duration.is_zero acc then invalid_arg "Schedule.windows: zero accW";
  if Duration.compare prop acc > 0 then
    invalid_arg "Schedule.windows: propW exceeds accW (level cannot keep up)";
  { accumulation = acc; propagation = prop; hold }

type t = {
  full : windows;
  secondary : (representation * windows) option;
  cycle_count : int;
  retention_count : int;
  copy_representation : representation;
}

let make ~full ?secondary ?(cycle_count = 0) ~retention_count
    ?(copy_representation = Full) () =
  if retention_count < 1 then
    invalid_arg "Schedule.make: retention count below 1";
  (match (secondary, cycle_count) with
  | None, 0 -> ()
  | None, _ -> invalid_arg "Schedule.make: cycle_count without secondary"
  | Some _, n when n <= 0 ->
    invalid_arg "Schedule.make: secondary requires positive cycle_count"
  | Some (Full, _), _ ->
    invalid_arg "Schedule.make: secondary representation cannot be Full"
  | Some _, _ -> ());
  { full; secondary; cycle_count; retention_count; copy_representation }

let simple ~acc ?prop ?hold ~retention_count () =
  make ~full:(windows ~acc ?prop ?hold ()) ~retention_count ()

let cycle_period t =
  match t.secondary with
  | None -> t.full.accumulation
  | Some (_, w) ->
    Duration.add t.full.accumulation
      (Duration.scale (float_of_int t.cycle_count) w.accumulation)

let retention_window t =
  Duration.scale (float_of_int t.retention_count) (cycle_period t)

let retention_span t =
  Duration.scale (float_of_int (t.retention_count - 1)) (cycle_period t)

let rp_interval_min t =
  match t.secondary with
  | None -> t.full.accumulation
  | Some (_, w) -> Duration.min t.full.accumulation w.accumulation

let propagation_max t =
  match t.secondary with
  | None -> t.full.propagation
  | Some (_, w) -> Duration.max t.full.propagation w.propagation

let onward_windows t = t.full

let worst_lag t ~upstream =
  Duration.sum
    [ upstream; t.full.hold; propagation_max t; rp_interval_min t ]

let best_lag t ~upstream =
  let own =
    match t.secondary with
    | None -> Duration.add t.full.hold t.full.propagation
    | Some (_, w) ->
      Duration.min
        (Duration.add t.full.hold t.full.propagation)
        (Duration.add w.hold w.propagation)
  in
  Duration.add upstream own

let pp_representation ppf = function
  | Full -> Fmt.string ppf "full"
  | Cumulative -> Fmt.string ppf "cumulative"
  | Differential -> Fmt.string ppf "differential"

let pp_windows ppf w =
  Fmt.pf ppf "acc=%a prop=%a hold=%a" Duration.pp w.accumulation Duration.pp
    w.propagation Duration.pp w.hold

let pp ppf t =
  Fmt.pf ppf "@[<h>full(%a)%a retCnt=%d retW=%a@]" pp_windows t.full
    (Fmt.option (fun ppf (r, w) ->
         Fmt.pf ppf " + %dx %a(%a)" t.cycle_count pp_representation r
           pp_windows w))
    t.secondary t.retention_count Duration.pp (retention_window t)
