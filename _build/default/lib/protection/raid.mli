(** RAID organization of a disk array (§2).

    The primary copy is protected against internal disk failure by RAID;
    the framework needs only its raw-capacity overhead (the case study's
    array percentages include a RAID-1 factor of two) and its write
    amplification (used by the simulator's contention model and the
    ablation benches; the paper's utilization model charges client
    bandwidth only). *)

type t =
  | Raid0  (** striping only, no redundancy *)
  | Raid1  (** mirroring *)
  | Raid5 of { stripe_width : int }  (** rotating parity over [stripe_width] disks *)
  | Raid10  (** striped mirrors *)

val capacity_factor : t -> float
(** Raw bytes stored per logical byte: 1 for RAID-0, 2 for RAID-1/10,
    [w / (w-1)] for RAID-5. *)

val write_amplification : t -> float
(** Device-level writes per logical write: 1, 2, 4 (read-modify-write), 2. *)

val tolerates_disk_failure : t -> bool
val pp : t Fmt.t
val to_string : t -> string
