open Storage_units
open Storage_workload
open Storage_device

(** Normal-mode workload demands of each data protection technique
    (§3.2.3).

    Each technique converts its policy parameters into bandwidth and
    capacity demands on the devices it touches: the {e source} device it
    reads RPs from (the level above), the {e target} device where its RPs
    live, and the interconnect in between. The compositional model maps
    these onto concrete devices and sums them. *)

type placement = {
  on_source : Demand.t;
  on_target : Demand.t;
  on_link : Rate.t;  (** sustained interconnect bandwidth demand *)
}

val of_technique :
  workload:Workload.t ->
  ?host_raid:Raid.t ->
  ?upstream:Schedule.t ->
  Technique.t ->
  placement
(** Demands for one technique.

    [host_raid] is the RAID organization of the device hosting this level's
    copies (capacity is charged in raw bytes; default {!Raid.Raid0}).
    [upstream] is the schedule of the level RPs are received from; it is
    needed only by [Vaulting], which must make an extra media copy when its
    hold window is shorter than the upstream retention window (§3.2.3).

    Demand summary per technique:
    - [Primary_copy]: client access rate and [raid * dataCap] on the array.
    - [Split_mirror]: [(retCnt + 1) * raid * dataCap] capacity; resilvering
      reads and writes the unique updates of [(retCnt + 1)] windows each
      accumulation window.
    - [Virtual_snapshot]: copy-on-write read+write at the raw update rate;
      capacity for [retCnt] windows of unique updates.
    - [Remote_mirror]: link (and destination-array write) bandwidth at the
      average update rate (sync/async) or the batched unique rate
      (async-batch); a full copy of capacity on the destination.
    - [Backup]: read on the source and write on the target at the larger of
      the full-backup and biggest-incremental transfer rates; target
      capacity for [retCnt] cycles plus one extra full.
    - [Vaulting]: [retCnt] fulls of capacity at the vault; no bandwidth
      unless the hold window forces an extra copy at the source. *)

val required_link_bandwidth : workload:Workload.t -> Technique.t -> Rate.t
(** Minimum interconnect bandwidth for correct operation: the {e peak}
    update rate for a synchronous mirror (each write waits for the remote
    copy), the average rate for asynchronous modes, zero for non-mirror
    techniques. The design validator compares this against provisioned link
    bandwidth. *)

val full_size : Workload.t -> Size.t
(** Size of a full RP: the data capacity. *)

val incremental_size : Workload.t -> Schedule.t -> index:int -> Size.t
(** Size of the [index]-th (1-based) incremental of a cycle: cumulative
    incrementals cover [index] secondary windows since the last full;
    differentials cover one window. Raises [Invalid_argument] when the
    schedule has no secondary representation or [index] is out of
    [1..cycleCnt]. *)

val largest_incremental : Workload.t -> Schedule.t -> Size.t
(** Zero when the schedule has no secondary representation. *)

val cycle_capacity : Workload.t -> Schedule.t -> Size.t
(** Bytes retained per cycle: one full plus all its incrementals. *)

val recovery_size : workload:Workload.t -> Technique.t -> Size.t
(** Worst-case bytes transferred when this level sources a full recovery:
    a full copy, plus the largest incremental for backup cycles with
    incrementals. *)

val shipments_per_year : Schedule.t -> float
(** Vault shipments per year: one per accumulation window. *)
