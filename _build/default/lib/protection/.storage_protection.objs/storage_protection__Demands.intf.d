lib/protection/demands.mli: Demand Raid Rate Schedule Size Storage_device Storage_units Storage_workload Technique Workload
