lib/protection/technique.mli: Fmt Raid Schedule
