lib/protection/schedule.ml: Duration Fmt Storage_units
