lib/protection/technique.ml: Fmt Raid Schedule
