lib/protection/raid.mli: Fmt
