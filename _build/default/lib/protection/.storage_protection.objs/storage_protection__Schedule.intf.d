lib/protection/schedule.mli: Duration Fmt Storage_units
