lib/protection/demands.ml: Demand Duration List Raid Rate Schedule Size Storage_device Storage_units Storage_workload Technique Workload
