lib/protection/raid.ml: Fmt Printf
