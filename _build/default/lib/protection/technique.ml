type mirror_mode = Synchronous | Asynchronous | Asynchronous_batch

type t =
  | Primary_copy of { raid : Raid.t }
  | Split_mirror of Schedule.t
  | Virtual_snapshot of Schedule.t
  | Remote_mirror of { mode : mirror_mode; schedule : Schedule.t }
  | Backup of Schedule.t
  | Vaulting of Schedule.t
  | Erasure_coded of {
      fragments : int;
      required : int;
      schedule : Schedule.t;
    }

let name = function
  | Primary_copy _ -> "foreground"
  | Split_mirror _ -> "split mirror"
  | Virtual_snapshot _ -> "virtual snapshot"
  | Remote_mirror { mode = Synchronous; _ } -> "sync mirror"
  | Remote_mirror { mode = Asynchronous; _ } -> "async mirror"
  | Remote_mirror { mode = Asynchronous_batch; _ } -> "async batch mirror"
  | Backup _ -> "backup"
  | Vaulting _ -> "vaulting"
  | Erasure_coded _ -> "erasure coded"

let schedule = function
  | Primary_copy _ -> None
  | Split_mirror s | Virtual_snapshot s | Backup s | Vaulting s
  | Remote_mirror { schedule = s; _ }
  | Erasure_coded { schedule = s; _ } ->
    Some s

let expansion_factor = function
  | Erasure_coded { fragments; required; _ } ->
    if required <= 0 || fragments < required then
      invalid_arg "Technique.Erasure_coded: need fragments >= required > 0";
    float_of_int fragments /. float_of_int required
  | Primary_copy _ | Split_mirror _ | Virtual_snapshot _ | Remote_mirror _
  | Backup _ | Vaulting _ ->
    1.

let is_point_in_time = function
  | Split_mirror _ | Virtual_snapshot _ | Backup _ | Vaulting _
  | Erasure_coded _ ->
    true
  | Primary_copy _ | Remote_mirror _ -> false

let colocated_with_primary = function
  | Split_mirror _ | Virtual_snapshot _ -> true
  | Primary_copy _ | Remote_mirror _ | Backup _ | Vaulting _
  | Erasure_coded _ ->
    false

let pp ppf t =
  match schedule t with
  | None -> Fmt.string ppf (name t)
  | Some s -> Fmt.pf ppf "%s [%a]" (name t) Schedule.pp s
