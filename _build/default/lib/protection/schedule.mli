open Storage_units

(** Retrieval-point schedules: the uniform parameterization of data
    protection techniques (§3.2.1, Table 1, Figure 2).

    A level's schedule says how often retrieval points (RPs) are created
    ([accW]), how long each waits before transmission ([holdW]), how long
    transmission takes ([propW]), how many are kept ([retCnt] cycles of
    [cyclePer]), and in what representation. A cycle optionally mixes a
    primary representation (e.g. a weekend full backup) with [cycleCnt]
    secondary windows (e.g. weekday cumulative incrementals), each with its
    own windows. *)

type representation =
  | Full  (** complete copy of the dataset *)
  | Cumulative  (** all changes since the last full *)
  | Differential  (** changes since the last RP of any kind *)

type windows = private {
  accumulation : Duration.t;  (** [accW]: period between RPs of this kind *)
  propagation : Duration.t;  (** [propW]: transmission window *)
  hold : Duration.t;  (** [holdW]: delay between receipt and transmission *)
}

val windows :
  acc:Duration.t -> ?prop:Duration.t -> ?hold:Duration.t -> unit -> windows
(** [prop] and [hold] default to zero. Raises [Invalid_argument] when [acc]
    is zero or [prop > acc] (the flow between levels could not keep up,
    §3.2.1 convention 1). *)

type t = private {
  full : windows;  (** windows of the primary (full) representation *)
  secondary : (representation * windows) option;
      (** optional secondary representation within each cycle *)
  cycle_count : int;  (** [cycleCnt]: secondary windows per cycle *)
  retention_count : int;  (** [retCnt]: cycles of RPs retained *)
  copy_representation : representation;  (** [copyRep] *)
}

val make :
  full:windows ->
  ?secondary:representation * windows ->
  ?cycle_count:int ->
  retention_count:int ->
  ?copy_representation:representation ->
  unit ->
  t
(** Raises [Invalid_argument] when [retention_count < 1], when a secondary
    representation is [Full], or when [cycle_count] is inconsistent with the
    presence of [secondary] (zero with a secondary, or nonzero without).
    The cycle period is defined as
    [full.acc + cycle_count * secondary.acc]. *)

val simple :
  acc:Duration.t ->
  ?prop:Duration.t ->
  ?hold:Duration.t ->
  retention_count:int ->
  unit ->
  t
(** A cycle holding a single full RP: [cyclePer = accW]. *)

val cycle_period : t -> Duration.t
(** [cyclePer]: [full.acc + cycle_count * secondary.acc]. *)

val retention_window : t -> Duration.t
(** [retW]: how long an RP is retained,
    [retention_count * cycle_period]. *)

val retention_span : t -> Duration.t
(** The paper's retention term for the guaranteed range (§3.3.2):
    [(retCnt - 1) * cyclePer]. *)

val rp_interval_min : t -> Duration.t
(** Shortest interval between consecutive RP arrivals at this level
    (the secondary [accW] when present, else the full [accW]). Bounds the
    best-case data loss once an RP has propagated. *)

val propagation_max : t -> Duration.t
(** Longest propagation window across representations: bounds how stale the
    in-flight RP can be. *)

val onward_windows : t -> windows
(** Windows of the representation forwarded to the next level (the full
    representation: only fulls are vaulted, §3.2.3). *)

val worst_lag : t -> upstream:Duration.t -> Duration.t
(** Worst-case time lag of this level relative to the primary copy:
    [upstream + holdW + max propW + min accW] (§3.3.2-3.3.3, validated
    against the case study's 217/73/37-hour data-loss cells). [upstream] is
    the sum of [holdW + propW] of the levels in between. *)

val best_lag : t -> upstream:Duration.t -> Duration.t
(** Lag just after an RP arrives: [upstream + holdW + propW]. *)

val pp : t Fmt.t
val pp_representation : representation Fmt.t
