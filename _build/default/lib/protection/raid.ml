type t = Raid0 | Raid1 | Raid5 of { stripe_width : int } | Raid10

let check_stripe w =
  if w < 3 then invalid_arg "Raid5: stripe width must be at least 3"

let capacity_factor = function
  | Raid0 -> 1.
  | Raid1 | Raid10 -> 2.
  | Raid5 { stripe_width } ->
    check_stripe stripe_width;
    float_of_int stripe_width /. float_of_int (stripe_width - 1)

let write_amplification = function
  | Raid0 -> 1.
  | Raid1 | Raid10 -> 2.
  | Raid5 _ -> 4.

let tolerates_disk_failure = function
  | Raid0 -> false
  | Raid1 | Raid5 _ | Raid10 -> true

let to_string = function
  | Raid0 -> "RAID-0"
  | Raid1 -> "RAID-1"
  | Raid5 { stripe_width } -> Printf.sprintf "RAID-5(%d)" stripe_width
  | Raid10 -> "RAID-10"

let pp ppf t = Fmt.string ppf (to_string t)
