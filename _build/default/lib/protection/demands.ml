open Storage_units
open Storage_workload
open Storage_device

type placement = {
  on_source : Demand.t;
  on_target : Demand.t;
  on_link : Rate.t;
}

let nothing =
  { on_source = Demand.zero; on_target = Demand.zero; on_link = Rate.zero }

let full_size (w : Workload.t) = w.data_capacity

let incremental_size (w : Workload.t) (s : Schedule.t) ~index =
  match s.Schedule.secondary with
  | None -> invalid_arg "Demands.incremental_size: no secondary representation"
  | Some (rep, win) ->
    if index < 1 || index > s.Schedule.cycle_count then
      invalid_arg "Demands.incremental_size: index out of cycle";
    let span =
      match rep with
      | Schedule.Cumulative ->
        Duration.scale (float_of_int index) win.Schedule.accumulation
      | Schedule.Differential -> win.Schedule.accumulation
      | Schedule.Full -> assert false (* rejected by Schedule.make *)
    in
    Workload.unique_bytes w span

let largest_incremental (w : Workload.t) (s : Schedule.t) =
  match s.Schedule.secondary with
  | None -> Size.zero
  | Some _ -> incremental_size w s ~index:s.Schedule.cycle_count

let cycle_capacity (w : Workload.t) (s : Schedule.t) =
  let incrementals =
    match s.Schedule.secondary with
    | None -> Size.zero
    | Some _ ->
      List.init s.Schedule.cycle_count (fun i ->
          incremental_size w s ~index:(i + 1))
      |> Size.sum
  in
  Size.add (full_size w) incrementals

let mirror_link_rate (w : Workload.t) mode (s : Schedule.t) =
  match (mode : Technique.mirror_mode) with
  | Synchronous | Asynchronous -> w.avg_update_rate
  | Asynchronous_batch ->
    Workload.batch_update_rate w s.Schedule.full.Schedule.accumulation

let of_technique ~workload ?(host_raid = Raid.Raid0) ?upstream technique =
  let w : Workload.t = workload in
  let raid = Raid.capacity_factor host_raid in
  match (technique : Technique.t) with
  | Primary_copy { raid = r } ->
    let raid = Raid.capacity_factor r in
    {
      nothing with
      on_target =
        Demand.make ~read_bw:w.avg_access_rate
          ~capacity:(Size.scale raid w.data_capacity)
          ();
    }
  | Split_mirror s ->
    (* retCnt accessible mirrors plus one being resilvered; resilvering must
       reapply the unique updates of the (retCnt + 1) windows since that
       mirror was last split, within one accumulation window. *)
    let copies = float_of_int (s.Schedule.retention_count + 1) in
    let span = Duration.scale copies (Schedule.cycle_period s) in
    let volume = Workload.unique_bytes w span in
    let resilver_rate =
      Rate.of_size_per volume s.Schedule.full.Schedule.accumulation
    in
    {
      nothing with
      on_target =
        Demand.make ~read_bw:resilver_rate ~write_bw:resilver_rate
          ~capacity:(Size.scale (copies *. raid) w.data_capacity)
          ();
    }
  | Virtual_snapshot s ->
    (* Update-in-place copy-on-write: one extra read and one extra write per
       foreground write; capacity for the unique updates of each retained
       snapshot's window. *)
    let per_snapshot =
      Workload.unique_bytes w s.Schedule.full.Schedule.accumulation
    in
    let cap =
      Size.scale
        (float_of_int s.Schedule.retention_count *. raid)
        per_snapshot
    in
    {
      nothing with
      on_target =
        Demand.make ~read_bw:w.avg_update_rate ~write_bw:w.avg_update_rate
          ~capacity:cap ();
    }
  | Remote_mirror { mode; schedule } ->
    let rate = mirror_link_rate w mode schedule in
    {
      (* No demand on the source array's client interface: arrays expose a
         separate replication interface (§3.2.3). *)
      on_source = Demand.zero;
      on_target =
        Demand.make ~write_bw:rate
          ~capacity:(Size.scale raid w.data_capacity)
          ();
      on_link = rate;
    }
  | Backup s ->
    let full_rate =
      Rate.of_size_per (full_size w) s.Schedule.full.Schedule.propagation
    in
    let incr_rate =
      match s.Schedule.secondary with
      | None -> Rate.zero
      | Some (_, win) ->
        Rate.of_size_per (largest_incremental w s) win.Schedule.propagation
    in
    let bw = Rate.max full_rate incr_rate in
    let cap =
      Size.add
        (Size.scale (float_of_int s.Schedule.retention_count)
           (cycle_capacity w s))
        (full_size w)
    in
    {
      on_source = Demand.make ~read_bw:bw ();
      on_target = Demand.make ~write_bw:bw ~capacity:cap ();
      on_link = bw;
    }
  | Vaulting s ->
    let cap =
      Size.scale (float_of_int s.Schedule.retention_count) (full_size w)
    in
    (* When tapes must leave before their backup retention expires, the
       backup device makes an extra media copy each vault window. *)
    let extra_copy =
      match upstream with
      | None -> false
      | Some up ->
        Duration.compare s.Schedule.full.Schedule.hold
          (Schedule.retention_window up)
        < 0
    in
    let on_source =
      if extra_copy then begin
        let rate =
          Rate.of_size_per (full_size w) s.Schedule.full.Schedule.accumulation
        in
        Demand.make ~read_bw:rate ~write_bw:rate ()
      end
      else Demand.zero
    in
    { nothing with on_source; on_target = Demand.make ~capacity:cap () }
  | Erasure_coded { schedule = s; _ } as tech ->
    (* Each window's unique updates are encoded and spread across the
       fragment store; storage and propagation carry the n/m expansion.
       The store keeps an up-to-date coded copy plus the retained
       historical windows. *)
    let expand = Technique.expansion_factor tech in
    let per_window =
      Workload.unique_bytes w s.Schedule.full.Schedule.accumulation
    in
    let rate =
      Rate.scale expand
        (Rate.of_size_per per_window s.Schedule.full.Schedule.accumulation)
    in
    let cap =
      Size.scale expand
        (Size.add w.data_capacity
           (Size.scale
              (float_of_int (s.Schedule.retention_count - 1))
              per_window))
    in
    {
      on_source = Demand.zero;
      on_target = Demand.make ~write_bw:rate ~capacity:cap ();
      on_link = rate;
    }

let required_link_bandwidth ~workload technique =
  let w : Workload.t = workload in
  match (technique : Technique.t) with
  | Remote_mirror { mode = Synchronous; _ } -> Workload.peak_update_rate w
  | Remote_mirror { mode = Asynchronous; _ } -> w.avg_update_rate
  | Remote_mirror { mode = Asynchronous_batch; schedule } ->
    mirror_link_rate w Asynchronous_batch schedule
  | Erasure_coded { schedule; _ } as tech ->
    Rate.scale
      (Technique.expansion_factor tech)
      (mirror_link_rate w Asynchronous_batch schedule)
  | Primary_copy _ | Split_mirror _ | Virtual_snapshot _ | Backup _
  | Vaulting _ ->
    Rate.zero

let recovery_size ~workload technique =
  let w : Workload.t = workload in
  match (technique : Technique.t) with
  | Backup s -> Size.add (full_size w) (largest_incremental w s)
  | Erasure_coded _ ->
    (* Reconstruction fetches m fragments totalling the logical size. *)
    full_size w
  | Primary_copy _ | Split_mirror _ | Virtual_snapshot _ | Remote_mirror _
  | Vaulting _ ->
    full_size w

let shipments_per_year (s : Schedule.t) =
  Duration.ratio (Duration.years 1.) s.Schedule.full.Schedule.accumulation
