type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy = t.heap.(0) in
    let heap = Array.make ncap dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    let s = if l < t.size && before t.heap.(l) t.heap.(i) then l else i in
    if r < t.size && before t.heap.(r) t.heap.(s) then r else s
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: non-finite time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (root.time, root.payload)
  end

let clear t = t.size <- 0

let drain_until t bound =
  let rec loop acc =
    match peek_time t with
    | Some time when time <= bound -> (
      match pop t with Some ev -> loop (ev :: acc) | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (loop [])
