(** A priority queue of timestamped events (binary min-heap).

    The simulator's core scheduling structure: O(log n) insertion and
    extraction, stable enough for discrete-event use (ties break by
    insertion order, so same-time events fire first-scheduled-first). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a non-finite time. *)

val peek_time : 'a t -> float option
val pop : 'a t -> (float * 'a) option
val clear : 'a t -> unit

val drain_until : 'a t -> float -> (float * 'a) list
(** Pops every event with time <= the bound, in order. *)
