lib/sim/flow_net.mli:
