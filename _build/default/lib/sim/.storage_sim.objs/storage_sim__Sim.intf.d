lib/sim/sim.mli: Data_loss Design Duration Scenario Storage_model Storage_units
