lib/sim/flow_net.ml: Float Hashtbl List Option String
