open Storage_units

(** Scalar value parsers for the design-description language.

    All parsers are forgiving about whitespace and case, and return
    descriptive errors rather than raising. Supported notations:

    - durations: ["90s"], ["30 min"], ["12hr"], ["1.5d"], ["4wk"],
      ["3yr"], ["0"] and sums like ["4wk + 12hr"];
    - sizes: ["512B"], ["64KiB"], ["146 MiB"], ["1360GiB"], ["1.3TiB"]
      (also the common [KB]/[MB]/[GB]/[TB] spellings, read as binary, as
      in the paper);
    - rates: a size per second (["25 MiB/s"], ["727KB/s"]) or a telecom
      line rate in decimal megabits (["155 Mbps"]);
    - money: ["$123297"], ["98895"], ["$1.5M"], ["50k"];
    - counted values: ["256 x 73GiB"] splits into a count and a rest. *)

val duration : string -> (Duration.t, string) result
val size : string -> (Size.t, string) result
val rate : string -> (Rate.t, string) result
val money : string -> (Money.t, string) result
val int_pos : string -> (int, string) result
val float_pos : string -> (float, string) result

val counted : string -> (int * string, string) result
(** ["N x rest"] -> [(N, rest)]. *)
