lib/spec/values.mli: Duration Money Rate Size Storage_units
