lib/spec/spec.mli: Design Scenario Storage_model
