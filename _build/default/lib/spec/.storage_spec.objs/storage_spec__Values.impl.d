lib/spec/values.ml: Duration Float List Money Printf Rate Result Size Storage_units String
