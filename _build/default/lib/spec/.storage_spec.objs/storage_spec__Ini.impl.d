lib/spec/ini.ml: List Printf Result String
