lib/spec/ini.mli:
