(** Sectioned key-value file syntax for design descriptions.

    {v
    # comment
    [section]          or  [section argument]
    key = value        # trailing comments (after " #") are stripped
    v}

    Keys are case-insensitive and unique within a section; section
    (name, argument) pairs are unique within a file. Line numbers are
    retained for error reporting. *)

type section = private {
  kind : string;  (** lowercase section name, e.g. ["device"] *)
  arg : string option;  (** e.g. the device name in [[device array]] *)
  entries : (string * string) list;  (** lowercase key -> raw value *)
  line : int;
}

val parse : string -> (section list, string) result
(** Parses a whole file's text. Errors name the offending line. *)

val find_all : section list -> kind:string -> section list
val find_one : section list -> kind:string -> (section, string) result
(** Errors when missing or duplicated. *)

val get : section -> string -> (string, string) result
(** Required key; the error names the section and key. *)

val get_opt : section -> string -> string option

val get_parsed :
  section -> string -> (string -> ('a, string) result) -> ('a, string) result
(** Required key run through a {!Values} parser, with a contextual error. *)

val get_parsed_opt :
  section -> string -> (string -> ('a, string) result) ->
  ('a option, string) result

val unknown_keys : section -> known:string list -> string list
(** Keys present in the section but not in [known] — used to reject
    misspellings instead of silently ignoring them. *)
