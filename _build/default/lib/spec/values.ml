open Storage_units

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let trim = String.trim

let lowercase = String.lowercase_ascii

(* Split a leading number from its unit suffix: "12.5hr" -> (12.5, "hr"). *)
let number_and_unit s =
  let s = trim s in
  let n = String.length s in
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' in
  let rec split i = if i < n && is_num s.[i] then split (i + 1) else i in
  let cut = split 0 in
  if cut = 0 then err "expected a number in %S" s
  else begin
    match float_of_string_opt (String.sub s 0 cut) with
    | None -> err "malformed number in %S" s
    | Some v -> Ok (v, lowercase (trim (String.sub s cut (n - cut))))
  end

let float_pos s =
  let* v, unit = number_and_unit s in
  if unit <> "" then err "unexpected unit %S" unit
  else if v < 0. then err "expected a non-negative number, got %g" v
  else Ok v

let int_pos s =
  let* v = float_pos s in
  if Float.is_integer v then Ok (int_of_float v)
  else err "expected an integer, got %g" v

let duration_term s =
  let* v, unit = number_and_unit s in
  if v < 0. then err "negative duration %S" s
  else begin
    match unit with
    | "" when v = 0. -> Ok Duration.zero
    | "s" | "sec" | "secs" | "second" | "seconds" -> Ok (Duration.seconds v)
    | "min" | "mins" | "minute" | "minutes" -> Ok (Duration.minutes v)
    | "h" | "hr" | "hrs" | "hour" | "hours" -> Ok (Duration.hours v)
    | "d" | "day" | "days" -> Ok (Duration.days v)
    | "wk" | "wks" | "week" | "weeks" | "w" -> Ok (Duration.weeks v)
    | "yr" | "yrs" | "year" | "years" | "y" -> Ok (Duration.years v)
    | "" -> err "duration %S needs a unit (s/min/hr/d/wk/yr)" s
    | u -> err "unknown duration unit %S" u
  end

let duration s =
  let terms = String.split_on_char '+' s in
  List.fold_left
    (fun acc term ->
      let* total = acc in
      let* t = duration_term term in
      Ok (Duration.add total t))
    (Ok Duration.zero) terms

let size s =
  let* v, unit = number_and_unit s in
  if v < 0. then err "negative size %S" s
  else begin
    match unit with
    | "b" | "byte" | "bytes" -> Ok (Size.bytes v)
    | "kib" | "kb" | "k" -> Ok (Size.kib v)
    | "mib" | "mb" | "m" -> Ok (Size.mib v)
    | "gib" | "gb" | "g" -> Ok (Size.gib v)
    | "tib" | "tb" | "t" -> Ok (Size.tib v)
    | "" when v = 0. -> Ok Size.zero
    | "" -> err "size %S needs a unit (B/KiB/MiB/GiB/TiB)" s
    | u -> err "unknown size unit %S" u
  end

let rate s =
  let s = trim s in
  match String.index_opt s '/' with
  | Some i
    when lowercase (trim (String.sub s (i + 1) (String.length s - i - 1)))
         = "s" ->
    let* sz = size (String.sub s 0 i) in
    Ok (Rate.bytes_per_sec (Size.to_bytes sz))
  | _ -> (
    let* v, unit = number_and_unit s in
    if v < 0. then err "negative rate %S" s
    else begin
      match unit with
      | "mbps" | "mbit/s" | "mb/s (decimal)" -> Ok (Rate.megabits_per_sec v)
      | "gbps" -> Ok (Rate.megabits_per_sec (1000. *. v))
      | "" when v = 0. -> Ok Rate.zero
      | u -> err "unknown rate %S (use e.g. \"25 MiB/s\" or \"155 Mbps\")" u
    end)

let money s =
  let s = trim s in
  let s =
    if String.length s > 0 && s.[0] = '$' then String.sub s 1 (String.length s - 1)
    else s
  in
  let* v, unit = number_and_unit s in
  if v < 0. then err "negative amount %S" s
  else begin
    match unit with
    | "" -> Ok (Money.usd v)
    | "k" -> Ok (Money.of_thousands v)
    | "m" -> Ok (Money.of_millions v)
    | u -> err "unknown money suffix %S" u
  end

let counted s =
  let lower = lowercase s in
  match String.index_opt lower 'x' with
  | None -> err "expected \"COUNT x VALUE\" in %S" s
  | Some i ->
    let* n = int_pos (String.sub s 0 i) in
    if n <= 0 then err "count must be positive in %S" s
    else Ok (n, trim (String.sub s (i + 1) (String.length s - i - 1)))
