type section = {
  kind : string;
  arg : string option;
  entries : (string * string) list;
  line : int;
}

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt
let lowercase = String.lowercase_ascii

let parse text =
  let lines = String.split_on_char '\n' text in
  let finish current sections =
    match current with
    | None -> sections
    | Some s -> { s with entries = List.rev s.entries } :: sections
  in
  let rec loop lineno current sections = function
    | [] -> Ok (List.rev (finish current sections))
    | raw :: rest -> (
      let line = String.trim raw in
      let line =
        match String.index_opt line '#' with
        | Some 0 -> ""
        | _ -> line
      in
      if line = "" then loop (lineno + 1) current sections rest
      else if line.[0] = '[' then begin
        if line.[String.length line - 1] <> ']' then
          err "line %d: unterminated section header" lineno
        else begin
          let inner = String.sub line 1 (String.length line - 2) in
          let kind, arg =
            match String.index_opt inner ' ' with
            | None -> (inner, None)
            | Some i ->
              ( String.sub inner 0 i,
                Some
                  (String.trim
                     (String.sub inner (i + 1) (String.length inner - i - 1)))
              )
          in
          if kind = "" then err "line %d: empty section name" lineno
          else begin
            let section =
              { kind = lowercase kind; arg; entries = []; line = lineno }
            in
            loop (lineno + 1) (Some section) (finish current sections) rest
          end
        end
      end
      else begin
        match String.index_opt line '=' with
        | None -> err "line %d: expected \"key = value\" or a [section]" lineno
        | Some i -> (
          let key = lowercase (String.trim (String.sub line 0 i)) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          (* Trailing comments: strip from the first " #". *)
          let value =
            let rec cut j =
              if j + 1 >= String.length value then value
              else if value.[j] = ' ' && value.[j + 1] = '#' then
                String.trim (String.sub value 0 j)
              else cut (j + 1)
            in
            cut 0
          in
          if key = "" then err "line %d: empty key" lineno
          else begin
            match current with
            | None -> err "line %d: key %S outside any section" lineno key
            | Some s ->
              if List.mem_assoc key s.entries then
                err "line %d: duplicate key %S in [%s]" lineno key s.kind
              else
                loop (lineno + 1)
                  (Some { s with entries = (key, value) :: s.entries })
                  sections rest
          end)
      end)
  in
  let* sections = loop 1 None [] lines in
  (* Section identity (kind, arg) must be unique. *)
  let rec dup_check seen = function
    | [] -> Ok sections
    | s :: rest ->
      let id = (s.kind, s.arg) in
      if List.mem id seen then
        err "line %d: duplicate section [%s%s]" s.line s.kind
          (match s.arg with Some a -> " " ^ a | None -> "")
      else dup_check (id :: seen) rest
  in
  dup_check [] sections

let find_all sections ~kind =
  List.filter (fun s -> String.equal s.kind kind) sections

let find_one sections ~kind =
  match find_all sections ~kind with
  | [ s ] -> Ok s
  | [] -> err "missing required section [%s]" kind
  | _ -> err "section [%s] appears more than once" kind

let section_label s =
  match s.arg with Some a -> Printf.sprintf "[%s %s]" s.kind a | None -> "[" ^ s.kind ^ "]"

let get s key =
  match List.assoc_opt (lowercase key) s.entries with
  | Some v -> Ok v
  | None -> err "%s (line %d): missing key %S" (section_label s) s.line key

let get_opt s key = List.assoc_opt (lowercase key) s.entries

let get_parsed s key parser =
  let* raw = get s key in
  match parser raw with
  | Ok v -> Ok v
  | Error e -> err "%s: key %S: %s" (section_label s) key e

let get_parsed_opt s key parser =
  match get_opt s key with
  | None -> Ok None
  | Some raw -> (
    match parser raw with
    | Ok v -> Ok (Some v)
    | Error e -> err "%s: key %S: %s" (section_label s) key e)

let unknown_keys s ~known =
  let known = List.map lowercase known in
  List.filter_map
    (fun (k, _) -> if List.mem k known then None else Some k)
    s.entries
