(** Markdown dependability reports.

    Renders everything a design review needs into one document: the
    workload and protection hierarchy, normal-mode utilization, the
    outcome of each failure scenario (source, recovery time, loss,
    penalties, RTO/RPO compliance), the cost breakdown, and — when
    scenario frequencies are supplied — the expected-annual-cost and
    Monte-Carlo tail-risk figures. *)

val markdown :
  ?risk:Risk.weighted list ->
  ?risk_horizon_years:float ->
  Design.t ->
  (string * Scenario.t) list ->
  string
(** [markdown design scenarios] renders the report; [scenarios] pairs a
    display name with each scenario. When [risk] is given, a risk section
    is appended ([risk_horizon_years] defaults to 10 for the Monte-Carlo
    distribution). Raises [Invalid_argument] on an empty scenario list. *)
