open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy

type item = { technique : string; component : string; amount : Money.t }

type outlays = {
  items : item list;
  by_technique : (string * Money.t) list;
  total : Money.t;
}

let device_items design (dev : Device.t) =
  let owner = Design.primary_technique_of_device design dev in
  let shares = Demand.by_technique (Design.demands_on design dev) in
  let base_items =
    List.concat_map
      (fun (technique, demand) ->
        let items = ref [] in
        let push component amount =
          if not (Money.is_zero amount) then
            items := { technique; component; amount } :: !items
        in
        if String.equal technique owner then
          push (dev.Device.name ^ " fixed") dev.Device.cost.Cost_model.fixed;
        push
          (dev.Device.name ^ " capacity")
          (Cost_model.capacity_cost dev.Device.cost demand.Demand.capacity);
        push
          (dev.Device.name ^ " bandwidth")
          (Cost_model.bandwidth_cost dev.Device.cost (Demand.total_bw demand));
        List.rev !items)
      shares
  in
  (* Spares shadow the device: each technique's share is multiplied by the
     spare's cost factor (§3.3.5, "allocated in a similar fashion"). *)
  let spare_items label spare =
    List.filter_map
      (fun { technique; component; amount } ->
        let cost = Spare.cost spare ~original:amount in
        if Money.is_zero cost then None
        else Some { technique; component = component ^ " " ^ label; amount = cost })
      base_items
  in
  base_items
  @ spare_items "spare" dev.Device.spare
  @ spare_items "remote spare" dev.Device.remote_spare

let link_items design =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (l : Hierarchy.level) ->
      match l.Hierarchy.link with
      | None -> None
      | Some link ->
        if Hashtbl.mem seen link.Interconnect.name then None
        else begin
          Hashtbl.add seen link.Interconnect.name ();
          let shipments =
            match (link.Interconnect.transport, Technique.schedule l.technique)
            with
            | Interconnect.Shipment, Some s -> Demands.shipments_per_year s
            | _ -> 0.
          in
          let amount =
            Interconnect.annual_cost link ~shipments_per_year:shipments
          in
          if Money.is_zero amount then None
          else
            Some
              {
                technique = Technique.name l.technique;
                component = "link " ^ link.Interconnect.name;
                amount;
              }
        end)
    (Hierarchy.levels design.Design.hierarchy)

let group_by_technique items =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun { technique; amount; _ } ->
      match Hashtbl.find_opt table technique with
      | None ->
        Hashtbl.add table technique amount;
        order := technique :: !order
      | Some acc -> Hashtbl.replace table technique (Money.add acc amount))
    items;
  List.rev_map (fun name -> (name, Hashtbl.find table name)) !order

let outlays design =
  let items =
    List.concat_map (device_items design) (Design.devices design)
    @ link_items design
  in
  {
    items;
    by_technique = group_by_technique items;
    total = Money.sum (List.map (fun i -> i.amount) items);
  }

type penalties = { outage : Money.t; loss : Money.t; total : Money.t }

let penalties (business : Business.t) ~recovery_time ~loss =
  let outage =
    Money_rate.charge business.Business.outage_penalty_rate recovery_time
  in
  let loss_duration =
    match (loss : Data_loss.loss) with
    | Data_loss.Updates d -> d
    | Data_loss.Entire_object -> business.Business.total_loss_equivalent
  in
  let loss = Money_rate.charge business.Business.loss_penalty_rate loss_duration in
  { outage; loss; total = Money.add outage loss }

let pp_outlays ppf t =
  let pp_tech ppf (name, amount) = Fmt.pf ppf "  %-20s %a" name Money.pp amount in
  Fmt.pf ppf "@[<v>outlays:@,%a@,  %-20s %a@]"
    (Fmt.list ~sep:Fmt.cut pp_tech)
    t.by_technique "total" Money.pp t.total

let pp_penalties ppf t =
  Fmt.pf ppf "penalties: outage %a + loss %a = %a" Money.pp t.outage Money.pp
    t.loss Money.pp t.total
