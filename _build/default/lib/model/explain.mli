(** Narrative explanations of evaluation results.

    The paper stresses that its models are "deliberately simple, in order
    to allow users to reason about them" (§2). This module makes the
    reasoning explicit: for a design and scenario it walks through which
    levels survive, what retrieval-point range each guarantees and why the
    recovery source wins, then narrates the recovery hop by hop with the
    governing bottleneck of each step. *)

val narrative : Design.t -> Scenario.t -> string
(** A plain-text explanation of the evaluation, suitable for a terminal. *)
