open Storage_units

(** Degraded-mode operation: evaluating dependability while a data
    protection technique is out of service (the paper's §5 future work).

    When a level's technique is down for some outage duration — a paused
    backup service, a severed mirror link — no new retrieval points flow
    to it or past it, but its retained RPs stay readable. The level (and
    every level fed through it) therefore serves recoveries with RPs that
    are staler by the outage duration, so a failure that strikes {e before
    the technique is repaired} suffers correspondingly larger data
    loss. *)

type report = {
  disabled_level : int;
  outage : Duration.t;
  data_loss : Data_loss.t;
      (** worst-case loss if the failure strikes at the end of the
          outage *)
  recovery_time : Duration.t option;
      (** [None] when no recovery is possible or needed *)
  baseline_loss : Data_loss.t;  (** healthy-system loss, for comparison *)
  added_loss : Duration.t;
      (** extra worst-case update loss attributable to the outage (zero
          when the recovery source is unaffected or either case loses the
          entire object) *)
}

val evaluate :
  Design.t -> disabled_level:int -> outage:Duration.t -> Scenario.t -> report
(** Evaluates the scenario assuming the technique at [disabled_level] has
    been out of service for [outage]. Levels at or above the disabled one
    carry RPs that are [outage] staler than in normal operation; levels
    whose guaranteed range would expire entirely (retention shorter than
    the outage) cannot serve targets at all. Raises [Invalid_argument] if
    [disabled_level] is 0 (the primary copy is not a protection technique)
    or out of range. *)

val pp : report Fmt.t
