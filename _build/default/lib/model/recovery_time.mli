open Storage_units

(** Worst-case recovery time (§3.3.4, Figure 4).

    Recovery proceeds along a path from the source level down to the primary
    copy. Each hop has a {e parallelizable fixed period} (provisioning the
    receiving device's spare, which overlaps with upstream work), a
    {e serialized fixed period} (media transit, tape load and seek), and a
    {e serialized per-byte period} (data transfer at the minimum of the
    sender's and receiver's available bandwidth and the link bandwidth).

    Intermediate levels colocated with the primary array (split mirrors,
    snapshots) are skipped: restoring through them would only add latency
    (§3.2's recovery-path optimization). Shipment links move media rather
    than streaming bytes: they contribute transit delay, and the byte
    transfer happens on the next hop out of the receiving device. *)

type hop = {
  from_level : int;
  to_level : int;
  transit : Duration.t;  (** link delay before data is at the receiver *)
  par_fix : Duration.t;
      (** receiver (re)provisioning; proceeds in parallel with the hop's
          transit, fixed and transfer work (the hop completes at
          [max(arrival + serFix + serXfer, parFix)] — the parallel reading
          of the paper's recursion, which its Table 7 mirror rows
          require) *)
  ser_fix : Duration.t;  (** source access delay (tape load/seek) *)
  transfer : Duration.t;  (** serialized per-byte period *)
  transfer_rate : Rate.t option;
      (** effective rate ([None] for pure media movement) *)
  ready_at : Duration.t;  (** cumulative time when the receiver holds the data *)
}

type timeline = {
  source_level : int;
  recovery_size : Size.t;
  hops : hop list;  (** ordered from the source level towards level 0 *)
  total : Duration.t;
}

val recovery_path :
  Storage_hierarchy.Hierarchy.t -> source:int -> int list
(** The level indices a recovery from [source] passes through, in order
    down to level 0, with colocated PiT levels skipped. Used both by
    {!compute} and by the discrete-event simulator, which executes the
    same path. *)

val compute :
  Design.t -> Scenario.t -> source_level:int -> (timeline, string) result
(** Worst-case recovery timeline when [source_level] serves the recovery.
    The transferred size is the level's
    {!Storage_protection.Demands.recovery_size}, or the scenario's object
    size for [Data_object] rollbacks. Errors when a destroyed device on the
    path has no applicable spare, or when no bandwidth is available for a
    transfer. Raises [Invalid_argument] if [source_level] is out of range
    or 0. *)

val pp : timeline Fmt.t
