open Storage_units

(** Business requirement inputs (§3.1.2).

    Penalty rates convert the output metrics into dollars; the optional
    objectives (RTO/RPO) are thresholds used by the optimizer and by
    compliance checks, not by the penalty calculation itself. *)

type t = private {
  outage_penalty_rate : Money_rate.t;  (** [unavailPenRate] *)
  loss_penalty_rate : Money_rate.t;  (** [lossPenRate] *)
  recovery_time_objective : Duration.t option;  (** RTO *)
  recovery_point_objective : Duration.t option;  (** RPO *)
  total_loss_equivalent : Duration.t;
      (** loss duration charged when recovery is impossible and the entire
          object is lost; the paper's case study never reaches this case
          (default: three years, the vault retention horizon) *)
}

val make :
  outage_penalty_rate:Money_rate.t ->
  loss_penalty_rate:Money_rate.t ->
  ?recovery_time_objective:Duration.t ->
  ?recovery_point_objective:Duration.t ->
  ?total_loss_equivalent:Duration.t ->
  unit ->
  t

val pp : t Fmt.t
