open Storage_units

type t = {
  outage_penalty_rate : Money_rate.t;
  loss_penalty_rate : Money_rate.t;
  recovery_time_objective : Duration.t option;
  recovery_point_objective : Duration.t option;
  total_loss_equivalent : Duration.t;
}

let make ~outage_penalty_rate ~loss_penalty_rate ?recovery_time_objective
    ?recovery_point_objective ?(total_loss_equivalent = Duration.years 3.) () =
  {
    outage_penalty_rate;
    loss_penalty_rate;
    recovery_time_objective;
    recovery_point_objective;
    total_loss_equivalent;
  }

let pp ppf t =
  Fmt.pf ppf "outage %a, loss %a%a%a" Money_rate.pp t.outage_penalty_rate
    Money_rate.pp t.loss_penalty_rate
    (Fmt.option (fun ppf d -> Fmt.pf ppf ", RTO %a" Duration.pp d))
    t.recovery_time_objective
    (Fmt.option (fun ppf d -> Fmt.pf ppf ", RPO %a" Duration.pp d))
    t.recovery_point_objective
