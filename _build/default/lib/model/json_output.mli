open Storage_report

(** JSON projections of evaluation results, for scripting against the CLI
    (`ssdep evaluate --json`). Durations are emitted in seconds, sizes in
    bytes, rates in bytes/second and money in US dollars, each with the
    unit suffixed to the field name. *)

val report : Evaluate.report -> Json.t
val reports : (string * Evaluate.report) list -> Json.t
(** An object mapping scenario names to {!report} values. *)

val risk : Risk.t -> Json.t
val distribution : Risk.distribution -> Json.t
