open Storage_units
open Storage_device
open Storage_report

let duration d = Json.Float (Duration.to_seconds d)
let money m = Json.Float (Money.to_usd m)

let loss = function
  | Data_loss.Updates d ->
    Json.Obj [ ("kind", Json.String "updates"); ("seconds", duration d) ]
  | Data_loss.Entire_object ->
    Json.Obj [ ("kind", Json.String "entire_object") ]

let utilization (u : Utilization.report) =
  Json.Obj
    [
      ( "devices",
        Json.List
          (List.map
             (fun (d : Utilization.device_report) ->
               Json.Obj
                 [
                   ("name", Json.String d.Utilization.device.Device.name);
                   ( "bandwidth_fraction",
                     Json.Float d.Utilization.total.Device.bandwidth_fraction );
                   ( "capacity_fraction",
                     Json.Float d.Utilization.total.Device.capacity_fraction );
                   ( "bandwidth_bytes_per_sec",
                     Json.Float
                       (Rate.to_bytes_per_sec
                          d.Utilization.total.Device.bandwidth_used) );
                   ( "capacity_bytes",
                     Json.Float
                       (Size.to_bytes d.Utilization.total.Device.capacity_used)
                   );
                 ])
             u.Utilization.devices) );
      ("system_bandwidth_fraction", Json.Float u.Utilization.system_bandwidth_fraction);
      ("system_capacity_fraction", Json.Float u.Utilization.system_capacity_fraction);
      ("overcommitted", Json.Bool u.Utilization.overcommitted);
    ]

let compliance = function
  | None -> Json.Null
  | Some b -> Json.Bool b

let report (r : Evaluate.report) =
  Json.Obj
    [
      ("design", Json.String r.Evaluate.design_name);
      ( "scope",
        Json.String
          (Location.scope_name r.Evaluate.scenario.Scenario.scope) );
      ( "target_age_seconds",
        duration r.Evaluate.scenario.Scenario.target_age );
      ( "source_level",
        match r.Evaluate.data_loss.Data_loss.source_level with
        | Some j -> Json.Int j
        | None -> Json.Null );
      ("recovery_time_seconds", duration r.Evaluate.recovery_time);
      ("data_loss", loss r.Evaluate.data_loss.Data_loss.loss);
      ("outlays_usd", money r.Evaluate.outlays.Cost.total);
      ( "penalties_usd",
        Json.Obj
          [
            ("outage", money r.Evaluate.penalties.Cost.outage);
            ("loss", money r.Evaluate.penalties.Cost.loss);
            ("total", money r.Evaluate.penalties.Cost.total);
          ] );
      ("total_cost_usd", money r.Evaluate.total_cost);
      ("meets_rto", compliance r.Evaluate.meets_rto);
      ("meets_rpo", compliance r.Evaluate.meets_rpo);
      ("utilization", utilization r.Evaluate.utilization);
      ( "errors",
        Json.List (List.map (fun e -> Json.String e) r.Evaluate.errors) );
    ]

let reports named =
  Json.Obj (List.map (fun (name, r) -> (name, report r)) named)

let distribution (d : Risk.distribution) =
  Json.Obj
    [
      ("horizon_years", Json.Float d.Risk.horizon_years);
      ("samples", Json.Int d.Risk.samples);
      ("mean_usd", money d.Risk.mean);
      ("stddev_usd", Json.Float d.Risk.stddev);
      ("p50_usd", money d.Risk.p50);
      ("p95_usd", money d.Risk.p95);
      ("p99_usd", money d.Risk.p99);
      ("max_usd", money d.Risk.max);
    ]

let risk (r : Risk.t) =
  Json.Obj
    [
      ("design", Json.String r.Risk.design_name);
      ( "exposures",
        Json.List
          (List.map
             (fun (e : Risk.exposure) ->
               Json.Obj
                 [
                   ( "scope",
                     Json.String
                       (Location.scope_name
                          e.Risk.weighted.Risk.scenario.Scenario.scope) );
                   ( "frequency_per_year",
                     Json.Float e.Risk.weighted.Risk.frequency_per_year );
                   ("per_incident_usd", money e.Risk.per_incident_penalty);
                   ("expected_annual_usd", money e.Risk.expected_annual_penalty);
                 ])
             r.Risk.exposures) );
      ("annual_outlays_usd", money r.Risk.annual_outlays);
      ("expected_annual_penalty_usd", money r.Risk.expected_annual_penalty);
      ("expected_annual_cost_usd", money r.Risk.expected_annual_cost);
    ]
