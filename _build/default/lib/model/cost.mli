open Storage_units

(** Overall system costs: outlays and penalties (§3.3.5; Figure 5).

    Outlays are annualized and attributed per data protection technique:
    the technique that "owns" a device (the lowest hierarchy level on it)
    pays the fixed cost plus its own capacity/bandwidth share; secondary
    techniques pay only their incremental capacity/bandwidth. Spare
    resources are priced as a multiple of the resources they shadow (full
    price for dedicated spares, the discount factor for shared ones), and
    allocated the same way. Interconnects are charged to the technique
    that uses them, networks by provisioned bandwidth and couriers per
    shipment.

    Penalties convert the recovery-time and data-loss outputs into dollars
    using the business penalty rates. *)

type item = {
  technique : string;
  component : string;  (** e.g. ["disk array fixed"], ["link oc3"] *)
  amount : Money.t;
}

type outlays = private {
  items : item list;
  by_technique : (string * Money.t) list;
      (** first-appearance order, as in Figure 5's stacking *)
  total : Money.t;
}

val outlays : Design.t -> outlays

type penalties = private {
  outage : Money.t;
  loss : Money.t;
  total : Money.t;
}

val penalties :
  Business.t -> recovery_time:Duration.t -> loss:Data_loss.loss -> penalties
(** [Entire_object] losses are charged as
    [business.total_loss_equivalent] worth of lost updates. *)

val pp_outlays : outlays Fmt.t
val pp_penalties : penalties Fmt.t
