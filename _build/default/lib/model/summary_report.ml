open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy

let buffer_add = Buffer.add_string

let md_table buf ~headers rows =
  let line cells = "| " ^ String.concat " | " cells ^ " |\n" in
  buffer_add buf (line headers);
  buffer_add buf (line (List.map (fun _ -> "---") headers));
  List.iter (fun row -> buffer_add buf (line row)) rows;
  buffer_add buf "\n"

let duration_cell d = Duration.to_string d
let money_cell m = Money.to_string m

let loss_cell = function
  | Data_loss.Updates d -> duration_cell d
  | Data_loss.Entire_object -> "**entire object**"

let compliance_cell = function
  | None -> "n/a"
  | Some true -> "met"
  | Some false -> "**missed**"

let workload_section buf (design : Design.t) =
  let w = design.Design.workload in
  buffer_add buf "## Workload\n\n";
  md_table buf
    ~headers:[ "Data"; "Capacity"; "Access"; "Updates"; "Burstiness" ]
    [
      [
        w.Storage_workload.Workload.name;
        Size.to_string w.Storage_workload.Workload.data_capacity;
        Rate.to_string w.Storage_workload.Workload.avg_access_rate;
        Rate.to_string w.Storage_workload.Workload.avg_update_rate;
        Printf.sprintf "%.0fx" w.Storage_workload.Workload.burst_multiplier;
      ];
    ]

let hierarchy_section buf (design : Design.t) =
  buffer_add buf "## Protection hierarchy\n\n";
  let h = design.Design.hierarchy in
  let rows =
    List.mapi
      (fun j (l : Hierarchy.level) ->
        let schedule_cell =
          match Technique.schedule l.Hierarchy.technique with
          | None -> "—"
          | Some s ->
            Printf.sprintf "every %s, keeps %d"
              (duration_cell (Schedule.cycle_period s))
              s.Schedule.retention_count
        in
        [
          string_of_int j;
          Technique.name l.Hierarchy.technique;
          l.Hierarchy.device.Device.name;
          (match l.Hierarchy.link with
          | Some link -> link.Interconnect.name
          | None -> "—");
          schedule_cell;
          duration_cell (Hierarchy.worst_lag h j);
        ])
      (Hierarchy.levels h)
  in
  md_table buf
    ~headers:[ "Level"; "Technique"; "Device"; "Link"; "Schedule"; "Worst lag" ]
    rows;
  match Hierarchy.warnings h with
  | [] -> ()
  | warnings ->
    List.iter (fun w -> buffer_add buf ("> warning: " ^ w ^ "\n")) warnings;
    buffer_add buf "\n"

let utilization_section buf design =
  buffer_add buf "## Normal-mode utilization\n\n";
  let report = Utilization.compute design in
  let rows =
    List.map
      (fun (d : Utilization.device_report) ->
        [
          d.Utilization.device.Device.name;
          Printf.sprintf "%.1f%%"
            (100. *. d.Utilization.total.Device.bandwidth_fraction);
          Printf.sprintf "%.1f%%"
            (100. *. d.Utilization.total.Device.capacity_fraction);
          Rate.to_string d.Utilization.total.Device.bandwidth_used;
          Size.to_string d.Utilization.total.Device.capacity_used;
        ])
      report.Utilization.devices
  in
  md_table buf
    ~headers:[ "Device"; "Bandwidth"; "Capacity"; "Used bw"; "Used cap" ]
    rows;
  if report.Utilization.overcommitted then
    buffer_add buf "> **OVERCOMMITTED**: the hardware cannot carry this design.\n\n"

let scenarios_section buf design named_scenarios =
  buffer_add buf "## Failure scenarios\n\n";
  let rows =
    List.map
      (fun (name, scenario) ->
        let r = Evaluate.run design scenario in
        let source =
          match r.Evaluate.data_loss.Data_loss.source_level with
          | Some j ->
            Technique.name
              (Hierarchy.level design.Design.hierarchy j).Hierarchy.technique
          | None -> "—"
        in
        [
          name;
          Fmt.str "%a" Location.pp_scope scenario.Scenario.scope;
          source;
          duration_cell r.Evaluate.recovery_time;
          loss_cell r.Evaluate.data_loss.Data_loss.loss;
          money_cell r.Evaluate.penalties.Cost.total;
          compliance_cell r.Evaluate.meets_rto;
          compliance_cell r.Evaluate.meets_rpo;
        ])
      named_scenarios
  in
  md_table buf
    ~headers:
      [ "Scenario"; "Scope"; "Source"; "RT"; "Data loss"; "Penalties"; "RTO";
        "RPO" ]
    rows

let cost_section buf design =
  buffer_add buf "## Annual outlays\n\n";
  let outlays = Cost.outlays design in
  md_table buf ~headers:[ "Technique"; "Outlay" ]
    (List.map
       (fun (tech, amount) -> [ tech; money_cell amount ])
       outlays.Cost.by_technique
    @ [ [ "**total**"; money_cell outlays.Cost.total ] ])

let risk_section buf design weighted horizon =
  buffer_add buf "## Risk\n\n";
  let assessment = Risk.assess design weighted in
  md_table buf
    ~headers:[ "Scenario"; "Frequency"; "Per incident"; "Expected / yr" ]
    (List.map
       (fun (e : Risk.exposure) ->
         [
           Fmt.str "%a" Location.pp_scope
             e.Risk.weighted.Risk.scenario.Scenario.scope;
           Printf.sprintf "%.3g / yr" e.Risk.weighted.Risk.frequency_per_year;
           money_cell e.Risk.per_incident_penalty;
           money_cell e.Risk.expected_annual_penalty;
         ])
       assessment.Risk.exposures);
  buffer_add buf
    (Printf.sprintf "Expected annual cost: **%s** (outlays %s + penalties %s).\n\n"
       (money_cell assessment.Risk.expected_annual_cost)
       (money_cell assessment.Risk.annual_outlays)
       (money_cell assessment.Risk.expected_annual_penalty));
  let dist = Risk.monte_carlo design weighted ~horizon_years:horizon in
  buffer_add buf
    (Printf.sprintf
       "Monte-Carlo over %.0f years (%d samples): mean %s, p50 %s, p95 %s, \
        p99 %s, max %s.\n\n"
       dist.Risk.horizon_years dist.Risk.samples (money_cell dist.Risk.mean)
       (money_cell dist.Risk.p50) (money_cell dist.Risk.p95)
       (money_cell dist.Risk.p99) (money_cell dist.Risk.max))

let markdown ?risk ?(risk_horizon_years = 10.) design named_scenarios =
  if named_scenarios = [] then invalid_arg "Summary_report.markdown: no scenarios";
  let buf = Buffer.create 2048 in
  buffer_add buf
    (Printf.sprintf "# Dependability report: %s\n\n" design.Design.name);
  (match Design.validate design with
  | Ok () -> ()
  | Error es ->
    buffer_add buf "> **INVALID DESIGN**:\n";
    List.iter (fun e -> buffer_add buf ("> - " ^ e ^ "\n")) es;
    buffer_add buf "\n");
  workload_section buf design;
  hierarchy_section buf design;
  utilization_section buf design;
  scenarios_section buf design named_scenarios;
  cost_section buf design;
  (match risk with
  | Some weighted when weighted <> [] ->
    risk_section buf design weighted risk_horizon_years
  | Some _ | None -> ());
  Buffer.contents buf
