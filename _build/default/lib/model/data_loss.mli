open Storage_units

(** Worst-case recent data loss and recovery-source selection (§3.3.3).

    Given the failure scope and the recovery target, each surviving level is
    scored by the worst-case amount of recent updates that would be lost if
    it served the recovery; the level with the closest match becomes the
    recovery source. *)

type loss =
  | Updates of Duration.t
      (** recent updates lost, as a time-window of writes *)
  | Entire_object
      (** no surviving level retains an RP old/new enough: total loss *)

val compare_loss : loss -> loss -> int
(** Orders by severity: fewer lost updates first; [Entire_object] last. *)

type t = {
  source_level : int option;
      (** the chosen recovery source; [None] when the primary is intact and
          no recovery is needed, or when no recovery is possible *)
  loss : loss;
  candidates : (int * loss) list;
      (** worst-case loss of every surviving candidate level *)
}

val compute : Design.t -> Scenario.t -> t
(** Worst-case loss per level [j] for a target of age [A] (§3.3.3):
    - target not yet propagated ([A] newer than the level's worst lag):
      loss is the lag minus [A];
    - target within the guaranteed range: loss is one RP interval ([accW]);
    - target older than retention: the level cannot serve ([Entire_object]).

    When the primary copy survives and the target is "now", no recovery is
    needed and the loss is zero. *)

val pp_loss : loss Fmt.t
val pp : t Fmt.t
