open Storage_units
open Storage_protection
open Storage_hierarchy

type report = {
  disabled_level : int;
  outage : Duration.t;
  data_loss : Data_loss.t;
  recovery_time : Duration.t option;
  baseline_loss : Data_loss.t;
  added_loss : Duration.t;
}

(* Worst-case loss of level [j] for a target [age] in the past, with the
   whole RP range of affected levels shifted [shift] older (no new RPs
   flowed during the outage; retained ones aged in place). *)
let level_loss hierarchy j ~target_age ~shift =
  if j = 0 then
    if Duration.is_zero target_age then Data_loss.Updates Duration.zero
    else Data_loss.Entire_object
  else begin
    let worst = Duration.add (Hierarchy.worst_lag hierarchy j) shift in
    let interval =
      Schedule.rp_interval_min
        (Option.get
           (Technique.schedule (Hierarchy.level hierarchy j).Hierarchy.technique))
    in
    match Hierarchy.guaranteed_range hierarchy j with
    | Some range ->
      let newest = Duration.add (Age_range.newest_age range) shift in
      let oldest = Duration.add (Age_range.oldest_age range) shift in
      if Duration.compare target_age newest < 0 then
        Data_loss.Updates (Duration.sub worst target_age)
      else if Duration.compare target_age oldest <= 0 then
        Data_loss.Updates interval
      else Data_loss.Entire_object
    | None ->
      if Duration.compare target_age worst < 0 then
        Data_loss.Updates (Duration.sub worst target_age)
      else Data_loss.Entire_object
  end

let degraded_data_loss design ~disabled_level ~outage scenario =
  let h = design.Design.hierarchy in
  let scope = scenario.Scenario.scope and age = scenario.Scenario.target_age in
  let survivors = Hierarchy.surviving_levels h ~scope in
  let primary_intact = List.mem 0 survivors in
  if primary_intact && Duration.is_zero age then
    {
      Data_loss.source_level = None;
      loss = Data_loss.Updates Duration.zero;
      candidates = [];
    }
  else begin
    (* The disabled level's retained RPs stay readable — the outage stops
       the flow of new ones — so it and everything fed through it serve
       with [outage] extra staleness. *)
    let candidates =
      List.filter_map
        (fun j ->
          if j = 0 then None
          else begin
            let shift =
              if j >= disabled_level then outage else Duration.zero
            in
            Some (j, level_loss h j ~target_age:age ~shift)
          end)
        survivors
    in
    match candidates with
    | [] ->
      {
        Data_loss.source_level = None;
        loss = Data_loss.Entire_object;
        candidates = [];
      }
    | first :: rest ->
      let best_level, best_loss =
        List.fold_left
          (fun (bj, bl) (j, l) ->
            if Data_loss.compare_loss l bl < 0 then (j, l) else (bj, bl))
          first rest
      in
      (match best_loss with
      | Data_loss.Entire_object ->
        { Data_loss.source_level = None; loss = best_loss; candidates }
      | Data_loss.Updates _ ->
        { Data_loss.source_level = Some best_level; loss = best_loss; candidates })
  end

let evaluate design ~disabled_level ~outage scenario =
  let h = design.Design.hierarchy in
  if disabled_level <= 0 || disabled_level >= Hierarchy.length h then
    invalid_arg "Degraded.evaluate: disabled level out of range";
  let data_loss = degraded_data_loss design ~disabled_level ~outage scenario in
  let baseline_loss = Data_loss.compute design scenario in
  let recovery_time =
    match data_loss.Data_loss.source_level with
    | Some level when level > 0 -> (
      match Recovery_time.compute design scenario ~source_level:level with
      | Ok t -> Some t.Recovery_time.total
      | Error _ -> None)
    | Some _ -> Some Duration.zero
    | None -> None
  in
  let added_loss =
    match (data_loss.Data_loss.loss, baseline_loss.Data_loss.loss) with
    | Data_loss.Updates degraded, Data_loss.Updates healthy ->
      Duration.sub degraded healthy
    | _ -> Duration.zero
  in
  {
    disabled_level;
    outage;
    data_loss;
    recovery_time;
    baseline_loss;
    added_loss;
  }

let pp ppf r =
  Fmt.pf ppf
    "level %d down for %a: loss %a (healthy %a, +%a)%a" r.disabled_level
    Duration.pp r.outage Data_loss.pp_loss r.data_loss.Data_loss.loss
    Data_loss.pp_loss r.baseline_loss.Data_loss.loss Duration.pp r.added_loss
    (Fmt.option (fun ppf rt -> Fmt.pf ppf ", RT %a" Duration.pp rt))
    r.recovery_time
