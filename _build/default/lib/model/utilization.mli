open Storage_device

(** Normal-mode system utilization (§3.3.1; Table 5).

    Each device model computes its local bandwidth and capacity utilization
    from the demands placed on it; the global model reports the utilization
    of the most heavily used component and flags overcommitment. *)

type technique_share = {
  technique : string;
  demand : Demand.t;
  bandwidth_fraction : float;
  capacity_fraction : float;
}

type device_report = {
  device : Device.t;
  shares : technique_share list;  (** per-technique breakdown *)
  total : Device.utilization;
}

type link_report = {
  link : Interconnect.t;
  demand : Storage_units.Rate.t;
  fraction : float option;  (** [None] for shipments (no bandwidth bound) *)
}

type report = {
  devices : device_report list;
  links : link_report list;
  system_bandwidth_fraction : float;
      (** utilization of the maximally utilized component *)
  system_capacity_fraction : float;
  overcommitted : bool;
}

val compute : Design.t -> report
val pp : report Fmt.t
