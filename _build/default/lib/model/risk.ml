open Storage_units

type weighted = { scenario : Scenario.t; frequency_per_year : float }

type exposure = {
  weighted : weighted;
  report : Evaluate.report;
  per_incident_penalty : Money.t;
  expected_annual_penalty : Money.t;
}

type t = {
  design_name : string;
  exposures : exposure list;
  annual_outlays : Money.t;
  expected_annual_penalty : Money.t;
  expected_annual_cost : Money.t;
}

let assess design weighted_list =
  if weighted_list = [] then invalid_arg "Risk.assess: no scenarios";
  List.iter
    (fun w ->
      if w.frequency_per_year < 0. || not (Float.is_finite w.frequency_per_year)
      then invalid_arg "Risk.assess: invalid frequency")
    weighted_list;
  let exposures =
    List.map
      (fun weighted ->
        let report = Evaluate.run design weighted.scenario in
        let per_incident_penalty = report.Evaluate.penalties.Cost.total in
        {
          weighted;
          report;
          per_incident_penalty;
          expected_annual_penalty =
            Money.scale weighted.frequency_per_year per_incident_penalty;
        })
      weighted_list
  in
  let annual_outlays =
    (List.hd exposures).report.Evaluate.outlays.Cost.total
  in
  let expected_annual_penalty =
    Money.sum
      (List.map (fun (e : exposure) -> e.expected_annual_penalty) exposures)
  in
  {
    design_name = design.Design.name;
    exposures;
    annual_outlays;
    expected_annual_penalty;
    expected_annual_cost = Money.add annual_outlays expected_annual_penalty;
  }

let compare_designs designs weighted_list =
  List.map (fun d -> (d, assess d weighted_list)) designs
  |> List.sort (fun (_, a) (_, b) ->
         Money.compare a.expected_annual_cost b.expected_annual_cost)

type distribution = {
  horizon_years : float;
  samples : int;
  mean : Money.t;
  stddev : float;
  p50 : Money.t;
  p95 : Money.t;
  p99 : Money.t;
  max : Money.t;
}

(* Knuth's Poisson sampler; our lambdas (frequency x horizon) are small. *)
let poisson rng ~lambda =
  if lambda <= 0. then 0
  else begin
    let limit = exp (-.lambda) in
    let rec draw k p =
      let p = p *. Storage_workload.Prng.float rng in
      if p > limit then draw (k + 1) p else k
    in
    draw 0 1.
  end

let monte_carlo ?(seed = 0xCA5CADEL) ?(samples = 10_000) design weighted_list
    ~horizon_years =
  if weighted_list = [] then invalid_arg "Risk.monte_carlo: no scenarios";
  if horizon_years <= 0. then invalid_arg "Risk.monte_carlo: non-positive horizon";
  if samples <= 0 then invalid_arg "Risk.monte_carlo: non-positive samples";
  List.iter
    (fun w ->
      if w.frequency_per_year < 0. || not (Float.is_finite w.frequency_per_year)
      then invalid_arg "Risk.monte_carlo: invalid frequency")
    weighted_list;
  let rng = Storage_workload.Prng.create ~seed in
  (* Per-incident penalties are scenario-determined; evaluate once. *)
  let priced =
    List.map
      (fun w ->
        let report = Evaluate.run design w.scenario in
        (w.frequency_per_year *. horizon_years,
         Money.to_usd report.Evaluate.penalties.Cost.total))
      weighted_list
  in
  let outlays =
    horizon_years *. Money.to_usd (Cost.outlays design).Cost.total
  in
  let draws =
    Array.init samples (fun _ ->
        List.fold_left
          (fun acc (lambda, penalty) ->
            acc +. (float_of_int (poisson rng ~lambda) *. penalty))
          outlays priced)
  in
  Array.sort Float.compare draws;
  let n = float_of_int samples in
  let mean = Array.fold_left ( +. ) 0. draws /. n in
  let variance =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. draws /. n
  in
  let percentile p =
    let idx = int_of_float (p *. (n -. 1.)) in
    Money.usd draws.(idx)
  in
  {
    horizon_years;
    samples;
    mean = Money.usd mean;
    stddev = sqrt variance;
    p50 = percentile 0.50;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
    max = Money.usd draws.(samples - 1);
  }

let pp_distribution ppf d =
  Fmt.pf ppf
    "over %.0f yr (%d samples): mean %a, p50 %a, p95 %a, p99 %a, max %a"
    d.horizon_years d.samples Money.pp d.mean Money.pp d.p50 Money.pp d.p95
    Money.pp d.p99 Money.pp d.max

let pp ppf t =
  let pp_exposure ppf e =
    Fmt.pf ppf "  %-18s %6.3f/yr x %-9s = %s/yr"
      (Fmt.str "%a" Storage_device.Location.pp_scope
         e.weighted.scenario.Scenario.scope)
      e.weighted.frequency_per_year
      (Money.to_string e.per_incident_penalty)
      (Money.to_string e.expected_annual_penalty)
  in
  Fmt.pf ppf
    "@[<v>risk assessment for %s:@,%a@,  outlays %a + expected penalties %a \
     = %a per year@]"
    t.design_name
    (Fmt.list ~sep:Fmt.cut pp_exposure)
    t.exposures Money.pp t.annual_outlays Money.pp t.expected_annual_penalty
    Money.pp t.expected_annual_cost
