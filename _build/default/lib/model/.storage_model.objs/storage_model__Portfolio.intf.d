lib/model/portfolio.mli: Design Device Evaluate Fmt Money Scenario Storage_device Storage_units
