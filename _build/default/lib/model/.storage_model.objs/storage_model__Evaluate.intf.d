lib/model/evaluate.mli: Cost Data_loss Design Duration Fmt Money Recovery_time Scenario Storage_units Utilization
