lib/model/business.mli: Duration Fmt Money_rate Storage_units
