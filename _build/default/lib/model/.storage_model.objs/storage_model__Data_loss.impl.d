lib/model/data_loss.ml: Age_range Design Duration Fmt Hierarchy List Option Scenario Schedule Storage_hierarchy Storage_protection Storage_units Technique
