lib/model/json_output.ml: Cost Data_loss Device Duration Evaluate Json List Location Money Rate Risk Scenario Size Storage_device Storage_report Storage_units Utilization
