lib/model/recovery_time.mli: Design Duration Fmt Rate Scenario Size Storage_hierarchy Storage_units
