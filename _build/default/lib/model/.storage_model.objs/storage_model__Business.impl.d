lib/model/business.ml: Duration Fmt Money_rate Storage_units
