lib/model/data_loss.mli: Design Duration Fmt Scenario Storage_units
