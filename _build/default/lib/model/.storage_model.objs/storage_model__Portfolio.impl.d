lib/model/portfolio.ml: Cost Demand Design Device Evaluate Fmt Hashtbl List Money Printf Storage_device Storage_units String
