lib/model/json_output.mli: Evaluate Json Risk Storage_report
