lib/model/evaluate.ml: Business Cost Data_loss Design Duration Fmt List Money Option Recovery_time Scenario Storage_device Storage_units Utilization
