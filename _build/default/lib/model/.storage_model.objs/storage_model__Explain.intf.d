lib/model/explain.mli: Design Scenario
