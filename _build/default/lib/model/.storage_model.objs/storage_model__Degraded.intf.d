lib/model/degraded.mli: Data_loss Design Duration Fmt Scenario Storage_units
