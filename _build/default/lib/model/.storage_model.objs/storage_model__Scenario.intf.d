lib/model/scenario.mli: Duration Fmt Location Size Storage_device Storage_units
