lib/model/risk.mli: Design Evaluate Fmt Money Scenario Storage_units
