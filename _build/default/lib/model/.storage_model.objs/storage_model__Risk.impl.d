lib/model/risk.ml: Array Cost Design Evaluate Float Fmt List Money Scenario Storage_device Storage_units Storage_workload
