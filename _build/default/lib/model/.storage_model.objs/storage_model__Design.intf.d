lib/model/design.mli: Business Demand Device Fmt Hierarchy Interconnect Raid Rate Storage_device Storage_hierarchy Storage_protection Storage_units Storage_workload Workload
