lib/model/scenario.ml: Duration Fmt Location Size Storage_device Storage_units
