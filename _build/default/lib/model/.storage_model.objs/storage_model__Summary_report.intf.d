lib/model/summary_report.mli: Design Risk Scenario
