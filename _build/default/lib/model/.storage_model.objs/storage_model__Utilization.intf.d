lib/model/utilization.mli: Demand Design Device Fmt Interconnect Storage_device Storage_units
