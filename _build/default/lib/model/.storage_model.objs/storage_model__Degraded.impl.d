lib/model/degraded.ml: Age_range Data_loss Design Duration Fmt Hierarchy List Option Recovery_time Scenario Schedule Storage_hierarchy Storage_protection Storage_units Technique
