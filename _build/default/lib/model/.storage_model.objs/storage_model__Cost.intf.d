lib/model/cost.mli: Business Data_loss Design Duration Fmt Money Storage_units
