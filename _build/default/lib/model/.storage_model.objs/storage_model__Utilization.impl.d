lib/model/utilization.ml: Demand Design Device Float Fmt Hashtbl Interconnect List Rate Size Storage_device Storage_hierarchy Storage_units
