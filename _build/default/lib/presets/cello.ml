open Storage_units
open Storage_workload

let batch_windows =
  [
    Duration.minutes 1.;
    Duration.hours 12.;
    Duration.hours 24.;
    Duration.hours 48.;
    Duration.weeks 1.;
  ]

let workload =
  let curve =
    Batch_curve.of_samples
      [
        (Duration.minutes 1., Rate.kib_per_sec 727.);
        (Duration.hours 12., Rate.kib_per_sec 350.);
        (Duration.hours 24., Rate.kib_per_sec 317.);
        (Duration.hours 48., Rate.kib_per_sec 317.);
        (Duration.weeks 1., Rate.kib_per_sec 317.);
      ]
  in
  Workload.make ~name:"cello" ~data_capacity:(Size.gib 1360.)
    ~avg_access_rate:(Rate.kib_per_sec 1028.)
    ~avg_update_rate:(Rate.kib_per_sec 799.) ~burst_multiplier:10.
    ~batch_curve:curve

let trace_profile =
  {
    Trace.block_size = Size.kib 256.;
    block_count = 16384 (* 4 GiB object: full cello is too large to replay *);
    mean_update_rate = Rate.kib_per_sec 799.;
    zipf_exponent = 0.95;
    burst_multiplier = 10.;
    burst_fraction = 0.05;
    mean_phase_length = Duration.minutes 2.;
  }
