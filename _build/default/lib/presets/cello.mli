open Storage_units
open Storage_workload

(** The [cello] workgroup file server workload (Table 2).

    Measured parameters of HP Labs' cello server as published in the paper:
    1360 GB of data, 1028 KB/s access, 799 KB/s updates, 10x bursts, and a
    unique-update curve from 727 KB/s at one minute down to 317 KB/s at one
    week. *)

val workload : Workload.t

val batch_windows : Duration.t list
(** The five characterization windows of Table 2:
    1 min, 12 hr, 24 hr, 48 hr, 1 wk. *)

val trace_profile : Trace.profile
(** A generator profile tuned to produce a cello-like synthetic trace
    (used by the Table 2 reproduction pipeline; see DESIGN.md on the
    trace substitution). *)
