open Storage_device
open Storage_model

(** The case-study baseline storage system (§4, Figure 1, Tables 3-4).

    A primary mid-range disk array (RAID-1, HP EVA class) holds the cello
    workload and four split mirrors; a local LTO tape library takes weekly
    full backups over the SAN; expired tapes are air-shipped monthly to a
    remote vault. Hot dedicated spares cover device failures at the primary
    site; a shared recovery facility (9 h provisioning, 20% of dedicated
    cost) covers site disasters. *)

val primary_site : Location.t
val vault_site : Location.t
val recovery_site : Location.t

val disk_array : Device.t
val tape_library : Device.t
val vault : Device.t
val remote_array : Device.t
(** A second EVA-class array at the recovery site (used by the mirroring
    what-if designs). *)

val san : Interconnect.t
val air_shipment : Interconnect.t

val oc3 : links:int -> Interconnect.t
(** [links] OC-3 (155 Mb/s) leased lines to the recovery site, priced at
    the paper's [b * 23535] per MB/s per year. *)

val business : Business.t
(** $50,000/hr for both unavailability and recent data loss. *)

val split_mirror_schedule : Storage_protection.Schedule.t
(** Table 3: mirrors split every 12 hr, four retained (two days). *)

val backup_schedule : Storage_protection.Schedule.t
(** Table 3: weekly fulls, 48 hr propagation, 1 hr hold, four retained. *)

val vault_schedule : Storage_protection.Schedule.t
(** Table 3: four-weekly shipments, 24 hr transit, 4 wk + 12 hr hold,
    39 retained (three years). *)

val design : Design.t
(** The baseline composition: primary + split mirror + backup + vaulting. *)

val scenario_object : Scenario.t
(** 1 MB object corrupted by user error; roll back to 24 hours ago. *)

val scenario_array : Scenario.t
(** Primary array failure; restore to "now". *)

val scenario_site : Scenario.t
(** Primary site disaster; restore to "now". *)

val scenarios : Scenario.t list
(** The three scenarios above, in Table 6 order. *)
