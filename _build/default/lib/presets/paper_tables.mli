(** Reproductions of every table and figure in the paper's evaluation.

    Each function renders the corresponding artifact from the framework's
    own outputs (never from hard-coded results) and returns the text; the
    [print_*] convenience wrappers write it to stdout. The bench harness,
    the CLI's [tables] command and EXPERIMENTS.md are all generated from
    these. *)

val table2 : unit -> string
(** Workload characterization parameters (the cello preset). *)

val table3 : unit -> string
(** Baseline data-protection technique parameters. *)

val table4 : unit -> string
(** Baseline device configuration parameters. *)

val figure1 : unit -> string
(** The baseline storage system design: the RP propagation hierarchy with
    its devices, links and locations, as an ASCII diagram. *)

val figure2 : unit -> string
(** The retrieval-point lifecycle of each baseline level (accumulation,
    hold and propagation windows drawn to scale within one cycle). *)

val table5 : unit -> string
(** Normal-mode bandwidth and capacity utilization, baseline. *)

val table6 : unit -> string
(** Worst-case recovery time and recent data loss, baseline, for the
    object / array / site failure scenarios. *)

val table7 : unit -> string
(** Recovery time, data loss and cost for the seven what-if designs under
    array and site failures. *)

val figure3 : unit -> string
(** Guaranteed retrieval-point age ranges per hierarchy level. *)

val figure4 : unit -> string
(** Recovery-time task decomposition along the site-disaster path. *)

val figure5 : unit -> string
(** Overall cost (outlays by technique, penalties) per failure scenario. *)

val all : unit -> string
(** Every artifact above, in paper order. *)

val print_all : unit -> unit
