lib/presets/whatif.mli: Design Storage_model
