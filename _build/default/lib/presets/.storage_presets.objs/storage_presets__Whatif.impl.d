lib/presets/whatif.ml: Baseline Cello Design Duration Hierarchy Printf Raid Schedule Storage_hierarchy Storage_model Storage_protection Storage_units Technique
