lib/presets/paper_tables.mli:
