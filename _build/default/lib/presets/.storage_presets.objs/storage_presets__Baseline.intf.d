lib/presets/baseline.mli: Business Design Device Interconnect Location Scenario Storage_device Storage_model Storage_protection
