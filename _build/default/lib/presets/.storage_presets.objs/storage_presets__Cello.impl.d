lib/presets/cello.ml: Batch_curve Duration Rate Size Storage_units Storage_workload Trace Workload
