lib/presets/cello.mli: Duration Storage_units Storage_workload Trace Workload
