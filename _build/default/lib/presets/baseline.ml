open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

let primary_site =
  Location.make ~building:"bldg-1" ~site:"primary" ~region:"west"

let vault_site = Location.make ~building:"vault" ~site:"offsite-vault" ~region:"east"

let recovery_site =
  Location.make ~building:"bldg-r" ~site:"recovery" ~region:"east"

let shared_recovery_spare =
  Spare.Shared { provisioning_time = Duration.hours 9.; discount = 0.2 }

let hot_spare = Spare.Dedicated { provisioning_time = Duration.hours 0.02 }

(* Mid-range array (HP EVA class): 256 x 73 GB disks, 512 MB/s enclosure. *)
let array_at name location =
  Device.make ~name ~location ~max_capacity_slots:256
    ~slot_capacity:(Size.gib 73.) ~max_bandwidth_slots:256
    ~slot_bandwidth:(Rate.mib_per_sec 25.)
    ~enclosure_bandwidth:(Rate.mib_per_sec 512.)
    ~cost:(Cost_model.make ~fixed:(Money.usd 123297.) ~per_gib:17.2 ())
    ~spare:hot_spare ~remote_spare:shared_recovery_spare ()

let disk_array = array_at "disk-array" primary_site
let remote_array = array_at "remote-array" recovery_site

(* LTO library (HP ESL9595 class): 500 x 400 GB cartridges, 16 x 60 MB/s
   drives, 240 MB/s aggregate, 0.01 hr load-and-seek. *)
let tape_library =
  Device.make ~name:"tape-library" ~location:primary_site
    ~max_capacity_slots:500 ~slot_capacity:(Size.gib 400.)
    ~max_bandwidth_slots:16 ~slot_bandwidth:(Rate.mib_per_sec 60.)
    ~enclosure_bandwidth:(Rate.mib_per_sec 240.)
    ~access_delay:(Duration.hours 0.01)
    ~cost:
      (Cost_model.make ~fixed:(Money.usd 98895.) ~per_gib:0.4
         ~per_mib_per_sec:108.6 ())
    ~spare:hot_spare ~remote_spare:shared_recovery_spare ()

let vault =
  Device.make ~name:"vault" ~location:vault_site ~max_capacity_slots:5000
    ~slot_capacity:(Size.gib 400.)
    ~cost:(Cost_model.make ~fixed:(Money.usd 25000.) ~per_gib:0.4 ())
    ()

let san =
  Interconnect.make ~name:"san"
    ~transport:
      (Interconnect.Network
         { link_bandwidth = Rate.mib_per_sec 256.; links = 8 })
    ()

let air_shipment =
  Interconnect.make ~name:"air-shipment" ~transport:Interconnect.Shipment
    ~delay:(Duration.hours 24.)
    ~cost:(Cost_model.make ~per_shipment:50. ())
    ()

let oc3 ~links =
  Interconnect.make ~name:(Printf.sprintf "oc3-x%d" links)
    ~transport:
      (Interconnect.Network
         { link_bandwidth = Rate.megabits_per_sec 155.; links })
    ~cost:(Cost_model.make ~per_mib_per_sec:23535. ())
    ()

let business =
  Business.make
    ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ()

(* Table 3: the baseline data protection technique parameters. *)
let split_mirror_schedule =
  Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:4 ()

let backup_schedule =
  Schedule.simple ~acc:(Duration.weeks 1.) ~prop:(Duration.hours 48.)
    ~hold:(Duration.hours 1.) ~retention_count:4 ()

let vault_schedule =
  Schedule.simple ~acc:(Duration.weeks 4.) ~prop:(Duration.hours 24.)
    ~hold:(Duration.add (Duration.weeks 4.) (Duration.hours 12.))
    ~retention_count:39 ()

let hierarchy =
  Hierarchy.make_exn
    [
      {
        Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
        device = disk_array;
        link = None;
      };
      {
        technique = Technique.Split_mirror split_mirror_schedule;
        device = disk_array;
        link = None;
      };
      {
        technique = Technique.Backup backup_schedule;
        device = tape_library;
        link = Some san;
      };
      {
        technique = Technique.Vaulting vault_schedule;
        device = vault;
        link = Some air_shipment;
      };
    ]

let design =
  Design.make ~name:"baseline" ~workload:Cello.workload ~hierarchy ~business ()

let scenario_object =
  Scenario.make ~scope:Location.Data_object ~target_age:(Duration.hours 24.)
    ~object_size:(Size.mib 1.) ()

let scenario_array = Scenario.now (Location.Device "disk-array")
let scenario_site = Scenario.now (Location.Site "primary")
let scenarios = [ scenario_object; scenario_array; scenario_site ]
