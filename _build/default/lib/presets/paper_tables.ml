open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_report

let kib_s r = Printf.sprintf "%.0f KB/s" (Rate.to_kib_per_sec r)

let table2 () =
  let w = Cello.workload in
  let batch =
    Cello.batch_windows
    |> List.map (fun win ->
           Printf.sprintf "%s: %s"
             (Duration.to_string win)
             (kib_s (Workload.batch_update_rate w win)))
    |> String.concat "; "
  in
  Table.render ~title:"Table 2: cello workload parameters"
    ~headers:[ "dataCap"; "avgAccessR"; "avgUpdateR"; "burstM"; "batchUpdR(win)" ]
    [
      [
        Printf.sprintf "%.0f GB" (Size.to_gib w.Workload.data_capacity);
        kib_s w.Workload.avg_access_rate;
        kib_s w.Workload.avg_update_rate;
        Printf.sprintf "%.0fX" w.Workload.burst_multiplier;
        batch;
      ];
    ]

let schedule_row name (s : Schedule.t) =
  let d = Duration.to_string in
  [
    name;
    d s.Schedule.full.Schedule.accumulation;
    d s.Schedule.full.Schedule.propagation;
    d s.Schedule.full.Schedule.hold;
    d (Schedule.cycle_period s);
    string_of_int s.Schedule.retention_count;
    d (Schedule.retention_window s);
  ]

let table3 () =
  Table.render ~title:"Table 3: baseline data protection technique parameters"
    ~headers:[ "Technique"; "accW"; "propW"; "holdW"; "cyclePer"; "retCnt"; "retW" ]
    [
      schedule_row "Split mirror" Baseline.split_mirror_schedule;
      schedule_row "Tape backup" Baseline.backup_schedule;
      schedule_row "Remote vaulting" Baseline.vault_schedule;
    ]

let device_row (dev : Device.t) =
  [
    dev.Device.name;
    Printf.sprintf "%d@%.0fGB" dev.Device.max_capacity_slots
      (Size.to_gib dev.Device.slot_capacity);
    (if dev.Device.max_bandwidth_slots = 0 then "n/a"
     else
       Printf.sprintf "%d@%.0fMB/s" dev.Device.max_bandwidth_slots
         (Rate.to_mib_per_sec dev.Device.slot_bandwidth));
    (if Rate.is_zero dev.Device.enclosure_bandwidth then "n/a"
     else Printf.sprintf "%.0fMB/s" (Rate.to_mib_per_sec dev.Device.enclosure_bandwidth));
    (if Duration.is_zero dev.Device.access_delay then "n/a"
     else Printf.sprintf "%.2fhr" (Duration.to_hours dev.Device.access_delay));
    Fmt.str "%a" Cost_model.pp dev.Device.cost;
    Fmt.str "%a" Spare.pp dev.Device.spare;
  ]

let table4 () =
  Table.render ~title:"Table 4: baseline device configuration parameters"
    ~headers:
      [ "Device"; "slots@cap"; "slots@bw"; "enclBW"; "delay"; "cost model"; "spare" ]
    ([ Baseline.disk_array; Baseline.tape_library; Baseline.vault ]
     |> List.map device_row)

let figure1 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 1: baseline storage system design (RP propagation downward)\n";
  let levels = Hierarchy.levels Baseline.design.Design.hierarchy in
  List.iteri
    (fun j (l : Hierarchy.level) ->
      (match l.Hierarchy.link with
      | Some link ->
        Buffer.add_string buf
          (Printf.sprintf "        |  via %s%s\n" link.Interconnect.name
             (if Duration.is_zero link.Interconnect.delay then ""
              else
                Printf.sprintf " (%s transit)"
                  (Duration.to_string link.Interconnect.delay)))
      | None -> if j > 0 then Buffer.add_string buf "        |\n");
      Buffer.add_string buf
        (Printf.sprintf "  [%d] %-18s on %-13s @ %s\n" j
           (Technique.name l.Hierarchy.technique)
           l.Hierarchy.device.Device.name
           (Fmt.str "%a" Location.pp l.Hierarchy.device.Device.location)))
    levels;
  Buffer.contents buf

(* One bar per window, scaled so that a full bar is the level's cycle. *)
let figure2 () =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    "Figure 2: RP lifecycle per level (bars scaled to each cycle)\n";
  let bar cycle w =
    let frac = Duration.ratio w cycle in
    let cells = int_of_float (ceil (40. *. frac)) in
    let cells = min 40 (max (if Duration.is_zero w then 0 else 1) cells) in
    "[" ^ String.make cells '#' ^ String.make (40 - cells) ' ' ^ "]"
  in
  let level name (s : Schedule.t) =
    let cycle = Schedule.cycle_period s in
    Buffer.add_string buffer
      (Printf.sprintf "%s (cycle %s, retains %d cycles = %s)\n" name
         (Duration.to_string cycle) s.Schedule.retention_count
         (Duration.to_string (Schedule.retention_window s)));
    let window label w =
      Buffer.add_string buffer
        (Printf.sprintf "  %-11s %s %s\n" label (bar cycle w)
           (Duration.to_string w))
    in
    window "accumulate" s.Schedule.full.Schedule.accumulation;
    window "hold" s.Schedule.full.Schedule.hold;
    window "propagate" s.Schedule.full.Schedule.propagation;
    match s.Schedule.secondary with
    | None -> ()
    | Some (rep, w) ->
      Buffer.add_string buffer
        (Printf.sprintf "  + %d %s incrementals:\n" s.Schedule.cycle_count
           (Fmt.str "%a" Schedule.pp_representation rep));
      window "  accumulate" w.Schedule.accumulation;
      window "  propagate" w.Schedule.propagation
  in
  level "split mirror" Baseline.split_mirror_schedule;
  level "tape backup" Baseline.backup_schedule;
  level "remote vaulting" Baseline.vault_schedule;
  Buffer.contents buffer

let table5 () =
  let report = Utilization.compute Baseline.design in
  let rows =
    List.concat_map
      (fun (d : Utilization.device_report) ->
        let share (s : Utilization.technique_share) =
          [
            "  " ^ s.Utilization.technique;
            Metric.percent s.Utilization.bandwidth_fraction;
            Metric.percent s.Utilization.capacity_fraction;
          ]
        in
        let total = d.Utilization.total in
        [ d.Utilization.device.Device.name ]
        :: List.map share d.Utilization.shares
        @ [
            [
              "  overall";
              Printf.sprintf "%s (%s MB/s)"
                (Metric.percent total.Device.bandwidth_fraction)
                (Metric.mib_per_sec total.Device.bandwidth_used);
              Printf.sprintf "%s (%s TB)"
                (Metric.percent total.Device.capacity_fraction)
                (Metric.tib total.Device.capacity_used);
            ];
          ])
      report.Utilization.devices
  in
  Table.render ~title:"Table 5: normal mode utilization (baseline)"
    ~headers:[ "Device / technique"; "Bandwidth"; "Capacity" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    (rows
    @ [
        [
          "system overall";
          Metric.percent report.Utilization.system_bandwidth_fraction;
          Metric.percent report.Utilization.system_capacity_fraction;
        ];
      ])

let source_name (r : Evaluate.report) =
  match r.Evaluate.data_loss.Data_loss.source_level with
  | None -> "-"
  | Some j ->
    Technique.name
      (Hierarchy.level Baseline.design.Design.hierarchy j).Hierarchy.technique

let scope_name (r : Evaluate.report) =
  Fmt.str "%a" Location.pp_scope r.Evaluate.scenario.Scenario.scope

let loss_hours (r : Evaluate.report) =
  match r.Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates d when Duration.to_hours d < 1. ->
    Printf.sprintf "%.2f hr" (Duration.to_hours d)
  | Data_loss.Updates d -> Printf.sprintf "%s hr" (Metric.hours d)
  | Data_loss.Entire_object -> "entire object"

let table6 () =
  let reports = Evaluate.run_all Baseline.design Baseline.scenarios in
  Table.render ~title:"Table 6: worst case recovery time and data loss (baseline)"
    ~headers:[ "Failure scope"; "Recovery source"; "Recovery time"; "Recent data loss" ]
    (List.map
       (fun (r : Evaluate.report) ->
         let rt =
           if Duration.to_seconds r.Evaluate.recovery_time < 60. then
             Printf.sprintf "%s s" (Metric.seconds r.Evaluate.recovery_time)
           else Printf.sprintf "%s hr" (Metric.hours r.Evaluate.recovery_time)
         in
         [ scope_name r; source_name r; rt; loss_hours r ])
       reports)

let table7 () =
  let rows =
    List.concat_map
      (fun (name, design) ->
        List.map
          (fun scenario ->
            let r = Evaluate.run design scenario in
            [
              name;
              Fmt.str "%a" Location.pp_scope scenario.Scenario.scope;
              Metric.money_m r.Evaluate.outlays.Cost.total;
              Metric.hours r.Evaluate.recovery_time;
              loss_hours r;
              Metric.money_m r.Evaluate.penalties.Cost.total;
              Metric.money_m r.Evaluate.total_cost;
            ])
          [ Baseline.scenario_array; Baseline.scenario_site ])
      Whatif.all
  in
  Table.render ~title:"Table 7: what-if scenario results"
    ~headers:
      [ "Storage system design"; "Failure"; "Outlays"; "RT (hr)"; "DL"; "Penalties"; "Total" ]
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    rows

let figure3 () =
  let h = Baseline.design.Design.hierarchy in
  let rows =
    List.init (Hierarchy.length h) (fun j ->
        let l = Hierarchy.level h j in
        let range =
          match Hierarchy.guaranteed_range h j with
          | Some r -> Fmt.str "%a" Age_range.pp r
          | None -> "(nothing guaranteed)"
        in
        [
          string_of_int j;
          Technique.name l.Hierarchy.technique;
          Duration.to_string (Hierarchy.worst_lag h j);
          Duration.to_string (Hierarchy.best_lag h j);
          range;
        ])
  in
  Table.render ~title:"Figure 3: guaranteed RP ranges per level (baseline)"
    ~headers:[ "Level"; "Technique"; "Worst lag"; "Best lag"; "Guaranteed range" ]
    rows

let figure4 () =
  let r = Evaluate.run Baseline.design Baseline.scenario_site in
  match r.Evaluate.recovery with
  | None -> "Figure 4: no recovery path"
  | Some t ->
    let rows =
      List.map
        (fun (h : Recovery_time.hop) ->
          [
            Printf.sprintf "%d -> %d" h.Recovery_time.from_level
              h.Recovery_time.to_level;
            Duration.to_string h.Recovery_time.transit;
            Duration.to_string h.Recovery_time.par_fix;
            Duration.to_string h.Recovery_time.ser_fix;
            Duration.to_string h.Recovery_time.transfer;
            (match h.Recovery_time.transfer_rate with
            | Some rate -> Rate.to_string rate
            | None -> "media");
            Duration.to_string h.Recovery_time.ready_at;
          ])
        t.Recovery_time.hops
    in
    Table.render
      ~title:
        (Printf.sprintf
           "Figure 4: recovery task decomposition, site disaster (total %s)"
           (Duration.to_string t.Recovery_time.total))
      ~headers:[ "Hop"; "Transit"; "parFix"; "serFix"; "serXfer"; "Rate"; "Ready at" ]
      rows

let figure5 () =
  let outlay_rows =
    (Cost.outlays Baseline.design).Cost.by_technique
    |> List.map (fun (tech, amount) ->
           [ "outlay: " ^ tech; ""; Metric.money_m amount ])
  in
  let penalty_rows =
    Evaluate.run_all Baseline.design Baseline.scenarios
    |> List.concat_map (fun (r : Evaluate.report) ->
           [
             [
               "penalty: outage";
               scope_name r;
               Metric.money_m r.Evaluate.penalties.Cost.outage;
             ];
             [
               "penalty: recent data loss";
               scope_name r;
               Metric.money_m r.Evaluate.penalties.Cost.loss;
             ];
             [ "total cost"; scope_name r; Metric.money_m r.Evaluate.total_cost ];
           ])
  in
  Table.render ~title:"Figure 5: overall system cost (baseline)"
    ~headers:[ "Component"; "Failure scope"; "Annual cost" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right ]
    (outlay_rows @ penalty_rows)

let all () =
  String.concat "\n\n"
    [
      table2 (); table3 (); table4 (); figure1 (); figure2 (); table5 ();
      table6 (); figure3 (); figure4 (); figure5 (); table7 ();
    ]

let print_all () =
  print_string (all ());
  print_newline ()
