lib/hierarchy/hierarchy.mli: Age_range Device Duration Fmt Interconnect Location Storage_device Storage_protection Storage_units Technique
