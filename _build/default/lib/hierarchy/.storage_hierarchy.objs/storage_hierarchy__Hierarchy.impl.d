lib/hierarchy/hierarchy.ml: Age_range Array Device Duration Fmt Interconnect List Location Printf Schedule Storage_device Storage_protection Storage_units String Technique
