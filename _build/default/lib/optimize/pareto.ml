open Storage_units
open Storage_model

let dominates (a : Objective.summary) (b : Objective.summary) =
  let cost = Money.compare a.Objective.outlays b.Objective.outlays in
  let rt =
    Duration.compare a.Objective.worst_recovery_time
      b.Objective.worst_recovery_time
  in
  let dl = Data_loss.compare_loss a.Objective.worst_loss b.Objective.worst_loss in
  cost <= 0 && rt <= 0 && dl <= 0 && (cost < 0 || rt < 0 || dl < 0)

let frontier summaries =
  List.filter
    (fun s -> not (List.exists (fun other -> dominates other s) summaries))
    summaries
