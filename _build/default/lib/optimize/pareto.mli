(** Pareto frontiers over design summaries.

    A design dominates another when it is no worse on every objective
    (outlays, worst recovery time, worst data loss) and strictly better on
    at least one. The frontier is the set of non-dominated designs — the
    menu a storage administrator actually chooses from. *)

val dominates : Objective.summary -> Objective.summary -> bool
(** [dominates a b] per the (outlays, worst RT, worst DL) objectives.
    [Entire_object] losses compare worse than any finite loss. *)

val frontier : Objective.summary list -> Objective.summary list
(** Non-dominated subset, preserving input order. O(n^2); candidate sets
    are design grids of at most a few thousand. *)
