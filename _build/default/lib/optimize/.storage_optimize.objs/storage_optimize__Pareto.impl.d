lib/optimize/pareto.ml: Data_loss Duration List Money Objective Storage_model Storage_units
