lib/optimize/objective.mli: Data_loss Design Duration Evaluate Fmt Money Scenario Storage_model Storage_units
