lib/optimize/candidate.mli: Business Design Device Duration Interconnect Storage_device Storage_model Storage_units Storage_workload Workload
