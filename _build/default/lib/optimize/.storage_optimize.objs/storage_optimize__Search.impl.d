lib/optimize/search.ml: Fmt List Money Objective Pareto Storage_units
