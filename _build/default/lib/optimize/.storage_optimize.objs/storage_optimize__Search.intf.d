lib/optimize/search.mli: Design Fmt Objective Scenario Storage_model
