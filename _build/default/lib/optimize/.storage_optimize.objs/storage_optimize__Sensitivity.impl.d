lib/optimize/sensitivity.ml: Cost Data_loss Duration Evaluate Fmt List Money Option Storage_model Storage_units
