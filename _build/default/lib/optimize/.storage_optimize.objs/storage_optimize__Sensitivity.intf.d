lib/optimize/sensitivity.mli: Data_loss Design Duration Fmt Money Scenario Storage_model Storage_units
