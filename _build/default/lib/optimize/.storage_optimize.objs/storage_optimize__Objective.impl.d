lib/optimize/objective.ml: Cost Data_loss Design Duration Evaluate Fmt List Money Option Storage_model Storage_units
