lib/optimize/pareto.mli: Objective
