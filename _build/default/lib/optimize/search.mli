open Storage_model

(** The outer optimization loop: evaluate every candidate, keep the
    feasible ones, rank by worst-case total cost, and expose the Pareto
    frontier for human inspection. *)

type result = {
  evaluated : Objective.summary list;  (** every candidate, input order *)
  feasible : Objective.summary list;
      (** candidates meeting RTO/RPO in all scenarios, cheapest first *)
  frontier : Objective.summary list;
      (** Pareto-optimal candidates over (outlays, worst RT, worst DL) *)
  best : Objective.summary option;
      (** cheapest feasible design by worst-case total cost *)
}

val run : Design.t list -> Scenario.t list -> result
(** Raises [Invalid_argument] on empty candidates or scenarios. *)

val pp : result Fmt.t
(** Prints the frontier and the winner. *)
