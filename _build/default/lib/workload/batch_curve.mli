open Storage_units

(** The batch update rate curve [batchUpdR(win)].

    The paper characterizes a workload's *unique* update rate as a function of
    the batching window: over a window [win], overwrites coalesce, so the rate
    of unique bytes written is at most the raw update rate and decreases as
    the window grows (cello: 727 KB/s at 1 min down to 317 KB/s at 1 week).

    A curve is a set of sampled [(window, rate)] points. Queries between
    samples interpolate log-linearly in the window dimension; queries outside
    the sampled range clamp to the nearest endpoint. The derived quantity
    [unique_bytes] is additionally capped by the data capacity: a window can
    never accumulate more unique bytes than the object holds. *)

type t

val of_samples : (Duration.t * Rate.t) list -> t
(** Builds a curve from samples. Raises [Invalid_argument] if the list is
    empty, contains a zero window, duplicates a window, or if the implied
    unique-byte volume [rate * window] is not non-decreasing in the window
    (a longer window cannot contain fewer unique bytes). *)

val constant : Rate.t -> t
(** A workload with no overwrite locality: unique rate independent of
    window. *)

val samples : t -> (Duration.t * Rate.t) list
(** The defining samples, sorted by increasing window. *)

val rate : t -> Duration.t -> Rate.t
(** [rate t win] is the unique update rate for batching window [win].
    [win] must be positive. *)

val unique_bytes : ?capacity:Size.t -> t -> Duration.t -> Size.t
(** [unique_bytes ?capacity t win] is [rate t win * win], capped at
    [capacity] when provided. Returns {!Size.zero} for a zero window. *)

val fit_power_law : t -> float * float
(** Least-squares fit of [rate(win) = a · win^(-b)] in log-log space over
    the samples, returned as [(a, b)] with [win] in seconds and [a] in
    bytes/sec. Workload overwrite locality typically yields [b] in
    [0, 1) (cello: ~0.09). Raises [Invalid_argument] on a single-sample
    curve (nothing to fit). *)

val extrapolate : t -> Duration.t -> Rate.t
(** Like {!rate} inside the sampled range, but beyond the largest sample
    follows the fitted power law instead of clamping — the paper's
    future-work "increasing sophistication in the workload description".
    Falls back to clamping for single-sample curves. The result never
    exceeds the smallest-window sample rate. *)

val pp : t Fmt.t
