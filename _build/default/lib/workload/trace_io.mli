(** Trace persistence.

    Traces are stored as CSV with a metadata header line, so they can be
    produced once (or converted from external block-trace formats) and
    re-characterized without regeneration:

    {v
    # ssdep-trace block_size_bytes=65536 block_count=16384
    time_s,block
    0.125,42
    0.300,17
    v} *)

val save_csv : Trace.t -> path:string -> (unit, string) result
val load_csv : path:string -> (Trace.t, string) result
(** Errors carry the offending line number; events are re-sorted by time
    on load. *)

val import_text :
  block_size:Storage_units.Size.t ->
  data_capacity:Storage_units.Size.t ->
  path:string ->
  (Trace.t, string) result
(** Imports an external block-trace in the common whitespace-separated
    text form many replay tools emit:

    {v
    <time_s> <R|W> <offset_bytes> <length_bytes>
    v}

    Reads (and [#] comment lines) are skipped; each write is quantized
    onto [block_size] blocks covering its byte range (one event per
    touched block, so overwrite coalescing measures correctly), with
    offsets wrapped modulo [data_capacity]. Errors carry the line
    number. *)
