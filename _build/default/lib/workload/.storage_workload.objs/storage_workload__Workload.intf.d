lib/workload/workload.mli: Batch_curve Duration Fmt Rate Size Storage_units
