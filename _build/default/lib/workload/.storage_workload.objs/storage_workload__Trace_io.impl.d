lib/workload/trace_io.ml: Array Float In_channel List Out_channel Printf Size Storage_units String Trace
