lib/workload/prng.mli:
