lib/workload/trace.mli: Duration Rate Size Storage_units
