lib/workload/trace.ml: Array Duration Float List Prng Rate Size Storage_units
