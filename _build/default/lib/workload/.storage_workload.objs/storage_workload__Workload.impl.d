lib/workload/workload.ml: Batch_curve Fmt List Printf Rate Size Storage_units
