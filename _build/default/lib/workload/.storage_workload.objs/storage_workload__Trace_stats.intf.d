lib/workload/trace_stats.mli: Batch_curve Duration Rate Size Storage_units Trace Workload
