lib/workload/trace_stats.ml: Array Batch_curve Duration Float List Rate Size Stdlib Storage_units Trace Workload
