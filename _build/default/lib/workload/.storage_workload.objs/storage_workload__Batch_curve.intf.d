lib/workload/batch_curve.mli: Duration Fmt Rate Size Storage_units
