lib/workload/trace_io.mli: Storage_units Trace
