lib/workload/batch_curve.ml: Array Duration Float Fmt List Rate Size Storage_units
