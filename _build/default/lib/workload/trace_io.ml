open Storage_units

let magic = "# ssdep-trace"

let save_csv (t : Trace.t) ~path =
  match
    Out_channel.with_open_text path (fun oc ->
        Printf.fprintf oc "%s block_size_bytes=%.0f block_count=%d\n" magic
          (Size.to_bytes t.Trace.block_size)
          t.Trace.block_count;
        output_string oc "time_s,block\n";
        Array.iteri
          (fun i time ->
            Printf.fprintf oc "%.6f,%d\n" time t.Trace.blocks.(i))
          t.Trace.times)
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m

let parse_header line =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  if not (starts_with magic line) then
    Error "not an ssdep trace (missing header)"
  else begin
    let kvs =
      String.split_on_char ' ' line
      |> List.filter_map (fun tok ->
             match String.index_opt tok '=' with
             | None -> None
             | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) ))
    in
    match
      (List.assoc_opt "block_size_bytes" kvs, List.assoc_opt "block_count" kvs)
    with
    | Some bs, Some bc -> (
      match (float_of_string_opt bs, int_of_string_opt bc) with
      | Some bs, Some bc when bs > 0. && bc > 0 -> Ok (Size.bytes bs, bc)
      | _ -> Error "malformed trace header values")
    | _ -> Error "trace header missing block_size_bytes/block_count"
  end

let import_text ~block_size ~data_capacity ~path =
  let bs = Size.to_bytes block_size in
  let cap = Size.to_bytes data_capacity in
  if bs <= 0. then Error "import_text: non-positive block size"
  else if cap < bs then Error "import_text: capacity below one block"
  else begin
    let block_count = int_of_float (Float.max 1. (floor (cap /. bs))) in
    match
      In_channel.with_open_text path (fun ic ->
          let events = ref [] in
          let lineno = ref 0 in
          let error = ref None in
          (try
             while !error = None do
               match In_channel.input_line ic with
               | None -> raise Exit
               | Some line ->
                 incr lineno;
                 let line = String.trim line in
                 if line = "" || line.[0] = '#' then ()
                 else begin
                   let fields =
                     String.split_on_char ' ' line
                     |> List.concat_map (String.split_on_char '\t')
                     |> List.filter (fun f -> f <> "")
                   in
                   match fields with
                   | [ time; op; offset; length ] -> (
                     match
                       ( float_of_string_opt time,
                         String.uppercase_ascii op,
                         float_of_string_opt offset,
                         float_of_string_opt length )
                     with
                     | Some time, ("R" | "READ"), _, _ when time >= 0. -> ()
                     | Some time, ("W" | "WRITE"), Some off, Some len
                       when time >= 0. && off >= 0. && len > 0. ->
                       (* One event per touched block; wrap very large
                          offsets onto the object. *)
                       let first = int_of_float (floor (off /. bs)) in
                       let last =
                         int_of_float (floor ((off +. len -. 1.) /. bs))
                       in
                       for b = first to last do
                         events :=
                           (time, b mod block_count) :: !events
                       done
                     | _ ->
                       error :=
                         Some
                           (Printf.sprintf "line %d: malformed trace record"
                              !lineno))
                   | _ ->
                     error :=
                       Some
                         (Printf.sprintf
                            "line %d: expected \"time op offset length\""
                            !lineno)
                 end
             done
           with Exit -> ());
          match !error with
          | Some e -> Error e
          | None -> (
            match
              Trace.of_events ~block_size ~block_count (List.rev !events)
            with
            | t -> Ok t
            | exception Invalid_argument m -> Error m))
    with
    | result -> result
    | exception Sys_error m -> Error m
  end

let load_csv ~path =
  match
    In_channel.with_open_text path (fun ic ->
        let header = In_channel.input_line ic in
        match header with
        | None -> Error "empty trace file"
        | Some header -> (
          match parse_header header with
          | Error _ as e -> e
          | Ok (block_size, block_count) -> (
            let events = ref [] in
            let lineno = ref 1 in
            let error = ref None in
            (try
               while !error = None do
                 match In_channel.input_line ic with
                 | None -> raise Exit
                 | Some line ->
                   incr lineno;
                   let line = String.trim line in
                   if line = "" || line = "time_s,block" then ()
                   else begin
                     match String.index_opt line ',' with
                     | None ->
                       error := Some (Printf.sprintf "line %d: expected time,block" !lineno)
                     | Some i -> (
                       let time = float_of_string_opt (String.sub line 0 i) in
                       let block =
                         int_of_string_opt
                           (String.sub line (i + 1) (String.length line - i - 1))
                       in
                       match (time, block) with
                       | Some time, Some block
                         when time >= 0. && block >= 0 && block < block_count
                         ->
                         events := (time, block) :: !events
                       | _ ->
                         error :=
                           Some (Printf.sprintf "line %d: malformed event" !lineno))
                   end
               done
             with Exit -> ());
            match !error with
            | Some e -> Error e
            | None -> (
              match
                Trace.of_events ~block_size ~block_count (List.rev !events)
              with
              | t -> Ok t
              | exception Invalid_argument m -> Error m))))
  with
  | result -> result
  | exception Sys_error m -> Error m
