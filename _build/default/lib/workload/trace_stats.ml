open Storage_units

let average_update_rate (t : Trace.t) =
  let d = Duration.to_seconds (Trace.duration t) in
  if d <= 0. then Rate.zero
  else Rate.bytes_per_sec (Size.to_bytes (Trace.total_bytes t) /. d)

let burst_multiplier ?(bucket = Duration.minutes 1.) (t : Trace.t) =
  let span = Duration.to_seconds (Trace.duration t) in
  let b = Duration.to_seconds bucket in
  if span <= 0. || b <= 0. then 1.
  else begin
    let nbuckets = int_of_float (ceil (span /. b)) in
    let counts = Array.make (Stdlib.max 1 nbuckets) 0 in
    Array.iter
      (fun time ->
        let i = Stdlib.min (nbuckets - 1) (int_of_float (time /. b)) in
        counts.(i) <- counts.(i) + 1)
      t.times;
    let peak = Array.fold_left Stdlib.max 0 counts in
    let avg = float_of_int (Array.length t.times) /. span in
    if avg <= 0. then 1. else Float.max 1. (float_of_int peak /. b /. avg)
  end

(* Unique blocks per non-overlapping window, using a seen-bitmap reset per
   window (a generation counter avoids reallocating). *)
let unique_counts (t : Trace.t) win =
  let w = Duration.to_seconds win in
  if w <= 0. then invalid_arg "Trace_stats: non-positive window";
  let span = Duration.to_seconds (Trace.duration t) in
  let nwin = Stdlib.max 1 (int_of_float (ceil (span /. w))) in
  let gen = Array.make t.block_count (-1) in
  let counts = Array.make nwin 0 in
  Array.iteri
    (fun i time ->
      let wi = Stdlib.min (nwin - 1) (int_of_float (time /. w)) in
      let b = t.blocks.(i) in
      if gen.(b) <> wi then begin
        gen.(b) <- wi;
        counts.(wi) <- counts.(wi) + 1
      end)
    t.times;
  counts

let unique_bytes_in_window (t : Trace.t) win ~stat =
  if Trace.event_count t = 0 then Size.zero
  else begin
    let counts = unique_counts t win in
    let bs = Size.to_bytes t.block_size in
    match stat with
    | `Max ->
      Size.bytes (float_of_int (Array.fold_left Stdlib.max 0 counts) *. bs)
    | `Mean ->
      let total = Array.fold_left ( + ) 0 counts in
      Size.bytes (float_of_int total *. bs /. float_of_int (Array.length counts))
  end

let batch_update_rate t win =
  let bytes = unique_bytes_in_window t win ~stat:`Mean in
  Rate.bytes_per_sec (Size.to_bytes bytes /. Duration.to_seconds win)

let batch_curve t ~windows =
  if windows = [] then invalid_arg "Trace_stats.batch_curve: no windows";
  let sorted = List.sort Duration.compare windows in
  let raw =
    List.map (fun w -> (w, unique_bytes_in_window t w ~stat:`Mean)) sorted
  in
  (* Enforce volume monotonicity against sampling noise: a longer window must
     report at least the unique volume of a shorter one. *)
  let _, monotone =
    List.fold_left
      (fun (floor, acc) (w, v) ->
        let v = Size.max floor v in
        (v, (w, Rate.of_size_per v w) :: acc))
      (Size.zero, []) raw
  in
  Batch_curve.of_samples (List.rev monotone)

let to_workload ~name ?(read_write_ratio = 0.29) ~windows t =
  let avg_update = average_update_rate t in
  let avg_access = Rate.scale (1. +. read_write_ratio) avg_update in
  Workload.make ~name
    ~data_capacity:(Size.scale (float_of_int t.Trace.block_count) t.Trace.block_size)
    ~avg_access_rate:avg_access ~avg_update_rate:avg_update
    ~burst_multiplier:(burst_multiplier t)
    ~batch_curve:(batch_curve t ~windows)
