(** Deterministic pseudo-random number generation.

    A self-contained splitmix64 generator so that trace generation and the
    simulator are reproducible across OCaml versions and independent of the
    global [Random] state. *)

type t

val create : seed:int64 -> t
val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n)]. Requires [n > 0]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. Requires [mean > 0]. *)

val zipf : t -> n:int -> s:float -> int
(** A sample in [[0, n)] from a Zipf distribution with exponent [s],
    drawn by inversion on the harmonic CDF approximation. Requires [n > 0]
    and [s >= 0]. *)

val split : t -> t
(** A statistically independent child generator. *)
