open Storage_units

(** Workload description (Table 1, "Model inputs: workload").

    A workload summarizes the I/O behaviour of a single data object: its
    size, total access rate, raw (non-unique) update rate, burstiness, and
    the batching curve of unique update rates. *)

type t = private {
  name : string;
  data_capacity : Size.t;  (** [dataCap]: size of the protected object. *)
  avg_access_rate : Rate.t;
      (** [avgAccessR]: combined read+write client rate. *)
  avg_update_rate : Rate.t;  (** [avgUpdateR]: raw (non-unique) write rate. *)
  burst_multiplier : float;
      (** [burstM]: ratio of peak update rate to average update rate. *)
  batch_curve : Batch_curve.t;  (** [batchUpdR(win)]. *)
}

val make :
  name:string ->
  data_capacity:Size.t ->
  avg_access_rate:Rate.t ->
  avg_update_rate:Rate.t ->
  burst_multiplier:float ->
  batch_curve:Batch_curve.t ->
  t
(** Raises [Invalid_argument] when [data_capacity] is zero, the update rate
    exceeds the access rate, or [burst_multiplier < 1]. *)

val peak_update_rate : t -> Rate.t
(** [burstM * avgUpdateR]: the rate a synchronous mirror link must sustain. *)

val batch_update_rate : t -> Duration.t -> Rate.t
(** [batchUpdR(win)]: unique update rate over the given window. *)

val unique_bytes : t -> Duration.t -> Size.t
(** Unique bytes written over a window, capped at the data capacity. *)

val grow : t -> factor:float -> t
(** The workload scaled by a uniform growth factor: capacity, access and
    update rates, and the unique-update curve all multiply by [factor]
    (burstiness is shape, not volume, and is unchanged). Used for
    capacity-planning sweeps: "which year does this design stop
    fitting?". Raises [Invalid_argument] when [factor <= 0]. *)

val pp : t Fmt.t
