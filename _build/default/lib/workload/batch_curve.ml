open Storage_units

type t = { points : (Duration.t * Rate.t) array }

let of_samples samples =
  if samples = [] then invalid_arg "Batch_curve.of_samples: empty sample list";
  let sorted =
    List.sort (fun (w1, _) (w2, _) -> Duration.compare w1 w2) samples
  in
  let rec check = function
    | [] | [ _ ] -> ()
    | (w1, r1) :: ((w2, r2) :: _ as rest) ->
      if Duration.equal w1 w2 then
        invalid_arg "Batch_curve.of_samples: duplicate window";
      let v1 = Size.to_bytes (Rate.over r1 w1)
      and v2 = Size.to_bytes (Rate.over r2 w2) in
      if v2 < v1 -. 1e-6 then
        invalid_arg
          "Batch_curve.of_samples: unique volume must be non-decreasing in \
           the window";
      check rest
  in
  List.iter
    (fun (w, _) ->
      if Duration.is_zero w then
        invalid_arg "Batch_curve.of_samples: zero window")
    sorted;
  check sorted;
  { points = Array.of_list sorted }

let constant r = { points = [| (Duration.seconds 1., r) |] }
let samples t = Array.to_list t.points

(* Log-linear interpolation between bracketing samples; windows span minutes
   to years, so interpolating in log-window space avoids giving the huge
   windows all the weight. *)
let rate t win =
  if Duration.is_zero win then invalid_arg "Batch_curve.rate: zero window";
  let n = Array.length t.points in
  let w = Duration.to_seconds win in
  let w0, r0 = t.points.(0) and wn, rn = t.points.(n - 1) in
  if w <= Duration.to_seconds w0 then r0
  else if w >= Duration.to_seconds wn then rn
  else begin
    let rec find i =
      let wi, _ = t.points.(i + 1) in
      if w <= Duration.to_seconds wi then i else find (i + 1)
    in
    let i = find 0 in
    let wl, rl = t.points.(i) and wh, rh = t.points.(i + 1) in
    let lwl = log (Duration.to_seconds wl)
    and lwh = log (Duration.to_seconds wh) in
    let frac = (log w -. lwl) /. (lwh -. lwl) in
    let rlow = Rate.to_bytes_per_sec rl and rhigh = Rate.to_bytes_per_sec rh in
    Rate.bytes_per_sec (rlow +. (frac *. (rhigh -. rlow)))
  end

let unique_bytes ?capacity t win =
  if Duration.is_zero win then Size.zero
  else begin
    let raw = Rate.over (rate t win) win in
    match capacity with None -> raw | Some cap -> Size.min raw cap
  end

let fit_power_law t =
  let n = Array.length t.points in
  if n < 2 then
    invalid_arg "Batch_curve.fit_power_law: need at least two samples";
  (* Ordinary least squares on log(rate) = log(a) - b * log(win). *)
  let xs =
    Array.map (fun (w, _) -> log (Duration.to_seconds w)) t.points
  in
  let ys =
    Array.map (fun (_, r) -> log (Rate.to_bytes_per_sec r)) t.points
  in
  let nf = float_of_int n in
  let mean a = Array.fold_left ( +. ) 0. a /. nf in
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  Array.iteri
    (fun i x ->
      sxy := !sxy +. ((x -. mx) *. (ys.(i) -. my));
      sxx := !sxx +. ((x -. mx) ** 2.))
    xs;
  let slope = if !sxx = 0. then 0. else !sxy /. !sxx in
  let b = -.slope in
  let a = exp (my -. (slope *. mx)) in
  (a, b)

let extrapolate t win =
  let n = Array.length t.points in
  let wn, _ = t.points.(n - 1) in
  if n < 2 || Duration.compare win wn <= 0 then rate t win
  else begin
    let a, b = fit_power_law t in
    let predicted = a *. (Duration.to_seconds win ** -.b) in
    let _, r0 = t.points.(0) in
    Rate.bytes_per_sec
      (Float.min (Rate.to_bytes_per_sec r0) (Float.max 0. predicted))
  end

let pp ppf t =
  let pp_point ppf (w, r) = Fmt.pf ppf "%a: %a" Duration.pp w Rate.pp r in
  Fmt.pf ppf "@[<h>%a@]" (Fmt.list ~sep:Fmt.semi pp_point) (samples t)
