open Storage_units

(** Synthetic block-level update traces.

    The paper derives its workload parameters (Table 2) from a measured trace
    of the [cello] workgroup file server, which is not publicly available. We
    substitute a synthetic generator exercising the same analysis pipeline:
    update arrivals follow a two-phase modulated Poisson process (quiet /
    burst), and updated blocks are drawn from a Zipf popularity distribution,
    which produces the overwrite locality that makes [batchUpdR] decrease
    with window size. *)

type t = private {
  block_size : Size.t;
  block_count : int;
  times : float array;  (** event times, seconds, non-decreasing *)
  blocks : int array;  (** updated block index per event *)
}

val event_count : t -> int

val duration : t -> Duration.t
(** Time of the last event (zero for an empty trace). *)

val total_bytes : t -> Size.t
(** Raw (non-unique) bytes written: [event_count * block_size]. *)

type profile = {
  block_size : Size.t;
  block_count : int;  (** object size = [block_count * block_size] *)
  mean_update_rate : Rate.t;  (** long-run average raw update rate *)
  zipf_exponent : float;
      (** skew of block popularity; 0 = uniform, ~1 = heavy overwrite
          locality *)
  burst_multiplier : float;
      (** peak-to-mean arrival rate ratio during bursts; >= 1 *)
  burst_fraction : float;
      (** fraction of time spent in the burst phase, in (0, 1] *)
  mean_phase_length : Duration.t;  (** mean dwell time in each phase *)
}

val default_profile : profile
(** A cello-like profile: 1 GiB object of 64 KiB blocks, ~800 KiB/s updates,
    Zipf 0.9, 10x bursts 5% of the time. *)

val generate : ?seed:int64 -> profile -> Duration.t -> t
(** [generate ~seed profile span] produces a trace covering [span].
    Deterministic for a given seed. Raises [Invalid_argument] on a
    non-positive block count, block size, or rate, or invalid burst/zipf
    parameters. *)

val of_events :
  block_size:Size.t -> block_count:int -> (float * int) list -> t
(** Builds a trace from explicit [(time, block)] events (for tests). Events
    are sorted by time; block indices must be in range. *)
