type t = { mutable state : int64 }

let create ~seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let float_range t lo hi =
  if lo > hi then invalid_arg "Prng.float_range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^64. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1. -. float t in
  -.mean *. log u

(* Zipf sampling by inversion of the continuous approximation to the harmonic
   CDF (Gray et al., "Quickly generating billion-record synthetic databases",
   SIGMOD 1994 idiom). Accurate enough for workload skew modeling. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if s < 0. then invalid_arg "Prng.zipf: s must be non-negative";
  if s = 0. then int t n
  else if abs_float (s -. 1.) < 1e-9 then begin
    let u = float t in
    let hn = log (float_of_int n +. 1.) in
    let x = exp (u *. hn) -. 1. in
    Stdlib.min (n - 1) (int_of_float x)
  end
  else begin
    let u = float t in
    let e = 1. -. s in
    let hn = (((float_of_int n +. 1.) ** e) -. 1.) /. e in
    let x = (((u *. hn *. e) +. 1.) ** (1. /. e)) -. 1. in
    Stdlib.min (n - 1) (Stdlib.max 0 (int_of_float x))
  end

let split t =
  let seed = next_int64 t in
  create ~seed:(Int64.logxor seed 0xDEADBEEFCAFEF00DL)
