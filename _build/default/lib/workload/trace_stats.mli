open Storage_units

(** Workload characterization from a trace (the Table 2 pipeline).

    Computes the five model input parameters from a block-level update trace:
    average update rate, burstiness (peak over a fine-grained bucket divided
    by the mean), and the unique-update ([batchUpdR]) curve via windowed
    unique-block counting. *)

val average_update_rate : Trace.t -> Rate.t
(** Total bytes written divided by the trace duration. {!Rate.zero} for
    traces shorter than one event. *)

val burst_multiplier : ?bucket:Duration.t -> Trace.t -> float
(** Peak update rate over any [bucket]-sized interval (default one minute)
    divided by the average rate; at least 1. *)

val unique_bytes_in_window : Trace.t -> Duration.t -> stat:[ `Mean | `Max ] -> Size.t
(** Unique bytes written per window of the given length, tiling the trace
    with non-overlapping windows, aggregated by mean or max. Windows longer
    than the trace return the whole-trace unique volume. *)

val batch_update_rate : Trace.t -> Duration.t -> Rate.t
(** Mean unique bytes per window divided by the window length. *)

val batch_curve : Trace.t -> windows:Duration.t list -> Batch_curve.t
(** Samples {!batch_update_rate} at each window, monotonizing the resulting
    unique-volume sequence (sampling noise on short traces can produce tiny
    violations of volume monotonicity that {!Batch_curve.of_samples} would
    reject). *)

val to_workload :
  name:string ->
  ?read_write_ratio:float ->
  windows:Duration.t list ->
  Trace.t ->
  Workload.t
(** Full Table 2 characterization. [read_write_ratio] is reads-per-write used
    to synthesize the access rate from the update rate (default [0.29],
    cello's 1028/799 ratio). *)
