open Storage_units

type t = {
  name : string;
  data_capacity : Size.t;
  avg_access_rate : Rate.t;
  avg_update_rate : Rate.t;
  burst_multiplier : float;
  batch_curve : Batch_curve.t;
}

let make ~name ~data_capacity ~avg_access_rate ~avg_update_rate
    ~burst_multiplier ~batch_curve =
  if Size.is_zero data_capacity then
    invalid_arg "Workload.make: zero data capacity";
  if Rate.compare avg_update_rate avg_access_rate > 0 then
    invalid_arg "Workload.make: update rate exceeds access rate";
  if burst_multiplier < 1. then
    invalid_arg "Workload.make: burst multiplier below 1";
  {
    name;
    data_capacity;
    avg_access_rate;
    avg_update_rate;
    burst_multiplier;
    batch_curve;
  }

let peak_update_rate t = Rate.scale t.burst_multiplier t.avg_update_rate
let batch_update_rate t win = Batch_curve.rate t.batch_curve win

let unique_bytes t win =
  Batch_curve.unique_bytes ~capacity:t.data_capacity t.batch_curve win

let grow t ~factor =
  if factor <= 0. then invalid_arg "Workload.grow: non-positive factor";
  let scale_curve curve =
    Batch_curve.samples curve
    |> List.map (fun (win, rate) -> (win, Rate.scale factor rate))
    |> Batch_curve.of_samples
  in
  {
    t with
    name = Printf.sprintf "%s (x%.2g)" t.name factor;
    data_capacity = Size.scale factor t.data_capacity;
    avg_access_rate = Rate.scale factor t.avg_access_rate;
    avg_update_rate = Rate.scale factor t.avg_update_rate;
    batch_curve = scale_curve t.batch_curve;
  }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>workload %s:@,\
    \  dataCap     = %a@,\
    \  avgAccessR  = %a@,\
    \  avgUpdateR  = %a@,\
    \  burstM      = %.1fx@,\
    \  batchUpdR   = %a@]"
    t.name Size.pp t.data_capacity Rate.pp t.avg_access_rate Rate.pp
    t.avg_update_rate t.burst_multiplier Batch_curve.pp t.batch_curve
