open Storage_units

type t = {
  block_size : Size.t;
  block_count : int;
  times : float array;
  blocks : int array;
}

let event_count t = Array.length t.times

let duration t =
  let n = Array.length t.times in
  if n = 0 then Duration.zero else Duration.seconds t.times.(n - 1)

let total_bytes t = Size.scale (float_of_int (event_count t)) t.block_size

type profile = {
  block_size : Size.t;
  block_count : int;
  mean_update_rate : Rate.t;
  zipf_exponent : float;
  burst_multiplier : float;
  burst_fraction : float;
  mean_phase_length : Duration.t;
}

let default_profile =
  {
    block_size = Size.kib 64.;
    block_count = 16384;
    mean_update_rate = Rate.kib_per_sec 800.;
    zipf_exponent = 0.9;
    burst_multiplier = 10.;
    burst_fraction = 0.05;
    mean_phase_length = Duration.minutes 2.;
  }

let validate_profile p =
  if p.block_count <= 0 then invalid_arg "Trace.generate: block_count <= 0";
  if Size.is_zero p.block_size then invalid_arg "Trace.generate: zero block size";
  if Rate.is_zero p.mean_update_rate then
    invalid_arg "Trace.generate: zero update rate";
  if p.zipf_exponent < 0. then invalid_arg "Trace.generate: negative zipf";
  if p.burst_multiplier < 1. then
    invalid_arg "Trace.generate: burst multiplier below 1";
  if p.burst_fraction <= 0. || p.burst_fraction > 1. then
    invalid_arg "Trace.generate: burst fraction outside (0, 1]";
  if Duration.is_zero p.mean_phase_length then
    invalid_arg "Trace.generate: zero phase length"

(* The two arrival rates are chosen so that
     burst_fraction * hi + (1 - burst_fraction) * lo = mean
     hi = burst_multiplier * mean
   which pins down lo (clamped at 0 when bursts carry more than the mean). *)
let phase_rates p =
  let mean =
    Rate.to_bytes_per_sec p.mean_update_rate /. Size.to_bytes p.block_size
  in
  let hi = p.burst_multiplier *. mean in
  let lo =
    Float.max 0. ((mean -. (p.burst_fraction *. hi)) /. (1. -. p.burst_fraction))
  in
  (hi, lo)

let generate ?(seed = 0x5EEDL) p span =
  validate_profile p;
  let hi, lo = phase_rates p in
  let rng = Prng.create ~seed in
  let horizon = Duration.to_seconds span in
  let times = ref [] and blocks = ref [] and count = ref 0 in
  let now = ref 0. in
  (* Alternate burst / quiet phases; phase dwell times are exponential with
     means proportional to the requested time fractions. *)
  let mean_phase = Duration.to_seconds p.mean_phase_length in
  let burst_mean = mean_phase *. p.burst_fraction /. 0.5
  and quiet_mean = mean_phase *. (1. -. p.burst_fraction) /. 0.5 in
  let in_burst = ref false in
  let phase_end = ref 0. in
  while !now < horizon do
    if !now >= !phase_end then begin
      in_burst := not !in_burst;
      let mean = if !in_burst then burst_mean else quiet_mean in
      phase_end := !now +. Prng.exponential rng ~mean
    end;
    let rate = if !in_burst then hi else lo in
    if rate <= 0. then now := !phase_end
    else begin
      let gap = Prng.exponential rng ~mean:(1. /. rate) in
      now := !now +. gap;
      if !now < horizon && !now < !phase_end then begin
        let b = Prng.zipf rng ~n:p.block_count ~s:p.zipf_exponent in
        times := !now :: !times;
        blocks := b :: !blocks;
        incr count
      end
      else if !now >= !phase_end then now := !phase_end
    end
  done;
  let times = Array.of_list (List.rev !times)
  and blocks = Array.of_list (List.rev !blocks) in
  { block_size = p.block_size; block_count = p.block_count; times; blocks }

let of_events ~block_size ~block_count events =
  if block_count <= 0 then invalid_arg "Trace.of_events: block_count <= 0";
  List.iter
    (fun (time, block) ->
      if block < 0 || block >= block_count then
        invalid_arg "Trace.of_events: block index out of range";
      if time < 0. || not (Float.is_finite time) then
        invalid_arg "Trace.of_events: invalid event time")
    events;
  let sorted = List.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) events in
  {
    block_size;
    block_count;
    times = Array.of_list (List.map fst sorted);
    blocks = Array.of_list (List.map snd sorted);
  }
