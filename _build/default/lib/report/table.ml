type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let trim_right line =
  let len = String.length line in
  let rec last i = if i > 0 && line.[i - 1] = ' ' then last (i - 1) else i in
  String.sub line 0 (last len)

let render ?title ~headers ?(aligns = []) rows =
  let ncols = List.length headers in
  let rows =
    List.map
      (fun row ->
        let n = List.length row in
        if n > ncols then invalid_arg "Table.render: row wider than the header";
        row @ List.init (ncols - n) (fun _ -> ""))
      rows
  in
  let aligns =
    let n = List.length aligns in
    if n >= ncols then aligns
    else aligns @ List.init (ncols - n) (fun _ -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let row_line cells =
    List.mapi (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell) cells
    |> String.concat "  " |> trim_right
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let body = row_line headers :: rule :: List.map row_line rows in
  let lines = match title with Some t -> t :: body | None -> body in
  String.concat "\n" lines

let print ?title ~headers ?aligns rows =
  print_string (render ?title ~headers ?aligns rows);
  print_newline ();
  print_newline ()
