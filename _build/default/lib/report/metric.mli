open Storage_units

(** Metric formatting used across the tables (the paper reports hours with
    one decimal, percentages with one decimal, and dollars in millions). *)

val hours : Duration.t -> string
(** ["2.4"] — hours, one decimal; seconds rendered with more precision when
    below a minute (the object-recovery cell is 0.004 s). *)

val seconds : Duration.t -> string
val percent : float -> string
(** [percent 0.024] is ["2.4%"]. *)

val money_m : Money.t -> string
(** ["$0.97M"]. *)

val mib_per_sec : Rate.t -> string
val tib : Size.t -> string
val gib : Size.t -> string
