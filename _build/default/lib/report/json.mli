(** Minimal JSON emission (no parsing).

    Machine-readable output for scripting (`ssdep evaluate --json`): a
    small value tree and a serializer with correct string escaping and
    float formatting. Deliberately write-only — the library consumes
    design files in its own language, never JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line serialization. Non-finite floats become [null]
    (JSON has no representation for them). *)

val to_string_pretty : t -> string
(** Two-space indented serialization. *)
