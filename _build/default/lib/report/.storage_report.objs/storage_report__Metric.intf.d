lib/report/metric.mli: Duration Money Rate Size Storage_units
