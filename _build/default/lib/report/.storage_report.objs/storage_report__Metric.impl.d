lib/report/metric.ml: Duration Money Printf Rate Size Storage_units
