lib/report/json.mli:
