lib/report/table.mli:
