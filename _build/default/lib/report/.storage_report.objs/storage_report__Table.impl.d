lib/report/table.ml: List String
