(** Plain-text table rendering for the CLI, examples and bench harness.

    Renders rows of cells with per-column alignment and a header rule,
    wide enough for each column's longest cell. *)

type align = Left | Right

val render :
  ?title:string -> headers:string list -> ?aligns:align list ->
  string list list -> string
(** [render ~headers rows] lays the table out with two spaces between
    columns. [aligns] defaults to left for every column; a short list is
    padded with [Left]. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val print :
  ?title:string -> headers:string list -> ?aligns:align list ->
  string list list -> unit
(** {!render} to stdout, followed by a blank line. *)
