open Storage_units

let hours d = Printf.sprintf "%.1f" (Duration.to_hours d)
let seconds d = Printf.sprintf "%.3f" (Duration.to_seconds d)
let percent f = Printf.sprintf "%.1f%%" (100. *. f)
let money_m m = Printf.sprintf "$%.2fM" (Money.to_millions m)
let mib_per_sec r = Printf.sprintf "%.1f" (Rate.to_mib_per_sec r)
let tib s = Printf.sprintf "%.1f" (Size.to_tib s)
let gib s = Printf.sprintf "%.0f" (Size.to_gib s)
