open Storage_units

type t = {
  fixed : Money.t;
  per_gib : float;
  per_mib_per_sec : float;
  per_shipment : float;
}

let make ?(fixed = Money.zero) ?(per_gib = 0.) ?(per_mib_per_sec = 0.)
    ?(per_shipment = 0.) () =
  if per_gib < 0. || per_mib_per_sec < 0. || per_shipment < 0. then
    invalid_arg "Cost_model.make: negative coefficient";
  { fixed; per_gib; per_mib_per_sec; per_shipment }

let free = make ()
let capacity_cost t size = Money.usd (t.per_gib *. Size.to_gib size)
let bandwidth_cost t rate = Money.usd (t.per_mib_per_sec *. Rate.to_mib_per_sec rate)

let outlay t ~capacity ~bandwidth ~shipments_per_year =
  if shipments_per_year < 0. then
    invalid_arg "Cost_model.outlay: negative shipment count";
  Money.sum
    [
      t.fixed;
      capacity_cost t capacity;
      bandwidth_cost t bandwidth;
      Money.usd (t.per_shipment *. shipments_per_year);
    ]

let pp ppf t =
  Fmt.pf ppf "%a + c*%.1f + b*%.1f + s*%.1f" Money.pp t.fixed t.per_gib
    t.per_mib_per_sec t.per_shipment
