open Storage_units

(** Storage device model (§3.2.2, Table 1 "device configuration").

    A device is an enclosure holding capacity components (disks, tape
    cartridges) and bandwidth components (disks, tape drives). Slots bound how
    many of each fit; the enclosure bounds aggregate bandwidth. Capacity-only
    devices (a tape vault) have no bandwidth slots and a zero device
    bandwidth — data leaves them by physical shipment, not by transfer.

    {b Erratum handling}: the paper prints
    [devBW = max(enclBW, maxBWSlots * slotBW)], but every utilization figure
    in its case study (Table 5) requires [min]; we implement [min]. *)

type t = private {
  name : string;
  location : Location.t;
  max_capacity_slots : int;
  slot_capacity : Size.t;
  max_bandwidth_slots : int;
  slot_bandwidth : Rate.t;
  enclosure_bandwidth : Rate.t;
  access_delay : Duration.t;
      (** [devDelay]: e.g. tape load and seek time; applied once per recovery
          hop sourced at this device. *)
  cost : Cost_model.t;
  spare : Spare.t;
      (** local spare (e.g. a dedicated hot standby at the same site);
          covers failures of the device alone *)
  remote_spare : Spare.t;
      (** offsite spare (e.g. a shared recovery facility); covers failures
          whose scope also destroys the local spare (building/site/region) *)
}

val make :
  name:string ->
  location:Location.t ->
  max_capacity_slots:int ->
  slot_capacity:Size.t ->
  ?max_bandwidth_slots:int ->
  ?slot_bandwidth:Rate.t ->
  ?enclosure_bandwidth:Rate.t ->
  ?access_delay:Duration.t ->
  ?cost:Cost_model.t ->
  ?spare:Spare.t ->
  ?remote_spare:Spare.t ->
  unit ->
  t
(** Bandwidth arguments default to zero (a capacity-only device). Raises
    [Invalid_argument] on non-positive capacity slots or zero slot
    capacity. *)

val max_capacity : t -> Size.t
(** [devCap = maxCapSlots * slotCap]. *)

val max_bandwidth : t -> Rate.t
(** [devBW = min(enclBW, maxBWSlots * slotBW)]; zero for capacity-only
    devices. *)

val is_capacity_only : t -> bool

val spare_for : t -> scope:Location.scope -> Spare.t
(** The spare that replaces this device under the given failure scope: the
    local {!type-t.spare} for device-level failures, the
    {!type-t.remote_spare} for building/site/region scopes (which are
    assumed to take the local spare with them). *)

(** Normal-mode utilization of one device under a set of labeled demands
    (§3.3.1). *)
type utilization = private {
  capacity_used : Size.t;
  bandwidth_used : Rate.t;
  capacity_fraction : float;  (** [capUtil]; may exceed 1 = overcommitted *)
  bandwidth_fraction : float;  (** [bwUtil] *)
  capacity_slots_needed : int;
  bandwidth_slots_needed : int;
}

val utilization : t -> Demand.labeled list -> utilization

val overcommitted : utilization -> bool
(** True when either fraction exceeds 1 (the global model reports this as a
    design error). *)

val available_bandwidth : t -> Demand.labeled list -> Rate.t
(** Bandwidth left over after the normal-mode propagation demands; this is
    the rate available to a recovery transfer (§3.3.4). *)

val provisioned_capacity : t -> Demand.labeled list -> Size.t
(** Capacity rounded up to whole slots, used for costing. *)

val provisioned_bandwidth : t -> Demand.labeled list -> Rate.t
(** Bandwidth rounded up to whole slots, used for costing. *)

val pp : t Fmt.t
val pp_utilization : utilization Fmt.t
