open Storage_units

type transport =
  | Network of { link_bandwidth : Rate.t; links : int }
  | Shipment

type t = {
  name : string;
  transport : transport;
  delay : Duration.t;
  cost : Cost_model.t;
  spare : Spare.t;
}

let make ~name ~transport ?(delay = Duration.zero) ?(cost = Cost_model.free)
    ?(spare = Spare.No_spare) () =
  (match transport with
  | Network { link_bandwidth; links } ->
    if links <= 0 then invalid_arg "Interconnect.make: non-positive links";
    if Rate.is_zero link_bandwidth then
      invalid_arg "Interconnect.make: zero link bandwidth"
  | Shipment -> ());
  { name; transport; delay; cost; spare }

let bandwidth t =
  match t.transport with
  | Network { link_bandwidth; links } ->
    Some (Rate.scale (float_of_int links) link_bandwidth)
  | Shipment -> None

let annual_cost t ~shipments_per_year =
  match t.transport with
  | Network _ ->
    let bw = Option.get (bandwidth t) in
    Cost_model.outlay t.cost ~capacity:Size.zero ~bandwidth:bw
      ~shipments_per_year:0.
  | Shipment ->
    Cost_model.outlay t.cost ~capacity:Size.zero ~bandwidth:Rate.zero
      ~shipments_per_year

let pp ppf t =
  match t.transport with
  | Network { link_bandwidth; links } ->
    Fmt.pf ppf "link %s: %d x %a, delay %a" t.name links Rate.pp link_bandwidth
      Duration.pp t.delay
  | Shipment -> Fmt.pf ppf "shipment %s: delay %a" t.name Duration.pp t.delay
