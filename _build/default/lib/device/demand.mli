open Storage_units

(** Bandwidth and capacity demands placed on a device by one data protection
    technique (§3.2.3).

    Read and write bandwidth are tracked separately because some techniques
    (split-mirror resilvering, snapshot copy-on-write) consume both sides of
    the same enclosure, while utilization is assessed against the combined
    enclosure bandwidth. *)

type t = private {
  read_bw : Rate.t;
  write_bw : Rate.t;
  capacity : Size.t;
}

val zero : t
val make : ?read_bw:Rate.t -> ?write_bw:Rate.t -> ?capacity:Size.t -> unit -> t
val add : t -> t -> t
val sum : t list -> t

val total_bw : t -> Rate.t
(** [read_bw + write_bw]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t

(** A demand attributed to a named technique, for per-technique utilization
    and cost breakdowns (Table 5, Figure 5). *)
type labeled = { technique : string; demand : t }

val by_technique : labeled list -> (string * t) list
(** Groups labeled demands, summing duplicates, preserving first-appearance
    order. *)
