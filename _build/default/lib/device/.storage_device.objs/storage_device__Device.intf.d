lib/device/device.mli: Cost_model Demand Duration Fmt Location Rate Size Spare Storage_units
