lib/device/device.ml: Cost_model Demand Duration Fmt List Location Rate Size Spare Storage_units
