lib/device/spare.ml: Duration Fmt Money Storage_units
