lib/device/location.mli: Fmt
