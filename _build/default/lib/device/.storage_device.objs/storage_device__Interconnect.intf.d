lib/device/interconnect.mli: Cost_model Duration Fmt Money Rate Spare Storage_units
