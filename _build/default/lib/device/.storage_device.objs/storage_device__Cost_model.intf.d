lib/device/cost_model.mli: Fmt Money Rate Size Storage_units
