lib/device/demand.ml: Fmt Hashtbl List Rate Size Storage_units
