lib/device/cost_model.ml: Fmt Money Rate Size Storage_units
