lib/device/spare.mli: Duration Fmt Money Storage_units
