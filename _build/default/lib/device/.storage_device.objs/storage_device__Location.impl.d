lib/device/location.ml: Fmt List Printf String
