lib/device/demand.mli: Fmt Rate Size Storage_units
