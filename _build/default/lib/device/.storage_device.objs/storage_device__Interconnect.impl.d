lib/device/interconnect.ml: Cost_model Duration Fmt Option Rate Size Spare Storage_units
