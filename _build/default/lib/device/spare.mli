open Storage_units

(** Spare resources (§3.2.2).

    A failed device is replaced by its spare. Dedicated hot spares provision
    quickly and cost full price; shared spares (e.g. a hosting facility that
    must be drained and scrubbed) provision slowly and cost a fraction of the
    dedicated price. *)

type t =
  | No_spare
  | Dedicated of { provisioning_time : Duration.t }
      (** [spareDisc = 1]: costs the same as the original resource. *)
  | Shared of { provisioning_time : Duration.t; discount : float }
      (** [discount] is the fraction of the original resource cost,
          in [0, 1]. *)

val provisioning_time : t -> Duration.t option
(** [None] when there is no spare to provision. *)

val cost : t -> original:Money.t -> Money.t
(** Annualized outlay for the spare given the original resource outlay. *)

val pp : t Fmt.t
