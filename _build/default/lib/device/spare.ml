open Storage_units

type t =
  | No_spare
  | Dedicated of { provisioning_time : Duration.t }
  | Shared of { provisioning_time : Duration.t; discount : float }

let provisioning_time = function
  | No_spare -> None
  | Dedicated { provisioning_time } | Shared { provisioning_time; _ } ->
    Some provisioning_time

let cost t ~original =
  match t with
  | No_spare -> Money.zero
  | Dedicated _ -> original
  | Shared { discount; _ } ->
    if discount < 0. || discount > 1. then
      invalid_arg "Spare.cost: discount outside [0, 1]";
    Money.scale discount original

let pp ppf = function
  | No_spare -> Fmt.string ppf "none"
  | Dedicated { provisioning_time } ->
    Fmt.pf ppf "dedicated (%a)" Duration.pp provisioning_time
  | Shared { provisioning_time; discount } ->
    Fmt.pf ppf "shared (%a, %.0f%% cost)" Duration.pp provisioning_time
      (100. *. discount)
