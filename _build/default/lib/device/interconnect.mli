open Storage_units

(** Interconnect devices: network links and physical transport (§3.2.2).

    Data moves between hierarchy levels either over network links (SAN within
    a site, leased WAN lines between sites) or by physically shipping media
    (the "air shipment" row of Table 4). A shipment has unbounded effective
    bandwidth and a fixed delay; a network path has an aggregate bandwidth of
    [links * per-link bandwidth] and a (usually negligible) propagation
    delay. *)

type transport =
  | Network of { link_bandwidth : Rate.t; links : int }
  | Shipment  (** physical media transport; bandwidth-unconstrained *)

type t = private {
  name : string;
  transport : transport;
  delay : Duration.t;  (** propagation / transit delay ([devDelay]) *)
  cost : Cost_model.t;
  spare : Spare.t;
}

val make :
  name:string ->
  transport:transport ->
  ?delay:Duration.t ->
  ?cost:Cost_model.t ->
  ?spare:Spare.t ->
  unit ->
  t
(** Raises [Invalid_argument] for a network with non-positive link count or
    zero link bandwidth. *)

val bandwidth : t -> Rate.t option
(** Aggregate bandwidth; [None] for shipments (unconstrained). *)

val annual_cost : t -> shipments_per_year:float -> Money.t
(** Outlay: bandwidth-priced for networks, per-shipment-priced for
    shipments. *)

val pp : t Fmt.t
