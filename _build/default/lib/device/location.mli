(** Physical placement of devices, and failure scopes.

    The paper's failure scenarios are expressed as a {e failure scope}: the
    set of device locations rendered unavailable (§3.1.3). A location places
    a device in a building, on a site, in a geographic region; scopes are
    nested accordingly. The [Data_object] scope models user or software error:
    no hardware fails, but the object's current contents (and everything
    colocated with it on the primary, such as snapshots sharing physical
    storage) are corrupt. *)

type t = private { building : string; site : string; region : string }

val make : building:string -> site:string -> region:string -> t
val building : t -> string
val site : t -> string
val region : t -> string
val equal : t -> t -> bool
val pp : t Fmt.t

(** Failure scopes, ordered roughly by blast radius. [Multiple] composes
    simultaneous failures (the paper's future-work "increased number of
    failure scopes"): a corrupting user error during a device outage, two
    devices failing together, and so on. *)
type scope =
  | Data_object  (** corruption of the object; all hardware survives *)
  | Device of string  (** failure of the named device (e.g. the array) *)
  | Building of string
  | Site of string
  | Region of string
  | Multiple of scope list  (** all of the listed failures at once *)

val scope_name : scope -> string

val destroys : scope -> device_name:string -> t -> bool
(** [destroys scope ~device_name loc] holds when the failure scope takes out
    a device named [device_name] at location [loc]. [Data_object] destroys no
    hardware; [Multiple] destroys what any element destroys. *)

val corrupts_object : scope -> bool
(** Whether the scope includes a corrupting [Data_object] failure (so the
    primary copy's current contents cannot serve as a recovery source). *)

val needs_remote_spare : scope -> bool
(** Whether the scope's blast radius covers colocated spares
    (building/site/region failures, directly or within a [Multiple]). *)

val pp_scope : scope Fmt.t
