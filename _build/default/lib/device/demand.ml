open Storage_units

type t = { read_bw : Rate.t; write_bw : Rate.t; capacity : Size.t }

let zero = { read_bw = Rate.zero; write_bw = Rate.zero; capacity = Size.zero }

let make ?(read_bw = Rate.zero) ?(write_bw = Rate.zero) ?(capacity = Size.zero)
    () =
  { read_bw; write_bw; capacity }

let add a b =
  {
    read_bw = Rate.add a.read_bw b.read_bw;
    write_bw = Rate.add a.write_bw b.write_bw;
    capacity = Size.add a.capacity b.capacity;
  }

let sum = List.fold_left add zero
let total_bw t = Rate.add t.read_bw t.write_bw

let is_zero t =
  Rate.is_zero t.read_bw && Rate.is_zero t.write_bw && Size.is_zero t.capacity

let equal a b =
  Rate.equal a.read_bw b.read_bw
  && Rate.equal a.write_bw b.write_bw
  && Size.equal a.capacity b.capacity

let pp ppf t =
  Fmt.pf ppf "{r=%a w=%a cap=%a}" Rate.pp t.read_bw Rate.pp t.write_bw Size.pp
    t.capacity

type labeled = { technique : string; demand : t }

let by_technique labeled =
  let order = ref [] in
  let table = Hashtbl.create 8 in
  List.iter
    (fun { technique; demand } ->
      match Hashtbl.find_opt table technique with
      | None ->
        Hashtbl.add table technique demand;
        order := technique :: !order
      | Some existing -> Hashtbl.replace table technique (add existing demand))
    labeled;
  List.rev_map (fun name -> (name, Hashtbl.find table name)) !order
