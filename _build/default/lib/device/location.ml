type t = { building : string; site : string; region : string }

let make ~building ~site ~region = { building; site; region }
let building t = t.building
let site t = t.site
let region t = t.region

let equal a b =
  String.equal a.building b.building
  && String.equal a.site b.site
  && String.equal a.region b.region

let pp ppf t = Fmt.pf ppf "%s/%s/%s" t.region t.site t.building

type scope =
  | Data_object
  | Device of string
  | Building of string
  | Site of string
  | Region of string
  | Multiple of scope list

let rec scope_name = function
  | Data_object -> "data object"
  | Device d -> Printf.sprintf "device %s" d
  | Building b -> Printf.sprintf "building %s" b
  | Site s -> Printf.sprintf "site %s" s
  | Region r -> Printf.sprintf "region %s" r
  | Multiple scopes -> String.concat " + " (List.map scope_name scopes)

let rec destroys scope ~device_name loc =
  match scope with
  | Data_object -> false
  | Device d -> String.equal d device_name
  | Building b -> String.equal b loc.building
  | Site s -> String.equal s loc.site
  | Region r -> String.equal r loc.region
  | Multiple scopes ->
    List.exists (fun s -> destroys s ~device_name loc) scopes

let rec corrupts_object = function
  | Data_object -> true
  | Device _ | Building _ | Site _ | Region _ -> false
  | Multiple scopes -> List.exists corrupts_object scopes

let rec needs_remote_spare = function
  | Data_object | Device _ -> false
  | Building _ | Site _ | Region _ -> true
  | Multiple scopes -> List.exists needs_remote_spare scopes

let pp_scope ppf scope = Fmt.string ppf (scope_name scope)
