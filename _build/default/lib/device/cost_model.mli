open Storage_units

(** Annualized device outlay models (Table 4).

    An outlay has a fixed component (enclosure, facilities, service), a
    per-capacity slope (disks, tape media, floorspace), a per-bandwidth slope
    (disks, tape drives, link rental) and a per-shipment charge (couriers).
    Slopes follow the paper's units: dollars per GiB of provisioned capacity
    and dollars per MiB/s of provisioned bandwidth, annualized over a
    three-year depreciation. *)

type t = private {
  fixed : Money.t;
  per_gib : float;  (** $ per GiB of capacity, the paper's [c] coefficient *)
  per_mib_per_sec : float;  (** $ per MiB/s of bandwidth, the paper's [b] *)
  per_shipment : float;  (** $ per shipment, the paper's [s] *)
}

val make :
  ?fixed:Money.t ->
  ?per_gib:float ->
  ?per_mib_per_sec:float ->
  ?per_shipment:float ->
  unit ->
  t
(** Raises [Invalid_argument] on negative coefficients. *)

val free : t

val outlay :
  t -> capacity:Size.t -> bandwidth:Rate.t -> shipments_per_year:float -> Money.t
(** Annualized outlay for the given provisioned capacity, bandwidth and
    yearly shipment count. *)

val capacity_cost : t -> Size.t -> Money.t
(** Just the per-capacity component (used to price a secondary technique's
    incremental demand, §3.3.5). *)

val bandwidth_cost : t -> Rate.t -> Money.t
val pp : t Fmt.t
