open Storage_units

type t = {
  name : string;
  location : Location.t;
  max_capacity_slots : int;
  slot_capacity : Size.t;
  max_bandwidth_slots : int;
  slot_bandwidth : Rate.t;
  enclosure_bandwidth : Rate.t;
  access_delay : Duration.t;
  cost : Cost_model.t;
  spare : Spare.t;
  remote_spare : Spare.t;
}

let make ~name ~location ~max_capacity_slots ~slot_capacity
    ?(max_bandwidth_slots = 0) ?(slot_bandwidth = Rate.zero)
    ?(enclosure_bandwidth = Rate.zero) ?(access_delay = Duration.zero)
    ?(cost = Cost_model.free) ?(spare = Spare.No_spare)
    ?(remote_spare = Spare.No_spare) () =
  if max_capacity_slots <= 0 then
    invalid_arg "Device.make: non-positive capacity slots";
  if Size.is_zero slot_capacity then
    invalid_arg "Device.make: zero slot capacity";
  if max_bandwidth_slots < 0 then
    invalid_arg "Device.make: negative bandwidth slots";
  {
    name;
    location;
    max_capacity_slots;
    slot_capacity;
    max_bandwidth_slots;
    slot_bandwidth;
    enclosure_bandwidth;
    access_delay;
    cost;
    spare;
    remote_spare;
  }

let max_capacity t =
  Size.scale (float_of_int t.max_capacity_slots) t.slot_capacity

(* The paper prints max(enclBW, slots * slotBW); its case study requires min.
   See DESIGN.md, "Reverse-engineered details". *)
let max_bandwidth t =
  let slots_bw = Rate.scale (float_of_int t.max_bandwidth_slots) t.slot_bandwidth in
  if Rate.is_zero t.enclosure_bandwidth then slots_bw
  else if Rate.is_zero slots_bw then t.enclosure_bandwidth
  else Rate.min t.enclosure_bandwidth slots_bw

let is_capacity_only t = Rate.is_zero (max_bandwidth t)

let spare_for t ~scope =
  if Location.needs_remote_spare scope then t.remote_spare else t.spare

type utilization = {
  capacity_used : Size.t;
  bandwidth_used : Rate.t;
  capacity_fraction : float;
  bandwidth_fraction : float;
  capacity_slots_needed : int;
  bandwidth_slots_needed : int;
}

let slots_for amount per_slot =
  if per_slot <= 0. then 0 else int_of_float (ceil (amount /. per_slot))

let utilization t labeled =
  let total = Demand.sum (List.map (fun l -> l.Demand.demand) labeled) in
  let cap = total.Demand.capacity and bw = Demand.total_bw total in
  let dev_cap = max_capacity t and dev_bw = max_bandwidth t in
  {
    capacity_used = cap;
    bandwidth_used = bw;
    capacity_fraction = Size.ratio cap dev_cap;
    bandwidth_fraction =
      (if Rate.is_zero dev_bw then if Rate.is_zero bw then 0. else infinity
       else Rate.ratio bw dev_bw);
    capacity_slots_needed =
      slots_for (Size.to_bytes cap) (Size.to_bytes t.slot_capacity);
    bandwidth_slots_needed =
      slots_for (Rate.to_bytes_per_sec bw) (Rate.to_bytes_per_sec t.slot_bandwidth);
  }

let overcommitted u = u.capacity_fraction > 1. || u.bandwidth_fraction > 1.

let available_bandwidth t labeled =
  let u = utilization t labeled in
  Rate.sub (max_bandwidth t) u.bandwidth_used

let provisioned_capacity t labeled =
  let u = utilization t labeled in
  Size.scale (float_of_int u.capacity_slots_needed) t.slot_capacity

let provisioned_bandwidth t labeled =
  let u = utilization t labeled in
  Rate.scale (float_of_int u.bandwidth_slots_needed) t.slot_bandwidth

let pp ppf t =
  Fmt.pf ppf "@[<v>device %s @ %a:@,  cap = %d x %a = %a@,  bw  = %a@]" t.name
    Location.pp t.location t.max_capacity_slots Size.pp t.slot_capacity Size.pp
    (max_capacity t) Rate.pp (max_bandwidth t)

let pp_utilization ppf u =
  Fmt.pf ppf "cap %.1f%% (%a), bw %.1f%% (%a)" (100. *. u.capacity_fraction)
    Size.pp u.capacity_used
    (100. *. u.bandwidth_fraction)
    Rate.pp u.bandwidth_used
