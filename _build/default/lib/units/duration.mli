(** Time durations.

    A {!t} is a span of time in seconds (non-negative float). Calendar
    conventions follow the paper: a week is 7 days, a year is 365 days. *)

type t

val zero : t

val seconds : float -> t
(** Raises [Invalid_argument] on negative or non-finite input. *)

val minutes : float -> t
val hours : float -> t
val days : float -> t
val weeks : float -> t
val years : float -> t

val to_seconds : t -> float
val to_minutes : t -> float
val to_hours : t -> float
val to_days : t -> float
val to_weeks : t -> float
val to_years : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b] clamped at {!zero}. *)

val scale : float -> t -> t
val ratio : t -> t -> float
(** Dimensionless quotient; raises [Division_by_zero] on a zero divisor. *)

val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val pp : t Fmt.t
(** Human-readable rendering with an automatically chosen unit ("2.4 hr",
    "26.4 hr", "3.0 s", ...). *)

val to_string : t -> string
