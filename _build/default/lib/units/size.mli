(** Data sizes.

    A {!t} is an amount of data in bytes, carried as a non-negative float so
    that it composes with rates and durations without overflow concerns.
    Binary prefixes are used throughout: the paper's "GB" is [2^30] bytes and
    its "TB" is [1024 GB] (verified against the case study arithmetic, see
    DESIGN.md). *)

type t

val zero : t

val bytes : float -> t
(** [bytes b] is a size of [b] bytes. Raises [Invalid_argument] if [b] is
    negative or not finite. *)

val kib : float -> t
val mib : float -> t
val gib : float -> t
val tib : float -> t

val to_bytes : t -> float
val to_kib : t -> float
val to_mib : t -> float
val to_gib : t -> float
val to_tib : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b], clamped at {!zero} if [b > a]. *)

val scale : float -> t -> t
(** [scale k s] is [k] times [s]. [k] must be non-negative and finite. *)

val ratio : t -> t -> float
(** [ratio num denom] is the dimensionless quotient. Raises
    [Division_by_zero] when [denom] is {!zero}. *)

val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val pp : t Fmt.t
(** Human-readable rendering with an automatically chosen binary prefix,
    e.g. ["1.33 TiB"]. *)

val to_string : t -> string
