type t = float (* bytes *)

let zero = 0.

let bytes b =
  if not (Float.is_finite b) || b < 0. then
    invalid_arg "Size.bytes: negative or non-finite";
  b

let kib x = bytes (x *. 1024.)
let mib x = bytes (x *. 1024. *. 1024.)
let gib x = bytes (x *. 1024. *. 1024. *. 1024.)
let tib x = bytes (x *. 1024. *. 1024. *. 1024. *. 1024.)
let to_bytes t = t
let to_kib t = t /. 1024.
let to_mib t = t /. (1024. *. 1024.)
let to_gib t = t /. (1024. *. 1024. *. 1024.)
let to_tib t = t /. (1024. *. 1024. *. 1024. *. 1024.)
let add a b = a +. b
let sub a b = Float.max 0. (a -. b)

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Size.scale: negative or non-finite factor";
  k *. t

let ratio num denom = if denom = 0. then raise Division_by_zero else num /. denom
let min = Float.min
let max = Float.max
let sum = List.fold_left add zero
let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal
let ( + ) = add
let ( - ) = sub

let pp ppf t =
  let abs = t in
  if abs >= 1024. ** 4. then Fmt.pf ppf "%.2f TiB" (to_tib t)
  else if abs >= 1024. ** 3. then Fmt.pf ppf "%.2f GiB" (to_gib t)
  else if abs >= 1024. ** 2. then Fmt.pf ppf "%.2f MiB" (to_mib t)
  else if abs >= 1024. then Fmt.pf ppf "%.2f KiB" (to_kib t)
  else Fmt.pf ppf "%.0f B" t

let to_string t = Fmt.str "%a" pp t
