type t = { newest_age : Duration.t; oldest_age : Duration.t }

let make ~newest_age ~oldest_age =
  if Duration.compare newest_age oldest_age > 0 then
    invalid_arg "Age_range.make: newest_age must not exceed oldest_age";
  { newest_age; oldest_age }

let empty = { newest_age = Duration.zero; oldest_age = Duration.zero }
let newest_age t = t.newest_age
let oldest_age t = t.oldest_age
let span t = Duration.sub t.oldest_age t.newest_age

let contains t age =
  Duration.compare t.newest_age age <= 0 && Duration.compare age t.oldest_age <= 0

let is_empty t = Duration.equal t.newest_age t.oldest_age
let equal a b = Duration.equal a.newest_age b.newest_age && Duration.equal a.oldest_age b.oldest_age

let pp ppf t =
  Fmt.pf ppf "[now - %a ... now - %a]" Duration.pp t.oldest_age Duration.pp
    t.newest_age
