type t = float (* seconds *)

let zero = 0.

let seconds s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Duration.seconds: negative or non-finite";
  s

let minutes x = seconds (x *. 60.)
let hours x = seconds (x *. 3600.)
let days x = seconds (x *. 86400.)
let weeks x = seconds (x *. 7. *. 86400.)
let years x = seconds (x *. 365. *. 86400.)
let to_seconds t = t
let to_minutes t = t /. 60.
let to_hours t = t /. 3600.
let to_days t = t /. 86400.
let to_weeks t = t /. (7. *. 86400.)
let to_years t = t /. (365. *. 86400.)
let add a b = a +. b
let sub a b = Float.max 0. (a -. b)

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Duration.scale: negative or non-finite factor";
  k *. t

let ratio num denom = if denom = 0. then raise Division_by_zero else num /. denom
let min = Float.min
let max = Float.max
let sum = List.fold_left add zero
let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal
let ( + ) = add
let ( - ) = sub

let pp ppf t =
  if t = 0. then Fmt.string ppf "0 s"
  else if t >= 2. *. 365. *. 86400. then Fmt.pf ppf "%.1f yr" (to_years t)
  else if t >= 2. *. 7. *. 86400. then Fmt.pf ppf "%.1f wk" (to_weeks t)
  else if t >= 2. *. 86400. then Fmt.pf ppf "%.1f d" (to_days t)
  else if t >= 3600. then Fmt.pf ppf "%.1f hr" (to_hours t)
  else if t >= 60. then Fmt.pf ppf "%.1f min" (to_minutes t)
  else if t >= 1. then Fmt.pf ppf "%.1f s" t
  else Fmt.pf ppf "%.4f s" t

let to_string t = Fmt.str "%a" pp t
