type t = float (* bytes per second *)

let zero = 0.

let bytes_per_sec r =
  if not (Float.is_finite r) || r < 0. then
    invalid_arg "Rate.bytes_per_sec: negative or non-finite";
  r

let kib_per_sec x = bytes_per_sec (x *. 1024.)
let mib_per_sec x = bytes_per_sec (x *. 1024. *. 1024.)
let gib_per_sec x = bytes_per_sec (x *. 1024. *. 1024. *. 1024.)
let megabits_per_sec x = bytes_per_sec (x *. 1e6 /. 8.)
let to_bytes_per_sec t = t
let to_kib_per_sec t = t /. 1024.
let to_mib_per_sec t = t /. (1024. *. 1024.)

let of_size_per s d =
  let secs = Duration.to_seconds d in
  if secs = 0. then raise Division_by_zero
  else bytes_per_sec (Size.to_bytes s /. secs)

let over r d = Size.bytes (r *. Duration.to_seconds d)

let time_to_transfer s r =
  let b = Size.to_bytes s in
  if b = 0. then Duration.zero
  else if r = 0. then raise Division_by_zero
  else Duration.seconds (b /. r)

let add a b = a +. b
let sub a b = Float.max 0. (a -. b)

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Rate.scale: negative or non-finite factor";
  k *. t

let ratio num denom = if denom = 0. then raise Division_by_zero else num /. denom
let min = Float.min
let max = Float.max
let sum = List.fold_left add zero
let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal
let ( + ) = add
let ( - ) = sub

let pp ppf t =
  if t >= 1024. ** 3. then Fmt.pf ppf "%.2f GiB/s" (t /. (1024. ** 3.))
  else if t >= 1024. ** 2. then Fmt.pf ppf "%.2f MiB/s" (to_mib_per_sec t)
  else if t >= 1024. then Fmt.pf ppf "%.2f KiB/s" (to_kib_per_sec t)
  else Fmt.pf ppf "%.1f B/s" t

let to_string t = Fmt.str "%a" pp t
