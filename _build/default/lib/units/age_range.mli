(** Ranges of retrieval-point ages.

    Section 3.3.2 of the paper characterizes each hierarchy level by the range
    of time *guaranteed* to be represented by its retrieval points. We express
    the range as ages relative to "now": a level guarantees RPs whose capture
    times lie between [newest_age] (the level's worst-case time lag) and
    [oldest_age] (the lag plus the retention span) before now. *)

type t = private { newest_age : Duration.t; oldest_age : Duration.t }

val make : newest_age:Duration.t -> oldest_age:Duration.t -> t
(** Raises [Invalid_argument] if [newest_age > oldest_age]. *)

val empty : t
(** The degenerate range that guarantees nothing ([newest = oldest = 0]). *)

val newest_age : t -> Duration.t
val oldest_age : t -> Duration.t

val span : t -> Duration.t
(** [oldest_age - newest_age]: the width of the guaranteed window. *)

val contains : t -> Duration.t -> bool
(** [contains t age] holds when a recovery target [age] in the past is
    guaranteed to have an RP at this level. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
