(** Data transfer rates (bytes per second).

    Bandwidths, workload access rates and update rates are all {!t} values.
    The paper's "KB/s" and "MB/s" are binary ([2^10], [2^20] bytes/s). *)

type t

val zero : t

val bytes_per_sec : float -> t
(** Raises [Invalid_argument] on negative or non-finite input. *)

val kib_per_sec : float -> t
val mib_per_sec : float -> t
val gib_per_sec : float -> t

val megabits_per_sec : float -> t
(** Decimal megabits per second, for telecom link speeds (OC-3 = 155 Mb/s). *)

val to_bytes_per_sec : t -> float
val to_kib_per_sec : t -> float
val to_mib_per_sec : t -> float

val of_size_per : Size.t -> Duration.t -> t
(** [of_size_per s d] is the rate that transfers [s] in [d]. Raises
    [Division_by_zero] when [d] is zero. *)

val over : t -> Duration.t -> Size.t
(** [over r d] is the amount transferred at rate [r] during [d]. *)

val time_to_transfer : Size.t -> t -> Duration.t
(** [time_to_transfer s r] is how long moving [s] at rate [r] takes. Raises
    [Division_by_zero] when [r] is {!zero} and [s] is not. Transferring
    {!Size.zero} takes {!Duration.zero} at any rate. *)

val add : t -> t -> t
val sub : t -> t -> t
(** Clamped at {!zero}. *)

val scale : float -> t -> t
val ratio : t -> t -> float
val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t

val pp : t Fmt.t
val to_string : t -> string
