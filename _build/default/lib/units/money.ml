type t = float (* US dollars *)

let zero = 0.

let usd x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg "Money.usd: negative or non-finite";
  x

let of_thousands x = usd (x *. 1e3)
let of_millions x = usd (x *. 1e6)
let to_usd t = t
let to_millions t = t /. 1e6
let add a b = a +. b
let sub a b = Float.max 0. (a -. b)

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Money.scale: negative or non-finite factor";
  k *. t

let ratio num denom = if denom = 0. then raise Division_by_zero else num /. denom
let min = Float.min
let max = Float.max
let sum = List.fold_left add zero
let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal
let ( + ) = add

let pp ppf t =
  (* Follow the paper's convention of quoting costs in millions once they
     reach $0.1M. *)
  if t >= 1e5 then Fmt.pf ppf "$%.2fM" (t /. 1e6)
  else if t >= 1e4 then Fmt.pf ppf "$%.1fk" (t /. 1e3)
  else Fmt.pf ppf "$%.0f" t

let to_string t = Fmt.str "%a" pp t
