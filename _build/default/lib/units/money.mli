(** Money amounts (US dollars).

    Unlike sizes and durations, money may legitimately be compared against
    budgets but never goes negative in this framework: all outlays and
    penalties are non-negative. *)

type t

val zero : t

val usd : float -> t
(** Raises [Invalid_argument] on negative or non-finite input. *)

val of_thousands : float -> t
val of_millions : float -> t
val to_usd : t -> float
val to_millions : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** Clamped at {!zero}. *)

val scale : float -> t -> t
val ratio : t -> t -> float
val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val ( + ) : t -> t -> t

val pp : t Fmt.t
(** Renders like the paper's figures: ["$0.97M"], ["$123,297"]. *)

val to_string : t -> string
