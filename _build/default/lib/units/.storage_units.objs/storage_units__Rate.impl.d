lib/units/rate.ml: Duration Float Fmt List Size
