lib/units/size.ml: Float Fmt List
