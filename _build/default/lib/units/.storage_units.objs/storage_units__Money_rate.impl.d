lib/units/money_rate.ml: Duration Float Fmt Money
