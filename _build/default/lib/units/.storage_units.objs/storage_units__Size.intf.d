lib/units/size.mli: Fmt
