lib/units/rate.mli: Duration Fmt Size
