lib/units/duration.mli: Fmt
