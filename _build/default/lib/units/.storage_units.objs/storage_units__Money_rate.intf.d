lib/units/money_rate.mli: Duration Fmt Money
