lib/units/money.mli: Fmt
