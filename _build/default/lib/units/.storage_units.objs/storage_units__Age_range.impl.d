lib/units/age_range.ml: Duration Fmt
