lib/units/duration.ml: Float Fmt List
