lib/units/money.ml: Float Fmt List
