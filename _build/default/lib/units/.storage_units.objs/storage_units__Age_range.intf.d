lib/units/age_range.mli: Duration Fmt
