examples/trace_characterization.ml: Duration List Printf Rate Storage_presets Storage_report Storage_units Storage_workload Table Trace Trace_stats Workload
