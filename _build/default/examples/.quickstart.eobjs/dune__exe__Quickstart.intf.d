examples/quickstart.mli:
