examples/sim_vs_model.mli:
