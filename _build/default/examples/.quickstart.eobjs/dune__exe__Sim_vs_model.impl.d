examples/sim_vs_model.ml: Baseline Data_loss Duration Evaluate Float Fmt List Printf Scenario Storage_device Storage_model Storage_presets Storage_report Storage_sim Storage_units String Table
