examples/risk_and_degraded.mli:
