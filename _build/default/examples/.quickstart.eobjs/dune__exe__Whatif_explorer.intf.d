examples/whatif_explorer.mli:
