(* Trace characterization: the Table 2 pipeline on synthetic traces.

   Generates block-level update traces with different overwrite skew and
   burstiness, measures the five workload model parameters from each, and
   shows how the batch update curve responds — the same analysis HP ran on
   the measured cello trace.

     dune exec examples/trace_characterization.exe *)

open Storage_units
open Storage_workload
open Storage_report

let span = Duration.days 3.

let windows =
  [ Duration.minutes 1.; Duration.hours 1.; Duration.hours 12.; Duration.days 1. ]

let profiles =
  [
    ("uniform, smooth", { Trace.default_profile with zipf_exponent = 0.; burst_multiplier = 1.; burst_fraction = 0.999 });
    ("uniform, bursty", { Trace.default_profile with zipf_exponent = 0. });
    ("skewed (zipf 0.9)", Trace.default_profile);
    ("hot-spot (zipf 1.2)", { Trace.default_profile with zipf_exponent = 1.2 });
  ]

let () =
  let rows =
    List.map
      (fun (label, profile) ->
        let trace = Trace.generate ~seed:7L profile span in
        let w = Trace_stats.to_workload ~name:label ~windows trace in
        let rate win =
          Printf.sprintf "%.0f" (Rate.to_kib_per_sec (Workload.batch_update_rate w win))
        in
        [
          label;
          string_of_int (Trace.event_count trace);
          Printf.sprintf "%.0f" (Rate.to_kib_per_sec w.Workload.avg_update_rate);
          Printf.sprintf "%.1f" w.Workload.burst_multiplier;
          rate (Duration.minutes 1.);
          rate (Duration.hours 1.);
          rate (Duration.hours 12.);
          rate (Duration.days 1.);
        ])
      profiles
  in
  Table.print ~title:"Synthetic trace characterization (KiB/s)"
    ~headers:
      [ "Profile"; "events"; "avgUpdR"; "burstM"; "b(1min)"; "b(1h)";
        "b(12h)"; "b(1d)" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right ]
    rows;
  print_endline
    "Overwrite skew makes the unique-update rate fall with the batching\n\
     window (the effect the paper's batchUpdR(win) parameter captures);\n\
     burstiness raises the peak-to-mean ratio without changing the mean.";
  print_newline ();
  (* The published cello numbers, for comparison. *)
  print_endline (Storage_presets.Paper_tables.table2 ())
