(* Risk-weighted planning and degraded-mode analysis: the extensions the
   paper lists as future work (§5), built on the same compositional models.

   Part 1 weights the three failure scenarios by yearly frequency and ranks
   the what-if designs by expected annual cost, which reverses the paper's
   single-scenario conclusion: once frequent small user errors carry
   weight, the mirror-only design (which cannot roll back at all) falls to
   the bottom.

   Part 2 asks "how exposed are we while a protection technique is down?"
   and quantifies the extra data loss per week of outage for each level.

   Part 3 consolidates a second workload onto the baseline hardware and
   shows the shared-infrastructure effects: combined utilization, fixed
   costs paid once, and recovery slowed by the neighbour's traffic.

     dune exec examples/risk_and_degraded.exe *)

open Storage_units
open Storage_workload
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_presets
open Storage_report

(* Part 1: frequency-weighted ranking. *)

let weighted =
  [
    (* User errors happen monthly; array failures once in five years; a
       site disaster once in a century. *)
    { Risk.scenario = Baseline.scenario_object; frequency_per_year = 12. };
    { Risk.scenario = Baseline.scenario_array; frequency_per_year = 0.2 };
    { Risk.scenario = Baseline.scenario_site; frequency_per_year = 0.01 };
  ]

let part1 () =
  let ranked = Risk.compare_designs (List.map snd Whatif.all) weighted in
  let rows =
    List.map
      (fun ((d : Design.t), (r : Risk.t)) ->
        [
          d.Design.name;
          Metric.money_m r.Risk.annual_outlays;
          Metric.money_m r.Risk.expected_annual_penalty;
          Metric.money_m r.Risk.expected_annual_cost;
        ])
      ranked
  in
  Table.print
    ~title:
      "Expected annual cost (object 12/yr, array 0.2/yr, site 0.01/yr)"
    ~headers:[ "Design"; "Outlays"; "E[penalties]/yr"; "E[total]/yr" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    rows;
  print_endline
    "Frequency weighting reverses the paper's single-scenario ranking: the\n\
     mirror-only designs pay the total-loss penalty on every user error.\n"

(* Part 2: degraded-mode exposure. *)

let part2 () =
  let levels = [ (1, "split mirror"); (2, "tape backup"); (3, "vaulting") ] in
  let rows =
    List.concat_map
      (fun (level, name) ->
        List.map
          (fun weeks ->
            let r =
              Degraded.evaluate Baseline.design ~disabled_level:level
                ~outage:(Duration.weeks weeks) Baseline.scenario_array
            in
            [
              name;
              Printf.sprintf "%.0f wk" weeks;
              Fmt.str "%a" Data_loss.pp_loss r.Degraded.data_loss.Data_loss.loss;
              Fmt.str "%a" Duration.pp r.Degraded.added_loss;
            ])
          [ 1.; 2.; 4. ])
      levels
  in
  Table.print
    ~title:"Array-failure data loss while a technique is out of service"
    ~headers:[ "Technique down"; "Outage"; "Worst DL"; "Added by outage" ]
    rows

(* Part 3: consolidation onto shared hardware. *)

let mail_design =
  let workload =
    Workload.make ~name:"mail" ~data_capacity:(Size.gib 200.)
      ~avg_access_rate:(Rate.kib_per_sec 600.)
      ~avg_update_rate:(Rate.kib_per_sec 400.) ~burst_multiplier:6.
      ~batch_curve:
        (Batch_curve.of_samples
           [
             (Duration.minutes 1., Rate.kib_per_sec 380.);
             (Duration.hours 12., Rate.kib_per_sec 150.);
             (Duration.weeks 1., Rate.kib_per_sec 120.);
           ])
  in
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Split_mirror
              (Schedule.simple ~acc:(Duration.hours 12.) ~retention_count:2 ());
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Backup
              (Schedule.simple ~acc:(Duration.weeks 1.)
                 ~prop:(Duration.hours 24.) ~hold:(Duration.hours 1.)
                 ~retention_count:4 ());
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
      ]
  in
  Design.make ~name:"mail" ~workload ~hierarchy ~business:Baseline.business ()

let part3 () =
  let portfolio = Portfolio.make_exn [ Baseline.design; mail_design ] in
  Fmt.pr "%a@.@." Portfolio.pp portfolio;
  let standalone = Evaluate.run mail_design Baseline.scenario_array in
  let shared =
    Evaluate.run
      (Option.get (Portfolio.member portfolio "mail"))
      Baseline.scenario_array
  in
  Fmt.pr
    "mail array-failure recovery: %a standalone vs %a sharing the tape \
     library with cello's backups@."
    Duration.pp standalone.Evaluate.recovery_time Duration.pp
    shared.Evaluate.recovery_time

let () =
  part1 ();
  part2 ();
  part3 ()
