(* Simulator cross-validation: execute the baseline design in the
   discrete-event simulator and compare measured data loss and recovery
   time against the analytical worst cases, sweeping the failure instant
   across a backup cycle to expose its phase-dependence.

     dune exec examples/sim_vs_model.exe *)

open Storage_units
open Storage_model
open Storage_presets
open Storage_report

let config = { Storage_sim.Sim.warmup = Duration.weeks 12.; log = false; outage = None; record_events = false }

let loss_hours = function
  | Data_loss.Updates d -> Printf.sprintf "%.1f" (Duration.to_hours d)
  | Data_loss.Entire_object -> "total"

let rt_hours = function
  | Some d -> Printf.sprintf "%.2f" (Duration.to_hours d)
  | None -> "n/a"

let () =
  (* One run per paper scenario, against the model's worst cases. *)
  let rows =
    List.map
      (fun scenario ->
        let model = Evaluate.run Baseline.design scenario in
        let sim = Storage_sim.Sim.run ~config Baseline.design scenario in
        [
          Fmt.str "%a" Storage_device.Location.pp_scope
            scenario.Scenario.scope;
          loss_hours sim.Storage_sim.Sim.data_loss;
          loss_hours model.Evaluate.data_loss.Data_loss.loss;
          rt_hours sim.Storage_sim.Sim.recovery_time;
          Printf.sprintf "%.2f" (Duration.to_hours model.Evaluate.recovery_time);
        ])
      Baseline.scenarios
  in
  Table.print ~title:"Simulated vs analytical (baseline; hours)"
    ~headers:
      [ "Failure"; "sim DL"; "model worst DL"; "sim RT"; "model RT" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    rows;

  (* Sweep the failure instant across one backup cycle: measured loss
     fluctuates with the phase but never exceeds the model's worst case. *)
  let scenario = Baseline.scenario_array in
  let model = Evaluate.run Baseline.design scenario in
  let worst =
    match model.Evaluate.data_loss.Data_loss.loss with
    | Data_loss.Updates d -> d
    | Data_loss.Entire_object -> Duration.zero
  in
  let steps = 14 in
  let offsets =
    List.init steps (fun i ->
        Duration.hours (float_of_int i *. 168. /. float_of_int steps))
  in
  let runs =
    Storage_sim.Sim.sweep_failure_phase ~config Baseline.design scenario
      ~offsets
  in
  print_endline
    (Printf.sprintf
       "Failure-phase sweep over one backup cycle (model worst DL = %.0f hr):"
       (Duration.to_hours worst));
  List.iteri
    (fun i (m : Storage_sim.Sim.measured) ->
      let dl =
        match m.Storage_sim.Sim.data_loss with
        | Data_loss.Updates d -> Duration.to_hours d
        | Data_loss.Entire_object -> nan
      in
      let bar = String.make (int_of_float (dl /. 4.)) '#' in
      Printf.printf "  +%3.0fh  DL %6.1f hr  %s\n"
        (float_of_int i *. 168. /. float_of_int steps)
        dl bar)
    runs;
  let max_dl =
    List.fold_left
      (fun acc (m : Storage_sim.Sim.measured) ->
        match m.Storage_sim.Sim.data_loss with
        | Data_loss.Updates d -> Float.max acc (Duration.to_hours d)
        | Data_loss.Entire_object -> acc)
      0. runs
  in
  Printf.printf
    "\nmax simulated DL %.1f hr <= model worst case %.0f hr: %b\n" max_dl
    (Duration.to_hours worst)
    (max_dl <= Duration.to_hours worst +. 1e-6)
