(* What-if exploration: reproduce the paper's Table 7 and extend it with a
   custom composite design (asynchronous batch mirroring *plus* tape
   backup), showing how the compositional framework prices designs the
   paper never evaluated.

     dune exec examples/whatif_explorer.exe *)

open Storage_units
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_presets
open Storage_report

(* A belt-and-braces design: 1-minute mirror batches to the recovery site
   for low data loss, plus weekly tape backup and vaulting for archival
   rollback depth (the mirror alone cannot serve old targets). *)
let mirror_plus_tape =
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = Baseline.disk_array;
          link = None;
        };
        {
          technique =
            Technique.Remote_mirror
              {
                mode = Technique.Asynchronous_batch;
                schedule =
                  Schedule.simple ~acc:(Duration.minutes 1.)
                    ~prop:(Duration.minutes 1.) ~retention_count:1 ();
              };
          device = Baseline.remote_array;
          link = Some (Baseline.oc3 ~links:2);
        };
        {
          technique = Technique.Backup Baseline.backup_schedule;
          device = Baseline.tape_library;
          link = Some Baseline.san;
        };
        {
          technique =
            Technique.Vaulting
              (Schedule.simple ~acc:(Duration.weeks 4.)
                 ~prop:(Duration.hours 24.)
                 ~hold:(Duration.add (Duration.weeks 4.) (Duration.hours 12.))
                 ~retention_count:39 ());
          device = Baseline.vault;
          link = Some Baseline.air_shipment;
        };
      ]
  in
  Design.make ~name:"mirror + tape" ~workload:Cello.workload ~hierarchy
    ~business:Baseline.business ()

let loss_cell (r : Evaluate.report) =
  match r.Evaluate.data_loss.Data_loss.loss with
  | Data_loss.Updates d when Duration.to_hours d < 1. ->
    Printf.sprintf "%.2f hr" (Duration.to_hours d)
  | Data_loss.Updates d -> Printf.sprintf "%.1f hr" (Duration.to_hours d)
  | Data_loss.Entire_object -> "entire object"

let print_design_rows ~title design =
  let scenarios =
    [
      ("object", Baseline.scenario_object);
      ("array", Baseline.scenario_array);
      ("site", Baseline.scenario_site);
    ]
  in
  let rows =
    List.map
      (fun (label, scenario) ->
        let r = Evaluate.run design scenario in
        [
          label;
          Metric.money_m r.Evaluate.outlays.Cost.total;
          Metric.hours r.Evaluate.recovery_time;
          loss_cell r;
          Metric.money_m r.Evaluate.penalties.Cost.total;
          Metric.money_m r.Evaluate.total_cost;
        ])
      scenarios
  in
  Table.print ~title
    ~headers:[ "Failure"; "Outlays"; "RT (hr)"; "DL"; "Penalties"; "Total" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right ]
    rows

let () =
  print_endline (Paper_tables.table7 ());
  print_newline ();
  print_design_rows
    ~title:"Extension: asyncB mirror (2 links) + weekly tape backup + vaulting"
    mirror_plus_tape;
  print_endline
    "The composite keeps the mirror's 2-minute data loss for array and site\n\
     failures while retaining the tape hierarchy's ability to serve\n\
     user-error rollbacks (which a mirror alone cannot).\n";
  print_design_rows
    ~title:
      "Extension: 5-of-8 erasure coding (hourly batches, 24 hourly versions)"
    (Whatif.erasure_coded ~fragments:8 ~required:5 ~links:1);
  print_endline
    "Erasure coding sits between the families: mirror-like wide-area\n\
     bandwidth (coalesced hourly batches, 1.6x expansion) with a day of\n\
     rollback depth the mirror lacks, at hour-scale rather than\n\
     minute-scale data loss."
