(* Capacity planner: the automated-design loop the paper motivates.

   Sweeps RTO/RPO envelopes and reports, for each, the cheapest design in
   the candidate grid that meets the objectives under both array and site
   failures, plus the Pareto frontier of the whole space.

     dune exec examples/capacity_planner.exe *)

open Storage_units
open Storage_model
open Storage_optimize
open Storage_presets
open Storage_report

let kit business =
  {
    Candidate.workload = Cello.workload;
    business;
    primary = Baseline.disk_array;
    tape_library = Baseline.tape_library;
    vault = Baseline.vault;
    remote_array = Baseline.remote_array;
    san = Baseline.san;
    shipment = Baseline.air_shipment;
    wan = (fun links -> Baseline.oc3 ~links);
  }

let business ?rto ?rpo () =
  Business.make
    ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ?recovery_time_objective:rto ?recovery_point_objective:rpo ()

let scenarios = [ Baseline.scenario_array; Baseline.scenario_site ]

let plan ?rto ?rpo label =
  let b = business ?rto ?rpo () in
  let candidates = Candidate.enumerate (kit b) Candidate.default_space in
  let result = Search.run candidates scenarios in
  let cell = function
    | Some (s : Objective.summary) ->
      [
        s.Objective.design.Design.name;
        Metric.money_m s.Objective.outlays;
        Metric.hours s.Objective.worst_recovery_time;
        Fmt.str "%a" Data_loss.pp_loss s.Objective.worst_loss;
        Metric.money_m s.Objective.worst_total_cost;
      ]
    | None -> [ "(no feasible design)"; "-"; "-"; "-"; "-" ]
  in
  (label, cell result.Search.best, result)

let () =
  let envelopes =
    [
      ("no objectives", None, None);
      ("RTO 48h / RPO 1wk", Some (Duration.hours 48.), Some (Duration.weeks 1.));
      ("RTO 30h / RPO 48h", Some (Duration.hours 30.), Some (Duration.hours 48.));
      ("RTO 12h / RPO 1h", Some (Duration.hours 12.), Some (Duration.hours 1.));
      ("RTO 4h / RPO 5min", Some (Duration.hours 4.), Some (Duration.minutes 5.));
    ]
  in
  let rows, first_result =
    List.fold_left
      (fun (rows, first) (label, rto, rpo) ->
        let label, cells, result = plan ?rto ?rpo label in
        let first = match first with None -> Some result | s -> s in
        (rows @ [ label :: cells ], first))
      ([], None) envelopes
  in
  Table.print ~title:"Cheapest feasible design per RTO/RPO envelope"
    ~headers:
      [ "Envelope"; "Design"; "Outlays"; "Worst RT"; "Worst DL"; "Worst total" ]
    rows;
  match first_result with
  | None -> ()
  | Some result ->
    print_endline
      "Pareto frontier over (outlays, worst RT, worst DL), no objectives:";
    List.iter
      (fun s -> Fmt.pr "  %a@." Objective.pp s)
      result.Search.frontier
