(* Quickstart: build a storage system design from scratch with the public
   API and evaluate its dependability under an array failure.

   The design protects a 500 GiB database with nightly split mirrors and
   daily tape backups. Run with:

     dune exec examples/quickstart.exe *)

open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

let () =
  (* 1. Describe the workload: size, access/update rates, burstiness, and
     how quickly overwrites coalesce (the batch update curve). *)
  let workload =
    Workload.make ~name:"orders-db" ~data_capacity:(Size.gib 500.)
      ~avg_access_rate:(Rate.mib_per_sec 4.)
      ~avg_update_rate:(Rate.mib_per_sec 1.5) ~burst_multiplier:8.
      ~batch_curve:
        (Batch_curve.of_samples
           [
             (Duration.minutes 1., Rate.mib_per_sec 1.2);
             (Duration.hours 12., Rate.kib_per_sec 600.);
             (Duration.days 1., Rate.kib_per_sec 500.);
           ])
  in

  (* 2. Describe the hardware: a disk array and a tape library at the same
     site, connected by a SAN. *)
  let site = Location.make ~building:"dc-1" ~site:"hq" ~region:"emea" in
  let array =
    Device.make ~name:"array" ~location:site ~max_capacity_slots:64
      ~slot_capacity:(Size.gib 146.) ~max_bandwidth_slots:64
      ~slot_bandwidth:(Rate.mib_per_sec 30.)
      ~enclosure_bandwidth:(Rate.mib_per_sec 400.)
      ~cost:(Cost_model.make ~fixed:(Money.usd 60_000.) ~per_gib:15. ())
      ~spare:(Spare.Dedicated { provisioning_time = Duration.minutes 2. })
      ()
  in
  let tapes =
    Device.make ~name:"tapes" ~location:site ~max_capacity_slots:60
      ~slot_capacity:(Size.gib 400.) ~max_bandwidth_slots:4
      ~slot_bandwidth:(Rate.mib_per_sec 60.)
      ~enclosure_bandwidth:(Rate.mib_per_sec 160.)
      ~access_delay:(Duration.minutes 1.)
      ~cost:
        (Cost_model.make ~fixed:(Money.usd 30_000.) ~per_gib:0.4
           ~per_mib_per_sec:110. ())
      ()
  in
  let san =
    Interconnect.make ~name:"san"
      ~transport:
        (Interconnect.Network
           { link_bandwidth = Rate.mib_per_sec 200.; links = 2 })
      ()
  in

  (* 3. Compose the protection hierarchy: nightly split mirrors on the
     array, then daily full backups to tape. *)
  let hierarchy =
    Hierarchy.make_exn
      [
        {
          Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
          device = array;
          link = None;
        };
        {
          technique =
            Technique.Split_mirror
              (Schedule.simple ~acc:(Duration.hours 24.) ~retention_count:2 ());
          device = array;
          link = None;
        };
        {
          technique =
            Technique.Backup
              (Schedule.simple ~acc:(Duration.hours 24.)
                 ~prop:(Duration.hours 6.) ~hold:(Duration.hours 1.)
                 ~retention_count:14 ());
          device = tapes;
          link = Some san;
        };
      ]
  in

  (* 4. State the business requirements. *)
  let business =
    Business.make
      ~outage_penalty_rate:(Money_rate.usd_per_hour 20_000.)
      ~loss_penalty_rate:(Money_rate.usd_per_hour 20_000.)
      ~recovery_time_objective:(Duration.hours 4.)
      ~recovery_point_objective:(Duration.hours 48.)
      ()
  in
  let design = Design.make ~name:"orders-db" ~workload ~hierarchy ~business () in

  (* 5. Evaluate under an array failure and a user-error rollback. *)
  (match Design.validate design with
  | Ok () -> print_endline "design valid: devices can carry the policies\n"
  | Error errors ->
    List.iter (Printf.printf "INVALID: %s\n") errors;
    exit 1);
  let scenarios =
    [
      Scenario.now (Location.Device "array");
      Scenario.make ~scope:Location.Data_object ~target_age:(Duration.hours 20.)
        ~object_size:(Size.mib 64.) ();
    ]
  in
  List.iter
    (fun scenario ->
      let report = Evaluate.run design scenario in
      Fmt.pr "%a@.@." Evaluate.pp report;
      Fmt.pr "meets RTO: %a, meets RPO: %a@.@."
        Fmt.(option ~none:(any "n/a") bool)
        report.Evaluate.meets_rto
        Fmt.(option ~none:(any "n/a") bool)
        report.Evaluate.meets_rpo)
    scenarios
