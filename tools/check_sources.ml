(* Source-invariant checker, run as part of [dune runtest].

   The libraries carry a few global invariants that the type checker
   cannot see but the test suites rely on:

   - Determinism: no ambient randomness. The only [Random.*] use lives in
     the workload generator's explicit splittable PRNG (lib/workload/
     prng.ml); everything else must thread seeds, so that every
     evaluation, simulation and search is reproducible bit for bit.

   - Domain safety: no top-level mutable [Hashtbl] state outside the
     audited shared-state modules (memo.ml, eval_cache.ml,
     storage_obs.ml), which guard their tables with mutexes/atomics.
     A top-level table anywhere else is a data race waiting for the
     multicore engine. Function-local scratch tables are fine.

   - Libraries never terminate the process: [exit] belongs to bin/, not
     lib/. A library that exits steals error handling from its caller.

   - Network confinement: socket primitives live in lib/serve (and bin/,
     which this checker does not scan). Any other library opening,
     binding or accepting sockets would smuggle I/O and ambient network
     state into what are otherwise pure evaluation kernels.

   - One execution context: lib/engine owns the [?jobs]/[?cache]/[?lint]
     configuration. No other interface may declare those optional
     arguments — entry points take [?engine] instead, so the triple can
     never creep back one signature at a time. Deprecated compatibility
     shims (their val block carries [@@deprecated]) are exempt.

   Usage: check_sources DIR — scans every .ml and .mli under DIR, prints
   file:line: diagnostics, exits 1 on any violation. *)

let violations = ref 0

let report ~file ~line msg =
  incr violations;
  Printf.eprintf "%s:%d: %s\n" file line msg

let basename_is names file = List.mem (Filename.basename file) names

(* (pattern, exempt files, message) — patterns are checked per line. *)
let rules =
  [
    ( Str.regexp_string "Random.",
      (* seeded.ml: the testkit's legacy pools reproduce the historical
         test-suite draws, which used [Random.State.make] with fixed
         seeds — explicitly seeded, so still deterministic. *)
      [ "prng.ml"; "seeded.ml" ],
      "ambient randomness: use the seeded splittable PRNG \
       (Storage_workload.Prng); determinism is a library invariant" );
    ( Str.regexp "^let .*Hashtbl\\.create",
      [ "memo.ml"; "eval_cache.ml"; "storage_obs.ml" ],
      "top-level mutable table outside the audited shared-state modules: \
       not domain-safe; keep tables function-local or move the state \
       behind Memo/Eval_cache/Storage_obs" );
    ( Str.regexp "Stdlib\\.exit\\|\\bexit +[0-9(]",
      [],
      "libraries must not terminate the process: return a result and let \
       bin/ decide the exit code" );
  ]

(* Socket primitives are confined by directory, not basename: only
   lib/serve may touch the network. *)
let socket_re =
  Str.regexp
    "Unix\\.\\(socket\\|bind\\|listen\\|accept\\|connect\\|setsockopt\\)"

let socket_msg =
  "socket primitive outside lib/serve: network I/O is confined to the \
   serve library (and bin/); evaluation libraries must stay pure"

let in_serve_lib file =
  String.equal (Filename.basename (Filename.dirname file)) "serve"

let check_line ~file ~lineno line =
  List.iter
    (fun (re, exempt, msg) ->
      if (not (basename_is exempt file))
         && (try
               ignore (Str.search_forward re line 0);
               true
             with Not_found -> false)
      then report ~file ~line:lineno msg)
    rules;
  if (not (in_serve_lib file))
     && (try
           ignore (Str.search_forward socket_re line 0);
           true
         with Not_found -> false)
  then report ~file ~line:lineno socket_msg

let check_file file =
  In_channel.with_open_text file (fun ic ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          check_line ~file ~lineno:!lineno line
        done
      with End_of_file -> ())

(* The engine-context invariant over interfaces. An .mli is split into
   val blocks (a block runs from a [val ] line to the next one); a block
   may mention ?jobs/?cache/?lint only if it is a deprecated shim. *)
let engine_args_re = Str.regexp "\\?jobs\\|\\?cache\\|\\?lint"
let val_start_re = Str.regexp "^val "
let engine_args_msg =
  "?jobs/?cache/?lint in a public interface: the execution context \
   belongs to lib/engine; take ?engine:Storage_engine.t instead (or mark \
   the compatibility shim [@@deprecated])"

let in_engine_lib file =
  let dir = Filename.basename (Filename.dirname file) in
  String.equal dir "engine"

let matches re line =
  try
    ignore (Str.search_forward re line 0);
    true
  with Not_found -> false

let check_mli_file file =
  if not (in_engine_lib file) then
    In_channel.with_open_text file (fun ic ->
        let pending = ref [] (* matching lines in the current val block *)
        and block_deprecated = ref false
        and lineno = ref 0 in
        let flush () =
          if not !block_deprecated then
            List.iter
              (fun line -> report ~file ~line engine_args_msg)
              (List.rev !pending);
          pending := [];
          block_deprecated := false
        in
        (try
           while true do
             let line = input_line ic in
             incr lineno;
             if matches val_start_re line then flush ();
             if matches engine_args_re line then pending := !lineno :: !pending;
             if matches (Str.regexp_string "[@@deprecated") line then
               block_deprecated := true
           done
         with End_of_file -> ());
        flush ())

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry -> walk (Filename.concat path entry))
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then check_file path
  else if Filename.check_suffix path ".mli" then check_mli_file path

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  if not (Sys.file_exists root) then begin
    Printf.eprintf "check_sources: no such directory %s\n" root;
    exit 2
  end;
  walk root;
  if !violations > 0 then begin
    Printf.eprintf "check_sources: %d violation(s)\n" !violations;
    exit 1
  end
