(* sslint — the project's own source analyzer.

   Parses every .ml/.mli under the given paths with the compiler's
   front end and runs the SA rules (lib/analysis); see DESIGN.md
   "Project static analysis" for the rule table. Distinct from
   [ssdep lint], which checks storage *designs*, not sources.

   Usage: sslint [--json] [--deny-warnings] [--rules] [PATH...]

   Exit codes match ssdep lint: 2 on errors (or usage error), 1 on
   warnings under --deny-warnings, 0 clean. *)

module A = Storage_analysis

let usage =
  "usage: sslint [--json] [--deny-warnings] [--rules] [PATH...]\n\
   Analyzes project OCaml sources (default paths: lib bin bench tools)."

let () =
  let json = ref false
  and deny_warnings = ref false
  and rules = ref false
  and paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable report on stdout");
      ( "--deny-warnings",
        Arg.Set deny_warnings,
        " exit 1 when only warnings are found" );
      ("--rules", Arg.Set rules, " list the SA rules and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv (Arg.align spec)
         (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !rules then begin
    List.iter
      (fun (r : A.Rule.t) ->
        Printf.printf "%s  %-7s %s%s\n" r.code
          (Storage_lint.Diagnostic.severity_name r.severity)
          r.title
          (if r.ported then "  [ported from check_sources]" else ""))
      A.Rule.all;
    exit 0
  end;
  let roots =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "tools" ]
    | roots -> roots
  in
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "sslint: no such path %s\n" root;
        exit 2
      end)
    roots;
  let report = A.Analyze.paths roots in
  let findings = report.A.Analyze.findings in
  if !json then
    print_endline
      (Storage_report.Json.to_string_pretty
         (A.Finding.to_json ~files:report.A.Analyze.files findings))
  else
    Fmt.pr "%a@."
      (A.Finding.pp_report ~files:report.A.Analyze.files)
      findings;
  exit (A.Finding.exit_code ~deny_warnings:!deny_warnings findings)
