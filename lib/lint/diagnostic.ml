open Storage_report

type severity = Error | Warning | Info

type location =
  | Design_wide
  | Level of { index : int; technique : string }
  | Device of string
  | Link of string
  | Workload
  | Business
  | Scenario of string

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

let make ~code severity location fmt =
  Printf.ksprintf (fun message -> { code; severity; location; message }) fmt

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Locations order by specificity groups so the rendered table reads
   top-down: whole-design first, then the hierarchy, hardware, inputs,
   scenarios. *)
let location_rank = function
  | Design_wide -> 0
  | Level _ -> 1
  | Device _ -> 2
  | Link _ -> 3
  | Workload -> 4
  | Business -> 5
  | Scenario _ -> 6

let location_key = function
  | Design_wide -> ""
  | Level { index; _ } -> string_of_int index
  | Device n | Link n | Scenario n -> n
  | Workload | Business -> ""

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else begin
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else begin
      let c =
        Int.compare (location_rank a.location) (location_rank b.location)
      in
      if c <> 0 then c
      else begin
        let c =
          String.compare (location_key a.location) (location_key b.location)
        in
        if c <> 0 then c else String.compare a.message b.message
      end
    end
  end

let pp_location ppf = function
  | Design_wide -> Fmt.string ppf "design"
  | Level { index; technique } -> Fmt.pf ppf "level %d (%s)" index technique
  | Device name -> Fmt.pf ppf "device %s" name
  | Link name -> Fmt.pf ppf "link %s" name
  | Workload -> Fmt.string ppf "workload"
  | Business -> Fmt.string ppf "business"
  | Scenario name -> Fmt.pf ppf "scenario %s" name

let pp ppf d =
  Fmt.pf ppf "%-11s %-8s %-24s %s" d.code (severity_name d.severity)
    (Fmt.str "%a" pp_location d.location)
    d.message

let location_to_json = function
  | Design_wide -> Json.Obj [ ("kind", Json.String "design") ]
  | Level { index; technique } ->
    Json.Obj
      [
        ("kind", Json.String "level");
        ("index", Json.Int index);
        ("technique", Json.String technique);
      ]
  | Device name ->
    Json.Obj [ ("kind", Json.String "device"); ("name", Json.String name) ]
  | Link name ->
    Json.Obj [ ("kind", Json.String "link"); ("name", Json.String name) ]
  | Workload -> Json.Obj [ ("kind", Json.String "workload") ]
  | Business -> Json.Obj [ ("kind", Json.String "business") ]
  | Scenario name ->
    Json.Obj [ ("kind", Json.String "scenario"); ("name", Json.String name) ]

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("location", location_to_json d.location);
      ("message", Json.String d.message);
    ]
