open Storage_hierarchy
open Storage_model

(** Static design analysis ([ssdep lint]).

    The framework's utilization, data-loss, recovery-time and cost numbers
    are only trustworthy for well-formed inputs, and well-formedness is a
    {e static} property: §3.3.1's bandwidth and overcommitment checks, the
    §3.2.1 schedule conventions, spare-pool coverage of a failure scope —
    none of them need a single evaluation. This module gathers those
    checks as a rule set with stable codes ([SSDEP-E0xx] errors,
    [SSDEP-W0xx] warnings, [SSDEP-I0xx] advisories) and structured
    {!Diagnostic.t} findings, rendered as a human table or JSON.

    Two callers: the [ssdep lint] CLI (human/CI feedback, exit codes), and
    the design-space search, which uses {!prune} to reject statically
    invalid candidates before paying for {!Evaluate.run}
    (see {!Storage_optimize.Search.run}).

    Severity contract: a design with no [Error]-severity findings
    evaluates without [Evaluate.report.errors]; conversely anything
    {!Evaluate.run} rejects carries at least one lint error (the
    [test_lint] property suite enforces both directions over the presets
    and seeded random designs). *)

module Diagnostic = Diagnostic

val rules : (string * Diagnostic.severity * string) list
(** The rule registry: code, severity, one-line description. Stable codes,
    documented rule by rule (with paper references) in DESIGN.md. *)

val check_levels : Hierarchy.level list -> Diagnostic.t list
(** Structural conventions (§3.2.1) over a {e raw} level list, before
    {!Hierarchy.make}: primary-copy placement (E001), missing schedules
    (E002), decreasing retention counts (E003), accumulation windows
    shorter than the upstream cycle period (E004), colocation (E005).
    Unlike [Hierarchy.validate] — which guards the constructor and stops
    at the first violation — this reports all of them. A list accepted by
    [Hierarchy.make] produces no diagnostics here. *)

val check_design : Design.t -> Diagnostic.t list
(** The scenario-independent rules: device over/near-commitment
    (E010/E011/W001/W002), per-level interconnect requirements
    (E012/E013/W003), aggregate link oversubscription (E018), workload
    parameter validity (E014/W004/W005), cost-term validity (E015), and
    the schedule advisories (I001/I002). *)

val check_scenario : Design.t -> string * Scenario.t -> Diagnostic.t list
(** The rules for one named failure scenario: unreachable scenarios
    (W006/W007) and recovery-path viability — spare coverage of the scope
    (E016) and available transfer bandwidth (E017). *)

val check :
  ?scenarios:(string * Scenario.t) list -> Design.t -> Diagnostic.t list
(** {!check_design} plus {!check_scenario} for each given scenario, sorted
    and deduplicated into the stable {!Diagnostic.compare} order. *)

val errors : Diagnostic.t list -> Diagnostic.t list
val warnings : Diagnostic.t list -> Diagnostic.t list
val infos : Diagnostic.t list -> Diagnostic.t list

val accepts : Design.t -> bool
(** No error-severity finding among the design-wide rules: the candidate
    is worth evaluating. Warnings and advisories never reject. *)

val prune : Design.t list -> Design.t list
(** The candidates satisfying {!accepts}, in order. Every rejected
    candidate increments the [lint.pruned] {!Storage_obs} counter, so
    [--stats] shows how much work the pre-filter saved. *)

val exit_code : ?deny_warnings:bool -> Diagnostic.t list -> int
(** CLI exit code: [2] with errors, [1] with warnings under
    [~deny_warnings:true], [0] otherwise. *)

val pp : Diagnostic.t list Fmt.t
(** Table of findings followed by a severity summary ("clean: ..." when
    empty). *)

val pp_summary : Diagnostic.t list Fmt.t

val to_json : design:string -> Diagnostic.t list -> Storage_report.Json.t
(** Stable machine-readable form: design name, the ordered diagnostics,
    and per-severity counts. *)
