open Storage_report

(** Structured diagnostics for the static design analyzer.

    Every finding of {!Storage_lint} carries a stable rule code
    ([SSDEP-E0xx] / [SSDEP-W0xx] / [SSDEP-I0xx]), a severity, a structured
    location inside the design (protection level, device, link, scenario),
    and a human message. Codes are part of the tool's interface: scripts
    match on them, and the table in DESIGN.md documents each one against
    the paper section it enforces. *)

type severity =
  | Error  (** the design is statically invalid; evaluation would reject it *)
  | Warning  (** suspicious but evaluable; [--deny-warnings] rejects it *)
  | Info  (** advisory only (e.g. the paper's convention-3 note) *)

type location =
  | Design_wide
  | Level of { index : int; technique : string }
  | Device of string
  | Link of string
  | Workload
  | Business
  | Scenario of string  (** named failure scenario the finding applies to *)

type t = {
  code : string;  (** stable rule code, e.g. ["SSDEP-E010"] *)
  severity : severity;
  location : location;
  message : string;
}

val make :
  code:string -> severity -> location -> ('a, unit, string, t) format4 -> 'a
(** [make ~code severity location fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val severity_rank : severity -> int
(** [Error] = 0, [Warning] = 1, [Info] = 2 (most severe first). *)

val severity_name : severity -> string

val compare : t -> t -> int
(** Total order used for stable output: severity, then code, then
    location, then message. *)

val pp : t Fmt.t
(** One table row: code, severity, location, message. *)

val pp_location : location Fmt.t
val to_json : t -> Json.t
