open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
module Diagnostic = Diagnostic

let err = Diagnostic.make
let near_full_threshold = 0.9

(* --- rule registry (kept in sync with the checks below; the test suite
   asserts every code here has a fixture and every emitted code is
   registered) --- *)

let rules : (string * Diagnostic.severity * string) list =
  [
    ("SSDEP-E001", Error, "level 0 must be the only primary copy");
    ("SSDEP-E002", Error, "every level above 0 needs a schedule");
    ("SSDEP-E003", Error, "retention count must not decrease with level");
    ( "SSDEP-E004",
      Error,
      "accumulation window shorter than the upstream cycle period" );
    ( "SSDEP-E005",
      Error,
      "colocated technique must be hosted on the primary device" );
    ("SSDEP-E010", Error, "device capacity overcommitted");
    ("SSDEP-E011", Error, "device bandwidth overcommitted");
    ("SSDEP-E012", Error, "technique requires an interconnect");
    ( "SSDEP-E013",
      Error,
      "link bandwidth below the technique's required rate" );
    ("SSDEP-E014", Error, "negative or non-finite workload parameter");
    ("SSDEP-E015", Error, "negative or non-finite cost term");
    ( "SSDEP-E016",
      Error,
      "destroyed device on the recovery path has no applicable spare" );
    ("SSDEP-E017", Error, "no bandwidth available on the recovery path");
    ( "SSDEP-E018",
      Error,
      "interconnect oversubscribed by aggregate propagation demand" );
    ("SSDEP-W001", Warning, "device capacity nearly full");
    ("SSDEP-W002", Warning, "device bandwidth nearly saturated");
    ( "SSDEP-W003",
      Warning,
      "asynchronous mirror link below the peak (burst) update rate" );
    ( "SSDEP-W004",
      Warning,
      "batch update rate exceeds the raw average update rate" );
    ("SSDEP-W005", Warning, "zero update rate under protection levels");
    ("SSDEP-W006", Warning, "scenario destroys every protection level");
    ( "SSDEP-W007",
      Warning,
      "no surviving level guarantees the scenario's target age" );
    ( "SSDEP-I001",
      Info,
      "hold window exceeds the previous level's retention window" );
    ("SSDEP-I002", Info, "retention too shallow to guarantee any RP range");
  ]

(* --- structural conventions over a raw level list (§3.2.1) ---

   These mirror [Hierarchy.validate] (which guards the constructor and
   therefore cannot be expressed on an already-built [Hierarchy.t]), but
   report every violation instead of the first, with structured
   locations. *)

let level_loc j (l : Hierarchy.level) =
  Diagnostic.Level { index = j; technique = Technique.name l.technique }

let check_levels (levels : Hierarchy.level list) =
  match levels with
  | [] ->
    [
      err ~code:"SSDEP-E001" Error Design_wide
        "hierarchy must have at least a primary level";
    ]
  | primary :: rest ->
    let ds = ref [] in
    let add d = ds := d :: !ds in
    (match primary.technique with
    | Technique.Primary_copy _ -> ()
    | _ ->
      add
        (err ~code:"SSDEP-E001" Error (level_loc 0 primary)
           "level 0 must be a primary copy"));
    List.iteri
      (fun i (l : Hierarchy.level) ->
        let j = i + 1 in
        (match l.technique with
        | Technique.Primary_copy _ ->
          add
            (err ~code:"SSDEP-E001" Error (level_loc j l)
               "only level 0 may be a primary copy")
        | _ -> ());
        if Technique.schedule l.technique = None then
          add
            (err ~code:"SSDEP-E002" Error (level_loc j l)
               "every level above 0 must have a schedule");
        if
          Technique.colocated_with_primary l.technique
          && not
               (String.equal l.device.Device.name
                  primary.device.Device.name)
        then
          add
            (err ~code:"SSDEP-E005" Error (level_loc j l)
               "%s must be hosted on the primary device %s, not %s"
               (Technique.name l.technique) primary.device.Device.name
               l.device.Device.name))
      rest;
    (* Conventions on consecutive secondary levels; skipped where a
       schedule is missing (already an E002). *)
    let rec pairs j = function
      | (a : Hierarchy.level) :: (b :: _ as tl) ->
        (match (Technique.schedule a.technique, Technique.schedule b.technique)
        with
        | Some sa, Some sb ->
          if sb.Schedule.retention_count < sa.Schedule.retention_count then
            add
              (err ~code:"SSDEP-E003" Error (level_loc (j + 1) b)
                 "retention count %d is below level %d's %d (§3.2.1 \
                  convention 2)"
                 sb.Schedule.retention_count j sa.Schedule.retention_count);
          if
            Duration.compare sb.Schedule.full.Schedule.accumulation
              (Schedule.cycle_period sa)
            < 0
          then
            add
              (err ~code:"SSDEP-E004" Error (level_loc (j + 1) b)
                 "accumulation window %s is shorter than level %d's cycle \
                  period %s"
                 (Duration.to_string sb.Schedule.full.Schedule.accumulation)
                 j
                 (Duration.to_string (Schedule.cycle_period sa)))
        | _ -> ());
        pairs (j + 1) tl
      | [] | [ _ ] -> ()
    in
    pairs 1 rest;
    List.rev !ds

(* --- design-wide static rules --- *)

let finite f = Float.is_finite f
let nonneg_finite f = Float.is_finite f && f >= 0.

let check_workload (w : Workload.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let bad ~what v =
    add
      (err ~code:"SSDEP-E014" Error Workload
         "%s is negative or non-finite (%g)" what v)
  in
  let cap = Size.to_bytes w.Workload.data_capacity in
  if not (finite cap && cap > 0.) then bad ~what:"data capacity" cap;
  let acc = Rate.to_bytes_per_sec w.Workload.avg_access_rate in
  if not (nonneg_finite acc) then bad ~what:"average access rate" acc;
  let upd = Rate.to_bytes_per_sec w.Workload.avg_update_rate in
  if not (nonneg_finite upd) then bad ~what:"average update rate" upd;
  if not (finite w.Workload.burst_multiplier && w.Workload.burst_multiplier >= 1.)
  then bad ~what:"burst multiplier" w.Workload.burst_multiplier;
  List.iter
    (fun (_, r) ->
      let r = Rate.to_bytes_per_sec r in
      if not (nonneg_finite r) then bad ~what:"batch update rate" r)
    (Batch_curve.samples w.Workload.batch_curve);
  (* Trace/batch-curve consistency: the unique update rate can never
     exceed the raw update rate the trace generator was parameterized
     with — overwrites only coalesce writes, they cannot invent them. *)
  (match
     List.find_opt
       (fun (_, r) -> Rate.compare r w.Workload.avg_update_rate > 0)
       (Batch_curve.samples w.Workload.batch_curve)
   with
  | Some (win, r) ->
    add
      (err ~code:"SSDEP-W004" Warning Workload
         "batch update rate %s over a %s window exceeds the raw average \
          update rate %s: inconsistent trace parameters"
         (Rate.to_string r) (Duration.to_string win)
         (Rate.to_string w.Workload.avg_update_rate))
  | None -> ());
  List.rev !ds

let check_cost_model loc ~owner (c : Cost_model.t) =
  let ds = ref [] in
  let bad ~what v =
    ds :=
      err ~code:"SSDEP-E015" Error loc "%s %s is negative or non-finite (%g)"
        owner what v
      :: !ds
  in
  let fixed = Money.to_usd c.Cost_model.fixed in
  if not (nonneg_finite fixed) then bad ~what:"fixed cost" fixed;
  if not (nonneg_finite c.Cost_model.per_gib) then
    bad ~what:"per-GiB cost" c.Cost_model.per_gib;
  if not (nonneg_finite c.Cost_model.per_mib_per_sec) then
    bad ~what:"per-MiB/s cost" c.Cost_model.per_mib_per_sec;
  if not (nonneg_finite c.Cost_model.per_shipment) then
    bad ~what:"per-shipment cost" c.Cost_model.per_shipment;
  List.rev !ds

let design_links (d : Design.t) =
  List.fold_left
    (fun acc (l : Hierarchy.level) ->
      match l.link with
      | Some link
        when not
               (List.exists
                  (fun (k : Interconnect.t) ->
                    String.equal k.Interconnect.name link.Interconnect.name)
                  acc) ->
        link :: acc
      | Some _ | None -> acc)
    []
    (Hierarchy.levels d.Design.hierarchy)
  |> List.rev

let check_design (d : Design.t) =
  let ds = ref [] in
  let add x = ds := x :: !ds in
  let h = d.Design.hierarchy in
  (* Devices: §3.3.1's global overcommitment check, plus a near-full
     advisory band below it. *)
  List.iter
    (fun (dev : Device.t) ->
      let u = Design.device_utilization d dev in
      let loc = Diagnostic.Device dev.Device.name in
      if u.Device.capacity_fraction > 1. then
        add
          (err ~code:"SSDEP-E010" Error loc
             "capacity overcommitted: %.1f%% of %s (%d slots needed, %d \
              available)"
             (100. *. u.Device.capacity_fraction)
             (Size.to_string (Device.max_capacity dev))
             u.Device.capacity_slots_needed dev.Device.max_capacity_slots)
      else if u.Device.capacity_fraction > near_full_threshold then
        add
          (err ~code:"SSDEP-W001" Warning loc
             "capacity %.1f%% full: little headroom for growth or extra \
              retention"
             (100. *. u.Device.capacity_fraction));
      if u.Device.bandwidth_fraction > 1. then
        add
          (err ~code:"SSDEP-E011" Error loc
             "bandwidth overcommitted: %.1f%% of %s"
             (100. *. u.Device.bandwidth_fraction)
             (Rate.to_string (Device.max_bandwidth dev)))
      else if u.Device.bandwidth_fraction > near_full_threshold then
        add
          (err ~code:"SSDEP-W002" Warning loc
             "bandwidth %.1f%% saturated: recovery transfers will crawl"
             (100. *. u.Device.bandwidth_fraction)))
    (Design.devices d);
  (* Per-level interconnect requirements (§3.3.1: a synchronous mirror
     link must sustain the peak rate, asynchronous modes the average). *)
  List.iteri
    (fun j (l : Hierarchy.level) ->
      let required =
        Demands.required_link_bandwidth ~workload:d.Design.workload
          l.technique
      in
      if not (Rate.is_zero required) then begin
        match l.link with
        | None ->
          add
            (err ~code:"SSDEP-E012" Error (level_loc j l)
               "%s requires an interconnect and none is configured"
               (Technique.name l.technique))
        | Some link -> (
          match Interconnect.bandwidth link with
          | Some bw when Rate.compare bw required < 0 ->
            add
              (err ~code:"SSDEP-E013" Error (Link link.Interconnect.name)
                 "bandwidth %s cannot sustain %s traffic (%s required)"
                 (Rate.to_string bw)
                 (Technique.name l.technique)
                 (Rate.to_string required))
          | Some bw -> (
            (* The link keeps up on average; warn when workload bursts
               exceed it, so asynchronous mirrors will queue behind
               [burstM * avgUpdateR] spikes. *)
            match l.technique with
            | Technique.Remote_mirror
                { mode = Technique.Asynchronous | Technique.Asynchronous_batch;
                  _ } ->
              let peak = Workload.peak_update_rate d.Design.workload in
              if Rate.compare bw peak < 0 then
                add
                  (err ~code:"SSDEP-W003" Warning
                     (Link link.Interconnect.name)
                     "bandwidth %s is below the peak (burst) update rate \
                      %s: asynchronous propagation will lag during bursts"
                     (Rate.to_string bw) (Rate.to_string peak))
            | _ -> ())
          | None -> ())
      end)
    (Hierarchy.levels h);
  (* Aggregate oversubscription per interconnect: several levels may share
     one link; the sum of their sustained propagation demands must fit. *)
  List.iter
    (fun (link : Interconnect.t) ->
      match Interconnect.bandwidth link with
      | None -> ()
      | Some bw ->
        let demand = Design.link_demand d link in
        if Rate.compare demand bw > 0 then
          add
            (err ~code:"SSDEP-E018" Error (Link link.Interconnect.name)
               "aggregate propagation demand %s exceeds link bandwidth %s"
               (Rate.to_string demand) (Rate.to_string bw)))
    (design_links d);
  (* Workload parameter sanity. *)
  List.iter add (check_workload d.Design.workload);
  if
    Rate.is_zero d.Design.workload.Workload.avg_update_rate
    && Hierarchy.length h > 1
  then
    add
      (err ~code:"SSDEP-W005" Warning Workload
         "update rate is zero, yet %d protection level(s) are configured \
          to capture updates"
         (Hierarchy.length h - 1));
  (* Cost terms. *)
  List.iter
    (fun (dev : Device.t) ->
      List.iter add
        (check_cost_model
           (Diagnostic.Device dev.Device.name)
           ~owner:"device" dev.Device.cost))
    (Design.devices d);
  List.iter
    (fun (link : Interconnect.t) ->
      List.iter add
        (check_cost_model
           (Diagnostic.Link link.Interconnect.name)
           ~owner:"link" link.Interconnect.cost))
    (design_links d);
  let b = d.Design.business in
  List.iter
    (fun (what, rate) ->
      let v = Money_rate.to_usd_per_hour rate in
      if not (nonneg_finite v) then
        add
          (err ~code:"SSDEP-E015" Error Business
             "business %s is negative or non-finite (%g)" what v))
    [
      ("outage penalty rate", b.Business.outage_penalty_rate);
      ("loss penalty rate", b.Business.loss_penalty_rate);
    ];
  (* Advisories: the paper's convention 3 (§3.2.1) and guaranteed-range
     shallowness (§3.3.2, Figure 3). *)
  List.iter
    (fun j ->
      let l = Hierarchy.level h j in
      add
        (err ~code:"SSDEP-I001" Info (level_loc j l)
           "hold window exceeds level %d's retention window: extra \
            retention capacity is required at level %d (§3.2.1 convention \
            3)"
           (j - 1) (j - 1)))
    (Hierarchy.hold_retention_inversions h);
  for j = 1 to Hierarchy.length h - 1 do
    if Design.guaranteed_range d j = None then
      add
        (err ~code:"SSDEP-I002" Info (level_loc j (Hierarchy.level h j))
           "retention is too shallow to guarantee any retrieval-point \
            range (Figure 3)")
  done;
  List.rev !ds

(* --- per-scenario rules --- *)

let check_scenario (d : Design.t) (name, (sc : Scenario.t)) =
  let ds = ref [] in
  let add x = ds := x :: !ds in
  let loc = Diagnostic.Scenario name in
  let dl = Data_loss.compute d sc in
  (match (dl.Data_loss.loss, dl.Data_loss.candidates) with
  | Data_loss.Entire_object, [] ->
    add
      (err ~code:"SSDEP-W006" Warning loc
         "no protection level survives scope %s as a recovery source: the \
          object cannot be recovered"
         (Location.scope_name sc.Scenario.scope))
  | Data_loss.Entire_object, _ :: _ ->
    add
      (err ~code:"SSDEP-W007" Warning loc
         "no surviving level guarantees a retrieval point of age %s: the \
          target predates all retained RPs"
         (Duration.to_string sc.Scenario.target_age))
  | Data_loss.Updates _, _ -> ());
  (match dl.Data_loss.source_level with
  | Some source_level when source_level > 0 ->
    (* Spare-pool adequacy along the recovery path: every receiving
       device destroyed by the scope needs a spare that covers the scope
       (the remote spare for building/site/region failures). Mirrors
       [Recovery_time]'s provisioning step. *)
    let scope = sc.Scenario.scope in
    let path =
      Recovery_time.recovery_path d.Design.hierarchy ~source:source_level
    in
    let receiving = match path with [] -> [] | _ :: tl -> tl in
    let missing_spare = ref false in
    List.iter
      (fun j ->
        let dev = (Hierarchy.level d.Design.hierarchy j).Hierarchy.device in
        if
          Location.destroys scope ~device_name:dev.Device.name
            dev.Device.location
          && Spare.provisioning_time (Device.spare_for dev ~scope) = None
        then begin
          missing_spare := true;
          add
            (err ~code:"SSDEP-E016" Error loc
               "device %s is destroyed and has no spare covering this \
                scope: recovery cannot provision a replacement"
               dev.Device.name)
        end)
      (List.sort_uniq Int.compare receiving);
    if not !missing_spare then begin
      (* The only other static failure of the recovery timeline is a hop
         with zero available bandwidth; reuse the timeline computation so
         the check can never drift from the evaluator. *)
      match Recovery_time.compute d sc ~source_level with
      | Ok _ -> ()
      | Error e -> add (err ~code:"SSDEP-E017" Error loc "%s" e)
    end
  | Some _ | None -> ());
  List.rev !ds

(* --- entry points --- *)

let check ?(scenarios = []) d =
  check_design d @ List.concat_map (check_scenario d) scenarios
  |> List.sort_uniq Diagnostic.compare

let errors ds =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds

let warnings ds =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning) ds

let infos ds =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Info) ds

(* [accepts] is [errors (check_design d) = []] computed without building
   a single diagnostic — it runs once per candidate as the search
   pre-filter, where the [ksprintf] message formatting of [check_design]
   would dominate the test itself. The static errors of [check_design]
   decompose exactly into
   - E010/E011/E012/E013/E018, which are [Design.validate] (memoized per
     design) reporting the same conditions over the same device and link
     sets, and
   - the finiteness screens: E014 over the workload and E015 over every
     device and link cost model and the business penalty rates,
   so testing those three pieces is testing membership in the error set.
   The test suite pins the equivalence against the diagnostic-building
   definition on both clean and corrupted designs. *)

let workload_finite (w : Workload.t) =
  let cap = Size.to_bytes w.Workload.data_capacity in
  finite cap && cap > 0.
  && nonneg_finite (Rate.to_bytes_per_sec w.Workload.avg_access_rate)
  && nonneg_finite (Rate.to_bytes_per_sec w.Workload.avg_update_rate)
  && finite w.Workload.burst_multiplier
  && w.Workload.burst_multiplier >= 1.
  && List.for_all
       (fun (_, r) -> nonneg_finite (Rate.to_bytes_per_sec r))
       (Batch_curve.samples w.Workload.batch_curve)

let cost_model_finite (c : Cost_model.t) =
  nonneg_finite (Money.to_usd c.Cost_model.fixed)
  && nonneg_finite c.Cost_model.per_gib
  && nonneg_finite c.Cost_model.per_mib_per_sec
  && nonneg_finite c.Cost_model.per_shipment

let accepts d =
  (match Design.validate d with Ok () -> true | Error _ -> false)
  && workload_finite d.Design.workload
  && List.for_all
       (fun (dev : Device.t) -> cost_model_finite dev.Device.cost)
       (Design.devices d)
  && List.for_all
       (fun (link : Interconnect.t) -> cost_model_finite link.Interconnect.cost)
       (design_links d)
  && nonneg_finite
       (Money_rate.to_usd_per_hour d.Design.business.Business.outage_penalty_rate)
  && nonneg_finite
       (Money_rate.to_usd_per_hour d.Design.business.Business.loss_penalty_rate)

let obs_pruned = Storage_obs.Counter.make "lint.pruned"

let prune candidates =
  let kept = List.filter accepts candidates in
  Storage_obs.Counter.add obs_pruned
    (List.length candidates - List.length kept);
  kept

let exit_code ?(deny_warnings = false) ds =
  if errors ds <> [] then 2
  else if deny_warnings && warnings ds <> [] then 1
  else 0

let pp_summary ppf ds =
  Fmt.pf ppf "%d error(s), %d warning(s), %d info(s)"
    (List.length (errors ds))
    (List.length (warnings ds))
    (List.length (infos ds))

let pp ppf ds =
  match ds with
  | [] -> Fmt.pf ppf "clean: %a" pp_summary ds
  | _ ->
    Fmt.pf ppf "@[<v>%a@,%a@]"
      (Fmt.list ~sep:Fmt.cut Diagnostic.pp)
      ds pp_summary ds

let to_json ~design ds =
  Storage_report.Json.Obj
    [
      ("design", Storage_report.Json.String design);
      ( "diagnostics",
        Storage_report.Json.List (List.map Diagnostic.to_json ds) );
      ("errors", Storage_report.Json.Int (List.length (errors ds)));
      ("warnings", Storage_report.Json.Int (List.length (warnings ds)));
      ("infos", Storage_report.Json.Int (List.length (infos ds)));
    ]
