(* The execution context shared by every evaluation loop.

   Concurrency notes: [pool] and [slots] are guarded by [lock]. The pool
   is created lazily so that serial engines never spawn domains, and
   reused across batches so that a long what-if session pays the domain
   spawn cost once. Slots hold values behind an extensible-variant
   universal type: each [new_key] mints a fresh constructor, so a slot
   can only ever be read back at the type it was written with. *)

type binding = ..

type 'a key = {
  uid : int;
  inj : 'a -> binding;
  proj : binding -> 'a option;
}

(* Audited: a lock-free key-uid counter is exactly what Atomic is for;
   it carries no observable state beyond freshness. *)
let[@sslint.allow "SA010"] next_uid = Atomic.make 0

let new_key (type a) () : a key =
  let module M = struct
    type binding += K of a
  end in
  {
    uid = Atomic.fetch_and_add next_uid 1;
    inj = (fun v -> M.K v);
    proj = (function M.K v -> Some v | _ -> None);
  }

type t = {
  jobs : int;
  lint : bool;
  seed : int64;
  stats : bool;
  cache : bool;
  cache_bound : int option;
  chunk : int option;
  lock : Mutex.t;
  mutable pool : Storage_parallel.Pool.t option;
  slots : (int, binding) Hashtbl.t;
}

(* Same fixed constant as the historical Risk.monte_carlo default, so an
   engine-less call and a default engine agree bit for bit. *)
let default_seed = 0xCA5CADEL

let create ?(jobs = 1) ?(lint = true) ?(seed = default_seed) ?(stats = false)
    ?(cache = true) ?cache_bound ?chunk () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  (match cache_bound with
  | Some n when n < 1 -> invalid_arg "Engine.create: cache_bound must be >= 1"
  | _ -> ());
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Engine.create: chunk must be >= 1"
  | _ -> ());
  if stats then Storage_obs.enable ();
  {
    jobs;
    lint;
    seed;
    stats;
    cache;
    cache_bound;
    chunk;
    lock = Mutex.create ();
    pool = None;
    slots = Hashtbl.create 8;
  }

(* One validation path for every spelling of a jobs count — the --jobs
   option converter in bin/ and the SSDEP_JOBS environment variable both
   call this, so they can never drift apart. *)
let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some _ | None ->
    Error
      (Printf.sprintf "invalid jobs count %S, expected a positive integer" s)

let jobs_env_var = "SSDEP_JOBS"

(* Unattended front ends share one bound: large enough that the CLI's
   design grids (hundreds of candidates x a few scenarios) never evict,
   small enough that streaming a million-design grid stays bounded. *)
let of_cli ?chunk ?(env = Sys.getenv_opt) ~jobs ~stats () =
  let resolved =
    match jobs with
    | Some n -> Ok n
    | None -> (
      match env jobs_env_var with
      | None -> Ok 1
      | Some raw -> (
        (* A malformed SSDEP_JOBS is a configuration error the caller
           must surface, never a silent serial fallback: a sweep that
           quietly ran serial because of a typo would look like a 4x
           perf regression. *)
        match parse_jobs raw with
        | Ok n -> Ok n
        | Error e -> Error (Printf.sprintf "%s: %s" jobs_env_var e)))
  in
  Result.map
    (fun jobs -> create ~jobs ~stats ~cache_bound:8192 ?chunk ())
    resolved

let jobs t = t.jobs
let lint t = t.lint
let seed t = t.seed
let stats t = t.stats
let cache t = t.cache
let cache_bound t = t.cache_bound
let chunk t = t.chunk

let locked t f = Mutex.protect t.lock f

let pool t =
  if t.jobs <= 1 then None
  else
    Some
      (locked t (fun () ->
           match t.pool with
           | Some p -> p
           | None ->
             let p = Storage_parallel.Pool.create ~jobs:t.jobs in
             t.pool <- Some p;
             p))

let shutdown t =
  let p = locked t (fun () ->
      let p = t.pool in
      t.pool <- None;
      p)
  in
  Option.iter Storage_parallel.Pool.shutdown p

let with_engine ?jobs ?lint ?seed ?stats f =
  let t = create ?jobs ?lint ?seed ?stats () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match pool t with
  | None -> List.map f xs
  | Some p -> Storage_parallel.Pool.map_on p f xs

let map_seq ?window ?chunk t f xs =
  match pool t with
  | None -> Seq.map f xs
  | Some p ->
    let chunk = match chunk with Some _ -> chunk | None -> t.chunk in
    Storage_parallel.Pool.map_seq ?window ?chunk p f xs

let slot t key ~default =
  locked t (fun () ->
      match Hashtbl.find_opt t.slots key.uid with
      | Some b -> (
        match key.proj b with
        | Some v -> v
        | None ->
          (* Unreachable: [uid]s are unique, so a binding stored under
             [key.uid] was built with [key.inj]. *)
          assert false)
      | None ->
        let v = default () in
        Hashtbl.replace t.slots key.uid (key.inj v);
        v)

let set_slot t key v =
  locked t (fun () -> Hashtbl.replace t.slots key.uid (key.inj v))
