(** A first-class execution context for the evaluation loops.

    The framework's outer loops — design-space search, sensitivity sweeps,
    portfolio evaluation, Monte-Carlo risk, failure-phase sweeps — share
    the same execution machinery: a {!Storage_parallel.Pool} of domains,
    a memoized evaluation cache, the static lint pre-filter policy, the
    {!Storage_obs} stats switch and a PRNG seed for stochastic stages.
    Threading those as per-call [?jobs]/[?cache]/[?lint] optional
    arguments does not scale past a handful of entry points (every new
    loop re-grows the triple); an [Engine.t] owns them once and is passed
    whole.

    Ownership and lifecycle:
    - The engine owns its domain pool. The pool is created lazily on the
      first parallel [map]/[map_seq] (so a [jobs = 1] engine never spawns
      a domain) and is reused across every subsequent batch until
      {!shutdown}.
    - The engine owns one {e slot} per typed key (see {!new_key}):
      higher layers stash their caches there — e.g.
      [Eval_cache.of_engine] — without this module depending on them.
      Slots are created on first use under the engine's mutex and live
      until the engine is garbage collected.
    - Lint policy, stats flag and seed are immutable configuration.

    Engines are cheap to create; [create ()] is the serial default used
    by every entry point when no engine is passed. All operations are
    domain-safe. *)

type t

val create :
  ?jobs:int ->
  ?lint:bool ->
  ?seed:int64 ->
  ?stats:bool ->
  ?cache:bool ->
  ?cache_bound:int ->
  ?chunk:int ->
  unit ->
  t
(** [create ()] is a serial engine: [jobs = 1], lint pre-filtering on,
    the framework's fixed default seed, stats off, caching on with an
    unbounded cache policy, auto-sized parallel chunks. Raises
    [Invalid_argument] when [jobs < 1], [cache_bound < 1] or
    [chunk < 1]. [~stats:true] additionally turns the global
    {!Storage_obs} registry on. [~cache:false] turns the evaluation
    memo-cache off entirely — one-shot sweeps over all-distinct grids
    get no hits from it, so they skip both the cache bookkeeping and the
    design fingerprinting that exists only to key it (see
    {!Storage_model.Design.fingerprint}). *)

val parse_jobs : string -> (int, string) result
(** Validates one spelling of a jobs count: a positive decimal integer.
    The single validation path behind both the [--jobs] option and the
    [SSDEP_JOBS] environment variable, so the two can never accept
    different languages. *)

val jobs_env_var : string
(** ["SSDEP_JOBS"]. *)

val of_cli :
  ?chunk:int ->
  ?env:(string -> string option) ->
  jobs:int option ->
  stats:bool ->
  unit ->
  (t, string) result
(** The one construction point for command-line front ends: routes
    [--jobs], [--chunk] and [--stats] into an engine with a bounded
    evaluation-cache policy suitable for unattended runs (see
    {!cache_bound}). [jobs = None] means "not given on the command
    line": the {!jobs_env_var} environment variable (read through [env],
    default [Sys.getenv_opt]) supplies the default, and a malformed
    value there is an [Error] naming the variable — a configuration
    error, never a silent serial fallback. An explicit [jobs = Some n]
    wins over the environment. *)

val with_engine :
  ?jobs:int -> ?lint:bool -> ?seed:int64 -> ?stats:bool -> (t -> 'a) -> 'a
(** [with_engine f] runs [f] with a fresh engine and shuts it down on the
    way out (including on exceptions). *)

val jobs : t -> int
val lint : t -> bool
(** Whether search/portfolio loops should statically pre-filter
    candidates with the design linter before evaluating them. *)

val seed : t -> int64
(** Seed for stochastic stages (Monte-Carlo risk). Fixed default, so
    results are reproducible unless the caller opts into another seed. *)

val stats : t -> bool

val cache : t -> bool
(** Whether evaluation loops should memoize (design, scenario) results
    at all. [false] is the right setting for one-shot sweeps whose
    candidates are all distinct: the cache cannot hit, so maintaining it
    (and fingerprinting every design to key it) is pure overhead. *)

val cache_bound : t -> int option
(** Advisory bound for caches attached to this engine: [Some n] caps an
    engine-owned evaluation cache at [n] entries (FIFO eviction) so that
    streaming over a million-design grid keeps cache memory O(bound);
    [None] (the [create] default) leaves it unbounded. [of_cli] engines
    are bounded. Irrelevant when {!cache} is [false]. *)

val chunk : t -> int option
(** Forced scheduling granularity for parallel maps: [Some c] makes
    every {!map_seq} batch deal contiguous [c]-element tasks to the
    domains; [None] (the default) auto-sizes chunks from the window and
    the pool size. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map e f xs] is [List.map f xs] computed on the engine's pool
    ([jobs = 1] short-circuits to [List.map]). Results are in input
    order; the first exception by input index is re-raised. *)

val map_seq :
  ?window:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a Seq.t -> 'b Seq.t
(** Streaming map over the engine's pool: see
    {!Storage_parallel.Pool.map_seq}. [?chunk] overrides the engine's
    configured {!chunk} for this call. [jobs = 1] short-circuits to
    [Seq.map]. *)

val shutdown : t -> unit
(** Stops and joins the engine's pool domains, if any were spawned.
    Idempotent; a later parallel [map] re-creates the pool. *)

(** {1 Typed slots}

    An engine carries arbitrary state for higher layers (caches,
    memo tables) without depending on their types: each layer mints a
    ['a key] once at module-init time and gets its own slot per engine.
    This inverts the dependency — [lib/engine] sits {e below} the model
    layer, yet an engine can own the model's evaluation cache. *)

type 'a key

val new_key : unit -> 'a key
(** A fresh key, distinct from every other key. Keys are cheap and are
    meant to be created once per use-site (at module initialization),
    not per call. *)

val slot : t -> 'a key -> default:(unit -> 'a) -> 'a
(** [slot e k ~default] returns the value stored under [k], creating it
    with [default ()] (under the engine mutex) on first use. *)

val set_slot : t -> 'a key -> 'a -> unit
(** Replaces the slot value — e.g. to attach a pre-warmed or
    specially-bounded cache before a run. *)
