type t = float (* dollars per second *)

let zero = 0.

let usd_per_sec x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg "Money_rate.usd_per_sec: negative or non-finite";
  x

let usd_per_hour x = usd_per_sec (x /. 3600.)
let to_usd_per_hour t = t *. 3600.
let to_usd_per_sec t = t
let charge t d = Money.usd (t *. Duration.to_seconds d)
let add a b = a +. b

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Money_rate.scale: negative or non-finite factor";
  k *. t

let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal
let pp ppf t = Fmt.pf ppf "$%.0f/hr" (to_usd_per_hour t)
let to_string t = Fmt.str "%a" pp t
