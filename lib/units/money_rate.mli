(** Money per unit time: penalty rates and capacity/bandwidth cost slopes.

    The paper expresses penalty rates in dollars per hour of outage or per
    hour of lost updates (both $50,000/hr in the case study). *)

type t

val zero : t

val usd_per_hour : float -> t
(** Raises [Invalid_argument] on negative or non-finite input. *)

val usd_per_sec : float -> t
val to_usd_per_hour : t -> float

val to_usd_per_sec : t -> float
(** The stored representation; [usd_per_sec (to_usd_per_sec t) = t]
    bit for bit, which the {!Storage_spec} writer relies on for lossless
    round-trips. *)

val charge : t -> Duration.t -> Money.t
(** [charge rate d] is the penalty for a duration [d]. *)

val add : t -> t -> t
val scale : float -> t -> t
val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
