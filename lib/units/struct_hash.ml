type t = { h0 : int64; h1 : int64 }

(* Two independently seeded 64-bit lanes, each an LCG step followed by the
   splitmix64 finalizer. One lane would already make accidental collisions
   vanishingly rare at cache scale; two keep the key width at 128 bits,
   matching the MD5 digests these hashes replaced, so the collision budget
   of the evaluation cache is unchanged. *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let step mult acc v = mix (Int64.add (Int64.mul acc mult) v)
let m0 = 0x9e3779b97f4a7c15L
let m1 = 0xc2b2ae3d27d4eb4fL
let init = { h0 = 0x5de493661e75a331L; h1 = 0x27220a95fe7b0d63L }
let int64 t v = { h0 = step m0 t.h0 v; h1 = step m1 t.h1 v }
let int t v = int64 t (Int64.of_int v)
let bool t v = int t (if v then 1 else 0)
let float t v = int64 t (Int64.bits_of_float v)

let string t s =
  let n = String.length s in
  let t = ref (int t n) in
  let i = ref 0 in
  while !i + 8 <= n do
    t := int64 !t (String.get_int64_le s !i);
    i := !i + 8
  done;
  let tail = ref 0L in
  while !i < n do
    tail := Int64.logor (Int64.shift_left !tail 8)
              (Int64.of_int (Char.code s.[!i]));
    incr i
  done;
  if n land 7 <> 0 then t := int64 !t !tail;
  !t

let option f t = function None -> int t 0 | Some v -> f (int t 1) v
let list f t xs = List.fold_left f (int t (List.length xs)) xs
let to_hex t = Printf.sprintf "%016Lx%016Lx" t.h0 t.h1
