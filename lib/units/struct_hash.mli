(** Allocation-light structural hashing for cache keys.

    A 128-bit accumulator folded over a value's structure by an explicit
    walker, replacing the Marshal + MD5 round-trip previously used for
    {!Design.fingerprint}-style canonical keys: no intermediate byte
    serialization is built, and each leaf costs a few integer multiplies.

    Walkers must feed every semantically significant leaf (and a tag for
    every variant constructor) so that structurally equal values hash equal
    and unequal ones almost surely do not. Floats are hashed by bit
    pattern, so [-0.] and [0.] differ — as they did under [Marshal]. *)

type t

val init : t
(** The fixed seed every walk starts from: hashes are stable within and
    across processes, making them usable as persistent cache keys. *)

val int : t -> int -> t
val int64 : t -> int64 -> t
val bool : t -> bool -> t

val float : t -> float -> t
(** Hashes the IEEE-754 bit pattern ([Int64.bits_of_float]). *)

val string : t -> string -> t
(** Length-prefixed, so concatenation boundaries cannot collide. *)

val option : (t -> 'a -> t) -> t -> 'a option -> t
val list : (t -> 'a -> t) -> t -> 'a list -> t
(** Length-prefixed fold of the walker over the elements. *)

val to_hex : t -> string
(** 32 lowercase hex characters (128 bits). *)
