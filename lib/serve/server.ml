open Storage_units
open Storage_model

(* Audited SA007 suppression: the daemon's lock/unlock pairs follow the
   queue-and-condition protocol (Condition.wait must run with the lock
   held and reacquires it on return), which Mutex.protect cannot
   express, and the listening socket deliberately outlives every
   binding that touches it. *)
[@@@sslint.allow "SA007"]

type config = {
  port : int;
  workers : int;
  queue_capacity : int;
  shards : int;
  max_body : int;
  timeout : float;
}

let default_config =
  {
    port = 8080;
    workers = 4;
    queue_capacity = 64;
    shards = 8;
    max_body = 1 lsl 20;
    timeout = 10.;
  }

type t = {
  cfg : config;
  engine : Storage_engine.t;
  caches : Eval_cache.t array;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  lock : Mutex.t;
  work : Condition.t;
  conns : Unix.file_descr Queue.t;
  mutable acceptor : unit Domain.t option;
  mutable handlers : unit Domain.t list;
  mutable stopped : bool;
}

(* --- metrics (registered once, names stable whether or not a server is
   running) --- *)

let obs_requests = Storage_obs.Counter.make "serve.requests"
let obs_bad_requests = Storage_obs.Counter.make "serve.bad_requests"
let obs_rejected = Storage_obs.Counter.make "serve.rejected_busy"
let obs_errors = Storage_obs.Counter.make "serve.errors"
let obs_request_time = Storage_obs.Timer.make "serve.request_seconds"

(* --- request handlers --- *)

let shard_for t design =
  let n = Array.length t.caches in
  t.caches.(Hashtbl.hash (Design.fingerprint design) mod n)

let json_body j = Storage_report.Json.to_string_pretty j ^ "\n"

let handle_evaluate t (req : Http.request) =
  match Storage_spec.Spec.design_of_string req.body with
  | Error e -> Http.error 400 e
  | Ok design -> (
    match Storage_spec.Spec.scenarios_of_string req.body with
    | Error e -> Http.error 400 e
    | Ok [] ->
      Http.error 400 "design defines no [scenario] sections to evaluate"
    | Ok scenarios ->
      let cache = shard_for t design in
      let named =
        List.map
          (fun (name, scenario) -> (name, Eval_cache.run cache design scenario))
          scenarios
      in
      (* Byte-identical to `ssdep evaluate --file ... --json`. *)
      Http.ok_json (json_body (Json_output.reports named)))

let handle_lint (req : Http.request) =
  match Storage_spec.Spec.design_of_string ~validate:false req.body with
  | Error e -> Http.error 400 e
  | Ok design ->
    let scenarios =
      match Storage_spec.Spec.scenarios_of_string req.body with
      | Ok scenarios -> scenarios
      | Error _ -> []
    in
    let found = Storage_lint.check ~scenarios design in
    Http.ok_json
      (json_body (Storage_lint.to_json ~design:design.Design.name found))

let handle_optimize t (req : Http.request) =
  let float_param name =
    match Http.query_param req name with
    | None -> Ok None
    | Some raw -> (
      match float_of_string_opt raw with
      | Some v when v > 0. -> Ok (Some v)
      | Some _ | None ->
        Error (Printf.sprintf "%s must be a positive number, got %S" name raw))
  in
  let int_param ~max name default =
    match Http.query_param req name with
    | None -> Ok default
    | Some raw -> (
      match int_of_string_opt raw with
      | Some v when v >= 1 && v <= max -> Ok v
      | Some _ | None ->
        Error (Printf.sprintf "%s must be an integer in [1, %d], got %S" name
                 max raw))
  in
  let ( let* ) r f = match r with Error e -> Http.error 400 e | Ok v -> f v in
  let* rto = float_param "rto" in
  let* rpo = float_param "rpo" in
  let* top_k =
    match Http.query_param req "top_k" with
    | None -> Ok None
    | Some _ -> Result.map Option.some (int_param ~max:1000 "top_k" 10)
  in
  (* The grid is O(scale^3) designs; a service must bound what one
     request can make it chew. *)
  let* grid_scale = int_param ~max:4 "grid_scale" 1 in
  let business =
    Business.make
      ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
      ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
      ?recovery_time_objective:(Option.map Duration.hours rto)
      ?recovery_point_objective:(Option.map Duration.hours rpo)
      ()
  in
  let kit = Storage_presets.Whatif.search_kit ~business () in
  let space = Storage_presets.Whatif.search_space ~scale:grid_scale () in
  let candidates = Storage_optimize.Candidate.enumerate kit space in
  let scenarios =
    [
      Storage_presets.Baseline.scenario_array;
      Storage_presets.Baseline.scenario_site;
    ]
  in
  let result =
    Storage_optimize.Search.run ~engine:t.engine ?top_k candidates scenarios
  in
  let body =
    Fmt.str "%a@." Storage_optimize.Search.pp result
    ^
    match top_k with
    | None -> ""
    | Some k ->
      Fmt.str "top %d feasible (of %d):@."
        (min k result.Storage_optimize.Search.feasible_count)
        result.Storage_optimize.Search.feasible_count
      ^ String.concat ""
          (List.mapi
             (fun i s ->
               Fmt.str "  %2d. %a@." (i + 1) Storage_optimize.Objective.pp s)
             result.Storage_optimize.Search.feasible)
  in
  Http.ok_text body

let handle_stats () = Http.ok_json (json_body (Storage_obs.snapshot ()))

let route t (req : Http.request) =
  match (req.meth, req.path) with
  | "GET", "/healthz" -> Http.ok_text "ok\n"
  | "GET", "/stats" -> handle_stats ()
  | "POST", "/evaluate" -> handle_evaluate t req
  | "POST", "/lint" -> handle_lint req
  | ("POST" | "GET"), "/optimize" -> handle_optimize t req
  | _, ("/healthz" | "/stats" | "/evaluate" | "/lint" | "/optimize") ->
    Http.error 405 (Printf.sprintf "method %s not allowed here" req.meth)
  | _, path -> Http.error 404 (Printf.sprintf "no such endpoint %S" path)

(* One broken request must never take the daemon (or even this worker)
   down: anything a handler throws becomes a 500. Anything, that is,
   except the fatal runtime conditions — turning Out_of_memory or
   Stack_overflow into an HTTP response would leave a wedged runtime
   serving traffic, and swallowing Sys.Break would make the daemon
   unkillable from a terminal. Those re-raise. *)
let guard_route f =
  try f () with
  | (Out_of_memory | Stack_overflow | Sys.Break) as fatal -> raise fatal
  | exn ->
    Storage_obs.Counter.incr obs_errors;
    Http.error 500 (Printexc.to_string exn)

let handle_connection t fd =
  (match Http.read_request ~max_body:t.cfg.max_body fd with
  | Error resp ->
    Storage_obs.Counter.incr obs_bad_requests;
    Http.write_response fd resp
  | Ok req ->
    Storage_obs.Counter.incr obs_requests;
    let resp =
      Storage_obs.Timer.time obs_request_time @@ fun () ->
      guard_route (fun () -> route t req)
    in
    Http.write_response fd resp);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- domains --- *)

let handler_loop t =
  let rec next () =
    (* Drain the queue even when stopping: every admitted connection
       gets an answer. *)
    match Queue.take_opt t.conns with
    | Some fd -> Some fd
    | None ->
      if Atomic.get t.stop_flag then None
      else begin
        Condition.wait t.work t.lock;
        next ()
      end
  in
  let rec loop () =
    Mutex.lock t.lock;
    let fd = next () in
    Mutex.unlock t.lock;
    match fd with
    | None -> ()
    | Some fd ->
      handle_connection t fd;
      loop ()
  in
  loop ()

let admit t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.timeout;
  Mutex.lock t.lock;
  if Queue.length t.conns >= t.cfg.queue_capacity then begin
    Mutex.unlock t.lock;
    (* Back-pressure: answer busy right here on the acceptor, so load
       beyond the bound costs one write, not unbounded queueing. *)
    Storage_obs.Counter.incr obs_rejected;
    Http.write_response fd (Http.error 429 "server busy, try again");
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    Queue.add fd t.conns;
    Condition.signal t.work;
    Mutex.unlock t.lock
  end

let acceptor_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (* Poll with a short select timeout so a stop request is noticed
         within ~200 ms without needing a wakeup pipe. *)
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> admit t fd
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let start ?(config = default_config) engine =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  if config.shards < 1 then invalid_arg "Server.start: shards must be >= 1";
  if config.max_body < 1 then invalid_arg "Server.start: max_body must be >= 1";
  if config.timeout <= 0. then invalid_arg "Server.start: timeout must be > 0";
  (* A service whose /stats endpoint is the observability story records
     by default. *)
  Storage_obs.enable ();
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port));
     Unix.listen listen_fd 128
   with
  | () -> ()
  | exception e ->
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let cache_bound = Storage_engine.cache_bound engine in
  let t =
    {
      cfg = config;
      engine;
      caches =
        Array.init config.shards (fun _ ->
            Eval_cache.create ?max_entries:cache_bound ());
      listen_fd;
      bound_port;
      stop_flag = Atomic.make false;
      lock = Mutex.create ();
      work = Condition.create ();
      conns = Queue.create ();
      acceptor = None;
      handlers = [];
      stopped = false;
    }
  in
  Storage_obs.gauge "serve.queue_depth" (fun () ->
      Mutex.lock t.lock;
      let depth = Queue.length t.conns in
      Mutex.unlock t.lock;
      float_of_int depth);
  t.handlers <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> handler_loop t));
  t.acceptor <- Some (Domain.spawn (fun () -> acceptor_loop t));
  t

let port t = t.bound_port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    (* Wake every sleeping handler; those mid-request finish first —
       [handler_loop] drains the queue before honouring the flag. *)
    Mutex.lock t.lock;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Option.iter Domain.join t.acceptor;
    t.acceptor <- None;
    List.iter Domain.join t.handlers;
    t.handlers <- [];
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end
