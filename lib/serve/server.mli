(** A long-lived evaluation service over a warm cache.

    One {!start} owns one {!Storage_engine.t} for its whole lifetime: a
    daemon amortizes engine construction, domain-pool spawning and —
    above all — evaluation caching across every request, so a repeated
    design answers from the {!Eval_cache} instead of re-walking the
    model. The cache is sharded by design fingerprint to keep concurrent
    requests off one mutex.

    Concurrency and back-pressure: an acceptor domain takes connections
    off the listening socket and hands them to a {e bounded} admission
    queue drained by [workers] handler domains. When the queue is full
    the acceptor answers [429 Too Many Requests] immediately and closes —
    load never turns into unbounded memory. Each connection carries
    kernel read/write timeouts ([SO_RCVTIMEO]/[SO_SNDTIMEO]), so a
    stalled client costs one worker at most [timeout] seconds. A
    malformed request is answered with a 4xx by {!Http} and never
    escapes as an exception: the daemon outlives its worst client.

    Endpoints (one request per connection, [Connection: close]):
    - [GET /healthz] — liveness probe, [200 ok].
    - [GET /stats] — the live {!Storage_obs} registry as JSON: request
      counters, latency histograms, cache hit/miss, queue depth.
    - [POST /evaluate] — body is a design-language file with [[scenario]]
      sections; the response is byte-identical to
      [ssdep evaluate --file ... --json] for the same input.
    - [POST /lint] — body is a design-language file; the response is the
      linter's JSON report ([ssdep lint --json]).
    - [POST /optimize] — design-space search over the baseline grid;
      query parameters [rto], [rpo] (hours), [top_k], [grid_scale].

    {!start} turns the {!Storage_obs} registry on: a service whose
    [/stats] endpoint is the observability story records by default. *)

type config = {
  port : int;  (** [0] picks an ephemeral port; see {!port}. *)
  workers : int;  (** handler domains draining the admission queue *)
  queue_capacity : int;
      (** admission-queue bound; beyond it clients get 429 *)
  shards : int;  (** evaluation-cache shards (by design fingerprint) *)
  max_body : int;  (** request-body byte limit (413 beyond) *)
  timeout : float;
      (** per-connection kernel read/write timeout, seconds *)
}

val default_config : config
(** Port 8080, 4 workers, a 64-connection queue, 8 cache shards, 1 MiB
    bodies, 10 s timeouts. *)

type t

val guard_route : (unit -> Http.response) -> Http.response
(** The worker-loop exception barrier: runs a request handler, turning
    anything it throws into a [500] so one broken request never takes a
    worker down — except the fatal runtime conditions [Out_of_memory],
    [Stack_overflow] and [Sys.Break], which re-raise. A wedged runtime
    must not keep serving traffic, and Ctrl-C must keep working.
    Exposed for the regression tests; {e not} part of the service's
    client-facing surface. *)

val start : ?config:config -> Storage_engine.t -> t
(** Binds [127.0.0.1:port], spawns the acceptor and worker domains and
    returns immediately. The engine must outlive the server; {!stop}
    does not shut it down (the caller owns it). Raises
    [Invalid_argument] on a non-positive [workers], [queue_capacity],
    [shards], [max_body] or [timeout], and lets [Unix.Unix_error]
    escape when the port cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port = 0]. *)

val stop : t -> unit
(** Graceful drain: stop accepting, answer every already-admitted
    connection, join all domains, close the listening socket.
    Idempotent. *)
