type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; content_type : string; body : string }

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let ok_json body = { status = 200; content_type = "application/json"; body }
let ok_text body = { status = 200; content_type = "text/plain"; body }

let error status msg =
  { status; content_type = "text/plain"; body = msg ^ "\n" }

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let query_param req name = List.assoc_opt name req.query

(* --- query-string decoding --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match (hex_val s.[i + 1], hex_val s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char b (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ ->
          Buffer.add_char b '%';
          go (i + 1))
      | c ->
        Buffer.add_char b c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
               Some
                 ( percent_decode (String.sub pair 0 i),
                   percent_decode
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

(* --- reading --- *)

(* Errors the reader can answer with; raised internally, never escapes
   [read_request]. *)
exception Reject of response

let reject status msg = raise (Reject (error status msg))

let read_chunk fd buf len =
  match Unix.read fd buf 0 len with
  | n -> n
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    ->
    reject 408 "timed out reading request"
  | exception Unix.Unix_error _ -> reject 400 "connection error while reading"

(* Find "\r\n\r\n" in [buf.[0 .. len-1]], returning the index just past
   it. *)
let find_header_end buf len =
  let rec go i =
    if i + 3 >= len then None
    else if
      Bytes.get buf i = '\r'
      && Bytes.get buf (i + 1) = '\n'
      && Bytes.get buf (i + 2) = '\r'
      && Bytes.get buf (i + 3) = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, [])
      | Some i ->
        ( String.sub target 0 i,
          parse_query
            (String.sub target (i + 1) (String.length target - i - 1)) )
    in
    (String.uppercase_ascii meth, path, query)
  | _ -> reject 400 "malformed request line"

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> reject 400 (Printf.sprintf "malformed header line %S" line)
  | Some i ->
    ( String.lowercase_ascii (String.sub line 0 i),
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let read_request ?(max_header = 16 * 1024) ~max_body fd =
  try
    (* Accumulate until the blank line that ends the header block; the
       read may run past it into the body — keep the excess. *)
    let buf = Bytes.create max_header in
    let chunk = Bytes.create 4096 in
    let filled = ref 0 in
    let header_end = ref None in
    while !header_end = None do
      (match find_header_end buf !filled with
      | Some e -> header_end := Some e
      | None ->
        if !filled >= max_header then
          reject 431 "request header block too large";
        let n = read_chunk fd chunk (min 4096 (max_header - !filled)) in
        if n = 0 then
          if !filled = 0 then reject 400 "empty request"
          else reject 400 "connection closed mid-header";
        Bytes.blit chunk 0 buf !filled n;
        filled := !filled + n)
    done;
    let header_end = Option.get !header_end in
    let head = Bytes.sub_string buf 0 (header_end - 4) in
    let meth, path, query, headers =
      match String.split_on_char '\n' head with
      | [] -> reject 400 "empty request"
      | request_line :: header_lines ->
        let strip_cr s =
          if s <> "" && s.[String.length s - 1] = '\r' then
            String.sub s 0 (String.length s - 1)
          else s
        in
        let meth, path, query = parse_request_line (strip_cr request_line) in
        let headers =
          List.filter_map
            (fun l ->
              let l = strip_cr l in
              if l = "" then None else Some (parse_header_line l))
            header_lines
        in
        (meth, path, query, headers)
    in
    (match List.assoc_opt "transfer-encoding" headers with
    | Some _ -> reject 501 "chunked transfer coding not supported"
    | None -> ());
    let content_length =
      match List.assoc_opt "content-length" headers with
      | None ->
        if meth = "POST" || meth = "PUT" then
          reject 411 "Content-Length required"
        else 0
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> n
        | Some _ | None -> reject 400 "malformed Content-Length")
    in
    if content_length > max_body then
      reject 413
        (Printf.sprintf "request body exceeds the %d-byte limit" max_body);
    let body = Buffer.create content_length in
    Buffer.add_subbytes body buf header_end (!filled - header_end);
    while Buffer.length body < content_length do
      let n =
        read_chunk fd chunk (min 4096 (content_length - Buffer.length body))
      in
      if n = 0 then reject 400 "connection closed mid-body";
      Buffer.add_subbytes body chunk 0 n
    done;
    (* Over-read past Content-Length (pipelined data) is ignored: one
       request per connection. *)
    let body = String.sub (Buffer.contents body) 0 content_length in
    Ok { meth; path; query; headers; body }
  with
  | Reject resp -> Error resp
  | (Out_of_memory | Stack_overflow | Sys.Break) as fatal ->
    (* A wedged runtime (or Ctrl-C) must not read as "bad client". *)
    raise fatal
  | _ -> Error (error 400 "malformed request")

(* --- writing --- *)

let write_response fd resp =
  let payload =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      resp.status (reason resp.status) resp.content_type
      (String.length resp.body) resp.body
  in
  let bytes = Bytes.of_string payload in
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error _ -> ()
  in
  go 0
