(** A minimal HTTP/1.1 reader and writer over [Unix] file descriptors.

    Just enough protocol for {!Server}: one request per connection
    ([Connection: close] on every response), [Content-Length] bodies
    only (no chunked transfer coding), percent-decoded query strings.
    Reading is bounded everywhere — header block, body size — so a
    malicious or broken client can cost at most the configured limits,
    and every malformed input maps to an error {e response}, never an
    exception: the daemon answers garbage with 4xx and lives on. *)

type request = {
  meth : string;  (** uppercased: ["GET"], ["POST"], ... *)
  path : string;  (** the target without its query string *)
  query : (string * string) list;
      (** decoded [k=v] pairs, in order of appearance *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = { status : int; content_type : string; body : string }

val reason : int -> string
(** The standard reason phrase for a status code (["OK"],
    ["Too Many Requests"], ...); ["Unknown"] for codes we never emit. *)

val ok_json : string -> response
val ok_text : string -> response

val error : int -> string -> response
(** A plain-text error response; the message gets a trailing newline. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option
(** First query parameter with the given name. *)

val read_request :
  ?max_header:int ->
  max_body:int ->
  Unix.file_descr ->
  (request, response) result
(** Reads one request from the descriptor. [Error resp] is the response
    to send back for anything short of a valid request: 400 for a
    malformed request line, header or truncated body, 408 when a read
    times out (the descriptor's [SO_RCVTIMEO] fires), 411 for a missing
    [Content-Length] on a method with a body, 413 when the declared body
    exceeds [max_body], 431 when the header block exceeds [max_header]
    (default 16 KiB), 501 for chunked transfer coding. Never raises —
    except the fatal runtime conditions ([Out_of_memory],
    [Stack_overflow], [Sys.Break]), which propagate rather than
    masquerade as a client error. *)

val write_response : Unix.file_descr -> response -> unit
(** Serializes the response with [Content-Length] and
    [Connection: close] headers and writes it fully. Write failures
    (client went away, [SO_SNDTIMEO] fired) are swallowed: the
    connection is about to be closed either way. *)
