(* The fuzz driver: corpus replay, then [budget] freshly generated cases
   judged by every oracle, with failures shrunk to minimal
   counterexamples and written back to the corpus.

   Determinism contract: the whole run is a pure function of (oracle
   list, corpus contents, session seed, budget). Per-case seeds are drawn
   from one splitmix64 stream seeded with the session seed, and every
   oracle is deterministic given its engines, so two runs with the same
   arguments produce byte-identical findings — the property the cram
   suite and CI smoke stage pin. No wall-clock cutoffs for the same
   reason; CI bounds the stage with an external timeout instead. *)

open Storage_workload
module Engine = Storage_engine

type finding = {
  entry : Corpus.entry;
  file : string option;  (** where the entry was written or read *)
  replayed : bool;  (** true when it came from the corpus, not generation *)
}

type outcome = {
  cases : int;  (** fresh cases generated and judged *)
  replayed : int;  (** corpus entries replayed *)
  fixed : int;  (** replayed entries whose oracle no longer fails *)
  findings : finding list;  (** chronological: replays first *)
}

let with_ctx ~engine f =
  (* The auxiliary engine gives parallel-invariance a genuinely
     multi-domain execution to compare against, whatever the session
     engine's job count. *)
  let aux = Engine.create ~jobs:(max 2 (Engine.jobs engine)) () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown aux)
    (fun () -> f { Oracle.engine; aux })

let check_entry ctx oracle (e : Corpus.entry) =
  oracle.Oracle.check ctx e.Corpus.design e.Corpus.scenarios

let replay_corpus ctx ~oracles ~log entries =
  List.fold_left
    (fun (replayed, fixed, findings) (path, (e : Corpus.entry)) ->
      match Oracle.find_in oracles e.Corpus.oracle with
      | None ->
        log
          (Printf.sprintf "%s: oracle %s not active, skipping" path
             e.Corpus.oracle);
        (replayed, fixed, findings)
      | Some oracle ->
        (match check_entry ctx oracle e with
        | Oracle.Fail message ->
          log (Printf.sprintf "%s: still failing (%s)" path message);
          ( replayed + 1,
            fixed,
            { entry = { e with Corpus.message }; file = Some path;
              replayed = true }
            :: findings )
        | Oracle.Pass | Oracle.Skip _ ->
          log (Printf.sprintf "%s: no longer failing" path);
          (replayed + 1, fixed + 1, findings)))
    (0, 0, []) entries

let shrunk_finding ctx oracle (case : Gen.case) message =
  let keep d =
    match oracle.Oracle.check ctx d case.Gen.scenarios with
    | Oracle.Fail _ -> true
    | Oracle.Pass | Oracle.Skip _ -> false
  in
  let design, shrink_steps = Shrink.minimize ~keep case.Gen.design in
  let message =
    if shrink_steps = 0 then message
    else begin
      match oracle.Oracle.check ctx design case.Gen.scenarios with
      | Oracle.Fail m -> m
      | Oracle.Pass | Oracle.Skip _ -> message (* unreachable: keep held *)
    end
  in
  {
    Corpus.oracle = oracle.Oracle.name;
    seed = case.Gen.seed;
    case_index = case.Gen.index;
    message;
    shrink_steps;
    design;
    scenarios = case.Gen.scenarios;
  }

let run ?(oracles = Oracle.defaults) ?corpus_dir ?(log = ignore) ~engine ~seed
    ~budget () =
  let corpus =
    match corpus_dir with
    | None -> Ok []
    | Some dir -> Corpus.load_dir dir
  in
  match corpus with
  | Error _ as err -> err
  | Ok entries ->
    with_ctx ~engine @@ fun ctx ->
    let replayed, fixed, replay_findings =
      replay_corpus ctx ~oracles ~log entries
    in
    let master = Prng.create ~seed in
    let fresh = ref [] in
    for index = 0 to budget - 1 do
      let case_seed = Prng.next_int64 master in
      let case = Gen.case ~seed:case_seed ~index in
      List.iter
        (fun oracle ->
          match oracle.Oracle.check ctx case.Gen.design case.Gen.scenarios with
          | Oracle.Pass | Oracle.Skip _ -> ()
          | Oracle.Fail message ->
            log
              (Printf.sprintf "case %d (seed 0x%Lx): %s failed" index
                 case_seed oracle.Oracle.name);
            let entry = shrunk_finding ctx oracle case message in
            let file =
              match corpus_dir with
              | None -> None
              | Some dir ->
                (match Corpus.write ~dir entry with
                | Ok path -> Some path
                | Error msg ->
                  log
                    (Printf.sprintf "cannot persist counterexample: %s" msg);
                  None)
            in
            fresh := { entry; file; replayed = false } :: !fresh)
        oracles
    done;
    Ok
      {
        cases = budget;
        replayed;
        fixed;
        findings = List.rev replay_findings @ List.rev !fresh;
      }

let replay ?(oracles = Oracle.all) ~engine path =
  match Corpus.load path with
  | Error _ as err -> err
  | Ok e ->
    (match Oracle.find_in oracles e.Corpus.oracle with
    | None -> Error (Printf.sprintf "unknown oracle %s" e.Corpus.oracle)
    | Some oracle ->
      with_ctx ~engine @@ fun ctx ->
      (match check_entry ctx oracle e with
      | Oracle.Fail message ->
        Ok
          (Some
             { entry = { e with Corpus.message }; file = Some path;
               replayed = true })
      | Oracle.Pass | Oracle.Skip _ -> Ok None))
