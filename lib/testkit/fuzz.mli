(** The fuzz driver: replays the failure corpus, then generates [budget]
    seeded cases, judges each against every active oracle, shrinks
    failures to minimal counterexamples and persists them.

    The whole run is a pure function of (oracles, corpus contents,
    session seed, budget): per-case seeds come from one splitmix64 stream
    and the oracles are deterministic given their engines, so two runs
    with the same arguments produce byte-identical findings. There are
    deliberately no wall-clock cutoffs — CI bounds its smoke stage with
    an external [timeout] instead. *)

type finding = {
  entry : Corpus.entry;
  file : string option;
      (** the corpus path the entry was written to (fresh findings with a
          corpus directory) or read from (replays); [None] otherwise *)
  replayed : bool;
      (** [true] when the finding came from corpus replay, not generation *)
}

type outcome = {
  cases : int;  (** fresh cases generated and judged *)
  replayed : int;  (** corpus entries replayed against their oracle *)
  fixed : int;  (** replayed entries whose oracle no longer fails *)
  findings : finding list;  (** chronological: replays first *)
}

val run :
  ?oracles:Oracle.t list ->
  ?corpus_dir:string ->
  ?log:(string -> unit) ->
  engine:Storage_engine.t ->
  seed:int64 ->
  budget:int ->
  unit ->
  (outcome, string) result
(** [oracles] defaults to {!Oracle.defaults}; without [corpus_dir]
    nothing is replayed or persisted. [Error] only on an unreadable
    corpus — oracle failures are findings, not errors. *)

val replay :
  ?oracles:Oracle.t list ->
  engine:Storage_engine.t ->
  string ->
  (finding option, string) result
(** Re-judges a single corpus file against its recorded oracle (looked up
    in [oracles], default {!Oracle.all}); [Ok None] when it no longer
    fails. *)
