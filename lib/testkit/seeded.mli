open Storage_model
open Storage_optimize

(** Shared seeded design pools: the single source of truth behind the
    "200 seeded designs" suites (test_parallel, test_engine, test_lint,
    test_random_designs) and the fuzzer's fallback corpus.

    All randomness is explicitly seeded: {!draw} reproduces the exact
    candidate list the historical hand-rolled [Random.State] loops
    produced for the same seed, so pre-existing regressions keep
    reproducing bit for bit. *)

val business : Business.t
(** The case study's $50,000/hr outage and loss penalties. *)

val kit : Candidate.kit
(** Cello workload on the baseline preset hardware. *)

val pool_space : Candidate.space
(** A moderate valid-design grid (the random-design suites' pool). *)

val lint_space : Candidate.space
(** The smaller grid the lint coincidence suite scales across the
    feasibility frontier. *)

val pool : unit -> Design.t list
(** [Candidate.enumerate kit pool_space], memoized. *)

val pool_again : unit -> Design.t list
(** A structurally identical but physically fresh enumeration — used by
    the fingerprint tests to show cache keys depend only on structure. *)

val lint_pool : unit -> Design.t list

val draw : seed:int array -> n:int -> Design.t list -> Design.t list
(** [draw ~seed ~n pool] samples [n] designs with repetition (duplicates
    deliberately exercise evaluation-cache dedup) using
    [Random.State.make seed], byte-compatible with the legacy test-suite
    loops. Raises [Invalid_argument] on an empty pool. *)

val scaled : factor:float -> Design.t -> Design.t
(** The design with its workload grown by [factor] (and "-x<factor>"
    appended to its name): sweeps a design across the lint feasibility
    frontier. *)
