(* The failure corpus: counterexamples persisted as replayable .ssdep
   files.

   An entry is the shrunk design and scenarios in the spec description
   language (so `ssdep evaluate` and `ssdep lint` can read them too),
   prefixed with `# key = value` header comments recording which oracle
   failed, under which per-case seed, and with what message. The header
   rides in comment lines, which Ini.parse ignores — a corpus file is a
   perfectly ordinary design file with provenance attached. *)

open Storage_model
module Spec = Storage_spec.Spec

type entry = {
  oracle : string;
  seed : int64;
  case_index : int;
  message : string;
  shrink_steps : int;
  design : Design.t;
  scenarios : (string * Scenario.t) list;
}

let filename e =
  Printf.sprintf "%s-case%d-0x%Lx.ssdep" e.oracle e.case_index e.seed

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string e =
  match Spec.design_to_string ~scenarios:e.scenarios e.design with
  | Error err -> Error err
  | Ok body ->
    Ok
      (String.concat "\n"
         [
           "# ssdep fuzz counterexample";
           Printf.sprintf "# oracle = %s" e.oracle;
           Printf.sprintf "# seed = 0x%Lx" e.seed;
           Printf.sprintf "# case = %d" e.case_index;
           Printf.sprintf "# shrink_steps = %d" e.shrink_steps;
           Printf.sprintf "# message = %s" (one_line e.message);
           "";
           body;
         ])

(* Header comments are stripped by Ini.parse, so we scan them here. *)
let header_field text key =
  let prefix = Printf.sprintf "# %s = " key in
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         if String.starts_with ~prefix line then
           Some
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
         else None)

let of_string text =
  let field key =
    match header_field text key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "corpus entry: missing '# %s = ...' header" key)
  in
  let int_field key of_string =
    Result.bind (field key) (fun v ->
        match of_string v with
        | n -> Ok n
        | exception Failure _ ->
          Error (Printf.sprintf "corpus entry: unreadable '# %s = %s'" key v))
  in
  Result.bind (field "oracle") @@ fun oracle ->
  Result.bind (int_field "seed" Int64.of_string) @@ fun seed ->
  Result.bind (int_field "case" int_of_string) @@ fun case_index ->
  Result.bind (int_field "shrink_steps" int_of_string) @@ fun shrink_steps ->
  Result.bind (field "message") @@ fun message ->
  (* validate:false — mutants straddling the feasibility frontier are
     exactly the designs worth keeping. *)
  Result.bind (Spec.design_of_string ~validate:false text) @@ fun design ->
  Result.bind (Spec.scenarios_of_string text) @@ fun scenarios ->
  Ok { oracle; seed; case_index; message; shrink_steps; design; scenarios }

let write ~dir e =
  match to_string e with
  | Error _ as err -> err
  | Ok text ->
    let path = Filename.concat dir (filename e) in
    (match
       (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text; output_char oc '\n'))
     with
    | () -> Ok path
    | exception Sys_error msg -> Error msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let load_dir dir =
  if not (Sys.file_exists dir) then Ok []
  else begin
    match Sys.readdir dir with
    | exception Sys_error msg -> Error msg
    | files ->
      let files =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".ssdep")
        |> List.sort String.compare
      in
      List.fold_left
        (fun acc file ->
          Result.bind acc (fun entries ->
              let path = Filename.concat dir file in
              match load path with
              | Ok e -> Ok ((path, e) :: entries)
              | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))
        (Ok []) files
      |> Result.map List.rev
  end
