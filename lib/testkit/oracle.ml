(* The oracle registry: differential and metamorphic checks over one
   generated case.

   Each oracle is a pure (given the engines) deterministic judgment:
   Pass, Fail with a message, or Skip when the case is outside the
   oracle's precondition (e.g. an invalid mutant handed to a
   simulation-agreement check). Tolerances are documented in TESTING.md;
   byte-identity checks marshal with No_sharing, the same convention the
   property suites use. *)

open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
open Storage_optimize
module Engine = Storage_engine
module Fleet = Storage_fleet.Fleet
module Json = Storage_report.Json

type verdict = Pass | Fail of string | Skip of string

type ctx = {
  engine : Engine.t;  (** the session engine every evaluation runs under *)
  aux : Engine.t;  (** a multi-domain engine for parallel-invariance *)
}

type t = {
  name : string;
  doc : string;
  check : ctx -> Design.t -> (string * Scenario.t) list -> verdict;
}

let failf fmt = Printf.ksprintf (fun m -> Fail m) fmt
let bytes_of x = Marshal.to_string x [ Marshal.No_sharing ]

let loss_seconds = function
  | Data_loss.Updates d -> Duration.to_seconds d
  | Data_loss.Entire_object -> Float.infinity

let eval_errors d scenarios =
  List.concat_map (fun (_, sc) -> (Evaluate.run d sc).Evaluate.errors) scenarios

let rec first_failure f = function
  | [] -> Pass
  | x :: rest -> (match f x with Pass -> first_failure f rest | v -> v)

(* --- lint-reject <=> evaluate-raise coincidence --- *)

let lint_coincidence =
  {
    name = "lint-coincidence";
    doc =
      "Lint.accepts iff Design.validate; per scenario, lint errors empty \
       iff Evaluate.run reports no errors";
    check =
      (fun _ d scenarios ->
        let accepts = Storage_lint.accepts d in
        let validates = Result.is_ok (Design.validate d) in
        if accepts <> validates then
          failf "Lint.accepts = %b but Design.validate ok = %b" accepts
            validates
        else
          first_failure
            (fun (name, sc) ->
              let lint_clean =
                Storage_lint.errors
                  (Storage_lint.check ~scenarios:[ (name, sc) ] d)
                = []
              in
              let eval_clean = (Evaluate.run d sc).Evaluate.errors = [] in
              if lint_clean = eval_clean then Pass
              else
                failf
                  "scenario %s: lint %s but evaluation %s" name
                  (if lint_clean then "is clean" else "has errors")
                  (if eval_clean then "is clean" else "has errors"))
            scenarios);
  }

(* --- cached == uncached --- *)

let cache_invariance =
  {
    name = "cache-invariance";
    doc =
      "Eval_cache.run is byte-identical to Evaluate.run, and a cache hit \
       returns the physically stored report";
    check =
      (fun _ d scenarios ->
        let cache = Eval_cache.create () in
        first_failure
          (fun (name, sc) ->
            let direct = Evaluate.run d sc in
            let cached = Eval_cache.run cache d sc in
            if not (String.equal (bytes_of direct) (bytes_of cached)) then
              failf "scenario %s: cached report differs from direct" name
            else if not (Eval_cache.run cache d sc == cached) then
              failf "scenario %s: cache hit is not physically shared" name
            else Pass)
          scenarios);
  }

(* --- streaming == materialized --- *)

let stream_vs_materialized =
  {
    name = "stream-vs-materialized";
    doc =
      "Search.run (streaming, engine) is byte-identical to the \
       materialized reference loop on the case's singleton grid";
    check =
      (fun ctx d scenarios ->
        let scs = List.map snd scenarios in
        let streaming = Search.run ~engine:ctx.engine (Seq.return d) scs in
        let materialized = Search.run_materialized [ d ] scs in
        if String.equal (bytes_of streaming) (bytes_of materialized) then Pass
        else Fail "streaming search differs from the materialized loop");
  }

(* --- parallel == serial --- *)

let parallel_invariance =
  {
    name = "parallel-invariance";
    doc =
      "Objective.summarize and Search.run are byte-identical between a \
       serial and a multi-domain engine";
    check =
      (fun ctx d scenarios ->
        let scs = List.map snd scenarios in
        let serial_summary = Objective.summarize d scs in
        let par_summary = Objective.summarize ~engine:ctx.aux d scs in
        if not (String.equal (bytes_of serial_summary) (bytes_of par_summary))
        then Fail "summarize differs between serial and parallel engines"
        else begin
          (* Duplicates exercise the cache dedup under parallelism. *)
          let grid () = List.to_seq [ d; d; d ] in
          let serial = Search.run (grid ()) scs in
          let par = Search.run ~engine:ctx.aux (grid ()) scs in
          if String.equal (bytes_of serial) (bytes_of par) then Pass
          else Fail "search differs between serial and parallel engines"
        end);
  }

(* --- chunked-parallel == serial across chunk sizes --- *)

let chunk_invariance =
  {
    name = "chunk-invariance";
    doc =
      "Search.run over a replicated grid is byte-identical to serial for \
       forced chunk sizes 1, 7, the pool window and one past the grid";
    check =
      (fun ctx d scenarios ->
        let scs = List.map snd scenarios in
        (* Enough copies that chunk sizes 1 and 7 produce several tasks
           per batch; the cache dedup keeps the evaluation cost at one
           design. *)
        let copies = 12 in
        let grid () = List.to_seq (List.init copies (fun _ -> d)) in
        let serial = Search.run (grid ()) scs in
        let jobs = Engine.jobs ctx.aux in
        first_failure
          (fun chunk ->
            let engine = Engine.create ~jobs ~chunk () in
            let par =
              Fun.protect
                ~finally:(fun () -> Engine.shutdown engine)
                (fun () -> Search.run ~engine (grid ()) scs)
            in
            if String.equal (bytes_of serial) (bytes_of par) then Pass
            else
              failf
                "chunk %d: chunked-parallel search differs from serial" chunk)
          [ 1; 7; 512 * jobs; copies + 1 ]);
  }

(* --- analytic model vs discrete-event simulation --- *)

let analytic_vs_sim =
  {
    name = "analytic-vs-sim";
    doc =
      "simulated data loss within the analytic worst case (+1 s) and \
       simulated recovery time within the documented tolerance band of \
       the analytic estimate, for now-targets on valid designs";
    check =
      (fun _ d scenarios ->
        if eval_errors d scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let now_scenarios =
            List.filter
              (fun (_, (sc : Scenario.t)) ->
                Duration.is_zero sc.Scenario.target_age)
              scenarios
          in
          if now_scenarios = [] then Skip "no now-target scenario"
          else begin
            let h = d.Design.hierarchy in
            let worst_lag_s =
              List.fold_left
                (fun acc j ->
                  Float.max acc (Duration.to_seconds (Hierarchy.worst_lag h j)))
                0.
                (List.init (Hierarchy.length h - 1) (fun i -> i + 1))
            in
            let warmup =
              Duration.seconds
                (Float.max
                   (Duration.to_seconds (Duration.weeks 10.))
                   (1.25 *. worst_lag_s))
            in
            let config =
              { Storage_sim.Sim.warmup; log = false; outage = None;
                record_events = false }
            in
            first_failure
              (fun (name, sc) ->
                let model = Evaluate.run d sc in
                let m = Storage_sim.Sim.run ~config d sc in
                let model_loss =
                  loss_seconds model.Evaluate.data_loss.Data_loss.loss
                in
                let sim_loss = loss_seconds m.Storage_sim.Sim.data_loss in
                if sim_loss > model_loss +. 1. then
                  failf
                    "scenario %s: simulated loss %.1f s exceeds the \
                     analytic worst case %.1f s"
                    name sim_loss model_loss
                else begin
                  match m.Storage_sim.Sim.recovery_time with
                  | None -> Pass
                  | Some rt ->
                    let sim_rt = Duration.to_seconds rt in
                    let model_rt =
                      Duration.to_seconds model.Evaluate.recovery_time
                    in
                    (* One-sided factor-of-two bound (plus 600 s absolute
                       floor for tiny designs), calibrated empirically —
                       see TESTING.md. The analytic estimate is
                       conservative by construction (worst-phase
                       retrieval point, worst-case bandwidth contention,
                       the known 0.7 h Table 6 transfer-term offset), so
                       the simulation beating it is expected — near the
                       feasibility frontier by an unbounded factor. The
                       strict execution lagging it comes only from
                       in-flight batch cycles and spare-delivery
                       serialization (observed up to +20%); more than 2x
                       means a unit error or a dropped term. *)
                    if sim_rt > (2. *. model_rt) +. 600. then
                      failf
                        "scenario %s: simulated recovery %.1f s is more \
                         than twice the analytic estimate %.1f s"
                        name sim_rt model_rt
                    else Pass
                end)
              now_scenarios
          end
        end);
  }

(* --- metamorphic monotonicity laws --- *)

let halve_window (s : Schedule.t) =
  let acc' = Duration.scale 0.5 s.Schedule.full.Schedule.accumulation in
  if Duration.compare s.Schedule.full.Schedule.propagation acc' > 0 then None
  else begin
    match
      Schedule.windows ~acc:acc' ~prop:s.Schedule.full.Schedule.propagation
        ~hold:s.Schedule.full.Schedule.hold ()
    with
    | w -> Shrink.remake_schedule s ~full:w
             ~retention_count:s.Schedule.retention_count
    | exception Invalid_argument _ -> None
  end

let monotone_shorter_window =
  {
    name = "monotone-shorter-window";
    doc =
      "halving a level's accumulation window never worsens now-target \
       data loss (shorter backup windows mean fresher retrieval points)";
    check =
      (fun _ d scenarios ->
        let now_scenarios =
          List.filter
            (fun (_, (sc : Scenario.t)) ->
              Duration.is_zero sc.Scenario.target_age)
            scenarios
        in
        if now_scenarios = [] then Skip "no now-target scenario"
        else if eval_errors d now_scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let levels = Hierarchy.levels d.Design.hierarchy in
          let variants =
            List.filter_map
              (fun i ->
                Shrink.map_level d i (fun level ->
                    match Shrink.schedule_of level.Hierarchy.technique with
                    | None -> None
                    | Some s ->
                      (match halve_window s with
                      | None -> None
                      | Some s' ->
                        (match
                           Shrink.with_schedule level.Hierarchy.technique s'
                         with
                        | None -> None
                        | Some technique ->
                          Some { level with Hierarchy.technique })))
                |> Option.map (fun v -> (i, v)))
              (List.init (List.length levels) Fun.id)
          in
          if variants = [] then Skip "no level with a halvable window"
          else
            first_failure
              (fun (i, variant) ->
                if eval_errors variant now_scenarios <> [] then Pass
                  (* the tightened schedule no longer fits; vacuous *)
                else
                  first_failure
                    (fun (name, sc) ->
                      let before =
                        loss_seconds
                          (Evaluate.run d sc).Evaluate.data_loss.Data_loss.loss
                      in
                      let after =
                        loss_seconds
                          (Evaluate.run variant sc).Evaluate.data_loss
                            .Data_loss.loss
                      in
                      if after <= before +. 1. then Pass
                      else
                        failf
                          "scenario %s: halving level %d's window worsened \
                           loss from %.1f s to %.1f s"
                          name i before after)
                    now_scenarios)
              variants
        end);
  }

let boost_bandwidth (dev : Device.t) =
  if Device.is_capacity_only dev then dev
  else
    Device.make ~name:dev.Device.name ~location:dev.Device.location
      ~max_capacity_slots:dev.Device.max_capacity_slots
      ~slot_capacity:dev.Device.slot_capacity
      ~max_bandwidth_slots:dev.Device.max_bandwidth_slots
      ~slot_bandwidth:(Rate.scale 2. dev.Device.slot_bandwidth)
      ~enclosure_bandwidth:(Rate.scale 2. dev.Device.enclosure_bandwidth)
      ~access_delay:dev.Device.access_delay ~cost:dev.Device.cost
      ~spare:dev.Device.spare ~remote_spare:dev.Device.remote_spare ()

let monotone_bandwidth =
  {
    name = "monotone-bandwidth";
    doc =
      "doubling every device's bandwidth never worsens recovery time";
    check =
      (fun _ d scenarios ->
        if eval_errors d scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let levels = Hierarchy.levels d.Design.hierarchy in
          let boosted =
            Shrink.rebuild d
              (List.map
                 (fun (level : Hierarchy.level) ->
                   { level with
                     Hierarchy.device = boost_bandwidth level.Hierarchy.device
                   })
                 levels)
          in
          match boosted with
          | None -> Skip "boosted hierarchy rejected"
          | Some boosted ->
            if eval_errors boosted scenarios <> [] then
              Skip "boosted design does not evaluate cleanly"
            else
              first_failure
                (fun (name, sc) ->
                  let before =
                    Duration.to_seconds (Evaluate.run d sc).Evaluate.recovery_time
                  in
                  let after =
                    Duration.to_seconds
                      (Evaluate.run boosted sc).Evaluate.recovery_time
                  in
                  if after <= before +. 1. then Pass
                  else
                    failf
                      "scenario %s: doubling bandwidth worsened recovery \
                       from %.1f s to %.1f s"
                      name before after)
                scenarios
        end);
  }

let monotone_cost =
  {
    name = "monotone-cost";
    doc = "outlays are monotone in workload capacity (2x growth)";
    check =
      (fun _ d scenarios ->
        if eval_errors d scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let grown =
            Design.make ~name:d.Design.name
              ~workload:(Workload.grow d.Design.workload ~factor:2.)
              ~hierarchy:d.Design.hierarchy ~business:d.Design.business ()
          in
          if eval_errors grown scenarios <> [] then
            Skip "grown design no longer fits"
          else
            first_failure
              (fun (name, sc) ->
                let before =
                  Money.to_usd (Evaluate.run d sc).Evaluate.outlays.Cost.total
                in
                let after =
                  Money.to_usd
                    (Evaluate.run grown sc).Evaluate.outlays.Cost.total
                in
                if after >= before -. 0.01 then Pass
                else
                  failf
                    "scenario %s: doubling the workload shrank outlays \
                     from $%.2f to $%.2f"
                    name before after)
              scenarios
        end);
  }

(* --- fleet Monte Carlo degenerates to the single-failure simulator --- *)

let fleet_degenerate =
  {
    name = "fleet-degenerate";
    doc =
      "a fleet trial whose sampled trace has exactly one failure event \
       reproduces the phase-aligned single-scenario simulator verbatim \
       (outage, loss accounting, rebuild list)";
    check =
      (fun _ d scenarios ->
        if eval_errors d scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let horizon = Duration.years 5. in
          let horizon_s = Duration.to_seconds horizon in
          let one_event seed =
            match Fleet.sample_events ~horizon ~seed d with
            | [ e ] -> Some (seed, e)
            | _ -> None
          in
          let candidates =
            List.init 64 (fun i -> Int64.add 0xCA5CADEL (Int64.of_int i))
          in
          match List.find_map one_event candidates with
          | None -> Skip "no candidate seed samples a one-event trace"
          | Some (seed, e) ->
            let trial = Fleet.run_trial ~horizon ~seed ~index:0 d in
            let m = Fleet.single_event_measured d e in
            (* The reduction, recomputed here independently of run_trial:
               an unrecoverable failure is down (and lost) until the end
               of the horizon; a source at level 0 needs no transfer; a
               priced recovery is the outage and the one rebuild. *)
            let expected_outage_s, expected_losses, expected_rebuilds =
              match
                (m.Storage_sim.Sim.source_level,
                 m.Storage_sim.Sim.recovery_time)
              with
              | None, _ ->
                (horizon_s -. Duration.to_seconds e.Scenario.at, 1, [])
              | Some 0, _ | Some _, None -> (0., 0, [])
              | Some _, Some rt -> (Duration.to_seconds rt, 0, [ rt ])
            in
            let expected_outage_s = Float.min expected_outage_s horizon_s in
            let expected_bytes =
              match m.Storage_sim.Sim.data_loss with
              | Data_loss.Updates dur ->
                if Duration.is_zero dur then Size.zero
                else Workload.unique_bytes d.Design.workload dur
              | Data_loss.Entire_object ->
                d.Design.workload.Workload.data_capacity
            in
            let secs = Duration.to_seconds in
            if trial.Fleet.failures <> 1 then
              failf "trial reports %d failures for a one-event trace"
                trial.Fleet.failures
            else if secs trial.Fleet.outage <> expected_outage_s then
              failf "trial outage %.3f s, single-scenario reduction %.3f s"
                (secs trial.Fleet.outage) expected_outage_s
            else if trial.Fleet.losses <> expected_losses then
              failf "trial losses %d, single-scenario reduction %d"
                trial.Fleet.losses expected_losses
            else if
              not (Size.equal trial.Fleet.bytes_lost expected_bytes)
            then
              failf "trial lost %s, single-scenario reduction %s"
                (Fmt.str "%a" Size.pp trial.Fleet.bytes_lost)
                (Fmt.str "%a" Size.pp expected_bytes)
            else if
              List.map secs trial.Fleet.rebuilds
              <> List.map secs expected_rebuilds
            then failf "trial rebuild list differs from the reduction"
            else Pass
        end);
  }

(* --- fleet report is schedule-independent --- *)

let fleet_jobs_invariance =
  {
    name = "fleet-jobs-invariance";
    doc =
      "Fleet.run's JSON report is byte-identical between the session \
       engine and the multi-domain engine (trial order, not dispatch \
       schedule, determines the aggregate)";
    check =
      (fun ctx d scenarios ->
        if eval_errors d scenarios <> [] then
          Skip "design does not evaluate cleanly"
        else begin
          let config = Fleet.config ~trials:8 ~horizon_years:1. () in
          let render engine =
            Json.to_string (Fleet.to_json (Fleet.run ~engine ~config d))
          in
          if String.equal (render ctx.engine) (render ctx.aux) then Pass
          else
            Fail "fleet report differs between serial and parallel engines"
        end);
  }

(* --- solver methods match exhaustive search --- *)

let solver_exhaustive_equivalence =
  (* A grid small enough to exhaust on every case (11 points: both PiT
     kinds x 2 accumulations x 2 backup windows, plus 3 mirror bundles)
     yet spanning both families, so family-boundary moves and both prune
     types are exercised. The annealing budget of 4x the grid makes the
     sweep chain provably exhaustive — equality with grid search is an
     exact judgment, not a heuristic one. *)
  let space =
    {
      Candidate.pit_techniques = [ `Split_mirror; `Snapshot ];
      pit_accumulations = [ Duration.hours 6.; Duration.hours 12. ];
      pit_retentions = [ 2 ];
      backup_accumulations = [ Duration.hours 24.; Duration.weeks 1. ];
      backup_retention_horizon = Duration.weeks 4.;
      vault_accumulations = [ Duration.weeks 4. ];
      vault_retention_horizon = Duration.years 1.;
      mirror_links = [ 1; 2; 4 ];
    }
  in
  {
    name = "solver-exhaustive-equivalence";
    doc =
      "on a small grid under the case's workload and business \
       requirements, annealing at exhaustive budget and branch-and-bound \
       both reach the exhaustive grid optimum exactly — or all three \
       methods agree the grid holds no feasible design";
    check =
      (fun ctx d scenarios ->
        let kit =
          {
            Seeded.kit with
            Candidate.workload = d.Design.workload;
            business = d.Design.business;
          }
        in
        let scenarios = List.map snd scenarios in
        let budget = 4 * Candidate.point_count space in
        let run method_ =
          Solver.run ~engine:ctx.engine ~budget ~seed:0x5EED5EEDL ~method_ kit
            space scenarios
        in
        let grid = run Solver.Grid in
        let anneal = run Solver.Anneal in
        let bnb = run Solver.Bnb in
        let cost (r : Solver.result) =
          Option.map
            (fun (s : Objective.summary) -> s.Objective.worst_total_cost)
            r.Solver.best
        in
        let agree name r =
          match (cost grid, cost r) with
          | None, None -> Pass
          | Some g, Some s when Money.compare g s = 0 -> Pass
          | Some g, Some s ->
            failf "%s best %s differs from exhaustive optimum %s" name
              (Money.to_string s) (Money.to_string g)
          | Some g, None ->
            failf "%s found nothing feasible; exhaustive optimum is %s" name
              (Money.to_string g)
          | None, Some s ->
            failf
              "%s claims a feasible design at %s on a grid exhaustive \
               search proves infeasible"
              name (Money.to_string s)
        in
        match agree "anneal" anneal with
        | Pass -> agree "bnb" bnb
        | v -> v);
  }

(* --- harness self-test --- *)

let self_test_fail =
  {
    name = "self-test-fail";
    doc =
      "fails on every case by construction — exercises the counterexample \
       pipeline (shrinking, corpus, replay); excluded from the defaults";
    check = (fun _ _ _ -> Fail "self-test oracle fails by construction");
  }

let defaults =
  [
    lint_coincidence;
    cache_invariance;
    stream_vs_materialized;
    parallel_invariance;
    chunk_invariance;
    monotone_shorter_window;
    monotone_bandwidth;
    monotone_cost;
    analytic_vs_sim;
    fleet_degenerate;
    fleet_jobs_invariance;
    solver_exhaustive_equivalence;
  ]

let all = defaults @ [ self_test_fail ]
let find_in oracles name = List.find_opt (fun o -> String.equal o.name name) oracles
let find name = find_in all name
