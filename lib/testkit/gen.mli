open Storage_model
open Storage_workload

(** Seeded, splitmix64-driven generators for fuzz cases.

    A case is a design plus the named failure scenarios to judge it
    under. Designs come in two kinds: {e valid by construction} (drawn
    through {!Storage_optimize.Candidate.enumerate}, so they pass
    [Design.validate]) and {e boundary-biased mutants} — the same designs
    with their workload grown by a factor chosen to straddle the lint
    feasibility frontier, so oracles see barely-valid and barely-invalid
    inputs in roughly equal measure.

    Everything is a pure function of the 64-bit seed: same seed, same
    case, on any machine. *)

type kind =
  | Valid  (** passes [Design.validate] by construction *)
  | Mutant of float
      (** workload grown by the factor; validity deliberately uncertain *)

type case = {
  index : int;  (** position in the fuzz run *)
  seed : int64;  (** the per-case seed that regenerates it *)
  kind : kind;
  design : Design.t;
  scenarios : (string * Scenario.t) list;
}

val workload : Prng.t -> Workload.t
(** A random but well-formed workload: log-uniform capacity, consistent
    access/update rates, a volume-monotone three-point batch curve. *)

val design : Prng.t -> Design.t
(** A valid design over the baseline hardware kit with a random workload
    and random policy parameters; falls back to the deterministic
    {!Seeded.pool} if the drawn workload fits no candidate. *)

val frontier_factor : Design.t -> float option
(** The workload growth factor (within [0.25, 64]) at which the design
    stops validating, by geometric bisection; [None] if it still
    validates at 64x. *)

val mutant : Prng.t -> Design.t -> Design.t * float
(** A boundary-biased scaled variant of the design and the factor used. *)

val scenarios : Prng.t -> Design.t -> (string * Scenario.t) list
(** Array-failure and site-disaster scenarios for the design's primary
    device (plus, sometimes, an aged user-error rollback). *)

val case : seed:int64 -> index:int -> case
(** The deterministic case for a per-case seed. *)
