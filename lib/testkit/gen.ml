(* Seeded generators for fuzz cases.

   All randomness flows from one [Prng.t] (splitmix64) per case, so a
   (seed, index) pair fully determines the generated design, its mutation
   factor and its scenarios — across runs, machines and job counts. *)

open Storage_units
open Storage_workload
open Storage_device
open Storage_model
open Storage_optimize

type kind = Valid | Mutant of float

type case = {
  index : int;
  seed : int64;
  kind : kind;
  design : Design.t;
  scenarios : (string * Scenario.t) list;
}

let choose rng xs = List.nth xs (Prng.int rng (List.length xs))
let log_uniform rng lo hi = Float.exp (Prng.float_range rng (Float.log lo) (Float.log hi))

let workload rng =
  let cap_gib = log_uniform rng 50. 1500. in
  let update_kib = Prng.float_range rng 100. 1200. in
  let access_kib = update_kib *. Prng.float_range rng 1.2 4. in
  let burst = Prng.float_range rng 2. 16. in
  (* A decreasing three-point unique-update curve. The ratios keep the
     written volume (rate x window) non-decreasing in the window, which
     Batch_curve.of_samples requires. *)
  let r1 = update_kib *. Prng.float_range rng 0.6 0.95 in
  let r3 = r1 *. Prng.float_range rng 0.35 0.9 in
  let r2 = Float.sqrt (r1 *. r3) in
  Workload.make ~name:"fuzz"
    ~data_capacity:(Size.gib cap_gib)
    ~avg_access_rate:(Rate.kib_per_sec access_kib)
    ~avg_update_rate:(Rate.kib_per_sec update_kib)
    ~burst_multiplier:burst
    ~batch_curve:
      (Batch_curve.of_samples
         [
           (Duration.minutes 1., Rate.kib_per_sec r1);
           (Duration.hours 12., Rate.kib_per_sec r2);
           (Duration.weeks 1., Rate.kib_per_sec r3);
         ])

let space rng =
  {
    Candidate.pit_techniques = [ choose rng [ `Split_mirror; `Snapshot ] ];
    pit_accumulations =
      [ choose rng [ Duration.hours 6.; Duration.hours 12.; Duration.hours 24. ] ];
    pit_retentions = [ choose rng [ 2; 3; 4 ] ];
    backup_accumulations =
      [ choose rng [ Duration.hours 24.; Duration.hours 48.; Duration.weeks 1. ] ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ choose rng [ Duration.weeks 1.; Duration.weeks 4. ] ];
    vault_retention_horizon = Duration.years 1.;
    mirror_links = [ choose rng [ 1; 2; 4; 8 ] ];
  }

let design rng =
  (* Valid by construction: Candidate.enumerate only yields designs that
     pass Design.validate. A heavy random workload can empty the
     (singleton) grid, so retry with fresh draws, falling back to the
     deterministic seeded pool. *)
  let rec attempt tries =
    if tries = 0 then choose rng (Seeded.pool ())
    else begin
      let kit = { Seeded.kit with Candidate.workload = workload rng } in
      match List.of_seq (Candidate.enumerate kit (space rng)) with
      | [] -> attempt (tries - 1)
      | designs -> choose rng designs
    end
  in
  attempt 8

let frontier_factor d =
  (* The workload growth factor at which the design stops validating —
     the lint feasibility frontier, located by geometric bisection. *)
  let valid_at f = Result.is_ok (Design.validate (Seeded.scaled ~factor:f d)) in
  let lo = 0.25 and hi = 64. in
  if valid_at hi then None
  else if not (valid_at lo) then Some lo
  else begin
    let rec bisect lo hi n =
      if n = 0 then Some hi
      else begin
        let mid = Float.sqrt (lo *. hi) in
        if valid_at mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
      end
    in
    bisect lo hi 12
  end

let mutant rng base =
  let factor =
    match frontier_factor base with
    | Some f when Prng.float rng < 0.7 ->
      (* Boundary-biased: straddle the frontier so roughly half the
         mutants are barely valid and half barely invalid. *)
      f *. Prng.float_range rng 0.85 1.15
    | _ -> log_uniform rng 0.25 64.
  in
  (Seeded.scaled ~factor base, factor)

let scenarios rng d =
  let primary = List.hd (Design.devices d) in
  let site = Location.site primary.Device.location in
  let base =
    [
      ("array-failure", Scenario.now (Location.Device primary.Device.name));
      ("site-disaster", Scenario.now (Location.Site site));
    ]
  in
  if Prng.float rng < 0.3 then
    base
    @ [
        ( "user-error",
          Scenario.make ~scope:Location.Data_object
            ~target_age:(Duration.hours (Prng.float_range rng 0. 48.))
            ~object_size:(Size.mib 1.) () );
      ]
  else base

let case ~seed ~index =
  let rng = Prng.create ~seed in
  let mutate = Prng.float rng >= 0.65 in
  let base = design rng in
  let kind, d =
    if mutate then begin
      let d, factor = mutant rng base in
      (Mutant factor, d)
    end
    else (Valid, base)
  in
  { index; seed; kind; design = d; scenarios = scenarios rng d }
