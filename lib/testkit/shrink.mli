open Storage_protection
open Storage_hierarchy
open Storage_model

(** Greedy shrinking of counterexample designs toward a minimal
    reproduction: drop protection-hierarchy levels (deepest first), halve
    the workload, collapse burstiness and the batch curve, halve
    retention counts. Every candidate passes [Hierarchy.make] /
    [Workload.make], so shrinking never proposes a structurally malformed
    design. Fully deterministic. *)

val candidates : Design.t -> Design.t list
(** The one-step simplifications of a design, most aggressive first. *)

val minimize :
  ?max_steps:int -> keep:(Design.t -> bool) -> Design.t -> Design.t * int
(** [minimize ~keep d] greedily applies the first candidate for which
    [keep] still holds (i.e. the counterexample still fails its oracle)
    until none does or [max_steps] (default 64) simplifications were
    taken. Returns the shrunk design and the number of steps. [keep d]
    itself is assumed true and is not re-checked. *)

(** {2 Hierarchy-editing helpers}

    Shared with the metamorphic oracles, which perturb one schedule at a
    time. *)

val schedule_of : Technique.t -> Schedule.t option
val with_schedule : Technique.t -> Schedule.t -> Technique.t option

val remake_schedule :
  Schedule.t ->
  full:Schedule.windows ->
  retention_count:int ->
  Schedule.t option
(** The schedule with its full-representation windows and retention count
    replaced (secondary representation and cycle count preserved); [None]
    if the combination is invalid. *)

val rebuild :
  Design.t ->
  ?workload:Storage_workload.Workload.t ->
  Hierarchy.level list ->
  Design.t option
(** The design with its hierarchy (and optionally workload) replaced;
    [None] if [Hierarchy.make] rejects the level list. *)

val map_level :
  Design.t -> int -> (Hierarchy.level -> Hierarchy.level option) -> Design.t option
(** [map_level d i f] rebuilds [d] with level [i] replaced by [f level];
    [None] when [f] declines or the result is invalid. *)
