open Storage_model

(** The failure corpus: counterexamples serialized as replayable [.ssdep]
    design files with `# key = value` provenance headers (oracle, seed,
    case index, shrink steps, message). The body is ordinary spec syntax,
    so corpus files also load in [ssdep evaluate] and [ssdep lint]; the
    fuzzer replays every entry of a corpus directory before generating
    fresh cases. *)

type entry = {
  oracle : string;  (** the oracle that failed *)
  seed : int64;  (** the per-case seed (not the session seed) *)
  case_index : int;
  message : string;  (** the oracle's failure message when found *)
  shrink_steps : int;
  design : Design.t;  (** already shrunk *)
  scenarios : (string * Scenario.t) list;
}

val filename : entry -> string
(** [<oracle>-case<N>-0x<seed>.ssdep]. *)

val to_string : entry -> (string, string) result
val of_string : string -> (entry, string) result

val write : dir:string -> entry -> (string, string) result
(** Serializes into [dir] (created if absent) under {!filename};
    returns the path written. *)

val load : string -> (entry, string) result

val load_dir : string -> ((string * entry) list, string) result
(** Every [.ssdep] entry of the directory in filename order, paired with
    its path; [Ok []] when the directory does not exist. *)
