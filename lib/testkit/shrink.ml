(* Greedy shrinking of counterexample designs.

   Candidates are proposed most-aggressive first (drop a whole hierarchy
   level, halve the workload) down to local simplifications (halve a
   retention count, flatten the batch curve). Every candidate is rebuilt
   through Hierarchy.make / Workload.make, so a shrunk design is always
   structurally well-formed — shrinking moves toward smaller designs, not
   toward differently-broken ones. *)

open Storage_units
open Storage_workload
open Storage_protection
open Storage_hierarchy
open Storage_model

let schedule_of = function
  | Technique.Primary_copy _ -> None
  | Technique.Split_mirror s
  | Technique.Virtual_snapshot s
  | Technique.Backup s
  | Technique.Vaulting s
  | Technique.Remote_mirror { schedule = s; _ }
  | Technique.Erasure_coded { schedule = s; _ } ->
    Some s

let with_schedule technique s =
  match technique with
  | Technique.Primary_copy _ -> None
  | Technique.Split_mirror _ -> Some (Technique.Split_mirror s)
  | Technique.Virtual_snapshot _ -> Some (Technique.Virtual_snapshot s)
  | Technique.Backup _ -> Some (Technique.Backup s)
  | Technique.Vaulting _ -> Some (Technique.Vaulting s)
  | Technique.Remote_mirror { mode; _ } ->
    Some (Technique.Remote_mirror { mode; schedule = s })
  | Technique.Erasure_coded { fragments; required; _ } ->
    Some (Technique.Erasure_coded { fragments; required; schedule = s })

let remake_schedule (s : Schedule.t) ~full ~retention_count =
  match
    (match s.Schedule.secondary with
    | None -> Schedule.make ~full ~retention_count ()
    | Some secondary ->
      Schedule.make ~full ~secondary ~cycle_count:s.Schedule.cycle_count
        ~retention_count ())
  with
  | s' -> Some s'
  | exception Invalid_argument _ -> None

let rebuild (d : Design.t) ?workload levels =
  match Hierarchy.make levels with
  | Error _ -> None
  | Ok hierarchy ->
    Some
      (Design.make ~name:d.Design.name
         ~workload:(Option.value ~default:d.Design.workload workload)
         ~hierarchy ~business:d.Design.business ())

let with_workload (d : Design.t) w =
  Design.make ~name:d.Design.name ~workload:w ~hierarchy:d.Design.hierarchy
    ~business:d.Design.business ()

let map_level d i f =
  let levels = Hierarchy.levels d.Design.hierarchy in
  match f (List.nth levels i) with
  | None -> None
  | Some level ->
    rebuild d (List.mapi (fun j l -> if j = i then level else l) levels)

let drop_levels d =
  let levels = Hierarchy.levels d.Design.hierarchy in
  let n = List.length levels in
  if n <= 1 then []
  else
    (* Deepest level first: losing the vault is a smaller change than
       losing the PiT copies every deeper level builds on. *)
    List.filter_map
      (fun i -> rebuild d (List.filteri (fun j _ -> j <> i) levels))
      (List.init (n - 1) (fun k -> n - 1 - k))

let halve_workload d =
  let w = d.Design.workload in
  if Size.to_gib w.Workload.data_capacity <= 2. then []
  else [ with_workload d (Workload.grow w ~factor:0.5) ]

let collapse_burst d =
  let w = d.Design.workload in
  if w.Workload.burst_multiplier <= 1. then []
  else
    [
      with_workload d
        (Workload.make ~name:w.Workload.name
           ~data_capacity:w.Workload.data_capacity
           ~avg_access_rate:w.Workload.avg_access_rate
           ~avg_update_rate:w.Workload.avg_update_rate ~burst_multiplier:1.
           ~batch_curve:w.Workload.batch_curve);
    ]

let collapse_batch d =
  let w = d.Design.workload in
  match Batch_curve.samples w.Workload.batch_curve with
  | [] | [ _ ] -> []
  | (_, top) :: _ ->
    [
      with_workload d
        (Workload.make ~name:w.Workload.name
           ~data_capacity:w.Workload.data_capacity
           ~avg_access_rate:w.Workload.avg_access_rate
           ~avg_update_rate:w.Workload.avg_update_rate
           ~burst_multiplier:w.Workload.burst_multiplier
           ~batch_curve:(Batch_curve.constant top));
    ]

let halve_retentions d =
  let levels = Hierarchy.levels d.Design.hierarchy in
  List.filter_map
    (fun i ->
      map_level d i (fun level ->
          match schedule_of level.Hierarchy.technique with
          | None -> None
          | Some s ->
            let rc = s.Schedule.retention_count in
            if rc <= 1 then None
            else begin
              match
                remake_schedule s ~full:s.Schedule.full
                  ~retention_count:(max 1 (rc / 2))
              with
              | None -> None
              | Some s' ->
                (match with_schedule level.Hierarchy.technique s' with
                | None -> None
                | Some technique -> Some { level with Hierarchy.technique })
            end))
    (List.init (List.length levels) Fun.id)

let candidates d =
  drop_levels d @ halve_workload d @ collapse_burst d @ collapse_batch d
  @ halve_retentions d

let minimize ?(max_steps = 64) ~keep d =
  let rec go d steps fuel =
    if fuel = 0 then (d, steps)
    else begin
      match List.find_opt keep (candidates d) with
      | None -> (d, steps)
      | Some d' -> go d' (steps + 1) (fuel - 1)
    end
  in
  go d 0 max_steps
