open Storage_model

(** The oracle registry: differential and metamorphic checks run against
    every fuzz case. Each oracle compares two ways of computing the same
    answer (analytic vs simulated, streaming vs materialized, cached vs
    direct, serial vs parallel) or asserts a monotonicity law the paper's
    model implies. Tolerances and their rationale live in TESTING.md. *)

type verdict =
  | Pass
  | Fail of string  (** the counterexample message, stable across runs *)
  | Skip of string  (** the case is outside the oracle's precondition *)

type ctx = {
  engine : Storage_engine.t;
      (** the engine the fuzz session runs evaluations under *)
  aux : Storage_engine.t;
      (** a multi-domain engine, for parallel-invariance comparisons *)
}

type t = {
  name : string;  (** unique, kebab-case; the CLI [--oracle] key *)
  doc : string;
  check : ctx -> Design.t -> (string * Scenario.t) list -> verdict;
}

val defaults : t list
(** The production registry, cheapest first: [lint-coincidence],
    [cache-invariance], [stream-vs-materialized], [parallel-invariance],
    [chunk-invariance], [monotone-shorter-window], [monotone-bandwidth],
    [monotone-cost], [analytic-vs-sim], [fleet-degenerate],
    [fleet-jobs-invariance]. *)

val all : t list
(** {!defaults} plus [self-test-fail], which fails on every case and
    exists only to exercise the shrink/corpus/replay pipeline. *)

val find : string -> t option
(** Look a name up in {!all}. *)

val find_in : t list -> string -> t option
