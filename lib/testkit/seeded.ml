(* The shared seeded design pools the test suites draw from.

   [Random.State] here is explicitly seeded by every caller (no ambient
   state is ever read), so the determinism invariant holds; the module is
   exempted by name from sslint's SA001 rule. The draw procedure is kept
   byte-for-byte faithful to the hand-rolled loops it replaced
   (test_parallel/test_engine), so historical seeds keep reproducing the
   same candidate lists. *)

open Storage_units
open Storage_model
open Storage_optimize
open Storage_presets

let business =
  Business.make
    ~outage_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ~loss_penalty_rate:(Money_rate.usd_per_hour 50_000.)
    ()

let kit =
  {
    Candidate.workload = Cello.workload;
    business;
    primary = Baseline.disk_array;
    tape_library = Baseline.tape_library;
    vault = Baseline.vault;
    remote_array = Baseline.remote_array;
    san = Baseline.san;
    shipment = Baseline.air_shipment;
    wan = (fun links -> Baseline.oc3 ~links);
  }

let pool_space =
  {
    Candidate.pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 6.; Duration.hours 12. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations = [ Duration.hours 24.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1.; Duration.weeks 4. ];
    vault_retention_horizon = Duration.years 1.;
    mirror_links = [ 1; 4 ];
  }

let lint_space =
  {
    Candidate.pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 12. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations = [ Duration.hours 24.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 4. ];
    vault_retention_horizon = Duration.years 1.;
    mirror_links = [ 1; 4 ];
  }

let pool_memo = lazy (List.of_seq (Candidate.enumerate kit pool_space))
let pool () = Lazy.force pool_memo
let pool_again () = List.of_seq (Candidate.enumerate kit pool_space)
let lint_pool_memo = lazy (List.of_seq (Candidate.enumerate kit lint_space))
let lint_pool () = Lazy.force lint_pool_memo

let draw ~seed ~n pool =
  if pool = [] then invalid_arg "Seeded.draw: empty pool";
  let st = Random.State.make seed in
  let len = List.length pool in
  List.init n (fun _ -> List.nth pool (Random.State.int st len))

let scaled ~factor (d : Design.t) =
  Design.make
    ~name:(Printf.sprintf "%s-x%.3g" d.Design.name factor)
    ~workload:(Storage_workload.Workload.grow d.Design.workload ~factor)
    ~hierarchy:d.Design.hierarchy ~business:d.Design.business ()
