open Storage_model

(** The what-if designs of Table 7 (§4.2).

    Each design modifies the baseline along one axis: vaulting frequency,
    backup policy, PiT technique, or replacing tape protection with
    wide-area asynchronous batch mirroring. *)

val weekly_vault : Design.t
(** Vault accumulation shortened to one week (12 hr hold, 24 hr
    propagation); retention extended to keep the three-year horizon. *)

val weekly_vault_full_incremental : Design.t
(** Weekly fulls (48 hr acc/prop) plus five daily cumulative incrementals
    (24 hr acc, 12 hr prop), weekly vaulting. *)

val weekly_vault_daily_full : Design.t
(** Daily full backups (24 hr acc, 12 hr prop), weekly vaulting. *)

val weekly_vault_daily_full_snapshot : Design.t
(** As above, with virtual snapshots in place of split mirrors. *)

val async_mirror : links:int -> Design.t
(** Asynchronous batch mirroring (1 min batches) to a remote array over
    [links] OC-3 lines, replacing split mirrors, backup and vaulting. *)

val erasure_coded : fragments:int -> required:int -> links:int -> Design.t
(** An OceanStore-style extension design the paper never evaluated: hourly
    batches erasure-coded [required]-of-[fragments] onto the remote
    fragment store, retaining a day of hourly versions — minute-scale
    archival bandwidth with rollback depth a plain mirror lacks. *)

val all : (string * Design.t) list
(** The seven Table 7 rows in order, baseline first. *)

val search_kit :
  ?business:Business.t -> unit -> Storage_optimize.Candidate.kit
(** The baseline case study as a search kit: Cello workload, the
    baseline devices and interconnects, [Baseline.oc3] WAN bundles.
    [?business] swaps the business requirements (e.g. CLI-supplied
    RTO/RPO) while keeping the hardware. *)

val search_space : ?scale:int -> unit -> Storage_optimize.Candidate.space
(** {!Storage_optimize.Candidate.scaled_space}: [~scale:1] (default) is
    the ~100-design default grid; larger scales grow O(scale^3) for
    streaming-search workloads. *)
