open Storage_units
open Storage_protection
open Storage_hierarchy
open Storage_model

let level technique device link = { Hierarchy.technique; device; link }

let primary_level =
  level
    (Technique.Primary_copy { raid = Raid.Raid1 })
    Baseline.disk_array None

let split_mirror_level =
  level
    (Technique.Split_mirror Baseline.split_mirror_schedule)
    Baseline.disk_array None

(* Weekly vaulting with a 12 hr hold; retention count keeps the three-year
   horizon of the baseline (156 weekly cycles). *)
let weekly_vault_schedule =
  Schedule.simple ~acc:(Duration.weeks 1.) ~prop:(Duration.hours 24.)
    ~hold:(Duration.hours 12.) ~retention_count:156 ()

let make_design name ~backup_schedule ~pit_level =
  let hierarchy =
    Hierarchy.make_exn
      [
        primary_level;
        pit_level;
        level (Technique.Backup backup_schedule) Baseline.tape_library
          (Some Baseline.san);
        level
          (Technique.Vaulting weekly_vault_schedule)
          Baseline.vault (Some Baseline.air_shipment);
      ]
  in
  Design.make ~name ~workload:Cello.workload ~hierarchy
    ~business:Baseline.business ()

let weekly_vault =
  make_design "weekly vault" ~backup_schedule:Baseline.backup_schedule
    ~pit_level:split_mirror_level

(* Weekly fulls (48 hr windows) plus five daily cumulative incrementals. *)
let full_incremental_schedule =
  Schedule.make
    ~full:
      (Schedule.windows ~acc:(Duration.hours 48.) ~prop:(Duration.hours 48.)
         ~hold:(Duration.hours 1.) ())
    ~secondary:
      ( Schedule.Cumulative,
        Schedule.windows ~acc:(Duration.hours 24.) ~prop:(Duration.hours 12.)
          ~hold:(Duration.hours 1.) () )
    ~cycle_count:5 ~retention_count:4 ()

let weekly_vault_full_incremental =
  make_design "weekly vault, F+I" ~backup_schedule:full_incremental_schedule
    ~pit_level:split_mirror_level

(* Daily fulls; retention count keeps the four-week horizon (28 days). *)
let daily_full_schedule =
  Schedule.simple ~acc:(Duration.hours 24.) ~prop:(Duration.hours 12.)
    ~hold:(Duration.hours 1.) ~retention_count:28 ()

let weekly_vault_daily_full =
  make_design "weekly vault, daily F" ~backup_schedule:daily_full_schedule
    ~pit_level:split_mirror_level

let snapshot_level =
  level
    (Technique.Virtual_snapshot Baseline.split_mirror_schedule)
    Baseline.disk_array None

let weekly_vault_daily_full_snapshot =
  make_design "weekly vault, daily F, snap" ~backup_schedule:daily_full_schedule
    ~pit_level:snapshot_level

(* Wide-area asynchronous batch mirroring: one-minute batches, propagated
   within the next minute, replacing all tape-based protection. *)
let async_batch_schedule =
  Schedule.simple ~acc:(Duration.minutes 1.) ~prop:(Duration.minutes 1.)
    ~retention_count:1 ()

let async_mirror ~links =
  let hierarchy =
    Hierarchy.make_exn
      [
        primary_level;
        level
          (Technique.Remote_mirror
             {
               mode = Technique.Asynchronous_batch;
               schedule = async_batch_schedule;
             })
          Baseline.remote_array
          (Some (Baseline.oc3 ~links));
      ]
  in
  Design.make
    ~name:(Printf.sprintf "asyncB mirror, %d link%s" links (if links = 1 then "" else "s"))
    ~workload:Cello.workload ~hierarchy ~business:Baseline.business ()

let erasure_coded ~fragments ~required ~links =
  let schedule =
    Schedule.simple ~acc:(Duration.hours 1.) ~prop:(Duration.hours 1.)
      ~retention_count:24 ()
  in
  let hierarchy =
    Hierarchy.make_exn
      [
        primary_level;
        {
          Hierarchy.technique =
            Technique.Erasure_coded { fragments; required; schedule };
          device = Baseline.remote_array;
          link = Some (Baseline.oc3 ~links);
        };
      ]
  in
  Design.make
    ~name:(Printf.sprintf "erasure %d-of-%d" required fragments)
    ~workload:Cello.workload ~hierarchy ~business:Baseline.business ()

let all =
  [
    ("baseline", Baseline.design);
    ("weekly vault", weekly_vault);
    ("weekly vault, F+I", weekly_vault_full_incremental);
    ("weekly vault, daily F", weekly_vault_daily_full);
    ("weekly vault, daily F, snapshot", weekly_vault_daily_full_snapshot);
    ("asyncB mirror, 1 link", async_mirror ~links:1);
    ("asyncB mirror, 10 links", async_mirror ~links:10);
  ]

(* The search hardware: one definition of the kit the CLI, the benches
   and the capacity-planning example all enumerate over, so a grid run
   anywhere is a grid over the same baseline case study. *)
let search_kit ?(business = Baseline.business) () =
  {
    Storage_optimize.Candidate.workload = Cello.workload;
    business;
    primary = Baseline.disk_array;
    tape_library = Baseline.tape_library;
    vault = Baseline.vault;
    remote_array = Baseline.remote_array;
    san = Baseline.san;
    shipment = Baseline.air_shipment;
    wan = (fun links -> Baseline.oc3 ~links);
  }

let search_space ?(scale = 1) () = Storage_optimize.Candidate.scaled_space ~scale
