open Storage_units

type t = { read_bw : Rate.t; write_bw : Rate.t; capacity : Size.t }

let zero = { read_bw = Rate.zero; write_bw = Rate.zero; capacity = Size.zero }

let make ?(read_bw = Rate.zero) ?(write_bw = Rate.zero) ?(capacity = Size.zero)
    () =
  { read_bw; write_bw; capacity }

let add a b =
  {
    read_bw = Rate.add a.read_bw b.read_bw;
    write_bw = Rate.add a.write_bw b.write_bw;
    capacity = Size.add a.capacity b.capacity;
  }

let sum = List.fold_left add zero
let total_bw t = Rate.add t.read_bw t.write_bw

let is_zero t =
  Rate.is_zero t.read_bw && Rate.is_zero t.write_bw && Size.is_zero t.capacity

let equal a b =
  Rate.equal a.read_bw b.read_bw
  && Rate.equal a.write_bw b.write_bw
  && Size.equal a.capacity b.capacity

let pp ppf t =
  Fmt.pf ppf "{r=%a w=%a cap=%a}" Rate.pp t.read_bw Rate.pp t.write_bw Size.pp
    t.capacity

type labeled = { technique : string; demand : t }

(* Techniques in first-appearance order, duplicate labels summed. The
   lists here are a handful of entries (one per hierarchy level landing
   on a device), so an in-order association fold beats a hash table —
   this runs once per (design, device) on the evaluation hot path. *)
let by_technique labeled =
  let rec merge acc technique demand =
    match acc with
    | [] -> [ (technique, demand) ]
    | (t, existing) :: rest when String.equal t technique ->
      (t, add existing demand) :: rest
    | pair :: rest -> pair :: merge rest technique demand
  in
  List.fold_left
    (fun acc { technique; demand } -> merge acc technique demand)
    [] labeled
