open Storage_units
open Storage_model

type verdict = Admit | Cut_infeasible | Cut_cost

(* The two monotonicity assumptions the cuts rest on (both replayed
   exhaustively by the branch-and-bound soundness property suite, and
   cross-checked against exhaustive search by the
   solver-exhaustive-equivalence oracle):

   - extension monotonicity: appending a level to a hierarchy only adds
     demand on the devices already placed, so a lint-rejected prefix has
     no acceptable completion;
   - cost monotonicity: appending a level only adds cost items (its own
     device plus the extra capacity/bandwidth its copies place on the
     source), so [outlays prefix <= outlays completion], and since
     [worst_total_cost = outlays + penalties >= outlays], a prefix whose
     outlays already reach the incumbent's total cannot lead anywhere
     strictly better. *)
let judge ~incumbent prefix =
  match prefix with
  | None -> Admit (* unbuildable prefix: nothing can be concluded *)
  | Some p ->
    if not (Storage_lint.accepts p) then Cut_infeasible
    else begin
      match incumbent with
      | None -> Admit
      | Some best ->
        if Money.compare (Cost.outlays p).Cost.total best >= 0 then Cut_cost
        else Admit
    end

let bisection_threshold = 8

let frontier ~admit n =
  if n <= 0 then None
  else if admit 0 then Some 0
  else begin
    (* Geometric probe out from the rejected origin (the same shape as
       the testkit's [Gen.frontier_factor] bisection, on axis indices
       instead of workload factors): double until an admitted index
       brackets the frontier, then binary-search the boundary. *)
    let rec expand lo hi =
      if hi >= n - 1 then
        if admit (n - 1) then bracket lo (n - 1) else None
      else if admit hi then bracket lo hi
      else expand hi (hi * 2)
    and bracket lo hi =
      (* invariant: not (admit lo), admit hi *)
      if hi - lo <= 1 then Some hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if admit mid then bracket lo mid else bracket mid hi
      end
    in
    expand 0 1
  end
