open Storage_units
open Storage_model

(** One-dimensional sensitivity analysis.

    Sweeps a single design parameter (via a caller-supplied constructor)
    and records how the output metrics respond — the programmatic version
    of the paper's what-if methodology (§4.2), useful for locating
    crossover points such as "at how many links does mirroring stop being
    the cheapest design?". *)

type point = {
  value : float;  (** the swept parameter value *)
  recovery_time : Duration.t;
  loss : Data_loss.loss;
  outlays : Money.t;
  penalties : Money.t;
  total_cost : Money.t;
}

val sweep :
  ?engine:Storage_engine.t ->
  (float -> Design.t) ->
  values:float list ->
  Scenario.t ->
  point list
(** [sweep build ~values scenario] evaluates [build v] under [scenario]
    for each [v], in order. Raises [Invalid_argument] on an empty value
    list. The [?engine] supplies domains ([build] must therefore be
    pure, as the enumeration constructors are; point order and values
    are unaffected) and the shared evaluation cache — e.g. across the
    two families of {!crossover} or across repeated sweeps of a what-if
    session. Without an engine the sweep is serial and uncached, with
    identical points. *)

val crossover :
  ?engine:Storage_engine.t ->
  (float -> Design.t) ->
  values:float list ->
  Scenario.t ->
  metric:(point -> float) ->
  against:(float -> Design.t) ->
  float option
(** [crossover a ~values scenario ~metric ~against] is the first swept
    value at which design family [a] stops beating family [against] on
    [metric] (smaller is better), if any. *)

val pp_point : point Fmt.t
