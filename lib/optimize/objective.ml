open Storage_units
open Storage_model

type summary = {
  design : Design.t;
  reports : Evaluate.report list;
  outlays : Money.t;
  worst_recovery_time : Duration.t;
  worst_loss : Data_loss.loss;
  worst_penalties : Money.t;
  worst_total_cost : Money.t;
  feasible : bool;
}

let summarize_reports design reports =
  let outlays = (List.hd reports).Evaluate.outlays.Cost.total in
  let worst_recovery_time =
    List.fold_left
      (fun acc r -> Duration.max acc r.Evaluate.recovery_time)
      Duration.zero reports
  in
  let worst_loss =
    List.fold_left
      (fun acc r ->
        let l = r.Evaluate.data_loss.Data_loss.loss in
        if Data_loss.compare_loss l acc > 0 then l else acc)
      (Data_loss.Updates Duration.zero)
      reports
  in
  let worst_penalties =
    List.fold_left
      (fun acc r -> Money.max acc r.Evaluate.penalties.Cost.total)
      Money.zero reports
  in
  let feasible =
    List.for_all
      (fun r ->
        r.Evaluate.errors = []
        && r.Evaluate.data_loss.Data_loss.loss <> Data_loss.Entire_object
        && Option.value ~default:true r.Evaluate.meets_rto
        && Option.value ~default:true r.Evaluate.meets_rpo)
      reports
  in
  {
    design;
    reports;
    outlays;
    worst_recovery_time;
    worst_loss;
    worst_penalties;
    worst_total_cost = Money.add outlays worst_penalties;
    feasible;
  }

let summarize ?engine design scenarios =
  if scenarios = [] then invalid_arg "Objective.summarize: no scenarios";
  let reports =
    match engine with
    | None -> Evaluate.run_all design scenarios
    | Some e when not (Storage_engine.cache e) ->
      (* Cache disabled: evaluate directly. Besides the table bookkeeping
         this skips keying entirely, so the design is never fingerprinted
         — the fingerprint exists only to name cache entries. *)
      Evaluate.run_all design scenarios
    | Some e -> Eval_cache.run_all (Eval_cache.of_engine e) design scenarios
  in
  summarize_reports design reports

let pp ppf s =
  Fmt.pf ppf "%-32s out %-9s worst RT %-9s worst DL %-10s total %-9s%s"
    s.design.Design.name
    (Money.to_string s.outlays)
    (Duration.to_string s.worst_recovery_time)
    (Fmt.str "%a" Data_loss.pp_loss s.worst_loss)
    (Money.to_string s.worst_total_cost)
    (if s.feasible then "" else "  (infeasible)")
