open Storage_model

(** Seeded simulated annealing over the candidate grid.

    A fixed crew of {!chains} interleaved chains walks {!Candidate.point}
    space: per round, every chain contributes one proposal (a neighborhood
    move — retune one frequency/retention axis, swap the protection
    technique, reassign shared-resource slots, or a restart jump), the
    round's decoded designs cross the engine pool as one batch, and
    acceptance is decided per chain from its own splitmix64 stream.

    Three structural guarantees, all property-tested:

    - {b jobs-invariance}: proposals, acceptance and the running best are
      folded in (round, chain) order, so the outcome is a pure function
      of (seed, budget) — byte-identical across [--jobs] and [--chunk];
    - {b monotone budget}: chain evolution and the temperature schedule
      depend only on the round index, so a budget-B run evaluates a
      strict prefix of a budget-B' > B run — a larger budget never
      returns a worse objective;
    - {b eventual exhaustiveness}: chain 0 sweeps the grid systematically
      from cell 0, so any budget >= chains x {!Candidate.point_count}
      provably visits every cell — the [solver-exhaustive-equivalence]
      oracle compares such a run against exhaustive search as an
      {e equality}, not a hope. *)

type outcome = {
  best : Objective.summary option;
      (** Cheapest feasible summary seen; ties keep the first in
          (round, chain) order. [None] when nothing feasible was found. *)
  proposals : int;  (** Budget consumed (grid-cell visits, cache hits included). *)
  evaluations : int;  (** [Objective.summarize] calls (valid decodes only). *)
  accepted : int;  (** Accepted moves across the annealing chains. *)
}

val chains : int
(** Fixed chain count (4): chain 0 sweeps, chain 1 starts in the mirror
    family, chain 2 at the tape family's cost-greedy corner, chain 3 at a
    seeded random cell. Fixed — never derived from the budget or the
    engine — so the prefix property above holds. *)

val run :
  engine:Storage_engine.t ->
  budget:int ->
  seed:int64 ->
  space:Candidate.space ->
  axes:Candidate.axes ->
  Scenario.t list ->
  outcome
(** Raises [Invalid_argument] when [budget < 1] or the space is empty.
    Evaluations share the engine's cache; re-visited cells cost a
    lookup. *)
