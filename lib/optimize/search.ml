open Storage_units
open Storage_model

type result = {
  evaluated : Objective.summary list;
  feasible : Objective.summary list;
  frontier : Objective.summary list;
  best : Objective.summary option;
}

(* Search throughput: (design, scenario) evaluations requested (cache hits
   included) and the wall-clock of whole searches. The derived gauge is
   the north-star number: evaluations per second of search time. *)
let t_search = Storage_obs.Timer.make "search.run"
let obs_evaluations = Storage_obs.Counter.make "search.evaluations"

let () =
  Storage_obs.gauge "search.evals_per_second" (fun () ->
      let s = Storage_obs.Timer.total_seconds t_search in
      if s > 0. then
        float_of_int (Storage_obs.Counter.value obs_evaluations) /. s
      else 0.)

let run ?(jobs = 1) ?cache ?(lint = true) candidates scenarios =
  if candidates = [] then invalid_arg "Search.run: no candidate designs";
  if scenarios = [] then invalid_arg "Search.run: no scenarios";
  (* Static pre-filter: candidates carrying lint errors would only come
     back as infeasible reports full of validation errors — reject them
     before paying for [Evaluate.run] (the [lint.pruned] counter shows
     how many were saved). The surviving results are identical to a run
     over a hand-filtered candidate list. *)
  let candidates = if lint then Storage_lint.prune candidates else candidates in
  Storage_obs.Counter.add obs_evaluations
    (List.length candidates * List.length scenarios);
  Storage_obs.Timer.time t_search @@ fun () ->
  (* Search always evaluates through a memo-cache (a fresh one unless the
     caller shares a session-level cache): duplicated candidates cost one
     evaluation, and an iterative what-if session that re-runs the search
     with an overlapping candidate set pays only for the new designs. *)
  let cache = match cache with Some c -> c | None -> Eval_cache.create () in
  let evaluated =
    Storage_parallel.Pool.map ~jobs
      (fun d -> Objective.summarize ~cache d scenarios)
      candidates
  in
  let feasible =
    List.filter (fun s -> s.Objective.feasible) evaluated
    |> List.sort (fun a b ->
           Money.compare a.Objective.worst_total_cost
             b.Objective.worst_total_cost)
  in
  {
    evaluated;
    feasible;
    frontier = Pareto.frontier evaluated;
    best = (match feasible with [] -> None | best :: _ -> Some best);
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>%d candidates, %d feasible, %d on the Pareto frontier@,%a%a@]"
    (List.length r.evaluated) (List.length r.feasible)
    (List.length r.frontier)
    (Fmt.list ~sep:Fmt.cut (fun ppf s -> Fmt.pf ppf "  %a" Objective.pp s))
    r.frontier
    (Fmt.option (fun ppf s ->
         Fmt.pf ppf "@,best: %a" Objective.pp s))
    r.best
