open Storage_units
open Storage_model

type result = {
  evaluated : Objective.summary list;
  feasible : Objective.summary list;
  frontier : Objective.summary list;
  best : Objective.summary option;
}

let run ?(jobs = 1) ?cache candidates scenarios =
  if candidates = [] then invalid_arg "Search.run: no candidate designs";
  if scenarios = [] then invalid_arg "Search.run: no scenarios";
  (* Search always evaluates through a memo-cache (a fresh one unless the
     caller shares a session-level cache): duplicated candidates cost one
     evaluation, and an iterative what-if session that re-runs the search
     with an overlapping candidate set pays only for the new designs. *)
  let cache = match cache with Some c -> c | None -> Eval_cache.create () in
  let evaluated =
    Storage_parallel.Pool.map ~jobs
      (fun d -> Objective.summarize ~cache d scenarios)
      candidates
  in
  let feasible =
    List.filter (fun s -> s.Objective.feasible) evaluated
    |> List.sort (fun a b ->
           Money.compare a.Objective.worst_total_cost
             b.Objective.worst_total_cost)
  in
  {
    evaluated;
    feasible;
    frontier = Pareto.frontier evaluated;
    best = (match feasible with [] -> None | best :: _ -> Some best);
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>%d candidates, %d feasible, %d on the Pareto frontier@,%a%a@]"
    (List.length r.evaluated) (List.length r.feasible)
    (List.length r.frontier)
    (Fmt.list ~sep:Fmt.cut (fun ppf s -> Fmt.pf ppf "  %a" Objective.pp s))
    r.frontier
    (Fmt.option (fun ppf s ->
         Fmt.pf ppf "@,best: %a" Objective.pp s))
    r.best
