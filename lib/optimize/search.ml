open Storage_units
open Storage_model
module Engine = Storage_engine

type result = {
  evaluated : Objective.summary list;
  feasible : Objective.summary list;
  frontier : Objective.summary list;
  best : Objective.summary option;
  considered : int;
  feasible_count : int;
}

(* Search throughput: (design, scenario) evaluations requested (cache hits
   included) and the wall-clock of whole searches. The derived gauge is
   the north-star number: evaluations per second of search time. *)
let t_search = Storage_obs.Timer.make "search.run"
let obs_evaluations = Storage_obs.Counter.make "search.evaluations"

(* Shared by name with [Storage_lint.prune]'s counter: every static
   pre-filter reports into the one [lint.pruned] metric. *)
let obs_pruned = Storage_obs.Counter.make "lint.pruned"

let () =
  Storage_obs.gauge "search.evals_per_second" (fun () ->
      let s = Storage_obs.Timer.total_seconds t_search in
      if s > 0. then
        float_of_int (Storage_obs.Counter.value obs_evaluations) /. s
      else 0.)

let by_cost a b =
  Money.compare a.Objective.worst_total_cost b.Objective.worst_total_cost

(* Bounded feasible set for [~top_k]: a cost-sorted list capped at [k].
   Insertion places a newcomer after existing equal-cost entries, which is
   exactly where the final stable [List.sort] of the unbounded path would
   leave it — so truncating the unbounded sorted list to [k] gives the
   same list. *)
let insert_top_k k s feasible =
  let rec insert = function
    | [] -> [ s ]
    | x :: rest -> if by_cost x s <= 0 then x :: insert rest else s :: x :: rest
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (insert feasible)

let run ?engine ?top_k candidates scenarios =
  if scenarios = [] then invalid_arg "Search.run: no scenarios";
  (match top_k with
  | Some k when k < 1 -> invalid_arg "Search.run: top_k must be >= 1"
  | _ -> ());
  match Seq.uncons candidates with
  | None -> invalid_arg "Search.run: no candidate designs"
  | Some (first, rest) ->
    let candidates = Seq.cons first rest in
    let owned, engine =
      match engine with
      | Some e -> (false, e)
      | None -> (true, Engine.create ())
    in
    Fun.protect
      ~finally:(fun () -> if owned then Engine.shutdown engine)
    @@ fun () ->
    Storage_obs.Timer.time t_search @@ fun () ->
    (* Static pre-filter, applied per element as the grid streams by:
       candidates carrying lint errors would only come back as infeasible
       reports full of validation errors — reject them before paying for
       [Evaluate.run] (the [lint.pruned] counter shows how many were
       saved). The surviving results are identical to a run over a
       hand-filtered candidate list. *)
    let candidates =
      if Engine.lint engine then
        Seq.filter
          (fun d ->
            Storage_lint.accepts d
            ||
            (Storage_obs.Counter.incr obs_pruned;
             false))
          candidates
      else candidates
    in
    let nscenarios = List.length scenarios in
    (* Evaluation streams through the engine's pool in bounded windows;
       the fold below is the only consumer, so the live set is one
       window of summaries plus the accumulators. Every evaluation goes
       through the engine's memo-cache: duplicated candidates cost one
       evaluation, and an iterative what-if session that re-runs the
       search on the same engine with an overlapping grid pays only for
       the new designs. *)
    let summaries =
      Engine.map_seq engine
        (fun d -> Objective.summarize ~engine d scenarios)
        candidates
    in
    let keep_all = top_k = None in
    (* In [~top_k] mode the accumulators hold slim summaries — the
       per-scenario reports dropped, an order of magnitude fewer words
       per entry. The frontier can bulge transiently (a large antichain
       within one design family, later evicted wholesale by a dominating
       family), and holding full reports through the bulge is what would
       make peak memory scale with the grid. The few survivors are
       re-summarized at the end: evaluation is pure, so the rebuilt
       reports are the very ones the fold dropped. *)
    let slim s =
      if keep_all then s
      else
        (* Dropping the design's memoized derived data matters as much as
           dropping the reports: a design that has been evaluated carries
           its placements, per-device utilizations and lag tables, several
           times its own size. The stripped copy recomputes on demand. *)
        { s with
          Objective.reports = [];
          design = Design.strip s.Objective.design }
    in
    let rehydrate s =
      if keep_all then s
      else begin
        let s = Objective.summarize ~engine s.Objective.design scenarios in
        (* When every scenario hits the cache the stripped design is never
           re-evaluated, leaving its memos empty; force them so surviving
           designs are indistinguishable — marshaled bytes included — from
           ones summarized directly. *)
        ignore (Design.validate s.Objective.design);
        s
      end
    in
    let evaluated_rev = ref [] in
    let feasible_acc = ref [] in
    let front = ref Pareto.empty in
    let considered = ref 0 in
    let feasible_count = ref 0 in
    Seq.iter
      (fun s ->
        incr considered;
        Storage_obs.Counter.add obs_evaluations nscenarios;
        if keep_all then evaluated_rev := s :: !evaluated_rev;
        front := Pareto.insert !front (slim s);
        if s.Objective.feasible then begin
          incr feasible_count;
          feasible_acc :=
            (match top_k with
            | None -> s :: !feasible_acc
            | Some k -> insert_top_k k (slim s) !feasible_acc)
        end)
      summaries;
    let feasible =
      match top_k with
      | None -> List.sort by_cost (List.rev !feasible_acc)
      | Some _ -> List.map rehydrate !feasible_acc
    in
    {
      evaluated = List.rev !evaluated_rev;
      feasible;
      frontier = List.map rehydrate (Pareto.contents !front);
      best = (match feasible with [] -> None | best :: _ -> Some best);
      considered = !considered;
      feasible_count = !feasible_count;
    }

(* The independent reference algorithm the streaming path is
   differential-tested against: materialize the whole grid, lint-prune it
   as a list, score serially, and build the frontier with the quadratic
   reference scan. Shares no traversal code with [run]. *)
let run_materialized candidates scenarios =
  if candidates = [] then invalid_arg "Search.run: no candidate designs";
  if scenarios = [] then invalid_arg "Search.run: no scenarios";
  let candidates = Storage_lint.prune candidates in
  Storage_obs.Counter.add obs_evaluations
    (List.length candidates * List.length scenarios);
  Storage_obs.Timer.time t_search @@ fun () ->
  let evaluated =
    List.map (fun d -> Objective.summarize d scenarios) candidates
  in
  let feasible =
    List.filter (fun s -> s.Objective.feasible) evaluated
    |> List.sort by_cost
  in
  {
    evaluated;
    feasible;
    frontier = Pareto.frontier_reference evaluated;
    best = (match feasible with [] -> None | best :: _ -> Some best);
    considered = List.length evaluated;
    feasible_count = List.length feasible;
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>%d candidates, %d feasible, %d on the Pareto frontier@,%a%a@]"
    r.considered r.feasible_count
    (List.length r.frontier)
    (Fmt.list ~sep:Fmt.cut (fun ppf s -> Fmt.pf ppf "  %a" Objective.pp s))
    r.frontier
    (Fmt.option (fun ppf s ->
         Fmt.pf ppf "@,best: %a" Objective.pp s))
    r.best
