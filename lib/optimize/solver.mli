open Storage_units
open Storage_workload
open Storage_model

(** Solver-grade portfolio optimization over the candidate grid.

    Three interchangeable methods search the same {!Candidate} coordinate
    space for the cheapest feasible design:

    - {b grid} — exhaustive streaming evaluation (the reference; the
      legacy [ssdep optimize] path expressed as a solver method);
    - {b anneal} — seeded simulated annealing / local search
      ({!Anneal}): budgeted, jobs-invariant, monotone in budget, and
      provably exhaustive at budget >= 4 x grid;
    - {b bnb} — branch and bound over the tape/mirror families, pruning
      subtrees with the lint feasibility frontier (located by geometric
      bisection, {!Bound.frontier}) and a monotone outlays lower bound.

    All methods evaluate through one {!Storage_engine.t} (shared pool,
    shared cache, [solver.*] observability counters) and fold results in
    deterministic order, so reports are byte-identical across [--jobs]
    and [--chunk]. The [solver-exhaustive-equivalence] testkit oracle
    holds all three to exhaustive search on seeded small grids. *)

type method_ = Grid | Anneal | Bnb

val method_name : method_ -> string
val method_of_string : string -> (method_, string) Stdlib.result

type stats = {
  evaluations : int;  (** [Objective.summarize] calls (cache hits included). *)
  considered : int;  (** Grid cells visited (invalid decodes included). *)
  accepted : int;  (** Annealing moves accepted (0 for grid/bnb). *)
  pruned_cost : int;  (** Cells cut by the outlays lower bound (bnb). *)
  pruned_infeasible : int;  (** Cells cut by the lint frontier (bnb). *)
  probes : int;  (** Prefix evaluations paid to cut them (bnb). *)
}

type result = {
  method_ : method_;
  grid_points : int;  (** {!Candidate.point_count} of the space searched. *)
  budget : int;
  seed : int64;
  best : Objective.summary option;
      (** Cheapest feasible summary found; [None] when the (searched part
          of the) grid holds no feasible design. *)
  stats : stats;
  pruned : Candidate.point list list;
      (** With [~record_pruned:true]: each pruned region as the point
          list it covered, in pruning order — replayable, which is how
          the B&B soundness property suite audits every cut. *)
}

val default_budget : int

val run :
  ?engine:Storage_engine.t ->
  ?budget:int ->
  ?seed:int64 ->
  ?record_pruned:bool ->
  ?background:(string * Storage_device.Demand.labeled list) list ->
  method_:method_ ->
  Candidate.kit ->
  Candidate.space ->
  Scenario.t list ->
  result
(** Search the grid for the cheapest feasible design. [budget] (default
    {!default_budget}) bounds annealing proposals and is recorded (but
    not binding) for grid/bnb; [seed] defaults to the engine's seed;
    [background] prices every candidate under externally-imposed device
    load (see {!Candidate.axes}). A transient engine is created (and
    shut down) when none is passed. Raises [Invalid_argument] on an
    empty space, empty scenarios, or [budget < 1]. *)

(** {1 Hierarchical portfolio roll-up}

    Per-object optima compose upward: each portfolio member (an object
    class with its own workload and business requirements) is solved in
    the shared hardware kit, members' tentative winners load each other
    as background demand (Gauss–Seidel consolidation), and the final
    assignment rolls up through {!Storage_model.Portfolio} into one
    site-level dependability summary. *)

type member = {
  label : string;
  workload : Workload.t;
  business : Business.t;
}

val member_of_design : Design.t -> member
(** The member an existing design file describes: its name, workload and
    business requirements (the hierarchy is discarded — the solver picks
    a new one). *)

type site = {
  feasible : bool;
      (** Every member assigned a feasible design and no shared device
          overcommitted. *)
  overcommitted : string list;  (** Names of overcommitted devices. *)
  outlays : Money.t;  (** Shared fixed costs counted once. *)
  penalties : Money.t;  (** Sum of members' worst-scenario penalties. *)
  total : Money.t;
  worst_recovery_time : Duration.t;  (** Max across members. *)
  worst_loss : Data_loss.loss;  (** Max across members. *)
}

type portfolio_result = {
  assignments : (string * result) list;
      (** Final-round solver result per member label, in member order. *)
  chosen : Design.t list;
      (** The winning designs, renamed ["label: design"] and loaded with
          each other's background demands — the members of the
          {!Storage_model.Portfolio} they were rolled up through (raw,
          unloaded designs when the portfolio could not be formed). *)
  site : site;
}

val solve_portfolio :
  ?engine:Storage_engine.t ->
  ?budget:int ->
  ?seed:int64 ->
  ?rounds:int ->
  method_:method_ ->
  kit:Candidate.kit ->
  space:Candidate.space ->
  members:member list ->
  Scenario.t list ->
  portfolio_result
(** Solve every member jointly. [rounds] (default 2) Gauss–Seidel passes:
    each pass re-optimizes every member against the others' latest
    tentative designs folded in as background demand on the kit's
    devices. Per-(round, member) solver seeds derive from one splitmix64
    stream, so the whole consolidation is a pure function of
    (seed, budget, rounds) — byte-identical across [--jobs]. Raises
    [Invalid_argument] on empty members, duplicate labels, or
    [rounds < 1]. *)

(** {1 Rendering} *)

val pp : result Fmt.t
val to_json : result -> Storage_report.Json.t
val pp_portfolio : portfolio_result Fmt.t
val portfolio_to_json : portfolio_result -> Storage_report.Json.t
