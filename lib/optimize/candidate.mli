open Storage_units
open Storage_workload
open Storage_device
open Storage_model

(** Design-space enumeration for automated dependability design.

    The paper motivates its framework as "the inner-most loop of an
    automated optimization loop" [13]; this module provides the loop body's
    input: a grid of candidate designs assembled from a hardware kit and a
    policy space. Structurally invalid combinations (hierarchy convention
    violations, overcommitted devices) are filtered out. *)

(** The hardware available to build designs from. *)
type kit = {
  workload : Workload.t;
  business : Business.t;
  primary : Device.t;
  tape_library : Device.t;
  vault : Device.t;
  remote_array : Device.t;
  san : Interconnect.t;
  shipment : Interconnect.t;
  wan : int -> Interconnect.t;  (** [wan links] builds a WAN bundle *)
}

(** Which policy dimensions to sweep. *)
type space = {
  pit_techniques : [ `Split_mirror | `Snapshot ] list;
  pit_accumulations : Duration.t list;
  pit_retentions : int list;
  backup_accumulations : Duration.t list;
  backup_retention_horizon : Duration.t;
      (** backup retention counts are derived to cover this horizon *)
  vault_accumulations : Duration.t list;
  vault_retention_horizon : Duration.t;
  mirror_links : int list;
      (** asynchronous-batch mirror alternatives; empty for none *)
}

val default_space : space
(** A moderate grid (~100 designs) around the paper's case study. *)

val scaled_space : scale:int -> space
(** A grid that grows as O(scale^3) by densifying the accumulation
    dimensions of {!default_space} (retention horizons stretched so the
    extra combinations stay structurally valid). [scale <= 1] is
    {!default_space}; [scale = 7] is on the order of 10^5 candidates —
    sized for streaming search, not for materializing. *)

val enumerate : kit -> space -> Design.t Seq.t
(** All structurally valid candidate designs, lazily: the tape-based
    family (PiT x backup x vault policies) followed by the mirror family
    (one per link count). Design names encode their parameters. Each
    element is built (and validated) only when forced, so a grid of a
    million candidates costs no memory until — and no more than a
    window's worth while — it is consumed; the sequence is persistent and
    re-enumerates on re-traversal. *)

(** {1 The grid as a coordinate space}

    The solver layer ({!Solver}) navigates the grid by coordinates rather
    than by enumeration: a {!point} names one combination of axis indices,
    and neighborhood moves are small index perturbations. Decoding a point
    runs the very same construction code as {!enumerate}, so a solver that
    lands on grid cell [i] builds a design structurally identical to the
    [i]-th enumerated candidate — optima are comparable across the two
    paths, and a shared engine cache hits across both. *)

type point =
  | Tape of { pit : int; pit_acc : int; pit_ret : int; backup : int; vault : int }
      (** Indices into [pit_techniques], [pit_accumulations],
          [pit_retentions], [backup_accumulations], [vault_accumulations]. *)
  | Mirror of { links : int }  (** Index into [mirror_links]. *)

val tape_dims : space -> int * int * int * int * int
(** Axis lengths of the tape family:
    [(pit kinds, pit accs, pit retentions, backup accs, vault accs)]. *)

val tape_count : space -> int
(** Product of {!tape_dims} — the tape family's share of the grid. *)

val mirror_count : space -> int

val point_count : space -> int
(** Size of the raw coordinate cross-product (tape combinations plus
    mirror alternatives). Counts every combination, including ones whose
    decode fails hierarchy conventions — an O(1) product, unlike counting
    {!enumerate}. *)

val point_of_index : space -> int -> point
(** The [i]-th point in {!enumerate}'s order (tape family in row-major
    pit-kind/pit-acc/pit-ret/backup/vault order, then mirrors). Raises
    [Invalid_argument] outside [0, point_count)]. *)

val points : space -> point Seq.t
(** All points, lazily, in {!enumerate}'s order. *)

type axes
(** Per-axis level tables precomputed once per [(kit, space)] — the
    decoder the solver evaluates points through. May carry background
    demands (see {!axes}) so a portfolio member's candidates are priced
    under its neighbors' load. *)

val axes :
  ?background:(string * Storage_device.Demand.labeled list) list ->
  kit ->
  space ->
  axes
(** [background] is attached to every decoded design (see
    {!Storage_model.Design.make}); default none, matching {!enumerate}. *)

val design_of_point : axes -> point -> Design.t option
(** Decode one grid cell; [None] when the combination is structurally
    invalid or lint-rejected — exactly the candidates {!enumerate} would
    have skipped. Out-of-range indices are [None], never an exception, so
    solver moves may probe freely. *)

val tape_prefix :
  axes -> pit:int -> pit_acc:int -> pit_ret:int -> ?backup:int -> unit ->
  Design.t option
(** The partial design shared by every completion of a tape-family
    subtree: hierarchy [primary; pit] (or [primary; pit; backup] when
    [?backup] is given) over the kit's workload. Unlike
    {!design_of_point} the result is {e not} validity-filtered — the
    branch-and-bound bound ({!Bound}) judges it. [None] only when the
    prefix itself violates hierarchy conventions. *)

