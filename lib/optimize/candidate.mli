open Storage_units
open Storage_workload
open Storage_device
open Storage_model

(** Design-space enumeration for automated dependability design.

    The paper motivates its framework as "the inner-most loop of an
    automated optimization loop" [13]; this module provides the loop body's
    input: a grid of candidate designs assembled from a hardware kit and a
    policy space. Structurally invalid combinations (hierarchy convention
    violations, overcommitted devices) are filtered out. *)

(** The hardware available to build designs from. *)
type kit = {
  workload : Workload.t;
  business : Business.t;
  primary : Device.t;
  tape_library : Device.t;
  vault : Device.t;
  remote_array : Device.t;
  san : Interconnect.t;
  shipment : Interconnect.t;
  wan : int -> Interconnect.t;  (** [wan links] builds a WAN bundle *)
}

(** Which policy dimensions to sweep. *)
type space = {
  pit_techniques : [ `Split_mirror | `Snapshot ] list;
  pit_accumulations : Duration.t list;
  pit_retentions : int list;
  backup_accumulations : Duration.t list;
  backup_retention_horizon : Duration.t;
      (** backup retention counts are derived to cover this horizon *)
  vault_accumulations : Duration.t list;
  vault_retention_horizon : Duration.t;
  mirror_links : int list;
      (** asynchronous-batch mirror alternatives; empty for none *)
}

val default_space : space
(** A moderate grid (~100 designs) around the paper's case study. *)

val scaled_space : scale:int -> space
(** A grid that grows as O(scale^3) by densifying the accumulation
    dimensions of {!default_space} (retention horizons stretched so the
    extra combinations stay structurally valid). [scale <= 1] is
    {!default_space}; [scale = 7] is on the order of 10^5 candidates —
    sized for streaming search, not for materializing. *)

val enumerate : kit -> space -> Design.t Seq.t
(** All structurally valid candidate designs, lazily: the tape-based
    family (PiT x backup x vault policies) followed by the mirror family
    (one per link count). Design names encode their parameters. Each
    element is built (and validated) only when forced, so a grid of a
    million candidates costs no memory until — and no more than a
    window's worth while — it is consumed; the sequence is persistent and
    re-enumerates on re-traversal. *)

