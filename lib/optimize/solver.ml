open Storage_units
open Storage_workload
open Storage_model
module Engine = Storage_engine
module Json = Storage_report.Json

type method_ = Grid | Anneal | Bnb

let method_name = function Grid -> "grid" | Anneal -> "anneal" | Bnb -> "bnb"

let method_of_string = function
  | "grid" -> Ok Grid
  | "anneal" -> Ok Anneal
  | "bnb" -> Ok Bnb
  | s -> Error (Printf.sprintf "unknown solver %S, expected grid, anneal or bnb" s)

type stats = {
  evaluations : int;
  considered : int;
  accepted : int;
  pruned_cost : int;
  pruned_infeasible : int;
  probes : int;
}

type result = {
  method_ : method_;
  grid_points : int;
  budget : int;
  seed : int64;
  best : Objective.summary option;
  stats : stats;
  pruned : Candidate.point list list;
}

let default_budget = 2048

(* Solver throughput and pruning effectiveness, alongside the search.*
   family: evaluations requested (cache hits included), grid cells cut
   before evaluation, bound probes paid to cut them. *)
let t_solver = Storage_obs.Timer.make "solver.run"
let obs_evaluations = Storage_obs.Counter.make "solver.evaluations"
let obs_accepted = Storage_obs.Counter.make "solver.moves.accepted"
let obs_pruned_cost = Storage_obs.Counter.make "solver.pruned.cost"
let obs_pruned_infeasible = Storage_obs.Counter.make "solver.pruned.infeasible"
let obs_probes = Storage_obs.Counter.make "solver.bound.probes"

let () =
  Storage_obs.gauge "solver.evals_per_second" (fun () ->
      let s = Storage_obs.Timer.total_seconds t_solver in
      if s > 0. then
        float_of_int (Storage_obs.Counter.value obs_evaluations) /. s
      else 0.)

let zero_stats =
  {
    evaluations = 0;
    considered = 0;
    accepted = 0;
    pruned_cost = 0;
    pruned_infeasible = 0;
    probes = 0;
  }

(* --- exhaustive grid (the legacy path, as a solver method) --- *)

let run_grid ~engine ~axes ~space scenarios =
  let candidates =
    Seq.filter_map (Candidate.design_of_point axes) (Candidate.points space)
  in
  match Seq.uncons candidates with
  | None -> (None, zero_stats)
  | Some _ ->
    let r = Search.run ~engine ~top_k:1 candidates scenarios in
    ( r.Search.best,
      { zero_stats with
        evaluations = r.Search.considered;
        considered = r.Search.considered } )

(* --- branch and bound --- *)

let run_bnb ~engine ~record_pruned ~axes ~space scenarios =
  let incumbent = ref None in
  let incumbent_cost = ref None in
  let evaluations = ref 0 and considered = ref 0 in
  let pruned_cost = ref 0 and pruned_infeasible = ref 0 and probes = ref 0 in
  let regions = ref [] in
  let note kind region_points =
    let n = List.length region_points in
    (match kind with
    | `Cost -> pruned_cost := !pruned_cost + n
    | `Infeasible -> pruned_infeasible := !pruned_infeasible + n);
    if record_pruned && region_points <> [] then
      regions := region_points :: !regions
  in
  let update (s : Objective.summary) =
    if s.Objective.feasible then begin
      match !incumbent_cost with
      | Some c when Money.compare s.Objective.worst_total_cost c >= 0 -> ()
      | _ ->
        incumbent := Some s;
        incumbent_cost := Some s.Objective.worst_total_cost
    end
  in
  (* Evaluate a batch of leaf cells: decode (the decoder is the lint
     pre-filter), summarize across the engine pool, fold in input order.
     Pruning decisions only ever read the incumbent between batches, so
     the result is --jobs-invariant. *)
  let eval_leaves pts =
    let decoded = List.filter_map (Candidate.design_of_point axes) pts in
    considered := !considered + List.length pts;
    let summaries =
      Engine.map engine (fun d -> Objective.summarize ~engine d scenarios) decoded
    in
    evaluations := !evaluations + List.length decoded;
    List.iter update summaries
  in
  let nk, na, nr, nb, nv = Candidate.tape_dims space in
  let nm = Candidate.mirror_count space in
  (* The mirror family first: it is tiny, its optima are strong (few
     devices, no tape robots), and an early incumbent is what gives the
     tape-family cost bound its teeth. Links are evaluated in listed
     order; when the axis is sorted ascending, outlays grow with the
     bundle, so once a link count's outlays reach the incumbent's total
     the rest of the axis is cut. *)
  let mirror_ascending =
    let rec sorted = function
      | a :: (b :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    sorted space.Candidate.mirror_links
  in
  let rec mirrors i =
    if i < nm then begin
      incr considered;
      match Candidate.design_of_point axes (Candidate.Mirror { links = i }) with
      | None -> mirrors (i + 1)
      | Some d ->
        let s = Objective.summarize ~engine d scenarios in
        incr evaluations;
        update s;
        let cut =
          mirror_ascending
          &&
          match !incumbent_cost with
          | None -> false
          | Some c -> Money.compare s.Objective.outlays c >= 0
        in
        if cut then
          note `Cost
            (List.init (nm - i - 1) (fun j ->
                 Candidate.Mirror { links = i + 1 + j }))
        else mirrors (i + 1)
    end
  in
  mirrors 0;
  (* The tape family, branching pit-kind / pit-retention / pit-acc /
     backup-acc with vault leaves batched. Along each ascending pit-acc
     axis the lint feasibility frontier is located by geometric bisection
     when the axis is long enough to pay for it. *)
  let subtree ~pit ~pit_acc ~pit_ret =
    List.concat
      (List.init nb (fun backup ->
           List.init nv (fun vault ->
               Candidate.Tape { pit; pit_acc; pit_ret; backup; vault })))
  in
  let vault_leaves ~pit ~pit_acc ~pit_ret ~backup =
    List.init nv (fun vault ->
        Candidate.Tape { pit; pit_acc; pit_ret; backup; vault })
  in
  let backups ~pit ~pit_acc ~pit_ret =
    for backup = 0 to nb - 1 do
      let prefix =
        Candidate.tape_prefix axes ~pit ~pit_acc ~pit_ret ~backup ()
      in
      if prefix <> None then incr probes;
      match Bound.judge ~incumbent:!incumbent_cost prefix with
      | Bound.Cut_infeasible ->
        note `Infeasible (vault_leaves ~pit ~pit_acc ~pit_ret ~backup)
      | Bound.Cut_cost ->
        note `Cost (vault_leaves ~pit ~pit_acc ~pit_ret ~backup)
      | Bound.Admit -> eval_leaves (vault_leaves ~pit ~pit_acc ~pit_ret ~backup)
    done
  in
  for pit = 0 to nk - 1 do
    for pit_ret = 0 to nr - 1 do
      let admit pit_acc =
        incr probes;
        match Candidate.tape_prefix axes ~pit ~pit_acc ~pit_ret () with
        | None -> true
        | Some p -> Storage_lint.accepts p
      in
      let start =
        if na < Bound.bisection_threshold then 0
        else begin
          match Bound.frontier ~admit na with
          | Some a0 ->
            if a0 > 0 then
              List.iter
                (fun pit_acc -> note `Infeasible (subtree ~pit ~pit_acc ~pit_ret))
                (List.init a0 Fun.id);
            a0
          | None ->
            List.iter
              (fun pit_acc -> note `Infeasible (subtree ~pit ~pit_acc ~pit_ret))
              (List.init na Fun.id);
            na
        end
      in
      for pit_acc = start to na - 1 do
        let prefix = Candidate.tape_prefix axes ~pit ~pit_acc ~pit_ret () in
        if prefix <> None then incr probes;
        match Bound.judge ~incumbent:!incumbent_cost prefix with
        | Bound.Cut_infeasible -> note `Infeasible (subtree ~pit ~pit_acc ~pit_ret)
        | Bound.Cut_cost -> note `Cost (subtree ~pit ~pit_acc ~pit_ret)
        | Bound.Admit -> backups ~pit ~pit_acc ~pit_ret
      done
    done
  done;
  ( !incumbent,
    {
      evaluations = !evaluations;
      considered = !considered;
      accepted = 0;
      pruned_cost = !pruned_cost;
      pruned_infeasible = !pruned_infeasible;
      probes = !probes;
    },
    List.rev !regions )

(* --- dispatch --- *)

let run_in ~engine ?(budget = default_budget) ?seed ?(record_pruned = false)
    ?background ~method_ kit space scenarios =
  if scenarios = [] then invalid_arg "Solver.run: no scenarios";
  if budget < 1 then invalid_arg "Solver.run: budget must be >= 1";
  let grid_points = Candidate.point_count space in
  if grid_points = 0 then invalid_arg "Solver.run: empty candidate space";
  let seed = match seed with Some s -> s | None -> Engine.seed engine in
  Storage_obs.Timer.time t_solver @@ fun () ->
  let axes = Candidate.axes ?background kit space in
  let best, stats, pruned =
    match method_ with
    | Grid ->
      let best, stats = run_grid ~engine ~axes ~space scenarios in
      (best, stats, [])
    | Bnb -> run_bnb ~engine ~record_pruned ~axes ~space scenarios
    | Anneal ->
      let o = Anneal.run ~engine ~budget ~seed ~space ~axes scenarios in
      ( o.Anneal.best,
        { zero_stats with
          evaluations = o.Anneal.evaluations;
          considered = o.Anneal.proposals;
          accepted = o.Anneal.accepted },
        [] )
  in
  Storage_obs.Counter.add obs_evaluations stats.evaluations;
  Storage_obs.Counter.add obs_accepted stats.accepted;
  Storage_obs.Counter.add obs_pruned_cost stats.pruned_cost;
  Storage_obs.Counter.add obs_pruned_infeasible stats.pruned_infeasible;
  Storage_obs.Counter.add obs_probes stats.probes;
  { method_; grid_points; budget; seed; best; stats; pruned }

let run ?engine ?budget ?seed ?record_pruned ?background ~method_ kit space
    scenarios =
  let owned, engine =
    match engine with Some e -> (false, e) | None -> (true, Engine.create ())
  in
  Fun.protect
    ~finally:(fun () -> if owned then Engine.shutdown engine)
    (fun () ->
      run_in ~engine ?budget ?seed ?record_pruned ?background ~method_ kit
        space scenarios)

(* --- hierarchical portfolio roll-up --- *)

type member = {
  label : string;
  workload : Workload.t;
  business : Business.t;
}

let member_of_design (d : Design.t) =
  { label = d.Design.name; workload = d.Design.workload;
    business = d.Design.business }

type site = {
  feasible : bool;
  overcommitted : string list;
  outlays : Money.t;
  penalties : Money.t;
  total : Money.t;
  worst_recovery_time : Duration.t;
  worst_loss : Data_loss.loss;
}

type portfolio_result = {
  assignments : (string * result) list;
  chosen : Design.t list;
  site : site;
}

let kit_devices (kit : Candidate.kit) =
  let devs =
    [ kit.Candidate.primary; kit.Candidate.tape_library; kit.Candidate.vault;
      kit.Candidate.remote_array ]
  in
  (* Kits may alias a device across roles; demands are keyed by name. *)
  List.fold_left
    (fun acc (d : Storage_device.Device.t) ->
      if List.exists (fun (e : Storage_device.Device.t) ->
             String.equal e.Storage_device.Device.name d.Storage_device.Device.name)
           acc
      then acc
      else d :: acc)
    [] devs
  |> List.rev

(* The background one member's search runs under: every other member's
   chosen design, projected onto the shared devices — the same labeled
   demands [Portfolio.make] attaches, computed against tentative
   assignments instead of final ones. *)
let background_for kit chosen ~self =
  kit_devices kit
  |> List.filter_map (fun (dev : Storage_device.Device.t) ->
         let extra =
           List.concat_map
             (fun (label, (d : Design.t)) ->
               if String.equal label self then []
               else
                 Design.demands_on d dev
                 |> List.map (fun (l : Storage_device.Demand.labeled) ->
                        { l with
                          Storage_device.Demand.technique =
                            label ^ ": " ^ l.Storage_device.Demand.technique }))
             chosen
         in
         if extra = [] then None
         else Some (dev.Storage_device.Device.name, extra))

let solve_portfolio ?engine ?budget ?seed ?(rounds = 2) ~method_ ~kit ~space
    ~members scenarios =
  if members = [] then invalid_arg "Solver.solve_portfolio: no members";
  if rounds < 1 then invalid_arg "Solver.solve_portfolio: rounds must be >= 1";
  let labels = List.map (fun m -> m.label) members in
  if List.length labels <> List.length (List.sort_uniq String.compare labels)
  then invalid_arg "Solver.solve_portfolio: member labels must be distinct";
  let owned, engine =
    match engine with Some e -> (false, e) | None -> (true, Engine.create ())
  in
  Fun.protect
    ~finally:(fun () -> if owned then Engine.shutdown engine)
  @@ fun () ->
  let seed = match seed with Some s -> s | None -> Engine.seed engine in
  let master = Storage_workload.Prng.create ~seed in
  let kit_for m =
    { kit with Candidate.workload = m.workload; business = m.business }
  in
  (* Gauss–Seidel over the members: each pass re-optimizes every member
     against the latest tentative assignments of the others, folded in as
     background demand on the shared devices. Per-(round, member) seeds
     come from one splitmix64 stream, so the whole consolidation is a
     pure function of (seed, budget, rounds). *)
  let assignments = ref [] (* (label, result) in member order, latest *) in
  let set label r =
    if List.mem_assoc label !assignments then
      assignments :=
        List.map
          (fun (l, old) -> if String.equal l label then (l, r) else (l, old))
          !assignments
    else assignments := !assignments @ [ (label, r) ]
  in
  let chosen () =
    List.filter_map
      (fun (label, r) ->
        match r.best with
        | None -> None
        | Some s -> Some (label, s.Objective.design))
      !assignments
  in
  for _round = 1 to rounds do
    List.iter
      (fun m ->
        let member_seed = Storage_workload.Prng.next_int64 master in
        let background = background_for kit (chosen ()) ~self:m.label in
        let background = if background = [] then None else Some background in
        let r =
          run_in ~engine ?budget ~seed:member_seed ?background ~method_
            (kit_for m) space scenarios
        in
        set m.label r)
      members
  done;
  (* Roll the per-object optima up into one site-level summary: the
     chosen designs become a [Portfolio] (shared fixed costs counted
     once, every member re-loaded with its neighbors' background), and
     each loaded member is re-summarized under the full consolidation. *)
  let chosen_designs =
    List.map
      (fun (label, (d : Design.t)) ->
        Design.make
          ~name:(label ^ ": " ^ d.Design.name)
          ~workload:d.Design.workload ~hierarchy:d.Design.hierarchy
          ~business:d.Design.business ())
      (chosen ())
  in
  let all_assigned = List.length chosen_designs = List.length members in
  let site, chosen_loaded =
    match (chosen_designs, Portfolio.make chosen_designs) with
    | [], _ | _, Error _ ->
      ( {
          feasible = false;
          overcommitted = [];
          outlays = Money.zero;
          penalties = Money.zero;
          total = Money.zero;
          worst_recovery_time = Duration.zero;
          worst_loss = Data_loss.Updates Duration.zero;
        },
        chosen_designs )
    | _, Ok p ->
      let loaded = Portfolio.members p in
      let over =
        List.map
          (fun ((d : Storage_device.Device.t), _) ->
            d.Storage_device.Device.name)
          (Portfolio.overcommitted p)
      in
      let summaries =
        Engine.map engine
          (fun d -> Objective.summarize ~engine d scenarios)
          loaded
      in
      let _, outlays = Portfolio.outlays p in
      let penalties =
        Money.sum
          (List.map (fun (s : Objective.summary) -> s.Objective.worst_penalties)
             summaries)
      in
      ( {
        feasible =
          all_assigned && over = []
          && List.for_all (fun (s : Objective.summary) -> s.Objective.feasible)
               summaries;
        overcommitted = over;
        outlays;
        penalties;
        total = Money.add outlays penalties;
        worst_recovery_time =
          List.fold_left
            (fun acc (s : Objective.summary) ->
              Duration.max acc s.Objective.worst_recovery_time)
            Duration.zero summaries;
        worst_loss =
          List.fold_left
            (fun acc (s : Objective.summary) ->
              if Data_loss.compare_loss s.Objective.worst_loss acc > 0 then
                s.Objective.worst_loss
              else acc)
            (Data_loss.Updates Duration.zero)
            summaries;
      },
        loaded )
  in
  { assignments = !assignments; chosen = chosen_loaded; site }

(* --- rendering --- *)

let pp ppf r =
  let best ppf = function
    | Some s -> Fmt.pf ppf "best: %a" Objective.pp s
    | None -> Fmt.pf ppf "no feasible design in the grid"
  in
  match r.method_ with
  | Grid ->
    Fmt.pf ppf "@[<v>solver grid: %d grid points, %d evaluated@,%a@]"
      r.grid_points r.stats.evaluations best r.best
  | Anneal ->
    Fmt.pf ppf
      "@[<v>solver anneal: %d grid points, budget %d, %d evaluated, %d moves \
       accepted@,%a@]"
      r.grid_points r.budget r.stats.evaluations r.stats.accepted best r.best
  | Bnb ->
    Fmt.pf ppf
      "@[<v>solver bnb: %d grid points, %d evaluated, %d pruned (%d by cost, \
       %d infeasible), %d bound probes@,%a@]"
      r.grid_points r.stats.evaluations
      (r.stats.pruned_cost + r.stats.pruned_infeasible)
      r.stats.pruned_cost r.stats.pruned_infeasible r.stats.probes best r.best

let summary_json (s : Objective.summary) =
  Json.Obj
    [
      ("design", Json.String s.Objective.design.Design.name);
      ("outlays_usd", Json.Float (Money.to_usd s.Objective.outlays));
      ( "worst_recovery_hours",
        Json.Float (Duration.to_hours s.Objective.worst_recovery_time) );
      ( "worst_loss",
        Json.String (Fmt.str "%a" Data_loss.pp_loss s.Objective.worst_loss) );
      ("total_usd", Json.Float (Money.to_usd s.Objective.worst_total_cost));
      ("feasible", Json.Bool s.Objective.feasible);
    ]

let to_json r =
  Json.Obj
    [
      ("solver", Json.String (method_name r.method_));
      ("grid_points", Json.Int r.grid_points);
      ("budget", Json.Int r.budget);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.seed));
      ("evaluations", Json.Int r.stats.evaluations);
      ("considered", Json.Int r.stats.considered);
      ("moves_accepted", Json.Int r.stats.accepted);
      ("pruned_cost", Json.Int r.stats.pruned_cost);
      ("pruned_infeasible", Json.Int r.stats.pruned_infeasible);
      ("bound_probes", Json.Int r.stats.probes);
      ("feasible", Json.Bool (r.best <> None));
      ( "best",
        match r.best with None -> Json.Null | Some s -> summary_json s );
    ]

let pp_portfolio ppf pr =
  let member ppf (label, r) =
    match r.best with
    | Some s ->
      Fmt.pf ppf "  %-16s %a" label Objective.pp s
    | None -> Fmt.pf ppf "  %-16s no feasible design" label
  in
  Fmt.pf ppf
    "@[<v>portfolio of %d objects (solver %s):@,%a@,site: outlays %a, \
     penalties %a, total %a, worst RT %s, worst DL %a%s%s@]"
    (List.length pr.assignments)
    (match pr.assignments with
    | (_, r) :: _ -> method_name r.method_
    | [] -> "-")
    (Fmt.list ~sep:Fmt.cut member)
    pr.assignments Money.pp pr.site.outlays Money.pp pr.site.penalties Money.pp
    pr.site.total
    (Duration.to_string pr.site.worst_recovery_time)
    Data_loss.pp_loss pr.site.worst_loss
    (match pr.site.overcommitted with
    | [] -> ""
    | names -> ", overcommitted: " ^ String.concat ", " names)
    (if pr.site.feasible then ", feasible" else ", infeasible")

let portfolio_to_json pr =
  Json.Obj
    [
      ( "members",
        Json.List
          (List.map
             (fun (label, r) ->
               Json.Obj [ ("label", Json.String label); ("result", to_json r) ])
             pr.assignments) );
      ( "site",
        Json.Obj
          [
            ("feasible", Json.Bool pr.site.feasible);
            ( "overcommitted",
              Json.List
                (List.map (fun n -> Json.String n) pr.site.overcommitted) );
            ("outlays_usd", Json.Float (Money.to_usd pr.site.outlays));
            ("penalties_usd", Json.Float (Money.to_usd pr.site.penalties));
            ("total_usd", Json.Float (Money.to_usd pr.site.total));
            ( "worst_recovery_hours",
              Json.Float (Duration.to_hours pr.site.worst_recovery_time) );
            ( "worst_loss",
              Json.String (Fmt.str "%a" Data_loss.pp_loss pr.site.worst_loss)
            );
          ] );
    ]
