open Storage_units
module Engine = Storage_engine
module Prng = Storage_workload.Prng

type outcome = {
  best : Objective.summary option;
  proposals : int;
  evaluations : int;
  accepted : int;
}

let chains = 4

(* Fixed temperature schedule: relative cost increases of ~8% are freely
   accepted early, and the chain is effectively greedy after ~1000 rounds.
   The schedule depends on the round index only — never on the budget —
   so a run with budget B evaluates a strict prefix of a run with budget
   B' > B (the monotone-budget law). *)
let temperature round = 0.08 *. (0.995 ** float_of_int round)

type chain = {
  prng : Prng.t;
  mutable point : Candidate.point;
  mutable energy : float;  (* +inf until a feasible summary is accepted *)
  mutable sweep : int;  (* next systematic index; -1 for annealing chains *)
}

let energy_of (s : Objective.summary) =
  if s.Objective.feasible then Money.to_usd s.Objective.worst_total_cost
  else Float.infinity

(* --- moves ------------------------------------------------------------ *)

let random_point prng space =
  Candidate.point_of_index space (Prng.int prng (Candidate.point_count space))

let random_tape prng space =
  Candidate.point_of_index space (Prng.int prng (Candidate.tape_count space))

let random_mirror prng space =
  Candidate.Mirror { links = Prng.int prng (Candidate.mirror_count space) }

let bump prng len i =
  if len <= 1 then i
  else if Prng.int prng 2 = 0 then (i + 1) mod len
  else (i + len - 1) mod len

(* Retune one frequency/retention axis by a single step (wrapping, so
   every proposal stays on the grid). *)
let step prng space (p : Candidate.point) =
  match p with
  | Candidate.Mirror { links } ->
    Candidate.Mirror { links = bump prng (Candidate.mirror_count space) links }
  | Candidate.Tape t -> (
    let nk, na, nr, nb, nv = Candidate.tape_dims space in
    match Prng.int prng 5 with
    | 0 -> Candidate.Tape { t with pit = bump prng nk t.pit }
    | 1 -> Candidate.Tape { t with pit_acc = bump prng na t.pit_acc }
    | 2 -> Candidate.Tape { t with pit_ret = bump prng nr t.pit_ret }
    | 3 -> Candidate.Tape { t with backup = bump prng nb t.backup }
    | _ -> Candidate.Tape { t with vault = bump prng nv t.vault })

(* Swap the protection technique: another PiT kind within the tape
   family, or jump across the family boundary. *)
let swap_technique prng space (p : Candidate.point) =
  match p with
  | Candidate.Tape t ->
    let nk, _, _, _, _ = Candidate.tape_dims space in
    if nk > 1 then
      Candidate.Tape { t with pit = (t.pit + 1 + Prng.int prng (nk - 1)) mod nk }
    else if Candidate.mirror_count space > 0 then random_mirror prng space
    else p
  | Candidate.Mirror _ ->
    if Candidate.tape_count space > 0 then random_tape prng space
    else step prng space p

(* Reassign the shared-resource slots: WAN link bundles for mirrors,
   retained-copy slots for PiT levels. *)
let reassign_slots prng space (p : Candidate.point) =
  match p with
  | Candidate.Mirror _ -> random_mirror prng space
  | Candidate.Tape t ->
    let _, _, nr, _, _ = Candidate.tape_dims space in
    Candidate.Tape { t with pit_ret = Prng.int prng nr }

let propose_move prng space p =
  let k = Prng.int prng 10 in
  if k < 6 then step prng space p
  else if k < 8 then swap_technique prng space p
  else if k < 9 then reassign_slots prng space p
  else random_point prng space

(* --- chain construction ----------------------------------------------- *)

(* Deterministic diverse starts: chain 0 sweeps the grid systematically
   from index 0 (with budget >= chains x point_count it alone visits
   every cell, making a full-budget run provably exhaustive); chain 1
   starts in the mirror family; chain 2 at the tape family's cost-greedy
   corner (longest windows, fewest retained copies — the cheapest
   corner under the cost model's monotonicities); chain 3 at a seeded
   random point. *)
let make_chain space prng index =
  let tapes = Candidate.tape_count space and mirrors = Candidate.mirror_count space in
  let point =
    match index with
    | 0 -> Candidate.point_of_index space 0
    | 1 when mirrors > 0 -> Candidate.Mirror { links = 0 }
    | 2 when tapes > 0 ->
      let _, na, _, nb, nv = Candidate.tape_dims space in
      Candidate.Tape
        { pit = 0; pit_acc = na - 1; pit_ret = 0; backup = nb - 1; vault = nv - 1 }
    | _ -> random_point prng space
  in
  { prng; point; energy = Float.infinity; sweep = (if index = 0 then 1 else -1) }

let propose space count c ~round =
  if round = 0 then c.point (* the starting cell is the first proposal *)
  else if c.sweep >= 0 then begin
    let i = c.sweep mod count in
    c.sweep <- c.sweep + 1;
    Candidate.point_of_index space i
  end
  else propose_move c.prng space c.point

(* --- the annealing loop ----------------------------------------------- *)

let run ~engine ~budget ~seed ~space ~axes scenarios =
  if budget < 1 then invalid_arg "Anneal.run: budget must be >= 1";
  let count = Candidate.point_count space in
  if count = 0 then invalid_arg "Anneal.run: empty candidate space";
  let master = Prng.create ~seed in
  let pool = Array.init chains (fun i -> make_chain space (Prng.split master) i) in
  let best = ref None in
  let proposals = ref 0 and evaluations = ref 0 and accepted = ref 0 in
  let consumed = ref 0 and round = ref 0 in
  while !consumed < budget do
    let width = min chains (budget - !consumed) in
    (* Each live chain contributes one proposal per round; the batch of
       decoded designs crosses the engine's pool as one [map], and every
       subsequent update folds in chain order — the report is a pure
       function of (seed, budget), independent of --jobs and --chunk. *)
    let batch =
      List.init width (fun i ->
          let p = propose space count pool.(i) ~round:!round in
          (i, p, Candidate.design_of_point axes p))
    in
    let designs = List.filter_map (fun (_, _, d) -> d) batch in
    let summaries =
      Engine.map engine (fun d -> Objective.summarize ~engine d scenarios) designs
    in
    evaluations := !evaluations + List.length designs;
    let remaining = ref summaries in
    List.iter
      (fun (i, p, d) ->
        incr proposals;
        let e =
          match d with
          | None -> Float.infinity (* off-grid / lint-rejected proposal *)
          | Some _ ->
            let s = List.hd !remaining in
            remaining := List.tl !remaining;
            (match !best with
            | Some (b : Objective.summary) when
                (not s.Objective.feasible)
                || Money.compare s.Objective.worst_total_cost
                     b.Objective.worst_total_cost >= 0 -> ()
            | _ -> if s.Objective.feasible then best := Some s);
            energy_of s
        in
        let c = pool.(i) in
        if c.sweep < 0 then begin
          let take =
            if e <= c.energy then true
            else if Float.is_finite c.energy then begin
              let rel = (e -. c.energy) /. Float.abs c.energy in
              Prng.float c.prng < Float.exp (-.rel /. temperature !round)
            end
            else true
          in
          if take then begin
            c.point <- p;
            c.energy <- e;
            if !round > 0 then incr accepted
          end
        end)
      batch;
    consumed := !consumed + width;
    incr round
  done;
  { best = !best; proposals = !proposals; evaluations = !evaluations;
    accepted = !accepted }
