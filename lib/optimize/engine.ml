(* Re-export: search users build engines constantly, so the optimize
   namespace carries the engine module as [Storage_optimize.Engine]. *)
include Storage_engine
