open Storage_model

(** The outer optimization loop: evaluate every candidate, keep the
    feasible ones, rank by worst-case total cost, and expose the Pareto
    frontier for human inspection. *)

type result = {
  evaluated : Objective.summary list;  (** every candidate, input order *)
  feasible : Objective.summary list;
      (** candidates meeting RTO/RPO in all scenarios, cheapest first *)
  frontier : Objective.summary list;
      (** Pareto-optimal candidates over (outlays, worst RT, worst DL) *)
  best : Objective.summary option;
      (** cheapest feasible design by worst-case total cost *)
}

val run :
  ?jobs:int -> ?cache:Eval_cache.t -> Design.t list -> Scenario.t list ->
  result
(** Raises [Invalid_argument] on empty candidates or scenarios.

    [?jobs] (default 1 = serial) evaluates candidates on that many domains
    via {!Storage_parallel.Pool}; every list of the result is in the same
    (input-derived) order whatever [jobs] is, and the summaries are
    identical to a serial run's — evaluation is pure, and workers only
    fill disjoint slots of the result.

    Evaluations go through an {!Eval_cache} keyed by structural
    fingerprints, so duplicate candidates are evaluated once. Pass
    [?cache] to share that cache across successive searches of an
    iterative what-if session: re-visited candidates cost a lookup, not an
    evaluation. The cache never changes any metric. *)

val pp : result Fmt.t
(** Prints the frontier and the winner. *)
