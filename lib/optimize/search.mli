open Storage_model

(** The outer optimization loop: evaluate every candidate, keep the
    feasible ones, rank by worst-case total cost, and expose the Pareto
    frontier for human inspection. *)

type result = {
  evaluated : Objective.summary list;  (** every candidate, input order *)
  feasible : Objective.summary list;
      (** candidates meeting RTO/RPO in all scenarios, cheapest first *)
  frontier : Objective.summary list;
      (** Pareto-optimal candidates over (outlays, worst RT, worst DL) *)
  best : Objective.summary option;
      (** cheapest feasible design by worst-case total cost *)
}

val run :
  ?jobs:int -> ?cache:Eval_cache.t -> ?lint:bool -> Design.t list ->
  Scenario.t list -> result
(** Raises [Invalid_argument] on empty candidates or scenarios.

    [?lint] (default [true]) statically pre-filters the candidates with
    [Storage_lint]: candidates carrying a lint {e error} (overcommitted
    devices, unsustainable links — exactly the conditions that make
    {!Evaluate.run} attach validation errors) are pruned before any
    evaluation, each incrementing the [lint.pruned] {!Storage_obs}
    counter. The result is identical to running over the hand-filtered
    candidate list; pass [~lint:false] to score statically invalid
    designs anyway (they come back infeasible). If every candidate is
    pruned the result is empty rather than an error.

    [?jobs] (default 1 = serial) evaluates candidates on that many domains
    via {!Storage_parallel.Pool}; every list of the result is in the same
    (input-derived) order whatever [jobs] is, and the summaries are
    identical to a serial run's — evaluation is pure, and workers only
    fill disjoint slots of the result.

    Evaluations go through an {!Eval_cache} keyed by structural
    fingerprints, so duplicate candidates are evaluated once. Pass
    [?cache] to share that cache across successive searches of an
    iterative what-if session: re-visited candidates cost a lookup, not an
    evaluation. The cache never changes any metric. *)

val pp : result Fmt.t
(** Prints the frontier and the winner. *)
