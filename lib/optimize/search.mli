open Storage_model

(** The outer optimization loop: stream every candidate through the
    engine, keep the feasible ones, rank by worst-case total cost, and
    expose the Pareto frontier for human inspection. *)

type result = {
  evaluated : Objective.summary list;
      (** every candidate, input order; [[]] when [~top_k] truncation is
          on (the full set is deliberately not retained) *)
  feasible : Objective.summary list;
      (** candidates meeting RTO/RPO in all scenarios, cheapest first;
          truncated to the [~top_k] cheapest when given *)
  frontier : Objective.summary list;
      (** Pareto-optimal candidates over (outlays, worst RT, worst DL) *)
  best : Objective.summary option;
      (** cheapest feasible design by worst-case total cost *)
  considered : int;
      (** candidates evaluated (after lint pruning) — the length
          [evaluated] would have had *)
  feasible_count : int;
      (** feasible candidates seen — the length [feasible] would have
          had without truncation *)
}

val run :
  ?engine:Storage_engine.t ->
  ?top_k:int ->
  Design.t Seq.t ->
  Scenario.t list ->
  result
(** [run candidates scenarios] consumes the candidate sequence once,
    streaming: each element is lint-checked, evaluated through the
    engine's shared {!Eval_cache} (on the engine's domains, in bounded
    windows — see {!Storage_engine.map_seq}), and folded into the
    result. Raises [Invalid_argument] on an empty candidate sequence or
    scenario list.

    Memory: without [~top_k] the full [evaluated]/[feasible] lists are
    returned, so memory is O(grid) as before. With [~top_k:k] only the
    [k] cheapest feasible summaries and the incremental Pareto frontier
    are retained — O(frontier + k) — which is what lets a million-design
    grid stream through a constant-size working set. [evaluated] is
    [[]] in that mode; [considered]/[feasible_count] still report the
    totals. Raises [Invalid_argument] when [top_k < 1].

    The engine's lint policy (default on) statically pre-filters the
    stream with [Storage_lint]: candidates carrying a lint {e error}
    (overcommitted devices, unsustainable links — exactly the conditions
    that make {!Evaluate.run} attach validation errors) are dropped
    before any evaluation, each incrementing the [lint.pruned]
    {!Storage_obs} counter. The result is identical to running over a
    hand-filtered grid; an engine with [~lint:false] scores statically
    invalid designs anyway (they come back infeasible). If every
    candidate is pruned the result is empty rather than an error.

    Whatever the engine's [jobs], every list of the result is in the
    same (input-derived) order and every summary is identical to a
    serial run's — evaluation is pure, and the streaming map preserves
    input order. Without [?engine] the search runs on a fresh serial
    engine (evaluations still share that run's cache, so duplicate
    candidates are evaluated once); pass an engine to add domains and to
    share the cache across the searches of an iterative what-if
    session — re-visited candidates cost a lookup, not an evaluation.
    The cache never changes any metric. *)

val run_materialized : Design.t list -> Scenario.t list -> result
(** The materialized reference loop the streaming path is
    property-tested against: whole-list lint pruning, serial scoring,
    quadratic reference frontier. Byte-identical results to {!run}
    without [~top_k] on the same grid. *)

val pp : result Fmt.t
(** Prints the counts, the frontier and the winner. *)
