open Storage_units
open Storage_model

(** Pruning bounds for branch-and-bound over the candidate grid.

    A tape-family subtree (all completions of a fixed PiT policy, or of a
    fixed PiT + backup policy) shares a {e prefix design} — the partial
    hierarchy built by {!Candidate.tape_prefix}. Two facts about the cost
    and demand model make prefixes useful bounds, both stated here and
    verified empirically by the soundness property suite in
    [test/test_optimize.ml] (which replays pruned regions exhaustively)
    and by the [solver-exhaustive-equivalence] testkit oracle:

    - appending a level only {e adds} demand, so a lint-rejected prefix
      has no acceptable completion (the lint feasibility frontier);
    - appending a level only {e adds} cost, so a prefix's outlays lower-
      bound every completion's [worst_total_cost]. *)

type verdict = Admit | Cut_infeasible | Cut_cost

val judge : incumbent:Money.t option -> Design.t option -> verdict
(** Judge a subtree by its prefix design. [Cut_infeasible] when the
    prefix is lint-rejected (no completion can be feasible);
    [Cut_cost] when its outlays already reach [incumbent] (the best
    feasible total cost found so far — completions can only tie, never
    beat it); [Admit] otherwise, including for [None] prefixes (an
    unbuildable prefix proves nothing about its completions). *)

val bisection_threshold : int
(** Axis length from which {!frontier} is worth its O(log n) probes over
    a linear scan (shorter axes are probed element-wise by the solver). *)

val frontier : admit:(int -> bool) -> int -> int option
(** [frontier ~admit n] locates the lint feasibility frontier along one
    ascending-accumulation axis of length [n]: the least index whose
    prefix is admitted, by geometric expansion from index 0 followed by
    binary search — the same bisection shape the testkit uses to locate
    workload feasibility frontiers ([Gen.frontier_factor]). [None] when
    no index is admitted. Assumes [admit] is monotone along the axis
    (shorter accumulation windows demand strictly more bandwidth); the
    soundness suite replays the skipped indices to check the assumption
    on real spaces. *)
