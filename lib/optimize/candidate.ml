open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

type kit = {
  workload : Workload.t;
  business : Business.t;
  primary : Device.t;
  tape_library : Device.t;
  vault : Device.t;
  remote_array : Device.t;
  san : Interconnect.t;
  shipment : Interconnect.t;
  wan : int -> Interconnect.t;
}

type space = {
  pit_techniques : [ `Split_mirror | `Snapshot ] list;
  pit_accumulations : Duration.t list;
  pit_retentions : int list;
  backup_accumulations : Duration.t list;
  backup_retention_horizon : Duration.t;
  vault_accumulations : Duration.t list;
  vault_retention_horizon : Duration.t;
  mirror_links : int list;
}

let default_space =
  {
    pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 6.; Duration.hours 12.; Duration.hours 24. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations =
      [ Duration.hours 24.; Duration.hours 48.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1.; Duration.weeks 4. ];
    vault_retention_horizon = Duration.years 3.;
    mirror_links = [ 1; 2; 4; 10 ];
  }

let retention_for ~horizon ~cycle =
  max 1 (int_of_float (ceil (Duration.ratio horizon cycle)))

let label_duration d =
  let h = Duration.to_hours d in
  if Float.rem h 168. = 0. then Printf.sprintf "%.0fwk" (h /. 168.)
  else if Float.rem h 24. = 0. then Printf.sprintf "%.0fd" (h /. 24.)
  else if h >= 1. then Printf.sprintf "%.0fh" h
  else Printf.sprintf "%.0fmin" (Duration.to_minutes d)

(* Scaled spaces for large-grid searches: same two PiT techniques and
   mirror family as [default_space], with the accumulation dimensions
   densified so that the grid grows as O(scale^3). The retention horizons
   are stretched (26 weeks of backups, 6 years of vault copies) so that
   retention counts stay non-decreasing up the hierarchy for every
   accumulation combination — a denser grid of valid designs, not a
   denser grid of lint rejects. *)
let scaled_space ~scale =
  if scale <= 1 then default_space
  else
    let spread lo hi n =
      List.init n (fun i ->
          Duration.hours
            (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1))))
    in
    {
      pit_techniques = [ `Split_mirror; `Snapshot ];
      pit_accumulations = spread 2. 24. (5 * scale);
      pit_retentions = [ 2; 3; 4 ];
      backup_accumulations = spread 24. 168. (4 * scale);
      backup_retention_horizon = Duration.weeks 26.;
      vault_accumulations = spread 168. (8. *. 168.) (3 * scale);
      vault_retention_horizon = Duration.years 6.;
      mirror_links = [ 1; 2; 3; 4; 6; 8; 10 ];
    }

(* The inner loop of [tape_designs] runs once per grid point, so anything
   that varies along only one axis — schedules, hierarchy-level records,
   name fragments — is precomputed per axis value and shared across every
   combination it appears in. Besides the construction time, the sharing
   keeps long-lived design accumulators (Pareto fronts, top-k sets) from
   retaining a private copy of each schedule per design. The axis tables
   are rebuilt at most once per traversal of the returned sequence, inside
   the first forced cell, preserving [enumerate]'s laziness. *)
let tape_designs kit space =
  fun () ->
    let primary_level =
      {
        Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
        device = kit.primary;
        link = None;
      }
    in
    let backups =
      List.map
        (fun backup_acc ->
          let backup_prop =
            Duration.min (Duration.scale 0.5 backup_acc) (Duration.hours 48.)
          in
          let backup_schedule =
            Schedule.simple ~acc:backup_acc ~prop:backup_prop
              ~hold:(Duration.hours 1.)
              ~retention_count:
                (retention_for ~horizon:space.backup_retention_horizon
                   ~cycle:backup_acc)
              ()
          in
          ( {
              Hierarchy.technique = Technique.Backup backup_schedule;
              device = kit.tape_library;
              link = Some kit.san;
            },
            label_duration backup_acc ))
        space.backup_accumulations
    in
    let vaults =
      List.map
        (fun vault_acc ->
          let vault_schedule =
            Schedule.simple ~acc:vault_acc
              ~prop:(Duration.hours 24.)
              ~hold:(Duration.hours 12.)
              ~retention_count:
                (retention_for ~horizon:space.vault_retention_horizon
                   ~cycle:vault_acc)
              ()
          in
          ( {
              Hierarchy.technique = Technique.Vaulting vault_schedule;
              device = kit.vault;
              link = Some kit.shipment;
            },
            label_duration vault_acc ))
        space.vault_accumulations
    in
    let ( let* ) xs f = Seq.concat_map f (List.to_seq xs) in
    (let* pit_kind = space.pit_techniques in
     let pit_prefix =
       match pit_kind with `Split_mirror -> "mirror" | `Snapshot -> "snap"
     in
     let* pit_acc = space.pit_accumulations in
     let pit_label = label_duration pit_acc in
     let* pit_ret = space.pit_retentions in
     let pit_schedule =
       Schedule.simple ~acc:pit_acc ~retention_count:pit_ret ()
     in
     let pit_technique =
       match pit_kind with
       | `Split_mirror -> Technique.Split_mirror pit_schedule
       | `Snapshot -> Technique.Virtual_snapshot pit_schedule
     in
     let pit_level =
       { Hierarchy.technique = pit_technique; device = kit.primary; link = None }
     in
     let pit_name =
       pit_prefix ^ "/" ^ pit_label ^ " x" ^ string_of_int pit_ret
       ^ ", backup/"
     in
     let* backup_level, backup_label = backups in
     let backup_name = pit_name ^ backup_label ^ ", vault/" in
     Seq.filter_map
       (fun (vault_level, vault_label) ->
         let name = backup_name ^ vault_label in
         match
           Hierarchy.make
             [ primary_level; pit_level; backup_level; vault_level ]
         with
         | Error _ -> None
         | Ok hierarchy ->
           let design =
             Design.make ~name ~workload:kit.workload ~hierarchy
               ~business:kit.business ()
           in
           if Design.validate design = Ok () then Some design else None)
       (List.to_seq vaults))
      ()

let mirror_designs kit space =
  fun () ->
    let schedule =
      Schedule.simple ~acc:(Duration.minutes 1.) ~prop:(Duration.minutes 1.)
        ~retention_count:1 ()
    in
    let primary_level =
      {
        Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
        device = kit.primary;
        link = None;
      }
    in
    let mirror_technique =
      Technique.Remote_mirror { mode = Technique.Asynchronous_batch; schedule }
    in
    Seq.filter_map
      (fun links ->
        match
          Hierarchy.make
            [
              primary_level;
              {
                technique = mirror_technique;
                device = kit.remote_array;
                link = Some (kit.wan links);
              };
            ]
        with
        | Error _ -> None
        | Ok hierarchy ->
          let design =
            Design.make
              ~name:("asyncB mirror x" ^ string_of_int links)
              ~workload:kit.workload ~hierarchy ~business:kit.business ()
          in
          if Design.validate design = Ok () then Some design else None)
      (List.to_seq space.mirror_links)
      ()

let enumerate kit space =
  Seq.append (tape_designs kit space) (mirror_designs kit space)

