open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

type kit = {
  workload : Workload.t;
  business : Business.t;
  primary : Device.t;
  tape_library : Device.t;
  vault : Device.t;
  remote_array : Device.t;
  san : Interconnect.t;
  shipment : Interconnect.t;
  wan : int -> Interconnect.t;
}

type space = {
  pit_techniques : [ `Split_mirror | `Snapshot ] list;
  pit_accumulations : Duration.t list;
  pit_retentions : int list;
  backup_accumulations : Duration.t list;
  backup_retention_horizon : Duration.t;
  vault_accumulations : Duration.t list;
  vault_retention_horizon : Duration.t;
  mirror_links : int list;
}

let default_space =
  {
    pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 6.; Duration.hours 12.; Duration.hours 24. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations =
      [ Duration.hours 24.; Duration.hours 48.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1.; Duration.weeks 4. ];
    vault_retention_horizon = Duration.years 3.;
    mirror_links = [ 1; 2; 4; 10 ];
  }

let retention_for ~horizon ~cycle =
  max 1 (int_of_float (ceil (Duration.ratio horizon cycle)))

let label_duration d =
  let h = Duration.to_hours d in
  if Float.rem h 168. = 0. then Printf.sprintf "%.0fwk" (h /. 168.)
  else if Float.rem h 24. = 0. then Printf.sprintf "%.0fd" (h /. 24.)
  else if h >= 1. then Printf.sprintf "%.0fh" h
  else Printf.sprintf "%.0fmin" (Duration.to_minutes d)

(* Scaled spaces for large-grid searches: same two PiT techniques and
   mirror family as [default_space], with the accumulation dimensions
   densified so that the grid grows as O(scale^3). The retention horizons
   are stretched (26 weeks of backups, 6 years of vault copies) so that
   retention counts stay non-decreasing up the hierarchy for every
   accumulation combination — a denser grid of valid designs, not a
   denser grid of lint rejects. *)
let scaled_space ~scale =
  if scale <= 1 then default_space
  else
    let spread lo hi n =
      List.init n (fun i ->
          Duration.hours
            (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1))))
    in
    {
      pit_techniques = [ `Split_mirror; `Snapshot ];
      pit_accumulations = spread 2. 24. (5 * scale);
      pit_retentions = [ 2; 3; 4 ];
      backup_accumulations = spread 24. 168. (4 * scale);
      backup_retention_horizon = Duration.weeks 26.;
      vault_accumulations = spread 168. (8. *. 168.) (3 * scale);
      vault_retention_horizon = Duration.years 6.;
      mirror_links = [ 1; 2; 3; 4; 6; 8; 10 ];
    }

let tape_designs kit space =
  let ( let* ) xs f = Seq.concat_map f (List.to_seq xs) in
  let* pit_kind = space.pit_techniques in
  let* pit_acc = space.pit_accumulations in
  let* pit_ret = space.pit_retentions in
  let* backup_acc = space.backup_accumulations in
  Seq.filter_map
    (fun vault_acc ->
      let pit_schedule =
        Schedule.simple ~acc:pit_acc ~retention_count:pit_ret ()
      in
      let pit_technique =
        match pit_kind with
        | `Split_mirror -> Technique.Split_mirror pit_schedule
        | `Snapshot -> Technique.Virtual_snapshot pit_schedule
      in
      let backup_prop =
        Duration.min (Duration.scale 0.5 backup_acc) (Duration.hours 48.)
      in
      let backup_schedule =
        Schedule.simple ~acc:backup_acc ~prop:backup_prop
          ~hold:(Duration.hours 1.)
          ~retention_count:
            (retention_for ~horizon:space.backup_retention_horizon
               ~cycle:backup_acc)
          ()
      in
      let vault_schedule =
        Schedule.simple ~acc:vault_acc
          ~prop:(Duration.hours 24.)
          ~hold:(Duration.hours 12.)
          ~retention_count:
            (retention_for ~horizon:space.vault_retention_horizon
               ~cycle:vault_acc)
          ()
      in
      let name =
        Printf.sprintf "%s/%s x%d, backup/%s, vault/%s"
          (match pit_kind with
          | `Split_mirror -> "mirror"
          | `Snapshot -> "snap")
          (label_duration pit_acc) pit_ret
          (label_duration backup_acc)
          (label_duration vault_acc)
      in
      match
        Hierarchy.make
          [
            {
              Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
              device = kit.primary;
              link = None;
            };
            {
              technique = pit_technique;
              device = kit.primary;
              link = None;
            };
            {
              technique = Technique.Backup backup_schedule;
              device = kit.tape_library;
              link = Some kit.san;
            };
            {
              technique = Technique.Vaulting vault_schedule;
              device = kit.vault;
              link = Some kit.shipment;
            };
          ]
      with
      | Error _ -> None
      | Ok hierarchy ->
        let design =
          Design.make ~name ~workload:kit.workload ~hierarchy
            ~business:kit.business ()
        in
        if Design.validate design = Ok () then Some design else None)
    (List.to_seq space.vault_accumulations)

let mirror_designs kit space =
  Seq.filter_map
    (fun links ->
      let schedule =
        Schedule.simple ~acc:(Duration.minutes 1.) ~prop:(Duration.minutes 1.)
          ~retention_count:1 ()
      in
      match
        Hierarchy.make
          [
            {
              Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
              device = kit.primary;
              link = None;
            };
            {
              technique =
                Technique.Remote_mirror
                  { mode = Technique.Asynchronous_batch; schedule };
              device = kit.remote_array;
              link = Some (kit.wan links);
            };
          ]
      with
      | Error _ -> None
      | Ok hierarchy ->
        let design =
          Design.make
            ~name:(Printf.sprintf "asyncB mirror x%d" links)
            ~workload:kit.workload ~hierarchy ~business:kit.business ()
        in
        if Design.validate design = Ok () then Some design else None)
    (List.to_seq space.mirror_links)

let enumerate kit space =
  Seq.append (tape_designs kit space) (mirror_designs kit space)

let legacy_enumerate kit space = List.of_seq (enumerate kit space)
