open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

type kit = {
  workload : Workload.t;
  business : Business.t;
  primary : Device.t;
  tape_library : Device.t;
  vault : Device.t;
  remote_array : Device.t;
  san : Interconnect.t;
  shipment : Interconnect.t;
  wan : int -> Interconnect.t;
}

type space = {
  pit_techniques : [ `Split_mirror | `Snapshot ] list;
  pit_accumulations : Duration.t list;
  pit_retentions : int list;
  backup_accumulations : Duration.t list;
  backup_retention_horizon : Duration.t;
  vault_accumulations : Duration.t list;
  vault_retention_horizon : Duration.t;
  mirror_links : int list;
}

let default_space =
  {
    pit_techniques = [ `Split_mirror; `Snapshot ];
    pit_accumulations = [ Duration.hours 6.; Duration.hours 12.; Duration.hours 24. ];
    pit_retentions = [ 2; 4 ];
    backup_accumulations =
      [ Duration.hours 24.; Duration.hours 48.; Duration.weeks 1. ];
    backup_retention_horizon = Duration.weeks 4.;
    vault_accumulations = [ Duration.weeks 1.; Duration.weeks 4. ];
    vault_retention_horizon = Duration.years 3.;
    mirror_links = [ 1; 2; 4; 10 ];
  }

let retention_for ~horizon ~cycle =
  max 1 (int_of_float (ceil (Duration.ratio horizon cycle)))

let label_duration d =
  let h = Duration.to_hours d in
  if Float.rem h 168. = 0. then Printf.sprintf "%.0fwk" (h /. 168.)
  else if Float.rem h 24. = 0. then Printf.sprintf "%.0fd" (h /. 24.)
  else if h >= 1. then Printf.sprintf "%.0fh" h
  else Printf.sprintf "%.0fmin" (Duration.to_minutes d)

(* Scaled spaces for large-grid searches: same two PiT techniques and
   mirror family as [default_space], with the accumulation dimensions
   densified so that the grid grows as O(scale^3). The retention horizons
   are stretched (26 weeks of backups, 6 years of vault copies) so that
   retention counts stay non-decreasing up the hierarchy for every
   accumulation combination — a denser grid of valid designs, not a
   denser grid of lint rejects. *)
let scaled_space ~scale =
  if scale <= 1 then default_space
  else
    let spread lo hi n =
      List.init n (fun i ->
          Duration.hours
            (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1))))
    in
    {
      pit_techniques = [ `Split_mirror; `Snapshot ];
      pit_accumulations = spread 2. 24. (5 * scale);
      pit_retentions = [ 2; 3; 4 ];
      backup_accumulations = spread 24. 168. (4 * scale);
      backup_retention_horizon = Duration.weeks 26.;
      vault_accumulations = spread 168. (8. *. 168.) (3 * scale);
      vault_retention_horizon = Duration.years 6.;
      mirror_links = [ 1; 2; 3; 4; 6; 8; 10 ];
    }

(* --- shared level construction ---

   [enumerate] and the solver's point decoder must produce structurally
   identical designs for the same grid coordinates (the testkit oracle
   compares their optima, and a shared engine cache should hit across
   both), so every level — and every name fragment — is built by exactly
   one function. *)

let primary_level kit =
  {
    Hierarchy.technique = Technique.Primary_copy { raid = Raid.Raid1 };
    device = kit.primary;
    link = None;
  }

let backup_level kit space backup_acc =
  let backup_prop =
    Duration.min (Duration.scale 0.5 backup_acc) (Duration.hours 48.)
  in
  let backup_schedule =
    Schedule.simple ~acc:backup_acc ~prop:backup_prop ~hold:(Duration.hours 1.)
      ~retention_count:
        (retention_for ~horizon:space.backup_retention_horizon ~cycle:backup_acc)
      ()
  in
  ( {
      Hierarchy.technique = Technique.Backup backup_schedule;
      device = kit.tape_library;
      link = Some kit.san;
    },
    label_duration backup_acc )

let vault_level kit space vault_acc =
  let vault_schedule =
    Schedule.simple ~acc:vault_acc
      ~prop:(Duration.hours 24.)
      ~hold:(Duration.hours 12.)
      ~retention_count:
        (retention_for ~horizon:space.vault_retention_horizon ~cycle:vault_acc)
      ()
  in
  ( {
      Hierarchy.technique = Technique.Vaulting vault_schedule;
      device = kit.vault;
      link = Some kit.shipment;
    },
    label_duration vault_acc )

let pit_parts kit pit_kind pit_acc pit_ret =
  let pit_prefix =
    match pit_kind with `Split_mirror -> "mirror" | `Snapshot -> "snap"
  in
  let pit_schedule = Schedule.simple ~acc:pit_acc ~retention_count:pit_ret () in
  let pit_technique =
    match pit_kind with
    | `Split_mirror -> Technique.Split_mirror pit_schedule
    | `Snapshot -> Technique.Virtual_snapshot pit_schedule
  in
  ( { Hierarchy.technique = pit_technique; device = kit.primary; link = None },
    pit_prefix ^ "/" ^ label_duration pit_acc ^ " x" ^ string_of_int pit_ret )

let mirror_level kit links =
  let schedule =
    Schedule.simple ~acc:(Duration.minutes 1.) ~prop:(Duration.minutes 1.)
      ~retention_count:1 ()
  in
  {
    Hierarchy.technique =
      Technique.Remote_mirror { mode = Technique.Asynchronous_batch; schedule };
    device = kit.remote_array;
    link = Some (kit.wan links);
  }

(* Assemble + the enumerate-time filter: a level stack that violates the
   hierarchy conventions, or a design the linter would reject, yields
   [None] — the same acceptance predicate everywhere a grid point becomes
   a design. *)
let assemble ?(background = []) kit ~name levels =
  match Hierarchy.make levels with
  | Error _ -> None
  | Ok hierarchy ->
    let design =
      Design.make ~name ~workload:kit.workload ~hierarchy
        ~business:kit.business ~background ()
    in
    if Design.validate design = Ok () then Some design else None

(* The inner loop of [tape_designs] runs once per grid point, so anything
   that varies along only one axis — schedules, hierarchy-level records,
   name fragments — is precomputed per axis value and shared across every
   combination it appears in. Besides the construction time, the sharing
   keeps long-lived design accumulators (Pareto fronts, top-k sets) from
   retaining a private copy of each schedule per design. The axis tables
   are rebuilt at most once per traversal of the returned sequence, inside
   the first forced cell, preserving [enumerate]'s laziness. *)
let tape_designs kit space =
  fun () ->
    let primary_level = primary_level kit in
    let backups = List.map (backup_level kit space) space.backup_accumulations in
    let vaults = List.map (vault_level kit space) space.vault_accumulations in
    let ( let* ) xs f = Seq.concat_map f (List.to_seq xs) in
    (let* pit_kind = space.pit_techniques in
     let* pit_acc = space.pit_accumulations in
     let* pit_ret = space.pit_retentions in
     let pit_level, pit_fragment = pit_parts kit pit_kind pit_acc pit_ret in
     let pit_name = pit_fragment ^ ", backup/" in
     let* backup_level, backup_label = backups in
     let backup_name = pit_name ^ backup_label ^ ", vault/" in
     Seq.filter_map
       (fun (vault_level, vault_label) ->
         assemble kit
           ~name:(backup_name ^ vault_label)
           [ primary_level; pit_level; backup_level; vault_level ])
       (List.to_seq vaults))
      ()

let mirror_designs kit space =
  fun () ->
    let primary_level = primary_level kit in
    Seq.filter_map
      (fun links ->
        assemble kit
          ~name:("asyncB mirror x" ^ string_of_int links)
          [ primary_level; mirror_level kit links ])
      (List.to_seq space.mirror_links)
      ()

let enumerate kit space =
  Seq.append (tape_designs kit space) (mirror_designs kit space)

(* --- the grid as an indexed coordinate space --- *)

type point =
  | Tape of { pit : int; pit_acc : int; pit_ret : int; backup : int; vault : int }
  | Mirror of { links : int }

let tape_dims space =
  ( List.length space.pit_techniques,
    List.length space.pit_accumulations,
    List.length space.pit_retentions,
    List.length space.backup_accumulations,
    List.length space.vault_accumulations )

let tape_count space =
  let nk, na, nr, nb, nv = tape_dims space in
  nk * na * nr * nb * nv

let mirror_count space = List.length space.mirror_links
let point_count space = tape_count space + mirror_count space

(* Mixed-radix decode in [enumerate]'s order: the tape family first
   (pit kind outermost, vault innermost), then the mirrors. *)
let point_of_index space i =
  let tapes = tape_count space in
  if i < 0 || i >= tapes + mirror_count space then
    invalid_arg "Candidate.point_of_index: index out of range";
  if i < tapes then begin
    let _, na, nr, nb, nv = tape_dims space in
    let vault = i mod nv in
    let i = i / nv in
    let backup = i mod nb in
    let i = i / nb in
    let pit_ret = i mod nr in
    let i = i / nr in
    let pit_acc = i mod na in
    let pit = i / na in
    Tape { pit; pit_acc; pit_ret; backup; vault }
  end
  else Mirror { links = i - tapes }

let points space =
  Seq.map (point_of_index space) (Seq.init (point_count space) Fun.id)

type axes = {
  akit : kit;
  background : (string * Storage_device.Demand.labeled list) list;
  aprimary : Hierarchy.level;
  pit_kinds : [ `Split_mirror | `Snapshot ] array;
  pit_accs : Duration.t array;
  pit_rets : int array;
  abackups : (Hierarchy.level * string) array;
  avaults : (Hierarchy.level * string) array;
  amirrors : int array;
}

let axes ?(background = []) kit space =
  {
    akit = kit;
    background;
    aprimary = primary_level kit;
    pit_kinds = Array.of_list space.pit_techniques;
    pit_accs = Array.of_list space.pit_accumulations;
    pit_rets = Array.of_list space.pit_retentions;
    abackups =
      Array.of_list (List.map (backup_level kit space) space.backup_accumulations);
    avaults =
      Array.of_list (List.map (vault_level kit space) space.vault_accumulations);
    amirrors = Array.of_list space.mirror_links;
  }

let in_range a i = i >= 0 && i < Array.length a

let design_of_point t = function
  | Tape { pit; pit_acc; pit_ret; backup; vault } ->
    if
      in_range t.pit_kinds pit && in_range t.pit_accs pit_acc
      && in_range t.pit_rets pit_ret && in_range t.abackups backup
      && in_range t.avaults vault
    then begin
      let pit_level, pit_fragment =
        pit_parts t.akit t.pit_kinds.(pit) t.pit_accs.(pit_acc)
          t.pit_rets.(pit_ret)
      in
      let backup_level, backup_label = t.abackups.(backup) in
      let vault_level, vault_label = t.avaults.(vault) in
      assemble ~background:t.background t.akit
        ~name:(pit_fragment ^ ", backup/" ^ backup_label ^ ", vault/" ^ vault_label)
        [ t.aprimary; pit_level; backup_level; vault_level ]
    end
    else None
  | Mirror { links } ->
    if in_range t.amirrors links then
      assemble ~background:t.background t.akit
        ~name:("asyncB mirror x" ^ string_of_int t.amirrors.(links))
        [ t.aprimary; mirror_level t.akit t.amirrors.(links) ]
    else None

let tape_prefix t ~pit ~pit_acc ~pit_ret ?backup () =
  if
    not
      (in_range t.pit_kinds pit && in_range t.pit_accs pit_acc
      && in_range t.pit_rets pit_ret)
  then None
  else begin
    let pit_level, pit_fragment =
      pit_parts t.akit t.pit_kinds.(pit) t.pit_accs.(pit_acc) t.pit_rets.(pit_ret)
    in
    let levels, name =
      match backup with
      | None -> ([ t.aprimary; pit_level ], "prefix " ^ pit_fragment)
      | Some b ->
        if not (in_range t.abackups b) then ([], "")
        else begin
          let backup_level, backup_label = t.abackups.(b) in
          ( [ t.aprimary; pit_level; backup_level ],
            "prefix " ^ pit_fragment ^ ", backup/" ^ backup_label )
        end
    in
    if levels = [] then None
    else begin
      match Hierarchy.make levels with
      | Error _ -> None
      | Ok hierarchy ->
        Some
          (Design.make ~name ~workload:t.akit.workload ~hierarchy
             ~business:t.akit.business ~background:t.background ())
    end
  end
