open Storage_units
open Storage_model

let dominates (a : Objective.summary) (b : Objective.summary) =
  let cost = Money.compare a.Objective.outlays b.Objective.outlays in
  let rt =
    Duration.compare a.Objective.worst_recovery_time
      b.Objective.worst_recovery_time
  in
  let dl = Data_loss.compare_loss a.Objective.worst_loss b.Objective.worst_loss in
  cost <= 0 && rt <= 0 && dl <= 0 && (cost < 0 || rt < 0 || dl < 0)

(* Incremental frontier: the survivors so far, in input order. [insert]
   drops the newcomer if any survivor dominates it, otherwise evicts the
   survivors it dominates and appends it. Because [dominates] is a strict
   partial order (irreflexive: equal points never dominate each other),
   an element dominated by the newcomer cannot itself dominate a later
   input that the newcomer would not also dominate — so insertion-time
   eviction loses nothing, and folding [insert] over the input yields
   exactly the non-dominated subset in input order, i.e. the same list
   as the quadratic [frontier_reference] filter. Each insertion is
   O(front); the whole fold is O(n x front) instead of O(n^2), and
   streaming search never holds more than the frontier itself. *)
type front = Objective.summary list

let empty = []

let insert front s =
  if List.exists (fun survivor -> dominates survivor s) front then front
  else List.filter (fun survivor -> not (dominates s survivor)) front @ [ s ]

let contents front = front
let frontier summaries = List.fold_left insert empty summaries

let frontier_reference summaries =
  List.filter
    (fun s -> not (List.exists (fun other -> dominates other s) summaries))
    summaries
