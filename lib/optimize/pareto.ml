open Storage_units
open Storage_model

let dominates (a : Objective.summary) (b : Objective.summary) =
  let cost = Money.compare a.Objective.outlays b.Objective.outlays in
  let rt =
    Duration.compare a.Objective.worst_recovery_time
      b.Objective.worst_recovery_time
  in
  let dl = Data_loss.compare_loss a.Objective.worst_loss b.Objective.worst_loss in
  cost <= 0 && rt <= 0 && dl <= 0 && (cost < 0 || rt < 0 || dl < 0)

let same_score (a : Objective.summary) (b : Objective.summary) =
  Money.compare a.Objective.outlays b.Objective.outlays = 0
  && Duration.compare a.Objective.worst_recovery_time
       b.Objective.worst_recovery_time
     = 0
  && Data_loss.compare_loss a.Objective.worst_loss b.Objective.worst_loss = 0

(* Total order over equal-score survivors: design name, then the design's
   structural fingerprint (so two structurally distinct candidates that
   happen to share a name and a score still order the same way regardless
   of arrival order). *)
let tie_break (a : Objective.summary) (b : Objective.summary) =
  let c =
    String.compare a.Objective.design.Design.name b.Objective.design.Design.name
  in
  if c <> 0 then c
  else
    String.compare
      (Design.fingerprint a.Objective.design)
      (Design.fingerprint b.Objective.design)

(* Incremental frontier: the survivors so far. [insert] drops the newcomer
   if any survivor dominates it, otherwise evicts the survivors it
   dominates and splices it in. Because [dominates] reads only the score
   triple (outlays, worst RT, worst DL) and is a strict partial order
   (irreflexive: equal points never dominate each other), domination
   admits or evicts whole equal-score classes at once — so each class
   stays a contiguous run, anchored where its first survivor arrived and
   internally ordered by [tie_break] (equal keys keep arrival order).
   That pinned internal order is what makes the frontier independent of
   how equal-score, structurally-distinct candidates were interleaved in
   the input; classes themselves (and singletons) remain in input order.
   An element dominated by the newcomer cannot itself dominate a later
   input that the newcomer would not also dominate — so insertion-time
   eviction loses nothing, and folding [insert] over the input yields
   exactly the same list as the quadratic [frontier_reference] filter.
   Each insertion is O(front); the whole fold is O(n x front) instead of
   O(n^2), and streaming search never holds more than the frontier
   itself. *)
type front = Objective.summary list

let empty = []

let insert front s =
  if List.exists (fun survivor -> dominates survivor s) front then front
  else begin
    let front =
      List.filter (fun survivor -> not (dominates s survivor)) front
    in
    (* Walk to [s]'s equal-score class (if present) and place [s] inside
       it in [tie_break] order; a newcomer with no class appends at the
       end, founding a new class there. *)
    let rec splice = function
      | [] -> [ s ]
      | x :: rest when same_score x s ->
        if tie_break s x < 0 then s :: x :: rest else x :: splice_group rest
      | x :: rest -> x :: splice rest
    and splice_group = function
      | [] -> [ s ]
      | x :: rest when same_score x s ->
        if tie_break s x < 0 then s :: x :: rest else x :: splice_group rest
      | rest -> s :: rest (* end of the class: stay contiguous *)
    in
    splice front
  end

let contents front = front
let frontier summaries = List.fold_left insert empty summaries

let frontier_reference summaries =
  let non_dominated =
    List.filter
      (fun s -> not (List.exists (fun other -> dominates other s) summaries))
      summaries
  in
  (* Regroup each equal-score class at its first occurrence, internally
     stable-sorted by [tie_break] — the specification [insert] maintains
     incrementally. *)
  let rec regroup seen = function
    | [] -> []
    | x :: rest ->
      if List.exists (same_score x) seen then regroup seen rest
      else
        List.stable_sort tie_break (List.filter (same_score x) non_dominated)
        @ regroup (x :: seen) rest
  in
  regroup [] non_dominated
