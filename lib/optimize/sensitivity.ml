open Storage_units
open Storage_model

type point = {
  value : float;
  recovery_time : Duration.t;
  loss : Data_loss.loss;
  outlays : Money.t;
  penalties : Money.t;
  total_cost : Money.t;
}

let point_of_report value (r : Evaluate.report) =
  {
    value;
    recovery_time = r.Evaluate.recovery_time;
    loss = r.Evaluate.data_loss.Data_loss.loss;
    outlays = r.Evaluate.outlays.Cost.total;
    penalties = r.Evaluate.penalties.Cost.total;
    total_cost = r.Evaluate.total_cost;
  }

let t_sweep = Storage_obs.Timer.make "sensitivity.sweep"
let obs_points = Storage_obs.Counter.make "sensitivity.points"

let sweep ?engine build ~values scenario =
  if values = [] then invalid_arg "Sensitivity.sweep: no values";
  Storage_obs.Counter.add obs_points (List.length values);
  Storage_obs.Timer.time t_sweep @@ fun () ->
  match engine with
  | None ->
    List.map (fun v -> point_of_report v (Evaluate.run (build v) scenario)) values
  | Some e ->
    let cache = Eval_cache.of_engine e in
    Storage_engine.map e
      (fun v -> point_of_report v (Eval_cache.run cache (build v) scenario))
      values

let crossover ?engine build_a ~values scenario ~metric ~against =
  if values = [] then invalid_arg "Sensitivity.crossover: no values";
  let a = sweep ?engine build_a ~values scenario in
  let b = sweep ?engine against ~values scenario in
  List.find_opt
    (fun (pa, pb) -> metric pa >= metric pb)
    (List.combine a b)
  |> Option.map (fun (pa, _) -> pa.value)

let pp_point ppf p =
  Fmt.pf ppf "%8.2f: RT %-9s DL %-10s out %-9s pen %-9s total %s" p.value
    (Duration.to_string p.recovery_time)
    (Fmt.str "%a" Data_loss.pp_loss p.loss)
    (Money.to_string p.outlays)
    (Money.to_string p.penalties)
    (Money.to_string p.total_cost)
