open Storage_units
open Storage_model

(** Scoring a design against a set of failure scenarios.

    The business-continuity planner cares about the worst case across the
    failure scenarios it must plan for; a design's score aggregates its
    per-scenario evaluations accordingly. *)

type summary = {
  design : Design.t;
  reports : Evaluate.report list;  (** one per scenario, in input order *)
  outlays : Money.t;  (** scenario-independent *)
  worst_recovery_time : Duration.t;
  worst_loss : Data_loss.loss;
  worst_penalties : Money.t;
  worst_total_cost : Money.t;
      (** outlays plus the worst scenario's penalties *)
  feasible : bool;
      (** no validation errors, every scenario recoverable, and every
          specified RTO/RPO met in every scenario *)
}

val summarize :
  ?engine:Storage_engine.t -> Design.t -> Scenario.t list -> summary
(** Raises [Invalid_argument] on an empty scenario list. With an
    [?engine], the per-(design, scenario) evaluations go through the
    engine's shared {!Eval_cache}; the summary is identical with or
    without it. *)

val pp : summary Fmt.t
