(** Pareto frontiers over design summaries.

    A design dominates another when it is no worse on every objective
    (outlays, worst recovery time, worst data loss) and strictly better on
    at least one. The frontier is the set of non-dominated designs — the
    menu a storage administrator actually chooses from. *)

val dominates : Objective.summary -> Objective.summary -> bool
(** [dominates a b] per the (outlays, worst RT, worst DL) objectives.
    [Entire_object] losses compare worse than any finite loss. *)

val frontier : Objective.summary list -> Objective.summary list
(** Non-dominated subset, preserving input order — except that survivors
    with {e equal} scores on all three objectives (a tie the dominance
    order cannot see) form one contiguous run at the first survivor's
    position, internally ordered by a pinned deterministic tie-break
    (design name, then structural fingerprint). Without the pin, the
    relative order of structurally-distinct tied candidates would leak
    the enumeration order. Computed incrementally (a fold of {!insert});
    O(n x frontier size) rather than the old O(n^2) scan, and provably
    equal — list for list — to {!frontier_reference}. *)

val frontier_reference : Objective.summary list -> Objective.summary list
(** The quadratic specification: filter out everything some other element
    dominates. Kept as the oracle for the incremental implementation's
    property tests; prefer {!frontier}. *)

(** {1 Online frontier}

    Streaming search folds candidates through an accumulator so the
    frontier of a million-design grid is maintained in O(frontier)
    memory. *)

type front
(** The non-dominated subset of the elements inserted so far. *)

val empty : front

val insert : front -> Objective.summary -> front
(** Drops the newcomer if dominated; otherwise evicts what it dominates
    and splices it in (joining its equal-score class in tie-break order,
    or founding one at the end). [contents (List.fold_left insert empty
    xs)] is [frontier xs]. *)

val contents : front -> Objective.summary list
(** Survivors in insertion order. *)
