(** {!Storage_engine} re-exported next to the search loops that consume
    it: [Storage_optimize.Engine.create ~jobs:8 ()] is the usual way to
    set up a parallel search session. *)

include module type of struct
  include Storage_engine
end
