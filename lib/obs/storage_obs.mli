(** Domain-safe instrumentation for the evaluation engine.

    A process-wide registry of named metrics — monotonically increasing
    counters, wall-clock timers, log-spaced histograms and polled gauges —
    that the hot paths of the framework (evaluation stages, the memo
    cache, the domain pool, the simulator, the search loops) update as
    they run. The registry snapshots to the {!Storage_report.Json} type so
    a stats dump composes with every other machine-readable output.

    Instrumentation is {b off by default} and must never change a result:
    when disabled, every recording operation is a single atomic load and a
    branch, and timers run the instrumented function untouched. Metrics
    are created at module-initialization time (handles are cheap to make
    and idempotent by name), so the set of registered names is stable
    whether or not recording is enabled.

    All operations are safe to call concurrently from multiple domains:
    counts are [Atomic] read-modify-writes, and the registry itself is
    guarded by a mutex only on the (rare) registration path. *)

val enable : unit -> unit
(** Turn recording on, process-wide. *)

val disable : unit -> unit
(** Turn recording off. Recorded values are kept until {!reset}. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter, timer and histogram (gauges are polled, not
    stored). Registered names survive. *)

val now : unit -> float
(** The registry's time source, in seconds. By default
    [Unix.gettimeofday] — {b wall-clock} time, chosen so that spans are
    meaningful across domains without a monotonic-clock dependency. The
    caveat: wall-clock time can step (NTP adjustment, manual change)
    between the two reads of a span, so every span computed from this
    clock {e must} be clamped to [>= 0] before it is recorded — {!Timer.time}
    and the pool's queue-wait instrumentation do so. Instrumentation may
    under-report a span that straddles a step; it never records a
    negative or step-sized one. *)

val with_clock : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_clock c f] runs [f] with {!now} reading [c] instead of the
    wall clock, restoring the previous clock on the way out (also on
    exceptions). A test hook for exercising clock-step behaviour; the
    swap is atomic but not scoped per-domain, so production code should
    never run concurrently with it. *)

(** Monotonically increasing event counts. *)
module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or retrieves) the counter called [name].
      Two [make]s of the same name share one counter. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Current count (readable even while disabled). *)
end

(** Accumulated wall-clock time over a named operation. *)
module Timer : sig
  type t

  val make : string -> t

  val time : t -> (unit -> 'a) -> 'a
  (** [time t f] runs [f ()], adding its duration (via {!now} — wall
      clock, see the caveat there) and one call to [t] when recording is
      enabled; when disabled it is exactly [f ()]. The duration is
      recorded even when [f] raises, and is clamped to [>= 0] so a
      wall-clock step backwards mid-span records a zero-length call, not
      a negative or enormous one. *)

  val count : t -> int
  val total_seconds : t -> float
end

(** Distributions over positive magnitudes (durations, sizes), bucketed
    into fixed log-spaced bins. *)
module Histogram : sig
  type t

  val make : ?lo:float -> ?ratio:float -> ?buckets:int -> string -> t
  (** [make name] registers a histogram whose first bucket holds
      observations [<= lo] (default [1e-6]) and whose [buckets] (default
      [24]) successive upper bounds grow by [ratio] (default [4.]), with a
      final unbounded overflow bucket. The defaults span 1 microsecond to
      beyond 10^8 seconds. Same-name [make]s share one histogram; the
      bucket geometry of the first registration wins. *)

  val observe : t -> float -> unit
  (** Record one observation (no-op while disabled). Non-finite and
      negative values land in the first bucket. *)

  val count : t -> int
  val sum : t -> float
end

val gauge : string -> (unit -> float) -> unit
(** [gauge name poll] registers a gauge whose value is [poll ()] at
    snapshot time. Re-registering a name replaces its poll function.
    [poll] must be safe to call from any domain. *)

val snapshot : unit -> Storage_report.Json.t
(** The current value of every registered metric, as one JSON object
    keyed by metric name (sorted): counters as integers, gauges as
    floats, timers as [{count, seconds, mean_seconds, per_second}], and
    histograms as [{count, sum, mean, buckets: [{le, count}, ...]}]
    (zero-count buckets omitted; the overflow bucket's [le] is [null]). *)

val pp_table : unit Fmt.t
(** A human-readable table of the same snapshot, for [--stats]. *)
