module J = Storage_report.Json

(* Audited SA007 suppression: the registry's intern path reads, builds
   and publishes under one lock with the result threaded out of the
   critical section by hand; snapshot iterates under the same lock.
   Every unlock is explicit and every path is covered by the tests. *)
[@@@sslint.allow "SA007"]

(* Process-wide switch. One atomic load + branch on every recording
   operation is the entire disabled-path cost. *)
let state = Atomic.make false
let enable () = Atomic.set state true
let disable () = Atomic.set state false
let enabled () = Atomic.get state

(* Timers accumulate integer nanoseconds so that concurrent additions can
   use [Atomic.fetch_and_add]; 2^62 ns is ~146 years of accumulated
   wall-clock time, far beyond any process lifetime. *)
let ns_of_seconds s = int_of_float (s *. 1e9)
let seconds_of_ns ns = float_of_int ns /. 1e9

(* The time source behind every span measurement. [Unix.gettimeofday] is
   wall-clock time: an NTP step (or any administrative clock change)
   between the two reads of a span makes the difference negative or
   wildly large, so spans are clamped to >= 0 where they are computed.
   Kept swappable (atomically, so concurrent timers always see a
   coherent function) for the injected-clock regression tests. *)
let clock : (unit -> float) Atomic.t = Atomic.make Unix.gettimeofday
let now () = (Atomic.get clock) ()

let with_clock c f =
  let prev = Atomic.get clock in
  Atomic.set clock c;
  Fun.protect ~finally:(fun () -> Atomic.set clock prev) f

(* Histogram observations are arbitrary user magnitudes, not process
   lifetimes, so their sum must accumulate as a float: a CAS retry loop
   stands in for the fetch-and-add that [float Atomic.t] lacks. *)
let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

type timer_state = { calls : int Atomic.t; total_ns : int Atomic.t }

type histogram_state = {
  bounds : float array;  (* upper bound of each bucket; last is +inf *)
  bucket_counts : int Atomic.t array;
  observations : int Atomic.t;
  total : float Atomic.t;
}

type metric =
  | M_counter of int Atomic.t
  | M_timer of timer_state
  | M_histogram of histogram_state
  | M_gauge of (unit -> float)

(* The registry. Registration happens at module-initialization time and is
   guarded by a mutex; recording thereafter touches only the metric's own
   atomics. *)
let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Get-or-create under the lock, so same-name handles share one metric. *)
let intern name build project =
  Mutex.lock lock;
  let found = Hashtbl.find_opt registry name in
  let result =
    match found with
    | Some m -> project m
    | None ->
      let m = build () in
      Hashtbl.replace registry name m;
      project m
  in
  Mutex.unlock lock;
  match result with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs: %S is already registered as another kind" name)

module Counter = struct
  type t = int Atomic.t

  let make name =
    intern name
      (fun () -> M_counter (Atomic.make 0))
      (function M_counter c -> Some c | _ -> None)

  let incr t = if enabled () then Atomic.incr t
  let add t n = if enabled () then ignore (Atomic.fetch_and_add t n)
  let value = Atomic.get
end

module Timer = struct
  type t = timer_state

  let make name =
    intern name
      (fun () ->
        M_timer { calls = Atomic.make 0; total_ns = Atomic.make 0 })
      (function M_timer t -> Some t | _ -> None)

  let time t f =
    if enabled () then begin
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          (* Clamp: a wall-clock step backwards mid-span must not subtract
             from (or, cast to unsigned, explode) the accumulated total. *)
          let dt = Float.max 0. (now () -. t0) in
          Atomic.incr t.calls;
          ignore (Atomic.fetch_and_add t.total_ns (ns_of_seconds dt)))
        f
    end
    else f ()

  let count t = Atomic.get t.calls
  let total_seconds t = seconds_of_ns (Atomic.get t.total_ns)
end

module Histogram = struct
  type t = histogram_state

  let make ?(lo = 1e-6) ?(ratio = 4.) ?(buckets = 24) name =
    if lo <= 0. || ratio <= 1. || buckets < 1 then
      invalid_arg "Obs.Histogram.make: need lo > 0, ratio > 1, buckets >= 1";
    intern name
      (fun () ->
        let bounds =
          Array.init (buckets + 1) (fun i ->
              if i = buckets then Float.infinity
              else lo *. (ratio ** float_of_int i))
        in
        M_histogram
          {
            bounds;
            bucket_counts = Array.init (buckets + 1) (fun _ -> Atomic.make 0);
            observations = Atomic.make 0;
            total = Atomic.make 0.;
          })
      (function M_histogram h -> Some h | _ -> None)

  let observe t v =
    if enabled () then begin
      let v = if Float.is_finite v && v > 0. then v else 0. in
      let n = Array.length t.bounds in
      let rec bucket i =
        if i >= n - 1 || v <= t.bounds.(i) then i else bucket (i + 1)
      in
      Atomic.incr t.bucket_counts.(bucket 0);
      Atomic.incr t.observations;
      atomic_add_float t.total v
    end

  let count t = Atomic.get t.observations
  let sum t = Atomic.get t.total
end

let gauge name poll =
  Mutex.lock lock;
  Hashtbl.replace registry name (M_gauge poll);
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> Atomic.set c 0
      | M_timer t ->
        Atomic.set t.calls 0;
        Atomic.set t.total_ns 0
      | M_histogram h ->
        Array.iter (fun c -> Atomic.set c 0) h.bucket_counts;
        Atomic.set h.observations 0;
        Atomic.set h.total 0.
      | M_gauge _ -> ())
    registry;
  Mutex.unlock lock

let sorted_metrics () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let timer_fields t =
  let n = Timer.count t and s = Timer.total_seconds t in
  [
    ("count", J.Int n);
    ("seconds", J.Float s);
    ("mean_seconds", J.Float (if n = 0 then 0. else s /. float_of_int n));
    ("per_second", J.Float (if s > 0. then float_of_int n /. s else 0.));
  ]

let histogram_fields (h : histogram_state) =
  let n = Histogram.count h and s = Histogram.sum h in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let c = Atomic.get c in
           if c = 0 then None
           else
             let le =
               let b = h.bounds.(i) in
               if Float.is_finite b then J.Float b else J.Null
             in
             Some (J.Obj [ ("le", le); ("count", J.Int c) ]))
         h.bucket_counts)
    |> List.filter_map Fun.id
  in
  [
    ("count", J.Int n);
    ("sum", J.Float s);
    ("mean", J.Float (if n = 0 then 0. else s /. float_of_int n));
    ("buckets", J.List buckets);
  ]

let snapshot () =
  J.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | M_counter c -> J.Int (Counter.value c)
           | M_gauge poll -> J.Float (poll ())
           | M_timer t -> J.Obj (timer_fields t)
           | M_histogram h -> J.Obj (histogram_fields h) ))
       (sorted_metrics ()))

let human_seconds s =
  if s >= 1. then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.3f us" (s *. 1e6)
  else if s > 0. then Printf.sprintf "%.0f ns" (s *. 1e9)
  else "0"

let pp_table ppf () =
  let mean n s = if n = 0 then 0. else s /. float_of_int n in
  let rows =
    List.map
      (fun (name, m) ->
        match m with
        | M_counter c -> [ name; "counter"; string_of_int (Counter.value c) ]
        | M_gauge poll -> [ name; "gauge"; Printf.sprintf "%.2f" (poll ()) ]
        | M_timer t ->
          let n = Timer.count t and s = Timer.total_seconds t in
          [
            name;
            "timer";
            Printf.sprintf "%d calls, %s total, %s/call" n (human_seconds s)
              (human_seconds (mean n s));
          ]
        | M_histogram h ->
          let n = Histogram.count h and s = Histogram.sum h in
          [
            name;
            "histogram";
            Printf.sprintf "%d obs, %s total, %s mean" n (human_seconds s)
              (human_seconds (mean n s));
          ])
      (sorted_metrics ())
  in
  Fmt.pf ppf "%s"
    (Storage_report.Table.render ~title:"engine statistics"
       ~headers:[ "metric"; "kind"; "value" ] rows)
