open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model
module Prng = Storage_workload.Prng
module Workload = Storage_workload.Workload
module Engine = Storage_engine
module Json = Storage_report.Json
module Sim = Storage_sim.Sim

(* --- failure model --- *)

type rates = {
  device_afr : (string * float) list;
  default_afr : float;
  building_burst_per_year : float;
  site_burst_per_year : float;
}

let check_rate ~who r =
  if r < 0. || not (Float.is_finite r) then
    invalid_arg (Printf.sprintf "Fleet.%s: negative or non-finite rate" who)

let rates ?(device_afr = []) ?(default_afr = 0.02)
    ?(building_burst_per_year = 0.005) ?(site_burst_per_year = 0.002) () =
  List.iter (fun (_, r) -> check_rate ~who:"rates" r) device_afr;
  check_rate ~who:"rates" default_afr;
  check_rate ~who:"rates" building_burst_per_year;
  check_rate ~who:"rates" site_burst_per_year;
  { device_afr; default_afr; building_burst_per_year; site_burst_per_year }

let default_rates = rates ()

type config = {
  trials : int;
  horizon : Duration.t;
  seed : int64;
  rates : rates;
}

let config ?(trials = 1000) ?(horizon_years = 5.) ?(seed = 0xCA5CADEL)
    ?(rates = default_rates) () =
  if trials < 1 then invalid_arg "Fleet.config: trials < 1";
  if horizon_years <= 0. || not (Float.is_finite horizon_years) then
    invalid_arg "Fleet.config: non-positive horizon";
  { trials; horizon = Duration.years horizon_years; seed; rates }

let default_config = config ()

(* --- trace sampling --- *)

let afr_of rates (d : Device.t) =
  match List.assoc_opt d.Device.name rates.device_afr with
  | Some r -> r
  | None -> rates.default_afr

(* Arrival offsets of one Poisson process over the horizon, in years. *)
let arrivals rng ~per_year ~horizon_years =
  if per_year <= 0. then []
  else begin
    let rec go acc t =
      let t = t +. Prng.exponential rng ~mean:(1. /. per_year) in
      if t >= horizon_years then List.rev acc else go (t :: acc) t
    in
    go [] 0.
  end

let dedup_keep_order xs =
  List.rev
    (List.fold_left
       (fun acc x -> if List.mem x acc then acc else x :: acc)
       [] xs)

let sample_events ?(rates = default_rates) ~horizon ~seed design =
  let rng = Prng.create ~seed in
  let horizon_years = Duration.to_years horizon in
  let devices = Design.devices design in
  let events_for scope per_year =
    arrivals rng ~per_year ~horizon_years
    |> List.map (fun t -> Scenario.event ~scope ~at:(Duration.years t) ())
  in
  (* Independent per-device arrivals first, then the correlated
     multi-device bursts per distinct building and site. The iteration
     order is the design's first-appearance order, so one seed always
     yields one trace. *)
  let device_events =
    List.concat_map
      (fun (d : Device.t) ->
        events_for (Location.Device d.Device.name) (afr_of rates d))
      devices
  in
  let buildings =
    dedup_keep_order
      (List.map (fun (d : Device.t) -> Location.building d.Device.location)
         devices)
  in
  let sites =
    dedup_keep_order
      (List.map (fun (d : Device.t) -> Location.site d.Device.location)
         devices)
  in
  let building_events =
    List.concat_map
      (fun b -> events_for (Location.Building b) rates.building_burst_per_year)
      buildings
  in
  let site_events =
    List.concat_map
      (fun s -> events_for (Location.Site s) rates.site_burst_per_year)
      sites
  in
  List.stable_sort
    (fun (a : Scenario.event) (b : Scenario.event) ->
      Duration.compare a.Scenario.at b.Scenario.at)
    (device_events @ building_events @ site_events)

(* --- the degenerate single-event reduction --- *)

(* The longest RP cycle period in the hierarchy. Shifting the failure
   instant by a whole number of these leaves the phase of every level
   whose period divides it unchanged (true of all the presets, whose
   periods are 12 h / 1 wk / 4 wk), so a failure years into the horizon
   can be simulated at an equivalent offset within one cycle. *)
let phase_modulus design =
  List.fold_left
    (fun acc (l : Hierarchy.level) ->
      match Technique.schedule l.Hierarchy.technique with
      | None -> acc
      | Some s -> Duration.max acc (Schedule.cycle_period s))
    (Duration.weeks 1.)
    (Hierarchy.levels design.Design.hierarchy)

(* Steady state arrives once every level's worst-case staleness has
   elapsed twice — the deepest RP chain is populated and propagating —
   with a day's floor for sub-daily schedules and two full cycles of the
   slowest level. Much shorter than the simulator's global 12-week
   default for fine-grained schedules: a 1-minute async-batch mirror
   would otherwise pay ~10^5 warmup batch cycles per trial. *)
let adaptive_warmup design =
  let h = design.Design.hierarchy in
  let worst =
    List.fold_left
      (fun acc j -> Duration.max acc (Hierarchy.worst_lag h j))
      Duration.zero
      (List.init (Hierarchy.length h) Fun.id)
  in
  let cycle =
    List.fold_left
      (fun acc (l : Hierarchy.level) ->
        match Technique.schedule l.Hierarchy.technique with
        | None -> acc
        | Some s -> Duration.max acc (Schedule.cycle_period s))
      Duration.zero
      (Hierarchy.levels h)
  in
  Duration.max (Duration.days 1.)
    (Duration.max (Duration.scale 2. worst) (Duration.scale 2. cycle))

let single_event_config design (e : Scenario.event) =
  let m = Duration.to_seconds (phase_modulus design) in
  let phase = Float.rem (Duration.to_seconds e.Scenario.at) m in
  {
    Sim.default_config with
    Sim.warmup =
      Duration.add (adaptive_warmup design) (Duration.seconds phase);
  }

let single_event_measured design (e : Scenario.event) =
  let scenario =
    Scenario.make ~scope:e.Scenario.scope ~target_age:e.Scenario.target_age
      ?object_size:e.Scenario.object_size ()
  in
  Sim.run ~config:(single_event_config design e) design scenario

(* --- trial execution --- *)

type trial = {
  index : int;
  failures : int;
  outage : Duration.t;
  losses : int;
  bytes_lost : Size.t;
  rebuilds : Duration.t list;
}

(* --- cluster decomposition ---

   Failures years apart cannot contend: each recovery is over long
   before the next event arrives. Executing the whole 5-year trace
   through [Sim.run_events] would still simulate every batch cycle in
   between — ~1.3M for a 1-minute mirror schedule — so the trace is
   split into clusters separated by at least [cluster_gap] and each
   cluster is executed independently: singletons through the
   phase-aligned [Sim.run] reduction, true overlaps through
   [Sim.run_events] with the events re-based near the origin (shifted
   earlier by a whole number of phase-modulus cycles, so every event
   keeps its capture phase). The gap is far beyond any recovery the
   presets can price; when the assumption fails anyway — a recovery
   still running as its cluster window closes, or an unrecoverable
   event whose outage must extend to the horizon — the trial falls back
   to the always-correct full-horizon execution. *)

let cluster_gap = Duration.weeks 4.

exception Needs_full_horizon

let split_clusters gap events =
  let gap_s = Duration.to_seconds gap in
  List.fold_left
    (fun acc (e : Scenario.event) ->
      match acc with
      | ((last : Scenario.event) :: _ as cur) :: rest
        when Duration.to_seconds e.Scenario.at
             -. Duration.to_seconds last.Scenario.at
             <= gap_s ->
        (e :: cur) :: rest
      | _ -> [ e ] :: acc)
    [] events
  |> List.rev_map List.rev

let obs_trials = Storage_obs.Counter.make "fleet.trials"
let obs_failures = Storage_obs.Counter.make "fleet.failures"
let obs_losses = Storage_obs.Counter.make "fleet.losses"
let obs_multi = Storage_obs.Counter.make "fleet.multi_event_trials"
let obs_run = Storage_obs.Timer.make "fleet.run"
let obs_rebuild = Storage_obs.Histogram.make "fleet.rebuild_seconds"
let obs_outage = Storage_obs.Histogram.make "fleet.outage_seconds"

let loss_bytes design (loss : Data_loss.loss) =
  let w = design.Design.workload in
  match loss with
  | Data_loss.Updates d ->
    if Duration.is_zero d then Size.zero else Workload.unique_bytes w d
  | Data_loss.Entire_object -> w.Workload.data_capacity

(* Total length of the union of the [(start, stop)] intervals, so
   overlapping outages (a burst's absorbed recoveries) are not counted
   twice. *)
let union_length intervals =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) intervals
  in
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (s, e) -> acc +. (e -. s))
    | (s, e) :: rest -> (
      match cur with
      | None -> go acc (Some (s, e)) rest
      | Some (cs, ce) ->
        if s <= ce then go acc (Some (cs, Float.max ce e)) rest
        else go (acc +. (ce -. cs)) (Some (s, e)) rest)
  in
  go 0. None sorted

let obs_fallbacks = Storage_obs.Counter.make "fleet.full_horizon_fallbacks"

(* One cluster's contribution — outage intervals in horizon-offset
   seconds, unrecoverable losses, bytes lost, completed rebuilds — or
   [Needs_full_horizon] when the independence assumption does not
   hold. *)
let cluster_results design ~horizon_s cluster =
  match cluster with
  | [] -> ([], 0, Size.zero, [])
  | [ (e : Scenario.event) ] -> (
    let at_s = Duration.to_seconds e.Scenario.at in
    let m = single_event_measured design e in
    let bytes = loss_bytes design m.Sim.data_loss in
    match (m.Sim.source_level, m.Sim.recovery_time) with
    | None, _ -> ([ (at_s, horizon_s) ], 1, bytes, [])
    | Some _, None | Some 0, Some _ -> ([], 0, bytes, [])
    | Some _, Some rt ->
      let stop_s = at_s +. Duration.to_seconds rt in
      if stop_s > horizon_s then ([ (at_s, horizon_s) ], 0, bytes, [])
      else ([ (at_s, stop_s) ], 0, bytes, [ rt ]))
  | (first : Scenario.event) :: _ ->
    let m_s = Duration.to_seconds (phase_modulus design) in
    let first_at = Duration.to_seconds first.Scenario.at in
    let shift = first_at -. Float.rem first_at m_s in
    let rebased =
      List.map
        (fun (e : Scenario.event) ->
          Scenario.event ~scope:e.Scenario.scope
            ~at:(Duration.seconds (Duration.to_seconds e.Scenario.at -. shift))
            ~target_age:e.Scenario.target_age
            ?object_size:e.Scenario.object_size ())
        cluster
    in
    let last_at' =
      List.fold_left
        (fun acc (e : Scenario.event) ->
          Float.max acc (Duration.to_seconds e.Scenario.at))
        0. rebased
    in
    let gap_s = Duration.to_seconds cluster_gap in
    (* The local window runs one gap past the last event unless the
       global horizon cuts it shorter. *)
    let clipped = horizon_s -. shift <= last_at' +. gap_s in
    let local_horizon_s = Float.min (last_at' +. gap_s) (horizon_s -. shift) in
    let config =
      { Sim.default_config with Sim.warmup = adaptive_warmup design }
    in
    let m =
      Sim.run_events ~config
        ~horizon:(Duration.seconds local_horizon_s)
        design
        (Scenario.of_events rebased)
    in
    let warmup_s = Duration.to_seconds config.Sim.warmup in
    List.fold_left
      (fun (ivs, losses, bytes, rebuilds) (inj : Sim.injected) ->
        let start_s =
          Duration.to_seconds inj.Sim.injected_at -. warmup_s +. shift
        in
        let bytes = Size.add bytes (loss_bytes design inj.Sim.data_loss) in
        match inj.Sim.source_level with
        | None ->
          (* Total loss changes the state every later cluster would start
             from; only the full-horizon execution gets that right. *)
          raise Needs_full_horizon
        | Some 0 -> (ivs, losses, bytes, rebuilds)
        | Some _ -> (
          match inj.Sim.recovery_end with
          | None ->
            if clipped then
              (* a genuine end-of-horizon truncation *)
              ((start_s, horizon_s) :: ivs, losses, bytes, rebuilds)
            else
              (* the recovery outlived the cluster window: the
                 independence assumption failed *)
              raise Needs_full_horizon
          | Some t ->
            let stop_s = Duration.to_seconds t -. warmup_s +. shift in
            if stop_s > horizon_s then
              ((start_s, horizon_s) :: ivs, losses, bytes, rebuilds)
            else
              ( (start_s, stop_s) :: ivs,
                losses,
                bytes,
                Duration.seconds (stop_s -. start_s) :: rebuilds )))
      ([], 0, Size.zero, []) m.Sim.injected
    |> fun (ivs, losses, bytes, rebuilds) ->
    (ivs, losses, bytes, List.rev rebuilds)

let run_trial ?(rates = default_rates) ~horizon ~seed ~index design =
  let events = sample_events ~rates ~horizon ~seed design in
  Storage_obs.Counter.incr obs_trials;
  Storage_obs.Counter.add obs_failures (List.length events);
  let horizon_s = Duration.to_seconds horizon in
  let finish outage_s losses bytes rebuilds =
    Storage_obs.Counter.add obs_losses losses;
    Storage_obs.Histogram.observe obs_outage outage_s;
    List.iter
      (fun r -> Storage_obs.Histogram.observe obs_rebuild (Duration.to_seconds r))
      rebuilds;
    {
      index;
      failures = List.length events;
      outage = Duration.seconds (Float.min outage_s horizon_s);
      losses;
      bytes_lost = bytes;
      rebuilds;
    }
  in
  match events with
  | [] -> finish 0. 0 Size.zero []
  | [ e ] -> (
    (* Exactly the single-scenario simulator, phase-aligned to the
       sampled instant: the reduction the fleet-degenerate oracle pins. *)
    let m = single_event_measured design e in
    let bytes = loss_bytes design m.Sim.data_loss in
    match (m.Sim.source_level, m.Sim.recovery_time) with
    | None, _ ->
      (* Unrecoverable: the object is down (and lost) from the failure
         to the end of the horizon. *)
      finish (horizon_s -. Duration.to_seconds e.Scenario.at) 1 bytes []
    | Some _, None | Some 0, Some _ -> finish 0. 0 bytes []
    | Some _, Some rt -> finish (Duration.to_seconds rt) 0 bytes [ rt ])
  | events -> (
    Storage_obs.Counter.incr obs_multi;
    let clustered () =
      let parts =
        List.map
          (cluster_results design ~horizon_s)
          (split_clusters cluster_gap events)
      in
      let intervals = List.concat_map (fun (i, _, _, _) -> i) parts in
      let losses = List.fold_left (fun acc (_, l, _, _) -> acc + l) 0 parts in
      let bytes =
        List.fold_left (fun acc (_, _, b, _) -> Size.add acc b) Size.zero parts
      in
      let rebuilds = List.concat_map (fun (_, _, _, r) -> r) parts in
      finish (union_length intervals) losses bytes rebuilds
    in
    let full_horizon () =
      (* The always-correct slow path: every event at its actual offset
         in one [Sim.run_events] execution over the whole horizon. *)
      Storage_obs.Counter.incr obs_fallbacks;
      let config =
        { Sim.default_config with Sim.warmup = adaptive_warmup design }
      in
      let m = Sim.run_events ~config ~horizon design (Scenario.of_events events) in
      let warmup_s = Duration.to_seconds config.Sim.warmup in
      let end_s = warmup_s +. horizon_s in
      let intervals, losses, bytes, rebuilds =
        List.fold_left
          (fun (ivs, losses, bytes, rebuilds) (inj : Sim.injected) ->
            let start_s = Duration.to_seconds inj.Sim.injected_at in
            let bytes = Size.add bytes (loss_bytes design inj.Sim.data_loss) in
            match inj.Sim.source_level with
            | None -> ((start_s, end_s) :: ivs, losses + 1, bytes, rebuilds)
            | Some 0 ->
              (* no recovery was needed *)
              (ivs, losses, bytes, rebuilds)
            | Some _ -> (
              match inj.Sim.recovery_end with
              | None ->
                (* still rebuilding when the horizon closed *)
                ((start_s, end_s) :: ivs, losses, bytes, rebuilds)
              | Some t ->
                let stop_s = Duration.to_seconds t in
                ( (start_s, stop_s) :: ivs,
                  losses,
                  bytes,
                  Duration.seconds (stop_s -. start_s) :: rebuilds )))
          ([], 0, Size.zero, []) m.Sim.injected
      in
      finish (union_length intervals) losses bytes (List.rev rebuilds)
    in
    match clustered () with
    | trial -> trial
    | exception Needs_full_horizon -> full_horizon ())

(* --- aggregation --- *)

type report = {
  design : string;
  trials : int;
  horizon : Duration.t;
  seed : int64;
  failures : int;
  failed_trials : int;
  multi_event_trials : int;
  availability : float;
  availability_nines : float;
  loss_trials : int;
  durability : float;
  durability_nines : float;
  mean_outage : Duration.t;
  expected_loss : Size.t;
  rebuilds : int;
  rebuild_p50 : Duration.t option;
  rebuild_p95 : Duration.t option;
  rebuild_p99 : Duration.t option;
  rebuild_max : Duration.t option;
}

let nines x = if x >= 1. then Float.infinity else -.log10 (1. -. x)

let aggregate design (config : config) (trials : trial list) =
  let n = float_of_int config.trials in
  let horizon_s = Duration.to_seconds config.horizon in
  let total_outage_s =
    List.fold_left
      (fun acc (t : trial) -> acc +. Duration.to_seconds t.outage)
      0. trials
  in
  let failures =
    List.fold_left (fun acc (t : trial) -> acc + t.failures) 0 trials
  in
  let failed_trials =
    List.length (List.filter (fun (t : trial) -> t.failures > 0) trials)
  in
  let multi_event_trials =
    List.length (List.filter (fun (t : trial) -> t.failures > 1) trials)
  in
  let loss_trials =
    List.length (List.filter (fun (t : trial) -> t.losses > 0) trials)
  in
  let bytes =
    List.fold_left
      (fun acc (t : trial) -> Size.add acc t.bytes_lost)
      Size.zero trials
  in
  let rebuild_s =
    List.concat_map
      (fun (t : trial) -> List.map Duration.to_seconds t.rebuilds)
      trials
    |> List.sort Float.compare
    |> Array.of_list
  in
  let percentile p =
    let m = Array.length rebuild_s in
    if m = 0 then None
    else Some (Duration.seconds rebuild_s.(int_of_float (p *. float_of_int (m - 1))))
  in
  let availability = 1. -. (total_outage_s /. (n *. horizon_s)) in
  let durability = 1. -. (float_of_int loss_trials /. n) in
  {
    design = design.Design.name;
    trials = config.trials;
    horizon = config.horizon;
    seed = config.seed;
    failures;
    failed_trials;
    multi_event_trials;
    availability;
    availability_nines = nines availability;
    loss_trials;
    durability;
    durability_nines = nines durability;
    mean_outage = Duration.seconds (total_outage_s /. n);
    expected_loss = Size.scale (1. /. n) bytes;
    rebuilds = Array.length rebuild_s;
    rebuild_p50 = percentile 0.50;
    rebuild_p95 = percentile 0.95;
    rebuild_p99 = percentile 0.99;
    rebuild_max = percentile 1.0;
  }

let run ?engine ?(config = default_config) design =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  Storage_obs.Timer.time obs_run @@ fun () ->
  (* Every trial's seed comes off one master stream up front, so the
     sampled traces — and therefore the whole report — are independent of
     how the trials are sliced across domains (same discipline as
     [Risk.monte_carlo]). *)
  let master = Prng.create ~seed:config.seed in
  let seeds =
    List.init config.trials (fun i -> (i, Prng.next_int64 master))
  in
  let chunk =
    match Engine.chunk engine with
    | Some c -> c
    | None ->
      (* Coarse chunks: trials are cheap when the sampled trace is empty,
         so fine-grained dealing would be all dispatch overhead. *)
      Int.max 1 (config.trials / Int.max 1 (Engine.jobs engine * 8))
  in
  let trials =
    Engine.map_seq ~chunk engine
      (fun (i, s) ->
        run_trial ~rates:config.rates ~horizon:config.horizon ~seed:s ~index:i
          design)
      (List.to_seq seeds)
    |> List.of_seq
  in
  aggregate design config trials

let erasure_sweep ?engine ?(config = default_config) ~make pairs =
  List.map
    (fun (required, fragments) ->
      if required < 1 || fragments < required then
        invalid_arg "Fleet.erasure_sweep: need 1 <= required <= fragments";
      (required, fragments, run ?engine ~config (make ~fragments ~required)))
    pairs

(* --- rendering --- *)

let json_opt_hours = function
  | None -> Json.Null
  | Some d -> Json.Float (Duration.to_hours d)

let to_json r =
  Json.Obj
    [
      ("design", Json.String r.design);
      ("trials", Json.Int r.trials);
      ("horizon_years", Json.Float (Duration.to_years r.horizon));
      ("seed", Json.String (Int64.to_string r.seed));
      ("failures", Json.Int r.failures);
      ("failed_trials", Json.Int r.failed_trials);
      ("multi_event_trials", Json.Int r.multi_event_trials);
      ("availability", Json.Float r.availability);
      ("availability_nines", Json.Float r.availability_nines);
      ("loss_trials", Json.Int r.loss_trials);
      ("durability", Json.Float r.durability);
      ("durability_nines", Json.Float r.durability_nines);
      ("mean_outage_hours", Json.Float (Duration.to_hours r.mean_outage));
      ("expected_loss_gib", Json.Float (Size.to_gib r.expected_loss));
      ("rebuilds", Json.Int r.rebuilds);
      ( "rebuild_hours",
        Json.Obj
          [
            ("p50", json_opt_hours r.rebuild_p50);
            ("p95", json_opt_hours r.rebuild_p95);
            ("p99", json_opt_hours r.rebuild_p99);
            ("max", json_opt_hours r.rebuild_max);
          ] );
    ]

let pp_nines ppf x =
  if Float.is_finite x then Fmt.pf ppf "%.2f nines"
    x
  else Fmt.pf ppf "no loss observed"

let pp_opt_duration ppf = function
  | None -> Fmt.string ppf "-"
  | Some d -> Duration.pp ppf d

let pp ppf r =
  Fmt.pf ppf
    "@[<v>fleet Monte Carlo: %s@,\
    \  %d trials x %a horizon (seed %Ld)@,\
    \  failures: %d across %d trials (%d with overlapping events)@,\
    \  availability: %.6f (%a)@,\
    \  durability:   %.6f (%a); %d trials lost data@,\
    \  mean outage %a/trial; expected loss %a/trial@,\
    \  rebuilds: %d  p50 %a  p95 %a  p99 %a  max %a@]" r.design r.trials
    Duration.pp r.horizon r.seed r.failures r.failed_trials
    r.multi_event_trials r.availability pp_nines r.availability_nines
    r.durability pp_nines r.durability_nines r.loss_trials Duration.pp
    r.mean_outage Size.pp r.expected_loss r.rebuilds pp_opt_duration
    r.rebuild_p50 pp_opt_duration r.rebuild_p95 pp_opt_duration r.rebuild_p99
    pp_opt_duration r.rebuild_max
