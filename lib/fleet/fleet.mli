open Storage_units
open Storage_model

(** Fleet-scale Monte Carlo availability and durability.

    The paper evaluates one imposed worst-case failure at a time (§3.1.3);
    this module evaluates the regime its related work cares about:
    populations of devices failing stochastically and {e concurrently}
    over an operating horizon. Each trial samples a failure trace —
    independent AFR-driven arrivals per device plus correlated
    building/site bursts — as a multi-event {!Scenario.t} and executes it:

    - an empty trace is a fully-available trial;
    - a single failure runs through the analytic-phase simulator
      ({!Sim.run}), phase-aligned to the sampled instant — the exact
      reduction the [fleet-degenerate] testkit oracle pins;
    - overlapping failures run through {!Sim.run_events}, where
      recoveries contend with each other and with RP propagation in the
      bandwidth-limited flow network.

    Trials are embarrassingly parallel: each draws its seed from one
    master splitmix64 stream up front and is dispatched through
    {!Storage_engine.map_seq} in coarse chunks, so a report is
    bit-identical for every [--jobs] value (the [fleet-jobs-invariance]
    oracle). *)

(** {1 Failure model} *)

type rates = {
  device_afr : (string * float) list;
      (** per-device-name annualized failure rate overrides *)
  default_afr : float;  (** AFR for devices not listed (default 0.02) *)
  building_burst_per_year : float;
      (** rate of correlated whole-building failures, per distinct
          building in the design (default 0.005) *)
  site_burst_per_year : float;
      (** rate of correlated site disasters, per distinct site
          (default 0.002) *)
}

val rates :
  ?device_afr:(string * float) list ->
  ?default_afr:float ->
  ?building_burst_per_year:float ->
  ?site_burst_per_year:float ->
  unit ->
  rates
(** Raises [Invalid_argument] on a negative or non-finite rate. *)

val default_rates : rates

type config = {
  trials : int;
  horizon : Duration.t;  (** operating period simulated per trial *)
  seed : int64;
  rates : rates;
}

val config :
  ?trials:int ->
  ?horizon_years:float ->
  ?seed:int64 ->
  ?rates:rates ->
  unit ->
  config
(** Defaults: 1000 trials, 5 years, the framework seed, {!default_rates}.
    Raises [Invalid_argument] when [trials < 1] or the horizon is not
    positive. *)

val default_config : config

(** {1 Trace sampling and trial execution}

    Exposed so the testkit oracles can replay exactly what {!run} does. *)

val sample_events :
  ?rates:rates ->
  horizon:Duration.t ->
  seed:int64 ->
  Design.t ->
  Scenario.event list
(** The failure trace one trial executes: a Poisson process per device
    (rate = its AFR) merged with one per distinct building and site (the
    correlated bursts), sorted by offset. Deterministic in [seed]. *)

val single_event_measured :
  Design.t -> Scenario.event -> Storage_sim.Sim.measured
(** The degenerate reduction used for 1-event traces: {!Sim.run} of the
    event's single-failure scenario, with a design-adaptive warmup (twice
    the deepest level's worst-case staleness, floored at a day) extended
    by the event's offset modulo the hierarchy's longest RP cycle period
    so the failure strikes at the equivalent capture phase. (Exact
    whenever every level's cycle period divides the longest one, as in
    all the presets.) *)

type trial = {
  index : int;
  failures : int;  (** sampled failure events *)
  outage : Duration.t;  (** union of unavailability windows, clamped to the horizon *)
  losses : int;  (** events whose data was unrecoverable *)
  bytes_lost : Size.t;
      (** unique updates lost across events (entire object when
          unrecoverable), via the workload's batch curve *)
  rebuilds : Duration.t list;  (** completed recovery durations *)
}

val run_trial :
  ?rates:rates ->
  horizon:Duration.t ->
  seed:int64 ->
  index:int ->
  Design.t ->
  trial
(** Multi-event traces are decomposed into clusters of events separated
    by at least four weeks; each cluster executes independently
    (singletons through {!single_event_measured}, overlaps through
    {!Sim.run_events} re-based near the origin on a whole number of
    phase cycles), so a trial's cost scales with its failures rather
    than with the horizon. A recovery outliving its cluster window or an
    unrecoverable event falls the trial back to one full-horizon
    {!Sim.run_events} execution. *)

(** {1 Monte Carlo} *)

type report = {
  design : string;
  trials : int;
  horizon : Duration.t;
  seed : int64;
  failures : int;  (** failure events sampled across all trials *)
  failed_trials : int;  (** trials with at least one failure *)
  multi_event_trials : int;  (** trials executed by {!Sim.run_events} *)
  availability : float;  (** mean fraction of the horizon available *)
  availability_nines : float;
      (** [-log10 (1 - availability)]; infinite when no outage at all was
          observed (rendered as [null] in JSON) *)
  loss_trials : int;  (** trials that lost data unrecoverably *)
  durability : float;  (** fraction of trials with no unrecoverable loss *)
  durability_nines : float;
  mean_outage : Duration.t;  (** per trial *)
  expected_loss : Size.t;  (** mean bytes lost per trial *)
  rebuilds : int;
  rebuild_p50 : Duration.t option;  (** [None] when no rebuild completed *)
  rebuild_p95 : Duration.t option;
  rebuild_p99 : Duration.t option;
  rebuild_max : Duration.t option;
}

val run : ?engine:Storage_engine.t -> ?config:config -> Design.t -> report
(** [run design] executes [config.trials] independent trials on the
    engine's domains and aggregates them in trial order, so for a fixed
    seed the report — and its JSON rendering — is byte-identical across
    runs and across [jobs] values. *)

val erasure_sweep :
  ?engine:Storage_engine.t ->
  ?config:config ->
  make:(fragments:int -> required:int -> Design.t) ->
  (int * int) list ->
  (int * int * report) list
(** [(required, fragments)] pairs, each built with [make] and evaluated
    with {!run}: the (m, k) sweep over the m-of-n erasure-coding
    technique. Raises [Invalid_argument] unless
    [1 <= required <= fragments]. *)

(** {1 Rendering} *)

val to_json : report -> Storage_report.Json.t
val pp : report Fmt.t
